//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "api/Msq.h"

#include "api/StdMacros.h"

using namespace msq;

bool Engine::loadStandardLibrary() {
  ExpandResult R =
      expandSource("<msq-stdlib>", standardMacroLibrarySource());
  return R.Success;
}

Engine::Engine() : Engine(Options()) {}

Engine::Engine(Options Opts)
    : Opts(Opts), CC(std::make_unique<CompilationContext>(SM)) {
  Interpreter::Limits Lim;
  Lim.HygienicTemplates = Opts.HygienicExpansion;
  Lim.TraceExpansions = Opts.TraceExpansions;
  Interp = std::make_unique<Interpreter>(*CC, Lim);
}

Engine::~Engine() = default;

TranslationUnit *Engine::parseSource(std::string Name, std::string Source) {
  uint32_t Id = SM.addBuffer(std::move(Name), std::move(Source));
  Parser::Options POpts;
  POpts.UseCompiledPatterns = Opts.UseCompiledPatterns;
  Parser P(*CC, POpts);
  return P.parseTranslationUnit(Id);
}

TranslationUnit *Engine::expandUnit(TranslationUnit *TU) {
  Expander Exp(*CC, *Interp);
  return Exp.expandTranslationUnit(TU);
}

ExpandResult Engine::expandSource(std::string Name, std::string Source) {
  ExpandResult R;
  // Success and the reported diagnostics are scoped to THIS source:
  // errors from an earlier source in the session do not poison later,
  // independently correct sources.
  size_t FirstDiag = CC->Diags.all().size();
  unsigned ErrorsBefore = CC->Diags.errorCount();
  size_t StepsBefore = Interp->stepsExecuted();
  size_t GensymsBefore = Interp->gensymCount();
  size_t TraceBefore = Interp->traceLog().size();
  TranslationUnit *TU = parseSource(std::move(Name), std::move(Source));
  if (CC->Diags.errorCount() == ErrorsBefore) {
    Expander Exp(*CC, *Interp);
    TranslationUnit *Out = Exp.expandTranslationUnit(TU);
    R.InvocationsExpanded = Exp.stats().InvocationsExpanded;
    if (CC->Diags.errorCount() == ErrorsBefore) {
      PrintOptions PO;
      PO.AllowPlaceholders = false;
      R.Output = printNode(Out, PO);
    }
  }
  R.MacrosDefined = CC->Macros.size();
  R.MetaStepsExecuted = Interp->stepsExecuted() - StepsBefore;
  R.GensymsCreated = Interp->gensymCount() - GensymsBefore;
  R.TraceText = Interp->traceLog().substr(TraceBefore);
  R.DiagnosticsText = CC->Diags.renderFrom(FirstDiag);
  R.Success = CC->Diags.errorCount() == ErrorsBefore;
  return R;
}
