//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "api/Msq.h"

#include "api/StdMacros.h"
#include "synbase/SyntaxBase.h"

using namespace msq;

/// Resolves the syntax base a unit is written in: the unit's own Base when
/// set, the engine default otherwise. Null when the name is unregistered.
static const SyntaxBase *resolveBase(const Engine::Options &Opts,
                                     const SourceUnit &U) {
  return syntaxBaseByName(U.Base.empty() ? Opts.Base : U.Base);
}

static std::string unknownBaseMessage(const Engine::Options &Opts,
                                      const SourceUnit &U) {
  const std::string &Name = U.Base.empty() ? Opts.Base : U.Base;
  std::string Msg = "error: unknown syntax base '" + Name + "' (registered:";
  for (const SyntaxBase *SB : registeredSyntaxBases())
    Msg += std::string(" ") + SB->name();
  Msg += ")\n";
  return Msg;
}

bool Engine::loadStandardLibrary() {
  ExpandResult R =
      expandSource("<msq-stdlib>", standardMacroLibrarySource());
  return R.Success;
}

Engine::Engine() : Engine(Options()) {}

Engine::Engine(Options Opts)
    : Opts(Opts), CC(std::make_unique<CompilationContext>(SM)) {
  Interpreter::Limits Lim;
  Lim.MaxSteps = Opts.MaxMetaSteps;
  Lim.HygienicTemplates = Opts.HygienicExpansion;
  Lim.TraceExpansions = Opts.TraceExpansions;
  Interp = std::make_unique<Interpreter>(*CC, Lim);
}

Engine::~Engine() = default;

TranslationUnit *Engine::parseSourceImpl(SourceUnit U) {
  const SyntaxBase *SB = resolveBase(Opts, U);
  uint32_t Id = SM.addBuffer(std::move(U.Name), std::move(U.Source));
  if (!SB) {
    CC->Diags.error(SourceLoc::get(Id, 0),
                    "unknown syntax base '" +
                        (U.Base.empty() ? Opts.Base : U.Base) + "'");
    return nullptr;
  }
  SyntaxBase::ParseOptions PO;
  PO.UseCompiledPatterns = Opts.UseCompiledPatterns;
  return SB->parseUnit(*CC, Id, PO, /*TokensOut=*/nullptr);
}

TranslationUnit *Engine::parseSource(std::string Name, std::string Source) {
  return parseSource({std::move(Name), std::move(Source), /*Base=*/""});
}

TranslationUnit *Engine::parseSource(SourceUnit Unit) {
  SessionLog.push_back({Unit, /*ParseOnly=*/true});
  return parseSourceImpl(std::move(Unit));
}

TranslationUnit *Engine::expandUnit(TranslationUnit *TU) {
  Expander::Options EOpts;
  EOpts.MaxExpansionDepth = Opts.MaxExpansionDepth;
  Expander Exp(*CC, *Interp, EOpts);
  return Exp.expandTranslationUnit(TU);
}

ExpandResult Engine::expandSource(std::string Name, std::string Source) {
  return expandSourceImpl({std::move(Name), std::move(Source), /*Base=*/""},
                          /*EmitOutput=*/true, /*Record=*/true);
}

ExpandResult Engine::expandSource(SourceUnit Unit) {
  return expandSourceImpl(std::move(Unit), /*EmitOutput=*/true,
                          /*Record=*/true);
}

ExpandResult Engine::expandUnrecorded(std::string Name, std::string Source) {
  return expandSourceImpl({std::move(Name), std::move(Source), /*Base=*/""},
                          /*EmitOutput=*/true, /*Record=*/false);
}

ExpandResult Engine::expandUnrecorded(SourceUnit Unit) {
  return expandSourceImpl(std::move(Unit), /*EmitOutput=*/true,
                          /*Record=*/false);
}

void Engine::setUnitLimits(size_t MaxMetaSteps, unsigned TimeoutMillis) {
  Opts.MaxMetaSteps = MaxMetaSteps;
  Opts.UnitTimeoutMillis = TimeoutMillis;
}

ExpandResult Engine::expandSourceImpl(SourceUnit Unit, bool EmitOutput,
                                      bool Record) {
  return expandSourceHooked(std::move(Unit), EmitOutput, Record,
                            ReexpandHooks());
}

ExpandResult Engine::reexpand(std::string Name, std::string Source,
                              const ReexpandHooks &Hooks) {
  return expandSourceHooked({std::move(Name), std::move(Source), /*Base=*/""},
                            /*EmitOutput=*/true, /*Record=*/false, Hooks);
}

ExpandResult Engine::reexpand(SourceUnit Unit, const ReexpandHooks &Hooks) {
  return expandSourceHooked(std::move(Unit), /*EmitOutput=*/true,
                            /*Record=*/false, Hooks);
}

ExpandResult Engine::expandSourceHooked(SourceUnit U, bool EmitOutput,
                                        bool Record,
                                        const ReexpandHooks &Hooks) {
  if (Record)
    SessionLog.push_back({U, /*ParseOnly=*/false});
  ExpandResult R;
  R.Name = U.Name;
  const SyntaxBase *SB = resolveBase(Opts, U);
  if (!SB) {
    // Unknown base: a structured failure, not a diagnostic — there is no
    // buffer to anchor one to, and guessing a base would silently parse
    // the unit as the wrong language.
    R.DiagnosticsText = unknownBaseMessage(Opts, U);
    return R;
  }
  // Success and the reported diagnostics are scoped to THIS source:
  // errors from an earlier source in the session do not poison later,
  // independently correct sources.
  size_t FirstDiag = CC->Diags.all().size();
  unsigned ErrorsBefore = CC->Diags.errorCount();
  size_t StepsBefore = Interp->stepsExecuted();
  size_t GensymsBefore = Interp->gensymCount();
  size_t TraceBefore = Interp->traceLog().size();
  // Arm the per-unit fuel budget and wall-clock deadline. A unit that
  // exhausts either is aborted with a diagnostic (naming the unit); the
  // engine itself stays usable for the next unit.
  Interp->beginUnit(Opts.MaxMetaSteps, Opts.UnitTimeoutMillis, R.Name);
  if (Hooks.Deps)
    Interp->setDependencyRecorder(Hooks.Deps);
  // The tracker must outlive expansion: DiagnosticsText renders frames
  // from it, and the source map references them.
  ProvenanceTracker Prov;
  TranslationUnit *TU;
  if (Hooks.CachedTree) {
    // Tree-reuse path: lexing and parsing skipped entirely. The caller
    // restored the after-parse session state and passed a fresh clone
    // with invocation definitions remapped to the live registry.
    TU = Hooks.CachedTree;
  } else if (Hooks.CachedTokens && SB->supportsTokenReuse()) {
    // Token-reuse path: the stream was lexed (diagnostic-free) from
    // byte-identical source, so its locations still render identically;
    // no new buffer is registered. Only bases with a token layer reach
    // here — for the rest a cached stream is meaningless and the unit
    // falls through to a cold parse.
    SyntaxBase::ParseOptions PO;
    PO.UseCompiledPatterns = Opts.UseCompiledPatterns;
    TU = SB->parseUnitFromTokens(*CC, *Hooks.CachedTokens, PO);
  } else {
    uint32_t Id = SM.addBuffer(std::move(U.Name), std::move(U.Source));
    SyntaxBase::ParseOptions PO;
    PO.UseCompiledPatterns = Opts.UseCompiledPatterns;
    // Cached tokens cannot replay lexer diagnostics, so the base only
    // captures a diagnostic-free stream — and only when it has a token
    // layer at all (supportsTokenReuse).
    TU = SB->parseUnit(*CC, Id, PO,
                       SB->supportsTokenReuse() ? Hooks.TokensOut : nullptr);
  }
  if (!Hooks.CachedTree && CC->Diags.all().size() == FirstDiag) {
    // The lex+parse was diagnostic-free, so re-expanding from the tree
    // later skips nothing observable. The clone is taken BEFORE
    // expansion (expansion rewrites trees in place) and the after-parse
    // state with it (parsing registers macros, typedefs, variable types).
    if (Hooks.TreeOut)
      *Hooks.TreeOut = cast<TranslationUnit>(cloneNode(CC->Ast, TU));
    if (Hooks.AfterParseOut)
      *Hooks.AfterParseOut = checkpoint();
  }
  if (CC->Diags.errorCount() == ErrorsBefore) {
    if (Opts.Lint.Enabled) {
      // Lint everything visible to this unit (earlier library units
      // included, internal buffers excluded): a batch of units sharing a
      // library repeats the library's findings per unit, and the batch
      // layer dedupes them into one report with a count.
      LintOptions LO = Opts.Lint;
      LO.Hygienic = Opts.HygienicExpansion;
      LintReport Rep = lintDefinitions(CC->Macros, CC->MetaFuncs, SM, LO);
      R.Lints = std::move(Rep.Findings);
    }
    Expander::Options EOpts;
    EOpts.MaxExpansionDepth = Opts.MaxExpansionDepth;
    EOpts.CollectProfile = Opts.CollectProfile;
    EOpts.Deps = Hooks.Deps;
    if (Opts.TrackProvenance)
      EOpts.Prov = &Prov;
    Expander Exp(*CC, *Interp, EOpts);
    TranslationUnit *Out = Exp.expandTranslationUnit(TU);
    R.InvocationsExpanded = Exp.stats().InvocationsExpanded;
    R.NodesProduced = Exp.stats().NodesProduced;
    R.Profile = Exp.takeProfile();
    if (CC->Diags.errorCount() == ErrorsBefore && EmitOutput) {
      PrintOptions PO;
      PO.AllowPlaceholders = false;
      std::vector<std::pair<unsigned, uint32_t>> LineProv;
      if (Opts.TrackProvenance && Opts.EmitSourceMap)
        PO.LineProvenance = &LineProv;
      R.Output = SB->print(Out, PO);
      if (PO.LineProvenance)
        R.SourceMapJson = sourceMapJson(LineProv, Prov, SM);
    }
  }
  // The expander leaves the frame balanced at 0, but an aborted unit must
  // not leak a stale frame onto the next unit's diagnostics.
  CC->Diags.setProvenanceFrame(0);
  if (Hooks.Deps)
    Interp->setDependencyRecorder(nullptr);
  R.MacrosDefined = CC->Macros.size();
  R.MetaStepsExecuted = Interp->stepsExecuted() - StepsBefore;
  R.GensymsCreated = Interp->gensymCount() - GensymsBefore;
  R.FuelExhausted = Interp->unitFuelExhausted();
  R.TimedOut = Interp->unitTimedOut();
  R.FaultInjected = Interp->unitAllocFailed();
  R.MetaGlobalsMutated = Interp->metaGlobalsMutated();
  R.TraceText = Interp->traceLog().substr(TraceBefore);
  R.DiagnosticsText =
      Opts.TrackProvenance
          ? renderDiagnosticsWithBacktrace(CC->Diags, FirstDiag, Prov)
          : CC->Diags.renderFrom(FirstDiag);
  R.Success = CC->Diags.errorCount() == ErrorsBefore;
  return R;
}

Engine::LintResult Engine::lintSource(std::string Name, std::string Source) {
  return lintSource({std::move(Name), std::move(Source), /*Base=*/""});
}

Engine::LintResult Engine::lintSource(SourceUnit Unit) {
  LintResult LR;
  LR.Name = Unit.Name;
  size_t FirstDiag = CC->Diags.all().size();
  unsigned ErrorsBefore = CC->Diags.errorCount();
  // Only definitions contributed by THIS source are reported: libraries
  // loaded earlier were either linted on their own or deliberately not.
  uint32_t FirstBuffer = uint32_t(SM.numBuffers()) + 1;
  Interp->beginUnit(Opts.MaxMetaSteps, Opts.UnitTimeoutMillis, LR.Name);
  parseSourceImpl(std::move(Unit));
  LR.DiagnosticsText = CC->Diags.renderFrom(FirstDiag);
  LR.Success = CC->Diags.errorCount() == ErrorsBefore;
  LintOptions LO = Opts.Lint;
  LO.Enabled = true;
  LO.Hygienic = Opts.HygienicExpansion;
  LR.Report = lintDefinitions(CC->Macros, CC->MetaFuncs, SM, LO, FirstBuffer);
  return LR;
}

SessionSnapshot Engine::snapshot() const {
  auto D = std::make_shared<SessionSnapshot::Data>();
  D->Opts = Opts;
  D->Log = SessionLog;
  return SessionSnapshot(std::move(D));
}

Engine::SessionCheckpoint Engine::checkpoint() const {
  SessionCheckpoint CP;
  CP.Macros = CC->Macros;
  CP.MetaFuncs = CC->MetaFuncs;
  CP.Globals = CC->Globals;
  CP.TypedefScopes = CC->TypedefScopes;
  CP.ObjectVarTypes = CC->ObjectVarTypes;
  CP.Interp = Interp->saveState();
  return CP;
}

void Engine::restoreCheckpoint(const SessionCheckpoint &CP) {
  CC->Macros = CP.Macros;
  CC->MetaFuncs = CP.MetaFuncs;
  CC->Globals = CP.Globals;
  CC->TypedefScopes = CP.TypedefScopes;
  CC->ObjectVarTypes = CP.ObjectVarTypes;
  // CompiledPatterns is left alone on purpose: entries are keyed by
  // MacroDef pointer, so entries for macros dropped by the restore are
  // simply unreachable (the arena keeps them alive; it only grows).
  Interp->restoreState(CP.Interp);
}
