//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "api/StdMacros.h"

const char *msq::standardMacroLibrarySource() {
  return R"MSQ(
/* ===== MS2 standard macro library ===================================== */

/* Inverted if. */
syntax stmt unless {| ( $$exp::cond ) $$stmt::body |}
{
    return `{ if (!($cond)) $body; };
}

/* Allocate/use/release bracket (the paper's central idiom). */
syntax stmt with_resource {| ( $$exp::acquire , $$exp::release ) $$stmt::body |}
{
    return `{
        $acquire;
        $body;
        $release;
    };
}

/* Counted loop with a fresh, capture-free counter. */
syntax stmt repeat_n {| ( $$exp::count ) $$stmt::body |}
{
    @id i = gensym("rep");
    return `{
        int $i;
        for ($i = 0; $i < $count; $i = $i + 1)
            $body;
    };
}

/* Exchange two variables; the temporary's type comes from the semantic
   var_type query, so any declared variable type works. */
syntax stmt swap_vars {| $$id::a , $$id::b |}
{
    @id tmp = gensym("swap");
    return `{
        $(var_type(a)) $tmp;
        $tmp = $a;
        $a = $b;
        $b = $tmp;
    };
}

/* Compile-time unrolled iteration over an expression list. */
syntax stmt foreach_of {| $$id::var in ( $$+/, exp::items ) $$stmt::body |}
{
    @stmt copies[];
    int i;
    i = 0;
    while (i < length(items)) {
        copies = append(copies, list(`{
            {
                int $var;
                $var = $(items[i]);
                $body;
            }
        }));
        i = i + 1;
    }
    return `{ $copies; };
}

/* Null-guarded execution. */
syntax stmt assert_nonnull {| ( $$exp::ptr ) $$stmt::body |}
{
    return `{
        if (($ptr) == 0)
            null_violation();
        else
            $body;
    };
}

/* Single-evaluation min/max/clamp: refuse non-simple arguments instead of
   silently double-evaluating them (a compile-time guarantee CPP's
   MIN/MAX famously cannot give). */
syntax exp min_of {| ( $$exp::a , $$exp::b ) |}
{
    if (!simple_expression(a) || !simple_expression(b))
        meta_error("min_of requires simple arguments; a compound argument would be evaluated twice");
    return `(($a) < ($b) ? ($a) : ($b));
}

syntax exp max_of {| ( $$exp::a , $$exp::b ) |}
{
    if (!simple_expression(a) || !simple_expression(b))
        meta_error("max_of requires simple arguments; a compound argument would be evaluated twice");
    return `(($a) > ($b) ? ($a) : ($b));
}

syntax exp clamp_of {| ( $$exp::x , $$exp::lo , $$exp::hi ) |}
{
    if (!simple_expression(x) || !simple_expression(lo) ||
        !simple_expression(hi))
        meta_error("clamp_of requires simple arguments; a compound argument would be evaluated twice");
    return `(($x) < ($lo) ? ($lo) : (($x) > ($hi) ? ($hi) : ($x)));
}
)MSQ";
}
