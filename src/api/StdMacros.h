//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MS2 standard macro library: a small set of broadly useful syntax
/// macros written in the macro language itself (the paper's thesis is that
/// such abstractions belong in libraries, not in the compiler). Load it
/// with Engine::loadStandardLibrary().
///
/// Provided statement forms:
///   unless (e) s                       inverted if
///   with_resource (acq, rel) s         allocate/use/release bracket
///   repeat_n (n) s                     counted loop, fresh counter
///   swap_vars a, b                     exchange via var_type
///   foreach_of id in (e, ...) s        compile-time unrolled iteration
///   assert_nonnull (e) s               null-guarded execution
/// Provided expression forms:
///   min_of (a, b) / max_of (a, b)      single-evaluation min/max
///   clamp_of (x, lo, hi)
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_API_STDMACROS_H
#define MSQ_API_STDMACROS_H

namespace msq {

/// Returns the source text of the standard macro library.
const char *standardMacroLibrarySource();

} // namespace msq

#endif // MSQ_API_STDMACROS_H
