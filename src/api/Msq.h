//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public facade of MS2. An Engine owns one compilation: feed it
/// source text (meta program + object program, mixed freely as with CPP),
/// get back the macro-expanded C program.
///
/// \code
///   msq::Engine Engine;
///   msq::ExpandResult R = Engine.expandSource("demo.c", Source);
///   if (R.Success) puts(R.Output.c_str());
///   else fputs(R.DiagnosticsText.c_str(), stderr);
/// \endcode
///
/// For many independent translation units sharing one macro library, take
/// a snapshot of the session and expand them as a batch (see
/// driver/BatchDriver.h):
///
/// \code
///   Engine.loadStandardLibrary();
///   Engine.expandSource("lib.c", LibrarySource);          // define macros
///   msq::BatchResult B = Engine.expandSources(Units);     // N units, parallel
/// \endcode
///
//======---------------------------------------------------------------------===//

#ifndef MSQ_API_MSQ_H
#define MSQ_API_MSQ_H

#include "analysis/Lint.h"
#include "analysis/Provenance.h"
#include "expand/Expander.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "printer/CPrinter.h"
#include "support/Metrics.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace msq {

class BatchDriver;
class DependencyRecorder;
class ExpansionCache;
class IncrementalDriver;
class SessionSnapshot;
struct BatchOptions;
struct BatchResult;
struct DefinitionFingerprints;

/// Outcome of one expansion run.
struct ExpandResult {
  bool Success = false;
  /// Name of the source buffer this result describes.
  std::string Name;
  /// The expanded program, printed as C.
  std::string Output;
  /// Rendered diagnostics (errors, warnings, notes).
  std::string DiagnosticsText;
  /// Number of macro invocations expanded.
  size_t InvocationsExpanded = 0;
  /// Number of macros defined by the meta program.
  size_t MacrosDefined = 0;
  /// Meta-interpreter steps executed during this call.
  size_t MetaStepsExecuted = 0;
  /// Fresh identifiers created (gensym + hygiene renames) during this call.
  size_t GensymsCreated = 0;
  /// AST nodes visited/produced by the expander during this call.
  size_t NodesProduced = 0;
  /// True when this unit was aborted because the meta program ran out of
  /// fuel (Options::MaxMetaSteps) / exceeded its wall-clock budget
  /// (Options::UnitTimeoutMillis). Success is false in either case and a
  /// diagnostic explains which limit was hit.
  bool FuelExhausted = false;
  bool TimedOut = false;
  /// True when this unit wrote meta-global state that predated it — a
  /// non-local transformation in the paper's sense (the window-procedure
  /// accumulator). Such units are never served from or stored into the
  /// expansion cache, because replaying their printed output would skip
  /// their side effects.
  bool MetaGlobalsMutated = false;
  /// True when this result was replayed from the expansion cache instead
  /// of being parsed and expanded (batch expansion with caching enabled).
  bool FromCache = false;
  /// True when an injected fault (support/Fault.h) aborted this unit's
  /// expansion — e.g. an interp.alloc trip. The diagnostics name the
  /// fault point. Such results are never cached: re-expanding the unit
  /// without the fault would succeed, so replaying the failure would be
  /// wrong.
  bool FaultInjected = false;
  /// True when this unit's expansion died unexpectedly inside a batch
  /// (a crash, real or injected at batch.unit_start) and the batch driver
  /// quarantined it: the unit reports a structured error and the rest of
  /// the batch continues unaffected. Never cached.
  bool Quarantined = false;
  /// Expansion trace for this call (Options::TraceExpansions only).
  std::string TraceText;
  /// Per-macro expansion profile for this call (Options::CollectProfile).
  ExpansionProfile Profile;
  /// Definition-time lint findings (Options::Lint.Enabled): every macro
  /// and meta function visible to this unit except internal buffers,
  /// already deduplicated and sorted (see analysis/Lint.h).
  std::vector<LintDiagnostic> Lints;
  /// JSON source map from output lines back to macro invocation sites
  /// (Options::TrackProvenance + Options::EmitSourceMap; empty otherwise).
  std::string SourceMapJson;
};

/// A named source buffer: the unit of session recording and of batch
/// expansion.
struct SourceUnit {
  std::string Name;
  std::string Source;
  /// Concrete-syntax base this unit is written in (synbase/SyntaxBase.h).
  /// Empty means "use the engine's Options::Base"; otherwise the name of
  /// a registered base ("c", "sexpr"). Participates in session replay,
  /// stateFingerprint, and every expansion-cache key: the same bytes
  /// parsed under different bases are different programs.
  std::string Base;
};

/// One MS2 compilation session. Macro definitions and meta globals persist
/// across expandSource calls, so a macro library can be loaded first and
/// user programs expanded afterwards.
class Engine {
public:
  struct Options {
    /// Compile each macro pattern to a specialized matcher at definition
    /// time (paper section 3's suggested acceleration).
    bool UseCompiledPatterns = false;
    /// Hygienic expansion (the paper's future-work direction): rename
    /// template-declared locals and labels to fresh names at every
    /// instantiation so they cannot capture user identifiers.
    bool HygienicExpansion = false;
    /// Record a per-invocation expansion trace in ExpandResult::TraceText.
    bool TraceExpansions = false;
    /// Collect a per-macro profile into ExpandResult::Profile.
    bool CollectProfile = true;
    /// Fuel: meta-interpreter steps allowed per expandSource call. A unit
    /// that exceeds it is aborted with a diagnostic (no hang).
    size_t MaxMetaSteps = 50'000'000;
    /// Maximum recursive macro-expansion nesting per unit.
    unsigned MaxExpansionDepth = 128;
    /// Wall-clock budget per expandSource call in milliseconds; 0 means
    /// unlimited. Overruns abort the unit with a diagnostic.
    unsigned UnitTimeoutMillis = 0;
    /// Content-addressed expansion cache for expandSources batches: units
    /// whose (source, macro-library fingerprint, options) were seen before
    /// replay their printed output and diagnostics without parsing or
    /// expanding. The in-memory tier is shared across expandSources calls
    /// on this engine. Ignored when TraceExpansions is set (traces are
    /// not cached).
    bool EnableExpansionCache = false;
    /// Directory for the persistent on-disk cache tier; empty keeps the
    /// cache in memory only. Entries are hash-named files; a corrupt or
    /// truncated entry is treated as a miss, never an error.
    std::string ExpansionCacheDir;
    /// Definition-time linting (analysis/Lint.h): with Lint.Enabled, every
    /// expand call also lints the visible macro definitions and reports
    /// findings in ExpandResult::Lints. Lint.Hygienic is overridden with
    /// HygienicExpansion at run time. Participates in stateFingerprint, so
    /// cached replays never skip or duplicate lint results.
    LintOptions Lint;
    /// Track expansion provenance: every produced node is stamped with a
    /// compact invocation-frame id and diagnostics raised inside macro
    /// expansions render "in expansion of macro 'X' (invoked at
    /// file:line:col, depth N)" backtrace chains. Participates in
    /// stateFingerprint (backtraces change DiagnosticsText).
    bool TrackProvenance = false;
    /// With TrackProvenance: also emit the JSON source map from output
    /// lines back to invocation sites into ExpandResult::SourceMapJson.
    bool EmitSourceMap = false;
    /// Default concrete-syntax base for units that do not name their own
    /// (SourceUnit::Base). Must name a registered SyntaxBase; an unknown
    /// name makes expansion fail with a structured error rather than
    /// guessing. Participates in stateFingerprint.
    std::string Base = "c";
  };

  Engine();
  explicit Engine(Options Opts);
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Parses and expands \p Source, returning the printed C program.
  ExpandResult expandSource(std::string Name, std::string Source);
  /// SourceUnit overload: honors the unit's concrete-syntax base
  /// (SourceUnit::Base; empty falls back to Options::Base).
  ExpandResult expandSource(SourceUnit Unit);

  /// Like expandSource, but the unit is NOT appended to the session log:
  /// its definitions and metadcl mutations affect this engine's live state
  /// but are invisible to snapshot()/stateFingerprint() replay. This is
  /// the per-request path of long-lived servers, whose workers restore a
  /// checkpoint() between units to keep requests isolated (the same
  /// discipline BatchDriver applies inside run()).
  ExpandResult expandUnrecorded(std::string Name, std::string Source);
  ExpandResult expandUnrecorded(SourceUnit Unit);

  /// Outcome of one lintSource call.
  struct LintResult {
    /// False when the source failed to parse (see DiagnosticsText); the
    /// report may then be incomplete. Lint findings do NOT affect Success.
    bool Success = false;
    std::string Name;
    LintReport Report;
    std::string DiagnosticsText;
  };

  /// Parses \p Source — registering its syntax/meta-function definitions
  /// against this session, like expandUnrecorded — and lints the
  /// definitions the source itself contributes (library definitions loaded
  /// earlier are not re-reported). Nothing is expanded or recorded in the
  /// session log. Lint.Enabled need not be set; this entry point always
  /// lints.
  LintResult lintSource(std::string Name, std::string Source);
  LintResult lintSource(SourceUnit Unit);

  /// Overrides the per-unit fuel and wall-clock limits used by subsequent
  /// expand calls (0 = the interpreter's constructed fuel default /
  /// no timeout). Per-request limit plumbing for the expansion server;
  /// note that MaxMetaSteps participates in expansion-cache keys, so
  /// callers that mix limits must key their lookups on the effective
  /// value (expansionCacheKey does).
  void setUnitLimits(size_t MaxMetaSteps, unsigned TimeoutMillis);

  /// Overrides the provenance settings for subsequent expand calls (the
  /// server lets single requests opt in). A caller toggling this must
  /// carry the effective value into any cache key it derives — the
  /// fingerprint taken before the toggle no longer covers it.
  void setProvenanceOptions(bool Track, bool EmitMap) {
    Opts.TrackProvenance = Track;
    Opts.EmitSourceMap = EmitMap;
  }

  const Options &options() const { return Opts; }

  /// Expands N independent translation units against an immutable snapshot
  /// of this session's state (macro library + meta globals), in parallel,
  /// and returns per-unit results in input order. This engine itself is
  /// not mutated: each unit sees exactly the session state at the time of
  /// the call, and nothing a unit does (macro definitions, metadcl
  /// mutations) is visible to any sibling unit or to this engine.
  /// Defined in driver/BatchDriver.cpp; link msq_driver to use it.
  ///
  /// Re-entrancy: expandSources may be called from several threads at
  /// once on one engine — each call reads the session log, builds private
  /// worker engines, and shares only the (thread-safe) expansion cache,
  /// whose lazy creation is guarded by ExpCacheMutex. What is NOT safe is
  /// mutating the session (expandSource/parseSource/loadStandardLibrary/
  /// restoreCheckpoint) concurrently with any other engine call; the
  /// expansion server serializes library swaps behind a generation
  /// mechanism for exactly this reason.
  BatchResult expandSources(std::vector<SourceUnit> Units);
  BatchResult expandSources(std::vector<SourceUnit> Units,
                            const BatchOptions &BO);

  /// An immutable, shareable capture of this session: everything needed to
  /// rebuild the current macro tables, meta globals, and interned AST pool
  /// in another engine (realized as a replay of the session's sources).
  SessionSnapshot snapshot() const;

  /// Content fingerprint of everything that can influence a unit's
  /// expansion: every syntax/metadcl definition, meta-function bodies,
  /// interpreter meta-global values, the gensym counter, session-scope
  /// typedefs and recorded variable types, expansion-relevant Options
  /// fields, and the session log itself. Two engines with equal
  /// fingerprints expand any unit identically, which is what makes the
  /// fingerprint a sound cache-key component. \p Stable (optional) is set
  /// to false when the state cannot be hashed faithfully — e.g. a closure
  /// stored in a meta global — in which case callers must not trust the
  /// digest for caching. Defined in cache/Fingerprint.cpp; link msq_cache
  /// to use it.
  std::string stateFingerprint(bool *Stable = nullptr) const;

  /// Parses \p Source without expanding (definitions are still registered
  /// and available to later calls).
  TranslationUnit *parseSource(std::string Name, std::string Source);
  TranslationUnit *parseSource(SourceUnit Unit);

  /// Loads the standard macro library (see api/StdMacros.h). Returns false
  /// (with diagnostics in the result of a later call) if it failed — which
  /// indicates a build defect, not a user error.
  bool loadStandardLibrary();

  /// Expands an already-parsed translation unit.
  TranslationUnit *expandUnit(TranslationUnit *TU);

  /// Renders a tree as C.
  std::string print(const Node *N) const { return printNode(N); }

  /// Captured session state: macro tables, meta-function registry, meta
  /// globals (name types and values), typedef scopes, and recorded object
  /// variable types. All copies are map-shallow — the underlying AST lives
  /// in this engine's arena, which only grows — so checkpoint/restore is
  /// cheap and scoped to THIS engine. The batch driver uses it to give
  /// every translation unit a pristine view of the macro library.
  struct SessionCheckpoint {
    MacroRegistry Macros;
    MetaFunctionRegistry MetaFuncs;
    MetaScope Globals;
    std::vector<std::unordered_set<Symbol, SymbolHash>> TypedefScopes;
    std::unordered_map<Symbol, TypeSpecNode *, SymbolHash> ObjectVarTypes;
    Interpreter::SavedState Interp;
  };
  SessionCheckpoint checkpoint() const;
  void restoreCheckpoint(const SessionCheckpoint &CP);

  /// Per-definition content fingerprints of the current library state —
  /// the diffable form of stateFingerprint, one digest per macro / meta
  /// function / meta-global value plus whole-state hashes for the
  /// parse-steering residue. \p LibraryText is folded into the capture's
  /// LibraryTextHash (the caller names the sources the library was built
  /// from). Defined in cache/Fingerprint.cpp; link msq_cache to use it.
  DefinitionFingerprints
  definitionFingerprints(const std::vector<std::string> &LibraryText) const;

  /// Injection points for incremental re-expansion (driver/Incremental.h).
  /// All pointers are optional; a default-constructed ReexpandHooks makes
  /// reexpand behave exactly like expandUnrecorded.
  struct ReexpandHooks {
    /// Skip lexing: parse from this token stream (a copy is taken; the
    /// parser's placeholder co-routine rewrites tokens in place). Sound
    /// only if the tokens were lexed from byte-identical source.
    const std::vector<Token> *CachedTokens = nullptr;
    /// Skip lexing AND parsing: expand this tree. The caller must pass a
    /// fresh deep clone (expansion mutates trees in place) with
    /// invocation definitions remapped to the live registry, and must
    /// have restored the matching after-parse session state first.
    TranslationUnit *CachedTree = nullptr;
    /// Record what the expansion consumed (macros invoked, meta-level
    /// names resolved) into this recorder.
    DependencyRecorder *Deps = nullptr;
    /// Out: the freshly lexed token stream — filled only when lexing ran
    /// AND produced no diagnostics (cached tokens cannot replay diags).
    std::vector<Token> *TokensOut = nullptr;
    /// Out: a pristine deep clone of the parse tree, taken BEFORE
    /// expansion — filled only when parsing ran and emitted no
    /// diagnostics (reusing the tree skips the parse, so the parse must
    /// have nothing to re-report).
    TranslationUnit **TreeOut = nullptr;
    /// Out: session state right after the parse (the parse's side
    /// effects — registered macros, typedefs, recorded variable types —
    /// must be restored before re-expanding TreeOut). Filled with
    /// TreeOut.
    SessionCheckpoint *AfterParseOut = nullptr;
  };

  /// expandUnrecorded with incremental injection points: the engine's
  /// re-expansion primitive. Byte-identical to a from-scratch expansion
  /// of (current session state, \p Source) whenever the hooks' validity
  /// contracts hold — the edit-fuzzing differential tier
  /// (tests/incremental_diff_test.cpp) enforces exactly that.
  ExpandResult reexpand(std::string Name, std::string Source,
                        const ReexpandHooks &Hooks);
  ExpandResult reexpand(SourceUnit Unit, const ReexpandHooks &Hooks);

  // Advanced access for tests and benchmarks.
  CompilationContext &context() { return *CC; }
  Interpreter &interpreter() { return *Interp; }
  SourceManager &sourceManager() { return SM; }

private:
  friend class BatchDriver;
  friend class IncrementalDriver;
  friend class SessionSnapshot;

  /// Shared implementation of expandSource. \p EmitOutput controls whether
  /// the expanded tree is printed (snapshot replay skips it); \p Record
  /// controls whether the source is appended to the session log.
  ExpandResult expandSourceImpl(SourceUnit Unit, bool EmitOutput, bool Record);
  /// Full implementation underneath expandSourceImpl and reexpand.
  ExpandResult expandSourceHooked(SourceUnit Unit, bool EmitOutput,
                                  bool Record, const ReexpandHooks &Hooks);
  TranslationUnit *parseSourceImpl(SourceUnit Unit);

  /// One session-log entry: a source fed to this engine, and whether it
  /// was only parsed (parseSource) or fully expanded (expandSource).
  struct LogEntry {
    SourceUnit Unit;
    bool ParseOnly = false;
  };

  SourceManager SM;
  Options Opts;
  std::unique_ptr<CompilationContext> CC;
  std::unique_ptr<Interpreter> Interp;
  std::vector<LogEntry> SessionLog;
  /// Expansion cache shared by every expandSources call on this engine
  /// (created lazily by the batch driver when Options enable caching; the
  /// type lives in cache/ExpansionCache.h). ExpCacheMutex guards the lazy
  /// creation so concurrent expandSources calls agree on one cache.
  std::shared_ptr<ExpansionCache> ExpCache;
  std::mutex ExpCacheMutex;
};

/// An immutable capture of an Engine session, shared by reference counting.
/// Workers rebuild the session by replaying the recorded sources into a
/// private engine: cloned macro tables, meta globals, and interned AST pool
/// with no pointers into the original engine, so any number of threads can
/// expand against one snapshot concurrently.
class SessionSnapshot {
public:
  using LogEntry = Engine::LogEntry;

  SessionSnapshot() = default;

  const Engine::Options &options() const { return D->Opts; }
  const std::vector<LogEntry> &log() const { return D->Log; }
  bool valid() const { return D != nullptr; }

private:
  friend class Engine;
  struct Data {
    Engine::Options Opts;
    std::vector<LogEntry> Log;
  };
  explicit SessionSnapshot(std::shared_ptr<const Data> D) : D(std::move(D)) {}
  std::shared_ptr<const Data> D;
};

} // namespace msq

#endif // MSQ_API_MSQ_H
