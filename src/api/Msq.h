//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public facade of MS2. An Engine owns one compilation: feed it
/// source text (meta program + object program, mixed freely as with CPP),
/// get back the macro-expanded C program.
///
/// \code
///   msq::Engine Engine;
///   msq::ExpandResult R = Engine.expandSource("demo.c", Source);
///   if (R.Success) puts(R.Output.c_str());
///   else fputs(R.DiagnosticsText.c_str(), stderr);
/// \endcode
///
//======---------------------------------------------------------------------===//

#ifndef MSQ_API_MSQ_H
#define MSQ_API_MSQ_H

#include "expand/Expander.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "printer/CPrinter.h"

#include <memory>
#include <string>

namespace msq {

/// Outcome of one expansion run.
struct ExpandResult {
  bool Success = false;
  /// The expanded program, printed as C.
  std::string Output;
  /// Rendered diagnostics (errors, warnings, notes).
  std::string DiagnosticsText;
  /// Number of macro invocations expanded.
  size_t InvocationsExpanded = 0;
  /// Number of macros defined by the meta program.
  size_t MacrosDefined = 0;
  /// Meta-interpreter steps executed during this call.
  size_t MetaStepsExecuted = 0;
  /// Fresh identifiers created (gensym + hygiene renames) during this call.
  size_t GensymsCreated = 0;
  /// Expansion trace for this call (Options::TraceExpansions only).
  std::string TraceText;
};

/// One MS2 compilation session. Macro definitions and meta globals persist
/// across expandSource calls, so a macro library can be loaded first and
/// user programs expanded afterwards.
class Engine {
public:
  struct Options {
    /// Compile each macro pattern to a specialized matcher at definition
    /// time (paper section 3's suggested acceleration).
    bool UseCompiledPatterns = false;
    /// Hygienic expansion (the paper's future-work direction): rename
    /// template-declared locals and labels to fresh names at every
    /// instantiation so they cannot capture user identifiers.
    bool HygienicExpansion = false;
    /// Record a per-invocation expansion trace in ExpandResult::TraceText.
    bool TraceExpansions = false;
  };

  Engine();
  explicit Engine(Options Opts);
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Parses and expands \p Source, returning the printed C program.
  ExpandResult expandSource(std::string Name, std::string Source);

  /// Parses \p Source without expanding (definitions are still registered
  /// and available to later calls).
  TranslationUnit *parseSource(std::string Name, std::string Source);

  /// Loads the standard macro library (see api/StdMacros.h). Returns false
  /// (with diagnostics in the result of a later call) if it failed — which
  /// indicates a build defect, not a user error.
  bool loadStandardLibrary();

  /// Expands an already-parsed translation unit.
  TranslationUnit *expandUnit(TranslationUnit *TU);

  /// Renders a tree as C.
  std::string print(const Node *N) const { return printNode(N); }

  // Advanced access for tests and benchmarks.
  CompilationContext &context() { return *CC; }
  Interpreter &interpreter() { return *Interp; }
  SourceManager &sourceManager() { return SM; }

private:
  SourceManager SM;
  Options Opts;
  std::unique_ptr<CompilationContext> CC;
  std::unique_ptr<Interpreter> Interp;
};

} // namespace msq

#endif // MSQ_API_MSQ_H
