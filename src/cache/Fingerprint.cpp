//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Engine::stateFingerprint — the macro-library fingerprint underneath
/// every expansion-cache key. The fingerprint folds in, in a fixed order:
///
///   1. the expansion-relevant Options fields;
///   2. every macro definition, printed back to its surface syntax
///      (printed definitions re-parse, so the print is a faithful
///      structural identity);
///   3. every meta-function definition, printed the same way;
///   4. the interpreter's meta-global environment — each global's name and
///      a structural hash of its current VALUE, because the paper's
///      non-local transformations make expansion depend on values, not
///      just declarations;
///   5. the gensym counter (fresh-name numbering is observable output);
///   6. session-scope typedefs and recorded object-variable types (both
///      steer parsing);
///   7. the session log (names, sources, parse-only bits) — redundant
///      with 2–6 for API users, but it is exactly the state a batch
///      worker is rebuilt from, so hashing it too keeps the fingerprint
///      honest even for callers that mutate engine internals directly.
///
/// Closures stored in meta globals cannot be hashed faithfully (they
/// share captured frames with live state); they mark the fingerprint
/// UNSTABLE, and the batch driver then treats every unit as uncacheable
/// rather than risk a wrong replay.
///
//===----------------------------------------------------------------------===//

#include "api/Msq.h"
#include "expand/DependencyMap.h"
#include "printer/CPrinter.h"
#include "support/Hash.h"

#include <algorithm>
#include <cstring>
#include <map>

using namespace msq;

namespace {

constexpr unsigned MaxValueDepth = 64;

void hashValue(ContentHasher &H, const Value &V, bool &Stable,
               unsigned Depth) {
  if (Depth > MaxValueDepth) {
    // Structures this deep are almost certainly cyclic through shared
    // payloads; refuse to certify them.
    Stable = false;
    H.str("deep");
    return;
  }
  H.u64(V.kind());
  switch (V.kind()) {
  case Value::Unset:
  case Value::Nil:
  case Value::VoidV:
    return;
  case Value::IntV:
    H.u64(uint64_t(V.intValue()));
    return;
  case Value::FloatV: {
    double D = V.floatValue();
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    H.u64(Bits);
    return;
  }
  case Value::StrV:
    H.str(V.strValue());
    return;
  case Value::AstV:
    // The C rendering is deterministic and structural (the printer is
    // round-trip tested); meta code never mutates shared AST in place.
    H.str(printNode(V.astValue()));
    return;
  case Value::IdentVal: {
    Ident Id = V.identValue();
    if (Id.isPlaceholder()) {
      Stable = false; // placeholders in globals reference live parse state
      H.str("ph");
    } else {
      H.str(std::string(Id.Sym.str()));
    }
    return;
  }
  case Value::DeclaratorVal:
    H.str(printDeclarator(V.declaratorValue()));
    return;
  case Value::InitDeclVal: {
    const InitDeclarator *ID = V.initDeclValue();
    H.str(ID->Dtor ? printDeclarator(ID->Dtor) : std::string());
    H.str(ID->Init ? printNode(ID->Init) : std::string());
    return;
  }
  case Value::EnumeratorVal: {
    const Enumerator *E = V.enumeratorValue();
    H.str(E->Name.isPlaceholder() ? std::string("$")
                                  : std::string(E->Name.Sym.str()));
    H.str(E->Value ? printNode(E->Value) : std::string());
    return;
  }
  case Value::ListV: {
    H.u64(V.listSize());
    for (size_t I = 0; I != V.listSize(); ++I)
      hashValue(H, V.listAt(I), Stable, Depth + 1);
    return;
  }
  case Value::TupleV: {
    const TupleData &T = V.tuple();
    H.u64(T.Fields.size());
    for (size_t I = 0; I != T.Fields.size(); ++I) {
      H.str(I < T.Names.size() && T.Names[I].valid()
                ? std::string(T.Names[I].str())
                : std::string());
      hashValue(H, T.Fields[I], Stable, Depth + 1);
    }
    return;
  }
  case Value::ClosureV:
    // A closure's behavior depends on its captured frames, which alias
    // the live environment; there is no faithful content hash for that.
    Stable = false;
    H.str("closure");
    return;
  }
}

} // namespace

std::string Engine::stateFingerprint(bool *StableOut) const {
  bool Stable = true;
  ContentHasher H;
  H.str("msq-library-fp-v3");

  // 1. Options that change what expansion produces or how it can fail.
  H.boolean(Opts.UseCompiledPatterns);
  H.boolean(Opts.HygienicExpansion);
  H.boolean(Opts.CollectProfile);
  H.u64(Opts.MaxMetaSteps);
  H.u64(Opts.MaxExpansionDepth);
  // Lint and provenance configuration: both change what a result carries
  // (findings, backtraced diagnostics, source maps), so a cached replay
  // keyed under one configuration must never serve another.
  H.boolean(Opts.Lint.Enabled);
  H.boolean(Opts.Lint.Werror);
  {
    std::vector<std::string> Disabled = Opts.Lint.DisabledRules;
    std::sort(Disabled.begin(), Disabled.end());
    H.u64(Disabled.size());
    for (const std::string &Rule : Disabled)
      H.str(Rule);
  }
  H.boolean(Opts.TrackProvenance);
  H.boolean(Opts.EmitSourceMap);
  // The default concrete-syntax base decides how base-less units parse.
  H.str(Opts.Base);

  // 2. Macro definitions, sorted by name for map-order independence.
  {
    std::map<std::string_view, const MacroDef *> Sorted;
    for (const auto &[Name, Def] : CC->Macros)
      Sorted.emplace(Name.str(), Def);
    H.u64(Sorted.size());
    for (const auto &[Name, Def] : Sorted) {
      H.str(Name);
      H.str(printNode(Def));
    }
  }

  // 3. Meta-function definitions.
  {
    std::map<std::string_view, const MetaFunction *> Sorted;
    for (const auto &[Name, Fn] : CC->MetaFuncs)
      Sorted.emplace(Name.str(), &Fn);
    H.u64(Sorted.size());
    for (const auto &[Name, Fn] : Sorted) {
      H.str(Name);
      H.str(Fn->Def ? printNode(Fn->Def) : std::string());
    }
  }

  // 4. Meta-global values, frame by frame (outermost first), each frame's
  // bindings sorted by name.
  {
    std::vector<std::shared_ptr<EnvFrame>> Frames =
        Interp->globalEnv().snapshot();
    H.u64(Frames.size());
    for (const std::shared_ptr<EnvFrame> &F : Frames) {
      std::map<std::string_view, const Value *> Sorted;
      for (const auto &[Name, V] : F->Vars)
        Sorted.emplace(Name.str(), &V);
      H.u64(Sorted.size());
      for (const auto &[Name, V] : Sorted) {
        H.str(Name);
        hashValue(H, *V, Stable, 0);
      }
    }
  }

  // 5. Fresh-name numbering.
  H.u64(Interp->gensymCount());

  // 6. Session-scope parse state: typedefs and recorded variable types.
  {
    std::vector<std::string_view> Typedefs;
    for (const auto &Scope : CC->TypedefScopes)
      for (Symbol S : Scope)
        Typedefs.push_back(S.str());
    std::sort(Typedefs.begin(), Typedefs.end());
    H.u64(Typedefs.size());
    for (std::string_view T : Typedefs)
      H.str(T);

    std::map<std::string_view, const TypeSpecNode *> VarTypes;
    for (const auto &[Name, Type] : CC->ObjectVarTypes)
      VarTypes.emplace(Name.str(), Type);
    H.u64(VarTypes.size());
    for (const auto &[Name, Type] : VarTypes) {
      H.str(Name);
      H.str(Type ? printNode(Type) : std::string());
    }
  }

  // 7. The session log — the exact recipe batch workers replay.
  H.u64(SessionLog.size());
  for (const LogEntry &L : SessionLog) {
    H.str(L.Unit.Name);
    H.str(L.Unit.Source);
    H.str(L.Unit.Base);
    H.boolean(L.ParseOnly);
  }

  if (StableOut)
    *StableOut = Stable;
  return H.hexDigest();
}

//===----------------------------------------------------------------------===//
// Per-definition fingerprints (expand/DependencyMap.h)
//===----------------------------------------------------------------------===//
//
// The same state stateFingerprint folds into ONE digest, captured as one
// digest PER definition so that two captures can be diffed into a
// LibraryDelta. The hashing primitives are shared (hashValue above), so
// "this definition's fingerprint changed" and "the whole-library
// fingerprint changed" can never disagree about what a change is.

DefinitionFingerprints Engine::definitionFingerprints(
    const std::vector<std::string> &LibraryText) const {
  DefinitionFingerprints FP;

  {
    ContentHasher H;
    H.str("msq-def-fp-options-v2");
    H.boolean(Opts.UseCompiledPatterns);
    H.boolean(Opts.HygienicExpansion);
    H.boolean(Opts.CollectProfile);
    H.u64(Opts.MaxMetaSteps);
    H.u64(Opts.MaxExpansionDepth);
    H.boolean(Opts.Lint.Enabled);
    H.boolean(Opts.Lint.Werror);
    std::vector<std::string> Disabled = Opts.Lint.DisabledRules;
    std::sort(Disabled.begin(), Disabled.end());
    H.u64(Disabled.size());
    for (const std::string &Rule : Disabled)
      H.str(Rule);
    H.boolean(Opts.TrackProvenance);
    H.boolean(Opts.EmitSourceMap);
    H.str(Opts.Base);
    FP.OptionsHash = H.hexDigest();
  }

  // Parse-steering residue: session typedefs and recorded variable types.
  // (The macro signature SET also steers parsing, but it is diffed
  // per-definition via MacroSignature, which is strictly more precise.)
  {
    ContentHasher H;
    H.str("msq-def-fp-parse-v1");
    std::vector<std::string_view> Typedefs;
    for (const auto &Scope : CC->TypedefScopes)
      for (Symbol S : Scope)
        Typedefs.push_back(S.str());
    std::sort(Typedefs.begin(), Typedefs.end());
    H.u64(Typedefs.size());
    for (std::string_view T : Typedefs)
      H.str(T);
    std::map<std::string_view, const TypeSpecNode *> VarTypes;
    for (const auto &[Name, Type] : CC->ObjectVarTypes)
      VarTypes.emplace(Name.str(), Type);
    H.u64(VarTypes.size());
    for (const auto &[Name, Type] : VarTypes) {
      H.str(Name);
      H.str(Type ? printNode(Type) : std::string());
    }
    FP.ParseStateHash = H.hexDigest();
  }

  for (const auto &[Name, Def] : CC->Macros) {
    ContentHasher HSig, HFull;
    HSig.str(printMacroSignature(Def));
    HFull.str(printNode(Def));
    FP.MacroSignature[std::string(Name.str())] = HSig.hexDigest();
    FP.MacroFull[std::string(Name.str())] = HFull.hexDigest();
  }

  for (const auto &[Name, Fn] : CC->MetaFuncs) {
    ContentHasher H;
    H.str(Fn.Def ? printNode(Fn.Def) : std::string());
    FP.MetaFunc[std::string(Name.str())] = H.hexDigest();
  }

  // Meta-global VALUES, one digest per name. A name bound in several
  // global frames folds every occurrence (outermost first) into one
  // digest — shadowing then shows up as a value change, which is the
  // conservative reading.
  {
    std::vector<std::shared_ptr<EnvFrame>> Frames =
        Interp->globalEnv().snapshot();
    std::map<std::string, ContentHasher> PerName;
    for (size_t FI = 0; FI != Frames.size(); ++FI) {
      std::map<std::string_view, const Value *> Sorted;
      for (const auto &[Name, V] : Frames[FI]->Vars)
        Sorted.emplace(Name.str(), &V);
      for (const auto &[Name, V] : Sorted) {
        ContentHasher &H = PerName[std::string(Name)];
        H.u64(FI);
        hashValue(H, *V, FP.Stable, 0);
      }
    }
    for (auto &[Name, H] : PerName)
      FP.GlobalValue[Name] = H.hexDigest();
  }

  FP.GensymCounter = Interp->gensymCount();

  {
    ContentHasher H;
    H.str("msq-def-fp-libtext-v1");
    H.u64(LibraryText.size());
    for (const std::string &Text : LibraryText)
      H.str(Text);
    FP.LibraryTextHash = H.hexDigest();
  }

  return FP;
}

DefinitionFingerprints msq::computeDefinitionFingerprints(
    const Engine &E, const std::vector<std::string> &LibraryText) {
  return E.definitionFingerprints(LibraryText);
}
