//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "cache/SubUnitCache.h"

#include "support/Fault.h"
#include "support/Hash.h"

#include <sstream>

using namespace msq;

std::string msq::subUnitCacheKey(const std::string &Name,
                                 const std::string &Source,
                                 const std::string &Base) {
  ContentHasher H;
  H.str("msq-subunit-key-v2");
  H.str(Name);
  H.str(Source);
  H.str(Base);
  return H.hexDigest();
}

std::string SubUnitCacheStats::toJson() const {
  std::ostringstream OS;
  OS << "{\"token\":{\"hits\":" << TokenHits << ",\"misses\":" << TokenMisses
     << ",\"faults\":" << TokenFaults << "},\"tree\":{\"hits\":" << TreeHits
     << ",\"misses\":" << TreeMisses << ",\"faults\":" << TreeFaults
     << ",\"invalidations\":" << TreeInvalidations << "}}";
  return OS.str();
}

const TokenCacheEntry *TokenStreamCache::lookup(const std::string &Key,
                                                SubUnitCacheStats &Stats) {
  if (fault::shouldFail(fault::Point::IncrTokenCache)) {
    // Degradation: a tripped lookup is a miss — the unit re-lexes from
    // source, so output is unaffected.
    ++Stats.TokenFaults;
    ++Stats.TokenMisses;
    return nullptr;
  }
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Stats.TokenMisses;
    return nullptr;
  }
  ++Stats.TokenHits;
  return &It->second;
}

void TokenStreamCache::store(const std::string &Key, TokenCacheEntry Entry) {
  Map[Key] = std::move(Entry);
}

const TreeCacheEntry *ParseTreeCache::lookup(const std::string &Key,
                                             SubUnitCacheStats &Stats) {
  if (fault::shouldFail(fault::Point::IncrTreeCache)) {
    ++Stats.TreeFaults;
    ++Stats.TreeMisses;
    return nullptr;
  }
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Stats.TreeMisses;
    return nullptr;
  }
  ++Stats.TreeHits;
  return &It->second;
}

void ParseTreeCache::store(const std::string &Key, TreeCacheEntry Entry) {
  Map[Key] = std::move(Entry);
}

void ParseTreeCache::invalidate(const std::string &Key,
                                SubUnitCacheStats &Stats) {
  if (Map.erase(Key))
    ++Stats.TreeInvalidations;
}
