//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sub-unit caches for incremental re-expansion: the token-stream cache
/// and the parse-tree cache, both content-addressed with the same hashing
/// machinery as the ExpansionCache (support/Hash.h).
///
/// Validity contracts (enforced by driver/Incremental.cpp):
///
///  * Token streams depend ONLY on the source bytes — the lexer consults
///    no macro state — so a token entry is valid whenever the (name,
///    source) key matches, across ANY library change. Only streams whose
///    lexing was diagnostic-free are stored (a replay cannot re-raise
///    lexer diagnostics).
///
///  * Parse trees additionally depend on everything that steers parsing:
///    the macro signature set (macro names act as keywords, and each
///    pattern decides how far an invocation's match consumes), session
///    typedefs, and recorded variable types. A tree entry therefore
///    carries the after-parse session state alongside the pristine tree,
///    and the driver invalidates it on any signature-level change the
///    unit's identifiers could see. Trees are handed out as fresh deep
///    clones — expansion rewrites trees in place, so the pristine copy
///    must never be expanded directly.
///
/// Both lookups evaluate a fault-injection point (incr.token_cache /
/// incr.tree_cache, support/Fault.h): a trip turns the lookup into a
/// miss, degrading to the cold path — byte-identical output, only
/// slower — which the chaos tier asserts.
///
/// Entries hold pointers into ONE engine's arena/interner, so a cache
/// instance is bound to the engine it was filled from and is not
/// thread-safe; the incremental driver owns one per warm engine.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_CACHE_SUBUNITCACHE_H
#define MSQ_CACHE_SUBUNITCACHE_H

#include "api/Msq.h"
#include "lexer/Token.h"

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace msq {

/// Hit/miss/fault accounting for both sub-unit caches.
struct SubUnitCacheStats {
  uint64_t TokenHits = 0;
  uint64_t TokenMisses = 0;
  uint64_t TokenFaults = 0; ///< lookups turned into misses by incr.token_cache
  uint64_t TreeHits = 0;
  uint64_t TreeMisses = 0;
  uint64_t TreeFaults = 0; ///< lookups turned into misses by incr.tree_cache
  uint64_t TreeInvalidations = 0;

  /// {"token":{"hits":N,"misses":N,"faults":N},
  ///  "tree":{"hits":N,"misses":N,"faults":N,"invalidations":N}}
  std::string toJson() const;
};

/// Content key for one unit's token stream / parse tree: a hash of the
/// unit name and source bytes.
/// \p Base is the unit's concrete-syntax base name ("" = engine default):
/// the same bytes under a different base are a different token stream and
/// tree, so the base is part of the key.
std::string subUnitCacheKey(const std::string &Name, const std::string &Source,
                            const std::string &Base = "");

/// One cached token stream plus the identifier spellings it contains.
/// The identifier set drives the dependency map's pattern rule: a macro
/// signature change can only re-steer units whose tokens mention the
/// macro's name.
struct TokenCacheEntry {
  std::vector<Token> Toks;
  std::set<std::string> Idents;
};

/// Content-addressed token-stream cache.
class TokenStreamCache {
public:
  /// Returns the entry for \p Key or null. An incr.token_cache fault trip
  /// reports a miss (counted in \p Stats.TokenFaults).
  const TokenCacheEntry *lookup(const std::string &Key,
                                SubUnitCacheStats &Stats);
  void store(const std::string &Key, TokenCacheEntry Entry);
  void clear() { Map.clear(); }
  size_t size() const { return Map.size(); }

private:
  std::unordered_map<std::string, TokenCacheEntry> Map;
};

/// One cached parse: the pristine tree, never expanded in place (the
/// driver hands out deep clones) plus the session state right after the
/// parse. The driver diffs AfterParse against the baseline the parse ran
/// under to extract the unit's parse side effects (registered macros,
/// typedefs, recorded variable types), which it replays onto the CURRENT
/// baseline before re-expanding a clone.
struct TreeCacheEntry {
  TranslationUnit *Pristine = nullptr;
  Engine::SessionCheckpoint AfterParse;
};

/// Content-addressed parse-tree cache.
class ParseTreeCache {
public:
  /// Returns the entry for \p Key or null. An incr.tree_cache fault trip
  /// reports a miss (counted in \p Stats.TreeFaults).
  const TreeCacheEntry *lookup(const std::string &Key,
                               SubUnitCacheStats &Stats);
  void store(const std::string &Key, TreeCacheEntry Entry);
  /// Drops one entry (a signature-level library change invalidated it).
  void invalidate(const std::string &Key, SubUnitCacheStats &Stats);
  void clear() { Map.clear(); }
  size_t size() const { return Map.size(); }

private:
  std::unordered_map<std::string, TreeCacheEntry> Map;
};

} // namespace msq

#endif // MSQ_CACHE_SUBUNITCACHE_H
