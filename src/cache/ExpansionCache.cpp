//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "cache/ExpansionCache.h"

#include "api/Msq.h"
#include "support/Fault.h"
#include "support/Hash.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace msq;

namespace {

/// Backoff before the single retry of a failed disk-tier operation. Long
/// enough to ride out a transient condition (EMFILE churn, an NFS blip),
/// short enough that a degrading store never stalls an expansion visibly.
constexpr std::chrono::milliseconds DiskRetryBackoff{1};

/// Bump when the entry layout changes; readers treat other versions as
/// misses, so mixed-version cache directories just re-fill.
constexpr const char *EntryMagic = "MSQCACHE 2\n";

/// Serialized size of an entry's variable payload (bytes accounting).
uint64_t entryPayloadSize(const CachedExpansion &E) {
  uint64_t N = E.Output.size() + E.DiagnosticsText.size() +
               E.SourceMapJson.size();
  for (const MacroProfileEntry &PE : E.Profile.Macros)
    N += PE.Name.size();
  for (const LintDiagnostic &L : E.Lints)
    N += L.Rule.size() + L.File.size() + L.Macro.size() + L.Message.size();
  return N;
}

/// Incremental reader over a serialized entry; every accessor fails soft
/// (returns false) on truncation or malformed fields, which the caller
/// converts into a cache miss.
class EntryReader {
public:
  explicit EntryReader(std::string_view B) : Buf(B) {}

  bool literal(std::string_view Expected) {
    if (Buf.size() - Pos < Expected.size() ||
        Buf.substr(Pos, Expected.size()) != Expected)
      return false;
    Pos += Expected.size();
    return true;
  }

  /// Reads an unsigned decimal followed by one terminator character.
  bool number(uint64_t &Out, char Term) {
    uint64_t V = 0;
    size_t Digits = 0;
    while (Pos < Buf.size() && Buf[Pos] >= '0' && Buf[Pos] <= '9') {
      if (V > (UINT64_MAX - 9) / 10)
        return false; // overflow == corruption
      V = V * 10 + uint64_t(Buf[Pos] - '0');
      ++Pos;
      ++Digits;
    }
    if (Digits == 0 || Pos >= Buf.size() || Buf[Pos] != Term)
      return false;
    ++Pos;
    Out = V;
    return true;
  }

  /// Reads exactly \p Len raw bytes followed by a newline.
  bool blob(uint64_t Len, std::string &Out) {
    if (Buf.size() - Pos < Len || Buf.size() - Pos - Len < 1 ||
        Buf[Pos + Len] != '\n')
      return false;
    Out.assign(Buf.data() + Pos, Len);
    Pos += Len + 1;
    return true;
  }

  bool atEnd() const { return Pos == Buf.size(); }

private:
  std::string_view Buf;
  size_t Pos = 0;
};

} // namespace

std::string ExpansionCache::serialize(const std::string &Key,
                                      const CachedExpansion &E) {
  std::string Out = EntryMagic;
  Out += Key;
  Out += '\n';
  Out += "flags ";
  Out += E.Success ? '1' : '0';
  Out += ' ';
  Out += E.FuelExhausted ? '1' : '0';
  Out += '\n';
  Out += "counts ";
  Out += std::to_string(E.InvocationsExpanded);
  Out += ' ';
  Out += std::to_string(E.MacrosDefined);
  Out += ' ';
  Out += std::to_string(E.MetaStepsExecuted);
  Out += ' ';
  Out += std::to_string(E.GensymsCreated);
  Out += ' ';
  Out += std::to_string(E.NodesProduced);
  Out += '\n';
  Out += "output ";
  Out += std::to_string(E.Output.size());
  Out += '\n';
  Out += E.Output;
  Out += '\n';
  Out += "diags ";
  Out += std::to_string(E.DiagnosticsText.size());
  Out += '\n';
  Out += E.DiagnosticsText;
  Out += '\n';
  Out += "srcmap ";
  Out += std::to_string(E.SourceMapJson.size());
  Out += '\n';
  Out += E.SourceMapJson;
  Out += '\n';
  Out += "lints ";
  Out += std::to_string(E.Lints.size());
  Out += '\n';
  for (const LintDiagnostic &L : E.Lints) {
    Out += std::to_string(unsigned(L.Severity));
    Out += ' ';
    Out += std::to_string(L.Line);
    Out += ' ';
    Out += std::to_string(L.Column);
    Out += ' ';
    Out += std::to_string(L.Count);
    Out += ' ';
    Out += std::to_string(L.Rule.size());
    Out += ' ';
    Out += std::to_string(L.File.size());
    Out += ' ';
    Out += std::to_string(L.Macro.size());
    Out += ' ';
    Out += std::to_string(L.Message.size());
    Out += '\n';
    Out += L.Rule;
    Out += '\n';
    Out += L.File;
    Out += '\n';
    Out += L.Macro;
    Out += '\n';
    Out += L.Message;
    Out += '\n';
  }
  Out += "profile ";
  Out += std::to_string(E.Profile.Macros.size());
  Out += '\n';
  for (const MacroProfileEntry &PE : E.Profile.Macros) {
    Out += std::to_string(PE.Name.size());
    Out += ' ';
    Out += std::to_string(PE.Invocations);
    Out += ' ';
    Out += std::to_string(PE.TotalNanos);
    Out += ' ';
    Out += std::to_string(PE.MaxNanos);
    Out += ' ';
    Out += std::to_string(PE.NodesProduced);
    Out += ' ';
    Out += std::to_string(PE.GensymsCreated);
    Out += '\n';
    Out += PE.Name;
    Out += '\n';
  }
  Out += "end\n";
  return Out;
}

bool ExpansionCache::deserialize(std::string_view Bytes,
                                 const std::string &Key,
                                 CachedExpansion &Out) {
  EntryReader R(Bytes);
  if (!R.literal(EntryMagic) || !R.literal(Key) || !R.literal("\n"))
    return false;
  if (!R.literal("flags "))
    return false;
  uint64_t Success = 0, Fuel = 0;
  if (!R.number(Success, ' ') || Success > 1 || !R.number(Fuel, '\n') ||
      Fuel > 1)
    return false;
  Out.Success = Success != 0;
  Out.FuelExhausted = Fuel != 0;
  if (!R.literal("counts ") || !R.number(Out.InvocationsExpanded, ' ') ||
      !R.number(Out.MacrosDefined, ' ') ||
      !R.number(Out.MetaStepsExecuted, ' ') ||
      !R.number(Out.GensymsCreated, ' ') || !R.number(Out.NodesProduced, '\n'))
    return false;
  uint64_t Len = 0;
  if (!R.literal("output ") || !R.number(Len, '\n') || !R.blob(Len, Out.Output))
    return false;
  if (!R.literal("diags ") || !R.number(Len, '\n') ||
      !R.blob(Len, Out.DiagnosticsText))
    return false;
  if (!R.literal("srcmap ") || !R.number(Len, '\n') ||
      !R.blob(Len, Out.SourceMapJson))
    return false;
  uint64_t NumLints = 0;
  if (!R.literal("lints ") || !R.number(NumLints, '\n'))
    return false;
  if (NumLints > Bytes.size()) // cheap sanity bound before reserving
    return false;
  Out.Lints.clear();
  Out.Lints.reserve(size_t(NumLints));
  for (uint64_t I = 0; I != NumLints; ++I) {
    LintDiagnostic L;
    uint64_t Sev = 0, Line = 0, Col = 0, Count = 0;
    uint64_t RuleLen = 0, FileLen = 0, MacroLen = 0, MsgLen = 0;
    if (!R.number(Sev, ' ') || Sev > 1 || !R.number(Line, ' ') ||
        !R.number(Col, ' ') || !R.number(Count, ' ') ||
        !R.number(RuleLen, ' ') || !R.number(FileLen, ' ') ||
        !R.number(MacroLen, ' ') || !R.number(MsgLen, '\n'))
      return false;
    if (Line > UINT32_MAX || Col > UINT32_MAX || Count > UINT32_MAX)
      return false;
    L.Severity = Sev ? LintSeverity::Error : LintSeverity::Warning;
    L.Line = unsigned(Line);
    L.Column = unsigned(Col);
    L.Count = unsigned(Count);
    if (!R.blob(RuleLen, L.Rule) || !R.blob(FileLen, L.File) ||
        !R.blob(MacroLen, L.Macro) || !R.blob(MsgLen, L.Message))
      return false;
    Out.Lints.push_back(std::move(L));
  }
  uint64_t Entries = 0;
  if (!R.literal("profile ") || !R.number(Entries, '\n'))
    return false;
  if (Entries > Bytes.size()) // cheap sanity bound before reserving
    return false;
  Out.Profile.Macros.clear();
  Out.Profile.Macros.reserve(size_t(Entries));
  for (uint64_t I = 0; I != Entries; ++I) {
    MacroProfileEntry PE;
    uint64_t NameLen = 0;
    if (!R.number(NameLen, ' ') || !R.number(PE.Invocations, ' ') ||
        !R.number(PE.TotalNanos, ' ') || !R.number(PE.MaxNanos, ' ') ||
        !R.number(PE.NodesProduced, ' ') || !R.number(PE.GensymsCreated, '\n'))
      return false;
    if (!R.blob(NameLen, PE.Name))
      return false;
    Out.Profile.Macros.push_back(std::move(PE));
  }
  if (!R.literal("end\n") || !R.atEnd())
    return false;
  // The sorted-by-name invariant is part of the format; a writer bug or
  // hand-edited entry that breaks it is corruption like any other.
  for (size_t I = 1; I < Out.Profile.Macros.size(); ++I)
    if (!(Out.Profile.Macros[I - 1].Name < Out.Profile.Macros[I].Name))
      return false;
  return true;
}

ExpansionCache::ExpansionCache(std::string DiskDir) : Dir(std::move(DiskDir)) {
  if (Dir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    Dir.clear(); // degrade to memory-only rather than failing batches
}

std::string ExpansionCache::entryPath(const std::string &Key) const {
  return Dir + "/" + Key + ".msqc";
}

size_t ExpansionCache::memoryEntryCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Memory.size();
}

void ExpansionCache::setGeneration(uint64_t Gen) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Generation_ = Gen;
}

uint64_t ExpansionCache::generation() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Generation_;
}

bool ExpansionCache::rekey(const std::string &OldKey,
                           const std::string &NewKey) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Memory.find(OldKey);
  if (It == Memory.end())
    return false;
  if (OldKey == NewKey) {
    It->second.Generation = Generation_;
    return true;
  }
  MemoryEntry E = std::move(It->second);
  Memory.erase(It);
  E.Generation = Generation_;
  Memory[NewKey] = std::move(E);
  return true;
}

size_t ExpansionCache::evictGenerationsBefore(uint64_t OldestLive) {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Evicted = 0;
  for (auto It = Memory.begin(); It != Memory.end();) {
    if (It->second.Generation < OldestLive) {
      It = Memory.erase(It);
      ++Evicted;
    } else {
      ++It;
    }
  }
  return Evicted;
}

bool ExpansionCache::lookup(const std::string &Key, CachedExpansion &Out,
                            CacheStats &Stats) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Memory.find(Key);
    if (It != Memory.end()) {
      Out = It->second.Entry;
      // A hit proves the entry is reachable from the current library
      // fingerprint, so re-tag it into the current generation (an A->B->A
      // reload sequence keeps A's hot entries alive this way).
      It->second.Generation = Generation_;
      ++Stats.Hits;
      Stats.BytesRead += entryPayloadSize(Out);
      return true;
    }
  }
  if (!Dir.empty()) {
    // Disk read with one retry: a transient failure (injected via
    // cache.disk_read, or a real stream error) is retried once after a
    // backoff; a second failure counts a read error and degrades to a
    // miss (falling through to the remote tier, if any).
    std::string Bytes;
    bool HaveBytes = false;
    for (int Attempt = 0;; ++Attempt) {
      std::ifstream In(entryPath(Key), std::ios::binary);
      if (!In)
        break; // absent entry: a plain miss, not a disk error
      bool Failed = fault::shouldFail(fault::Point::CacheDiskRead);
      if (!Failed) {
        std::ostringstream Buf;
        Buf << In.rdbuf();
        Failed = !In.good() && !In.eof();
        if (!Failed) {
          Bytes = Buf.str();
          HaveBytes = true;
        }
      }
      if (!Failed)
        break;
      if (Attempt == 1) {
        ++Stats.DiskReadErrors;
        break;
      }
      std::this_thread::sleep_for(DiskRetryBackoff);
    }
    if (HaveBytes) {
      if (deserialize(Bytes, Key, Out)) {
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          Memory.emplace(Key, MemoryEntry{Out, Generation_});
        }
        ++Stats.Hits;
        Stats.BytesRead += Bytes.size();
        return true;
      }
      // Corrupt/truncated/version-skewed entry == miss, but an
      // OBSERVABLE one: the entry existed and could not be used. No
      // retry: re-reading corrupt bytes cannot help.
      ++Stats.DiskReadErrors;
    }
  }
  if (Remote) {
    // Shared remote tier: another shard (or a previous run of this one)
    // may have published the entry. The client owns retry/timeout; a
    // remote failure already counted RemoteErrors and reads as a miss.
    std::string Bytes;
    if (Remote->get(Key, Bytes, Stats)) {
      if (!deserialize(Bytes, Key, Out)) {
        // The daemon returned bytes that do not decode to this key:
        // corruption in transit or a misbehaving peer. A miss, counted.
        ++Stats.RemoteErrors;
        return false;
      }
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        Memory.emplace(Key, MemoryEntry{Out, Generation_});
      }
      ++Stats.Hits;
      ++Stats.RemoteHits;
      Stats.BytesRead += Bytes.size();
      return true;
    }
  }
  return false;
}

void ExpansionCache::store(const std::string &Key,
                           const CachedExpansion &Entry, CacheStats &Stats) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Memory[Key] = MemoryEntry{Entry, Generation_};
  }
  Stats.BytesWritten += entryPayloadSize(Entry);
  if (Dir.empty() && !Remote)
    return;
  std::string Bytes = serialize(Key, Entry);
  // Publish atomically: a temp file unique to this thread, then rename.
  // Concurrent writers of the same key race benignly — both bodies are
  // byte-identical by construction (same key => same content). Every
  // stage (open, payload write, rename) evaluates cache.disk_write, and
  // a failed publish is retried once after a backoff; a second failure
  // degrades the entry to memory-only. Readers can never observe a
  // partial entry: the temp file only becomes visible via the rename,
  // and a torn temp file is removed, never renamed.
  if (!Dir.empty()) {
    for (int Attempt = 0;; ++Attempt) {
      if (publishDisk(Key, Bytes)) {
        Stats.BytesWritten += Bytes.size();
        break;
      }
      ++Stats.DiskWriteErrors;
      if (Attempt == 1) {
        ++Stats.DiskDegraded; // memory tier still serves the entry
        break;
      }
      std::this_thread::sleep_for(DiskRetryBackoff);
    }
  }
  // Best-effort publish to the shared remote tier: the client counts
  // RemoteStores/RemoteErrors, and a failure changes nothing locally.
  if (Remote)
    Remote->put(Key, Bytes, Stats);
}

bool ExpansionCache::publishDisk(const std::string &Key,
                                 const std::string &Bytes) {
  std::ostringstream TmpName;
  TmpName << entryPath(Key) << ".tmp." << std::hash<std::thread::id>()(
      std::this_thread::get_id());
  std::error_code EC;
  {
    if (fault::shouldFail(fault::Point::CacheDiskWrite))
      return false; // open failed; nothing was created
    std::ofstream OutF(TmpName.str(), std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    if (fault::shouldFail(fault::Point::CacheDiskWrite)) {
      // Simulate a write(2) dying MID-ENTRY: leave half the payload in
      // the temp file (as a crashed writer would) and fail. This is the
      // torn-write case the atomic rename exists for — the torn bytes
      // sit under a name no reader ever opens, and the entry path itself
      // is never touched, so the next read sees the old entry or none.
      OutF.write(Bytes.data(), std::streamsize(Bytes.size() / 2));
      return false;
    }
    OutF.write(Bytes.data(), std::streamsize(Bytes.size()));
    if (!OutF) {
      OutF.close();
      std::filesystem::remove(TmpName.str(), EC);
      return false;
    }
  }
  if (fault::shouldFail(fault::Point::CacheDiskWrite)) {
    std::filesystem::remove(TmpName.str(), EC);
    return false; // rename failed
  }
  std::filesystem::rename(TmpName.str(), entryPath(Key), EC);
  if (EC) {
    std::filesystem::remove(TmpName.str(), EC);
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Unit cache keys
//===----------------------------------------------------------------------===//

std::string msq::expansionCacheKey(const std::string &LibraryFingerprint,
                                   const SourceUnit &Unit,
                                   size_t EffectiveMaxMetaSteps,
                                   bool CollectProfile,
                                   bool TrackProvenance) {
  ContentHasher H;
  H.str("msq-unit-key-v3");
  H.str(LibraryFingerprint);
  H.str(Unit.Name);
  H.str(Unit.Source);
  // The concrete-syntax base is part of the program's identity: identical
  // bytes parsed as C and as S-expressions are different units.
  H.str(Unit.Base);
  H.u64(EffectiveMaxMetaSteps);
  H.boolean(CollectProfile);
  H.boolean(TrackProvenance);
  return H.hexDigest();
}

//===----------------------------------------------------------------------===//
// Result <-> entry conversions (the replay path, shared by the batch
// driver and the expansion server).
//===----------------------------------------------------------------------===//

ExpandResult msq::expandResultFromCache(const std::string &Name,
                                        const CachedExpansion &CE) {
  ExpandResult R;
  R.Name = Name;
  R.Success = CE.Success;
  R.FuelExhausted = CE.FuelExhausted;
  R.Output = CE.Output;
  R.DiagnosticsText = CE.DiagnosticsText;
  R.InvocationsExpanded = size_t(CE.InvocationsExpanded);
  R.MacrosDefined = size_t(CE.MacrosDefined);
  R.MetaStepsExecuted = size_t(CE.MetaStepsExecuted);
  R.GensymsCreated = size_t(CE.GensymsCreated);
  R.NodesProduced = size_t(CE.NodesProduced);
  R.Profile = CE.Profile;
  R.Lints = CE.Lints;
  R.SourceMapJson = CE.SourceMapJson;
  R.FromCache = true;
  return R;
}

CachedExpansion msq::cachedExpansionFromResult(const ExpandResult &R) {
  CachedExpansion CE;
  CE.Success = R.Success;
  CE.FuelExhausted = R.FuelExhausted;
  CE.Output = R.Output;
  CE.DiagnosticsText = R.DiagnosticsText;
  CE.InvocationsExpanded = R.InvocationsExpanded;
  CE.MacrosDefined = R.MacrosDefined;
  CE.MetaStepsExecuted = R.MetaStepsExecuted;
  CE.GensymsCreated = R.GensymsCreated;
  CE.NodesProduced = R.NodesProduced;
  CE.Profile = R.Profile;
  CE.Lints = R.Lints;
  CE.SourceMapJson = R.SourceMapJson;
  return CE;
}

bool msq::expansionResultCacheable(const ExpandResult &R) {
  // Fault-injected and quarantined failures are schedule-dependent, not
  // content-dependent: the same unit without the fault would expand
  // normally, so replaying the failure later would be wrong.
  return !R.TimedOut && !R.MetaGlobalsMutated && !R.FaultInjected &&
         !R.Quarantined;
}
