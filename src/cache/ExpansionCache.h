//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed expansion cache. A translation unit is keyed by the
/// hash of (unit name, unit source, macro-library fingerprint, the
/// expansion-relevant Options fields); on a hit the batch driver replays
/// the cached printed output and diagnostics without parsing or expanding
/// anything.
///
/// Two tiers share one interface:
///  * in-memory — an Engine-lifetime map shared by every expandSources
///    call on that engine (thread-safe; batch workers probe concurrently);
///  * on-disk (optional) — a directory of hash-named entries with a
///    versioned header. The disk tier is corruption-tolerant by design: a
///    missing, truncated, garbled, or version-skewed entry is a cache
///    miss, never an error. Writes go through a temp file + rename so a
///    crashed or concurrent writer can never publish a half-written entry.
///    Failed disk operations are retried once with a backoff and then
///    degrade gracefully — a failed read becomes a miss (DiskReadErrors),
///    a failed publish leaves the entry memory-only (DiskDegraded) — so
///    expansion output is NEVER affected by a rotting disk tier. Both
///    paths evaluate fault-injection points (cache.disk_read /
///    cache.disk_write, see support/Fault.h) so the degradation machinery
///    is deterministically testable.
///
/// What is NOT cached (see BatchDriver): units that mutate meta globals
/// (the paper's non-local transformations — replaying their output would
/// skip their side effects), units that timed out (wall-clock dependent),
/// and anything expanded while tracing. The macro-library fingerprint
/// itself comes from Engine::stateFingerprint (Fingerprint.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_CACHE_EXPANSIONCACHE_H
#define MSQ_CACHE_EXPANSIONCACHE_H

#include "analysis/Lint.h"
#include "support/Metrics.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace msq {

struct ExpandResult;
struct SourceUnit;

/// The replayable part of one unit's expansion: everything ExpandResult
/// carries except the trace (never cached) and the wall-clock-dependent
/// failure flags (never cached either).
struct CachedExpansion {
  bool Success = false;
  bool FuelExhausted = false;
  uint64_t InvocationsExpanded = 0;
  uint64_t MacrosDefined = 0;
  uint64_t MetaStepsExecuted = 0;
  uint64_t GensymsCreated = 0;
  uint64_t NodesProduced = 0;
  std::string Output;
  std::string DiagnosticsText;
  /// The profile as measured when the entry was created; replayed times
  /// describe the original expansion, not the (near-free) replay.
  ExpansionProfile Profile;
  /// Lint findings and the provenance source map are part of the replay:
  /// a warm-cache run must report byte-identical findings, backtraced
  /// diagnostics (in DiagnosticsText), and source maps.
  std::vector<LintDiagnostic> Lints;
  std::string SourceMapJson;
};

/// Abstract shared remote cache tier (cluster mode). The concrete
/// implementation lives in src/server (an NDJSON client speaking to the
/// msq-cached daemon); it is abstract here so the cache layer stays
/// transport-free. Implementations own their retry/degrade discipline
/// and error accounting: get()/put() must never throw or block
/// indefinitely, and a failing remote tier must read as a miss — the
/// local tiers keep working regardless.
class RemoteCacheTier {
public:
  virtual ~RemoteCacheTier() = default;
  /// Fetches the serialized entry bytes for \p Key. False on miss or on
  /// failure (failures are counted in \p Stats.RemoteErrors by the
  /// implementation; a plain miss is silent).
  virtual bool get(const std::string &Key, std::string &Bytes,
                   CacheStats &Stats) = 0;
  /// Publishes serialized entry bytes, best effort (counted in
  /// \p Stats.RemoteStores on success, RemoteErrors on failure).
  virtual void put(const std::string &Key, const std::string &Bytes,
                   CacheStats &Stats) = 0;
};

/// Thread-safe two-tier expansion cache.
class ExpansionCache {
public:
  /// \p DiskDir names the persistent tier's directory ("" = memory only).
  /// The directory is created on demand; if it cannot be, the disk tier
  /// silently degrades to nothing (memory tier still works).
  explicit ExpansionCache(std::string DiskDir = "");

  /// Looks \p Key up (memory first, then disk). On a hit fills \p Out,
  /// counts the hit in \p Stats, and promotes disk entries to memory.
  bool lookup(const std::string &Key, CachedExpansion &Out,
              CacheStats &Stats);

  /// Stores \p Entry under \p Key in both tiers and counts the bytes
  /// written in \p Stats.
  void store(const std::string &Key, const CachedExpansion &Entry,
             CacheStats &Stats);

  /// Number of entries in the memory tier (tests).
  size_t memoryEntryCount() const;

  const std::string &diskDir() const { return Dir; }

  /// Attaches a shared remote tier: lookups that miss both local tiers
  /// probe it (a remote hit is promoted to memory), stores publish to it.
  /// Attach before serving traffic — the pointer is read unlocked.
  void attachRemote(std::shared_ptr<RemoteCacheTier> Tier) {
    Remote = std::move(Tier);
  }
  bool hasRemote() const { return Remote != nullptr; }

  /// Generation-aware invalidation for long-lived servers. Content
  /// addressing already makes invalidation CORRECT for free — a reloaded
  /// macro library changes the fingerprint, so every affected key simply
  /// misses — but the memory tier would then hold unreachable
  /// old-fingerprint entries forever. The owner advances the generation
  /// whenever the library fingerprint actually changes (an idempotent
  /// reload keeps the generation, so existing entries keep hitting) and
  /// then evicts the generations no current request can reach. Entries
  /// are tagged at store/hit time with the generation current at that
  /// moment.
  void setGeneration(uint64_t Gen);
  uint64_t generation() const;

  /// Moves the memory-tier entry at \p OldKey to \p NewKey, retagging it
  /// with the current generation; returns false when \p OldKey is absent.
  /// Selective invalidation on library reload: when the dependency map
  /// proves a stored unit untouched by a reload's delta, its entry is
  /// re-addressed under the new library fingerprint instead of being
  /// evicted and re-expanded. The disk tier is untouched (old-key disk
  /// entries simply become unreachable, exactly as after any reload).
  bool rekey(const std::string &OldKey, const std::string &NewKey);

  /// Drops memory-tier entries whose tag is older than \p OldestLive and
  /// returns how many were evicted. Disk entries are untouched: they cost
  /// no memory, and an old-fingerprint disk entry is unreachable through
  /// any current key (it becomes reachable again only if a reload returns
  /// to its exact fingerprint — in which case it is a valid hit).
  size_t evictGenerationsBefore(uint64_t OldestLive);

  /// Serialization of one entry (public for tests). The format is a
  /// versioned header followed by length-prefixed blobs; deserialize
  /// returns false — a miss — on ANY deviation, including a key mismatch
  /// (which guards against a renamed or hash-collided file).
  static std::string serialize(const std::string &Key,
                               const CachedExpansion &Entry);
  static bool deserialize(std::string_view Bytes, const std::string &Key,
                          CachedExpansion &Out);

private:
  std::string entryPath(const std::string &Key) const;

  /// One attempt at atomically publishing \p Bytes as \p Key's disk
  /// entry (temp file + rename). Returns false on any failure — real or
  /// injected via the cache.disk_write fault point — leaving the entry
  /// path either untouched or pointing at the previous complete entry.
  bool publishDisk(const std::string &Key, const std::string &Bytes);

  struct MemoryEntry {
    CachedExpansion Entry;
    uint64_t Generation = 0;
  };

  mutable std::mutex Mutex;
  std::unordered_map<std::string, MemoryEntry> Memory;
  uint64_t Generation_ = 0;
  std::string Dir; // "" when the disk tier is disabled
  std::shared_ptr<RemoteCacheTier> Remote; // null when no remote tier
};

/// Derives the content-addressed cache key for one unit: a hash of the
/// library fingerprint, the unit's name and source, and the per-unit
/// knobs that can change the outcome deterministically.
/// \p TrackProvenance must be the EFFECTIVE provenance setting for this
/// unit: the server lets single requests opt in per-request, so the flag
/// is not always derivable from the library fingerprint.
std::string expansionCacheKey(const std::string &LibraryFingerprint,
                              const SourceUnit &Unit,
                              size_t EffectiveMaxMetaSteps,
                              bool CollectProfile, bool TrackProvenance);

/// Conversions between live results and cache entries, shared by every
/// consumer of the cache (batch driver, expansion server) so the replay
/// semantics cannot drift between them.
ExpandResult expandResultFromCache(const std::string &Name,
                                   const CachedExpansion &CE);
CachedExpansion cachedExpansionFromResult(const ExpandResult &R);

/// A result may enter the cache only when replaying it later is
/// indistinguishable from re-expanding: timeouts depend on the wall
/// clock, and meta-global mutations are side effects a replay would skip.
bool expansionResultCacheable(const ExpandResult &R);

} // namespace msq

#endif // MSQ_CACHE_EXPANSIONCACHE_H
