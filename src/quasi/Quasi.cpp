//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "quasi/Quasi.h"

#include <sstream>
#include <unordered_map>
#include <vector>

using namespace msq;

std::string msq::describeValue(const Value &V) {
  std::string S = V.kindName();
  if (V.type())
    S += " of type " + V.type()->toString();
  return S;
}

namespace {

/// Clones a template tree while substituting placeholder values.
class Instantiator {
public:
  Instantiator(QuasiContext &QC, const PlaceholderEvaluator &EvalPh)
      : QC(QC), EvalPh(EvalPh) {}

  Value eval(const Placeholder *Ph) {
    if (EvalPh)
      return EvalPh(Ph);
    QC.Diags.error(Ph->Loc, "placeholder encountered outside template "
                            "instantiation");
    return Value();
  }

  //===------------------------------------------------------------------===//
  // Value -> AST conversions (cloning). AST values can carry a null node
  // (a meta evaluation that already diagnosed an error leaves one behind),
  // so every cast must be the _or_null form: a null falls through to the
  // "cannot stand for" diagnostic instead of crashing.
  //===------------------------------------------------------------------===//

  Expr *toExpr(const Value &V, SourceLoc Loc) {
    switch (V.kind()) {
    case Value::AstV:
      if (auto *E = dyn_cast_or_null<Expr>(V.astValue()))
        return cloneExpr(QC.A, E);
      break;
    case Value::IdentVal:
      return QC.A.create<IdentExpr>(V.identValue(), Loc);
    case Value::IntV:
      return QC.A.create<IntLiteralExpr>(V.intValue(), Loc);
    case Value::FloatV:
      return QC.A.create<FloatLiteralExpr>(V.floatValue(), Loc);
    case Value::StrV:
      return QC.A.create<StringLiteralExpr>(QC.Interner.intern(V.strValue()),
                                            Loc);
    default:
      break;
    }
    QC.Diags.error(Loc, "placeholder value (" + describeValue(V) +
                            ") cannot stand for an expression");
    return nullptr;
  }

  Stmt *toStmt(const Value &V, SourceLoc Loc) {
    if (V.kind() == Value::AstV)
      if (auto *S = dyn_cast_or_null<Stmt>(V.astValue()))
        return cloneStmt(QC.A, S);
    QC.Diags.error(Loc, "placeholder value (" + describeValue(V) +
                            ") cannot stand for a statement");
    return nullptr;
  }

  Decl *toDecl(const Value &V, SourceLoc Loc) {
    if (V.kind() == Value::AstV)
      if (auto *D = dyn_cast_or_null<Decl>(V.astValue()))
        return cloneDecl(QC.A, D);
    QC.Diags.error(Loc, "placeholder value (" + describeValue(V) +
                            ") cannot stand for a declaration");
    return nullptr;
  }

  TypeSpecNode *toTypeSpec(const Value &V, SourceLoc Loc) {
    if (V.kind() == Value::AstV)
      if (auto *T = dyn_cast_or_null<TypeSpecNode>(V.astValue()))
        return cast<TypeSpecNode>(cloneNode(QC.A, T));
    // An identifier can stand for a typedef name.
    if (V.kind() == Value::IdentVal && !V.identValue().isPlaceholder())
      return QC.A.create<TypedefNameSpec>(V.identValue().Sym, Loc);
    QC.Diags.error(Loc, "placeholder value (" + describeValue(V) +
                            ") cannot stand for a type specifier");
    return nullptr;
  }

  Ident toIdent(const Value &V, SourceLoc Loc) {
    if (V.kind() == Value::IdentVal)
      return V.identValue();
    if (V.kind() == Value::AstV)
      if (auto *IE = dyn_cast_or_null<IdentExpr>(V.astValue()))
        return IE->Name;
    QC.Diags.error(Loc, "placeholder value (" + describeValue(V) +
                            ") cannot stand for an identifier");
    return Ident();
  }

  Declarator *toDeclarator(const Value &V, SourceLoc Loc) {
    if (V.kind() == Value::DeclaratorVal)
      return cloneDeclaratorDeep(V.declaratorValue());
    if (V.kind() == Value::IdentVal) {
      Declarator *D = QC.A.create<Declarator>();
      D->Name = V.identValue();
      D->Loc = Loc;
      return D;
    }
    QC.Diags.error(Loc, "placeholder value (" + describeValue(V) +
                            ") cannot stand for a declarator");
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Structure cloning with substitution
  //===------------------------------------------------------------------===//

  Ident instIdent(const Ident &I) {
    if (!I.isPlaceholder()) {
      if (!Renames.empty()) {
        auto It = Renames.find(I.Sym);
        if (It != Renames.end())
          return Ident(It->second, I.Loc);
      }
      return I;
    }
    Value V = eval(I.Ph);
    return toIdent(V, I.Loc);
  }

  //===------------------------------------------------------------------===//
  // Hygiene: rename template-declared locals to fresh names
  //===------------------------------------------------------------------===//

  Symbol freshName(Symbol Base) {
    std::ostringstream OS;
    OS << "__msq_h_" << Base.str() << '_'
       << (QC.FreshCounter ? (*QC.FreshCounter)++ : 0);
    return QC.Interner.intern(OS.str());
  }

  void noteLocal(const Ident &Name) {
    if (Name.isPlaceholder() || !Name.Sym.valid())
      return;
    if (!Renames.count(Name.Sym))
      Renames.emplace(Name.Sym, freshName(Name.Sym));
  }

  /// Collects block-scope declaration names and labels introduced by the
  /// template itself. \p InBlock is false at the top level of a `[ ]
  /// template, where names are exported on purpose (generated functions
  /// and globals must keep their names).
  void collectLocals(const Node *N, bool InBlock) {
    if (!N)
      return;
    switch (N->kind()) {
    case NodeKind::CompoundStmtKind: {
      const auto *C = cast<CompoundStmt>(N);
      for (const Decl *D : C->Decls) {
        if (const auto *Dec = dyn_cast<Declaration>(D)) {
          for (const InitDeclarator &ID : Dec->Inits)
            if (!ID.Ph && ID.Dtor && !ID.Dtor->isPlaceholder())
              noteLocal(ID.Dtor->name());
        }
      }
      for (const Stmt *S : C->Stmts)
        collectLocals(S, /*InBlock=*/true);
      return;
    }
    case NodeKind::LabelStmt: {
      const auto *L = cast<LabelStmt>(N);
      noteLocal(L->Label);
      collectLocals(L->Body, InBlock);
      return;
    }
    case NodeKind::IfStmt: {
      const auto *I = cast<IfStmt>(N);
      collectLocals(I->Then, InBlock);
      collectLocals(I->Else, InBlock);
      return;
    }
    case NodeKind::WhileStmt:
      collectLocals(cast<WhileStmt>(N)->Body, InBlock);
      return;
    case NodeKind::DoStmt:
      collectLocals(cast<DoStmt>(N)->Body, InBlock);
      return;
    case NodeKind::ForStmt:
      collectLocals(cast<ForStmt>(N)->Body, InBlock);
      return;
    case NodeKind::SwitchStmt:
      collectLocals(cast<SwitchStmt>(N)->Body, InBlock);
      return;
    case NodeKind::CaseStmt:
      collectLocals(cast<CaseStmt>(N)->Body, InBlock);
      return;
    case NodeKind::DefaultStmt:
      collectLocals(cast<DefaultStmt>(N)->Body, InBlock);
      return;
    case NodeKind::FunctionDefKind:
      // The function's own name stays (exported); its body is a block.
      collectLocals(cast<FunctionDef>(N)->Body, /*InBlock=*/true);
      return;
    default:
      return;
    }
  }

  std::unordered_map<Symbol, Symbol, SymbolHash> Renames;

  Expr *instExpr(const Expr *E);
  Stmt *instStmt(const Stmt *S);
  void instStmtInto(const Stmt *S, std::vector<Stmt *> &Out);
  void spliceStmtValue(const Value &V, SourceLoc Loc, std::vector<Stmt *> &Out);
  Decl *instDecl(const Decl *D);
  void instDeclInto(const Decl *D, std::vector<Decl *> &Out);
  void spliceDeclValue(const Value &V, SourceLoc Loc, std::vector<Decl *> &Out);
  TypeSpecNode *instTypeSpec(const TypeSpecNode *T);
  DeclSpecs instSpecs(const DeclSpecs &S);
  Declarator *instDeclarator(const Declarator *D);
  Declarator *cloneDeclaratorDeep(const Declarator *D);
  void instInitDeclInto(const InitDeclarator &ID,
                        std::vector<InitDeclarator> &Out);
  void instEnumeratorInto(const Enumerator &E, std::vector<Enumerator> &Out);
  MatchValue *instMatchValue(const MatchValue *MV);
  MacroInvocation *instInvocation(const MacroInvocation *Inv);
  Value matchToValue(const MatchValue *MV);

  QuasiContext &QC;
  const PlaceholderEvaluator &EvalPh;
};

Declarator *Instantiator::cloneDeclaratorDeep(const Declarator *D) {
  // Reuse the node cloner by wrapping into a throwaway declaration-free
  // clone path: build by hand.
  Declarator *R = QC.A.create<Declarator>();
  R->Ph = D->Ph;
  R->Name = instIdent(D->Name);
  R->Inner = D->Inner ? cloneDeclaratorDeep(D->Inner) : nullptr;
  R->PointerDepth = D->PointerDepth;
  R->Loc = D->Loc;
  std::vector<DeclSuffix> Suffixes;
  for (const DeclSuffix &S : D->Suffixes) {
    DeclSuffix Out = S;
    Out.ArraySize = S.ArraySize ? instExpr(S.ArraySize) : nullptr;
    std::vector<ParamDecl *> Params;
    for (const ParamDecl *P : S.Params) {
      ParamDecl *NP = QC.A.create<ParamDecl>();
      NP->Specs = instSpecs(P->Specs);
      NP->Dtor = P->Dtor ? instDeclarator(P->Dtor) : nullptr;
      NP->Loc = P->Loc;
      Params.push_back(NP);
    }
    Out.Params = ArenaRef<ParamDecl *>::copy(QC.A, Params);
    std::vector<Ident> KRNames;
    for (const Ident &I : S.KRNames)
      KRNames.push_back(instIdent(I));
    Out.KRNames = ArenaRef<Ident>::copy(QC.A, KRNames);
    Suffixes.push_back(Out);
  }
  R->Suffixes = ArenaRef<DeclSuffix>::copy(QC.A, Suffixes);
  return R;
}

Declarator *Instantiator::instDeclarator(const Declarator *D) {
  if (!D)
    return nullptr;
  if (D->isPlaceholder()) {
    Value V = eval(D->Ph);
    return toDeclarator(V, D->Loc);
  }
  return cloneDeclaratorDeep(D);
}

DeclSpecs Instantiator::instSpecs(const DeclSpecs &S) {
  DeclSpecs R = S;
  R.Type = S.Type ? instTypeSpec(S.Type) : nullptr;
  return R;
}

TypeSpecNode *Instantiator::instTypeSpec(const TypeSpecNode *T) {
  switch (T->kind()) {
  case NodeKind::PlaceholderTypeSpecKind: {
    const auto *P = cast<PlaceholderTypeSpec>(T);
    Value V = eval(P->Ph);
    return toTypeSpec(V, P->loc());
  }
  case NodeKind::TagTypeSpecKind: {
    const auto *Tag = cast<TagTypeSpec>(T);
    std::vector<Declaration *> Members;
    for (const Declaration *M : Tag->Members) {
      std::vector<Decl *> Tmp;
      instDeclInto(M, Tmp);
      for (Decl *D : Tmp)
        if (auto *MD = dyn_cast<Declaration>(D))
          Members.push_back(MD);
    }
    std::vector<Enumerator> Enums;
    for (const Enumerator &E : Tag->Enums)
      instEnumeratorInto(E, Enums);
    return QC.A.create<TagTypeSpec>(
        Tag->Tag, instIdent(Tag->TagName), Tag->HasBody,
        ArenaRef<Declaration *>::copy(QC.A, Members),
        ArenaRef<Enumerator>::copy(QC.A, Enums), Tag->loc());
  }
  default:
    return cast<TypeSpecNode>(cloneNode(QC.A, T));
  }
}

void Instantiator::instEnumeratorInto(const Enumerator &E,
                                      std::vector<Enumerator> &Out) {
  if (E.ListPh) {
    Value V = eval(E.ListPh);
    if (V.kind() != Value::ListV) {
      QC.Diags.error(E.Loc, "enumerator-list placeholder did not produce a "
                            "list (got " +
                                describeValue(V) + ")");
      return;
    }
    for (size_t I = 0; I != V.listSize(); ++I) {
      const Value &Elem = V.listAt(I);
      Enumerator NE;
      NE.Loc = E.Loc;
      if (Elem.kind() == Value::IdentVal) {
        NE.Name = Elem.identValue();
      } else if (Elem.kind() == Value::EnumeratorVal) {
        const Enumerator *Src = Elem.enumeratorValue();
        NE.Name = instIdent(Src->Name);
        NE.Value = Src->Value ? instExpr(Src->Value) : nullptr;
      } else {
        QC.Diags.error(E.Loc, "enumerator list element is " +
                                  describeValue(Elem));
        continue;
      }
      Out.push_back(NE);
    }
    return;
  }
  Enumerator NE = E;
  NE.Name = instIdent(E.Name);
  NE.Value = E.Value ? instExpr(E.Value) : nullptr;
  Out.push_back(NE);
}

void Instantiator::instInitDeclInto(const InitDeclarator &ID,
                                    std::vector<InitDeclarator> &Out) {
  if (ID.Ph) {
    Value V = eval(ID.Ph);
    if (V.kind() == Value::InitDeclVal) {
      const InitDeclarator *Src = V.initDeclValue();
      InitDeclarator R;
      R.Dtor = Src->Dtor ? instDeclarator(Src->Dtor) : nullptr;
      R.Init = Src->Init ? instExpr(Src->Init) : nullptr;
      R.Loc = ID.Loc;
      Out.push_back(R);
      return;
    }
    if (V.kind() == Value::DeclaratorVal || V.kind() == Value::IdentVal) {
      InitDeclarator R;
      R.Dtor = toDeclarator(V, ID.Loc);
      R.Loc = ID.Loc;
      Out.push_back(R);
      return;
    }
    QC.Diags.error(ID.Loc, "init-declarator placeholder value is " +
                               describeValue(V));
    return;
  }
  InitDeclarator R;
  R.Dtor = ID.Dtor ? instDeclarator(ID.Dtor) : nullptr;
  R.Init = ID.Init ? instExpr(ID.Init) : nullptr;
  R.Loc = ID.Loc;
  Out.push_back(R);
}

MatchValue *Instantiator::instMatchValue(const MatchValue *MV) {
  if (!MV)
    return nullptr;
  MatchValue *R = QC.A.create<MatchValue>();
  R->K = MV->K;
  R->Type = MV->Type;
  switch (MV->K) {
  case MatchValue::Ast:
    if (auto *E = dyn_cast<Expr>(MV->AstNode))
      R->AstNode = instExpr(E);
    else if (auto *S = dyn_cast<Stmt>(MV->AstNode))
      R->AstNode = instStmt(S);
    else if (auto *D = dyn_cast<Decl>(MV->AstNode))
      R->AstNode = instDecl(D);
    else if (auto *T = dyn_cast<TypeSpecNode>(MV->AstNode))
      R->AstNode = instTypeSpec(T);
    break;
  case MatchValue::IdentV:
    R->Id = instIdent(MV->Id);
    break;
  case MatchValue::DeclaratorV:
    R->Dtor = instDeclarator(MV->Dtor);
    break;
  case MatchValue::InitDeclV: {
    std::vector<InitDeclarator> Tmp;
    instInitDeclInto(*MV->InitDtor, Tmp);
    if (!Tmp.empty())
      R->InitDtor = QC.A.create<InitDeclarator>(Tmp[0]);
    break;
  }
  case MatchValue::EnumeratorV: {
    std::vector<Enumerator> Tmp;
    instEnumeratorInto(*MV->Enum, Tmp);
    if (!Tmp.empty())
      R->Enum = QC.A.create<Enumerator>(Tmp[0]);
    break;
  }
  case MatchValue::List:
  case MatchValue::Tuple: {
    std::vector<MatchValue *> Elems;
    for (const MatchValue *E : MV->Elems)
      Elems.push_back(instMatchValue(E));
    R->Elems = ArenaRef<MatchValue *>::copy(QC.A, Elems);
    std::vector<Symbol> Names(MV->FieldNames.begin(), MV->FieldNames.end());
    R->FieldNames = ArenaRef<Symbol>::copy(QC.A, Names);
    break;
  }
  case MatchValue::Absent:
    break;
  }
  return R;
}

MacroInvocation *Instantiator::instInvocation(const MacroInvocation *Inv) {
  MacroInvocation *R = QC.A.create<MacroInvocation>();
  R->Def = Inv->Def;
  R->Loc = Inv->Loc;
  std::vector<MacroArg> Args;
  for (const MacroArg &Arg : Inv->Args)
    Args.push_back({Arg.Name, instMatchValue(Arg.Value)});
  R->Args = ArenaRef<MacroArg>::copy(QC.A, Args);
  return R;
}

Expr *Instantiator::instExpr(const Expr *E) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case NodeKind::PlaceholderExpr: {
    const auto *P = cast<PlaceholderExpr>(E);
    Value V = eval(P->Ph);
    return toExpr(V, P->loc());
  }
  case NodeKind::IdentExpr: {
    const auto *IE = cast<IdentExpr>(E);
    return QC.A.create<IdentExpr>(instIdent(IE->Name), E->loc());
  }
  case NodeKind::ParenExpr:
    return QC.A.create<ParenExpr>(instExpr(cast<ParenExpr>(E)->Inner),
                                  E->loc());
  case NodeKind::InitListExpr: {
    const auto *IL = cast<InitListExpr>(E);
    std::vector<Expr *> Elems;
    for (const Expr *El : IL->Elems) {
      // List-typed placeholders splice their elements.
      if (const auto *P = dyn_cast<PlaceholderExpr>(El)) {
        if (P->Ph->Type && P->Ph->Type->isList()) {
          Value V = eval(P->Ph);
          if (V.kind() == Value::ListV) {
            for (size_t I = 0; I != V.listSize(); ++I)
              if (Expr *AE = toExpr(V.listAt(I), P->loc()))
                Elems.push_back(AE);
            continue;
          }
        }
      }
      Elems.push_back(instExpr(El));
    }
    return QC.A.create<InitListExpr>(ArenaRef<Expr *>::copy(QC.A, Elems),
                                     E->loc());
  }
  case NodeKind::UnaryExpr: {
    const auto *U = cast<UnaryExpr>(E);
    return QC.A.create<UnaryExpr>(U->Op, instExpr(U->Operand), E->loc());
  }
  case NodeKind::BinaryExpr: {
    const auto *B = cast<BinaryExpr>(E);
    return QC.A.create<BinaryExpr>(B->Op, instExpr(B->LHS), instExpr(B->RHS),
                                   E->loc());
  }
  case NodeKind::ConditionalExpr: {
    const auto *C = cast<ConditionalExpr>(E);
    return QC.A.create<ConditionalExpr>(instExpr(C->Cond), instExpr(C->Then),
                                        instExpr(C->Else), E->loc());
  }
  case NodeKind::CastExpr: {
    const auto *C = cast<CastExpr>(E);
    TypeName Ty = C->Ty;
    Ty.Spec = Ty.Spec ? instTypeSpec(Ty.Spec) : nullptr;
    return QC.A.create<CastExpr>(Ty, instExpr(C->Operand), E->loc());
  }
  case NodeKind::SizeofExpr: {
    const auto *S = cast<SizeofExpr>(E);
    if (S->IsType) {
      TypeName Ty = S->Ty;
      Ty.Spec = Ty.Spec ? instTypeSpec(Ty.Spec) : nullptr;
      return QC.A.create<SizeofExpr>(Ty, E->loc());
    }
    return QC.A.create<SizeofExpr>(instExpr(S->Operand), E->loc());
  }
  case NodeKind::CallExpr: {
    const auto *C = cast<CallExpr>(E);
    std::vector<Expr *> Args;
    for (const Expr *Arg : C->Args) {
      // A list-typed placeholder in argument position splices.
      if (const auto *P = dyn_cast<PlaceholderExpr>(Arg)) {
        if (P->Ph->Type && P->Ph->Type->isList()) {
          Value V = eval(P->Ph);
          if (V.kind() == Value::ListV) {
            for (size_t I = 0; I != V.listSize(); ++I)
              if (Expr *AE = toExpr(V.listAt(I), P->loc()))
                Args.push_back(AE);
            continue;
          }
        }
      }
      Args.push_back(instExpr(Arg));
    }
    return QC.A.create<CallExpr>(instExpr(C->Callee),
                                 ArenaRef<Expr *>::copy(QC.A, Args), E->loc());
  }
  case NodeKind::IndexExpr: {
    const auto *I = cast<IndexExpr>(E);
    return QC.A.create<IndexExpr>(instExpr(I->Base), instExpr(I->Index),
                                  E->loc());
  }
  case NodeKind::MemberExpr: {
    const auto *M = cast<MemberExpr>(E);
    return QC.A.create<MemberExpr>(instExpr(M->Base), instIdent(M->Member),
                                   M->IsArrow, E->loc());
  }
  case NodeKind::MacroInvocationExpr:
    return QC.A.create<MacroInvocationExpr>(
        instInvocation(cast<MacroInvocationExpr>(E)->Inv), E->loc());
  case NodeKind::BackquoteExpr:
    QC.Diags.error(E->loc(), "a template may not directly contain another "
                             "template (nest it inside a placeholder "
                             "expression instead)");
    return QC.A.create<IntLiteralExpr>(0, E->loc());
  default:
    return cloneExpr(QC.A, E);
  }
}

void Instantiator::spliceStmtValue(const Value &V, SourceLoc Loc,
                                   std::vector<Stmt *> &Out) {
  // Lists splice element-wise; nested lists (e.g. a map over a map)
  // flatten.
  if (V.kind() == Value::ListV) {
    for (size_t I = 0; I != V.listSize(); ++I)
      spliceStmtValue(V.listAt(I), Loc, Out);
    return;
  }
  if (Stmt *St = toStmt(V, Loc))
    Out.push_back(St);
}

void Instantiator::instStmtInto(const Stmt *S, std::vector<Stmt *> &Out) {
  if (const auto *P = dyn_cast<PlaceholderStmt>(S)) {
    spliceStmtValue(eval(P->Ph), P->loc(), Out);
    return;
  }
  if (Stmt *St = instStmt(S))
    Out.push_back(St);
}

void Instantiator::spliceDeclValue(const Value &V, SourceLoc Loc,
                                   std::vector<Decl *> &Out) {
  if (V.kind() == Value::ListV) {
    for (size_t I = 0; I != V.listSize(); ++I)
      spliceDeclValue(V.listAt(I), Loc, Out);
    return;
  }
  if (Decl *Dc = toDecl(V, Loc))
    Out.push_back(Dc);
}

void Instantiator::instDeclInto(const Decl *D, std::vector<Decl *> &Out) {
  if (const auto *P = dyn_cast<PlaceholderDeclNode>(D)) {
    spliceDeclValue(eval(P->Ph), P->loc(), Out);
    return;
  }
  if (Decl *Dc = instDecl(D))
    Out.push_back(Dc);
}

Stmt *Instantiator::instStmt(const Stmt *S) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case NodeKind::PlaceholderStmt: {
    const auto *P = cast<PlaceholderStmt>(S);
    Value V = eval(P->Ph);
    return toStmt(V, P->loc());
  }
  case NodeKind::CompoundStmtKind: {
    const auto *C = cast<CompoundStmt>(S);
    std::vector<Decl *> Decls;
    for (const Decl *D : C->Decls)
      instDeclInto(D, Decls);
    std::vector<Stmt *> Stmts;
    for (const Stmt *Sub : C->Stmts)
      instStmtInto(Sub, Stmts);
    return QC.A.create<CompoundStmt>(ArenaRef<Decl *>::copy(QC.A, Decls),
                                     ArenaRef<Stmt *>::copy(QC.A, Stmts),
                                     S->loc());
  }
  case NodeKind::ExprStmt:
    return QC.A.create<ExprStmt>(instExpr(cast<ExprStmt>(S)->E), S->loc());
  case NodeKind::NullStmt:
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
    return cloneStmt(QC.A, S);
  case NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(S);
    return QC.A.create<IfStmt>(instExpr(I->Cond), instStmt(I->Then),
                               I->Else ? instStmt(I->Else) : nullptr,
                               S->loc());
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    return QC.A.create<WhileStmt>(instExpr(W->Cond), instStmt(W->Body),
                                  S->loc());
  }
  case NodeKind::DoStmt: {
    const auto *D = cast<DoStmt>(S);
    return QC.A.create<DoStmt>(instStmt(D->Body), instExpr(D->Cond), S->loc());
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    return QC.A.create<ForStmt>(F->Init ? instExpr(F->Init) : nullptr,
                                F->Cond ? instExpr(F->Cond) : nullptr,
                                F->Step ? instExpr(F->Step) : nullptr,
                                instStmt(F->Body), S->loc());
  }
  case NodeKind::SwitchStmt: {
    const auto *Sw = cast<SwitchStmt>(S);
    return QC.A.create<SwitchStmt>(instExpr(Sw->Cond), instStmt(Sw->Body),
                                   S->loc());
  }
  case NodeKind::CaseStmt: {
    const auto *C = cast<CaseStmt>(S);
    return QC.A.create<CaseStmt>(instExpr(C->Value), instStmt(C->Body),
                                 S->loc());
  }
  case NodeKind::DefaultStmt:
    return QC.A.create<DefaultStmt>(instStmt(cast<DefaultStmt>(S)->Body),
                                    S->loc());
  case NodeKind::LabelStmt: {
    const auto *L = cast<LabelStmt>(S);
    return QC.A.create<LabelStmt>(instIdent(L->Label), instStmt(L->Body),
                                  S->loc());
  }
  case NodeKind::GotoStmt:
    return QC.A.create<GotoStmt>(instIdent(cast<GotoStmt>(S)->Label),
                                 S->loc());
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    return QC.A.create<ReturnStmt>(R->Value ? instExpr(R->Value) : nullptr,
                                   S->loc());
  }
  case NodeKind::MacroInvocationStmt:
    return QC.A.create<MacroInvocationStmt>(
        instInvocation(cast<MacroInvocationStmt>(S)->Inv), S->loc());
  default:
    return cloneStmt(QC.A, S);
  }
}

Decl *Instantiator::instDecl(const Decl *D) {
  if (!D)
    return nullptr;
  switch (D->kind()) {
  case NodeKind::PlaceholderDecl: {
    const auto *P = cast<PlaceholderDeclNode>(D);
    Value V = eval(P->Ph);
    return toDecl(V, P->loc());
  }
  case NodeKind::DeclarationKind: {
    const auto *Dec = cast<Declaration>(D);
    DeclSpecs Specs = instSpecs(Dec->Specs);
    std::vector<InitDeclarator> Inits;
    if (Dec->DeclListPh) {
      Value V = eval(Dec->DeclListPh);
      if (V.kind() != Value::ListV) {
        QC.Diags.error(D->loc(), "init-declarator-list placeholder did not "
                                 "produce a list (got " +
                                     describeValue(V) + ")");
      } else {
        for (size_t I = 0; I != V.listSize(); ++I) {
          const Value &Elem = V.listAt(I);
          InitDeclarator ID;
          ID.Loc = D->loc();
          if (Elem.kind() == Value::InitDeclVal) {
            const InitDeclarator *Src = Elem.initDeclValue();
            ID.Dtor = Src->Dtor ? instDeclarator(Src->Dtor) : nullptr;
            ID.Init = Src->Init ? instExpr(Src->Init) : nullptr;
          } else {
            ID.Dtor = toDeclarator(Elem, D->loc());
          }
          Inits.push_back(ID);
        }
      }
    } else {
      for (const InitDeclarator &ID : Dec->Inits)
        instInitDeclInto(ID, Inits);
    }
    return QC.A.create<Declaration>(
        Specs, ArenaRef<InitDeclarator>::copy(QC.A, Inits), nullptr,
        D->loc());
  }
  case NodeKind::FunctionDefKind: {
    const auto *F = cast<FunctionDef>(D);
    std::vector<Declaration *> KRDecls;
    for (const Declaration *KR : F->KRDecls) {
      std::vector<Decl *> Tmp;
      instDeclInto(KR, Tmp);
      for (Decl *KD : Tmp)
        if (auto *KDD = dyn_cast<Declaration>(KD))
          KRDecls.push_back(KDD);
    }
    return QC.A.create<FunctionDef>(
        instSpecs(F->Specs), instDeclarator(F->Dtor),
        ArenaRef<Declaration *>::copy(QC.A, KRDecls),
        cast<CompoundStmt>(instStmt(F->Body)), D->loc());
  }
  case NodeKind::MacroInvocationDecl:
    return QC.A.create<MacroInvocationDecl>(
        instInvocation(cast<MacroInvocationDecl>(D)->Inv), D->loc());
  default:
    return cloneDecl(QC.A, D);
  }
}

Value Instantiator::matchToValue(const MatchValue *MV) {
  if (!MV)
    return Value();
  switch (MV->K) {
  case MatchValue::Ast: {
    Node *N = nullptr;
    if (auto *E = dyn_cast<Expr>(MV->AstNode))
      N = instExpr(E);
    else if (auto *S = dyn_cast<Stmt>(MV->AstNode))
      N = instStmt(S);
    else if (auto *D = dyn_cast<Decl>(MV->AstNode))
      N = instDecl(D);
    else if (auto *T = dyn_cast<TypeSpecNode>(MV->AstNode))
      N = instTypeSpec(T);
    return Value::makeAst(N, MV->Type);
  }
  case MatchValue::IdentV:
    return Value::makeIdent(instIdent(MV->Id));
  case MatchValue::DeclaratorV:
    return Value::makeDeclarator(instDeclarator(MV->Dtor));
  case MatchValue::InitDeclV: {
    std::vector<InitDeclarator> Tmp;
    instInitDeclInto(*MV->InitDtor, Tmp);
    if (Tmp.empty())
      return Value();
    return Value::makeInitDecl(QC.A.create<InitDeclarator>(Tmp[0]));
  }
  case MatchValue::EnumeratorV: {
    std::vector<Enumerator> Tmp;
    instEnumeratorInto(*MV->Enum, Tmp);
    if (Tmp.empty())
      return Value();
    return Value::makeEnumerator(QC.A.create<Enumerator>(Tmp[0]));
  }
  case MatchValue::List: {
    std::vector<Value> Elems;
    for (const MatchValue *E : MV->Elems)
      Elems.push_back(matchToValue(E));
    return Value::makeList(std::move(Elems), MV->Type);
  }
  case MatchValue::Tuple: {
    std::vector<Value> Fields;
    for (const MatchValue *E : MV->Elems)
      Fields.push_back(matchToValue(E));
    std::vector<Symbol> Names(MV->FieldNames.begin(), MV->FieldNames.end());
    return Value::makeTuple(std::move(Fields), std::move(Names), MV->Type);
  }
  case MatchValue::Absent:
    return Value::makeNil();
  }
  return Value();
}

} // namespace

Value msq::instantiateTemplate(QuasiContext &QC, const BackquoteExpr *BQ,
                               const PlaceholderEvaluator &EvalPh) {
  Instantiator Inst(QC, EvalPh);
  if (QC.Hygienic) {
    switch (BQ->Form) {
    case BackquoteForm::Stmt:
      Inst.collectLocals(BQ->Template, /*InBlock=*/true);
      break;
    case BackquoteForm::Decl:
      Inst.collectLocals(BQ->Template, /*InBlock=*/false);
      break;
    case BackquoteForm::Pattern:
      if (BQ->TemplateMV && BQ->TemplateMV->K == MatchValue::Ast)
        Inst.collectLocals(BQ->TemplateMV->AstNode, /*InBlock=*/true);
      break;
    case BackquoteForm::Exp:
      break; // expressions declare nothing
    }
  }
  switch (BQ->Form) {
  case BackquoteForm::Exp: {
    Expr *E = Inst.instExpr(cast<Expr>(BQ->Template));
    return Value::makeAst(E, BQ->Type);
  }
  case BackquoteForm::Stmt: {
    Stmt *S = Inst.instStmt(cast<Stmt>(BQ->Template));
    return Value::makeAst(S, BQ->Type);
  }
  case BackquoteForm::Decl: {
    Decl *D = Inst.instDecl(cast<Decl>(BQ->Template));
    return Value::makeAst(D, BQ->Type);
  }
  case BackquoteForm::Pattern: {
    Value V = Inst.matchToValue(BQ->TemplateMV);
    V.setType(BQ->Type);
    return V;
  }
  }
  return Value();
}

Value msq::matchValueToValue(QuasiContext &QC, const MatchValue *MV) {
  Instantiator Inst(QC, PlaceholderEvaluator());
  return Inst.matchToValue(MV);
}

Expr *msq::valueToExpr(QuasiContext &QC, const Value &V, SourceLoc Loc) {
  Instantiator Inst(QC, PlaceholderEvaluator());
  return Inst.toExpr(V, Loc);
}

Stmt *msq::valueToStmt(QuasiContext &QC, const Value &V, SourceLoc Loc) {
  Instantiator Inst(QC, PlaceholderEvaluator());
  return Inst.toStmt(V, Loc);
}

Decl *msq::valueToDecl(QuasiContext &QC, const Value &V, SourceLoc Loc) {
  Instantiator Inst(QC, PlaceholderEvaluator());
  return Inst.toDecl(V, Loc);
}

TypeSpecNode *msq::valueToTypeSpec(QuasiContext &QC, const Value &V,
                                   SourceLoc Loc) {
  Instantiator Inst(QC, PlaceholderEvaluator());
  return Inst.toTypeSpec(V, Loc);
}

Ident msq::valueToIdent(QuasiContext &QC, const Value &V, SourceLoc Loc) {
  Instantiator Inst(QC, PlaceholderEvaluator());
  return Inst.toIdent(V, Loc);
}
