//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backquote template instantiation. When a macro body evaluates a
/// backquote expression, the template AST is deep-cloned and every
/// placeholder is replaced by the value of its meta-expression. Because
/// substitution happens on *trees*, the CPP-style precedence capture bug
/// cannot occur ("such interference is impossible because substitution is
/// performed at the tree level").
///
/// Placeholder values are obtained through a callback so that this library
/// does not depend on the interpreter (which depends on it).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_QUASI_QUASI_H
#define MSQ_QUASI_QUASI_H

#include "ast/Ast.h"
#include "interp/Value.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"
#include "types/MetaType.h"

#include <functional>

namespace msq {

using PlaceholderEvaluator = std::function<Value(const Placeholder *)>;

/// Services shared by template instantiation and value/AST conversions.
struct QuasiContext {
  Arena &A;
  StringInterner &Interner;
  MetaTypeContext &Types;
  DiagnosticsEngine &Diags;
  /// Hygienic mode (the paper's future-work direction): identifiers that a
  /// template *declares locally* (block-scope variables and labels) are
  /// renamed to fresh names at each instantiation, so they can never
  /// capture identifiers in substituted user code. Free identifiers (calls,
  /// globals such as exception_ptr) and top-level definitions keep their
  /// names.
  bool Hygienic = false;
  /// Fresh-name counter shared with gensym (owned by the Interpreter).
  size_t *FreshCounter = nullptr;
};

/// Instantiates the backquote template \p BQ, evaluating placeholders with
/// \p EvalPh. Returns the produced value (an AST value for the `(, `{, `[
/// forms; possibly a list/tuple for the general pattern form). Returns an
/// Unset value after diagnosing an error.
Value instantiateTemplate(QuasiContext &QC, const BackquoteExpr *BQ,
                          const PlaceholderEvaluator &EvalPh);

/// Converts a pattern-bound constituent into a runtime value (no
/// placeholder substitution — the constituent must already be concrete).
Value matchValueToValue(QuasiContext &QC, const MatchValue *MV);

/// Conversions used at splice points (and by the expander). Each clones the
/// underlying AST so the result is a fresh tree; on a type mismatch they
/// diagnose at \p Loc and return null / an invalid Ident.
Expr *valueToExpr(QuasiContext &QC, const Value &V, SourceLoc Loc);
Stmt *valueToStmt(QuasiContext &QC, const Value &V, SourceLoc Loc);
Decl *valueToDecl(QuasiContext &QC, const Value &V, SourceLoc Loc);
TypeSpecNode *valueToTypeSpec(QuasiContext &QC, const Value &V, SourceLoc Loc);
Ident valueToIdent(QuasiContext &QC, const Value &V, SourceLoc Loc);

/// Converts a value to a short human-readable description (diagnostics).
std::string describeValue(const Value &V);

} // namespace msq

#endif // MSQ_QUASI_QUASI_H
