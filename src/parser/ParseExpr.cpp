//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression parsing: a bottom-up precedence parser at the expression
/// level (paper section 3), with placeholder tokens, macro invocations,
/// backquote templates, and anonymous functions folded into the primary
/// grammar.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

using namespace msq;

namespace {

struct BinOpInfo {
  BinaryOpKind Op;
  int Prec;
};

/// Binary operator precedences (higher binds tighter). Assignment and the
/// conditional operator are handled separately for associativity.
bool binOpInfo(TokenKind K, BinOpInfo &Out) {
  switch (K) {
  case TokenKind::Star:
    Out = {BinaryOpKind::Mul, 10};
    return true;
  case TokenKind::Slash:
    Out = {BinaryOpKind::Div, 10};
    return true;
  case TokenKind::Percent:
    Out = {BinaryOpKind::Rem, 10};
    return true;
  case TokenKind::Plus:
    Out = {BinaryOpKind::Add, 9};
    return true;
  case TokenKind::Minus:
    Out = {BinaryOpKind::Sub, 9};
    return true;
  case TokenKind::LessLess:
    Out = {BinaryOpKind::Shl, 8};
    return true;
  case TokenKind::GreaterGreater:
    Out = {BinaryOpKind::Shr, 8};
    return true;
  case TokenKind::Less:
    Out = {BinaryOpKind::LT, 7};
    return true;
  case TokenKind::Greater:
    Out = {BinaryOpKind::GT, 7};
    return true;
  case TokenKind::LessEqual:
    Out = {BinaryOpKind::LE, 7};
    return true;
  case TokenKind::GreaterEqual:
    Out = {BinaryOpKind::GE, 7};
    return true;
  case TokenKind::EqualEqual:
    Out = {BinaryOpKind::EQ, 6};
    return true;
  case TokenKind::ExclaimEqual:
    Out = {BinaryOpKind::NE, 6};
    return true;
  case TokenKind::Amp:
    Out = {BinaryOpKind::BitAnd, 5};
    return true;
  case TokenKind::Caret:
    Out = {BinaryOpKind::BitXor, 4};
    return true;
  case TokenKind::Pipe:
    Out = {BinaryOpKind::BitOr, 3};
    return true;
  case TokenKind::AmpAmp:
    Out = {BinaryOpKind::LAnd, 2};
    return true;
  case TokenKind::PipePipe:
    Out = {BinaryOpKind::LOr, 1};
    return true;
  default:
    return false;
  }
}

bool assignOpInfo(TokenKind K, BinaryOpKind &Out) {
  switch (K) {
  case TokenKind::Equal:
    Out = BinaryOpKind::Assign;
    return true;
  case TokenKind::StarEqual:
    Out = BinaryOpKind::MulAssign;
    return true;
  case TokenKind::SlashEqual:
    Out = BinaryOpKind::DivAssign;
    return true;
  case TokenKind::PercentEqual:
    Out = BinaryOpKind::RemAssign;
    return true;
  case TokenKind::PlusEqual:
    Out = BinaryOpKind::AddAssign;
    return true;
  case TokenKind::MinusEqual:
    Out = BinaryOpKind::SubAssign;
    return true;
  case TokenKind::LessLessEqual:
    Out = BinaryOpKind::ShlAssign;
    return true;
  case TokenKind::GreaterGreaterEqual:
    Out = BinaryOpKind::ShrAssign;
    return true;
  case TokenKind::AmpEqual:
    Out = BinaryOpKind::AndAssign;
    return true;
  case TokenKind::CaretEqual:
    Out = BinaryOpKind::XorAssign;
    return true;
  case TokenKind::PipeEqual:
    Out = BinaryOpKind::OrAssign;
    return true;
  default:
    return false;
  }
}

} // namespace

Expr *Parser::parseExpression() {
  Expr *E = parseAssignmentExpr();
  if (!E)
    return nullptr;
  while (cur().is(TokenKind::Comma)) {
    SourceLoc Loc = curLoc();
    advance();
    Expr *RHS = parseAssignmentExpr();
    if (!RHS)
      return E;
    E = CC.Ast.create<BinaryExpr>(BinaryOpKind::Comma, E, RHS, Loc);
  }
  return E;
}

Expr *Parser::parseInitializer() {
  if (cur().isNot(TokenKind::LBrace))
    return parseAssignmentExpr();
  SourceLoc Loc = curLoc();
  advance();
  std::vector<Expr *> Elems;
  if (cur().isNot(TokenKind::RBrace)) {
    for (;;) {
      // A list-typed placeholder splices into the initializer list, like
      // in argument lists.
      if (cur().is(TokenKind::PlaceholderTok) && cur().Ph->Type->isList() &&
          MetaTypeContext::isAssignable(CC.Types.getList(CC.Types.getExp()),
                                        cur().Ph->Type)) {
        Elems.push_back(CC.Ast.create<PlaceholderExpr>(cur().Ph, curLoc()));
        advance();
      } else {
        Expr *E = parseInitializer(); // nested lists allowed
        if (!E)
          break;
        Elems.push_back(E);
      }
      if (!consumeIf(TokenKind::Comma))
        break;
      if (cur().is(TokenKind::RBrace))
        break; // trailing comma
    }
  }
  expect(TokenKind::RBrace, "at end of initializer list");
  return CC.Ast.create<InitListExpr>(ArenaRef<Expr *>::copy(CC.Ast, Elems),
                                     Loc);
}

Expr *Parser::parseAssignmentExpr() {
  Expr *LHS = parseConditionalExpr();
  if (!LHS)
    return nullptr;
  BinaryOpKind Op;
  if (assignOpInfo(cur().Kind, Op)) {
    SourceLoc Loc = curLoc();
    advance();
    Expr *RHS = parseAssignmentExpr(); // right-associative
    if (!RHS)
      return LHS;
    return CC.Ast.create<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseConditionalExpr() {
  Expr *Cond = parseBinaryExpr(1);
  if (!Cond)
    return nullptr;
  if (cur().isNot(TokenKind::Question))
    return Cond;
  SourceLoc Loc = curLoc();
  advance();
  Expr *Then = parseExpression();
  if (!expect(TokenKind::Colon, "in conditional expression"))
    return Cond;
  Expr *Else = parseConditionalExpr();
  if (!Then || !Else)
    return Cond;
  return CC.Ast.create<ConditionalExpr>(Cond, Then, Else, Loc);
}

Expr *Parser::parseBinaryExpr(int MinPrec) {
  Expr *LHS = parseCastOrUnaryExpr();
  if (!LHS)
    return nullptr;
  for (;;) {
    BinOpInfo Info;
    if (!binOpInfo(cur().Kind, Info) || Info.Prec < MinPrec)
      return LHS;
    SourceLoc Loc = curLoc();
    advance();
    Expr *RHS = parseBinaryExpr(Info.Prec + 1); // left-associative
    if (!RHS)
      return LHS;
    LHS = CC.Ast.create<BinaryExpr>(Info.Op, LHS, RHS, Loc);
  }
}

bool Parser::lparenStartsTypeName() const {
  assert(Toks[Pos].is(TokenKind::LParen) || true);
  const Token &Next = peekRaw(1);
  switch (Next.Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwShort:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwSigned:
  case TokenKind::KwUnsigned:
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
  case TokenKind::KwEnum:
  case TokenKind::KwConst:
  case TokenKind::KwVolatile:
    return true;
  case TokenKind::Identifier:
    return isTypedefName(Next.Sym);
  default:
    return false;
  }
}

bool Parser::parseTypeName(TypeName &Out) {
  DeclSpecs Specs;
  if (!parseDeclSpecs(Specs, /*AllowStorage=*/false))
    return false;
  Out.Spec = Specs.Type;
  Out.PointerDepth = 0;
  while (consumeIf(TokenKind::Star))
    ++Out.PointerDepth;
  return true;
}

Expr *Parser::parseCastOrUnaryExpr() {
  if (cur().is(TokenKind::LParen) && lparenStartsTypeName()) {
    SourceLoc Loc = curLoc();
    advance();
    TypeName Ty;
    if (!parseTypeName(Ty)) {
      skipTo({TokenKind::RParen});
      consumeIf(TokenKind::RParen);
      return nullptr;
    }
    expect(TokenKind::RParen, "after type name in cast");
    Expr *Operand = parseCastOrUnaryExpr();
    if (!Operand)
      return nullptr;
    return CC.Ast.create<CastExpr>(Ty, Operand, Loc);
  }
  return parseUnaryExpr();
}

Expr *Parser::parseUnaryExpr() {
  SourceLoc Loc = curLoc();
  auto Prefix = [&](UnaryOpKind Op) -> Expr * {
    advance();
    Expr *Operand = parseCastOrUnaryExpr();
    if (!Operand)
      return nullptr;
    return CC.Ast.create<UnaryExpr>(Op, Operand, Loc);
  };
  switch (cur().Kind) {
  case TokenKind::Plus:
    return Prefix(UnaryOpKind::Plus);
  case TokenKind::Minus:
    return Prefix(UnaryOpKind::Minus);
  case TokenKind::Exclaim:
    return Prefix(UnaryOpKind::Not);
  case TokenKind::Tilde:
    return Prefix(UnaryOpKind::BitNot);
  case TokenKind::Star:
    return Prefix(UnaryOpKind::Deref);
  case TokenKind::Amp:
    return Prefix(UnaryOpKind::AddrOf);
  case TokenKind::PlusPlus:
    return Prefix(UnaryOpKind::PreInc);
  case TokenKind::MinusMinus:
    return Prefix(UnaryOpKind::PreDec);
  case TokenKind::KwSizeof: {
    advance();
    if (cur().is(TokenKind::LParen) && lparenStartsTypeName()) {
      advance();
      TypeName Ty;
      if (!parseTypeName(Ty))
        return nullptr;
      expect(TokenKind::RParen, "after type name in sizeof");
      return CC.Ast.create<SizeofExpr>(Ty, Loc);
    }
    Expr *Operand = parseUnaryExpr();
    if (!Operand)
      return nullptr;
    return CC.Ast.create<SizeofExpr>(Operand, Loc);
  }
  default:
    return parsePostfixExpr();
  }
}

Expr *Parser::parsePostfixExpr() {
  Expr *E = parsePrimaryExpr();
  if (!E)
    return nullptr;
  for (;;) {
    SourceLoc Loc = curLoc();
    switch (cur().Kind) {
    case TokenKind::LParen: {
      advance();
      std::vector<Expr *> Args;
      if (cur().isNot(TokenKind::RParen)) {
        for (;;) {
          // A list-typed placeholder splices into the argument list.
          if (cur().is(TokenKind::PlaceholderTok) &&
              cur().Ph->Type->isList() &&
              MetaTypeContext::isAssignable(
                  CC.Types.getList(CC.Types.getExp()), cur().Ph->Type)) {
            Args.push_back(
                CC.Ast.create<PlaceholderExpr>(cur().Ph, curLoc()));
            advance();
            if (!consumeIf(TokenKind::Comma))
              break;
            continue;
          }
          Expr *Arg = parseAssignmentExpr();
          if (!Arg)
            break;
          Args.push_back(Arg);
          if (!consumeIf(TokenKind::Comma))
            break;
        }
      }
      expect(TokenKind::RParen, "at end of argument list");
      E = CC.Ast.create<CallExpr>(E, ArenaRef<Expr *>::copy(CC.Ast, Args),
                                  Loc);
      continue;
    }
    case TokenKind::LBracket: {
      advance();
      Expr *Idx = parseExpression();
      expect(TokenKind::RBracket, "at end of subscript");
      if (!Idx)
        return E;
      E = CC.Ast.create<IndexExpr>(E, Idx, Loc);
      continue;
    }
    case TokenKind::Dot:
    case TokenKind::Arrow: {
      bool IsArrow = cur().is(TokenKind::Arrow);
      advance();
      Ident Member;
      if (cur().is(TokenKind::Identifier)) {
        Member = Ident(cur().Sym, curLoc());
        advance();
      } else if (cur().is(TokenKind::PlaceholderTok) &&
                 cur().Ph->Type->kind() == MetaTypeKind::Id) {
        Member = Ident(cur().Ph, curLoc());
        advance();
      } else {
        CC.Diags.error(curLoc(), "expected member name");
        return E;
      }
      E = CC.Ast.create<MemberExpr>(E, Member, IsArrow, Loc);
      continue;
    }
    case TokenKind::PlusPlus:
      advance();
      E = CC.Ast.create<UnaryExpr>(UnaryOpKind::PostInc, E, Loc);
      continue;
    case TokenKind::MinusMinus:
      advance();
      E = CC.Ast.create<UnaryExpr>(UnaryOpKind::PostDec, E, Loc);
      continue;
    default:
      return E;
    }
  }
}

Expr *Parser::parsePrimaryExpr() {
  const Token &T = cur();
  SourceLoc Loc = T.Loc;
  switch (T.Kind) {
  case TokenKind::IntLiteral: {
    int64_t V = T.IntVal;
    advance();
    return CC.Ast.create<IntLiteralExpr>(V, Loc);
  }
  case TokenKind::FloatLiteral: {
    double V = T.FloatVal;
    advance();
    return CC.Ast.create<FloatLiteralExpr>(V, Loc);
  }
  case TokenKind::CharLiteral: {
    int64_t V = T.IntVal;
    advance();
    return CC.Ast.create<CharLiteralExpr>(V, Loc);
  }
  case TokenKind::StringLiteral: {
    Symbol S = T.Sym;
    advance();
    return CC.Ast.create<StringLiteralExpr>(S, Loc);
  }
  case TokenKind::Identifier: {
    // Macro invocation in expression position?
    if (const MacroDef *Def = macroAtCursor()) {
      const MetaType *RT = Def->ReturnType;
      if (RT->kind() == MetaTypeKind::Exp || RT->kind() == MetaTypeKind::Num ||
          RT->kind() == MetaTypeKind::Id) {
        MacroInvocation *Inv = parseMacroInvocation(Def);
        if (!Inv)
          return nullptr;
        return CC.Ast.create<MacroInvocationExpr>(Inv, Loc);
      }
      // A statement/decl macro used inside an expression is an error, but
      // note that the *name* may still be an ordinary variable if shadowed;
      // we follow the paper and treat macro names as reserved keywords.
      CC.Diags.error(Loc, "macro '" + std::string(Def->Name.str()) +
                              "' returns " + RT->toString() +
                              " and cannot appear in an expression");
      // Recover by parsing (and discarding) the invocation.
      parseMacroInvocation(Def);
      return CC.Ast.create<IntLiteralExpr>(0, Loc);
    }
    Ident Name(T.Sym, Loc);
    advance();
    return CC.Ast.create<IdentExpr>(Name, Loc);
  }
  case TokenKind::PlaceholderTok: {
    const Placeholder *Ph = T.Ph;
    // Statically ensure the placeholder can stand for an expression.
    const MetaType *PT = Ph->Type;
    bool Ok = MetaTypeContext::isAssignable(CC.Types.getExp(), PT) ||
              PT->kind() == MetaTypeKind::String ||
              PT->kind() == MetaTypeKind::Int ||
              PT->kind() == MetaTypeKind::Float;
    if (!Ok)
      CC.Diags.error(Loc, "placeholder of type " + PT->toString() +
                              " cannot appear where an expression is "
                              "expected");
    advance();
    return CC.Ast.create<PlaceholderExpr>(Ph, Loc);
  }
  case TokenKind::LParen: {
    advance();
    Expr *Inner = parseExpression();
    expect(TokenKind::RParen, "at end of parenthesized expression");
    if (!Inner)
      return nullptr;
    return CC.Ast.create<ParenExpr>(Inner, Loc);
  }
  case TokenKind::Backquote: {
    if (!MetaMode) {
      CC.Diags.error(Loc, "code templates ('`') are only allowed in meta "
                          "code");
      advance();
      return nullptr;
    }
    return parseBackquoteExpr();
  }
  case TokenKind::KwLambda: {
    if (!MetaMode) {
      CC.Diags.error(Loc, "anonymous functions are only allowed in meta "
                          "code");
      advance();
      return nullptr;
    }
    return parseLambdaExpr();
  }
  case TokenKind::Dollar:
    CC.Diags.error(Loc, "placeholder ('$') outside of a code template");
    advance();
    return nullptr;
  default:
    CC.Diags.error(Loc, std::string("expected expression, found '") +
                            tokenKindSpelling(T.Kind) + "'");
    return nullptr;
  }
}
