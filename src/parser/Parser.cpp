//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser core: token management, the placeholder co-routine, declaration
/// parsing, and the typedef environment.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include <string>

using namespace msq;

Parser::Parser(CompilationContext &CC, Options Opts)
    : CC(CC), Opts(Opts), Checker(CC.Types, CC.Diags, CC.MetaFuncs) {}

//===----------------------------------------------------------------------===//
// Token stream management
//===----------------------------------------------------------------------===//

const Token &Parser::cur() {
  if (TemplateDepth > 0 && Pos < Toks.size() &&
      Toks[Pos].is(TokenKind::Dollar))
    convertPlaceholderAtCursor();
  return Toks[Pos];
}

const Token &Parser::peekRaw(size_t Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Toks.size())
    I = Toks.size() - 1; // Eof token
  return Toks[I];
}

void Parser::advance() {
  if (Pos + 1 < Toks.size())
    ++Pos;
}

bool Parser::consumeIf(TokenKind K) {
  if (cur().isNot(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (consumeIf(K))
    return true;
  CC.Diags.error(curLoc(), std::string("expected '") + tokenKindSpelling(K) +
                               "' " + Context + ", found '" +
                               tokenKindSpelling(cur().Kind) + "'");
  return false;
}

SourceLoc Parser::curLoc() { return cur().Loc; }

void Parser::skipTo(std::initializer_list<TokenKind> Kinds) {
  unsigned Depth = 0;
  while (!Toks[Pos].is(TokenKind::Eof)) {
    TokenKind K = Toks[Pos].Kind;
    if (Depth == 0)
      for (TokenKind Want : Kinds)
        if (K == Want)
          return;
    if (K == TokenKind::LBrace || K == TokenKind::LParen ||
        K == TokenKind::LBracket)
      ++Depth;
    else if (K == TokenKind::RBrace || K == TokenKind::RParen ||
             K == TokenKind::RBracket) {
      if (Depth == 0)
        return;
      --Depth;
    }
    ++Pos;
  }
}

void Parser::convertPlaceholderAtCursor() {
  assert(Toks[Pos].is(TokenKind::Dollar) && "not at a placeholder");
  size_t Start = Pos;
  SourceLoc Loc = Toks[Pos].Loc;
  ++Pos; // consume '$'

  // Parse the placeholder's meta-expression in meta mode: placeholders do
  // not nest directly (a nested backquote re-enables them).
  ModeState Saved = saveMode();
  MetaMode = true;
  TemplateDepth = 0;

  Expr *MetaExpr = nullptr;
  if (Toks[Pos].is(TokenKind::Identifier)) {
    MetaExpr = CC.Ast.create<IdentExpr>(Ident(Toks[Pos].Sym, Toks[Pos].Loc),
                                        Toks[Pos].Loc);
    ++Pos;
  } else if (Toks[Pos].is(TokenKind::LParen)) {
    ++Pos;
    MetaExpr = parseExpression();
    expect(TokenKind::RParen, "after placeholder expression");
  } else {
    CC.Diags.error(Loc, "expected identifier or parenthesized expression "
                        "after '$'");
    MetaExpr = CC.Ast.create<IntLiteralExpr>(0, Loc);
  }
  restoreMode(Saved);

  // Type analysis: exactly the step that lets the parser thread templates.
  const MetaType *Type = Checker.typeOfExpr(MetaExpr, CC.Globals);

  Placeholder *Ph = CC.Ast.create<Placeholder>();
  Ph->MetaExpr = MetaExpr;
  Ph->Type = Type;
  Ph->Loc = Loc;

  // Replace the consumed tokens with one placeholder token.
  Token PhTok;
  PhTok.Kind = TokenKind::PlaceholderTok;
  PhTok.Loc = Loc;
  PhTok.Ph = Ph;
  Toks[Start] = PhTok;
  Toks.erase(Toks.begin() + Start + 1, Toks.begin() + Pos);
  Pos = Start;
}

//===----------------------------------------------------------------------===//
// Typedefs
//===----------------------------------------------------------------------===//

bool Parser::isTypedefName(Symbol Name) const {
  const auto &TypedefScopes = CC.TypedefScopes;
  for (auto It = TypedefScopes.rbegin(); It != TypedefScopes.rend(); ++It)
    if (It->count(Name))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

TranslationUnit *Parser::parseTranslationUnit(uint32_t BufferId) {
  Lexer Lex(BufferId, CC.SM.bufferContents(BufferId), CC.Interner, CC.Diags);
  return parseTranslationUnitFromTokens(Lex.lexAll());
}

TranslationUnit *
Parser::parseTranslationUnitFromTokens(std::vector<Token> TokensIn) {
  Toks = std::move(TokensIn);
  Pos = 0;
  SourceLoc StartLoc = Toks.empty() ? SourceLoc() : Toks[0].Loc;

  std::vector<Decl *> Items;
  while (cur().isNot(TokenKind::Eof)) {
    size_t Before = Pos;
    Decl *D = parseExternalDeclaration();
    if (D)
      Items.push_back(D);
    if (Pos == Before) {
      // Ensure forward progress on hard errors.
      CC.Diags.error(curLoc(), std::string("unexpected token '") +
                                   tokenKindSpelling(cur().Kind) +
                                   "' at top level");
      advance();
    }
  }
  return CC.Ast.create<TranslationUnit>(ArenaRef<Decl *>::copy(CC.Ast, Items),
                                        StartLoc);
}

Expr *Parser::parseExpressionFragment(uint32_t BufferId) {
  Lexer Lex(BufferId, CC.SM.bufferContents(BufferId), CC.Interner, CC.Diags);
  Toks = Lex.lexAll();
  Pos = 0;
  Expr *E = parseExpression();
  if (cur().isNot(TokenKind::Eof))
    CC.Diags.error(curLoc(), "extra tokens after expression");
  return E;
}

Stmt *Parser::parseStatementFragment(uint32_t BufferId) {
  Lexer Lex(BufferId, CC.SM.bufferContents(BufferId), CC.Interner, CC.Diags);
  Toks = Lex.lexAll();
  Pos = 0;
  Stmt *S = parseStatement();
  if (cur().isNot(TokenKind::Eof))
    CC.Diags.error(curLoc(), "extra tokens after statement");
  return S;
}

Decl *Parser::parseDeclarationFragment(uint32_t BufferId) {
  Lexer Lex(BufferId, CC.SM.bufferContents(BufferId), CC.Interner, CC.Diags);
  Toks = Lex.lexAll();
  Pos = 0;
  Decl *D = parseExternalDeclaration();
  if (cur().isNot(TokenKind::Eof))
    CC.Diags.error(curLoc(), "extra tokens after declaration");
  return D;
}

BackquoteExpr *Parser::parseBackquoteFragment(uint32_t BufferId) {
  Lexer Lex(BufferId, CC.SM.bufferContents(BufferId), CC.Interner, CC.Diags);
  Toks = Lex.lexAll();
  Pos = 0;
  MetaMode = true;
  Expr *E = parseBackquoteExpr();
  MetaMode = false;
  if (cur().isNot(TokenKind::Eof))
    CC.Diags.error(curLoc(), "extra tokens after template");
  return dyn_cast_or_null<BackquoteExpr>(E);
}

void Parser::declareMetaGlobal(std::string_view Name, const MetaType *Type) {
  CC.Globals.declareGlobal(CC.Interner.intern(Name), Type);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

Decl *Parser::parseExternalDeclaration() {
  switch (cur().Kind) {
  case TokenKind::KwSyntax:
    return parseMacroDefinition();
  case TokenKind::KwMetadcl:
    return parseMetaDeclaration();
  case TokenKind::Semi:
    advance();
    return nullptr; // stray semicolon
  case TokenKind::PlaceholderTok: {
    const Token &T = cur();
    const MetaType *PT = T.Ph->Type;
    bool IsDecl = PT->kind() == MetaTypeKind::Decl ||
                  (PT->isList() && PT->listElem()->kind() == MetaTypeKind::Decl);
    if (IsDecl) {
      auto *D = CC.Ast.create<PlaceholderDeclNode>(T.Ph, T.Loc);
      advance();
      return D;
    }
    break;
  }
  default:
    break;
  }
  if (const MacroDef *Def = macroAtCursor()) {
    SourceLoc Loc = curLoc();
    const MetaType *RT = Def->ReturnType;
    bool FitsDecl =
        RT->kind() == MetaTypeKind::Decl ||
        (RT->isList() && RT->listElem()->kind() == MetaTypeKind::Decl);
    if (!FitsDecl)
      CC.Diags.error(Loc, "macro '" + std::string(Def->Name.str()) +
                              "' returns " + RT->toString() +
                              " and cannot appear where a declaration is "
                              "expected");
    MacroInvocation *Inv = parseMacroInvocation(Def);
    if (!Inv)
      return nullptr;
    return CC.Ast.create<MacroInvocationDecl>(Inv, Loc);
  }
  return parseDeclarationOrFunction(/*TopLevel=*/true);
}

Decl *Parser::parseMetaDeclaration() {
  SourceLoc Loc = curLoc();
  expect(TokenKind::KwMetadcl, "to begin a meta declaration");
  ModeState Saved = saveMode();
  MetaMode = true;
  Decl *Inner = parseDeclaration(/*AllowStorage=*/false);
  restoreMode(Saved);
  auto *InnerDecl = dyn_cast_or_null<Declaration>(Inner);
  if (!InnerDecl) {
    CC.Diags.error(Loc, "metadcl must introduce a variable declaration");
    return nullptr;
  }
  registerDeclaration(InnerDecl, /*IsMeta=*/true);
  return CC.Ast.create<MetaDecl>(InnerDecl, Loc);
}

/// Registers declarators: typedef names into the typedef environment and
/// meta variables into the global meta scope.
void Parser::registerDeclaration(Declaration *D, bool IsMeta) {
  for (const InitDeclarator &ID : D->Inits) {
    if (ID.Ph || !ID.Dtor || ID.Dtor->isPlaceholder() ||
        ID.Dtor->name().isPlaceholder() || !ID.Dtor->name().Sym.valid())
      continue;
    if (D->Specs.Storage == StorageClass::Typedef) {
      declareTypedef(ID.Dtor->name().Sym);
      continue;
    }
    if (!IsMeta && D->Specs.Type && !isa<MetaAstTypeSpec>(D->Specs.Type) &&
        !ID.Dtor->isFunction()) {
      // Record object variables for the var_type semantic query.
      CC.ObjectVarTypes[ID.Dtor->name().Sym] = D->Specs.Type;
    }
    if (IsMeta) {
      const MetaType *T =
          MetaTypeChecker::metaTypeFromDecl(D->Specs, ID.Dtor, CC.Types);
      if (!T) {
        CC.Diags.error(ID.Loc, "metadcl declaration must have a meta type");
        T = CC.Types.getError();
      }
      if (!CC.Globals.declareGlobal(ID.Dtor->name().Sym, T))
        CC.Diags.error(ID.Loc, "redeclaration of meta global '" +
                                   std::string(ID.Dtor->name().Sym.str()) + "'");
      if (ID.Init) {
        const MetaType *IT = Checker.typeOfExpr(ID.Init, CC.Globals);
        if (!MetaTypeContext::isAssignable(T, IT))
          CC.Diags.error(ID.Init->loc(),
                         "cannot initialize " + T->toString() + " with " +
                             IT->toString());
      }
    }
  }
}

Decl *Parser::parseDeclarationOrFunction(bool TopLevel) {
  SourceLoc Loc = curLoc();
  DeclSpecs Specs;
  Specs.Loc = Loc;
  // K&R implicit int: a top-level definition like `foo(a, b) ... { }` or a
  // template function definition with a computed name (`$(symbolconc(...))`)
  // carries no declaration specifiers at all.
  bool ImplicitInt =
      TopLevel &&
      ((cur().is(TokenKind::Identifier) && !isTypedefName(cur().Sym)) ||
       (cur().is(TokenKind::PlaceholderTok) &&
        cur().Ph->Type->kind() == MetaTypeKind::Id));
  if (!ImplicitInt && !parseDeclSpecs(Specs, /*AllowStorage=*/true)) {
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    consumeIf(TokenKind::Semi);
    return nullptr;
  }

  if (consumeIf(TokenKind::Semi)) {
    // Tag-only declaration like `struct s { ... };`.
    return CC.Ast.create<Declaration>(Specs, ArenaRef<InitDeclarator>(),
                                      nullptr, Loc);
  }

  // Whole-list placeholder or placeholder-led init declarators are handled
  // by parseInitDeclaratorList; but a function definition needs special
  // casing, so parse the first declarator here. Placeholders of type id
  // or declarator fall through: they may name a function definition
  // (`$(symbolconc("print_", name))(int arg) { ... }`).
  if (cur().is(TokenKind::PlaceholderTok) &&
      cur().Ph->Type->kind() != MetaTypeKind::Id &&
      cur().Ph->Type->kind() != MetaTypeKind::Declarator) {
    std::vector<InitDeclarator> Inits;
    const Placeholder *ListPh = nullptr;
    if (!parseInitDeclaratorList(Inits, ListPh, Specs))
      return nullptr;
    auto *D = CC.Ast.create<Declaration>(
        Specs, ArenaRef<InitDeclarator>::copy(CC.Ast, Inits), ListPh, Loc);
    registerDeclaration(D, /*IsMeta=*/false);
    return D;
  }

  Declarator *First = parseDeclarator(/*Abstract=*/false);
  if (!First) {
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    consumeIf(TokenKind::Semi);
    return nullptr;
  }

  // Function definition? (prototype-style `f(int a) {` or K&R `f(a) int a; {`)
  bool IsFunctionDef =
      TopLevel && First->isFunction() &&
      (cur().is(TokenKind::LBrace) ||
       (cur().isNot(TokenKind::Semi) && cur().isNot(TokenKind::Comma) &&
        cur().isNot(TokenKind::Equal) && isDeclarationStart()));
  if (IsFunctionDef) {
    // K&R parameter declarations.
    std::vector<Declaration *> KRDecls;
    while (cur().isNot(TokenKind::LBrace) && cur().isNot(TokenKind::Eof)) {
      Decl *KR = parseDeclaration(/*AllowStorage=*/false);
      if (!KR)
        break;
      if (auto *KRD = dyn_cast<Declaration>(KR))
        KRDecls.push_back(KRD);
    }
    // Is this a *meta* function? Only when the return type or a parameter
    // explicitly mentions an AST type ('@...'); ordinary C functions keep
    // their object-level bodies.
    bool MentionsAstType =
        Specs.Type && isa<MetaAstTypeSpec>(Specs.Type);
    if (!MentionsAstType && First->isFunction())
      for (const ParamDecl *P : First->Suffixes[0].Params)
        if (P->Specs.Type && isa<MetaAstTypeSpec>(P->Specs.Type))
          MentionsAstType = true;
    const MetaType *FnType =
        MentionsAstType
            ? MetaTypeChecker::metaTypeFromDecl(Specs, First, CC.Types)
            : nullptr;
    bool IsMetaFn = FnType && FnType->isFunction() &&
                    !First->Name.isPlaceholder() && First->Name.Sym.valid();
    ModeState Saved = saveMode();
    if (IsMetaFn) {
      // Register before parsing the body so recursion type-checks.
      CC.Globals.declareGlobal(First->Name.Sym, FnType);
      MetaMode = true;
      CC.Globals.push();
      const DeclSuffix &FnSuffix = First->Suffixes[0];
      size_t PI = 0;
      for (const ParamDecl *P : FnSuffix.Params) {
        if (P->Dtor && P->Dtor->name().Sym.valid()) {
          const MetaType *PT = FnType->paramTypes()[PI];
          CC.Globals.declare(P->Dtor->name().Sym, PT);
        }
        ++PI;
      }
    }
    CompoundStmt *Body = parseCompoundStmt();
    if (IsMetaFn)
      CC.Globals.pop();
    restoreMode(Saved);
    if (!Body)
      return nullptr;
    auto *FD = CC.Ast.create<FunctionDef>(
        Specs, First, ArenaRef<Declaration *>::copy(CC.Ast, KRDecls), Body,
        Loc);
    if (IsMetaFn) {
      const MetaType *FnT =
          MetaTypeChecker::metaTypeFromDecl(Specs, First, CC.Types);
      CC.MetaFuncs.define(First->Name.Sym, FnT, FD);
      // Re-check the body: return types, meta expressions.
      MetaScopeGuard Guard(CC.Globals);
      size_t PI = 0;
      for (const ParamDecl *P : First->Suffixes[0].Params) {
        if (P->Dtor && P->Dtor->name().Sym.valid())
          CC.Globals.declare(P->Dtor->name().Sym, FnT->paramTypes()[PI]);
        ++PI;
      }
      Checker.checkBody(Body, CC.Globals, FnT->resultType());
    }
    return FD;
  }

  // Ordinary declaration: first declarator (+ optional init), then the rest.
  std::vector<InitDeclarator> Inits;
  InitDeclarator FirstID;
  FirstID.Dtor = First;
  FirstID.Loc = First->Loc;
  if (consumeIf(TokenKind::Equal))
    FirstID.Init = parseInitializer();
  Inits.push_back(FirstID);
  const Placeholder *ListPh = nullptr;
  while (consumeIf(TokenKind::Comma)) {
    if (cur().is(TokenKind::PlaceholderTok)) {
      const Token &T = cur();
      const MetaType *PT = T.Ph->Type;
      InitDeclarator ID;
      ID.Loc = T.Loc;
      if (PT->kind() == MetaTypeKind::InitDeclarator) {
        ID.Ph = T.Ph;
        advance();
      } else {
        Declarator *Dtor = parseDeclarator(/*Abstract=*/false);
        ID.Dtor = Dtor;
        if (consumeIf(TokenKind::Equal))
          ID.Init = parseInitializer();
      }
      Inits.push_back(ID);
      continue;
    }
    Declarator *Dtor = parseDeclarator(/*Abstract=*/false);
    if (!Dtor)
      break;
    InitDeclarator ID;
    ID.Dtor = Dtor;
    ID.Loc = Dtor->Loc;
    if (consumeIf(TokenKind::Equal))
      ID.Init = parseInitializer();
    Inits.push_back(ID);
  }
  expect(TokenKind::Semi, "at end of declaration");
  auto *D = CC.Ast.create<Declaration>(
      Specs, ArenaRef<InitDeclarator>::copy(CC.Ast, Inits), ListPh, Loc);
  bool ImplicitMeta = MetaMode || (Specs.Type && isa<MetaAstTypeSpec>(Specs.Type) &&
                                   TopLevel);
  registerDeclaration(D, /*IsMeta=*/ImplicitMeta && TopLevel);
  return D;
}

Decl *Parser::parseDeclaration(bool AllowStorage) {
  SourceLoc Loc = curLoc();
  // Whole-declaration placeholders.
  if (cur().is(TokenKind::PlaceholderTok)) {
    const Token &T = cur();
    const MetaType *PT = T.Ph->Type;
    bool IsDecl = PT->kind() == MetaTypeKind::Decl ||
                  (PT->isList() && PT->listElem()->kind() == MetaTypeKind::Decl);
    if (IsDecl) {
      auto *D = CC.Ast.create<PlaceholderDeclNode>(T.Ph, T.Loc);
      advance();
      return D;
    }
    // Otherwise it should be a typespec placeholder starting the specs.
  }
  if (const MacroDef *Def = macroAtCursor()) {
    const MetaType *RT = Def->ReturnType;
    bool FitsDecl =
        RT->kind() == MetaTypeKind::Decl ||
        (RT->isList() && RT->listElem()->kind() == MetaTypeKind::Decl);
    if (FitsDecl) {
      MacroInvocation *Inv = parseMacroInvocation(Def);
      if (!Inv)
        return nullptr;
      return CC.Ast.create<MacroInvocationDecl>(Inv, Loc);
    }
  }

  DeclSpecs Specs;
  if (!parseDeclSpecs(Specs, AllowStorage)) {
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    consumeIf(TokenKind::Semi);
    return nullptr;
  }
  if (consumeIf(TokenKind::Semi))
    return CC.Ast.create<Declaration>(Specs, ArenaRef<InitDeclarator>(),
                                      nullptr, Loc);

  std::vector<InitDeclarator> Inits;
  const Placeholder *ListPh = nullptr;
  if (!parseInitDeclaratorList(Inits, ListPh, Specs))
    return nullptr;
  auto *D = CC.Ast.create<Declaration>(
      Specs, ArenaRef<InitDeclarator>::copy(CC.Ast, Inits), ListPh, Loc);
  registerDeclaration(D, /*IsMeta=*/false);
  return D;
}

/// Parses the init-declarator list with full Figure-2 placeholder support:
/// the whole list, one init-declarator, one declarator, or the name may each
/// be a placeholder, selected by the placeholder's meta-type.
bool Parser::parseInitDeclaratorList(std::vector<InitDeclarator> &Out,
                                     const Placeholder *&ListPh,
                                     DeclSpecs &Specs) {
  ListPh = nullptr;
  for (;;) {
    if (cur().is(TokenKind::PlaceholderTok)) {
      const Token &T = cur();
      const MetaType *PT = T.Ph->Type;
      if (PT->isList() &&
          (PT->listElem()->kind() == MetaTypeKind::InitDeclarator ||
           PT->listElem()->kind() == MetaTypeKind::Declarator ||
           PT->listElem()->kind() == MetaTypeKind::Id)) {
        // Figure 2 row 1: the whole init-declarator list. Lists of
        // declarators or identifiers also splice here (the paper's
        // `enum color $ids;` template).
        if (!Out.empty())
          CC.Diags.error(T.Loc, "an init-declarator-list placeholder must be "
                                "the entire list");
        ListPh = T.Ph;
        advance();
        break;
      }
      if (PT->kind() == MetaTypeKind::InitDeclarator) {
        // Figure 2 row 2.
        InitDeclarator ID;
        ID.Ph = T.Ph;
        ID.Loc = T.Loc;
        advance();
        Out.push_back(ID);
        if (consumeIf(TokenKind::Comma))
          continue;
        break;
      }
      // declarator / id placeholders fall through to parseDeclarator.
    }
    Declarator *Dtor = parseDeclarator(/*Abstract=*/false);
    if (!Dtor) {
      skipTo({TokenKind::Semi, TokenKind::RBrace});
      consumeIf(TokenKind::Semi);
      return false;
    }
    InitDeclarator ID;
    ID.Dtor = Dtor;
    ID.Loc = Dtor->Loc;
    if (consumeIf(TokenKind::Equal))
      ID.Init = parseInitializer();
    Out.push_back(ID);
    if (!consumeIf(TokenKind::Comma))
      break;
  }
  return expect(TokenKind::Semi, "at end of declaration");
}

bool Parser::isTypeSpecStart(const Token &T) const {
  switch (T.Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwShort:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwSigned:
  case TokenKind::KwUnsigned:
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
  case TokenKind::KwEnum:
  case TokenKind::KwConst:
  case TokenKind::KwVolatile:
    return true;
  case TokenKind::At:
    return MetaMode;
  case TokenKind::Identifier:
    return isTypedefName(T.Sym);
  default:
    return false;
  }
}

bool Parser::isDeclarationStart() {
  const Token &T = cur();
  switch (T.Kind) {
  case TokenKind::KwAuto:
  case TokenKind::KwRegister:
  case TokenKind::KwStatic:
  case TokenKind::KwExtern:
  case TokenKind::KwTypedef:
    return true;
  case TokenKind::PlaceholderTok: {
    const MetaType *PT = T.Ph->Type;
    if (PT->kind() == MetaTypeKind::TypeSpec ||
        PT->kind() == MetaTypeKind::Decl)
      return true;
    if (PT->isList() && (PT->listElem()->kind() == MetaTypeKind::Decl ||
                         PT->listElem()->kind() == MetaTypeKind::InitDeclarator))
      return true;
    return false;
  }
  case TokenKind::Identifier: {
    if (const MacroDef *Def = CC.Macros.lookup(T.Sym)) {
      const MetaType *RT = Def->ReturnType;
      return RT->kind() == MetaTypeKind::Decl ||
             (RT->isList() &&
              RT->listElem()->kind() == MetaTypeKind::Decl);
    }
    // Typedef name — but `name:` is a label, and `name = ...` etc. are
    // expressions.
    if (!isTypedefName(T.Sym))
      return false;
    return peekRaw(1).isNot(TokenKind::Colon);
  }
  default:
    return isTypeSpecStart(T);
  }
}

bool Parser::parseDeclSpecs(DeclSpecs &Specs, bool AllowStorage) {
  Specs.Loc = curLoc();
  bool SawAnything = false;
  unsigned Flags = 0;
  SourceLoc FlagsLoc = Specs.Loc;

  auto SetStorage = [&](StorageClass SC) {
    if (!AllowStorage)
      CC.Diags.error(curLoc(), "storage class not allowed here");
    else if (Specs.Storage != StorageClass::None)
      CC.Diags.error(curLoc(), "multiple storage classes in declaration");
    else
      Specs.Storage = SC;
    advance();
    SawAnything = true;
  };

  for (;;) {
    const Token &T = cur();
    switch (T.Kind) {
    case TokenKind::KwAuto:
      SetStorage(StorageClass::Auto);
      continue;
    case TokenKind::KwRegister:
      SetStorage(StorageClass::Register);
      continue;
    case TokenKind::KwStatic:
      SetStorage(StorageClass::Static);
      continue;
    case TokenKind::KwExtern:
      SetStorage(StorageClass::Extern);
      continue;
    case TokenKind::KwTypedef:
      SetStorage(StorageClass::Typedef);
      continue;
    case TokenKind::KwConst:
      Specs.Const = true;
      advance();
      SawAnything = true;
      continue;
    case TokenKind::KwVolatile:
      Specs.Volatile = true;
      advance();
      SawAnything = true;
      continue;
    case TokenKind::KwVoid:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwSigned:
    case TokenKind::KwUnsigned: {
      if (Specs.Type && !isa<BuiltinTypeSpec>(Specs.Type)) {
        CC.Diags.error(T.Loc, "multiple type specifiers in declaration");
        advance();
        continue;
      }
      unsigned Bit = 0;
      switch (T.Kind) {
      case TokenKind::KwVoid:
        Bit = BTF_Void;
        break;
      case TokenKind::KwChar:
        Bit = BTF_Char;
        break;
      case TokenKind::KwShort:
        Bit = BTF_Short;
        break;
      case TokenKind::KwInt:
        Bit = BTF_Int;
        break;
      case TokenKind::KwLong:
        Bit = (Flags & BTF_Long) ? BTF_LongLong : BTF_Long;
        break;
      case TokenKind::KwFloat:
        Bit = BTF_Float;
        break;
      case TokenKind::KwDouble:
        Bit = BTF_Double;
        break;
      case TokenKind::KwSigned:
        Bit = BTF_Signed;
        break;
      case TokenKind::KwUnsigned:
        Bit = BTF_Unsigned;
        break;
      default:
        break;
      }
      Flags |= Bit;
      FlagsLoc = T.Loc;
      advance();
      SawAnything = true;
      continue;
    }
    case TokenKind::KwStruct:
    case TokenKind::KwUnion:
    case TokenKind::KwEnum: {
      if (Specs.Type || Flags) {
        CC.Diags.error(T.Loc, "multiple type specifiers in declaration");
        skipTo({TokenKind::Semi, TokenKind::RBrace});
        return false;
      }
      Specs.Type = parseTagTypeSpec();
      SawAnything = true;
      continue;
    }
    case TokenKind::At: {
      // '@' types are meaningful in meta code and in the signatures of
      // meta functions (which are recognized after their specs are
      // parsed), so they are accepted here; uses in plain object contexts
      // are rejected when the declaration is interpreted.
      if (Specs.Type || Flags) {
        CC.Diags.error(T.Loc, "multiple type specifiers in declaration");
        return false;
      }
      SourceLoc AtLoc = T.Loc;
      advance();
      const MetaType *MT = parseAstSpecifierName();
      Specs.Type = CC.Ast.create<MetaAstTypeSpec>(MT ? MT : CC.Types.getError(),
                                                  AtLoc);
      SawAnything = true;
      continue;
    }
    case TokenKind::PlaceholderTok: {
      // A typespec placeholder can serve as the type specifier.
      if (!Specs.Type && !Flags &&
          T.Ph->Type->kind() == MetaTypeKind::TypeSpec) {
        Specs.Type = CC.Ast.create<PlaceholderTypeSpec>(T.Ph, T.Loc);
        advance();
        SawAnything = true;
        continue;
      }
      break;
    }
    case TokenKind::Identifier: {
      if (!Specs.Type && !Flags && isTypedefName(T.Sym) &&
          !CC.Macros.lookup(T.Sym)) {
        Specs.Type = CC.Ast.create<TypedefNameSpec>(T.Sym, T.Loc);
        advance();
        SawAnything = true;
        continue;
      }
      break;
    }
    default:
      break;
    }
    break;
  }

  if (Flags) {
    Specs.Type = CC.Ast.create<BuiltinTypeSpec>(Flags, FlagsLoc);
  }
  if (!SawAnything) {
    CC.Diags.error(curLoc(), "expected declaration specifiers");
    return false;
  }
  // K&R implicit int: `foo(a, b) ... ;` — Specs.Type may stay null when only
  // storage/qualifiers were given; that is accepted.
  return true;
}

TypeSpecNode *Parser::parseTagTypeSpec() {
  SourceLoc Loc = curLoc();
  TagKind Tag;
  switch (cur().Kind) {
  case TokenKind::KwStruct:
    Tag = TagKind::Struct;
    break;
  case TokenKind::KwUnion:
    Tag = TagKind::Union;
    break;
  case TokenKind::KwEnum:
    Tag = TagKind::Enum;
    break;
  default:
    assert(false && "not at a tag keyword");
    return nullptr;
  }
  advance();

  Ident TagName;
  if (cur().is(TokenKind::Identifier)) {
    TagName = Ident(cur().Sym, curLoc());
    advance();
  } else if (cur().is(TokenKind::PlaceholderTok) &&
             cur().Ph->Type->kind() == MetaTypeKind::Id) {
    TagName = Ident(cur().Ph, curLoc());
    advance();
  }

  bool HasBody = false;
  std::vector<Declaration *> Members;
  std::vector<Enumerator> Enums;

  if (consumeIf(TokenKind::LBrace)) {
    HasBody = true;
    if (Tag == TagKind::Enum) {
      // Enumerator list; entries may be identifier-list placeholders (the
      // paper's `enum color $ids;` template).
      while (cur().isNot(TokenKind::RBrace) && cur().isNot(TokenKind::Eof)) {
        Enumerator E;
        E.Loc = curLoc();
        if (cur().is(TokenKind::PlaceholderTok)) {
          const Token &T = cur();
          const MetaType *PT = T.Ph->Type;
          if (PT->isList() &&
              (PT->listElem()->kind() == MetaTypeKind::Id ||
               PT->listElem()->kind() == MetaTypeKind::Enumerator)) {
            E.ListPh = T.Ph;
            advance();
          } else if (PT->kind() == MetaTypeKind::Id) {
            E.Name = Ident(T.Ph, T.Loc);
            advance();
            if (consumeIf(TokenKind::Equal))
              E.Value = parseAssignmentExpr();
          } else {
            CC.Diags.error(T.Loc,
                           "placeholder of type " + PT->toString() +
                               " cannot appear in an enumerator list");
            advance();
          }
        } else if (cur().is(TokenKind::Identifier)) {
          E.Name = Ident(cur().Sym, curLoc());
          advance();
          if (consumeIf(TokenKind::Equal))
            E.Value = parseAssignmentExpr();
        } else {
          CC.Diags.error(curLoc(), "expected enumerator name");
          skipTo({TokenKind::Comma, TokenKind::RBrace});
        }
        if (E.Name.valid() || E.ListPh)
          Enums.push_back(E);
        if (!consumeIf(TokenKind::Comma))
          break;
      }
      expect(TokenKind::RBrace, "at end of enum body");
    } else {
      while (cur().isNot(TokenKind::RBrace) && cur().isNot(TokenKind::Eof)) {
        Decl *M = parseDeclaration(/*AllowStorage=*/false);
        if (!M) {
          skipTo({TokenKind::Semi, TokenKind::RBrace});
          consumeIf(TokenKind::Semi);
          continue;
        }
        if (auto *MD = dyn_cast<Declaration>(M))
          Members.push_back(MD);
      }
      expect(TokenKind::RBrace, "at end of struct/union body");
    }
  }

  return CC.Ast.create<TagTypeSpec>(
      Tag, TagName, HasBody, ArenaRef<Declaration *>::copy(CC.Ast, Members),
      ArenaRef<Enumerator>::copy(CC.Ast, Enums), Loc);
}

Declarator *Parser::parseDeclarator(bool Abstract) {
  Declarator *D = CC.Ast.create<Declarator>();
  D->Loc = curLoc();
  while (cur().is(TokenKind::Star)) {
    ++D->PointerDepth;
    advance();
    while (cur().isOneOf(TokenKind::KwConst, TokenKind::KwVolatile))
      advance();
  }
  if (cur().is(TokenKind::PlaceholderTok)) {
    const Token &T = cur();
    const MetaType *PT = T.Ph->Type;
    if (PT->kind() == MetaTypeKind::Declarator) {
      // Whole-declarator placeholder (Figure 2 row 3).
      if (D->PointerDepth != 0)
        CC.Diags.error(T.Loc, "pointer declarator cannot wrap a declarator "
                              "placeholder");
      D->Ph = T.Ph;
      advance();
      return D;
    }
    if (PT->kind() == MetaTypeKind::Id) {
      // Name placeholder (Figure 2 row 4).
      D->Name = Ident(T.Ph, T.Loc);
      advance();
    } else {
      CC.Diags.error(T.Loc, "placeholder of type " + PT->toString() +
                                " cannot appear as a declarator");
      advance();
      return nullptr;
    }
  } else if (cur().is(TokenKind::Identifier)) {
    D->Name = Ident(cur().Sym, curLoc());
    advance();
  } else if (cur().is(TokenKind::LParen) &&
             (peekRaw(1).is(TokenKind::Star) ||
              peekRaw(1).is(TokenKind::LParen))) {
    // Parenthesized declarator (function pointers: `(*f)(int)`).
    advance();
    D->Inner = parseDeclarator(Abstract);
    if (!D->Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "at end of parenthesized declarator"))
      return nullptr;
  } else if (!Abstract) {
    CC.Diags.error(curLoc(), std::string("expected declarator name, found '") +
                                 tokenKindSpelling(cur().Kind) + "'");
    return nullptr;
  }
  std::vector<DeclSuffix> Suffixes;
  if (!parseDeclaratorSuffixes(Suffixes))
    return nullptr;
  D->Suffixes = ArenaRef<DeclSuffix>::copy(CC.Ast, Suffixes);
  return D;
}

bool Parser::parseDeclaratorSuffixes(std::vector<DeclSuffix> &Suffixes) {
  for (;;) {
    if (cur().is(TokenKind::LBracket)) {
      advance();
      DeclSuffix S;
      S.K = DeclSuffix::Array;
      if (cur().isNot(TokenKind::RBracket))
        S.ArraySize = parseConditionalExpr();
      if (!expect(TokenKind::RBracket, "at end of array declarator"))
        return false;
      Suffixes.push_back(S);
      continue;
    }
    if (cur().is(TokenKind::LParen)) {
      advance();
      DeclSuffix S;
      S.K = DeclSuffix::Function;
      if (!parseParamList(S))
        return false;
      Suffixes.push_back(S);
      continue;
    }
    break;
  }
  return true;
}

bool Parser::parseParamList(DeclSuffix &Out) {
  if (consumeIf(TokenKind::RParen))
    return true;
  // `(void)` is an empty prototype.
  if (cur().is(TokenKind::KwVoid) && peekRaw(1).is(TokenKind::RParen)) {
    advance();
    advance();
    return true;
  }
  // K&R identifier list: plain identifiers that are not typedef names.
  if (cur().is(TokenKind::Identifier) && !isTypeSpecStart(cur())) {
    std::vector<Ident> Names;
    for (;;) {
      if (cur().is(TokenKind::Identifier)) {
        Names.push_back(Ident(cur().Sym, curLoc()));
        advance();
      } else if (cur().is(TokenKind::PlaceholderTok) &&
                 cur().Ph->Type->kind() == MetaTypeKind::Id) {
        Names.push_back(Ident(cur().Ph, curLoc()));
        advance();
      } else {
        CC.Diags.error(curLoc(), "expected parameter name");
        skipTo({TokenKind::RParen});
        break;
      }
      if (!consumeIf(TokenKind::Comma))
        break;
    }
    Out.KRNames = ArenaRef<Ident>::copy(CC.Ast, Names);
    return expect(TokenKind::RParen, "at end of parameter list");
  }
  // Prototype parameters.
  std::vector<ParamDecl *> Params;
  for (;;) {
    if (consumeIf(TokenKind::Ellipsis)) {
      Out.Variadic = true;
      break;
    }
    ParamDecl *P = CC.Ast.create<ParamDecl>();
    P->Loc = curLoc();
    if (!parseDeclSpecs(P->Specs, /*AllowStorage=*/false)) {
      skipTo({TokenKind::RParen});
      break;
    }
    P->Dtor = parseDeclarator(/*Abstract=*/true);
    Params.push_back(P);
    if (!consumeIf(TokenKind::Comma))
      break;
  }
  Out.Params = ArenaRef<ParamDecl *>::copy(CC.Ast, Params);
  return expect(TokenKind::RParen, "at end of parameter list");
}

//===----------------------------------------------------------------------===//
// Convenience
//===----------------------------------------------------------------------===//

TranslationUnit *msq::parseTranslationUnitFromString(CompilationContext &CC,
                                                     std::string Name,
                                                     std::string Source,
                                                     Parser::Options Opts) {
  uint32_t Id = CC.SM.addBuffer(std::move(Name), std::move(Source));
  Parser P(CC, Opts);
  return P.parseTranslationUnit(Id);
}
