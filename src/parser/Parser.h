//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MS2 parser: a hand-written recursive descent parser at the
/// declaration and statement levels with a precedence-based expression
/// parser, exactly the architecture the paper describes (section 3).
///
/// Context sensitivity:
///  * typedef names are tracked in a scoped environment;
///  * macro names act as keywords — on seeing one, the parser matches the
///    macro's pattern to find the invocation's constituents;
///  * inside backquote templates, `$` placeholder expressions are parsed
///    and *type-checked* on the spot ("the tokenizer co-routines with the
///    parser"), producing placeholder tokens whose meta-types then
///    disambiguate the template parse (Figures 2 and 3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_PARSER_PARSER_H
#define MSQ_PARSER_PARSER_H

#include "ast/Ast.h"
#include "lexer/Lexer.h"
#include "meta/MetaScope.h"
#include "meta/MetaTypeCheck.h"
#include "pattern/Pattern.h"
#include "support/Diagnostics.h"
#include "types/MetaType.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace msq {

/// Everything a parse needs and produces; shared by Parser, expander, and
/// interpreter so that one compilation uses one arena, one interner, one
/// macro registry.
struct CompilationContext {
  explicit CompilationContext(SourceManager &SM)
      : SM(SM), Diags(SM), Interner(Ast) {}

  SourceManager &SM;
  DiagnosticsEngine Diags;
  Arena Ast;
  StringInterner Interner;
  MetaTypeContext Types;
  MacroRegistry Macros;
  MetaFunctionRegistry MetaFuncs;
  MetaScope Globals;
  /// Compiled pattern cache (populated when Options.UseCompiledPatterns).
  std::unordered_map<const MacroDef *, std::unique_ptr<CompiledPattern>>
      CompiledPatterns;
  /// Typedef environment; the outermost scope persists for the whole
  /// compilation (typedefs from one source are visible to the next).
  std::vector<std::unordered_set<Symbol, SymbolHash>> TypedefScopes{1};
  /// Object-level variable declarations recorded during parsing: the
  /// static-semantic information behind the `var_type` builtin (the
  /// paper's "semantic macro" direction). Later declarations of the same
  /// name overwrite earlier ones; scoping is not modelled (documented
  /// approximation).
  std::unordered_map<Symbol, TypeSpecNode *, SymbolHash> ObjectVarTypes;
};

class Parser {
public:
  struct Options {
    /// Pre-compile each macro's pattern into a closure chain at definition
    /// time (the acceleration of paper section 3); otherwise patterns are
    /// interpreted at each invocation.
    bool UseCompiledPatterns = false;
  };

  explicit Parser(CompilationContext &CC) : Parser(CC, Options()) {}
  Parser(CompilationContext &CC, Options Opts);

  /// Parses a whole buffer as a translation unit. Never returns null; check
  /// the DiagnosticsEngine for errors.
  TranslationUnit *parseTranslationUnit(uint32_t BufferId);

  /// Parses an already-lexed token stream (Eof-terminated, as produced by
  /// Lexer::lexAll) as a translation unit. The incremental engine's
  /// token-cache path: lexing depends only on the source bytes, so a
  /// cached stream can be re-parsed under changed macro definitions. The
  /// vector is taken by value — the placeholder co-routine rewrites
  /// tokens in place, so callers keep their cached copy intact.
  TranslationUnit *parseTranslationUnitFromTokens(std::vector<Token> TokensIn);

  /// Fragment entry points for tests/benchmarks. Each parses the entire
  /// buffer as one fragment.
  Expr *parseExpressionFragment(uint32_t BufferId);
  Stmt *parseStatementFragment(uint32_t BufferId);
  Decl *parseDeclarationFragment(uint32_t BufferId);
  /// Parses a buffer containing a single backquote template (meta mode);
  /// used to reproduce Figures 2 and 3 directly.
  BackquoteExpr *parseBackquoteFragment(uint32_t BufferId);

  /// Declares a meta variable in the global scope (used by fragment-level
  /// tests to set up placeholder types).
  void declareMetaGlobal(std::string_view Name, const MetaType *Type);

  CompilationContext &context() { return CC; }

private:
  friend class InvocationConstituents;

  //===--------------------------------------------------------------------===//
  // Token stream management
  //===--------------------------------------------------------------------===//

  /// Current token, with the placeholder co-routine applied: inside a
  /// template, a `$` at the cursor is parsed, type-checked, and replaced by
  /// a single PlaceholderTok before being returned.
  const Token &cur();
  /// Raw lookahead (no placeholder conversion).
  const Token &peekRaw(size_t Ahead = 1) const;
  void advance();
  bool consumeIf(TokenKind K);
  /// Consumes a token of kind \p K or diagnoses "expected ... <Context>".
  bool expect(TokenKind K, const char *Context);
  SourceLoc curLoc();
  /// Skips forward to one of the given kinds (or Eof) for error recovery.
  void skipTo(std::initializer_list<TokenKind> Kinds);

  /// Converts the `$`-form at the cursor into a PlaceholderTok (parses and
  /// type-checks the placeholder meta-expression).
  void convertPlaceholderAtCursor();

  //===--------------------------------------------------------------------===//
  // Mode handling
  //===--------------------------------------------------------------------===//

  struct ModeState {
    bool MetaMode;
    unsigned TemplateDepth;
  };
  ModeState saveMode() const { return {MetaMode, TemplateDepth}; }
  void restoreMode(ModeState S) {
    MetaMode = S.MetaMode;
    TemplateDepth = S.TemplateDepth;
  }

  //===--------------------------------------------------------------------===//
  // Typedef environment
  //===--------------------------------------------------------------------===//

  void pushTypedefScope() { CC.TypedefScopes.emplace_back(); }
  void popTypedefScope() { CC.TypedefScopes.pop_back(); }
  void declareTypedef(Symbol Name) { CC.TypedefScopes.back().insert(Name); }
  bool isTypedefName(Symbol Name) const;

  //===--------------------------------------------------------------------===//
  // Declarations (Parser.cpp)
  //===--------------------------------------------------------------------===//

  Decl *parseExternalDeclaration();
  Decl *parseDeclarationOrFunction(bool TopLevel);
  Decl *parseDeclaration(bool AllowStorage = true);
  bool parseDeclSpecs(DeclSpecs &Specs, bool AllowStorage);
  TypeSpecNode *parseTagTypeSpec();
  Declarator *parseDeclarator(bool Abstract);
  bool parseDeclaratorSuffixes(std::vector<DeclSuffix> &Suffixes);
  bool parseParamList(DeclSuffix &Out);
  bool parseInitDeclaratorList(std::vector<InitDeclarator> &Out,
                               const Placeholder *&ListPh, DeclSpecs &Specs);
  void registerDeclaration(Declaration *D, bool IsMeta);
  bool isDeclarationStart();
  bool isTypeSpecStart(const Token &T) const;
  Decl *parseMetaDeclaration();

  //===--------------------------------------------------------------------===//
  // Statements (ParseStmt.cpp)
  //===--------------------------------------------------------------------===//

  Stmt *parseStatement();
  CompoundStmt *parseCompoundStmt();

  //===--------------------------------------------------------------------===//
  // Expressions (ParseExpr.cpp)
  //===--------------------------------------------------------------------===//

  Expr *parseExpression();           // includes comma operator
  Expr *parseAssignmentExpr();
  /// Assignment expression or `{...}` brace initializer (declaration
  /// initializers only).
  Expr *parseInitializer();
  Expr *parseConditionalExpr();
  Expr *parseBinaryExpr(int MinPrec);
  Expr *parseCastOrUnaryExpr();
  Expr *parseUnaryExpr();
  Expr *parsePostfixExpr();
  Expr *parsePrimaryExpr();
  bool parseTypeName(TypeName &Out);
  /// Heuristic: does a '(' at the cursor open a cast/type-name?
  bool lparenStartsTypeName() const;

  //===--------------------------------------------------------------------===//
  // Meta constructs (ParseMeta.cpp)
  //===--------------------------------------------------------------------===//

  Decl *parseMacroDefinition();
  Pattern *parsePattern(TokenKind EndTok);
  PSpec *parsePSpec();
  const MetaType *parseAstSpecifierName();
  Expr *parseBackquoteExpr();
  Expr *parseLambdaExpr();
  Node *parseTemplateDeclForBackquote();
  MatchValue *parseGeneralBackquote(const PSpec *Spec);

  //===--------------------------------------------------------------------===//
  // Macro invocations (ParseInvocation.cpp)
  //===--------------------------------------------------------------------===//

  /// True when the identifier at the cursor names a registered macro.
  const MacroDef *macroAtCursor();
  MacroInvocation *parseMacroInvocation(const MacroDef *Def);
  /// Matches \p P against the current token stream (compiled matcher when
  /// \p CP is non-null).
  bool runPatternMatch(const Pattern &P, std::vector<MacroArg> &Bindings,
                       const CompiledPattern *CP = nullptr);
  /// Parses one pattern constituent of scalar type \p Scalar (callback used
  /// by the pattern matchers).
  MatchValue *parseConstituent(const MetaType *Scalar);

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  CompilationContext &CC;
  Options Opts;
  MetaTypeChecker Checker;

  std::vector<Token> Toks;
  size_t Pos = 0;

  bool MetaMode = false;
  unsigned TemplateDepth = 0;
  /// True while parsing statements (not declarations) of a template
  /// compound statement — makes decl-typed placeholders illegal (Figure 3).
  bool TemplateStmtSection = false;

  /// Guards runaway recovery loops.
  unsigned RecoveryCounter = 0;
};

/// Convenience: lex+parse a string as a translation unit into \p CC.
TranslationUnit *parseTranslationUnitFromString(CompilationContext &CC,
                                                std::string Name,
                                                std::string Source,
                                                Parser::Options Opts = {});

} // namespace msq

#endif // MSQ_PARSER_PARSER_H
