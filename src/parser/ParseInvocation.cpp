//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Macro invocation parsing: "When the parser encounters a macro keyword,
/// it parses the invocation according to the macro's pattern, packages up
/// the macro with its actual parameters for later expansion, then uses the
/// declared type of the macro to decide how to continue the parse."
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

using namespace msq;

namespace msq {

/// Adapts the Parser to the ConstituentParser interface the pattern
/// matchers drive.
class InvocationConstituents : public ConstituentParser {
public:
  explicit InvocationConstituents(Parser &P) : P(P) {}

  const Token &peek() override { return P.cur(); }

  bool tokenMatches(TokenKind K, Symbol Sym) override {
    const Token &T = P.cur();
    if (T.Kind != K)
      return false;
    return !Sym.valid() || T.Sym == Sym;
  }

  bool consumeToken(TokenKind K, Symbol Sym) override {
    if (tokenMatches(K, Sym)) {
      P.advance();
      return true;
    }
    std::string Want = Sym.valid() ? std::string(Sym.str())
                                   : std::string(tokenKindSpelling(K));
    P.CC.Diags.error(P.curLoc(), "expected '" + Want +
                                     "' in macro invocation, found '" +
                                     tokenKindSpelling(P.cur().Kind) + "'");
    return false;
  }

  MatchValue *parseConstituent(const MetaType *Scalar) override {
    return P.parseConstituent(Scalar);
  }

  Arena &arena() override { return P.CC.Ast; }
  DiagnosticsEngine &diags() override { return P.CC.Diags; }

private:
  Parser &P;
};

} // namespace msq

const MacroDef *Parser::macroAtCursor() {
  const Token &T = cur();
  if (T.isNot(TokenKind::Identifier))
    return nullptr;
  return CC.Macros.lookup(T.Sym);
}

bool Parser::runPatternMatch(const Pattern &P,
                             std::vector<MacroArg> &Bindings,
                             const CompiledPattern *CP) {
  InvocationConstituents IC(*this);
  if (CP)
    return CP->match(IC, Bindings);
  PatternMatcher M(CC.Types);
  return M.match(P, IC, Bindings);
}

MacroInvocation *Parser::parseMacroInvocation(const MacroDef *Def) {
  SourceLoc Loc = curLoc();
  advance(); // the macro keyword

  std::vector<MacroArg> Bindings;
  const CompiledPattern *CP = nullptr;
  auto It = CC.CompiledPatterns.find(Def);
  if (It != CC.CompiledPatterns.end())
    CP = It->second.get();

  if (!runPatternMatch(*Def->Pat, Bindings, CP)) {
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    return nullptr;
  }

  MacroInvocation *Inv = CC.Ast.create<MacroInvocation>();
  Inv->Def = Def;
  Inv->Loc = Loc;
  Inv->Args = ArenaRef<MacroArg>::copy(CC.Ast, Bindings);
  return Inv;
}

MatchValue *Parser::parseConstituent(const MetaType *Scalar) {
  MatchValue *V = CC.Ast.create<MatchValue>();
  V->Type = Scalar;
  SourceLoc Loc = curLoc();
  switch (Scalar->kind()) {
  case MetaTypeKind::Exp: {
    Expr *E = parseAssignmentExpr();
    if (!E)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = E;
    return V;
  }
  case MetaTypeKind::Num: {
    const Token &T = cur();
    Expr *E = nullptr;
    if (T.is(TokenKind::IntLiteral)) {
      E = CC.Ast.create<IntLiteralExpr>(T.IntVal, Loc);
      advance();
    } else if (T.is(TokenKind::FloatLiteral)) {
      E = CC.Ast.create<FloatLiteralExpr>(T.FloatVal, Loc);
      advance();
    } else if (T.is(TokenKind::CharLiteral)) {
      E = CC.Ast.create<CharLiteralExpr>(T.IntVal, Loc);
      advance();
    } else if (T.is(TokenKind::PlaceholderTok) &&
               T.Ph->Type->kind() == MetaTypeKind::Num) {
      E = CC.Ast.create<PlaceholderExpr>(T.Ph, Loc);
      advance();
    } else {
      CC.Diags.error(Loc, "expected a numeric literal in macro invocation");
      return nullptr;
    }
    V->K = MatchValue::Ast;
    V->AstNode = E;
    return V;
  }
  case MetaTypeKind::Id: {
    const Token &T = cur();
    if (T.is(TokenKind::Identifier)) {
      V->K = MatchValue::IdentV;
      V->Id = Ident(T.Sym, Loc);
      advance();
      return V;
    }
    if (T.is(TokenKind::PlaceholderTok) &&
        T.Ph->Type->kind() == MetaTypeKind::Id) {
      V->K = MatchValue::IdentV;
      V->Id = Ident(T.Ph, Loc);
      advance();
      return V;
    }
    CC.Diags.error(Loc, "expected an identifier in macro invocation");
    return nullptr;
  }
  case MetaTypeKind::Stmt: {
    Stmt *S = parseStatement();
    if (!S)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = S;
    return V;
  }
  case MetaTypeKind::Decl: {
    Decl *D = parseDeclaration();
    if (!D)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = D;
    return V;
  }
  case MetaTypeKind::TypeSpec: {
    if (cur().is(TokenKind::PlaceholderTok) &&
        cur().Ph->Type->kind() == MetaTypeKind::TypeSpec) {
      V->K = MatchValue::Ast;
      V->AstNode = CC.Ast.create<PlaceholderTypeSpec>(cur().Ph, Loc);
      advance();
      return V;
    }
    DeclSpecs Specs;
    if (!parseDeclSpecs(Specs, /*AllowStorage=*/false) || !Specs.Type)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = Specs.Type;
    return V;
  }
  case MetaTypeKind::Declarator: {
    Declarator *D = parseDeclarator(/*Abstract=*/false);
    if (!D)
      return nullptr;
    V->K = MatchValue::DeclaratorV;
    V->Dtor = D;
    return V;
  }
  case MetaTypeKind::InitDeclarator: {
    Declarator *D = parseDeclarator(/*Abstract=*/false);
    if (!D)
      return nullptr;
    InitDeclarator *ID = CC.Ast.create<InitDeclarator>();
    ID->Dtor = D;
    ID->Loc = Loc;
    if (consumeIf(TokenKind::Equal))
      ID->Init = parseInitializer();
    V->K = MatchValue::InitDeclV;
    V->InitDtor = ID;
    return V;
  }
  case MetaTypeKind::Enumerator: {
    const Token &T = cur();
    if (T.isNot(TokenKind::Identifier)) {
      CC.Diags.error(Loc, "expected an enumerator name");
      return nullptr;
    }
    Enumerator *E = CC.Ast.create<Enumerator>();
    E->Name = Ident(T.Sym, Loc);
    E->Loc = Loc;
    advance();
    if (consumeIf(TokenKind::Equal))
      E->Value = parseAssignmentExpr();
    V->K = MatchValue::EnumeratorV;
    V->Enum = E;
    return V;
  }
  default:
    CC.Diags.error(Loc, "pattern constituent type " + Scalar->toString() +
                            " is not supported");
    return nullptr;
  }
}
