//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsing of the macro-language constructs: `syntax` macro definitions,
/// invocation patterns, backquote code templates (all four forms), and
/// anonymous functions.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

using namespace msq;

//===----------------------------------------------------------------------===//
// AST specifiers
//===----------------------------------------------------------------------===//

/// Parses the identifier naming an AST scalar type (`stmt`, `exp`, ...).
const MetaType *Parser::parseAstSpecifierName() {
  if (cur().isNot(TokenKind::Identifier)) {
    CC.Diags.error(curLoc(), "expected an AST type name (exp, stmt, decl, "
                             "id, num, typespec, ...)");
    return nullptr;
  }
  const MetaType *T = CC.Types.scalarByName(cur().Sym.str());
  if (!T) {
    CC.Diags.error(curLoc(), "unknown AST type '" +
                                 std::string(cur().Sym.str()) + "'");
    advance();
    return nullptr;
  }
  advance();
  // Optional [] suffixes build list types (e.g. `@id[]`).
  while (cur().is(TokenKind::LBracket) && peekRaw(1).is(TokenKind::RBracket)) {
    advance();
    advance();
    T = CC.Types.getList(T);
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Macro definitions
//===----------------------------------------------------------------------===//

Decl *Parser::parseMacroDefinition() {
  SourceLoc Loc = curLoc();
  expect(TokenKind::KwSyntax, "to begin a macro definition");

  // Return AST type: an ast-specifier.
  const MetaType *ReturnType = parseAstSpecifierName();
  if (!ReturnType)
    ReturnType = CC.Types.getError();

  // Macro name, with optional [] making the return type a list
  // (`syntax decl myenum[]` returns a declaration list).
  Symbol Name;
  if (cur().is(TokenKind::Identifier)) {
    Name = cur().Sym;
    advance();
  } else {
    CC.Diags.error(curLoc(), "expected macro name");
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    return nullptr;
  }
  while (cur().is(TokenKind::LBracket) && peekRaw(1).is(TokenKind::RBracket)) {
    advance();
    advance();
    ReturnType = CC.Types.getList(ReturnType);
  }

  if (!expect(TokenKind::LMetaBrace, "to begin the macro pattern")) {
    skipTo({TokenKind::RBrace});
    return nullptr;
  }
  Pattern *Pat = parsePattern(TokenKind::RMetaBrace);
  expect(TokenKind::RMetaBrace, "at end of the macro pattern");
  if (!Pat)
    return nullptr;
  validatePattern(*Pat, CC.Diags);

  // Register before parsing the body so self-recursive templates work
  // (e.g. unwind_protect's template re-invokes throw).
  auto *Def = CC.Ast.create<MacroDef>(ReturnType, Name, Pat, nullptr, Loc);
  if (!CC.Macros.define(Def))
    CC.Diags.error(Loc, "redefinition of macro '" + std::string(Name.str()) +
                            "'");
  if (Opts.UseCompiledPatterns)
    CC.CompiledPatterns[Def] =
        std::make_unique<CompiledPattern>(*Pat, CC.Types);

  // Body: meta code with the pattern binders in scope.
  ModeState Saved = saveMode();
  MetaMode = true;
  TemplateDepth = 0;
  CC.Globals.push();
  std::vector<std::pair<Symbol, const MetaType *>> Binders;
  patternBinderTypes(*Pat, CC.Types, Binders);
  for (const auto &[BName, BType] : Binders)
    CC.Globals.declare(BName, BType);
  CompoundStmt *Body = parseCompoundStmt();
  if (Body) {
    Def->Body = Body;
    Checker.checkBody(Body, CC.Globals, ReturnType);
  }
  CC.Globals.pop();
  restoreMode(Saved);
  return Def;
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

Pattern *Parser::parsePattern(TokenKind EndTok) {
  std::vector<PatternElement> Elements;
  while (cur().isNot(EndTok) && cur().isNot(TokenKind::Eof)) {
    PatternElement E;
    E.Loc = curLoc();
    if (cur().is(TokenKind::DollarDollar)) {
      advance();
      E.K = PatternElement::Binder;
      E.Spec = parsePSpec();
      if (!E.Spec)
        return nullptr;
      if (!expect(TokenKind::ColonColon, "between pattern specifier and "
                                         "binder name"))
        return nullptr;
      if (cur().isNot(TokenKind::Identifier)) {
        CC.Diags.error(curLoc(), "expected binder name after '::'");
        return nullptr;
      }
      E.Name = cur().Sym;
      advance();
    } else if (cur().isOneOf(TokenKind::Dollar, TokenKind::Backquote)) {
      CC.Diags.error(curLoc(), "'$' and '`' cannot appear in a macro "
                               "pattern (use '$$' for binders)");
      advance();
      continue;
    } else {
      E.K = PatternElement::Token;
      E.Tok = cur().Kind;
      if (E.Tok == TokenKind::Identifier)
        E.TokSym = cur().Sym;
      advance();
    }
    Elements.push_back(E);
  }
  Pattern *P = CC.Ast.create<Pattern>();
  P->Elements = ArenaRef<PatternElement>::copy(CC.Ast, Elements);
  return P;
}

PSpec *Parser::parsePSpec() {
  PSpec *S = CC.Ast.create<PSpec>();
  S->Loc = curLoc();
  switch (cur().Kind) {
  case TokenKind::Plus:
  case TokenKind::Star: {
    S->K = cur().is(TokenKind::Plus) ? PSpec::Plus : PSpec::Star;
    advance();
    if (consumeIf(TokenKind::Slash)) {
      S->Sep = cur().Kind;
      if (cur().is(TokenKind::Identifier))
        S->SepSym = cur().Sym;
      advance();
    }
    S->Inner = parsePSpec();
    return S->Inner ? S : nullptr;
  }
  case TokenKind::Question: {
    S->K = PSpec::Opt;
    advance();
    // `? pspec` when the next token can begin a pspec; otherwise
    // `? token pspec` with a guard token.
    bool StartsPSpec =
        cur().isOneOf(TokenKind::Plus, TokenKind::Star, TokenKind::Question,
                      TokenKind::Dot) ||
        (cur().is(TokenKind::Identifier) &&
         CC.Types.scalarByName(cur().Sym.str()) != nullptr);
    if (!StartsPSpec) {
      S->Sep = cur().Kind;
      if (cur().is(TokenKind::Identifier))
        S->SepSym = cur().Sym;
      advance();
    }
    S->Inner = parsePSpec();
    return S->Inner ? S : nullptr;
  }
  case TokenKind::Dot: {
    S->K = PSpec::Tuple;
    advance();
    if (!expect(TokenKind::LParen, "to begin a tuple pattern"))
      return nullptr;
    S->Sub = parsePattern(TokenKind::RParen);
    expect(TokenKind::RParen, "at end of tuple pattern");
    return S->Sub ? S : nullptr;
  }
  case TokenKind::Identifier: {
    S->K = PSpec::Scalar;
    S->ScalarType = parseAstSpecifierName();
    return S->ScalarType ? S : nullptr;
  }
  default:
    CC.Diags.error(curLoc(), "expected a pattern specifier (AST type, '+', "
                             "'*', '?', or '.')");
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Backquote templates
//===----------------------------------------------------------------------===//

Expr *Parser::parseBackquoteExpr() {
  SourceLoc Loc = curLoc();
  expect(TokenKind::Backquote, "to begin a code template");

  ModeState Saved = saveMode();
  bool SavedSection = TemplateStmtSection;
  MetaMode = false; // template contents are object-level code
  ++TemplateDepth;
  TemplateStmtSection = false;

  Expr *Result = nullptr;
  switch (cur().Kind) {
  case TokenKind::LParen: {
    advance();
    Expr *E = parseExpression();
    expect(TokenKind::RParen, "at end of expression template");
    Result = CC.Ast.create<BackquoteExpr>(BackquoteForm::Exp, E,
                                          CC.Types.getExp(), Loc);
    break;
  }
  case TokenKind::LBrace: {
    Stmt *S = parseCompoundStmt();
    Result = CC.Ast.create<BackquoteExpr>(BackquoteForm::Stmt, S,
                                          CC.Types.getStmt(), Loc);
    break;
  }
  case TokenKind::LBracket: {
    advance();
    Node *D = parseTemplateDeclForBackquote();
    expect(TokenKind::RBracket, "at end of declaration template");
    Result = CC.Ast.create<BackquoteExpr>(BackquoteForm::Decl, D,
                                          CC.Types.getDecl(), Loc);
    break;
  }
  case TokenKind::LMetaBrace: {
    advance();
    PSpec *Spec = parsePSpec();
    if (!Spec || !expect(TokenKind::ColonColon, "after template pattern "
                                                "specifier")) {
      skipTo({TokenKind::RMetaBrace});
      consumeIf(TokenKind::RMetaBrace);
      restoreMode(Saved);
      TemplateStmtSection = SavedSection;
      return nullptr;
    }
    MatchValue *MV = parseGeneralBackquote(Spec);
    auto *BQ = CC.Ast.create<BackquoteExpr>(
        BackquoteForm::Pattern, nullptr, pspecValueType(Spec, CC.Types), Loc);
    BQ->TemplateMV = MV;
    Result = BQ;
    break;
  }
  default:
    CC.Diags.error(curLoc(), "expected '(', '{', '[', or '{|' after '`'");
    break;
  }

  restoreMode(Saved);
  TemplateStmtSection = SavedSection;
  return Result;
}

/// Parses the contents of a `[ ... ] declaration template: one external
/// declaration or function definition.
Node *Parser::parseTemplateDeclForBackquote() {
  if (cur().is(TokenKind::PlaceholderTok)) {
    const Token &T = cur();
    const MetaType *PT = T.Ph->Type;
    bool IsDecl =
        PT->kind() == MetaTypeKind::Decl ||
        (PT->isList() && PT->listElem()->kind() == MetaTypeKind::Decl);
    if (IsDecl) {
      auto *D = CC.Ast.create<PlaceholderDeclNode>(T.Ph, T.Loc);
      advance();
      return D;
    }
  }
  if (const MacroDef *Def = macroAtCursor()) {
    SourceLoc Loc = curLoc();
    MacroInvocation *Inv = parseMacroInvocation(Def);
    if (!Inv)
      return nullptr;
    return CC.Ast.create<MacroInvocationDecl>(Inv, Loc);
  }
  return parseDeclarationOrFunction(/*TopLevel=*/true);
}

/// Parses the template-specified syntax of a general backquote form
/// according to \p Spec, ending at `|}`.
MatchValue *Parser::parseGeneralBackquote(const PSpec *Spec) {
  // Reuse the pattern matcher with a synthetic one-binder pattern followed
  // by the `|}` terminator, so repetition stop decisions use it.
  std::vector<PatternElement> Elements(2);
  Elements[0].K = PatternElement::Binder;
  Elements[0].Spec = const_cast<PSpec *>(Spec);
  Elements[0].Name = CC.Interner.intern("__template");
  Elements[0].Loc = Spec->Loc;
  Elements[1].K = PatternElement::Token;
  Elements[1].Tok = TokenKind::RMetaBrace;
  Elements[1].Loc = Spec->Loc;
  Pattern P;
  P.Elements = ArenaRef<PatternElement>::copy(CC.Ast, Elements);

  std::vector<MacroArg> Bindings;
  if (!runPatternMatch(P, Bindings)) {
    skipTo({TokenKind::RMetaBrace});
    consumeIf(TokenKind::RMetaBrace);
    return nullptr;
  }
  assert(Bindings.size() == 1 && "general backquote binds exactly one value");
  return Bindings[0].Value;
}

//===----------------------------------------------------------------------===//
// Anonymous functions
//===----------------------------------------------------------------------===//

Expr *Parser::parseLambdaExpr() {
  SourceLoc Loc = curLoc();
  expect(TokenKind::KwLambda, "to begin an anonymous function");
  if (!expect(TokenKind::LParen, "after 'lambda'"))
    return nullptr;

  std::vector<LambdaParam> Params;
  if (cur().isNot(TokenKind::RParen)) {
    for (;;) {
      LambdaParam P;
      P.Loc = curLoc();
      DeclSpecs Specs;
      if (!parseDeclSpecs(Specs, /*AllowStorage=*/false))
        return nullptr;
      Declarator *Dtor = parseDeclarator(/*Abstract=*/false);
      if (!Dtor)
        return nullptr;
      P.Type = MetaTypeChecker::metaTypeFromDecl(Specs, Dtor, CC.Types);
      if (!P.Type) {
        CC.Diags.error(P.Loc, "lambda parameter must have a meta type");
        P.Type = CC.Types.getError();
      }
      P.Name = Dtor->name().Sym;
      Params.push_back(P);
      if (!consumeIf(TokenKind::Comma))
        break;
    }
  }
  expect(TokenKind::RParen, "after lambda parameters");

  // The body expression is parsed with the parameters in scope so that
  // placeholder typing inside nested templates works.
  CC.Globals.push();
  for (const LambdaParam &P : Params)
    if (P.Name.valid())
      CC.Globals.declare(P.Name, P.Type);
  Expr *Body = parseAssignmentExpr();
  CC.Globals.pop();
  if (!Body)
    return nullptr;
  return CC.Ast.create<LambdaExpr>(ArenaRef<LambdaParam>::copy(CC.Ast, Params),
                                   Body, Loc);
}
