//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement parsing, including the Figure-3 behaviour: inside a template,
/// a compound statement's declaration section and statement section are
/// separated by the types of the placeholders encountered, and a
/// declaration-typed placeholder after the first statement is a
/// "Syntactically Illegal Program".
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

using namespace msq;

CompoundStmt *Parser::parseCompoundStmt() {
  SourceLoc Loc = curLoc();
  if (!expect(TokenKind::LBrace, "to begin a block"))
    return nullptr;
  pushTypedefScope();
  if (MetaMode)
    CC.Globals.push();

  std::vector<Decl *> Decls;
  std::vector<Stmt *> Stmts;

  // Declaration section (C89: declarations precede statements).
  for (;;) {
    if (cur().is(TokenKind::PlaceholderTok)) {
      const Token &T = cur();
      const MetaType *PT = T.Ph->Type;
      bool IsDecl =
          PT->kind() == MetaTypeKind::Decl ||
          (PT->isList() && PT->listElem()->kind() == MetaTypeKind::Decl);
      if (IsDecl) {
        Decls.push_back(CC.Ast.create<PlaceholderDeclNode>(T.Ph, T.Loc));
        advance();
        continue;
      }
      // A typespec placeholder begins a declaration (`$type $n = $v;` in
      // the dynamic_bind template); statement/expression placeholders end
      // the declaration section.
      if (PT->kind() != MetaTypeKind::TypeSpec)
        break;
    }
    if (!isDeclarationStart())
      break;
    Decl *D = parseDeclaration();
    if (!D) {
      if (cur().is(TokenKind::RBrace) || cur().is(TokenKind::Eof))
        break;
      continue;
    }
    // In meta code, declarations extend the meta scope so that later
    // placeholders can reference them (e.g. `@id n = gensym();` before a
    // template that uses `$n`).
    if (MetaMode) {
      if (auto *Decl_ = dyn_cast<Declaration>(D)) {
        for (const InitDeclarator &ID : Decl_->Inits) {
          if (ID.Ph || !ID.Dtor || ID.Dtor->isPlaceholder() ||
              ID.Dtor->name().isPlaceholder() || !ID.Dtor->name().Sym.valid())
            continue;
          const MetaType *T = MetaTypeChecker::metaTypeFromDecl(
              Decl_->Specs, ID.Dtor, CC.Types);
          if (T)
            CC.Globals.declare(ID.Dtor->name().Sym, T);
        }
      }
    }
    Decls.push_back(D);
  }

  // Statement section.
  bool SavedSection = TemplateStmtSection;
  if (TemplateDepth > 0)
    TemplateStmtSection = true;
  while (cur().isNot(TokenKind::RBrace) && cur().isNot(TokenKind::Eof)) {
    size_t Before = Pos;
    Stmt *S = parseStatement();
    if (S)
      Stmts.push_back(S);
    if (Pos == Before) {
      CC.Diags.error(curLoc(), std::string("unexpected token '") +
                                   tokenKindSpelling(cur().Kind) +
                                   "' in block");
      advance();
    }
  }
  TemplateStmtSection = SavedSection;

  expect(TokenKind::RBrace, "at end of block");
  if (MetaMode)
    CC.Globals.pop();
  popTypedefScope();
  return CC.Ast.create<CompoundStmt>(ArenaRef<Decl *>::copy(CC.Ast, Decls),
                                     ArenaRef<Stmt *>::copy(CC.Ast, Stmts),
                                     Loc);
}

Stmt *Parser::parseStatement() {
  const Token &T = cur();
  SourceLoc Loc = T.Loc;
  switch (T.Kind) {
  case TokenKind::LBrace:
    return parseCompoundStmt();
  case TokenKind::Semi:
    advance();
    return CC.Ast.create<NullStmt>(Loc);
  case TokenKind::PlaceholderTok: {
    const Placeholder *Ph = T.Ph;
    const MetaType *PT = Ph->Type;
    // `$lab:` — a placeholder label.
    if (PT->kind() == MetaTypeKind::Id && peekRaw(1).is(TokenKind::Colon)) {
      Ident Label(Ph, Loc);
      advance();
      advance(); // ':'
      Stmt *Body = parseStatement();
      if (!Body)
        return nullptr;
      return CC.Ast.create<LabelStmt>(Label, Body, Loc);
    }
    bool IsStmt =
        PT->kind() == MetaTypeKind::Stmt ||
        (PT->isList() && PT->listElem()->kind() == MetaTypeKind::Stmt);
    if (IsStmt) {
      advance();
      consumeIf(TokenKind::Semi); // tolerate `$s;` in templates
      return CC.Ast.create<PlaceholderStmt>(Ph, Loc);
    }
    bool IsDecl =
        PT->kind() == MetaTypeKind::Decl ||
        (PT->isList() && PT->listElem()->kind() == MetaTypeKind::Decl);
    if (IsDecl) {
      // Figure 3, bottom row: a declaration after statements have begun is
      // a syntactically illegal program.
      CC.Diags.error(Loc,
                     "declaration placeholder after the first statement of a "
                     "compound statement: syntactically illegal program");
      advance();
      return nullptr;
    }
    // Expression-typed placeholders form expression statements below.
    break;
  }
  case TokenKind::KwIf: {
    advance();
    expect(TokenKind::LParen, "after 'if'");
    Expr *Cond = parseExpression();
    expect(TokenKind::RParen, "after if condition");
    Stmt *Then = parseStatement();
    Stmt *Else = nullptr;
    if (consumeIf(TokenKind::KwElse))
      Else = parseStatement();
    if (!Cond || !Then)
      return nullptr;
    return CC.Ast.create<IfStmt>(Cond, Then, Else, Loc);
  }
  case TokenKind::KwWhile: {
    advance();
    expect(TokenKind::LParen, "after 'while'");
    Expr *Cond = parseExpression();
    expect(TokenKind::RParen, "after while condition");
    Stmt *Body = parseStatement();
    if (!Cond || !Body)
      return nullptr;
    return CC.Ast.create<WhileStmt>(Cond, Body, Loc);
  }
  case TokenKind::KwDo: {
    advance();
    Stmt *Body = parseStatement();
    expect(TokenKind::KwWhile, "after do-statement body");
    expect(TokenKind::LParen, "after 'while'");
    Expr *Cond = parseExpression();
    expect(TokenKind::RParen, "after do-while condition");
    expect(TokenKind::Semi, "after do-while statement");
    if (!Body || !Cond)
      return nullptr;
    return CC.Ast.create<DoStmt>(Body, Cond, Loc);
  }
  case TokenKind::KwFor: {
    advance();
    expect(TokenKind::LParen, "after 'for'");
    Expr *Init = nullptr, *Cond = nullptr, *Step = nullptr;
    if (cur().isNot(TokenKind::Semi))
      Init = parseExpression();
    expect(TokenKind::Semi, "after for-initializer");
    if (cur().isNot(TokenKind::Semi))
      Cond = parseExpression();
    expect(TokenKind::Semi, "after for-condition");
    if (cur().isNot(TokenKind::RParen))
      Step = parseExpression();
    expect(TokenKind::RParen, "after for-step");
    Stmt *Body = parseStatement();
    if (!Body)
      return nullptr;
    return CC.Ast.create<ForStmt>(Init, Cond, Step, Body, Loc);
  }
  case TokenKind::KwSwitch: {
    advance();
    expect(TokenKind::LParen, "after 'switch'");
    Expr *Cond = parseExpression();
    expect(TokenKind::RParen, "after switch expression");
    Stmt *Body = parseStatement();
    if (!Cond || !Body)
      return nullptr;
    return CC.Ast.create<SwitchStmt>(Cond, Body, Loc);
  }
  case TokenKind::KwCase: {
    advance();
    Expr *Value = parseConditionalExpr();
    expect(TokenKind::Colon, "after case value");
    Stmt *Body = parseStatement();
    if (!Value || !Body)
      return nullptr;
    return CC.Ast.create<CaseStmt>(Value, Body, Loc);
  }
  case TokenKind::KwDefault: {
    advance();
    expect(TokenKind::Colon, "after 'default'");
    Stmt *Body = parseStatement();
    if (!Body)
      return nullptr;
    return CC.Ast.create<DefaultStmt>(Body, Loc);
  }
  case TokenKind::KwBreak:
    advance();
    expect(TokenKind::Semi, "after 'break'");
    return CC.Ast.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    advance();
    expect(TokenKind::Semi, "after 'continue'");
    return CC.Ast.create<ContinueStmt>(Loc);
  case TokenKind::KwReturn: {
    advance();
    Expr *Value = nullptr;
    if (cur().isNot(TokenKind::Semi))
      Value = parseExpression();
    expect(TokenKind::Semi, "after return statement");
    return CC.Ast.create<ReturnStmt>(Value, Loc);
  }
  case TokenKind::KwGoto: {
    advance();
    Ident Label;
    if (cur().is(TokenKind::Identifier)) {
      Label = Ident(cur().Sym, curLoc());
      advance();
    } else if (cur().is(TokenKind::PlaceholderTok) &&
               cur().Ph->Type->kind() == MetaTypeKind::Id) {
      Label = Ident(cur().Ph, curLoc());
      advance();
    } else {
      CC.Diags.error(curLoc(), "expected label after 'goto'");
    }
    expect(TokenKind::Semi, "after goto statement");
    return CC.Ast.create<GotoStmt>(Label, Loc);
  }
  case TokenKind::Identifier: {
    // Label?
    if (peekRaw(1).is(TokenKind::Colon) && !CC.Macros.lookup(T.Sym)) {
      Ident Label(T.Sym, Loc);
      advance();
      advance(); // ':'
      Stmt *Body = parseStatement();
      if (!Body)
        return nullptr;
      return CC.Ast.create<LabelStmt>(Label, Body, Loc);
    }
    // Macro invocation in statement position?
    if (const MacroDef *Def = macroAtCursor()) {
      const MetaType *RT = Def->ReturnType;
      bool FitsStmt =
          RT->kind() == MetaTypeKind::Stmt ||
          (RT->isList() && RT->listElem()->kind() == MetaTypeKind::Stmt);
      if (FitsStmt) {
        MacroInvocation *Inv = parseMacroInvocation(Def);
        if (!Inv)
          return nullptr;
        consumeIf(TokenKind::Semi); // tolerate a trailing `;`
        return CC.Ast.create<MacroInvocationStmt>(Inv, Loc);
      }
      bool FitsExpr = RT->kind() == MetaTypeKind::Exp ||
                      RT->kind() == MetaTypeKind::Num ||
                      RT->kind() == MetaTypeKind::Id;
      if (!FitsExpr) {
        CC.Diags.error(Loc, "macro '" + std::string(Def->Name.str()) +
                                "' returns " + RT->toString() +
                                " and cannot appear where a statement is "
                                "expected");
        parseMacroInvocation(Def); // recover
        consumeIf(TokenKind::Semi);
        return nullptr;
      }
      // Expression macro: falls through to the expression statement path.
    }
    break;
  }
  default:
    break;
  }

  // Expression statement.
  Expr *E = parseExpression();
  if (!E) {
    skipTo({TokenKind::Semi, TokenKind::RBrace});
    consumeIf(TokenKind::Semi);
    return nullptr;
  }
  expect(TokenKind::Semi, "at end of expression statement");
  return CC.Ast.create<ExprStmt>(E, Loc);
}
