//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The S-expression syntax base (C-lisp style): a fully parenthesized
/// surface syntax whose forms map 1:1 onto the same typed AST the C base
/// produces, so one macro library expands programs written in either
/// syntax. The reader is structure-driven — no typedef disambiguation, no
/// precedence, no lookahead — and stamps SourceLocs straight into the
/// S-expression buffer, so diagnostics and provenance backtraces report
/// S-expression line/column positions natively.
///
/// Form inventory (object language only; macro definitions, metadcl, and
/// backquote templates are written in the C base):
///
///   expressions   literals, symbols, (paren e), (init e...), operator
///                 heads ((+ a b), (- a) vs (- a b) by arity, (post++ e),
///                 (comma a b)), (?: c t e), (cast TYPE e), (sizeof e),
///                 (sizeof-type TYPE), (call f a...) or (f a...),
///                 (index b i), (member b f), (arrow b f)
///   statements    (begin decls... stmts...), (nop), (if c t [e]),
///                 (while c b), (do-while b c), (for i c s b) with () for
///                 an absent slot, (switch c b), (case v b), (default b),
///                 (label n b), (goto n), (break), (continue), (return [e])
///   types         builtin words ((unsigned long), int), typedef-name
///                 symbols, (ptr T), (array T [n]), (struct N [(fields
///                 ...)]), (union ...), (enum N [(enums ...)])
///   declarations  (var TYPE NAME [INIT]), (typedef TYPE NAME),
///                 (decl (specs ...) (DTOR [INIT])...), (defun RET NAME
///                 (PARAMS...) BODY...), (defun* SPECS DTOR [(krdecls
///                 ...)] BODY...), general declarators via (dtor DEPTH
///                 BASE SUFFIX...)
///   macros        (name constituent...) — one form per pattern binder;
///                 concrete tokens of the pattern are replaced by the
///                 S-expression structure itself. +/* repetitions take a
///                 plain list, optionals take () for absent.
///
/// The printer is total over the object-language AST; meta-only nodes
/// (templates, placeholders, macro definitions) render through the
/// print-only (c-syntax "...") escape.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SEXPR_SEXPRBASE_H
#define MSQ_SEXPR_SEXPRBASE_H

#include "parser/Parser.h"
#include "printer/CPrinter.h"

namespace msq {

/// Reads buffer \p BufferId of CC.SM as a whole S-expression translation
/// unit. Never returns null; problems go to CC.Diags. Typedef and object
/// variable declarations are registered into CC exactly as the C parser
/// would register them (var_type and cross-unit typedefs behave the same).
TranslationUnit *parseSexprUnit(CompilationContext &CC, uint32_t BufferId);

/// Reads the buffer as exactly one form of the given meta type (Exp, Stmt,
/// Decl, or TypeSpec). Diagnoses and returns null for other kinds.
Node *parseSexprFragment(CompilationContext &CC, uint32_t BufferId,
                         MetaTypeKind Kind);

/// Renders a tree in S-expression surface syntax. Honors
/// PrintOptions::LineProvenance with the same line-stamp semantics as the
/// C printer.
std::string printSexpr(const Node *N, const PrintOptions &Opts = {});

} // namespace msq

#endif // MSQ_SEXPR_SEXPRBASE_H
