//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The S-expression reader: a datum scanner plus a structure-driven
/// lowering into the shared typed AST. Macro invocations are matched
/// positionally against the definition's pattern binders — the
/// S-expression structure replaces the pattern's concrete tokens — and
/// each constituent is built with exactly the MatchValue shapes the C
/// parser's parseConstituent/matchPSpec produce, so the expander,
/// interpreter, and hygiene machinery cannot tell the two bases apart.
///
//===----------------------------------------------------------------------===//

#include "pattern/Pattern.h"
#include "sexpr/SexprBase.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace msq;

namespace {

//===----------------------------------------------------------------------===//
// Datums
//===----------------------------------------------------------------------===//

struct SDatum {
  enum DK : unsigned char { List, Sym, Int, Float, Char, Str } K = List;
  SourceLoc Loc;
  std::string Text;    // Sym spelling
  int64_t IntVal = 0;  // Int / Char value
  double FloatVal = 0; // Float value
  std::string StrVal;  // Str contents (cooked)
  std::vector<SDatum> Elems;

  bool isSym(std::string_view S) const { return K == Sym && Text == S; }
  bool isEmptyList() const { return K == List && Elems.empty(); }
  /// Head symbol of a list form; empty when not a symbol-headed list.
  std::string_view head() const {
    if (K == List && !Elems.empty() && Elems[0].K == Sym)
      return Elems[0].Text;
    return {};
  }
};

//===----------------------------------------------------------------------===//
// Scanner
//===----------------------------------------------------------------------===//

class Scanner {
public:
  Scanner(uint32_t BufferId, std::string_view Src, DiagnosticsEngine &Diags)
      : Buf(BufferId), Src(Src), Diags(Diags) {}

  std::vector<SDatum> scanAll() {
    std::vector<SDatum> Out;
    for (;;) {
      skipTrivia();
      if (Pos >= Src.size())
        break;
      if (Src[Pos] == ')') {
        Diags.error(loc(Pos), "unexpected ')'");
        ++Pos;
        continue;
      }
      SDatum D;
      if (!scanDatum(D))
        break;
      Out.push_back(std::move(D));
    }
    return Out;
  }

private:
  SourceLoc loc(size_t P) { return SourceLoc::get(Buf, uint32_t(P)); }

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == ';') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else if (std::isspace((unsigned char)C)) {
        ++Pos;
      } else {
        break;
      }
    }
  }

  static bool isDelim(char C) {
    return std::isspace((unsigned char)C) || C == '(' || C == ')' ||
           C == '"' || C == ';' || C == '\'';
  }

  /// One (possibly escaped) character of a string/char literal; the same
  /// escape set as the C lexer.
  bool lexEscaped(char &Out) {
    if (Pos >= Src.size())
      return false;
    char C = Src[Pos++];
    if (C != '\\') {
      Out = C;
      return true;
    }
    if (Pos >= Src.size()) {
      Diags.error(loc(Pos - 1), "incomplete escape sequence");
      return false;
    }
    char E = Src[Pos++];
    switch (E) {
    case 'n':
      Out = '\n';
      return true;
    case 't':
      Out = '\t';
      return true;
    case 'r':
      Out = '\r';
      return true;
    case 'b':
      Out = '\b';
      return true;
    case 'f':
      Out = '\f';
      return true;
    case 'v':
      Out = '\v';
      return true;
    case 'a':
      Out = '\a';
      return true;
    case '0':
      Out = '\0';
      return true;
    case '\\':
    case '\'':
    case '"':
      Out = E;
      return true;
    default:
      Diags.error(loc(Pos - 1),
                  std::string("unknown escape sequence '\\") + E + "'");
      Out = E;
      return true;
    }
  }

  bool scanDatum(SDatum &Out) {
    skipTrivia();
    if (Pos >= Src.size())
      return false;
    size_t Start = Pos;
    char C = Src[Pos];
    Out.Loc = loc(Start);
    if (C == '(') {
      ++Pos;
      Out.K = SDatum::List;
      for (;;) {
        skipTrivia();
        if (Pos >= Src.size()) {
          Diags.error(loc(Start), "unterminated list");
          return true;
        }
        if (Src[Pos] == ')') {
          ++Pos;
          return true;
        }
        SDatum Child;
        if (!scanDatum(Child))
          return true;
        Out.Elems.push_back(std::move(Child));
      }
    }
    if (C == ')') {
      Diags.error(loc(Pos), "unexpected ')'");
      ++Pos;
      return scanDatum(Out);
    }
    if (C == '"') {
      ++Pos;
      Out.K = SDatum::Str;
      for (;;) {
        if (Pos >= Src.size() || Src[Pos] == '\n') {
          Diags.error(Out.Loc, "unterminated string literal");
          break;
        }
        if (Src[Pos] == '"') {
          ++Pos;
          break;
        }
        char V;
        if (!lexEscaped(V))
          break;
        Out.StrVal.push_back(V);
      }
      return true;
    }
    if (C == '\'') {
      ++Pos;
      Out.K = SDatum::Char;
      if (Pos >= Src.size()) {
        Diags.error(Out.Loc, "unterminated character literal");
        return true;
      }
      char V = 0;
      lexEscaped(V);
      Out.IntVal = (int64_t)(unsigned char)V;
      if (Pos < Src.size() && Src[Pos] == '\'')
        ++Pos;
      else
        Diags.error(Out.Loc, "unterminated character literal");
      return true;
    }
    // Symbol or number.
    size_t End = Pos;
    while (End < Src.size() && !isDelim(Src[End]))
      ++End;
    std::string_view T = Src.substr(Pos, End - Pos);
    Pos = End;
    if (looksNumeric(T)) {
      std::string Spelled(T);
      size_t SignLen = (T[0] == '+' || T[0] == '-') ? 1 : 0;
      bool Hex = T.size() > SignLen + 1 && T[SignLen] == '0' &&
                 (T[SignLen + 1] == 'x' || T[SignLen + 1] == 'X');
      bool IsFloat =
          !Hex && (T.find('.') != std::string_view::npos ||
                   T.find('e') != std::string_view::npos ||
                   T.find('E') != std::string_view::npos);
      char *EndP = nullptr;
      if (IsFloat) {
        Out.K = SDatum::Float;
        Out.FloatVal = std::strtod(Spelled.c_str(), &EndP);
      } else {
        Out.K = SDatum::Int;
        Out.IntVal = std::strtoll(Spelled.c_str(), &EndP, 0);
      }
      if (!EndP || *EndP != '\0')
        Diags.error(Out.Loc, "invalid numeric literal '" + Spelled + "'");
      return true;
    }
    Out.K = SDatum::Sym;
    Out.Text.assign(T);
    return true;
  }

  static bool looksNumeric(std::string_view T) {
    if (T.empty())
      return false;
    char C0 = T[0];
    if (std::isdigit((unsigned char)C0))
      return true;
    if ((C0 == '-' || C0 == '+') && T.size() > 1) {
      if (std::isdigit((unsigned char)T[1]))
        return true;
      if (T[1] == '.' && T.size() > 2 && std::isdigit((unsigned char)T[2]))
        return true;
    }
    if (C0 == '.' && T.size() > 1 && std::isdigit((unsigned char)T[1]))
      return true;
    return false;
  }

  uint32_t Buf;
  std::string_view Src;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Head classification
//===----------------------------------------------------------------------===//

const std::unordered_map<std::string_view, BinaryOpKind> &binaryOps() {
  static const std::unordered_map<std::string_view, BinaryOpKind> Map = [] {
    std::unordered_map<std::string_view, BinaryOpKind> M;
    for (unsigned K = 0; K <= unsigned(BinaryOpKind::Comma); ++K)
      M.emplace(binaryOpSpelling(BinaryOpKind(K)), BinaryOpKind(K));
    M.emplace("comma", BinaryOpKind::Comma);
    return M;
  }();
  return Map;
}

const std::unordered_map<std::string_view, UnaryOpKind> &unaryOps() {
  static const std::unordered_map<std::string_view, UnaryOpKind> Map = [] {
    std::unordered_map<std::string_view, UnaryOpKind> M;
    // PreInc/PreDec share the "++"/"--" spellings with PostInc/PostDec;
    // insertion order makes the prefix forms win, and the postfix forms
    // get the explicit post++/post-- heads.
    for (unsigned K = 0; K <= unsigned(UnaryOpKind::PostDec); ++K)
      M.emplace(unaryOpSpelling(UnaryOpKind(K)), UnaryOpKind(K));
    M.emplace("post++", UnaryOpKind::PostInc);
    M.emplace("post--", UnaryOpKind::PostDec);
    return M;
  }();
  return Map;
}

bool isStmtHead(std::string_view H) {
  static const std::unordered_set<std::string_view> S = {
      "begin",  "nop",     "if",    "while", "do-while", "for",   "switch",
      "case",   "default", "label", "goto",  "break",    "continue",
      "return"};
  return S.count(H) != 0;
}

bool isDeclHead(std::string_view H) {
  static const std::unordered_set<std::string_view> S = {"var", "typedef",
                                                         "decl"};
  return S.count(H) != 0;
}

bool isBuiltinWord(std::string_view W, unsigned &Flag) {
  static const std::unordered_map<std::string_view, unsigned> Map = {
      {"void", BTF_Void},     {"char", BTF_Char},
      {"short", BTF_Short},   {"int", BTF_Int},
      {"long", BTF_Long},     {"float", BTF_Float},
      {"double", BTF_Double}, {"signed", BTF_Signed},
      {"unsigned", BTF_Unsigned}};
  auto It = Map.find(W);
  if (It == Map.end())
    return false;
  Flag = It->second;
  return true;
}

/// Heads that can never be implicit call callees or type names.
bool isReservedHead(std::string_view H) {
  static const std::unordered_set<std::string_view> S = {
      "paren",   "init",    "cast",   "sizeof",  "sizeof-type", "call",
      "index",   "member",  "arrow",  "c-syntax", "specs",      "dtor",
      "inner",   "fn",      "krfn",   "krnames", "krdecls",     "initdtor",
      "ptr",     "array",   "struct", "union",   "enum",        "fields",
      "enums",   "var",     "typedef", "decl",   "defun",       "defun*",
      "syntax",  "metadcl"};
  if (S.count(H) || isStmtHead(H))
    return true;
  return binaryOps().count(H) != 0 || unaryOps().count(H) != 0;
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

class Lower {
public:
  explicit Lower(CompilationContext &CC) : CC(CC) {}

  Expr *expr(const SDatum &D);
  Stmt *stmt(const SDatum &D);
  Decl *decl(const SDatum &D, bool TopLevel);
  TypeSpecNode *typeSpec(const SDatum &D);
  CompoundStmt *compound(const SDatum *Forms, size_t N, SourceLoc Loc);

private:
  CompilationContext &CC;

  Symbol sym(std::string_view S) { return CC.Interner.intern(S); }
  void err(SourceLoc Loc, std::string Msg) {
    CC.Diags.error(Loc, std::move(Msg));
  }

  bool isDeclForm(const SDatum &D);

  // Types and declarators.
  bool typeName(const SDatum &D, TypeName &Out);
  struct VarType {
    TypeSpecNode *Spec = nullptr;
    unsigned Depth = 0;
    std::vector<DeclSuffix> Arrays;
  };
  bool varType(const SDatum &D, VarType &Out);
  TypeSpecNode *tagType(const SDatum &D);
  bool declSpecs(const SDatum &D, DeclSpecs &Specs, unsigned &FoldDepth,
                 bool AllowStorage);
  Declarator *declarator(const SDatum &D);
  bool paramList(const SDatum &D, DeclSuffix &Out);
  ParamDecl *param(const SDatum &D);
  bool enumeratorFromForm(const SDatum &D, Enumerator &Out);
  void registerDecl(Declaration *D);

  // Macro invocations.
  MacroInvocation *invocation(const MacroDef *Def, const SDatum *Ops,
                              size_t N, SourceLoc Loc);
  MatchValue *mvFromSpec(const PSpec *Spec, const SDatum &D);
  MatchValue *scalarMV(const MetaType *Scalar, const SDatum &D);
  Expr *exprInvocation(const MacroDef *Def, const SDatum *Ops, size_t N,
                       SourceLoc Loc);
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Lower::expr(const SDatum &D) {
  switch (D.K) {
  case SDatum::Int:
    return CC.Ast.create<IntLiteralExpr>(D.IntVal, D.Loc);
  case SDatum::Float:
    return CC.Ast.create<FloatLiteralExpr>(D.FloatVal, D.Loc);
  case SDatum::Char:
    return CC.Ast.create<CharLiteralExpr>(D.IntVal, D.Loc);
  case SDatum::Str:
    return CC.Ast.create<StringLiteralExpr>(sym(D.StrVal), D.Loc);
  case SDatum::Sym: {
    // Macro names act as keywords, exactly as in the C base: a bare symbol
    // naming a macro is an invocation with zero constituents.
    if (const MacroDef *Def = CC.Macros.lookup(sym(D.Text)))
      return exprInvocation(Def, nullptr, 0, D.Loc);
    return CC.Ast.create<IdentExpr>(Ident(sym(D.Text), D.Loc), D.Loc);
  }
  case SDatum::List:
    break;
  }

  if (D.Elems.empty()) {
    err(D.Loc, "expected an expression, found '()'");
    return nullptr;
  }
  if (D.Elems[0].K != SDatum::Sym) {
    err(D.Elems[0].Loc,
        "expected an operator, form head, or macro name to begin a form; "
        "use (call f ...) for a computed callee");
    return nullptr;
  }
  std::string_view H = D.Elems[0].Text;
  const SDatum *A = D.Elems.data() + 1;
  size_t N = D.Elems.size() - 1;
  auto arity = [&](size_t Want) {
    if (N == Want)
      return true;
    err(D.Loc, "form '(" + std::string(H) + " ...)' expects " +
                   std::to_string(Want) + " operand(s), got " +
                   std::to_string(N));
    return false;
  };

  if (H == "paren") {
    if (!arity(1))
      return nullptr;
    Expr *Inner = expr(A[0]);
    return Inner ? CC.Ast.create<ParenExpr>(Inner, D.Loc) : nullptr;
  }
  if (H == "init") {
    std::vector<Expr *> Elems;
    for (size_t I = 0; I != N; ++I) {
      Expr *E = expr(A[I]);
      if (!E)
        return nullptr;
      Elems.push_back(E);
    }
    return CC.Ast.create<InitListExpr>(ArenaRef<Expr *>::copy(CC.Ast, Elems),
                                       D.Loc);
  }
  if (H == "?:") {
    if (!arity(3))
      return nullptr;
    Expr *C = expr(A[0]), *T = expr(A[1]), *E = expr(A[2]);
    if (!C || !T || !E)
      return nullptr;
    return CC.Ast.create<ConditionalExpr>(C, T, E, D.Loc);
  }
  if (H == "cast") {
    if (!arity(2))
      return nullptr;
    TypeName TN;
    if (!typeName(A[0], TN))
      return nullptr;
    Expr *Op = expr(A[1]);
    return Op ? CC.Ast.create<CastExpr>(TN, Op, D.Loc) : nullptr;
  }
  if (H == "sizeof") {
    if (!arity(1))
      return nullptr;
    Expr *Op = expr(A[0]);
    return Op ? CC.Ast.create<SizeofExpr>(Op, D.Loc) : nullptr;
  }
  if (H == "sizeof-type") {
    if (!arity(1))
      return nullptr;
    TypeName TN;
    if (!typeName(A[0], TN))
      return nullptr;
    return CC.Ast.create<SizeofExpr>(TN, D.Loc);
  }
  if (H == "call" || (!isReservedHead(H) && !CC.Macros.lookup(sym(H)))) {
    Expr *Callee = nullptr;
    size_t First = 0;
    if (H == "call") {
      if (N < 1) {
        err(D.Loc, "form '(call ...)' expects at least a callee");
        return nullptr;
      }
      Callee = expr(A[0]);
      First = 1;
    } else {
      Callee =
          CC.Ast.create<IdentExpr>(Ident(sym(H), D.Elems[0].Loc), D.Elems[0].Loc);
    }
    if (!Callee)
      return nullptr;
    std::vector<Expr *> Args;
    for (size_t I = First; I != N; ++I) {
      Expr *E = expr(A[I]);
      if (!E)
        return nullptr;
      Args.push_back(E);
    }
    return CC.Ast.create<CallExpr>(Callee,
                                   ArenaRef<Expr *>::copy(CC.Ast, Args), D.Loc);
  }
  if (H == "index") {
    if (!arity(2))
      return nullptr;
    Expr *B = expr(A[0]), *I = expr(A[1]);
    if (!B || !I)
      return nullptr;
    return CC.Ast.create<IndexExpr>(B, I, D.Loc);
  }
  if (H == "member" || H == "arrow") {
    if (!arity(2))
      return nullptr;
    Expr *B = expr(A[0]);
    if (!B)
      return nullptr;
    if (A[1].K != SDatum::Sym) {
      err(A[1].Loc, "expected a member name");
      return nullptr;
    }
    return CC.Ast.create<MemberExpr>(B, Ident(sym(A[1].Text), A[1].Loc),
                                     H == "arrow", D.Loc);
  }
  if (H == "c-syntax") {
    err(D.Loc, "the (c-syntax ...) escape is print-only and cannot be read "
               "back");
    return nullptr;
  }

  bool HasUnary = unaryOps().count(H) != 0;
  bool HasBinary = binaryOps().count(H) != 0;
  if (HasUnary || HasBinary) {
    if (N == 1 && HasUnary) {
      Expr *Op = expr(A[0]);
      return Op ? CC.Ast.create<UnaryExpr>(unaryOps().at(H), Op, D.Loc)
                : nullptr;
    }
    if (N == 2 && HasBinary) {
      Expr *L = expr(A[0]), *R = expr(A[1]);
      if (!L || !R)
        return nullptr;
      return CC.Ast.create<BinaryExpr>(binaryOps().at(H), L, R, D.Loc);
    }
    err(D.Loc, "operator '" + std::string(H) + "' cannot take " +
                   std::to_string(N) + " operand(s)");
    return nullptr;
  }

  if (const MacroDef *Def = CC.Macros.lookup(sym(H)))
    return exprInvocation(Def, A, N, D.Loc);

  if (isStmtHead(H)) {
    err(D.Loc, "'" + std::string(H) +
                   "' begins a statement and cannot appear in an expression");
    return nullptr;
  }
  err(D.Loc, "'" + std::string(H) + "' does not begin an expression form");
  return nullptr;
}

Expr *Lower::exprInvocation(const MacroDef *Def, const SDatum *Ops, size_t N,
                            SourceLoc Loc) {
  const MetaType *RT = Def->ReturnType;
  bool FitsExpr = RT->kind() == MetaTypeKind::Exp ||
                  RT->kind() == MetaTypeKind::Num ||
                  RT->kind() == MetaTypeKind::Id;
  if (!FitsExpr) {
    err(Loc, "macro '" + std::string(Def->Name.str()) + "' returns " +
                 RT->toString() + " and cannot appear in an expression");
    invocation(Def, Ops, N, Loc); // recover: still check the constituents
    return CC.Ast.create<IntLiteralExpr>(0, Loc);
  }
  MacroInvocation *Inv = invocation(Def, Ops, N, Loc);
  if (!Inv)
    return nullptr;
  return CC.Ast.create<MacroInvocationExpr>(Inv, Loc);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Stmt *Lower::stmt(const SDatum &D) {
  if (D.K != SDatum::List) {
    Expr *E = expr(D);
    return E ? CC.Ast.create<ExprStmt>(E, D.Loc) : nullptr;
  }
  if (D.Elems.empty()) {
    err(D.Loc, "expected a statement, found '()'");
    return nullptr;
  }
  if (D.Elems[0].K != SDatum::Sym) {
    Expr *E = expr(D);
    return E ? CC.Ast.create<ExprStmt>(E, D.Loc) : nullptr;
  }
  std::string_view H = D.Elems[0].Text;
  const SDatum *A = D.Elems.data() + 1;
  size_t N = D.Elems.size() - 1;
  auto arity = [&](size_t Lo, size_t Hi) {
    if (N >= Lo && N <= Hi)
      return true;
    err(D.Loc, "malformed '(" + std::string(H) + " ...)' statement");
    return false;
  };

  if (H == "begin")
    return compound(A, N, D.Loc);
  if (H == "nop") {
    if (!arity(0, 0))
      return nullptr;
    return CC.Ast.create<NullStmt>(D.Loc);
  }
  if (H == "if") {
    if (!arity(2, 3))
      return nullptr;
    Expr *C = expr(A[0]);
    Stmt *T = stmt(A[1]);
    Stmt *E = N == 3 ? stmt(A[2]) : nullptr;
    if (!C || !T || (N == 3 && !E))
      return nullptr;
    return CC.Ast.create<IfStmt>(C, T, E, D.Loc);
  }
  if (H == "while") {
    if (!arity(2, 2))
      return nullptr;
    Expr *C = expr(A[0]);
    Stmt *B = stmt(A[1]);
    if (!C || !B)
      return nullptr;
    return CC.Ast.create<WhileStmt>(C, B, D.Loc);
  }
  if (H == "do-while") {
    if (!arity(2, 2))
      return nullptr;
    Stmt *B = stmt(A[0]);
    Expr *C = expr(A[1]);
    if (!B || !C)
      return nullptr;
    return CC.Ast.create<DoStmt>(B, C, D.Loc);
  }
  if (H == "for") {
    if (!arity(4, 4))
      return nullptr;
    Expr *Init = A[0].isEmptyList() ? nullptr : expr(A[0]);
    Expr *Cond = A[1].isEmptyList() ? nullptr : expr(A[1]);
    Expr *Step = A[2].isEmptyList() ? nullptr : expr(A[2]);
    Stmt *B = stmt(A[3]);
    if (!B)
      return nullptr;
    return CC.Ast.create<ForStmt>(Init, Cond, Step, B, D.Loc);
  }
  if (H == "switch") {
    if (!arity(2, 2))
      return nullptr;
    Expr *C = expr(A[0]);
    Stmt *B = stmt(A[1]);
    if (!C || !B)
      return nullptr;
    return CC.Ast.create<SwitchStmt>(C, B, D.Loc);
  }
  if (H == "case") {
    if (!arity(2, 2))
      return nullptr;
    Expr *V = expr(A[0]);
    Stmt *B = stmt(A[1]);
    if (!V || !B)
      return nullptr;
    return CC.Ast.create<CaseStmt>(V, B, D.Loc);
  }
  if (H == "default") {
    if (!arity(1, 1))
      return nullptr;
    Stmt *B = stmt(A[0]);
    return B ? CC.Ast.create<DefaultStmt>(B, D.Loc) : nullptr;
  }
  if (H == "label") {
    if (!arity(2, 2))
      return nullptr;
    if (A[0].K != SDatum::Sym) {
      err(A[0].Loc, "expected a label name");
      return nullptr;
    }
    Stmt *B = stmt(A[1]);
    if (!B)
      return nullptr;
    return CC.Ast.create<LabelStmt>(Ident(sym(A[0].Text), A[0].Loc), B, D.Loc);
  }
  if (H == "goto") {
    if (!arity(1, 1))
      return nullptr;
    if (A[0].K != SDatum::Sym) {
      err(A[0].Loc, "expected a label name");
      return nullptr;
    }
    return CC.Ast.create<GotoStmt>(Ident(sym(A[0].Text), A[0].Loc), D.Loc);
  }
  if (H == "break") {
    if (!arity(0, 0))
      return nullptr;
    return CC.Ast.create<BreakStmt>(D.Loc);
  }
  if (H == "continue") {
    if (!arity(0, 0))
      return nullptr;
    return CC.Ast.create<ContinueStmt>(D.Loc);
  }
  if (H == "return") {
    if (!arity(0, 1))
      return nullptr;
    Expr *V = N == 1 ? expr(A[0]) : nullptr;
    if (N == 1 && !V)
      return nullptr;
    return CC.Ast.create<ReturnStmt>(V, D.Loc);
  }
  if (H == "defun" || H == "defun*") {
    err(D.Loc, "function definitions are only allowed at the top level");
    return nullptr;
  }
  if (isDeclHead(H)) {
    err(D.Loc,
        "declarations must precede statements in a (begin ...) block");
    return nullptr;
  }

  if (const MacroDef *Def = CC.Macros.lookup(sym(H));
      Def && !isReservedHead(H)) {
    const MetaType *RT = Def->ReturnType;
    bool FitsStmt =
        RT->kind() == MetaTypeKind::Stmt ||
        (RT->isList() && RT->listElem()->kind() == MetaTypeKind::Stmt);
    if (FitsStmt) {
      MacroInvocation *Inv = invocation(Def, A, N, D.Loc);
      if (!Inv)
        return nullptr;
      return CC.Ast.create<MacroInvocationStmt>(Inv, D.Loc);
    }
    bool FitsExpr = RT->kind() == MetaTypeKind::Exp ||
                    RT->kind() == MetaTypeKind::Num ||
                    RT->kind() == MetaTypeKind::Id;
    if (!FitsExpr) {
      err(D.Loc, "macro '" + std::string(Def->Name.str()) + "' returns " +
                     RT->toString() +
                     " and cannot appear where a statement is expected");
      invocation(Def, A, N, D.Loc); // recover
      return nullptr;
    }
    // Expression macro: falls through to the expression statement path.
  }

  Expr *E = expr(D);
  return E ? CC.Ast.create<ExprStmt>(E, D.Loc) : nullptr;
}

CompoundStmt *Lower::compound(const SDatum *Forms, size_t N, SourceLoc Loc) {
  std::vector<Decl *> Decls;
  std::vector<Stmt *> Stmts;
  bool InStmts = false;
  for (size_t I = 0; I != N; ++I) {
    const SDatum &F = Forms[I];
    if (isDeclForm(F)) {
      if (InStmts) {
        err(F.Loc,
            "declarations must precede statements in a (begin ...) block");
        continue;
      }
      if (Decl *D = decl(F, /*TopLevel=*/false))
        Decls.push_back(D);
      continue;
    }
    InStmts = true;
    if (Stmt *S = stmt(F))
      Stmts.push_back(S);
  }
  return CC.Ast.create<CompoundStmt>(ArenaRef<Decl *>::copy(CC.Ast, Decls),
                                     ArenaRef<Stmt *>::copy(CC.Ast, Stmts),
                                     Loc);
}

bool Lower::isDeclForm(const SDatum &D) {
  std::string_view H = D.head();
  if (H.empty())
    return false;
  if (isDeclHead(H))
    return true;
  if (isReservedHead(H))
    return false;
  if (const MacroDef *Def = CC.Macros.lookup(sym(H))) {
    const MetaType *RT = Def->ReturnType;
    return RT->kind() == MetaTypeKind::Decl ||
           (RT->isList() && RT->listElem()->kind() == MetaTypeKind::Decl);
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Types and declarators
//===----------------------------------------------------------------------===//

TypeSpecNode *Lower::typeSpec(const SDatum &D) {
  if (D.K == SDatum::Sym) {
    unsigned Flag = 0;
    if (isBuiltinWord(D.Text, Flag))
      return CC.Ast.create<BuiltinTypeSpec>(Flag, D.Loc);
    if (isReservedHead(D.Text)) {
      err(D.Loc, "'" + D.Text + "' is not a type name");
      return nullptr;
    }
    return CC.Ast.create<TypedefNameSpec>(sym(D.Text), D.Loc);
  }
  if (D.K != SDatum::List || D.Elems.empty() ||
      D.Elems[0].K != SDatum::Sym) {
    err(D.Loc, "expected a type specifier");
    return nullptr;
  }
  std::string_view H = D.Elems[0].Text;
  unsigned Flag = 0;
  if (isBuiltinWord(H, Flag)) {
    unsigned Flags = 0;
    for (size_t I = 0; I != D.Elems.size(); ++I) {
      const SDatum &W = D.Elems[I];
      unsigned F = 0;
      if (W.K != SDatum::Sym || !isBuiltinWord(W.Text, F)) {
        err(W.Loc, "expected a builtin type word");
        return nullptr;
      }
      if (F == BTF_Long && (Flags & BTF_Long))
        Flags |= BTF_LongLong;
      else
        Flags |= F;
    }
    return CC.Ast.create<BuiltinTypeSpec>(Flags, D.Loc);
  }
  if (H == "struct" || H == "union" || H == "enum")
    return tagType(D);
  if (H == "ptr" || H == "array") {
    err(D.Loc, "pointer and array types are not allowed here; use a "
               "declarator form");
    return nullptr;
  }
  err(D.Loc, "expected a type specifier form");
  return nullptr;
}

TypeSpecNode *Lower::tagType(const SDatum &D) {
  std::string_view H = D.Elems[0].Text;
  TagKind Tag = H == "struct"  ? TagKind::Struct
                : H == "union" ? TagKind::Union
                               : TagKind::Enum;
  if (D.Elems.size() < 2 || D.Elems.size() > 3) {
    err(D.Loc, "malformed '(" + std::string(H) + " ...)' type");
    return nullptr;
  }
  Ident TagName;
  const SDatum &NameD = D.Elems[1];
  if (NameD.K == SDatum::Sym)
    TagName = Ident(sym(NameD.Text), NameD.Loc);
  else if (!NameD.isEmptyList()) {
    err(NameD.Loc, "expected a tag name or '()' for an anonymous tag");
    return nullptr;
  }
  bool HasBody = D.Elems.size() == 3;
  std::vector<Declaration *> Members;
  std::vector<Enumerator> Enums;
  if (HasBody) {
    const SDatum &Body = D.Elems[2];
    if (Tag == TagKind::Enum) {
      if (Body.head() != "enums") {
        err(Body.Loc, "expected an (enums ...) body");
        return nullptr;
      }
      for (size_t I = 1; I != Body.Elems.size(); ++I) {
        Enumerator E;
        if (enumeratorFromForm(Body.Elems[I], E))
          Enums.push_back(E);
      }
    } else {
      if (Body.head() != "fields") {
        err(Body.Loc, "expected a (fields ...) body");
        return nullptr;
      }
      for (size_t I = 1; I != Body.Elems.size(); ++I) {
        Decl *M = decl(Body.Elems[I], /*TopLevel=*/false);
        if (!M)
          continue;
        auto *MD = dyn_cast<Declaration>(M);
        if (!MD || MD->Specs.Storage != StorageClass::None) {
          err(Body.Elems[I].Loc, "expected a member declaration");
          continue;
        }
        Members.push_back(MD);
      }
    }
  }
  return CC.Ast.create<TagTypeSpec>(
      Tag, TagName, HasBody, ArenaRef<Declaration *>::copy(CC.Ast, Members),
      ArenaRef<Enumerator>::copy(CC.Ast, Enums), D.Loc);
}

bool Lower::enumeratorFromForm(const SDatum &D, Enumerator &Out) {
  if (D.K == SDatum::Sym) {
    Out.Name = Ident(sym(D.Text), D.Loc);
    Out.Loc = D.Loc;
    return true;
  }
  if (D.K == SDatum::List && !D.Elems.empty() &&
      D.Elems[0].K == SDatum::Sym && D.Elems.size() <= 2) {
    Out.Name = Ident(sym(D.Elems[0].Text), D.Elems[0].Loc);
    Out.Loc = D.Loc;
    if (D.Elems.size() == 2) {
      Out.Value = expr(D.Elems[1]);
      if (!Out.Value)
        return false;
    }
    return true;
  }
  err(D.Loc, "expected an enumerator: NAME or (NAME VALUE)");
  return false;
}

bool Lower::typeName(const SDatum &D, TypeName &Out) {
  const SDatum *Cur = &D;
  Out.PointerDepth = 0;
  while (Cur->head() == "ptr") {
    if (Cur->Elems.size() != 2) {
      err(Cur->Loc, "form '(ptr T)' expects exactly one operand");
      return false;
    }
    ++Out.PointerDepth;
    Cur = &Cur->Elems[1];
  }
  if (Cur->head() == "array") {
    err(Cur->Loc, "array types require a declarator and are not allowed in "
                  "this position");
    return false;
  }
  Out.Spec = typeSpec(*Cur);
  return Out.Spec != nullptr;
}

bool Lower::varType(const SDatum &D, VarType &Out) {
  const SDatum *Cur = &D;
  // Outermost (array ...) wrappers become the first declarator suffixes,
  // mirroring C's left-to-right suffix order: (array (array int 4) 3) is
  // `int x[3][4]`.
  while (Cur->head() == "array") {
    if (Cur->Elems.size() < 2 || Cur->Elems.size() > 3) {
      err(Cur->Loc, "form '(array T [SIZE])' expects one or two operands");
      return false;
    }
    DeclSuffix S;
    S.K = DeclSuffix::Array;
    if (Cur->Elems.size() == 3) {
      S.ArraySize = expr(Cur->Elems[2]);
      if (!S.ArraySize)
        return false;
    }
    Out.Arrays.push_back(S);
    Cur = &Cur->Elems[1];
  }
  while (Cur->head() == "ptr") {
    if (Cur->Elems.size() != 2) {
      err(Cur->Loc, "form '(ptr T)' expects exactly one operand");
      return false;
    }
    ++Out.Depth;
    Cur = &Cur->Elems[1];
  }
  if (Cur->head() == "array") {
    err(Cur->Loc, "a pointer to an array requires an explicit (dtor ...) "
                  "declarator with an (inner ...) base");
    return false;
  }
  Out.Spec = typeSpec(*Cur);
  return Out.Spec != nullptr;
}

bool Lower::declSpecs(const SDatum &D, DeclSpecs &Specs, unsigned &FoldDepth,
                      bool AllowStorage) {
  Specs.Loc = D.Loc;
  FoldDepth = 0;
  if (D.head() == "specs") {
    if (D.Elems.size() < 2) {
      err(D.Loc, "form '(specs ...)' expects at least a type");
      return false;
    }
    for (size_t I = 1; I + 1 < D.Elems.size(); ++I) {
      const SDatum &W = D.Elems[I];
      if (W.K != SDatum::Sym) {
        err(W.Loc, "expected a storage class or qualifier word");
        return false;
      }
      StorageClass SC = StorageClass::None;
      if (W.Text == "auto")
        SC = StorageClass::Auto;
      else if (W.Text == "register")
        SC = StorageClass::Register;
      else if (W.Text == "static")
        SC = StorageClass::Static;
      else if (W.Text == "extern")
        SC = StorageClass::Extern;
      else if (W.Text == "typedef")
        SC = StorageClass::Typedef;
      else if (W.Text == "metadcl") {
        err(W.Loc, "meta declarations are written in the C base");
        return false;
      } else if (W.Text == "const") {
        Specs.Const = true;
        continue;
      } else if (W.Text == "volatile") {
        Specs.Volatile = true;
        continue;
      } else {
        err(W.Loc, "unknown specifier word '" + W.Text + "'");
        return false;
      }
      if (!AllowStorage) {
        err(W.Loc, "a storage class is not allowed here");
        return false;
      }
      if (Specs.Storage != StorageClass::None) {
        err(W.Loc, "multiple storage classes");
        return false;
      }
      Specs.Storage = SC;
    }
    Specs.Type = typeSpec(D.Elems.back());
    return Specs.Type != nullptr;
  }
  TypeName TN;
  if (!typeName(D, TN))
    return false;
  Specs.Type = TN.Spec;
  FoldDepth = TN.PointerDepth;
  return true;
}

Declarator *Lower::declarator(const SDatum &D) {
  if (D.K == SDatum::Sym) {
    Declarator *Dt = CC.Ast.create<Declarator>();
    Dt->Name = Ident(sym(D.Text), D.Loc);
    Dt->Loc = D.Loc;
    return Dt;
  }
  if (D.head() != "dtor" || D.Elems.size() < 3) {
    err(D.Loc, "expected a declarator: NAME or (dtor DEPTH BASE SUFFIX...)");
    return nullptr;
  }
  if (D.Elems[1].K != SDatum::Int || D.Elems[1].IntVal < 0) {
    err(D.Elems[1].Loc, "expected a non-negative pointer depth");
    return nullptr;
  }
  Declarator *Dt = CC.Ast.create<Declarator>();
  Dt->Loc = D.Loc;
  Dt->PointerDepth = unsigned(D.Elems[1].IntVal);
  const SDatum &Base = D.Elems[2];
  if (Base.K == SDatum::Sym) {
    Dt->Name = Ident(sym(Base.Text), Base.Loc);
  } else if (Base.head() == "inner") {
    if (Base.Elems.size() != 2) {
      err(Base.Loc, "form '(inner DTOR)' expects exactly one operand");
      return nullptr;
    }
    Dt->Inner = declarator(Base.Elems[1]);
    if (!Dt->Inner)
      return nullptr;
  } else if (!Base.isEmptyList()) {
    err(Base.Loc,
        "expected a declarator base: NAME, (inner DTOR), or '()'");
    return nullptr;
  }
  std::vector<DeclSuffix> Suffixes;
  for (size_t I = 3; I != D.Elems.size(); ++I) {
    const SDatum &SF = D.Elems[I];
    std::string_view SH = SF.head();
    DeclSuffix S;
    if (SH == "array") {
      S.K = DeclSuffix::Array;
      if (SF.Elems.size() > 2) {
        err(SF.Loc, "form '(array [SIZE])' expects at most one operand");
        return nullptr;
      }
      if (SF.Elems.size() == 2) {
        S.ArraySize = expr(SF.Elems[1]);
        if (!S.ArraySize)
          return nullptr;
      }
    } else if (SH == "fn") {
      if (SF.Elems.size() != 2) {
        err(SF.Loc, "form '(fn (PARAM...))' expects exactly one operand");
        return nullptr;
      }
      if (!paramList(SF.Elems[1], S))
        return nullptr;
    } else if (SH == "krfn") {
      S.K = DeclSuffix::Function;
      std::vector<Ident> Names;
      for (size_t J = 1; J != SF.Elems.size(); ++J) {
        if (SF.Elems[J].K != SDatum::Sym) {
          err(SF.Elems[J].Loc, "expected a K&R parameter name");
          return nullptr;
        }
        Names.emplace_back(sym(SF.Elems[J].Text), SF.Elems[J].Loc);
      }
      S.KRNames = ArenaRef<Ident>::copy(CC.Ast, Names);
    } else {
      err(SF.Loc, "expected a declarator suffix: (array [SIZE]), "
                  "(fn (PARAM...)), or (krfn NAME...)");
      return nullptr;
    }
    Suffixes.push_back(S);
  }
  Dt->Suffixes = ArenaRef<DeclSuffix>::copy(CC.Ast, Suffixes);
  return Dt;
}

bool Lower::paramList(const SDatum &D, DeclSuffix &Out) {
  if (D.K != SDatum::List) {
    err(D.Loc, "expected a parameter list");
    return false;
  }
  Out.K = DeclSuffix::Function;
  std::vector<ParamDecl *> Params;
  for (size_t I = 0; I != D.Elems.size(); ++I) {
    const SDatum &P = D.Elems[I];
    if (P.isSym("...")) {
      if (I + 1 != D.Elems.size()) {
        err(P.Loc, "'...' must be the last parameter");
        return false;
      }
      Out.Variadic = true;
      break;
    }
    ParamDecl *PD = param(P);
    if (!PD)
      return false;
    Params.push_back(PD);
  }
  Out.Params = ArenaRef<ParamDecl *>::copy(CC.Ast, Params);
  return true;
}

ParamDecl *Lower::param(const SDatum &D) {
  if (D.K != SDatum::List || D.Elems.empty() || D.Elems.size() > 2) {
    err(D.Loc, "expected a parameter: (TYPE [NAME-or-DTOR])");
    return nullptr;
  }
  ParamDecl *PD = CC.Ast.create<ParamDecl>();
  PD->Loc = D.Loc;
  unsigned Fold = 0;
  if (!declSpecs(D.Elems[0], PD->Specs, Fold, /*AllowStorage=*/false))
    return nullptr;
  if (D.Elems.size() == 2) {
    PD->Dtor = declarator(D.Elems[1]);
    if (!PD->Dtor)
      return nullptr;
    PD->Dtor->PointerDepth += Fold;
  } else if (Fold > 0) {
    PD->Dtor = CC.Ast.create<Declarator>();
    PD->Dtor->PointerDepth = Fold;
    PD->Dtor->Loc = D.Loc;
  }
  return PD;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Lower::registerDecl(Declaration *D) {
  // Mirrors Parser::registerDeclaration for object-level declarations so
  // typedef visibility and the var_type semantic query behave identically
  // across bases.
  for (const InitDeclarator &ID : D->Inits) {
    if (ID.Ph || !ID.Dtor || ID.Dtor->isPlaceholder() ||
        ID.Dtor->name().isPlaceholder() || !ID.Dtor->name().Sym.valid())
      continue;
    if (D->Specs.Storage == StorageClass::Typedef) {
      CC.TypedefScopes.back().insert(ID.Dtor->name().Sym);
      continue;
    }
    if (D->Specs.Type && !isa<MetaAstTypeSpec>(D->Specs.Type) &&
        !ID.Dtor->isFunction())
      CC.ObjectVarTypes[ID.Dtor->name().Sym] = D->Specs.Type;
  }
}

Decl *Lower::decl(const SDatum &D, bool TopLevel) {
  if (D.K != SDatum::List || D.Elems.empty() ||
      D.Elems[0].K != SDatum::Sym) {
    err(D.Loc, "expected a declaration form");
    return nullptr;
  }
  std::string_view H = D.Elems[0].Text;
  const SDatum *A = D.Elems.data() + 1;
  size_t N = D.Elems.size() - 1;

  if (H == "var" || H == "typedef") {
    bool IsTypedef = H == "typedef";
    size_t Max = IsTypedef ? 2 : 3;
    if (N < 2 || N > Max) {
      err(D.Loc, IsTypedef
                     ? "form '(typedef TYPE NAME)' expects two operands"
                     : "form '(var TYPE NAME [INIT])' expects two or three "
                       "operands");
      return nullptr;
    }
    VarType VT;
    if (!varType(A[0], VT))
      return nullptr;
    if (A[1].K != SDatum::Sym) {
      err(A[1].Loc, "expected a name");
      return nullptr;
    }
    Declarator *Dt = CC.Ast.create<Declarator>();
    Dt->Name = Ident(sym(A[1].Text), A[1].Loc);
    Dt->PointerDepth = VT.Depth;
    Dt->Suffixes = ArenaRef<DeclSuffix>::copy(CC.Ast, VT.Arrays);
    Dt->Loc = A[1].Loc;
    InitDeclarator ID;
    ID.Dtor = Dt;
    ID.Loc = D.Loc;
    if (!IsTypedef && N == 3) {
      ID.Init = expr(A[2]);
      if (!ID.Init)
        return nullptr;
    }
    DeclSpecs Specs;
    Specs.Type = VT.Spec;
    Specs.Loc = A[0].Loc;
    if (IsTypedef)
      Specs.Storage = StorageClass::Typedef;
    auto *Decl = CC.Ast.create<Declaration>(
        Specs, ArenaRef<InitDeclarator>::copy(CC.Ast, {ID}), nullptr, D.Loc);
    registerDecl(Decl);
    return Decl;
  }

  if (H == "decl") {
    if (N < 2) {
      err(D.Loc, "form '(decl SPECS ITEM...)' expects specifiers and at "
                 "least one declarator");
      return nullptr;
    }
    DeclSpecs Specs;
    unsigned Fold = 0;
    if (!declSpecs(A[0], Specs, Fold, /*AllowStorage=*/true))
      return nullptr;
    if (Fold > 0) {
      err(A[0].Loc, "pointers belong on the individual (dtor ...) forms "
                    "inside (decl ...)");
      return nullptr;
    }
    std::vector<InitDeclarator> Inits;
    for (size_t I = 1; I != N; ++I) {
      const SDatum &It = A[I];
      if (It.K != SDatum::List || It.Elems.empty() || It.Elems.size() > 2) {
        err(It.Loc, "expected a declarator item: (DTOR [INIT])");
        return nullptr;
      }
      InitDeclarator ID;
      ID.Loc = It.Loc;
      ID.Dtor = declarator(It.Elems[0]);
      if (!ID.Dtor)
        return nullptr;
      if (It.Elems.size() == 2) {
        ID.Init = expr(It.Elems[1]);
        if (!ID.Init)
          return nullptr;
      }
      Inits.push_back(ID);
    }
    auto *Decl = CC.Ast.create<Declaration>(
        Specs, ArenaRef<InitDeclarator>::copy(CC.Ast, Inits), nullptr, D.Loc);
    registerDecl(Decl);
    return Decl;
  }

  if (H == "defun" || H == "defun*") {
    if (!TopLevel) {
      err(D.Loc, "function definitions are only allowed at the top level");
      return nullptr;
    }
    if (H == "defun") {
      if (N < 3) {
        err(D.Loc, "form '(defun RET NAME (PARAM...) BODY...)' expects at "
                   "least three operands");
        return nullptr;
      }
      TypeName RT;
      if (!typeName(A[0], RT))
        return nullptr;
      if (A[1].K != SDatum::Sym) {
        err(A[1].Loc, "expected a function name");
        return nullptr;
      }
      DeclSuffix FS;
      if (!paramList(A[2], FS))
        return nullptr;
      Declarator *Dt = CC.Ast.create<Declarator>();
      Dt->Name = Ident(sym(A[1].Text), A[1].Loc);
      Dt->PointerDepth = RT.PointerDepth;
      Dt->Suffixes = ArenaRef<DeclSuffix>::copy(CC.Ast, {FS});
      Dt->Loc = A[1].Loc;
      DeclSpecs Specs;
      Specs.Type = RT.Spec;
      Specs.Loc = A[0].Loc;
      CompoundStmt *Body = compound(A + 3, N - 3, D.Loc);
      return CC.Ast.create<FunctionDef>(Specs, Dt,
                                        ArenaRef<Declaration *>(), Body,
                                        D.Loc);
    }
    // defun*
    if (N < 2) {
      err(D.Loc, "form '(defun* SPECS DTOR [(krdecls ...)] BODY...)' "
                 "expects at least two operands");
      return nullptr;
    }
    DeclSpecs Specs;
    unsigned Fold = 0;
    if (!declSpecs(A[0], Specs, Fold, /*AllowStorage=*/true))
      return nullptr;
    Declarator *Dt = declarator(A[1]);
    if (!Dt)
      return nullptr;
    Dt->PointerDepth += Fold;
    size_t BodyStart = 2;
    std::vector<Declaration *> KRDecls;
    if (N > 2 && A[2].head() == "krdecls") {
      for (size_t I = 1; I != A[2].Elems.size(); ++I) {
        Decl *KD = decl(A[2].Elems[I], /*TopLevel=*/false);
        if (!KD)
          continue;
        auto *KDD = dyn_cast<Declaration>(KD);
        if (!KDD) {
          err(A[2].Elems[I].Loc, "expected a K&R parameter declaration");
          continue;
        }
        KRDecls.push_back(KDD);
      }
      BodyStart = 3;
    }
    CompoundStmt *Body = compound(A + BodyStart, N - BodyStart, D.Loc);
    return CC.Ast.create<FunctionDef>(
        Specs, Dt, ArenaRef<Declaration *>::copy(CC.Ast, KRDecls), Body,
        D.Loc);
  }

  if (H == "syntax" || H == "metadcl") {
    err(D.Loc, "macro definitions and meta declarations are written in the "
               "C base; S-expression units can only invoke macros");
    return nullptr;
  }

  if (const MacroDef *Def = CC.Macros.lookup(sym(H));
      Def && !isReservedHead(H)) {
    const MetaType *RT = Def->ReturnType;
    bool FitsDecl =
        RT->kind() == MetaTypeKind::Decl ||
        (RT->isList() && RT->listElem()->kind() == MetaTypeKind::Decl);
    if (!FitsDecl) {
      err(D.Loc, "macro '" + std::string(Def->Name.str()) + "' returns " +
                     RT->toString() +
                     " and cannot appear where a declaration is expected");
      if (!TopLevel) {
        invocation(Def, A, N, D.Loc); // recover
        return nullptr;
      }
    }
    MacroInvocation *Inv = invocation(Def, A, N, D.Loc);
    if (!Inv)
      return nullptr;
    return CC.Ast.create<MacroInvocationDecl>(Inv, D.Loc);
  }

  err(D.Loc, "'" + std::string(H) + "' does not begin a declaration form");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Macro invocations
//===----------------------------------------------------------------------===//

MacroInvocation *Lower::invocation(const MacroDef *Def, const SDatum *Ops,
                                   size_t N, SourceLoc Loc) {
  std::vector<const PatternElement *> Binders;
  for (const PatternElement &E : Def->Pat->Elements)
    if (E.K == PatternElement::Binder)
      Binders.push_back(&E);
  if (N != Binders.size()) {
    err(Loc, "macro '" + std::string(Def->Name.str()) + "' expects " +
                 std::to_string(Binders.size()) +
                 " constituent(s) in S-expression form, got " +
                 std::to_string(N));
    return nullptr;
  }
  std::vector<MacroArg> Bindings;
  for (size_t I = 0; I != N; ++I) {
    MatchValue *V = mvFromSpec(Binders[I]->Spec, Ops[I]);
    if (!V)
      return nullptr;
    if (!V->Type)
      V->Type = pspecValueType(Binders[I]->Spec, CC.Types);
    Bindings.push_back({Binders[I]->Name, V});
  }
  MacroInvocation *Inv = CC.Ast.create<MacroInvocation>();
  Inv->Def = Def;
  Inv->Loc = Loc;
  Inv->Args = ArenaRef<MacroArg>::copy(CC.Ast, Bindings);
  return Inv;
}

MatchValue *Lower::mvFromSpec(const PSpec *Spec, const SDatum &D) {
  switch (Spec->K) {
  case PSpec::Scalar:
    return scalarMV(Spec->ScalarType, D);
  case PSpec::Plus:
  case PSpec::Star: {
    if (D.K != SDatum::List) {
      err(D.Loc, "expected a list of constituents for a repetition");
      return nullptr;
    }
    if (Spec->K == PSpec::Plus && D.Elems.empty()) {
      err(D.Loc, "expected at least one element for a '+' repetition");
      return nullptr;
    }
    std::vector<MatchValue *> Elems;
    for (const SDatum &E : D.Elems) {
      MatchValue *V = mvFromSpec(Spec->Inner, E);
      if (!V)
        return nullptr;
      Elems.push_back(V);
    }
    MatchValue *V = CC.Ast.create<MatchValue>();
    V->K = MatchValue::List;
    V->Elems = ArenaRef<MatchValue *>::copy(CC.Ast, Elems);
    V->Type = pspecValueType(Spec, CC.Types);
    return V;
  }
  case PSpec::Opt: {
    if (D.isEmptyList()) {
      MatchValue *V = CC.Ast.create<MatchValue>();
      V->K = MatchValue::Absent;
      V->Type = pspecValueType(Spec->Inner, CC.Types);
      return V;
    }
    return mvFromSpec(Spec->Inner, D);
  }
  case PSpec::Tuple: {
    if (D.K != SDatum::List) {
      err(D.Loc, "expected a list of fields for a tuple constituent");
      return nullptr;
    }
    std::vector<const PatternElement *> Binders;
    for (const PatternElement &E : Spec->Sub->Elements)
      if (E.K == PatternElement::Binder)
        Binders.push_back(&E);
    if (D.Elems.size() != Binders.size()) {
      err(D.Loc, "tuple constituent expects " +
                     std::to_string(Binders.size()) + " field(s), got " +
                     std::to_string(D.Elems.size()));
      return nullptr;
    }
    std::vector<MatchValue *> Fields;
    std::vector<Symbol> Names;
    for (size_t I = 0; I != Binders.size(); ++I) {
      MatchValue *V = mvFromSpec(Binders[I]->Spec, D.Elems[I]);
      if (!V)
        return nullptr;
      Fields.push_back(V);
      Names.push_back(Binders[I]->Name);
    }
    MatchValue *V = CC.Ast.create<MatchValue>();
    V->K = MatchValue::Tuple;
    V->Elems = ArenaRef<MatchValue *>::copy(CC.Ast, Fields);
    V->FieldNames = ArenaRef<Symbol>::copy(CC.Ast, Names);
    return V;
  }
  }
  return nullptr;
}

MatchValue *Lower::scalarMV(const MetaType *Scalar, const SDatum &D) {
  MatchValue *V = CC.Ast.create<MatchValue>();
  V->Type = Scalar;
  switch (Scalar->kind()) {
  case MetaTypeKind::Exp: {
    Expr *E = expr(D);
    if (!E)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = E;
    return V;
  }
  case MetaTypeKind::Num: {
    Expr *E = nullptr;
    if (D.K == SDatum::Int)
      E = CC.Ast.create<IntLiteralExpr>(D.IntVal, D.Loc);
    else if (D.K == SDatum::Float)
      E = CC.Ast.create<FloatLiteralExpr>(D.FloatVal, D.Loc);
    else if (D.K == SDatum::Char)
      E = CC.Ast.create<CharLiteralExpr>(D.IntVal, D.Loc);
    else {
      err(D.Loc, "expected a numeric literal in macro invocation");
      return nullptr;
    }
    V->K = MatchValue::Ast;
    V->AstNode = E;
    return V;
  }
  case MetaTypeKind::Id: {
    if (D.K != SDatum::Sym) {
      err(D.Loc, "expected an identifier in macro invocation");
      return nullptr;
    }
    V->K = MatchValue::IdentV;
    V->Id = Ident(sym(D.Text), D.Loc);
    return V;
  }
  case MetaTypeKind::Stmt: {
    Stmt *S = stmt(D);
    if (!S)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = S;
    return V;
  }
  case MetaTypeKind::Decl: {
    Decl *Dc = decl(D, /*TopLevel=*/false);
    if (!Dc)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = Dc;
    return V;
  }
  case MetaTypeKind::TypeSpec: {
    TypeSpecNode *T = typeSpec(D);
    if (!T)
      return nullptr;
    V->K = MatchValue::Ast;
    V->AstNode = T;
    return V;
  }
  case MetaTypeKind::Declarator: {
    Declarator *Dt = declarator(D);
    if (!Dt)
      return nullptr;
    V->K = MatchValue::DeclaratorV;
    V->Dtor = Dt;
    return V;
  }
  case MetaTypeKind::InitDeclarator: {
    InitDeclarator *ID = CC.Ast.create<InitDeclarator>();
    ID->Loc = D.Loc;
    if (D.head() == "initdtor") {
      if (D.Elems.size() < 2 || D.Elems.size() > 3) {
        err(D.Loc, "form '(initdtor DTOR [INIT])' expects one or two "
                   "operands");
        return nullptr;
      }
      ID->Dtor = declarator(D.Elems[1]);
      if (!ID->Dtor)
        return nullptr;
      if (D.Elems.size() == 3) {
        ID->Init = expr(D.Elems[2]);
        if (!ID->Init)
          return nullptr;
      }
    } else {
      ID->Dtor = declarator(D);
      if (!ID->Dtor)
        return nullptr;
    }
    V->K = MatchValue::InitDeclV;
    V->InitDtor = ID;
    return V;
  }
  case MetaTypeKind::Enumerator: {
    Enumerator E;
    if (!enumeratorFromForm(D, E))
      return nullptr;
    Enumerator *EP = CC.Ast.create<Enumerator>();
    *EP = E;
    V->K = MatchValue::EnumeratorV;
    V->Enum = EP;
    return V;
  }
  default:
    err(D.Loc, "pattern constituent type " + Scalar->toString() +
                   " is not supported");
    return nullptr;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

TranslationUnit *msq::parseSexprUnit(CompilationContext &CC,
                                     uint32_t BufferId) {
  Scanner S(BufferId, CC.SM.bufferContents(BufferId), CC.Diags);
  std::vector<SDatum> Forms = S.scanAll();
  Lower L(CC);
  std::vector<Decl *> Items;
  for (const SDatum &F : Forms)
    if (Decl *D = L.decl(F, /*TopLevel=*/true))
      Items.push_back(D);
  return CC.Ast.create<TranslationUnit>(ArenaRef<Decl *>::copy(CC.Ast, Items),
                                        SourceLoc::get(BufferId, 0));
}

Node *msq::parseSexprFragment(CompilationContext &CC, uint32_t BufferId,
                              MetaTypeKind Kind) {
  Scanner S(BufferId, CC.SM.bufferContents(BufferId), CC.Diags);
  std::vector<SDatum> Forms = S.scanAll();
  if (Forms.empty()) {
    CC.Diags.error(SourceLoc::get(BufferId, 0),
                   "expected a form in the fragment");
    return nullptr;
  }
  if (Forms.size() > 1)
    CC.Diags.error(Forms[1].Loc, "expected a single form in the fragment");
  Lower L(CC);
  switch (Kind) {
  case MetaTypeKind::Exp:
    return L.expr(Forms[0]);
  case MetaTypeKind::Stmt:
    return L.stmt(Forms[0]);
  case MetaTypeKind::Decl:
    return L.decl(Forms[0], /*TopLevel=*/true);
  case MetaTypeKind::TypeSpec:
    return L.typeSpec(Forms[0]);
  default:
    CC.Diags.error(SourceLoc::get(BufferId, 0),
                   "the S-expression base cannot parse a fragment of this "
                   "meta type");
    return nullptr;
  }
}
