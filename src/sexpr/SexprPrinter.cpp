//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST -> S-expression concrete syntax. Total over the object-language
/// AST; what it prints re-reads (via SexprReader) to a structurally
/// identical tree. Meta-only nodes — placeholders, templates, macro and
/// meta declarations — have no S-expression surface and render through
/// the print-only (c-syntax "...") escape, delegating to the C printer.
///
//===----------------------------------------------------------------------===//

#include "pattern/Pattern.h"
#include "sexpr/SexprBase.h"

#include <sstream>
#include <string>
#include <vector>

using namespace msq;

namespace {

class SPrinter {
public:
  explicit SPrinter(const PrintOptions &Opts) : Opts(Opts) {}

  std::string print(const Node *N) {
    if (!N)
      return "()";
    if (const auto *D = dyn_cast<Decl>(N))
      pDecl(D, 0);
    else if (const auto *S = dyn_cast<Stmt>(N))
      pStmt(S, 0);
    else if (const auto *E = dyn_cast<Expr>(N))
      pExpr(E);
    else if (const auto *T = dyn_cast<TypeSpecNode>(N))
      pType(T);
    else
      cEscape(N);
    std::string Out = OS.str();
    emitLineProvenance(Out);
    return Out;
  }

private:
  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  void nl(unsigned Ind) {
    OS << '\n';
    for (unsigned I = 0; I != Ind * Opts.IndentWidth; ++I)
      OS << ' ';
  }

  /// The escaping used by both the (c-syntax ...) payload and string
  /// literals; matches what the reader's escape set cooks back.
  void pEscapedString(std::string_view S) {
    OS << '"';
    for (char C : S) {
      switch (C) {
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      case '\r':
        OS << "\\r";
        break;
      case '\\':
        OS << "\\\\";
        break;
      case '"':
        OS << "\\\"";
        break;
      case '\0':
        OS << "\\0";
        break;
      default:
        OS << C;
        break;
      }
    }
    OS << '"';
  }

  /// Print-only escape for nodes with no S-expression surface: the node in
  /// C concrete syntax, wrapped so a reader diagnoses rather than
  /// misparses.
  void cEscape(const Node *N) {
    PrintOptions PO;
    PO.IndentWidth = Opts.IndentWidth;
    PO.AllowPlaceholders = Opts.AllowPlaceholders;
    OS << "(c-syntax ";
    pEscapedString(printNode(N, PO));
    OS << ')';
  }

  void noteProvenance(const Node *N) {
    if (Opts.LineProvenance && N && N->prov() != 0)
      OffsetProv.emplace_back(size_t(OS.tellp()), N->prov());
  }

  /// Identical line-stamp semantics to the C printer: first record per
  /// output line wins.
  void emitLineProvenance(const std::string &Out) {
    if (!Opts.LineProvenance || OffsetProv.empty())
      return;
    size_t Pos = 0;
    unsigned Line = 1, LastLine = 0;
    for (const auto &[Off, Frame] : OffsetProv) {
      for (; Pos < Off && Pos < Out.size(); ++Pos)
        if (Out[Pos] == '\n')
          ++Line;
      if (Line != LastLine) {
        Opts.LineProvenance->emplace_back(Line, Frame);
        LastLine = Line;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Placeholder detection (escape-eligibility)
  //===--------------------------------------------------------------------===//

  static bool dtorHasMeta(const Declarator *D) {
    if (!D)
      return false;
    if (D->Ph || D->Name.isPlaceholder())
      return true;
    if (D->Inner && dtorHasMeta(D->Inner))
      return true;
    for (const DeclSuffix &S : D->Suffixes) {
      if (S.K == DeclSuffix::Function) {
        for (const ParamDecl *P : S.Params)
          if (P && (paramHasMeta(*P)))
            return true;
        for (const Ident &KR : S.KRNames)
          if (KR.isPlaceholder())
            return true;
      }
    }
    return false;
  }

  static bool paramHasMeta(const ParamDecl &P) {
    if (P.Dtor && dtorHasMeta(P.Dtor))
      return true;
    // Parameters cannot carry a storage class in the S-expression surface.
    return P.Specs.Storage != StorageClass::None;
  }

  static bool declHasMeta(const Declaration *D) {
    if (D->DeclListPh || D->Specs.Storage == StorageClass::Metadcl)
      return true;
    for (const InitDeclarator &ID : D->Inits)
      if (ID.Ph || dtorHasMeta(ID.Dtor))
        return true;
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  void pExpr(const Expr *E) {
    if (!E) {
      OS << "()";
      return;
    }
    switch (E->kind()) {
    case NodeKind::IntLiteralExpr:
      OS << cast<IntLiteralExpr>(E)->Value;
      return;
    case NodeKind::FloatLiteralExpr: {
      std::ostringstream Tmp;
      Tmp << cast<FloatLiteralExpr>(E)->Value;
      std::string S = Tmp.str();
      OS << S;
      // Keep the datum re-reading as a float (same rule as the C printer).
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos &&
          S.find("inf") == std::string::npos)
        OS << ".0";
      return;
    }
    case NodeKind::CharLiteralExpr: {
      char C = char(cast<CharLiteralExpr>(E)->Value);
      OS << '\'';
      switch (C) {
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      case '\\':
        OS << "\\\\";
        break;
      case '\'':
        OS << "\\'";
        break;
      case '\0':
        OS << "\\0";
        break;
      default:
        OS << C;
        break;
      }
      OS << '\'';
      return;
    }
    case NodeKind::StringLiteralExpr:
      pEscapedString(cast<StringLiteralExpr>(E)->Value.str());
      return;
    case NodeKind::IdentExpr: {
      const Ident &I = cast<IdentExpr>(E)->Name;
      if (I.isPlaceholder()) {
        cEscape(E);
        return;
      }
      OS << I.Sym.str();
      return;
    }
    case NodeKind::ParenExpr:
      OS << "(paren ";
      pExpr(cast<ParenExpr>(E)->Inner);
      OS << ')';
      return;
    case NodeKind::InitListExpr: {
      OS << "(init";
      for (const Expr *El : cast<InitListExpr>(E)->Elems) {
        OS << ' ';
        pExpr(El);
      }
      OS << ')';
      return;
    }
    case NodeKind::UnaryExpr: {
      const auto *U = cast<UnaryExpr>(E);
      OS << '(';
      if (U->Op == UnaryOpKind::PostInc)
        OS << "post++";
      else if (U->Op == UnaryOpKind::PostDec)
        OS << "post--";
      else
        OS << unaryOpSpelling(U->Op);
      OS << ' ';
      pExpr(U->Operand);
      OS << ')';
      return;
    }
    case NodeKind::BinaryExpr: {
      const auto *B = cast<BinaryExpr>(E);
      OS << '(';
      if (B->Op == BinaryOpKind::Comma)
        OS << "comma";
      else
        OS << binaryOpSpelling(B->Op);
      OS << ' ';
      pExpr(B->LHS);
      OS << ' ';
      pExpr(B->RHS);
      OS << ')';
      return;
    }
    case NodeKind::ConditionalExpr: {
      const auto *C = cast<ConditionalExpr>(E);
      OS << "(?: ";
      pExpr(C->Cond);
      OS << ' ';
      pExpr(C->Then);
      OS << ' ';
      pExpr(C->Else);
      OS << ')';
      return;
    }
    case NodeKind::CastExpr: {
      const auto *C = cast<CastExpr>(E);
      OS << "(cast ";
      pTypeName(C->Ty);
      OS << ' ';
      pExpr(C->Operand);
      OS << ')';
      return;
    }
    case NodeKind::SizeofExpr: {
      const auto *S = cast<SizeofExpr>(E);
      if (S->IsType) {
        OS << "(sizeof-type ";
        pTypeName(S->Ty);
      } else {
        OS << "(sizeof ";
        pExpr(S->Operand);
      }
      OS << ')';
      return;
    }
    case NodeKind::CallExpr: {
      const auto *C = cast<CallExpr>(E);
      OS << "(call ";
      pExpr(C->Callee);
      for (const Expr *Arg : C->Args) {
        OS << ' ';
        pExpr(Arg);
      }
      OS << ')';
      return;
    }
    case NodeKind::IndexExpr: {
      const auto *I = cast<IndexExpr>(E);
      OS << "(index ";
      pExpr(I->Base);
      OS << ' ';
      pExpr(I->Index);
      OS << ')';
      return;
    }
    case NodeKind::MemberExpr: {
      const auto *M = cast<MemberExpr>(E);
      if (M->Member.isPlaceholder()) {
        cEscape(E);
        return;
      }
      OS << (M->IsArrow ? "(arrow " : "(member ");
      pExpr(M->Base);
      OS << ' ' << M->Member.Sym.str() << ')';
      return;
    }
    case NodeKind::MacroInvocationExpr:
      pInvocation(cast<MacroInvocationExpr>(E)->Inv);
      return;
    case NodeKind::PlaceholderExpr:
    case NodeKind::BackquoteExpr:
    case NodeKind::LambdaExpr:
    default:
      cEscape(E);
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  void pType(const TypeSpecNode *T) {
    if (!T) {
      OS << "int"; // implicit int (K&R)
      return;
    }
    switch (T->kind()) {
    case NodeKind::BuiltinTypeSpecKind: {
      unsigned F = cast<BuiltinTypeSpec>(T)->Flags;
      std::vector<const char *> Words;
      if (F & BTF_Signed)
        Words.push_back("signed");
      if (F & BTF_Unsigned)
        Words.push_back("unsigned");
      if (F & BTF_Short)
        Words.push_back("short");
      if (F & BTF_Long)
        Words.push_back("long");
      if (F & BTF_LongLong)
        Words.push_back("long");
      if (F & BTF_Void)
        Words.push_back("void");
      if (F & BTF_Char)
        Words.push_back("char");
      if (F & BTF_Int)
        Words.push_back("int");
      if (F & BTF_Float)
        Words.push_back("float");
      if (F & BTF_Double)
        Words.push_back("double");
      if (Words.empty()) {
        OS << "int";
        return;
      }
      if (Words.size() == 1) {
        OS << Words[0];
        return;
      }
      OS << '(';
      for (size_t I = 0; I != Words.size(); ++I) {
        if (I)
          OS << ' ';
        OS << Words[I];
      }
      OS << ')';
      return;
    }
    case NodeKind::TypedefNameSpecKind:
      OS << cast<TypedefNameSpec>(T)->Name.str();
      return;
    case NodeKind::TagTypeSpecKind: {
      const auto *Tag = cast<TagTypeSpec>(T);
      if (Tag->TagName.isPlaceholder()) {
        cEscape(T);
        return;
      }
      if (Tag->Tag == TagKind::Enum)
        for (const Enumerator &En : Tag->Enums)
          if (En.ListPh || En.Name.isPlaceholder()) {
            cEscape(T);
            return;
          }
      OS << '(';
      switch (Tag->Tag) {
      case TagKind::Struct:
        OS << "struct";
        break;
      case TagKind::Union:
        OS << "union";
        break;
      case TagKind::Enum:
        OS << "enum";
        break;
      }
      OS << ' ';
      if (Tag->TagName.Sym.valid())
        OS << Tag->TagName.Sym.str();
      else
        OS << "()";
      if (Tag->HasBody) {
        if (Tag->Tag == TagKind::Enum) {
          OS << " (enums";
          for (const Enumerator &En : Tag->Enums) {
            OS << ' ';
            pEnumerator(En);
          }
          OS << ')';
        } else {
          OS << " (fields";
          for (const Declaration *M : Tag->Members) {
            OS << ' ';
            pDeclaration(M, 0);
          }
          OS << ')';
        }
      }
      OS << ')';
      return;
    }
    case NodeKind::MetaAstTypeSpecKind:
    case NodeKind::PlaceholderTypeSpecKind:
    default:
      cEscape(T);
      return;
    }
  }

  void pEnumerator(const Enumerator &En) {
    if (En.Value) {
      OS << '(' << En.Name.Sym.str() << ' ';
      pExpr(En.Value);
      OS << ')';
    } else {
      OS << En.Name.Sym.str();
    }
  }

  void pTypeName(const TypeName &TN) {
    for (unsigned I = 0; I != TN.PointerDepth; ++I)
      OS << "(ptr ";
    pType(TN.Spec);
    for (unsigned I = 0; I != TN.PointerDepth; ++I)
      OS << ')';
  }

  /// The var/typedef sugar's type form: arrays (outer suffix outermost)
  /// over pointers over the specifier.
  void pVarType(const TypeSpecNode *Spec, unsigned Depth,
                ArenaRef<DeclSuffix> Suffixes) {
    // The innermost position holds the pointer-wrapped specifier; array
    // sizes then close outward in reverse, so the FIRST suffix ends up
    // outermost — (array (array int 4) 3) is `int x[3][4]`.
    for (size_t I = 0; I != Suffixes.size(); ++I)
      OS << "(array ";
    for (unsigned I = 0; I != Depth; ++I)
      OS << "(ptr ";
    pType(Spec);
    for (unsigned I = 0; I != Depth; ++I)
      OS << ')';
    for (size_t I = Suffixes.size(); I != 0; --I) {
      const DeclSuffix &S = Suffixes[I - 1];
      if (S.ArraySize) {
        OS << ' ';
        pExpr(S.ArraySize);
      }
      OS << ')';
    }
  }

  //===--------------------------------------------------------------------===//
  // Declarators
  //===--------------------------------------------------------------------===//

  bool dtorIsBareName(const Declarator *D) {
    return D && !D->Ph && !D->Inner && D->PointerDepth == 0 &&
           D->Suffixes.empty() && D->Name.Sym.valid() &&
           !D->Name.isPlaceholder();
  }

  void pDtor(const Declarator *D) {
    if (!D) {
      OS << "()";
      return;
    }
    if (dtorHasMeta(D)) {
      PrintOptions PO;
      PO.IndentWidth = Opts.IndentWidth;
      PO.AllowPlaceholders = Opts.AllowPlaceholders;
      OS << "(c-syntax ";
      pEscapedString(printDeclarator(D, PO));
      OS << ')';
      return;
    }
    if (dtorIsBareName(D)) {
      OS << D->Name.Sym.str();
      return;
    }
    OS << "(dtor " << D->PointerDepth << ' ';
    if (D->Inner) {
      OS << "(inner ";
      pDtor(D->Inner);
      OS << ')';
    } else if (D->Name.Sym.valid()) {
      OS << D->Name.Sym.str();
    } else {
      OS << "()";
    }
    for (const DeclSuffix &S : D->Suffixes) {
      OS << ' ';
      if (S.K == DeclSuffix::Array) {
        if (S.ArraySize) {
          OS << "(array ";
          pExpr(S.ArraySize);
          OS << ')';
        } else {
          OS << "(array)";
        }
      } else if (!S.KRNames.empty()) {
        OS << "(krfn";
        for (const Ident &KR : S.KRNames)
          OS << ' ' << KR.Sym.str();
        OS << ')';
      } else {
        OS << "(fn (";
        bool First = true;
        for (const ParamDecl *P : S.Params) {
          if (!First)
            OS << ' ';
          First = false;
          pParam(P);
        }
        if (S.Variadic) {
          if (!First)
            OS << ' ';
          OS << "...";
        }
        OS << "))";
      }
    }
    OS << ')';
  }

  void pParam(const ParamDecl *P) {
    if (!P) {
      OS << "(int)";
      return;
    }
    OS << '(';
    if (P->Specs.Const || P->Specs.Volatile) {
      OS << "(specs";
      if (P->Specs.Const)
        OS << " const";
      if (P->Specs.Volatile)
        OS << " volatile";
      OS << ' ';
      pType(P->Specs.Type);
      OS << ')';
    } else {
      pType(P->Specs.Type);
    }
    if (P->Dtor) {
      OS << ' ';
      pDtor(P->Dtor);
    }
    OS << ')';
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void pCompoundBody(const CompoundStmt *C, unsigned Ind) {
    for (const Decl *D : C->Decls) {
      nl(Ind);
      pDecl(D, Ind);
    }
    for (const Stmt *S : C->Stmts) {
      nl(Ind);
      pStmt(S, Ind);
    }
  }

  void pStmt(const Stmt *S, unsigned Ind) {
    if (!S) {
      OS << "(nop)";
      return;
    }
    noteProvenance(S);
    switch (S->kind()) {
    case NodeKind::CompoundStmtKind: {
      const auto *C = cast<CompoundStmt>(S);
      OS << "(begin";
      pCompoundBody(C, Ind + 1);
      OS << ')';
      return;
    }
    case NodeKind::ExprStmt:
      pExpr(cast<ExprStmt>(S)->E);
      return;
    case NodeKind::NullStmt:
      OS << "(nop)";
      return;
    case NodeKind::IfStmt: {
      const auto *I = cast<IfStmt>(S);
      OS << "(if ";
      pExpr(I->Cond);
      nl(Ind + 1);
      pStmt(I->Then, Ind + 1);
      if (I->Else) {
        nl(Ind + 1);
        pStmt(I->Else, Ind + 1);
      }
      OS << ')';
      return;
    }
    case NodeKind::WhileStmt: {
      const auto *W = cast<WhileStmt>(S);
      OS << "(while ";
      pExpr(W->Cond);
      nl(Ind + 1);
      pStmt(W->Body, Ind + 1);
      OS << ')';
      return;
    }
    case NodeKind::DoStmt: {
      const auto *D = cast<DoStmt>(S);
      OS << "(do-while";
      nl(Ind + 1);
      pStmt(D->Body, Ind + 1);
      nl(Ind + 1);
      pExpr(D->Cond);
      OS << ')';
      return;
    }
    case NodeKind::ForStmt: {
      const auto *F = cast<ForStmt>(S);
      OS << "(for ";
      F->Init ? pExpr(F->Init) : void(OS << "()");
      OS << ' ';
      F->Cond ? pExpr(F->Cond) : void(OS << "()");
      OS << ' ';
      F->Step ? pExpr(F->Step) : void(OS << "()");
      nl(Ind + 1);
      pStmt(F->Body, Ind + 1);
      OS << ')';
      return;
    }
    case NodeKind::SwitchStmt: {
      const auto *W = cast<SwitchStmt>(S);
      OS << "(switch ";
      pExpr(W->Cond);
      nl(Ind + 1);
      pStmt(W->Body, Ind + 1);
      OS << ')';
      return;
    }
    case NodeKind::CaseStmt: {
      const auto *C = cast<CaseStmt>(S);
      OS << "(case ";
      pExpr(C->Value);
      nl(Ind + 1);
      pStmt(C->Body, Ind + 1);
      OS << ')';
      return;
    }
    case NodeKind::DefaultStmt: {
      OS << "(default";
      nl(Ind + 1);
      pStmt(cast<DefaultStmt>(S)->Body, Ind + 1);
      OS << ')';
      return;
    }
    case NodeKind::LabelStmt: {
      const auto *L = cast<LabelStmt>(S);
      if (L->Label.isPlaceholder()) {
        cEscape(S);
        return;
      }
      OS << "(label " << L->Label.Sym.str();
      nl(Ind + 1);
      pStmt(L->Body, Ind + 1);
      OS << ')';
      return;
    }
    case NodeKind::GotoStmt: {
      const auto *G = cast<GotoStmt>(S);
      if (G->Label.isPlaceholder()) {
        cEscape(S);
        return;
      }
      OS << "(goto " << G->Label.Sym.str() << ')';
      return;
    }
    case NodeKind::BreakStmt:
      OS << "(break)";
      return;
    case NodeKind::ContinueStmt:
      OS << "(continue)";
      return;
    case NodeKind::ReturnStmt: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->Value) {
        OS << "(return ";
        pExpr(R->Value);
        OS << ')';
      } else {
        OS << "(return)";
      }
      return;
    }
    case NodeKind::MacroInvocationStmt:
      pInvocation(cast<MacroInvocationStmt>(S)->Inv);
      return;
    case NodeKind::PlaceholderStmt:
    default:
      cEscape(S);
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void pDeclaration(const Declaration *D, unsigned Ind) {
    (void)Ind;
    if (declHasMeta(D)) {
      cEscape(D);
      return;
    }
    // var/typedef sugar when the declaration is a single simple
    // init-declarator with array-only suffixes.
    if (D->Inits.size() == 1 && !D->Specs.Const && !D->Specs.Volatile &&
        (D->Specs.Storage == StorageClass::None ||
         D->Specs.Storage == StorageClass::Typedef)) {
      const InitDeclarator &ID = D->Inits[0];
      bool Sugar = ID.Dtor && !ID.Dtor->Inner &&
                   ID.Dtor->Name.Sym.valid();
      if (Sugar)
        for (const DeclSuffix &S : ID.Dtor->Suffixes)
          if (S.K != DeclSuffix::Array)
            Sugar = false;
      if (Sugar && D->Specs.Storage == StorageClass::Typedef && ID.Init)
        Sugar = false;
      if (Sugar) {
        bool IsTypedef = D->Specs.Storage == StorageClass::Typedef;
        OS << (IsTypedef ? "(typedef " : "(var ");
        pVarType(D->Specs.Type, ID.Dtor->PointerDepth, ID.Dtor->Suffixes);
        OS << ' ' << ID.Dtor->Name.Sym.str();
        if (ID.Init) {
          OS << ' ';
          pExpr(ID.Init);
        }
        OS << ')';
        return;
      }
    }
    OS << "(decl ";
    pSpecs(D->Specs);
    for (const InitDeclarator &ID : D->Inits) {
      OS << " (";
      pDtor(ID.Dtor);
      if (ID.Init) {
        OS << ' ';
        pExpr(ID.Init);
      }
      OS << ')';
    }
    OS << ')';
  }

  void pSpecs(const DeclSpecs &Specs) {
    OS << "(specs";
    switch (Specs.Storage) {
    case StorageClass::Auto:
      OS << " auto";
      break;
    case StorageClass::Register:
      OS << " register";
      break;
    case StorageClass::Static:
      OS << " static";
      break;
    case StorageClass::Extern:
      OS << " extern";
      break;
    case StorageClass::Typedef:
      OS << " typedef";
      break;
    case StorageClass::None:
    case StorageClass::Metadcl: // callers escape Metadcl before here
      break;
    }
    if (Specs.Const)
      OS << " const";
    if (Specs.Volatile)
      OS << " volatile";
    OS << ' ';
    pType(Specs.Type);
    OS << ')';
  }

  void pFunctionDef(const FunctionDef *F, unsigned Ind) {
    bool Meta = !F->Dtor || dtorHasMeta(F->Dtor);
    if (Meta) {
      cEscape(F);
      return;
    }
    // defun sugar: plain specs, a directly-named prototype declarator with
    // exactly one function suffix, no K&R pieces.
    bool Sugar = F->Specs.Storage == StorageClass::None && !F->Specs.Const &&
                 !F->Specs.Volatile && F->KRDecls.empty() && !F->Dtor->Inner &&
                 F->Dtor->Name.Sym.valid() && F->Dtor->Suffixes.size() == 1 &&
                 F->Dtor->Suffixes[0].K == DeclSuffix::Function &&
                 F->Dtor->Suffixes[0].KRNames.empty();
    if (Sugar)
      for (const ParamDecl *P : F->Dtor->Suffixes[0].Params)
        if (!P || P->Specs.Const || P->Specs.Volatile ||
            P->Specs.Storage != StorageClass::None)
          Sugar = false;
    if (Sugar) {
      const DeclSuffix &FS = F->Dtor->Suffixes[0];
      OS << "(defun ";
      for (unsigned I = 0; I != F->Dtor->PointerDepth; ++I)
        OS << "(ptr ";
      pType(F->Specs.Type);
      for (unsigned I = 0; I != F->Dtor->PointerDepth; ++I)
        OS << ')';
      OS << ' ' << F->Dtor->Name.Sym.str() << " (";
      bool First = true;
      for (const ParamDecl *P : FS.Params) {
        if (!First)
          OS << ' ';
        First = false;
        pParam(P);
      }
      if (FS.Variadic) {
        if (!First)
          OS << ' ';
        OS << "...";
      }
      OS << ')';
      if (F->Body)
        pCompoundBody(F->Body, Ind + 1);
      OS << ')';
      return;
    }
    OS << "(defun* ";
    pSpecs(F->Specs);
    OS << ' ';
    pDtor(F->Dtor);
    if (!F->KRDecls.empty()) {
      OS << " (krdecls";
      for (const Declaration *KD : F->KRDecls) {
        OS << ' ';
        pDeclaration(KD, Ind);
      }
      OS << ')';
    }
    if (F->Body)
      pCompoundBody(F->Body, Ind + 1);
    OS << ')';
  }

  void pDecl(const Decl *D, unsigned Ind) {
    if (!D) {
      OS << "()";
      return;
    }
    noteProvenance(D);
    switch (D->kind()) {
    case NodeKind::DeclarationKind:
      pDeclaration(cast<Declaration>(D), Ind);
      return;
    case NodeKind::FunctionDefKind:
      pFunctionDef(cast<FunctionDef>(D), Ind);
      return;
    case NodeKind::MacroInvocationDecl:
      pInvocation(cast<MacroInvocationDecl>(D)->Inv);
      return;
    case NodeKind::TranslationUnitKind: {
      const auto *TU = cast<TranslationUnit>(D);
      bool First = true;
      for (const Decl *Item : TU->Items) {
        if (!First)
          OS << '\n';
        First = false;
        pDecl(Item, 0);
        OS << '\n';
      }
      return;
    }
    case NodeKind::PlaceholderDecl:
    case NodeKind::MetaDeclKind:
    case NodeKind::MacroDefKind:
    default:
      cEscape(D);
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Macro invocations
  //===--------------------------------------------------------------------===//

  void pInvocation(const MacroInvocation *Inv) {
    if (!Inv || !Inv->Def) {
      OS << "()";
      return;
    }
    OS << '(' << Inv->Def->Name.str();
    for (const PatternElement &E : Inv->Def->Pat->Elements) {
      if (E.K != PatternElement::Binder)
        continue;
      const MatchValue *V = nullptr;
      for (const MacroArg &Arg : Inv->Args)
        if (Arg.Name == E.Name) {
          V = Arg.Value;
          break;
        }
      OS << ' ';
      pMV(E.Spec, V);
    }
    OS << ')';
  }

  void pMV(const PSpec *Spec, const MatchValue *V) {
    if (!V) {
      OS << "()";
      return;
    }
    if (Spec && Spec->K == PSpec::Opt) {
      if (V->K == MatchValue::Absent) {
        OS << "()";
        return;
      }
      pMV(Spec->Inner, V);
      return;
    }
    switch (V->K) {
    case MatchValue::Ast: {
      const Node *N = V->AstNode;
      if (!N) {
        OS << "()";
        return;
      }
      if (const auto *E = dyn_cast<Expr>(N))
        pExpr(E);
      else if (const auto *S = dyn_cast<Stmt>(N))
        pStmt(S, 0);
      else if (const auto *D = dyn_cast<Decl>(N))
        pDecl(D, 0);
      else if (const auto *T = dyn_cast<TypeSpecNode>(N))
        pType(T);
      else
        cEscape(N);
      return;
    }
    case MatchValue::IdentV:
      if (V->Id.isPlaceholder())
        OS << "(c-syntax \"<placeholder>\")";
      else
        OS << V->Id.Sym.str();
      return;
    case MatchValue::DeclaratorV:
      pDtor(V->Dtor);
      return;
    case MatchValue::InitDeclV:
      OS << "(initdtor ";
      pDtor(V->InitDtor ? V->InitDtor->Dtor : nullptr);
      if (V->InitDtor && V->InitDtor->Init) {
        OS << ' ';
        pExpr(V->InitDtor->Init);
      }
      OS << ')';
      return;
    case MatchValue::EnumeratorV:
      if (V->Enum)
        pEnumerator(*V->Enum);
      else
        OS << "()";
      return;
    case MatchValue::List: {
      OS << '(';
      bool First = true;
      for (const MatchValue *El : V->Elems) {
        if (!First)
          OS << ' ';
        First = false;
        pMV(Spec ? Spec->Inner : nullptr, El);
      }
      OS << ')';
      return;
    }
    case MatchValue::Tuple: {
      OS << '(';
      std::vector<const PatternElement *> Binders;
      if (Spec && Spec->K == PSpec::Tuple && Spec->Sub)
        for (const PatternElement &E : Spec->Sub->Elements)
          if (E.K == PatternElement::Binder)
            Binders.push_back(&E);
      bool First = true;
      for (size_t I = 0; I != V->Elems.size(); ++I) {
        if (!First)
          OS << ' ';
        First = false;
        pMV(I < Binders.size() ? Binders[I]->Spec : nullptr, V->Elems[I]);
      }
      OS << ')';
      return;
    }
    case MatchValue::Absent:
      OS << "()";
      return;
    }
  }

  const PrintOptions &Opts;
  std::ostringstream OS;
  std::vector<std::pair<size_t, uint32_t>> OffsetProv;
};

} // namespace

std::string msq::printSexpr(const Node *N, const PrintOptions &Opts) {
  SPrinter P(Opts);
  return P.print(N);
}
