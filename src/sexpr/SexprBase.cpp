//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The S-expression base's SyntaxBase adapter. No token layer: the reader
/// builds trees straight from datums, so supportsTokenReuse stays false
/// and the incremental engine's token cache degrades soundly to its
/// tree/cold paths for S-expression units.
///
//===----------------------------------------------------------------------===//

#include "sexpr/SexprBase.h"
#include "synbase/SyntaxBase.h"

using namespace msq;

namespace {

class SexprSyntaxBase final : public SyntaxBase {
public:
  const char *name() const override { return "sexpr"; }

  bool matchesExtension(std::string_view Ext) const override {
    return Ext == ".sexp" || Ext == ".sx";
  }

  TranslationUnit *parseUnit(CompilationContext &CC, uint32_t BufferId,
                             const ParseOptions &PO,
                             std::vector<Token> *TokensOut) const override {
    (void)PO;
    (void)TokensOut; // no token layer to capture
    return parseSexprUnit(CC, BufferId);
  }

  Node *parseFragment(CompilationContext &CC, uint32_t BufferId,
                      MetaTypeKind Kind,
                      const ParseOptions &PO) const override {
    (void)PO;
    return parseSexprFragment(CC, BufferId, Kind);
  }

  std::string print(const Node *N, const PrintOptions &PO) const override {
    return printSexpr(N, PO);
  }
};

} // namespace

const SyntaxBase &msq::sexprSyntaxBase() {
  static SexprSyntaxBase B;
  return B;
}
