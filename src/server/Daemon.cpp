//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include "server/Protocol.h"
#include "server/Server.h"
#include "server/Session.h"

#include <algorithm>
#include <chrono>

#include <sys/socket.h>
#include <unistd.h>

using namespace msq;

//===----------------------------------------------------------------------===//
// Conn
//===----------------------------------------------------------------------===//

Conn::~Conn() {
  if (OwnsFds)
    ::close(ReadFd); // ReadFd == WriteFd for sockets
}

void Conn::send(const std::string &Frame) {
  std::lock_guard<std::mutex> Lock(WriteMutex);
  if (Dead)
    return;
  if (!writeFrame(WriteFd, Frame))
    Dead = true; // peer went away; drop subsequent writes
}

void Conn::beginRequest() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ++Outstanding;
}

void Conn::endRequest() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  if (--Outstanding == 0)
    Quiesced.notify_all();
}

void Conn::waitQuiesced() {
  std::unique_lock<std::mutex> Lock(StateMutex);
  Quiesced.wait(Lock, [this] { return Outstanding == 0; });
}

//===----------------------------------------------------------------------===//
// The msqd request dispatcher
//===----------------------------------------------------------------------===//

void msq::serveShardConnection(const std::shared_ptr<Conn> &C, Server &S,
                               const AuthConfig &Auth,
                               const ShardServeOptions &Opts) {
  FrameReader Reader(C->ReadFd, MaxFrameBytes);
  Reader.setIdleTimeout(Opts.IdleTimeoutMillis);
  std::string Frame;
  for (;;) {
    FrameReader::Status St = Reader.next(Frame);
    if (St == FrameReader::Status::Idle) {
      // No frame for the idle budget: the peer is a wedged or abandoned
      // editor. Count it and drop the connection — interactive clients
      // reconnect (their sessions outlive connections; the session
      // reaper handles abandoned SESSIONS separately).
      S.noteIdleDisconnect();
      break;
    }
    if (St == FrameReader::Status::TooLong) {
      // The stream cannot be resynchronized after an oversized frame;
      // answer once, then drop the connection.
      C->send(makeErrorResponse(
          "", ErrorCode::FrameTooLarge,
          "frame exceeds " + std::to_string(MaxFrameBytes) + " bytes"));
      break;
    }
    if (St != FrameReader::Status::Frame)
      break; // EOF, truncated frame, or read error: tear down cleanly

    Request Req;
    ParseOutcome PO = parseRequest(Frame, Req);
    if (!PO.Ok) {
      C->send(makeErrorResponse(Req.Id, PO.Code, PO.Message));
      continue;
    }

    switch (Req.Ty) {
    case Request::Type::Ping:
      C->send(makePongResponse(Req.Id));
      break;
    case Request::Type::Status: {
      std::string Metrics = S.metricsJson();
      if (Opts.Sessions && !Metrics.empty() && Metrics.back() == '}') {
        // Splice the session manager's counters into the server's
        // metrics object so `status` stays one self-contained document.
        Metrics.pop_back();
        Metrics += ",\"sessions\":";
        Metrics += Opts.Sessions->metricsJson();
        Metrics += '}';
      }
      C->send(makeStatusResponse(Req.Id, Metrics));
      break;
    }
    case Request::Type::Hello: {
      auto It = Auth.TokenTenants.find(Req.Token);
      if (It != Auth.TokenTenants.end()) {
        C->Tenant = It->second;
      } else if (Auth.required()) {
        // Unknown token on a daemon with a token table: refuse and drop
        // — a peer probing tokens gets no second try on this connection.
        C->send(makeErrorResponse(Req.Id, ErrorCode::Unauthorized,
                                  "unknown auth token"));
        C->waitQuiesced();
        return;
      } else {
        // No table configured: the token names the tenant directly
        // (trusted single-operator mode — quotas still apply per name).
        C->Tenant = Req.Token;
      }
      C->Authenticated = true;
      C->send(makeWelcomeResponse(Req.Id, C->Tenant));
      break;
    }
    case Request::Type::CacheGet:
    case Request::Type::CachePut:
      // Cache traffic belongs to msq-cached; a shard refusing it loudly
      // beats quietly mis-serving a misconfigured peer.
      C->send(makeErrorResponse(Req.Id, ErrorCode::UnknownType,
                                "this daemon does not serve cache "
                                "requests (use msq-cached)"));
      break;
    case Request::Type::SessionOpen:
    case Request::Type::SessionEval:
    case Request::Type::SessionClose: {
      if (!Opts.Sessions) {
        C->send(makeErrorResponse(Req.Id, ErrorCode::UnknownType,
                                  "this daemon does not serve interactive "
                                  "sessions"));
        break;
      }
      if (C->FromTcp && Auth.required() && !C->Authenticated) {
        C->send(makeErrorResponse(Req.Id, ErrorCode::Unauthorized,
                                  "authenticate with a hello first"));
        C->waitQuiesced();
        return;
      }
      // Session work runs synchronously on the connection thread: evals
      // are latency-bound editor/REPL interactions that must not queue
      // behind batch expansions in the worker pool.
      if (Req.Ty == Request::Type::SessionOpen) {
        std::string Sid;
        ErrorCode Code = ErrorCode::Internal;
        std::string Message;
        if (Opts.Sessions->open(Req, C->Tenant, Sid, Code, Message))
          C->send(makeSessionOpenedResponse(Req.Id, Sid));
        else
          C->send(makeErrorResponse(Req.Id, Code, Message));
      } else if (Req.Ty == Request::Type::SessionEval) {
        SessionEvalResult R;
        ErrorCode Code = ErrorCode::Internal;
        std::string Message;
        if (Opts.Sessions->eval(Req, R, Code, Message))
          C->send(makeSessionResultResponse(Req.Id, Req.Session, R));
        else
          C->send(makeErrorResponse(Req.Id, Code, Message));
      } else {
        uint64_t Evals = 0;
        if (Opts.Sessions->close(Req.Session, Evals))
          C->send(makeSessionClosedResponse(Req.Id, Req.Session, Evals));
        else
          C->send(makeErrorResponse(Req.Id, ErrorCode::SessionLost,
                                    "unknown session \"" + Req.Session +
                                        "\""));
      }
      break;
    }
    case Request::Type::ReloadLibrary:
    case Request::Type::Expand:
    case Request::Type::Lint: {
      if (C->FromTcp && Auth.required() && !C->Authenticated) {
        // The authenticated transport admits no anonymous work. Drop the
        // connection: the client is misconfigured, not overloaded.
        C->send(makeErrorResponse(Req.Id, ErrorCode::Unauthorized,
                                  "authenticate with a hello first"));
        C->waitQuiesced();
        return;
      }
      if (Req.Ty == Request::Type::ReloadLibrary) {
        Server::ReloadOutcome O =
            S.reloadLibrary(Req.Sources, Req.LoadStdlib);
        if (O.Success)
          C->send(makeReloadResponse(Req.Id, O.Generation, O.Changed));
        else
          C->send(makeErrorResponse(Req.Id, ErrorCode::ReloadFailed,
                                    O.Diagnostics));
        break;
      }
      RequestOptions RO;
      RO.MaxMetaSteps = Req.MaxMetaSteps;
      RO.TimeoutMillis = Req.TimeoutMillis;
      RO.UseCache = Req.UseCache;
      RO.Provenance = Req.Provenance;
      RO.LintOnly = Req.Ty == Request::Type::Lint;
      RO.Tag = Req.Id;
      RO.Tenant = C->Tenant;
      const bool IsLint = RO.LintOnly;
      C->beginRequest();
      std::string Id = Req.Id;
      std::shared_ptr<Conn> CRef = C;
      Server::Admission A = S.submit(
          {Req.Name, Req.Source, Req.Base}, std::move(RO),
          [CRef, Id, IsLint](const ExpandResult &R, uint64_t Gen) {
            CRef->send(IsLint ? makeLintResponse(Id, R, Gen)
                              : makeExpandResponse(Id, R, Gen));
            CRef->endRequest();
          });
      if (A == Server::Admission::Overloaded) {
        C->send(makeErrorResponse(Id, ErrorCode::Overloaded,
                                  "admission queue full; retry later"));
        C->endRequest();
      } else if (A == Server::Admission::Draining) {
        C->send(makeErrorResponse(Id, ErrorCode::ShuttingDown,
                                  "server is draining"));
        C->endRequest();
      } else if (A == Server::Admission::QuotaExceeded) {
        C->send(makeErrorResponse(
            Id, ErrorCode::QuotaExceeded,
            "tenant '" + C->Tenant + "' is at its admission quota"));
        C->endRequest();
      }
      break;
    }
    }
  }
  C->waitQuiesced();
}

//===----------------------------------------------------------------------===//
// FrameServer
//===----------------------------------------------------------------------===//

FrameServer::~FrameServer() {
  wake();
  for (std::thread &T : AcceptThreads)
    if (T.joinable())
      T.join();
  joinConnections();
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

bool FrameServer::start(const FrameServerOptions &O, ConnHandler H,
                        std::string *Err) {
  if (O.UnixPath.empty() && !O.TcpEnabled) {
    if (Err)
      *Err = "no listener configured";
    return false;
  }
  if (!O.UnixPath.empty() && !Unix.listenOn(O.UnixPath, Err))
    return false;
  if (O.TcpEnabled && !Tcp.listenOn(O.TcpHost, O.TcpPort, Err))
    return false;
  if (::pipe(WakePipe) != 0) {
    if (Err)
      *Err = "pipe failed";
    return false;
  }
  Handler = std::move(H);
  if (Unix.valid())
    AcceptThreads.emplace_back([this] { acceptLoopThread(false); });
  if (Tcp.valid())
    AcceptThreads.emplace_back([this] { acceptLoopThread(true); });
  return true;
}

void FrameServer::acceptLoopThread(bool IsTcp) {
  // Transient accept failures (fd exhaustion, injected server.accept
  // faults) back off exponentially — 1ms doubling to a 100ms cap — and
  // retry; the pending connection waits in the listen backlog meanwhile.
  // Success resets the backoff. Only a non-transient failure (the
  // listener itself died) gives up the loop.
  unsigned BackoffMs = 1;
  for (;;) {
    bool Woken = false;
    bool Transient = false;
    int Fd = IsTcp ? Tcp.acceptClient(WakePipe[0], Woken, &Transient)
                   : Unix.acceptClient(WakePipe[0], Woken, &Transient);
    if (Woken)
      return;
    if (Fd < 0) {
      if (Transient) {
        std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
        BackoffMs = std::min(BackoffMs * 2, 100u);
        continue;
      }
      // Listener death ends the whole daemon, not just this loop: wake
      // the sibling accept thread and the main thread.
      wake();
      return;
    }
    BackoffMs = 1;
    auto C = std::make_shared<Conn>(Fd, Fd, /*OwnsFds=*/true);
    C->FromTcp = IsTcp;
    ConnHandler &H = Handler;
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    Conns.push_back(C);
    ConnThreads.emplace_back([C, &H] { H(C); });
  }
}

void FrameServer::waitUntilWoken() {
  for (std::thread &T : AcceptThreads)
    if (T.joinable())
      T.join();
}

void FrameServer::wake() {
  if (WakePipe[1] >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &B, 1);
  }
}

void FrameServer::closeConnectionReads() {
  std::lock_guard<std::mutex> Lock(ConnsMutex);
  for (const std::weak_ptr<Conn> &W : Conns)
    if (std::shared_ptr<Conn> C = W.lock())
      ::shutdown(C->ReadFd, SHUT_RD);
}

void FrameServer::joinConnections() {
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
}
