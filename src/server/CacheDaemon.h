//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared remote cache tier (msq-cached): a shard-agnostic daemon
/// holding serialized content-addressed expansion entries, so any shard
/// — or a cold CI machine — can serve another's warm hits. It speaks
/// the same NDJSON framing as msqd (cache_get/cache_put/status/ping)
/// and stores entries in the EXACT on-disk format the local disk tier
/// uses ("MSQCACHE" blobs): a put is validated by deserializing against
/// its key, so a corrupt or mis-keyed blob is rejected at the door and
/// the tier can never serve bytes it could not itself decode.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SERVER_CACHEDAEMON_H
#define MSQ_SERVER_CACHEDAEMON_H

#include "server/Daemon.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace msq {

/// Thread-safe blob store keyed by content hash. Memory-resident, with
/// an optional disk directory for persistence across daemon restarts
/// (same entry naming as the local disk tier, so a shard's cache dir
/// can seed a daemon and vice versa).
class CacheStore {
public:
  /// \p DiskDir persists entries ("" = memory only). Created on demand;
  /// failures degrade silently to memory-only, like the local tier.
  explicit CacheStore(std::string DiskDir = "");

  /// True + bytes on hit (memory first, then disk).
  bool get(const std::string &Key, std::string &Bytes);

  /// Validates \p Bytes as a well-formed entry for \p Key and stores
  /// it; false when the blob fails validation (rejected, not stored).
  bool put(const std::string &Key, std::string Bytes);

  size_t entryCount() const;

  /// {"cached":{"entries":N,"bytes":N,"gets":N,"hits":N,"puts":N,
  ///   "rejected":N}}
  std::string metricsJson() const;

private:
  bool diskRead(const std::string &Key, std::string &Bytes);
  void diskWrite(const std::string &Key, const std::string &Bytes);

  mutable std::mutex Mutex;
  std::unordered_map<std::string, std::string> Entries;
  uint64_t TotalBytes = 0;
  uint64_t Gets = 0;
  uint64_t Hits = 0;
  uint64_t Puts = 0;
  uint64_t Rejected = 0;
  std::string Dir;
};

/// Per-connection loop of the cache daemon (ping/status/hello/
/// cache_get/cache_put; anything else is answered unknown_type).
void serveCacheConnection(const std::shared_ptr<Conn> &C, CacheStore &CS);

} // namespace msq

#endif // MSQ_SERVER_CACHEDAEMON_H
