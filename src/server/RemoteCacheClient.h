//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NDJSON client for the shared remote cache daemon (msq-cached): the
/// concrete RemoteCacheTier a shard attaches to its ExpansionCache in
/// cluster mode. One persistent TCP connection, re-dialed lazily after
/// any failure; every operation carries the PR-5 retry/degrade
/// discipline — evaluate the rcache.get / rcache.put injection point,
/// retry once on a fresh connection, then count a RemoteError and read
/// as a miss. Socket timeouts bound every stage, so a wedged daemon
/// costs bounded latency, never a hang; after a few consecutive
/// failures a breaker skips the remote tier for a while so a dead
/// daemon stops taxing the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SERVER_REMOTECACHECLIENT_H
#define MSQ_SERVER_REMOTECACHECLIENT_H

#include "cache/ExpansionCache.h"
#include "support/Socket.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace msq {

class RemoteCacheClient : public RemoteCacheTier {
public:
  /// \p Address is "HOST:PORT". Nothing is dialed until the first
  /// operation, so constructing against a not-yet-started daemon is
  /// fine. \p TimeoutMillis bounds connect-to-response per attempt.
  explicit RemoteCacheClient(std::string Address, int TimeoutMillis = 1000);

  bool get(const std::string &Key, std::string &Bytes,
           CacheStats &Stats) override;
  void put(const std::string &Key, const std::string &Bytes,
           CacheStats &Stats) override;

  const std::string &address() const { return Address; }

private:
  /// Sends \p Frame and reads one response frame. False on any
  /// connection-level failure (the connection is dropped for re-dial).
  /// Serialized: the protocol would allow pipelining, but cache ops are
  /// tiny and a single connection keeps failure handling simple.
  bool roundTrip(const std::string &Frame, std::string &Response);
  bool ensureConnected();

  /// Breaker: after ConsecutiveFailures reaches the trip threshold,
  /// operations no-op (miss / skip) for SkipBudget ops before probing
  /// again. Purely latency protection — correctness never depends on
  /// the remote tier answering.
  bool breakerOpen();
  void recordFailure();
  void recordSuccess();

  std::string Address;
  std::string Host;
  uint16_t Port = 0;
  int TimeoutMillis;
  bool AddressOk = false;

  std::mutex Mutex; ///< guards Fd and NextId (one op in flight at a time)
  FdHandle Fd;
  uint64_t NextId = 1;

  std::atomic<uint32_t> ConsecutiveFailures{0};
  std::atomic<int32_t> SkipRemaining{0};
};

} // namespace msq

#endif // MSQ_SERVER_REMOTECACHECLIENT_H
