//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster front end (msq-router): accepts the ordinary msqd wire
/// protocol and fans requests out over a pool of msqd shards.
///
/// Routing is a consistent-hash ring (virtual nodes per shard) keyed by
/// the request content — hash(unit name + source) — rather than by
/// client: the same unit always lands on the same shard, so each
/// shard's local expansion cache stays hot for its slice of the
/// keyspace and the pool's aggregate cache is the union, not N copies.
///
/// Failure discipline mirrors the cache tiers (retry once, then a
/// structured answer, never a hang):
///  * a shard that cannot be reached or answers `overloaded` costs one
///    retry on the ring successor;
///  * if the retry also gets no answer, the client receives a
///    `degraded` error — the request was NOT silently dropped;
///  * if the retry produced a shard answer (even `overloaded`), that
///    answer is relayed verbatim, so "every shard is saturated" surfaces
///    as `overloaded`, distinct from "shards are crashing" (`degraded`).
///
/// `reload_library` broadcasts to every shard (each owns a full library
/// session); `status` aggregates every shard's metrics under the
/// router's own counters. Auth tokens pass through: a client `hello` is
/// validated against a real shard, and the token is replayed on every
/// upstream connection opened for that client.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SERVER_ROUTER_H
#define MSQ_SERVER_ROUTER_H

#include "server/Daemon.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace msq {

struct RouterOptions {
  /// Shard addresses, "host:port" each. At least one.
  std::vector<std::string> Shards;
  /// Per-upstream-operation socket timeout.
  int TimeoutMillis = 10000;
  /// Virtual nodes per shard on the hash ring. More nodes smooth the
  /// key distribution; 64 keeps the spread within a few percent.
  unsigned VirtualNodes = 64;
};

class Router {
public:
  /// Validates and indexes the shard pool. Check ok() before serving;
  /// construction never dials — upstream connections are per-request.
  explicit Router(RouterOptions O);

  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }

  size_t shardCount() const { return Upstreams.size(); }
  const std::string &shardAddress(size_t Idx) const {
    return Upstreams[Idx].Addr;
  }

  /// The ring lookup: index of the shard owning \p Key. Deterministic
  /// across router restarts (the ring depends only on shard addresses).
  size_t shardFor(const std::string &Key) const;

  /// Routing key for an expand/lint request (content addressing: same
  /// unit, same shard, warm cache).
  static std::string routingKey(const std::string &Name,
                                const std::string &Source) {
    return Name + '\0' + Source;
  }

  /// The per-client-connection loop: parse frames, forward, relay.
  void serveConnection(const std::shared_ptr<Conn> &C);

  /// {"router":{"shards":N,"forwarded":N,"retries":N,"degraded":N,
  ///   "relayed_overloaded":N,"reload_broadcasts":N}}
  std::string metricsJson() const;

private:
  struct Upstream {
    std::string Addr; // as configured, for status reporting
    std::string Host;
    uint16_t Port = 0;
  };

  struct RingEntry {
    uint64_t Hash;
    size_t Shard;
    bool operator<(const RingEntry &O) const { return Hash < O.Hash; }
  };

  /// One request/response exchange with shard \p Idx on a fresh
  /// connection (prefixed by a `hello` replay when \p Token is set).
  /// True with the shard's response frame in \p Response; false when no
  /// answer could be obtained (connect/write/read failure or an injected
  /// router.* fault).
  bool callShard(size_t Idx, const std::string &Token,
                 const std::string &RequestFrame, std::string &Response);

  /// Forward with the retry-once discipline. Always produces a frame to
  /// send to the client (a relay or a structured error).
  std::string forward(size_t FirstShard, const std::string &Token,
                      const std::string &RequestFrame,
                      const std::string &Id);

  std::string handleHello(const std::string &Id, const std::string &Token,
                          std::string &Tenant, bool &Accepted);
  std::string handleStatus(const std::string &Id,
                           const std::string &Token);
  std::string handleReload(const std::string &Id, const std::string &Token,
                           const std::string &RequestFrame);

  std::vector<Upstream> Upstreams;
  std::vector<RingEntry> Ring;
  std::string Error;
  int TimeoutMillis;

  std::atomic<uint64_t> Forwarded{0};
  std::atomic<uint64_t> Retries{0};
  std::atomic<uint64_t> Degraded{0};
  std::atomic<uint64_t> RelayedOverloaded{0};
  std::atomic<uint64_t> ReloadBroadcasts{0};
};

} // namespace msq

#endif // MSQ_SERVER_ROUTER_H
