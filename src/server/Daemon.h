//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Daemon plumbing shared by every MS2 network process — msqd (shard),
/// msq-router (front end), and msq-cached (shared cache tier). Factored
/// out of msqd so all three speak the same framing, run the same accept
/// loop (wake-pipe shutdown, transient-failure backoff, fault
/// injection), and drain the same way.
///
///  * Conn — one client connection. Requests are pipelined: responses
///    may be written out of order from worker threads (correlated by
///    id), so the write side is mutex-guarded and failure-latching.
///  * FrameServer — listeners (Unix socket and/or TCP), a wake pipe for
///    signal-driven shutdown, and one handler thread per connection.
///  * AuthConfig / serveShardConnection — the msqd request dispatcher,
///    with per-connection tenant authentication for the TCP transport.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SERVER_DAEMON_H
#define MSQ_SERVER_DAEMON_H

#include "support/Socket.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace msq {

class Server;
class SessionManager;

/// One client connection. Thread-safe sends; beginRequest/endRequest
/// track in-flight asynchronous completions so teardown can wait for
/// them (waitQuiesced) before the fds close.
struct Conn {
  Conn(int ReadFd, int WriteFd, bool OwnsFds)
      : ReadFd(ReadFd), WriteFd(WriteFd), OwnsFds(OwnsFds) {}
  ~Conn();

  void send(const std::string &Frame);
  void beginRequest();
  void endRequest();
  /// Blocks until every submitted request has completed (its response
  /// written or dropped); called before closing the connection.
  void waitQuiesced();

  int ReadFd;
  int WriteFd;
  bool OwnsFds;
  std::mutex WriteMutex;
  bool Dead = false;

  std::mutex StateMutex;
  std::condition_variable Quiesced;
  size_t Outstanding = 0;

  /// Set by FrameServer when the connection arrived over TCP (the
  /// authenticated transport); Unix-socket and stdio peers are local and
  /// implicitly trusted.
  bool FromTcp = false;
  /// Tenant established by a `hello` (empty until then / for anonymous
  /// connections). Only the connection thread touches these.
  bool Authenticated = false;
  std::string Tenant;
};

/// Token -> tenant table for the TCP transport.
struct AuthConfig {
  std::map<std::string, std::string> TokenTenants;
  /// When the table is non-empty, TCP connections must open with a
  /// `hello` naming a known token before any expand/lint/reload;
  /// status/ping stay unauthenticated (health checks). When the table is
  /// empty, hello is optional and the token names the tenant directly
  /// (trusted single-operator mode).
  bool required() const { return !TokenTenants.empty(); }
};

/// Optional per-connection behavior for the shard dispatcher. Defaulted
/// so transports that want the classic batch-only loop (msq-router's
/// tests, simple embedders) pass nothing.
struct ShardServeOptions {
  /// Interactive session manager; null refuses session_* requests with
  /// `unknown_type` (this daemon does not serve sessions).
  SessionManager *Sessions = nullptr;
  /// Drop a connection after this long without a frame (Server counts it
  /// as an idle disconnect). 0 = wait forever.
  unsigned IdleTimeoutMillis = 0;
};

/// The msqd per-connection request loop: parse frames, dispatch onto
/// \p S, answer asynchronously. Returns when the peer disconnects, idles
/// out, the stream breaks, or an unrecoverable protocol error forces a
/// drop.
void serveShardConnection(const std::shared_ptr<Conn> &C, Server &S,
                          const AuthConfig &Auth,
                          const ShardServeOptions &Opts = {});

struct FrameServerOptions {
  /// Unix-domain listener path ("" = none).
  std::string UnixPath;
  /// TCP listener: Enabled + host + port (0 = kernel-assigned; read the
  /// real port back from FrameServer::tcpPort()).
  bool TcpEnabled = false;
  std::string TcpHost = "127.0.0.1";
  uint16_t TcpPort = 0;
};

/// Accept machinery shared by the daemons: one accept thread per
/// listener, exponential backoff on transient failures, a wake pipe any
/// signal handler can poke, and per-connection handler threads.
class FrameServer {
public:
  using ConnHandler = std::function<void(std::shared_ptr<Conn>)>;

  FrameServer() = default;
  ~FrameServer();
  FrameServer(const FrameServer &) = delete;
  FrameServer &operator=(const FrameServer &) = delete;

  /// Binds the configured listeners and starts accepting; \p Handler
  /// runs on a fresh thread per connection. False with \p Err on any
  /// bind failure.
  bool start(const FrameServerOptions &O, ConnHandler Handler,
             std::string *Err);

  /// Blocks until wake() (typically from a signal handler) or until
  /// every listener has died; accept threads are joined on return.
  void waitUntilWoken();

  /// Pokes the wake pipe (async-signal-safe once start() returned).
  void wake();
  int wakeWriteFd() const { return WakePipe[1]; }

  /// Half-closes every live connection's read side so handler threads
  /// see EOF after their current frame (the drain sequence), then...
  void closeConnectionReads();
  /// ...joins every handler thread. Call after the owning Server
  /// drained, so completions have already been written.
  void joinConnections();

  uint16_t tcpPort() const { return Tcp.port(); }
  const std::string &unixPath() const { return Unix.path(); }

private:
  void acceptLoopThread(bool IsTcp);

  UnixListener Unix;
  TcpListener Tcp;
  int WakePipe[2] = {-1, -1};
  ConnHandler Handler;

  std::vector<std::thread> AcceptThreads;
  std::mutex ConnsMutex;
  std::vector<std::weak_ptr<Conn>> Conns;
  std::vector<std::thread> ConnThreads;
};

} // namespace msq

#endif // MSQ_SERVER_DAEMON_H
