//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The msqd expansion server core: a long-lived request scheduler on top
/// of the engine/driver machinery, independent of any transport (the
/// daemon bolts sockets on, tests call it in-process).
///
/// Architecture:
///  * ADMISSION — a bounded queue. submit() never blocks: a full queue
///    yields Admission::Overloaded immediately (the caller answers with
///    an `overloaded` error; clients retry), and a draining server yields
///    Admission::Draining. Backpressure is therefore explicit and
///    cheap — no hidden unbounded buffering, no hangs.
///  * WORKERS — a fixed pool. Each worker lazily owns a private Engine
///    rebuilt from the current library's SessionSnapshot (the same
///    replay primitive the batch driver uses) and restores a checkpoint
///    before every request, so requests are isolated and output is a
///    function of (library, request) alone — byte-identical to a
///    one-shot CLI expansion of the same unit.
///  * GENERATIONS — reloadLibrary() builds the new library off to the
///    side, then atomically swaps it in. Jobs capture the library state
///    at admission, so everything admitted before the swap still runs
///    (and caches) against the old library. The generation number only
///    advances when the library FINGERPRINT changes; an idempotent
///    reload keeps generation, worker engines, and cache entries alive.
///    On a real change, the content-addressed cache invalidates
///    selectively: the reload diffs the old and new libraries'
///    per-definition fingerprints (expand/DependencyMap.h) and REKEYS
///    every memory-tier entry whose recorded dependencies the delta
///    cannot reach onto the new fingerprint — a macro-body edit keeps
///    every unit that never invoked the macro warm across the reload.
///    Entries the delta can reach (and old-fingerprint stragglers) are
///    pruned via ExpansionCache::evictGenerationsBefore.
///  * OBSERVABILITY — counters, a latency histogram (p50/p95/p99), the
///    cache stats (including disk-tier failure counters), an aggregate
///    per-macro profile, per-point fault-injection counters, and an
///    optional structured log sink receiving one JSON line per completed
///    or rejected request.
///  * DEGRADATION — a worker-engine spawn failure (server.worker_spawn)
///    is retried with capped exponential backoff, then surfaced as a
///    structured per-request error; a worker crash mid-request
///    (server.worker_crash or a real escaping exception) is converted
///    into a structured error result, so an Accepted request's completion
///    ALWAYS runs — connections are answered, never dropped.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SERVER_SERVER_H
#define MSQ_SERVER_SERVER_H

#include "api/Msq.h"
#include "expand/DependencyMap.h"
#include "support/Histogram.h"
#include "support/Metrics.h"

#include <map>
#include <set>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace msq {

class ExpansionCache;

struct ServerOptions {
  /// Expansion options for the library session and every worker engine
  /// (fuel, timeout, hygiene, pattern compilation, cache settings...).
  Engine::Options EngineOpts;
  /// Worker threads; 0 picks the hardware concurrency.
  unsigned Workers = 0;
  /// Admission queue bound; a submit beyond it is rejected Overloaded.
  size_t QueueCapacity = 256;
  /// Per-tenant admission quota: at most this many requests from one
  /// tenant queued or running at once; a submit beyond it is rejected
  /// QuotaExceeded (so one noisy tenant cannot consume the whole queue).
  /// 0 disables quotas.
  size_t TenantQuota = 0;
  /// Address ("HOST:PORT") of a shared remote cache daemon (msq-cached).
  /// When set (and caching is on), lookups that miss both local tiers
  /// probe the remote tier, and stores publish to it — so a cold shard
  /// can serve another shard's warm hits. Empty = no remote tier.
  std::string RemoteCacheAddr;
  /// Structured request log: called with one JSON line per event
  /// (request completion, rejection, reload, drain). May be empty; must
  /// be thread-safe — workers call it concurrently.
  std::function<void(const std::string &)> LogSink;
};

/// Per-request knobs carried alongside the unit.
struct RequestOptions {
  /// Per-request fuel/timeout overrides; 0 inherits the server default.
  uint64_t MaxMetaSteps = 0;
  uint64_t TimeoutMillis = 0;
  /// Allows this request to read/write the expansion cache.
  bool UseCache = true;
  /// Opt into expansion provenance for this request: diagnostics carry
  /// "in expansion of" backtraces and the result carries a source map.
  /// The effective flag is part of the cache key, so provenance-on and
  /// provenance-off requests for the same unit never share an entry.
  bool Provenance = false;
  /// Lint-only request: parse the unit, lint the definitions it
  /// contributes, and return the findings in ExpandResult::Lints without
  /// expanding anything. Never cached (linting is cheap and the result
  /// shape differs from an expansion).
  bool LintOnly = false;
  /// Opaque tag echoed in the structured log (the daemon passes the
  /// protocol request id).
  std::string Tag;
  /// Tenant this request is accounted to (from the connection's auth
  /// token). Empty means the default tenant; quotas and per-tenant
  /// counters apply to every named value including "".
  std::string Tenant;
};

class Server {
public:
  explicit Server(ServerOptions SO);
  ~Server(); ///< Drains (completes everything admitted) and joins.
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  enum class Admission { Accepted, Overloaded, Draining, QuotaExceeded };

  /// Completion callback: runs on a worker thread, once, with the result
  /// and the generation of the library the request ran against.
  using Completion = std::function<void(const ExpandResult &, uint64_t)>;

  /// Non-blocking admission. On Accepted the completion WILL run (drain
  /// completes all admitted requests); on Overloaded/Draining it never
  /// runs and the caller must answer the client itself.
  Admission submit(SourceUnit Unit, RequestOptions RO, Completion Done);

  /// Synchronous convenience: submit + wait. Out is only filled on
  /// Accepted.
  Admission expand(SourceUnit Unit, const RequestOptions &RO,
                   ExpandResult &Out, uint64_t *Generation = nullptr);

  struct ReloadOutcome {
    bool Success = false;
    /// False when the new library fingerprints identically to the old
    /// one (an idempotent reload: nothing was invalidated).
    bool Changed = false;
    uint64_t Generation = 0;
    std::string Diagnostics; ///< Rendered diagnostics on failure.
  };

  /// Atomically replaces the macro library with (stdlib? + sources),
  /// expanding them in order into a fresh session. On any diagnostic
  /// error the old library is kept and Success is false. In-flight and
  /// already-admitted requests finish against the library they were
  /// admitted under.
  ReloadOutcome reloadLibrary(const std::vector<SourceUnit> &Sources,
                              bool LoadStdlib);

  /// Stops admitting (subsequent submits -> Draining) and returns once
  /// every admitted request has completed. Idempotent.
  void drain();
  bool draining() const;

  /// Server-level metrics as one JSON object:
  /// {"server":{"admitted":N,"rejected_overloaded":N,...,
  ///   "latency":{"count":N,"p50_us":N,"p95_us":N,"p99_us":N,...}},
  ///  "cache":<CacheStats> (when caching), "aggregate":<profile>,
  ///  "tenants":{"<name>":{"admitted":N,"completed":N,
  ///    "rejected_quota":N,"in_flight":N},...},
  ///  "faults":<fault::statsJson(): per-point injection counters>}
  std::string metricsJson() const;

  uint64_t generation() const;
  size_t queueDepth() const;
  unsigned workerCount() const { return unsigned(Threads.size()); }
  const ServerOptions &options() const { return SO; }

  /// The current library incarnation as a replayable snapshot (interactive
  /// sessions seed their private engines from it) plus its generation.
  SessionSnapshot librarySnapshot(uint64_t *Generation = nullptr) const;

  /// Counts a connection dropped by the transport idle timeout (the
  /// daemon calls this; surfaced as "idle_disconnects" in metricsJson).
  void noteIdleDisconnect() { ++IdleDisconnects; }

private:
  /// One immutable, refcounted macro-library incarnation.
  struct LibraryState {
    SessionSnapshot Snap;
    std::string Fingerprint;
    bool Stable = false;
    uint64_t Generation = 0;
    /// Per-definition fingerprints of this incarnation: diffed against
    /// the next reload's capture to classify the delta for selective
    /// cache invalidation.
    DefinitionFingerprints DefFP;
    /// Names of the library source units (diagnostics or source maps
    /// that render one of them pin a cache entry to this library text).
    std::vector<std::string> UnitNames;
  };

  struct Job {
    SourceUnit Unit;
    RequestOptions RO;
    Completion Done;
    std::shared_ptr<const LibraryState> Lib;
    std::chrono::steady_clock::time_point Admitted;
  };

  /// Per-worker engine state, rebuilt whenever the generation moves.
  struct WorkerEngine {
    std::unique_ptr<Engine> E;
    Engine::SessionCheckpoint Baseline;
    uint64_t Generation = UINT64_MAX;
  };

  void workerLoop();
  ExpandResult processJob(const Job &J, WorkerEngine &W, bool &FromCache,
                          CacheStats &Stats);
  void log(const std::string &Line) const;

  ServerOptions SO;

  // Library (swapped by reloadLibrary, read at admission).
  mutable std::mutex LibMutex;
  std::shared_ptr<const LibraryState> Lib;
  std::mutex ReloadMutex; ///< serializes whole reloads, not just the swap

  std::shared_ptr<ExpansionCache> Cache; ///< null when caching is off

  /// What one stored cache entry depended on — enough to decide, at the
  /// next reload, whether the entry survives the library delta (rekeyed
  /// to the new fingerprint) or dies with its generation. Keyed by the
  /// entry's cache key.
  struct CacheLedgerEntry {
    SourceUnit Unit;
    size_t EffSteps = 0;
    bool Provenance = false;
    /// Fingerprint of the library the key was built under: only entries
    /// keyed under the OUTGOING library are candidates for rekeying.
    std::string LibFingerprint;
    UnitDeps Deps;
    /// Identifiers in the unit source (the PatternChanged rule).
    std::set<std::string> Idents;
    bool CreatedGensyms = false;
    /// Diagnostics or source map render a library unit's name.
    bool RefsLibText = false;
  };
  std::mutex LedgerMutex;
  std::map<std::string, CacheLedgerEntry> Ledger;

  // Scheduler.
  mutable std::mutex QueueMutex;
  std::condition_variable WorkCv;  ///< workers wait for jobs / drain
  std::condition_variable IdleCv;  ///< drain waits for quiescence
  std::deque<Job> Queue;
  size_t ActiveJobs = 0;
  bool Draining_ = false;
  std::vector<std::thread> Threads;

  /// Per-tenant accounting, guarded by QueueMutex (updated at admission
  /// and completion, exactly where the global queue counters move).
  struct TenantState {
    uint64_t Admitted = 0;
    uint64_t Completed = 0;
    uint64_t RejectedQuota = 0;
    size_t InFlight = 0; ///< queued + running
  };
  std::map<std::string, TenantState> Tenants;

  // Metrics. Scalars are atomics (bumped at admission, under QueueMutex
  // neighbours); compound state sits behind MetricsMutex.
  std::atomic<uint64_t> Admitted{0};
  std::atomic<uint64_t> RejectedOverloaded{0};
  std::atomic<uint64_t> RejectedDraining{0};
  std::atomic<uint64_t> RejectedQuota{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Failed{0};
  std::atomic<uint64_t> Reloads{0};
  /// Cache entries carried across a changing reload because the library
  /// delta provably cannot reach them / dropped because it can.
  std::atomic<uint64_t> ReloadRekeyed{0};
  std::atomic<uint64_t> ReloadInvalidated{0};
  std::atomic<uint64_t> IdleDisconnects{0};
  mutable std::mutex MetricsMutex;
  LatencyHistogram Latency;
  CacheStats CacheTotals;
  ExpansionProfile Aggregate;
};

} // namespace msq

#endif // MSQ_SERVER_SERVER_H
