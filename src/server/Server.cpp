//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "cache/ExpansionCache.h"
#include "driver/BatchDriver.h"
#include "server/RemoteCacheClient.h"
#include "support/Fault.h"
#include "support/ThreadPool.h"

#include <future>
#include <thread>

using namespace msq;

namespace {

/// Worker-spawn retries before the request is answered with a structured
/// error; backoff doubles from 1ms and is capped at SpawnBackoffCapMs.
constexpr int SpawnAttempts = 4;
constexpr unsigned SpawnBackoffCapMs = 8;

/// Identifier spellings appearing anywhere in \p Source. A textual scan
/// over-approximates the token identifier set (it also hits comments and
/// string literals), which is the safe direction for the dependency
/// map's pattern rule.
std::set<std::string> identifiersIn(const std::string &Source) {
  std::set<std::string> Out;
  size_t I = 0, N = Source.size();
  auto Start = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
  };
  auto Cont = [&](char C) { return Start(C) || (C >= '0' && C <= '9'); };
  while (I < N) {
    if (Start(Source[I])) {
      size_t B = I;
      while (I < N && Cont(Source[I]))
        ++I;
      Out.insert(Source.substr(B, I - B));
    } else {
      ++I;
    }
  }
  return Out;
}

} // namespace

Server::Server(ServerOptions Opts) : SO(std::move(Opts)) {
  if (SO.EngineOpts.EnableExpansionCache) {
    Cache = std::make_shared<ExpansionCache>(SO.EngineOpts.ExpansionCacheDir);
    if (!SO.RemoteCacheAddr.empty())
      Cache->attachRemote(
          std::make_shared<RemoteCacheClient>(SO.RemoteCacheAddr));
  }
  // Establish generation 1 with an empty library so submit() always has
  // a state to run against; real deployments reload immediately after.
  ReloadOutcome First = reloadLibrary({}, /*LoadStdlib=*/false);
  (void)First; // an empty library cannot fail to load
  unsigned Workers = ThreadPool::chooseWorkerCount(SO.Workers, 0);
  Threads.reserve(Workers);
  for (unsigned W = 0; W != Workers; ++W)
    Threads.emplace_back([this] { workerLoop(); });
}

Server::~Server() {
  drain();
  for (std::thread &T : Threads)
    T.join();
}

void Server::log(const std::string &Line) const {
  if (SO.LogSink)
    SO.LogSink(Line);
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

Server::Admission Server::submit(SourceUnit Unit, RequestOptions RO,
                                 Completion Done) {
  Job J;
  J.Unit = std::move(Unit);
  J.RO = std::move(RO);
  J.Done = std::move(Done);
  J.Admitted = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> Lock(LibMutex);
    J.Lib = Lib;
  }
  size_t Depth;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Draining_) {
      ++RejectedDraining;
      log("{\"event\":\"reject\",\"reason\":\"draining\",\"tag\":\"" +
          jsonEscape(J.RO.Tag) + "\",\"unit\":\"" + jsonEscape(J.Unit.Name) +
          "\"}");
      return Admission::Draining;
    }
    if (Queue.size() >= SO.QueueCapacity) {
      ++RejectedOverloaded;
      log("{\"event\":\"reject\",\"reason\":\"overloaded\",\"tag\":\"" +
          jsonEscape(J.RO.Tag) + "\",\"unit\":\"" + jsonEscape(J.Unit.Name) +
          "\",\"queue_depth\":" + std::to_string(Queue.size()) + "}");
      return Admission::Overloaded;
    }
    TenantState &TS = Tenants[J.RO.Tenant];
    if (SO.TenantQuota && TS.InFlight >= SO.TenantQuota) {
      ++RejectedQuota;
      ++TS.RejectedQuota;
      log("{\"event\":\"reject\",\"reason\":\"quota\",\"tenant\":\"" +
          jsonEscape(J.RO.Tenant) + "\",\"tag\":\"" + jsonEscape(J.RO.Tag) +
          "\",\"unit\":\"" + jsonEscape(J.Unit.Name) +
          "\",\"in_flight\":" + std::to_string(TS.InFlight) + "}");
      return Admission::QuotaExceeded;
    }
    ++Admitted;
    ++TS.Admitted;
    ++TS.InFlight;
    Queue.push_back(std::move(J));
    Depth = Queue.size();
  }
  (void)Depth;
  WorkCv.notify_one();
  return Admission::Accepted;
}

Server::Admission Server::expand(SourceUnit Unit, const RequestOptions &RO,
                                 ExpandResult &Out, uint64_t *Generation) {
  std::promise<std::pair<ExpandResult, uint64_t>> P;
  std::future<std::pair<ExpandResult, uint64_t>> F = P.get_future();
  Admission A = submit(std::move(Unit), RO,
                       [&P](const ExpandResult &R, uint64_t Gen) {
                         P.set_value({R, Gen});
                       });
  if (A != Admission::Accepted)
    return A;
  std::pair<ExpandResult, uint64_t> V = F.get();
  Out = std::move(V.first);
  if (Generation)
    *Generation = V.second;
  return Admission::Accepted;
}

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

void Server::workerLoop() {
  WorkerEngine W;
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      WorkCv.wait(Lock, [this] { return !Queue.empty() || Draining_; });
      if (Queue.empty())
        return; // draining and nothing left
      J = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveJobs;
    }

    bool FromCache = false;
    CacheStats Stats;
    ExpandResult R;
    try {
      R = processJob(J, W, FromCache, Stats);
    } catch (const std::exception &Ex) {
      // A worker crash (injected via server.worker_crash, or a real
      // defect escaping the engine) becomes a structured per-request
      // error: the completion still runs, so the connection is answered,
      // never dropped. The engine state is unpredictable after a crash —
      // drop it and let the next request rebuild from the snapshot.
      R = ExpandResult();
      R.Name = J.Unit.Name;
      R.Success = false;
      R.FaultInjected =
          dynamic_cast<const fault::InjectedCrash *>(&Ex) != nullptr;
      R.DiagnosticsText = "error: expansion worker crashed on unit '" +
                          J.Unit.Name + "': " + Ex.what() + "\n";
      W.E.reset();
      W.Generation = UINT64_MAX;
    }

    uint64_t LatencyNs = uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - J.Admitted)
            .count());
    ++Completed;
    if (!R.Success)
      ++Failed;
    {
      std::lock_guard<std::mutex> Lock(MetricsMutex);
      Latency.record(LatencyNs);
      CacheTotals.merge(Stats);
      Aggregate.merge(R.Profile);
    }
    log("{\"event\":\"request\",\"tag\":\"" + jsonEscape(J.RO.Tag) +
        "\",\"unit\":\"" + jsonEscape(J.Unit.Name) +
        "\",\"generation\":" + std::to_string(J.Lib->Generation) +
        ",\"cached\":" + (FromCache ? "true" : "false") +
        ",\"success\":" + (R.Success ? "true" : "false") +
        ",\"latency_us\":" + std::to_string(LatencyNs / 1000) + "}");

    // Completion runs outside every server lock: it may write to a
    // socket, block, or re-enter the server.
    if (J.Done)
      J.Done(R, J.Lib->Generation);

    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --ActiveJobs;
      TenantState &TS = Tenants[J.RO.Tenant];
      ++TS.Completed;
      if (TS.InFlight)
        --TS.InFlight;
      if (Queue.empty() && ActiveJobs == 0)
        IdleCv.notify_all();
    }
  }
}

ExpandResult Server::processJob(const Job &J, WorkerEngine &W,
                                bool &FromCache, CacheStats &Stats) {
  const LibraryState &LS = *J.Lib;
  const size_t EffSteps = J.RO.MaxMetaSteps ? size_t(J.RO.MaxMetaSteps)
                                            : SO.EngineOpts.MaxMetaSteps;
  const unsigned EffTimeout = J.RO.TimeoutMillis
                                  ? unsigned(J.RO.TimeoutMillis)
                                  : SO.EngineOpts.UnitTimeoutMillis;

  // Per-request provenance opt-in, on top of a server-wide default.
  const bool EffProv =
      SO.EngineOpts.TrackProvenance || J.RO.Provenance;
  const bool EffMap =
      SO.EngineOpts.EmitSourceMap || J.RO.Provenance;

  // Cache probe — the exact keying discipline of BatchDriver::run, so
  // the daemon and batch CLI share entries for identical requests. The
  // effective provenance flag is part of the key: a provenance-off entry
  // must never satisfy a provenance-on request (its diagnostics lack the
  // backtraces) or vice versa.
  const bool TryCache = Cache && J.RO.UseCache && !J.RO.LintOnly &&
                        LS.Stable && !SO.EngineOpts.TraceExpansions;
  std::string Key;
  if (TryCache) {
    Key = expansionCacheKey(LS.Fingerprint, J.Unit, EffSteps,
                            SO.EngineOpts.CollectProfile, EffProv);
    CachedExpansion CE;
    if (Cache->lookup(Key, CE, Stats)) {
      FromCache = true;
      return expandResultFromCache(J.Unit.Name, CE);
    }
  }

  // Engines survive across requests of one generation; a generation move
  // rebuilds from the (new) snapshot. Requests admitted under the old
  // library keep its snapshot alive through their Job::Lib reference, so
  // a mid-drain mix of generations is handled by rebuilding per job.
  //
  // Spawning is transient-failure territory (server.worker_spawn; for
  // real deployments, bad_alloc under memory pressure): retry with capped
  // exponential backoff, then answer THIS request with a structured error
  // — the worker itself stays up and the next request tries again.
  if (!W.E || W.Generation != LS.Generation) {
    BatchOptions BO;
    BO.CollectProfile = SO.EngineOpts.CollectProfile;
    std::chrono::milliseconds Backoff{1};
    for (int Attempt = 0;; ++Attempt) {
      bool SpawnFailed =
          fault::enabled() &&
          fault::shouldFail(fault::Point::ServerWorkerSpawn);
      if (!SpawnFailed) {
        try {
          W.E = BatchDriver::buildWorkerEngine(LS.Snap, BO);
        } catch (const std::exception &) {
          SpawnFailed = true;
        }
      }
      if (!SpawnFailed)
        break;
      if (Attempt + 1 == SpawnAttempts) {
        ExpandResult R;
        R.Name = J.Unit.Name;
        R.Success = false;
        R.FaultInjected = true;
        R.DiagnosticsText =
            "error: could not spawn expansion worker for unit '" +
            J.Unit.Name + "' (" + std::to_string(SpawnAttempts) +
            " attempts)\n";
        return R;
      }
      std::this_thread::sleep_for(Backoff);
      if (Backoff < std::chrono::milliseconds(SpawnBackoffCapMs))
        Backoff *= 2;
    }
    W.Baseline = W.E->checkpoint();
    W.Generation = LS.Generation;
  }
  W.E->restoreCheckpoint(W.Baseline);
  W.E->setUnitLimits(EffSteps, EffTimeout);
  W.E->setProvenanceOptions(EffProv, EffMap);

  if (J.RO.LintOnly) {
    Engine::LintResult LR = W.E->lintSource(J.Unit);
    ExpandResult R;
    R.Name = LR.Name;
    R.Success = LR.Success;
    R.DiagnosticsText = std::move(LR.DiagnosticsText);
    R.Lints = std::move(LR.Report.Findings);
    return R;
  }

  // server.worker_crash: the worker dies mid-request. Modeled as a thrown
  // exception so it exercises the same recovery path as a real escaping
  // defect; workerLoop catches it and answers with a structured error.
  if (fault::enabled() &&
      fault::shouldFail(fault::Point::ServerWorkerCrash))
    throw fault::InjectedCrash("injected crash at server.worker_crash");

  // Deps are recorded only when the result may be stored: they are what
  // lets the next reload carry the entry across a library delta.
  DependencyRecorder Rec;
  Engine::ReexpandHooks Hooks;
  if (TryCache)
    Hooks.Deps = &Rec;
  ExpandResult R = W.E->reexpand(J.Unit, Hooks);
  if (Cache && J.RO.UseCache && !J.RO.LintOnly) {
    if (TryCache && expansionResultCacheable(R)) {
      ++Stats.Misses;
      Cache->store(Key, cachedExpansionFromResult(R), Stats);

      CacheLedgerEntry LE;
      LE.Unit = J.Unit;
      LE.EffSteps = EffSteps;
      LE.Provenance = EffProv;
      LE.LibFingerprint = LS.Fingerprint;
      LE.Deps = Rec.take();
      // Mutated meta globals (or an injected fault) have effects the
      // recorder cannot attribute; such entries never survive a delta.
      LE.Deps.Unknown |=
          R.MetaGlobalsMutated || R.FaultInjected || R.Quarantined;
      LE.Idents = identifiersIn(J.Unit.Source);
      LE.CreatedGensyms = R.GensymsCreated > 0;
      for (const std::string &LibName : LS.UnitNames)
        if (R.DiagnosticsText.find(LibName) != std::string::npos ||
            R.SourceMapJson.find(LibName) != std::string::npos) {
          LE.RefsLibText = true;
          break;
        }
      std::lock_guard<std::mutex> Lock(LedgerMutex);
      Ledger[Key] = std::move(LE);
    } else {
      ++Stats.Uncacheable;
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Library reload
//===----------------------------------------------------------------------===//

Server::ReloadOutcome
Server::reloadLibrary(const std::vector<SourceUnit> &Sources,
                      bool LoadStdlib) {
  std::lock_guard<std::mutex> ReloadLock(ReloadMutex);
  ReloadOutcome O;

  // Build the candidate session entirely off to the side; the live
  // library stays untouched until the swap.
  auto Candidate = std::make_unique<Engine>(SO.EngineOpts);
  if (LoadStdlib && !Candidate->loadStandardLibrary()) {
    O.Diagnostics = "standard macro library failed to load";
    return O;
  }
  for (const SourceUnit &S : Sources) {
    ExpandResult R = Candidate->expandSource(S);
    if (!R.Success) {
      O.Diagnostics = R.DiagnosticsText;
      return O;
    }
  }

  auto NewLib = std::make_shared<LibraryState>();
  NewLib->Snap = Candidate->snapshot();
  NewLib->Fingerprint = Candidate->stateFingerprint(&NewLib->Stable);
  std::vector<std::string> LibText;
  for (const SourceUnit &S : Sources) {
    NewLib->UnitNames.push_back(S.Name);
    LibText.push_back(S.Name);
    LibText.push_back(S.Source);
  }
  NewLib->DefFP = Candidate->definitionFingerprints(LibText);

  uint64_t NewGen;
  bool Changed;
  std::shared_ptr<const LibraryState> OldLib;
  {
    std::lock_guard<std::mutex> Lock(LibMutex);
    // An idempotent reload (same fingerprint, both stable) keeps the
    // generation: worker engines stay warm and every cache entry keeps
    // hitting. Anything else advances it.
    Changed = !Lib || !NewLib->Stable || !Lib->Stable ||
              Lib->Fingerprint != NewLib->Fingerprint;
    NewGen = Lib ? (Changed ? Lib->Generation + 1 : Lib->Generation) : 1;
    NewLib->Generation = NewGen;
    OldLib = Lib;
    Lib = NewLib;
  }
  uint64_t Rekeyed = 0, Invalidated = 0;
  if (Cache && Changed) {
    // Selective invalidation: classify the old->new delta and REKEY
    // every ledgered entry the delta provably cannot reach onto the new
    // fingerprint — those units would expand byte-identically under the
    // new library, so their entries stay warm across the reload. Every
    // other old-fingerprint key is pruned. (In-flight old-generation
    // requests may still store a few entries afterwards — they are swept
    // by the next changing reload.)
    Cache->setGeneration(NewGen);
    if (OldLib && OldLib->Stable && NewLib->Stable) {
      LibraryDelta Delta = diffDefinitions(OldLib->DefFP, NewLib->DefFP);
      // With definition-time linting on, every result embeds findings
      // over the WHOLE library (the incremental driver dirties the world
      // for the same reason).
      const bool LintAll = SO.EngineOpts.Lint.Enabled && Delta.AnyChange;
      std::lock_guard<std::mutex> Lock(LedgerMutex);
      DependencyMap DM;
      for (const auto &[Key, LE] : Ledger)
        DM.add(Key, LE.Deps);
      // Two passes: decide first, move second — reinserting under the
      // new key while iterating could revisit the moved node.
      std::vector<std::pair<std::string, std::string>> Moves;
      for (auto It = Ledger.begin(); It != Ledger.end();) {
        const std::string &Key = It->first;
        const CacheLedgerEntry &LE = It->second;
        bool Dirty = Delta.FullReset || LintAll ||
                     LE.LibFingerprint != OldLib->Fingerprint ||
                     DM.isDirty(Key, Delta, &LE.Idents) ||
                     (Delta.GensymBaseChanged && LE.CreatedGensyms) ||
                     (Delta.LibraryTextChanged && LE.RefsLibText);
        if (!Dirty) {
          Moves.emplace_back(Key, expansionCacheKey(
                                      NewLib->Fingerprint, LE.Unit,
                                      LE.EffSteps,
                                      SO.EngineOpts.CollectProfile,
                                      LE.Provenance));
          ++It;
        } else {
          ++Invalidated;
          It = Ledger.erase(It);
        }
      }
      for (auto &[OldKey, NewKey] : Moves) {
        // rekey can miss if the memory tier already dropped the entry
        // (e.g. it only ever lived on disk); then the ledger drops too.
        if (Cache->rekey(OldKey, NewKey)) {
          ++Rekeyed;
          auto Node = Ledger.extract(OldKey);
          Node.mapped().LibFingerprint = NewLib->Fingerprint;
          Node.key() = std::move(NewKey);
          Ledger.insert(std::move(Node));
        } else {
          ++Invalidated;
          Ledger.erase(OldKey);
        }
      }
    } else {
      std::lock_guard<std::mutex> Lock(LedgerMutex);
      Invalidated = Ledger.size();
      Ledger.clear();
    }
    Cache->evictGenerationsBefore(NewGen);
  }
  ReloadRekeyed += Rekeyed;
  ReloadInvalidated += Invalidated;
  ++Reloads;
  log("{\"event\":\"reload\",\"generation\":" + std::to_string(NewGen) +
      ",\"changed\":" + (Changed ? "true" : "false") +
      ",\"sources\":" + std::to_string(Sources.size()) +
      ",\"rekeyed\":" + std::to_string(Rekeyed) +
      ",\"invalidated\":" + std::to_string(Invalidated) +
      ",\"stdlib\":" + (LoadStdlib ? "true" : "false") + "}");

  O.Success = true;
  O.Changed = Changed;
  O.Generation = NewGen;
  return O;
}

//===----------------------------------------------------------------------===//
// Lifecycle and observability
//===----------------------------------------------------------------------===//

void Server::drain() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (!Draining_)
      log("{\"event\":\"drain\",\"queue_depth\":" +
          std::to_string(Queue.size()) + "}");
    Draining_ = true;
  }
  WorkCv.notify_all();
  std::unique_lock<std::mutex> Lock(QueueMutex);
  IdleCv.wait(Lock, [this] { return Queue.empty() && ActiveJobs == 0; });
}

bool Server::draining() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Draining_;
}

uint64_t Server::generation() const {
  std::lock_guard<std::mutex> Lock(LibMutex);
  return Lib ? Lib->Generation : 0;
}

size_t Server::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Queue.size();
}

SessionSnapshot Server::librarySnapshot(uint64_t *Generation) const {
  std::shared_ptr<const LibraryState> LS;
  {
    std::lock_guard<std::mutex> Lock(LibMutex);
    LS = Lib;
  }
  if (Generation)
    *Generation = LS ? LS->Generation : 0;
  return LS ? LS->Snap : SessionSnapshot();
}

std::string Server::metricsJson() const {
  std::string Out = "{\"server\":{\"admitted\":";
  Out += std::to_string(Admitted.load());
  Out += ",\"rejected_overloaded\":";
  Out += std::to_string(RejectedOverloaded.load());
  Out += ",\"rejected_draining\":";
  Out += std::to_string(RejectedDraining.load());
  Out += ",\"rejected_quota\":";
  Out += std::to_string(RejectedQuota.load());
  Out += ",\"completed\":";
  Out += std::to_string(Completed.load());
  Out += ",\"failed\":";
  Out += std::to_string(Failed.load());
  Out += ",\"reloads\":";
  Out += std::to_string(Reloads.load());
  Out += ",\"reload_rekeyed\":";
  Out += std::to_string(ReloadRekeyed.load());
  Out += ",\"reload_invalidated\":";
  Out += std::to_string(ReloadInvalidated.load());
  Out += ",\"idle_disconnects\":";
  Out += std::to_string(IdleDisconnects.load());
  Out += ",\"queue_depth\":";
  Out += std::to_string(queueDepth());
  Out += ",\"workers\":";
  Out += std::to_string(Threads.size());
  Out += ",\"generation\":";
  Out += std::to_string(generation());
  Out += ",\"draining\":";
  Out += draining() ? "true" : "false";
  {
    std::lock_guard<std::mutex> Lock(MetricsMutex);
    Out += ",\"latency\":{\"count\":";
    Out += std::to_string(Latency.count());
    Out += ",\"mean_us\":";
    Out += std::to_string(Latency.mean() / 1000);
    Out += ",\"p50_us\":";
    Out += std::to_string(Latency.quantile(0.50) / 1000);
    Out += ",\"p95_us\":";
    Out += std::to_string(Latency.quantile(0.95) / 1000);
    Out += ",\"p99_us\":";
    Out += std::to_string(Latency.quantile(0.99) / 1000);
    Out += ",\"max_us\":";
    Out += std::to_string(Latency.max() / 1000);
    Out += "}}";
    if (Cache) {
      Out += ",\"cache\":";
      Out += CacheTotals.toJson();
    }
    Out += ",\"aggregate\":";
    Out += Aggregate.toJson();
  }
  {
    // Per-tenant counters; the "" key is the default (anonymous) tenant.
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Out += ",\"tenants\":{";
    bool First = true;
    for (const auto &[Name, TS] : Tenants) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += jsonEscape(Name);
      Out += "\":{\"admitted\":";
      Out += std::to_string(TS.Admitted);
      Out += ",\"completed\":";
      Out += std::to_string(TS.Completed);
      Out += ",\"rejected_quota\":";
      Out += std::to_string(TS.RejectedQuota);
      Out += ",\"in_flight\":";
      Out += std::to_string(TS.InFlight);
      Out += '}';
    }
    Out += '}';
  }
  // Per-point fault evaluation/trip counters. Present in every build:
  // reads {"enabled":false,...} with all-zero counters when the fault
  // layer is disarmed, so dashboards need no conditional parsing.
  Out += ",\"faults\":";
  Out += fault::statsJson();
  Out += '}';
  return Out;
}
