//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Router.h"

#include "server/Protocol.h"
#include "support/Fault.h"
#include "support/Socket.h"

#include <algorithm>

#include <unistd.h>

using namespace msq;

namespace {

/// FNV-1a, 64-bit. The ring only needs a stable, well-mixed hash that is
/// identical across router restarts and machines — not a cryptographic
/// one (clients already trust the router with their sources).
uint64_t fnv1a(std::string_view Bytes, uint64_t Seed = 14695981039346656037ull) {
  uint64_t H = Seed;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// True when \p Frame is an `error` response carrying \p Code's name.
/// Parse failures count as "no" — an unparsable upstream frame is relayed
/// as-is rather than guessed at.
bool isErrorWithCode(const std::string &Frame, ErrorCode Code) {
  json::Value V;
  std::string Err;
  if (!json::parse(Frame, V, &Err) || !V.isObject())
    return false;
  const json::Value *Ty = V.get("type");
  const json::Value *EC = V.get("error");
  return Ty && Ty->isString() && Ty->Str == "error" && EC && EC->isString() &&
         EC->Str == errorCodeName(Code);
}

} // namespace

Router::Router(RouterOptions O) : TimeoutMillis(O.TimeoutMillis) {
  if (O.Shards.empty()) {
    Error = "no shards configured";
    return;
  }
  for (const std::string &Addr : O.Shards) {
    Upstream U;
    U.Addr = Addr;
    std::string Err;
    if (!parseHostPort(Addr, U.Host, U.Port, &Err)) {
      Error = "bad shard address '" + Addr + "': " + Err;
      return;
    }
    Upstreams.push_back(std::move(U));
  }
  // The ring: VirtualNodes points per shard, placed by hashing the
  // shard's address with the replica index. Depends only on the
  // configured addresses, so every router over the same pool — now or
  // after a restart — routes identically.
  unsigned VNodes = std::max(1u, O.VirtualNodes);
  Ring.reserve(Upstreams.size() * VNodes);
  for (size_t S = 0; S < Upstreams.size(); ++S)
    for (unsigned R = 0; R < VNodes; ++R) {
      std::string Label =
          Upstreams[S].Addr + "#" + std::to_string(R);
      Ring.push_back({fnv1a(Label), S});
    }
  std::sort(Ring.begin(), Ring.end());
}

size_t Router::shardFor(const std::string &Key) const {
  uint64_t H = fnv1a(Key);
  // First ring point at or after the key's hash, wrapping at the top.
  auto It = std::lower_bound(Ring.begin(), Ring.end(), RingEntry{H, 0});
  if (It == Ring.end())
    It = Ring.begin();
  return It->Shard;
}

bool Router::callShard(size_t Idx, const std::string &Token,
                       const std::string &RequestFrame,
                       std::string &Response) {
  const Upstream &U = Upstreams[Idx];
  if (fault::shouldFail(fault::Point::RouterConnect))
    return false;
  std::string Err;
  int Fd = connectTcp(U.Host, U.Port, &Err);
  if (Fd < 0)
    return false;
  setSocketTimeout(Fd, TimeoutMillis);

  FrameReader Reader(Fd, MaxFrameBytes);
  std::string Frame;

  // Replay the client's credential: each upstream connection is fresh,
  // and a shard with a token table admits no anonymous work.
  if (!Token.empty()) {
    if (!writeFrame(Fd, makeHelloRequest("auth", Token)) ||
        Reader.next(Frame) != FrameReader::Status::Frame) {
      ::close(Fd);
      return false;
    }
    // Anything but a welcome means the shard rejected the token; that is
    // an answer, not a dead shard — surface it instead of retrying into
    // the same rejection elsewhere.
    json::Value V;
    std::string PErr;
    if (json::parse(Frame, V, &PErr) && V.isObject()) {
      const json::Value *Ty = V.get("type");
      if (!Ty || !Ty->isString() || Ty->Str != "welcome") {
        ::close(Fd);
        Response = Frame;
        return true;
      }
    }
  }

  if (fault::shouldFail(fault::Point::RouterForward)) {
    ::close(Fd);
    return false;
  }
  bool Ok = writeFrame(Fd, RequestFrame) &&
            Reader.next(Frame) == FrameReader::Status::Frame;
  ::close(Fd);
  if (!Ok)
    return false;
  Response = Frame;
  return true;
}

std::string Router::forward(size_t FirstShard, const std::string &Token,
                            const std::string &RequestFrame,
                            const std::string &Id) {
  ++Forwarded;
  std::string First;
  bool HaveFirst = callShard(FirstShard, Token, RequestFrame, First);
  if (HaveFirst && !isErrorWithCode(First, ErrorCode::Overloaded))
    return First;

  // Retry once on the ring successor (with one shard, the same shard —
  // a transient injected fault or a draining race may clear).
  ++Retries;
  size_t Next = (FirstShard + 1) % Upstreams.size();
  std::string Second;
  if (callShard(Next, Token, RequestFrame, Second)) {
    if (isErrorWithCode(Second, ErrorCode::Overloaded))
      ++RelayedOverloaded;
    return Second;
  }
  if (HaveFirst) {
    // Both answers exist and the first was `overloaded` (the only way we
    // get here with HaveFirst): the pool is saturated, not broken.
    ++RelayedOverloaded;
    return First;
  }
  ++Degraded;
  return makeErrorResponse(Id, ErrorCode::Degraded,
                           "no shard answered after retry (tried " +
                               Upstreams[FirstShard].Addr + ", " +
                               Upstreams[Next].Addr + ")");
}

std::string Router::handleHello(const std::string &Id,
                                const std::string &Token,
                                std::string &Tenant, bool &Accepted) {
  Accepted = false;
  // Validate against a real shard (the router holds no token table);
  // hashing by token spreads validation load but any shard would do.
  std::string Resp =
      forward(shardFor(Token), /*Token=*/"", makeHelloRequest(Id, Token), Id);
  json::Value V;
  std::string Err;
  if (json::parse(Resp, V, &Err) && V.isObject()) {
    const json::Value *Ty = V.get("type");
    if (Ty && Ty->isString() && Ty->Str == "welcome") {
      Accepted = true;
      const json::Value *Te = V.get("tenant");
      Tenant = Te && Te->isString() ? Te->Str : Token;
    }
  }
  return Resp;
}

std::string Router::handleStatus(const std::string &Id,
                                 const std::string &Token) {
  // The router's own counters plus every shard's metrics verbatim.
  // makeStatusResponse emits "metrics" last, so a shard's metrics object
  // is the frame's tail — sliced out rather than re-serialized.
  std::string M = "{\"router\":{\"shards\":";
  M += std::to_string(Upstreams.size());
  M += ",\"forwarded\":";
  M += std::to_string(Forwarded.load());
  M += ",\"retries\":";
  M += std::to_string(Retries.load());
  M += ",\"degraded\":";
  M += std::to_string(Degraded.load());
  M += ",\"relayed_overloaded\":";
  M += std::to_string(RelayedOverloaded.load());
  M += ",\"reload_broadcasts\":";
  M += std::to_string(ReloadBroadcasts.load());
  M += "},\"shard_status\":[";
  for (size_t S = 0; S < Upstreams.size(); ++S) {
    if (S)
      M += ",";
    M += "{\"addr\":\"" + jsonEscape(Upstreams[S].Addr) + "\",";
    std::string Resp;
    std::string Metrics;
    if (callShard(S, Token, makeStatusRequest(Id), Resp)) {
      size_t Pos = Resp.find("\"metrics\":");
      if (Pos != std::string::npos && Resp.size() > Pos + 10)
        Metrics = Resp.substr(Pos + 10, Resp.size() - (Pos + 10) - 1);
    }
    if (Metrics.empty())
      M += "\"ok\":false}";
    else
      M += "\"ok\":true,\"metrics\":" + Metrics + "}";
  }
  M += "]}";
  return makeStatusResponse(Id, M);
}

std::string Router::handleReload(const std::string &Id,
                                 const std::string &Token,
                                 const std::string &RequestFrame) {
  // Every shard owns a full library session, so a reload must reach all
  // of them. Per shard: one retry on the SAME shard (the successor has
  // its own broadcast slot), then the whole reload reports degraded —
  // a half-reloaded pool must be visible to the operator.
  ++ReloadBroadcasts;
  uint64_t MaxGeneration = 0;
  bool AnyChanged = false;
  for (size_t S = 0; S < Upstreams.size(); ++S) {
    std::string Resp;
    bool Have = callShard(S, Token, RequestFrame, Resp);
    if (!Have) {
      ++Retries;
      Have = callShard(S, Token, RequestFrame, Resp);
    }
    if (!Have) {
      ++Degraded;
      return makeErrorResponse(Id, ErrorCode::Degraded,
                               "reload did not reach shard " +
                                   Upstreams[S].Addr);
    }
    json::Value V;
    std::string Err;
    if (!json::parse(Resp, V, &Err) || !V.isObject())
      return Resp;
    const json::Value *Ty = V.get("type");
    if (!Ty || !Ty->isString() || Ty->Str != "reloaded")
      return Resp; // relay the first failure (e.g. reload_failed) verbatim
    uint64_t Gen = 0;
    if (const json::Value *G = V.get("generation"))
      G->asU64(Gen);
    MaxGeneration = std::max(MaxGeneration, Gen);
    if (const json::Value *Ch = V.get("changed"))
      AnyChanged = AnyChanged || (Ch->K == json::Value::Kind::Bool && Ch->B);
  }
  // Shards may sit at different generation numbers (they count their own
  // reloads); report the highest so the number still only moves forward.
  return makeReloadResponse(Id, MaxGeneration, AnyChanged);
}

void Router::serveConnection(const std::shared_ptr<Conn> &C) {
  FrameReader Reader(C->ReadFd, MaxFrameBytes);
  std::string Frame;
  std::string Token; // credential to replay upstream, set by hello
  for (;;) {
    FrameReader::Status St = Reader.next(Frame);
    if (St == FrameReader::Status::TooLong) {
      C->send(makeErrorResponse(
          "", ErrorCode::FrameTooLarge,
          "frame exceeds " + std::to_string(MaxFrameBytes) + " bytes"));
      break;
    }
    if (St != FrameReader::Status::Frame)
      break;

    Request Req;
    ParseOutcome PO = parseRequest(Frame, Req);
    if (!PO.Ok) {
      C->send(makeErrorResponse(Req.Id, PO.Code, PO.Message));
      continue;
    }

    switch (Req.Ty) {
    case Request::Type::Ping:
      C->send(makePongResponse(Req.Id));
      break;
    case Request::Type::Status:
      C->send(handleStatus(Req.Id, Token));
      break;
    case Request::Type::Hello: {
      std::string Tenant;
      bool Accepted = false;
      std::string Resp = handleHello(Req.Id, Req.Token, Tenant, Accepted);
      C->send(Resp);
      if (!Accepted) {
        // Mirror shard behavior: a rejected credential drops the
        // connection rather than inviting a token-guessing loop.
        C->waitQuiesced();
        return;
      }
      Token = Req.Token;
      C->Tenant = Tenant;
      C->Authenticated = true;
      break;
    }
    case Request::Type::CacheGet:
    case Request::Type::CachePut:
      C->send(makeErrorResponse(Req.Id, ErrorCode::UnknownType,
                                "the router does not serve cache "
                                "requests (use msq-cached)"));
      break;
    case Request::Type::ReloadLibrary:
      C->send(handleReload(Req.Id, Token, Frame));
      break;
    case Request::Type::Expand:
    case Request::Type::Lint:
      // Relay the client's frame byte-for-byte: the shard re-parses it,
      // so the router cannot corrupt fields it does not understand.
      C->send(forward(shardFor(routingKey(Req.Name, Req.Source)), Token,
                      Frame, Req.Id));
      break;
    }
  }
  C->waitQuiesced();
}

std::string Router::metricsJson() const {
  std::string Out = "{\"router\":{\"shards\":";
  Out += std::to_string(Upstreams.size());
  Out += ",\"forwarded\":";
  Out += std::to_string(Forwarded.load());
  Out += ",\"retries\":";
  Out += std::to_string(Retries.load());
  Out += ",\"degraded\":";
  Out += std::to_string(Degraded.load());
  Out += ",\"relayed_overloaded\":";
  Out += std::to_string(RelayedOverloaded.load());
  Out += ",\"reload_broadcasts\":";
  Out += std::to_string(ReloadBroadcasts.load());
  Out += "}}";
  return Out;
}
