//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/Metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace msq;

//===----------------------------------------------------------------------===//
// JSON reader
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent JSON parser. Fail-soft everywhere: any deviation
/// produces a message with the byte offset and unwinds.
class JsonParser {
public:
  JsonParser(std::string_view Text, std::string *Err)
      : Text(Text), Err(Err) {}

  bool run(json::Value &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing bytes after JSON document");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Msg) {
    if (Err)
      *Err = Msg + " (at byte " + std::to_string(Pos) + ")";
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Lit) {
    if (Text.size() - Pos < Lit.size() || Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool parseValue(json::Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = json::Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out.K = json::Value::Kind::Bool;
      Out.B = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out.K = json::Value::Kind::Bool;
      Out.B = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out.K = json::Value::Kind::Null;
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(json::Value &Out, unsigned Depth) {
    ++Pos; // '{'
    Out.K = json::Value::Kind::Object;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      json::Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(json::Value &Out, unsigned Depth) {
    ++Pos; // '['
    Out.K = json::Value::Kind::Array;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      json::Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Text.size() - Pos < 4)
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= unsigned(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= unsigned(C - 'A' + 10);
      else
        return fail("bad \\u escape digit");
    }
    return true;
  }

  void appendUtf8(std::string &S, unsigned Cp) {
    if (Cp < 0x80) {
      S.push_back(char(Cp));
    } else if (Cp < 0x800) {
      S.push_back(char(0xC0 | (Cp >> 6)));
      S.push_back(char(0x80 | (Cp & 0x3F)));
    } else if (Cp < 0x10000) {
      S.push_back(char(0xE0 | (Cp >> 12)));
      S.push_back(char(0x80 | ((Cp >> 6) & 0x3F)));
      S.push_back(char(0x80 | (Cp & 0x3F)));
    } else {
      S.push_back(char(0xF0 | (Cp >> 18)));
      S.push_back(char(0x80 | ((Cp >> 12) & 0x3F)));
      S.push_back(char(0x80 | ((Cp >> 6) & 0x3F)));
      S.push_back(char(0x80 | (Cp & 0x3F)));
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':  Out.push_back('"');  break;
      case '\\': Out.push_back('\\'); break;
      case '/':  Out.push_back('/');  break;
      case 'b':  Out.push_back('\b'); break;
      case 'f':  Out.push_back('\f'); break;
      case 'n':  Out.push_back('\n'); break;
      case 'r':  Out.push_back('\r'); break;
      case 't':  Out.push_back('\t'); break;
      case 'u': {
        unsigned Cp = 0;
        if (!parseHex4(Cp))
          return false;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          if (Text.size() - Pos < 2 || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          unsigned Lo = 0;
          if (!parseHex4(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail("bad low surrogate");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseNumber(json::Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    size_t IntStart = Pos;
    size_t Digits = 0;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      ++Pos;
      ++Digits;
    }
    if (Digits == 0)
      return fail("expected a value");
    if (Digits > 1 && Text[IntStart] == '0')
      return fail("leading zero in number");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      size_t Frac = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++Frac;
      }
      if (Frac == 0)
        return fail("bad fraction");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      size_t Exp = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++Exp;
      }
      if (Exp == 0)
        return fail("bad exponent");
    }
    Out.K = json::Value::Kind::Number;
    Out.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                          nullptr);
    return true;
  }

  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

const json::Value *json::Value::get(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Key, V] : Members)
    if (Key == Name)
      return &V;
  return nullptr;
}

bool json::Value::asU64(uint64_t &Out) const {
  if (K != Kind::Number || Num < 0 || Num > 9007199254740992.0 /*2^53*/ ||
      std::floor(Num) != Num)
    return false;
  Out = uint64_t(Num);
  return true;
}

bool json::parse(std::string_view Text, Value &Out, std::string *Err) {
  Out = Value(); // callers reuse Value objects across parses
  return JsonParser(Text, Err).run(Out);
}

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

const char *msq::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::BadRequest:    return "bad_request";
  case ErrorCode::UnknownType:   return "unknown_type";
  case ErrorCode::BadVersion:    return "bad_version";
  case ErrorCode::FrameTooLarge: return "frame_too_large";
  case ErrorCode::Overloaded:    return "overloaded";
  case ErrorCode::ShuttingDown:  return "shutting_down";
  case ErrorCode::ReloadFailed:  return "reload_failed";
  case ErrorCode::Internal:      return "internal";
  case ErrorCode::Unauthorized:  return "unauthorized";
  case ErrorCode::QuotaExceeded: return "quota_exceeded";
  case ErrorCode::Degraded:      return "degraded";
  case ErrorCode::SessionLost:   return "session_lost";
  }
  return "internal";
}

namespace {

ParseOutcome parseFail(ErrorCode Code, std::string Message) {
  ParseOutcome O;
  O.Ok = false;
  O.Code = Code;
  O.Message = std::move(Message);
  return O;
}

/// Reads an optional string member; false only when present but not a
/// string.
bool optionalString(const json::Value &Obj, std::string_view Name,
                    std::string &Out) {
  const json::Value *V = Obj.get(Name);
  if (!V)
    return true;
  if (!V->isString())
    return false;
  Out = V->Str;
  return true;
}

} // namespace

ParseOutcome msq::parseRequest(std::string_view Frame, Request &Out) {
  json::Value Doc;
  std::string Err;
  if (!json::parse(Frame, Doc, &Err))
    return parseFail(ErrorCode::BadRequest, "invalid JSON: " + Err);
  if (!Doc.isObject())
    return parseFail(ErrorCode::BadRequest, "request must be a JSON object");

  // Recover the id first so even failed parses can echo it.
  if (!optionalString(Doc, "id", Out.Id))
    return parseFail(ErrorCode::BadRequest, "\"id\" must be a string");

  const json::Value *V = Doc.get("v");
  uint64_t Version = 0;
  if (!V || !V->asU64(Version))
    return parseFail(ErrorCode::BadVersion,
                     "missing or non-integer \"v\" (protocol version)");
  if (Version != uint64_t(ProtocolVersion))
    return parseFail(ErrorCode::BadVersion,
                     "unsupported protocol version " +
                         std::to_string(Version) + " (this server speaks " +
                         std::to_string(ProtocolVersion) + ")");

  const json::Value *Ty = Doc.get("type");
  if (!Ty || !Ty->isString())
    return parseFail(ErrorCode::BadRequest, "missing \"type\"");

  if (Ty->Str == "expand") {
    Out.Ty = Request::Type::Expand;
    const json::Value *Name = Doc.get("name");
    const json::Value *Source = Doc.get("source");
    if (!Name || !Name->isString() || !Source || !Source->isString())
      return parseFail(ErrorCode::BadRequest,
                       "expand needs string \"name\" and \"source\"");
    Out.Name = Name->Str;
    Out.Source = Source->Str;
    if (const json::Value *C = Doc.get("cache")) {
      if (C->K != json::Value::Kind::Bool)
        return parseFail(ErrorCode::BadRequest, "\"cache\" must be a bool");
      Out.UseCache = C->B;
    }
    if (const json::Value *S = Doc.get("max_meta_steps")) {
      if (!S->asU64(Out.MaxMetaSteps))
        return parseFail(ErrorCode::BadRequest,
                         "\"max_meta_steps\" must be a non-negative integer");
    }
    if (const json::Value *T = Doc.get("timeout_ms")) {
      if (!T->asU64(Out.TimeoutMillis))
        return parseFail(ErrorCode::BadRequest,
                         "\"timeout_ms\" must be a non-negative integer");
    }
    if (const json::Value *P = Doc.get("provenance")) {
      if (P->K != json::Value::Kind::Bool)
        return parseFail(ErrorCode::BadRequest,
                         "\"provenance\" must be a bool");
      Out.Provenance = P->B;
    }
    if (!optionalString(Doc, "base", Out.Base))
      return parseFail(ErrorCode::BadRequest, "\"base\" must be a string");
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "lint") {
    Out.Ty = Request::Type::Lint;
    const json::Value *Name = Doc.get("name");
    const json::Value *Source = Doc.get("source");
    if (!Name || !Name->isString() || !Source || !Source->isString())
      return parseFail(ErrorCode::BadRequest,
                       "lint needs string \"name\" and \"source\"");
    Out.Name = Name->Str;
    Out.Source = Source->Str;
    if (!optionalString(Doc, "base", Out.Base))
      return parseFail(ErrorCode::BadRequest, "\"base\" must be a string");
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "reload_library") {
    Out.Ty = Request::Type::ReloadLibrary;
    if (const json::Value *Std = Doc.get("stdlib")) {
      if (Std->K != json::Value::Kind::Bool)
        return parseFail(ErrorCode::BadRequest, "\"stdlib\" must be a bool");
      Out.LoadStdlib = Std->B;
    }
    if (const json::Value *Sources = Doc.get("sources")) {
      if (!Sources->isArray())
        return parseFail(ErrorCode::BadRequest,
                         "\"sources\" must be an array");
      for (const json::Value &S : Sources->Arr) {
        const json::Value *Name = S.get("name");
        const json::Value *Source = S.get("source");
        if (!Name || !Name->isString() || !Source || !Source->isString())
          return parseFail(
              ErrorCode::BadRequest,
              "each source needs string \"name\" and \"source\"");
        std::string SrcBase;
        if (!optionalString(S, "base", SrcBase))
          return parseFail(ErrorCode::BadRequest,
                           "\"base\" must be a string");
        Out.Sources.push_back({Name->Str, Source->Str, SrcBase});
      }
    }
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "status") {
    Out.Ty = Request::Type::Status;
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "ping") {
    Out.Ty = Request::Type::Ping;
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "hello") {
    Out.Ty = Request::Type::Hello;
    const json::Value *Token = Doc.get("token");
    if (!Token || !Token->isString())
      return parseFail(ErrorCode::BadRequest,
                       "hello needs a string \"token\"");
    Out.Token = Token->Str;
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "cache_get" || Ty->Str == "cache_put") {
    bool Put = Ty->Str == "cache_put";
    Out.Ty = Put ? Request::Type::CachePut : Request::Type::CacheGet;
    const json::Value *Key = Doc.get("key");
    if (!Key || !Key->isString() || Key->Str.empty())
      return parseFail(ErrorCode::BadRequest,
                       Put ? "cache_put needs a string \"key\""
                           : "cache_get needs a string \"key\"");
    Out.Key = Key->Str;
    if (Put) {
      const json::Value *Data = Doc.get("data");
      if (!Data || !Data->isString())
        return parseFail(ErrorCode::BadRequest,
                         "cache_put needs a string \"data\"");
      if (!fromHex(Data->Str, Out.Data))
        return parseFail(ErrorCode::BadRequest,
                         "\"data\" must be an even-length hex string");
    }
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "session_open") {
    Out.Ty = Request::Type::SessionOpen;
    if (const json::Value *Std = Doc.get("stdlib")) {
      if (Std->K != json::Value::Kind::Bool)
        return parseFail(ErrorCode::BadRequest, "\"stdlib\" must be a bool");
      Out.LoadStdlib = Std->B;
    }
    if (const json::Value *P = Doc.get("provenance")) {
      if (P->K != json::Value::Kind::Bool)
        return parseFail(ErrorCode::BadRequest,
                         "\"provenance\" must be a bool");
      Out.Provenance = P->B;
    }
    if (const json::Value *Sources = Doc.get("sources")) {
      if (!Sources->isArray())
        return parseFail(ErrorCode::BadRequest,
                         "\"sources\" must be an array");
      for (const json::Value &S : Sources->Arr) {
        const json::Value *Name = S.get("name");
        const json::Value *Source = S.get("source");
        if (!Name || !Name->isString() || !Source || !Source->isString())
          return parseFail(
              ErrorCode::BadRequest,
              "each source needs string \"name\" and \"source\"");
        std::string SrcBase;
        if (!optionalString(S, "base", SrcBase))
          return parseFail(ErrorCode::BadRequest,
                           "\"base\" must be a string");
        Out.Sources.push_back({Name->Str, Source->Str, SrcBase});
      }
    }
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "session_eval") {
    Out.Ty = Request::Type::SessionEval;
    const json::Value *Session = Doc.get("session");
    if (!Session || !Session->isString() || Session->Str.empty())
      return parseFail(ErrorCode::BadRequest,
                       "session_eval needs a string \"session\"");
    Out.Session = Session->Str;
    const json::Value *Mode = Doc.get("mode");
    if (!Mode || !Mode->isString() || Mode->Str.empty())
      return parseFail(ErrorCode::BadRequest,
                       "session_eval needs a string \"mode\"");
    Out.Mode = Mode->Str;
    if (!optionalString(Doc, "name", Out.Name))
      return parseFail(ErrorCode::BadRequest, "\"name\" must be a string");
    if (!optionalString(Doc, "source", Out.Source))
      return parseFail(ErrorCode::BadRequest, "\"source\" must be a string");
    if (!optionalString(Doc, "base", Out.Base))
      return parseFail(ErrorCode::BadRequest, "\"base\" must be a string");
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  if (Ty->Str == "session_close") {
    Out.Ty = Request::Type::SessionClose;
    const json::Value *Session = Doc.get("session");
    if (!Session || !Session->isString() || Session->Str.empty())
      return parseFail(ErrorCode::BadRequest,
                       "session_close needs a string \"session\"");
    Out.Session = Session->Str;
    ParseOutcome O;
    O.Ok = true;
    return O;
  }

  return parseFail(ErrorCode::UnknownType,
                   "unknown request type \"" + Ty->Str + "\"");
}

//===----------------------------------------------------------------------===//
// Response builders
//===----------------------------------------------------------------------===//

namespace {

std::string responseHead(const std::string &Id, const char *Type) {
  std::string Out = "{\"v\":";
  Out += std::to_string(ProtocolVersion);
  Out += ",\"id\":\"";
  Out += jsonEscape(Id);
  Out += "\",\"type\":\"";
  Out += Type;
  Out += '"';
  return Out;
}

} // namespace

std::string msq::makeExpandResponse(const std::string &Id,
                                    const ExpandResult &R,
                                    uint64_t Generation) {
  std::string Out = responseHead(Id, "result");
  Out += ",\"success\":";
  Out += R.Success ? "true" : "false";
  Out += ",\"output\":\"";
  Out += jsonEscape(R.Output);
  Out += "\",\"diagnostics\":\"";
  Out += jsonEscape(R.DiagnosticsText);
  Out += "\",\"cached\":";
  Out += R.FromCache ? "true" : "false";
  Out += ",\"generation\":";
  Out += std::to_string(Generation);
  Out += ",\"invocations\":";
  Out += std::to_string(R.InvocationsExpanded);
  Out += ",\"meta_steps\":";
  Out += std::to_string(R.MetaStepsExecuted);
  Out += ",\"fuel_exhausted\":";
  Out += R.FuelExhausted ? "true" : "false";
  Out += ",\"timed_out\":";
  Out += R.TimedOut ? "true" : "false";
  if (!R.Lints.empty()) {
    Out += ",\"lints\":";
    Out += lintFindingsJson(R.Lints);
  }
  if (!R.SourceMapJson.empty()) {
    Out += ",\"source_map\":";
    Out += R.SourceMapJson; // already a JSON object
  }
  Out += '}';
  return Out;
}

std::string msq::makeLintResponse(const std::string &Id,
                                  const ExpandResult &R,
                                  uint64_t Generation) {
  unsigned Warnings = 0, Errors = 0;
  for (const LintDiagnostic &L : R.Lints)
    (L.Severity == LintSeverity::Error ? Errors : Warnings) += L.Count;
  std::string Out = responseHead(Id, "lint_result");
  Out += ",\"success\":";
  Out += R.Success ? "true" : "false";
  Out += ",\"diagnostics\":\"";
  Out += jsonEscape(R.DiagnosticsText);
  Out += "\",\"generation\":";
  Out += std::to_string(Generation);
  Out += ",\"findings\":";
  Out += lintFindingsJson(R.Lints);
  Out += ",\"warnings\":";
  Out += std::to_string(Warnings);
  Out += ",\"errors\":";
  Out += std::to_string(Errors);
  Out += '}';
  return Out;
}

std::string msq::makeErrorResponse(const std::string &Id, ErrorCode Code,
                                   const std::string &Message) {
  std::string Out = responseHead(Id, "error");
  Out += ",\"error\":\"";
  Out += errorCodeName(Code);
  Out += "\",\"message\":\"";
  Out += jsonEscape(Message);
  Out += "\"}";
  return Out;
}

std::string msq::makeStatusResponse(const std::string &Id,
                                    const std::string &MetricsJson) {
  std::string Out = responseHead(Id, "status");
  Out += ",\"metrics\":";
  Out += MetricsJson; // already a JSON object
  Out += '}';
  return Out;
}

std::string msq::makeReloadResponse(const std::string &Id,
                                    uint64_t Generation, bool Changed) {
  std::string Out = responseHead(Id, "reloaded");
  Out += ",\"generation\":";
  Out += std::to_string(Generation);
  Out += ",\"changed\":";
  Out += Changed ? "true" : "false";
  Out += '}';
  return Out;
}

std::string msq::makePongResponse(const std::string &Id) {
  return responseHead(Id, "pong") + "}";
}

std::string msq::makeWelcomeResponse(const std::string &Id,
                                     const std::string &Tenant) {
  std::string Out = responseHead(Id, "welcome");
  Out += ",\"tenant\":\"";
  Out += jsonEscape(Tenant);
  Out += "\"}";
  return Out;
}

std::string msq::makeCacheEntryResponse(const std::string &Id, bool Found,
                                        const std::string &Data) {
  std::string Out = responseHead(Id, "cache_entry");
  Out += ",\"found\":";
  Out += Found ? "true" : "false";
  if (Found) {
    Out += ",\"data\":\"";
    Out += toHex(Data); // hex is JSON-clean, no escaping needed
    Out += '"';
  }
  Out += '}';
  return Out;
}

std::string msq::makeCacheStoredResponse(const std::string &Id,
                                         bool Stored) {
  std::string Out = responseHead(Id, "cache_stored");
  Out += ",\"stored\":";
  Out += Stored ? "true" : "false";
  Out += '}';
  return Out;
}

std::string msq::makeSessionOpenedResponse(const std::string &Id,
                                           const std::string &Session) {
  std::string Out = responseHead(Id, "session_opened");
  Out += ",\"session\":\"";
  Out += jsonEscape(Session);
  Out += "\"}";
  return Out;
}

std::string msq::makeSessionResultResponse(const std::string &Id,
                                           const std::string &Session,
                                           const SessionEvalResult &R) {
  std::string Out = responseHead(Id, "session_result");
  Out += ",\"session\":\"";
  Out += jsonEscape(Session);
  Out += "\",\"success\":";
  Out += R.Success ? "true" : "false";
  Out += ",\"output\":\"";
  Out += jsonEscape(R.Output);
  Out += "\",\"diagnostics\":\"";
  Out += jsonEscape(R.Diagnostics);
  Out += "\",\"path\":\"";
  Out += jsonEscape(R.Path);
  Out += "\",\"invocations\":";
  Out += std::to_string(R.Invocations);
  Out += ",\"meta_steps\":";
  Out += std::to_string(R.MetaSteps);
  Out += ",\"macros_defined\":";
  Out += std::to_string(R.MacrosDefined);
  Out += ",\"globals_mutated\":";
  Out += R.GlobalsMutated ? "true" : "false";
  if (R.HasTrace) {
    Out += ",\"trace\":\"";
    Out += jsonEscape(R.Trace);
    Out += '"';
  }
  if (!R.GlobalsJson.empty()) {
    Out += ",\"globals\":";
    Out += R.GlobalsJson; // already a JSON array
  }
  if (!R.LintsJson.empty()) {
    Out += ",\"lints\":";
    Out += R.LintsJson; // already a JSON array
  }
  if (!R.SourceMapJson.empty()) {
    Out += ",\"source_map\":";
    Out += R.SourceMapJson; // already a JSON object
  }
  Out += '}';
  return Out;
}

std::string msq::makeSessionClosedResponse(const std::string &Id,
                                           const std::string &Session,
                                           uint64_t Evals) {
  std::string Out = responseHead(Id, "session_closed");
  Out += ",\"session\":\"";
  Out += jsonEscape(Session);
  Out += "\",\"evals\":";
  Out += std::to_string(Evals);
  Out += '}';
  return Out;
}

//===----------------------------------------------------------------------===//
// Request builders
//===----------------------------------------------------------------------===//

namespace {

std::string requestHead(const std::string &Id, const char *Type) {
  // Same shape as responseHead; kept separate for clarity at call sites.
  std::string Out = "{\"v\":";
  Out += std::to_string(ProtocolVersion);
  Out += ",\"id\":\"";
  Out += jsonEscape(Id);
  Out += "\",\"type\":\"";
  Out += Type;
  Out += '"';
  return Out;
}

} // namespace

std::string msq::makeExpandRequest(const std::string &Id,
                                   const std::string &Name,
                                   const std::string &Source, bool UseCache,
                                   uint64_t MaxMetaSteps,
                                   uint64_t TimeoutMillis, bool Provenance,
                                   const std::string &Base) {
  std::string Out = requestHead(Id, "expand");
  Out += ",\"name\":\"";
  Out += jsonEscape(Name);
  Out += "\",\"source\":\"";
  Out += jsonEscape(Source);
  Out += '"';
  if (!UseCache)
    Out += ",\"cache\":false";
  if (MaxMetaSteps) {
    Out += ",\"max_meta_steps\":";
    Out += std::to_string(MaxMetaSteps);
  }
  if (TimeoutMillis) {
    Out += ",\"timeout_ms\":";
    Out += std::to_string(TimeoutMillis);
  }
  if (Provenance)
    Out += ",\"provenance\":true";
  if (!Base.empty()) {
    Out += ",\"base\":\"";
    Out += jsonEscape(Base);
    Out += '"';
  }
  Out += '}';
  return Out;
}

std::string msq::makeLintRequest(const std::string &Id,
                                 const std::string &Name,
                                 const std::string &Source,
                                 const std::string &Base) {
  std::string Out = requestHead(Id, "lint");
  Out += ",\"name\":\"";
  Out += jsonEscape(Name);
  Out += "\",\"source\":\"";
  Out += jsonEscape(Source);
  Out += '"';
  if (!Base.empty()) {
    Out += ",\"base\":\"";
    Out += jsonEscape(Base);
    Out += '"';
  }
  Out += '}';
  return Out;
}

std::string msq::makeReloadRequest(const std::string &Id,
                                   const std::vector<SourceUnit> &Sources,
                                   bool LoadStdlib) {
  std::string Out = requestHead(Id, "reload_library");
  if (LoadStdlib)
    Out += ",\"stdlib\":true";
  Out += ",\"sources\":[";
  bool First = true;
  for (const SourceUnit &S : Sources) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    Out += jsonEscape(S.Name);
    Out += "\",\"source\":\"";
    Out += jsonEscape(S.Source);
    Out += '"';
    if (!S.Base.empty()) {
      Out += ",\"base\":\"";
      Out += jsonEscape(S.Base);
      Out += '"';
    }
    Out += '}';
  }
  Out += "]}";
  return Out;
}

std::string msq::makeStatusRequest(const std::string &Id) {
  return requestHead(Id, "status") + "}";
}

std::string msq::makePingRequest(const std::string &Id) {
  return requestHead(Id, "ping") + "}";
}

std::string msq::makeHelloRequest(const std::string &Id,
                                  const std::string &Token) {
  std::string Out = requestHead(Id, "hello");
  Out += ",\"token\":\"";
  Out += jsonEscape(Token);
  Out += "\"}";
  return Out;
}

std::string msq::makeCacheGetRequest(const std::string &Id,
                                     const std::string &Key) {
  std::string Out = requestHead(Id, "cache_get");
  Out += ",\"key\":\"";
  Out += jsonEscape(Key);
  Out += "\"}";
  return Out;
}

std::string msq::makeCachePutRequest(const std::string &Id,
                                     const std::string &Key,
                                     const std::string &Data) {
  std::string Out = requestHead(Id, "cache_put");
  Out += ",\"key\":\"";
  Out += jsonEscape(Key);
  Out += "\",\"data\":\"";
  Out += toHex(Data);
  Out += "\"}";
  return Out;
}

std::string msq::makeSessionOpenRequest(const std::string &Id,
                                        bool LoadStdlib, bool Provenance,
                                        const std::vector<SourceUnit> &Sources) {
  std::string Out = requestHead(Id, "session_open");
  if (LoadStdlib)
    Out += ",\"stdlib\":true";
  if (Provenance)
    Out += ",\"provenance\":true";
  if (!Sources.empty()) {
    Out += ",\"sources\":[";
    bool First = true;
    for (const SourceUnit &S : Sources) {
      if (!First)
        Out += ',';
      First = false;
      Out += "{\"name\":\"";
      Out += jsonEscape(S.Name);
      Out += "\",\"source\":\"";
      Out += jsonEscape(S.Source);
      Out += '"';
      if (!S.Base.empty()) {
        Out += ",\"base\":\"";
        Out += jsonEscape(S.Base);
        Out += '"';
      }
      Out += '}';
    }
    Out += ']';
  }
  Out += '}';
  return Out;
}

std::string msq::makeSessionEvalRequest(const std::string &Id,
                                        const std::string &Session,
                                        const std::string &Mode,
                                        const std::string &Name,
                                        const std::string &Source,
                                        const std::string &Base) {
  std::string Out = requestHead(Id, "session_eval");
  Out += ",\"session\":\"";
  Out += jsonEscape(Session);
  Out += "\",\"mode\":\"";
  Out += jsonEscape(Mode);
  Out += "\",\"name\":\"";
  Out += jsonEscape(Name);
  Out += "\",\"source\":\"";
  Out += jsonEscape(Source);
  Out += '"';
  if (!Base.empty()) {
    Out += ",\"base\":\"";
    Out += jsonEscape(Base);
    Out += '"';
  }
  Out += '}';
  return Out;
}

std::string msq::makeSessionCloseRequest(const std::string &Id,
                                         const std::string &Session) {
  std::string Out = requestHead(Id, "session_close");
  Out += ",\"session\":\"";
  Out += jsonEscape(Session);
  Out += "\"}";
  return Out;
}

std::string msq::toHex(std::string_view Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (unsigned char C : Bytes) {
    Out.push_back(Digits[C >> 4]);
    Out.push_back(Digits[C & 0xF]);
  }
  return Out;
}

bool msq::fromHex(std::string_view Hex, std::string &Out) {
  if (Hex.size() % 2)
    return false;
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  Out.clear();
  Out.reserve(Hex.size() / 2);
  for (size_t I = 0; I != Hex.size(); I += 2) {
    int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(char((Hi << 4) | Lo));
  }
  return true;
}
