//===----------------------------------------------------------------------===//
//
// msqd — the MS2 macro-expansion daemon. Owns one macro-library session
// and serves expand/reload_library/status/ping requests over a Unix
// domain socket, TCP (the cluster transport), or stdin/stdout with
// --stdio, speaking the newline-delimited JSON protocol in
// server/Protocol.h.
//
//   msqd --socket /run/msqd.sock [options]
//   msqd --tcp HOST:PORT [options]         cluster shard transport
//   msqd --stdio [options]                 serve exactly one connection
//     -l <file>          load a macro-library file at startup (repeatable)
//     -stdlib            load the bundled standard macro library first
//     --workers N        worker threads (default: hardware concurrency)
//     --queue-cap N      admission queue bound (default 256)
//     --cache            enable the expansion cache
//     --cache-dir DIR    persistent cache tier directory
//     --remote-cache HOST:PORT   shared msq-cached tier (cluster mode)
//     --auth-token TOKEN=TENANT  TCP auth token (repeatable); with any
//                        configured, TCP connections must hello first
//     --tenant-quota N   max queued+running requests per tenant (0=off)
//     --idle-timeout MS  drop connections with no frame for MS ms (0=off)
//     --session-quota N  max open interactive sessions (default 64, 0=off)
//     --tenant-sessions N max open sessions per tenant (0=off)
//     --session-idle-timeout MS  evict sessions idle for MS ms (0=off)
//     --max-meta-steps N default per-request fuel
//     --timeout-ms N     default per-request wall-clock budget
//     -hygienic, -c      hygienic expansion / compiled patterns
//     --quiet            suppress the structured request log (stderr)
//
// --socket and --tcp may be combined (one daemon, both transports); the
// ready line reports every bound endpoint, including the real port when
// --tcp asked for port 0.
//
// Lifecycle: on SIGTERM/SIGINT the daemon stops accepting connections
// and admitting requests, completes everything already admitted (each
// client still gets its responses), and exits 0. In --stdio mode, EOF on
// stdin triggers the same drain.
//
// Fault injection: MSQ_FAULT_SCHEDULE (see support/Fault.h) arms the
// deterministic fault layer for the whole process; transient accept
// failures are retried with capped exponential backoff, and worker
// crashes become structured per-request errors. Per-point counters are
// reported in the status response's "faults" object.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"
#include "server/Protocol.h"
#include "server/Server.h"
#include "server/Session.h"
#include "support/Fault.h"
#include "support/Socket.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace msq;

namespace {

int WakeWriteFd = -1;

/// The handler only writes one byte to a pipe the accept loops poll
/// (async-signal-safe); all real work happens on the main thread.
void onTermSignal(int) {
  if (WakeWriteFd >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t N = ::write(WakeWriteFd, &B, 1);
  }
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: msqd (--socket PATH | --tcp HOST:PORT | --stdio)\n"
      "            [-stdlib] [-l library.c]... [--workers N]\n"
      "            [--queue-cap N] [--cache] [--cache-dir DIR]\n"
      "            [--remote-cache HOST:PORT] [--auth-token TOK=TENANT]...\n"
      "            [--tenant-quota N] [--idle-timeout MS]\n"
      "            [--session-quota N] [--tenant-sessions N]\n"
      "            [--session-idle-timeout MS]\n"
      "            [--max-meta-steps N] [--timeout-ms N]\n"
      "            [-hygienic] [-c] [--quiet]\n");
  return Code;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath;
  std::string TcpAddr;
  bool Stdio = false;
  bool StdLib = false;
  bool Quiet = false;
  std::vector<std::string> Libraries;
  ServerOptions SO;
  AuthConfig Auth;
  SessionManagerOptions SMO;
  unsigned IdleTimeoutMillis = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "msqd: %s needs an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--socket") {
      const char *V = NextArg("--socket");
      if (!V)
        return 2;
      SocketPath = V;
    } else if (Arg == "--tcp") {
      const char *V = NextArg("--tcp");
      if (!V)
        return 2;
      TcpAddr = V;
    } else if (Arg == "--stdio") {
      Stdio = true;
    } else if (Arg == "-l") {
      const char *V = NextArg("-l");
      if (!V)
        return 2;
      Libraries.push_back(V);
    } else if (Arg == "-stdlib") {
      StdLib = true;
    } else if (Arg == "--workers") {
      const char *V = NextArg("--workers");
      if (!V)
        return 2;
      SO.Workers = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--queue-cap") {
      const char *V = NextArg("--queue-cap");
      if (!V)
        return 2;
      SO.QueueCapacity = std::strtoul(V, nullptr, 10);
    } else if (Arg == "--tenant-quota") {
      const char *V = NextArg("--tenant-quota");
      if (!V)
        return 2;
      SO.TenantQuota = std::strtoul(V, nullptr, 10);
    } else if (Arg == "--auth-token") {
      const char *V = NextArg("--auth-token");
      if (!V)
        return 2;
      const char *Eq = std::strchr(V, '=');
      if (!Eq || Eq == V) {
        std::fprintf(stderr, "msqd: --auth-token wants TOKEN=TENANT\n");
        return 2;
      }
      Auth.TokenTenants[std::string(V, Eq)] = std::string(Eq + 1);
    } else if (Arg == "--idle-timeout") {
      const char *V = NextArg("--idle-timeout");
      if (!V)
        return 2;
      IdleTimeoutMillis = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--session-quota") {
      const char *V = NextArg("--session-quota");
      if (!V)
        return 2;
      SMO.MaxSessions = std::strtoul(V, nullptr, 10);
    } else if (Arg == "--tenant-sessions") {
      const char *V = NextArg("--tenant-sessions");
      if (!V)
        return 2;
      SMO.PerTenantSessions = std::strtoul(V, nullptr, 10);
    } else if (Arg == "--session-idle-timeout") {
      const char *V = NextArg("--session-idle-timeout");
      if (!V)
        return 2;
      SMO.IdleTimeoutMillis = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--cache") {
      SO.EngineOpts.EnableExpansionCache = true;
    } else if (Arg == "--cache-dir") {
      const char *V = NextArg("--cache-dir");
      if (!V)
        return 2;
      SO.EngineOpts.EnableExpansionCache = true;
      SO.EngineOpts.ExpansionCacheDir = V;
    } else if (Arg == "--remote-cache") {
      const char *V = NextArg("--remote-cache");
      if (!V)
        return 2;
      SO.EngineOpts.EnableExpansionCache = true;
      SO.RemoteCacheAddr = V;
    } else if (Arg == "--max-meta-steps") {
      const char *V = NextArg("--max-meta-steps");
      if (!V)
        return 2;
      SO.EngineOpts.MaxMetaSteps = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--timeout-ms") {
      const char *V = NextArg("--timeout-ms");
      if (!V)
        return 2;
      SO.EngineOpts.UnitTimeoutMillis = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "-hygienic") {
      SO.EngineOpts.HygienicExpansion = true;
    } else if (Arg == "-c") {
      SO.EngineOpts.UseCompiledPatterns = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-h" || Arg == "--help") {
      return usage(0);
    } else {
      std::fprintf(stderr, "msqd: unknown argument '%s'\n", Arg.c_str());
      return usage(2);
    }
  }
  const bool HasNet = !SocketPath.empty() || !TcpAddr.empty();
  if (Stdio == HasNet) {
    std::fprintf(stderr,
                 "msqd: pass --stdio or a listener (--socket/--tcp)\n");
    return usage(2);
  }

  std::string TcpHost;
  uint16_t TcpPort = 0;
  if (!TcpAddr.empty()) {
    std::string Err;
    if (!parseHostPort(TcpAddr, TcpHost, TcpPort, &Err)) {
      // "HOST:0" must stay expressible (ephemeral port), so parse
      // failures get one more chance as ":0"-style explicit zero.
      size_t Colon = TcpAddr.rfind(':');
      if (Colon != std::string::npos &&
          TcpAddr.substr(Colon + 1) == "0") {
        TcpHost = TcpAddr.substr(0, Colon);
        if (TcpHost.empty())
          TcpHost = "127.0.0.1";
        TcpPort = 0;
      } else {
        std::fprintf(stderr, "msqd: bad --tcp address: %s\n", Err.c_str());
        return 2;
      }
    }
  }

  // A worker completing a request for a vanished client must not kill
  // the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  // Deterministic fault injection (testing): MSQ_FAULT_SCHEDULE arms the
  // named points for this process. A malformed schedule is a usage error
  // — failing loudly beats silently running the wrong chaos experiment.
  {
    std::string FaultErr;
    if (!fault::configureFromEnvironment(&FaultErr)) {
      std::fprintf(stderr, "msqd: bad MSQ_FAULT_SCHEDULE: %s\n",
                   FaultErr.c_str());
      return 2;
    }
  }

  // Structured request log: one JSON line per event on stderr.
  static std::mutex LogMutex;
  if (!Quiet)
    SO.LogSink = [](const std::string &Line) {
      std::lock_guard<std::mutex> Lock(LogMutex);
      std::fprintf(stderr, "%s\n", Line.c_str());
    };

  Server S(SO);

  // Initial macro library, same flags as msqc.
  {
    std::vector<SourceUnit> Units;
    for (const std::string &Path : Libraries) {
      std::string Text;
      if (!readFile(Path, Text)) {
        std::fprintf(stderr, "msqd: cannot read library '%s'\n",
                     Path.c_str());
        return 1;
      }
      Units.push_back({Path, std::move(Text)});
    }
    if (StdLib || !Units.empty()) {
      Server::ReloadOutcome O = S.reloadLibrary(Units, StdLib);
      if (!O.Success) {
        std::fprintf(stderr, "msqd: library failed to load:\n%s",
                     O.Diagnostics.c_str());
        return 1;
      }
    }
  }

  // Interactive sessions (msq-repl / msq-lsp) live beside the worker
  // pool; the manager owns their engines and the idle reaper.
  SessionManager Sessions(S, SMO);
  ShardServeOptions Serve;
  Serve.Sessions = &Sessions;
  Serve.IdleTimeoutMillis = IdleTimeoutMillis;

  if (Stdio) {
    auto C = std::make_shared<Conn>(0, 1, /*OwnsFds=*/false);
    serveShardConnection(C, S, Auth, Serve); // returns on stdin EOF
    S.drain();
    return 0;
  }

  FrameServer FS;
  FrameServerOptions FO;
  FO.UnixPath = SocketPath;
  FO.TcpEnabled = !TcpAddr.empty();
  FO.TcpHost = TcpHost;
  FO.TcpPort = TcpPort;
  std::string Err;
  if (!FS.start(FO,
                [&S, &Auth, &Serve](std::shared_ptr<Conn> C) {
                  serveShardConnection(C, S, Auth, Serve);
                },
                &Err)) {
    std::fprintf(stderr, "msqd: cannot listen: %s\n", Err.c_str());
    return 1;
  }

  WakeWriteFd = FS.wakeWriteFd();
  std::signal(SIGTERM, onTermSignal);
  std::signal(SIGINT, onTermSignal);

  // Ready line: one JSON object naming every bound endpoint (the
  // harness reads "port" back when --tcp asked for an ephemeral one).
  {
    std::string Ready = "{\"event\":\"ready\"";
    if (!SocketPath.empty())
      Ready += ",\"socket\":\"" + jsonEscape(SocketPath) + "\"";
    if (FO.TcpEnabled) {
      Ready += ",\"host\":\"" + jsonEscape(TcpHost) + "\",\"port\":" +
               std::to_string(FS.tcpPort());
    }
    Ready += "}";
    std::fprintf(stdout, "%s\n", Ready.c_str());
    std::fflush(stdout);
  }

  FS.waitUntilWoken(); // SIGTERM/SIGINT (or listener death): begin drain

  // Drain: stop reading from every client (they see clean EOF on their
  // next request), complete everything admitted, then leave. The
  // listener's destructor unlinks the socket file.
  FS.closeConnectionReads();
  S.drain();
  FS.joinConnections();
  return 0;
}
