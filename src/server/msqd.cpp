//===----------------------------------------------------------------------===//
//
// msqd — the MS2 macro-expansion daemon. Owns one macro-library session
// and serves expand/reload_library/status/ping requests over a Unix
// domain socket (or stdin/stdout with --stdio), speaking the
// newline-delimited JSON protocol in server/Protocol.h.
//
//   msqd --socket /run/msqd.sock [options]
//   msqd --stdio [options]                 serve exactly one connection
//     -l <file>          load a macro-library file at startup (repeatable)
//     -stdlib            load the bundled standard macro library first
//     --workers N        worker threads (default: hardware concurrency)
//     --queue-cap N      admission queue bound (default 256)
//     --cache            enable the expansion cache
//     --cache-dir DIR    persistent cache tier directory
//     --max-meta-steps N default per-request fuel
//     --timeout-ms N     default per-request wall-clock budget
//     -hygienic, -c      hygienic expansion / compiled patterns
//     --quiet            suppress the structured request log (stderr)
//
// Lifecycle: on SIGTERM/SIGINT the daemon stops accepting connections
// and admitting requests, completes everything already admitted (each
// client still gets its responses), and exits 0. In --stdio mode, EOF on
// stdin triggers the same drain.
//
// Fault injection: MSQ_FAULT_SCHEDULE (see support/Fault.h) arms the
// deterministic fault layer for the whole process; transient accept
// failures are retried with capped exponential backoff, and worker
// crashes become structured per-request errors. Per-point counters are
// reported in the status response's "faults" object.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "server/Server.h"
#include "support/Fault.h"
#include "support/Socket.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace msq;

namespace {

//===----------------------------------------------------------------------===//
// One client connection. Requests are pipelined: expands are answered
// asynchronously from worker threads (out of order, correlated by id),
// so the write side is mutex-guarded and failure-latching — after the
// peer disconnects mid-request, completions quietly drop their writes
// instead of crashing or wedging a worker.
//===----------------------------------------------------------------------===//

struct Conn {
  Conn(int ReadFd, int WriteFd, bool OwnsFds)
      : ReadFd(ReadFd), WriteFd(WriteFd), OwnsFds(OwnsFds) {}
  ~Conn() {
    if (OwnsFds)
      ::close(ReadFd); // ReadFd == WriteFd for sockets
  }

  void send(const std::string &Frame) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    if (Dead)
      return;
    if (!writeFrame(WriteFd, Frame))
      Dead = true; // peer went away; drop subsequent writes
  }

  void beginRequest() {
    std::lock_guard<std::mutex> Lock(StateMutex);
    ++Outstanding;
  }

  void endRequest() {
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (--Outstanding == 0)
      Quiesced.notify_all();
  }

  /// Blocks until every submitted request has completed (their responses
  /// written or dropped); called before closing the connection.
  void waitQuiesced() {
    std::unique_lock<std::mutex> Lock(StateMutex);
    Quiesced.wait(Lock, [this] { return Outstanding == 0; });
  }

  int ReadFd;
  int WriteFd;
  bool OwnsFds;
  std::mutex WriteMutex;
  bool Dead = false;

  std::mutex StateMutex;
  std::condition_variable Quiesced;
  size_t Outstanding = 0;
};

void serveConnection(const std::shared_ptr<Conn> &C, Server &S) {
  FrameReader Reader(C->ReadFd, MaxFrameBytes);
  std::string Frame;
  for (;;) {
    FrameReader::Status St = Reader.next(Frame);
    if (St == FrameReader::Status::TooLong) {
      // The stream cannot be resynchronized after an oversized frame;
      // answer once, then drop the connection.
      C->send(makeErrorResponse(
          "", ErrorCode::FrameTooLarge,
          "frame exceeds " + std::to_string(MaxFrameBytes) + " bytes"));
      break;
    }
    if (St != FrameReader::Status::Frame)
      break; // EOF, truncated frame, or read error: tear down cleanly

    Request Req;
    ParseOutcome PO = parseRequest(Frame, Req);
    if (!PO.Ok) {
      C->send(makeErrorResponse(Req.Id, PO.Code, PO.Message));
      continue;
    }

    switch (Req.Ty) {
    case Request::Type::Ping:
      C->send(makePongResponse(Req.Id));
      break;
    case Request::Type::Status:
      C->send(makeStatusResponse(Req.Id, S.metricsJson()));
      break;
    case Request::Type::ReloadLibrary: {
      Server::ReloadOutcome O =
          S.reloadLibrary(Req.Sources, Req.LoadStdlib);
      if (O.Success)
        C->send(makeReloadResponse(Req.Id, O.Generation, O.Changed));
      else
        C->send(makeErrorResponse(Req.Id, ErrorCode::ReloadFailed,
                                  O.Diagnostics));
      break;
    }
    case Request::Type::Expand:
    case Request::Type::Lint: {
      RequestOptions RO;
      RO.MaxMetaSteps = Req.MaxMetaSteps;
      RO.TimeoutMillis = Req.TimeoutMillis;
      RO.UseCache = Req.UseCache;
      RO.Provenance = Req.Provenance;
      RO.LintOnly = Req.Ty == Request::Type::Lint;
      RO.Tag = Req.Id;
      const bool IsLint = RO.LintOnly;
      C->beginRequest();
      std::string Id = Req.Id;
      std::shared_ptr<Conn> CRef = C;
      Server::Admission A = S.submit(
          {Req.Name, Req.Source}, std::move(RO),
          [CRef, Id, IsLint](const ExpandResult &R, uint64_t Gen) {
            CRef->send(IsLint ? makeLintResponse(Id, R, Gen)
                              : makeExpandResponse(Id, R, Gen));
            CRef->endRequest();
          });
      if (A == Server::Admission::Overloaded) {
        C->send(makeErrorResponse(Id, ErrorCode::Overloaded,
                                  "admission queue full; retry later"));
        C->endRequest();
      } else if (A == Server::Admission::Draining) {
        C->send(makeErrorResponse(Id, ErrorCode::ShuttingDown,
                                  "server is draining"));
        C->endRequest();
      }
      break;
    }
    }
  }
  C->waitQuiesced();
}

//===----------------------------------------------------------------------===//
// Signal-driven shutdown: the handler only writes one byte to a pipe the
// accept loop polls (async-signal-safe); all real work happens on the
// main thread.
//===----------------------------------------------------------------------===//

int WakeWriteFd = -1;

void onTermSignal(int) {
  if (WakeWriteFd >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t N = ::write(WakeWriteFd, &B, 1);
  }
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: msqd (--socket PATH | --stdio) [-stdlib] [-l library.c]...\n"
      "            [--workers N] [--queue-cap N] [--cache]\n"
      "            [--cache-dir DIR] [--max-meta-steps N] [--timeout-ms N]\n"
      "            [-hygienic] [-c] [--quiet]\n");
  return Code;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath;
  bool Stdio = false;
  bool StdLib = false;
  bool Quiet = false;
  std::vector<std::string> Libraries;
  ServerOptions SO;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "msqd: %s needs an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--socket") {
      const char *V = NextArg("--socket");
      if (!V)
        return 2;
      SocketPath = V;
    } else if (Arg == "--stdio") {
      Stdio = true;
    } else if (Arg == "-l") {
      const char *V = NextArg("-l");
      if (!V)
        return 2;
      Libraries.push_back(V);
    } else if (Arg == "-stdlib") {
      StdLib = true;
    } else if (Arg == "--workers") {
      const char *V = NextArg("--workers");
      if (!V)
        return 2;
      SO.Workers = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--queue-cap") {
      const char *V = NextArg("--queue-cap");
      if (!V)
        return 2;
      SO.QueueCapacity = std::strtoul(V, nullptr, 10);
    } else if (Arg == "--cache") {
      SO.EngineOpts.EnableExpansionCache = true;
    } else if (Arg == "--cache-dir") {
      const char *V = NextArg("--cache-dir");
      if (!V)
        return 2;
      SO.EngineOpts.EnableExpansionCache = true;
      SO.EngineOpts.ExpansionCacheDir = V;
    } else if (Arg == "--max-meta-steps") {
      const char *V = NextArg("--max-meta-steps");
      if (!V)
        return 2;
      SO.EngineOpts.MaxMetaSteps = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--timeout-ms") {
      const char *V = NextArg("--timeout-ms");
      if (!V)
        return 2;
      SO.EngineOpts.UnitTimeoutMillis = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "-hygienic") {
      SO.EngineOpts.HygienicExpansion = true;
    } else if (Arg == "-c") {
      SO.EngineOpts.UseCompiledPatterns = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-h" || Arg == "--help") {
      return usage(0);
    } else {
      std::fprintf(stderr, "msqd: unknown argument '%s'\n", Arg.c_str());
      return usage(2);
    }
  }
  if (Stdio == !SocketPath.empty()) {
    std::fprintf(stderr, "msqd: pass exactly one of --socket and --stdio\n");
    return usage(2);
  }

  // A worker completing a request for a vanished client must not kill
  // the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  // Deterministic fault injection (testing): MSQ_FAULT_SCHEDULE arms the
  // named points for this process. A malformed schedule is a usage error
  // — failing loudly beats silently running the wrong chaos experiment.
  {
    std::string FaultErr;
    if (!fault::configureFromEnvironment(&FaultErr)) {
      std::fprintf(stderr, "msqd: bad MSQ_FAULT_SCHEDULE: %s\n",
                   FaultErr.c_str());
      return 2;
    }
  }

  // Structured request log: one JSON line per event on stderr.
  static std::mutex LogMutex;
  if (!Quiet)
    SO.LogSink = [](const std::string &Line) {
      std::lock_guard<std::mutex> Lock(LogMutex);
      std::fprintf(stderr, "%s\n", Line.c_str());
    };

  Server S(SO);

  // Initial macro library, same flags as msqc.
  {
    std::vector<SourceUnit> Units;
    for (const std::string &Path : Libraries) {
      std::string Text;
      if (!readFile(Path, Text)) {
        std::fprintf(stderr, "msqd: cannot read library '%s'\n",
                     Path.c_str());
        return 1;
      }
      Units.push_back({Path, std::move(Text)});
    }
    if (StdLib || !Units.empty()) {
      Server::ReloadOutcome O = S.reloadLibrary(Units, StdLib);
      if (!O.Success) {
        std::fprintf(stderr, "msqd: library failed to load:\n%s",
                     O.Diagnostics.c_str());
        return 1;
      }
    }
  }

  if (Stdio) {
    auto C = std::make_shared<Conn>(0, 1, /*OwnsFds=*/false);
    serveConnection(C, S); // returns on stdin EOF
    S.drain();
    return 0;
  }

  UnixListener Listener;
  std::string Err;
  if (!Listener.listenOn(SocketPath, &Err)) {
    std::fprintf(stderr, "msqd: cannot listen on '%s': %s\n",
                 SocketPath.c_str(), Err.c_str());
    return 1;
  }

  int WakePipe[2];
  if (::pipe(WakePipe) != 0) {
    std::fprintf(stderr, "msqd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  WakeWriteFd = WakePipe[1];
  std::signal(SIGTERM, onTermSignal);
  std::signal(SIGINT, onTermSignal);

  std::fprintf(stdout, "{\"event\":\"ready\",\"socket\":\"%s\"}\n",
               jsonEscape(SocketPath).c_str());
  std::fflush(stdout);

  std::vector<std::thread> ConnThreads;
  std::mutex ConnsMutex;
  std::vector<std::weak_ptr<Conn>> Conns;

  // Transient accept failures (fd exhaustion, injected server.accept
  // faults) back off exponentially — 1ms doubling to a 100ms cap — and
  // retry; the pending connection waits in the listen backlog meanwhile.
  // Success resets the backoff. Only a non-transient failure (the
  // listener itself died) gives up the loop.
  unsigned AcceptBackoffMs = 1;
  for (;;) {
    bool Woken = false;
    bool Transient = false;
    int Fd = Listener.acceptClient(WakePipe[0], Woken, &Transient);
    if (Woken)
      break; // SIGTERM/SIGINT: begin drain
    if (Fd < 0) {
      if (Transient) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(AcceptBackoffMs));
        if (AcceptBackoffMs < 100)
          AcceptBackoffMs = std::min(AcceptBackoffMs * 2, 100u);
        continue;
      }
      break; // listener failed; drain and exit rather than spin
    }
    AcceptBackoffMs = 1;
    auto C = std::make_shared<Conn>(Fd, Fd, /*OwnsFds=*/true);
    {
      std::lock_guard<std::mutex> Lock(ConnsMutex);
      Conns.push_back(C);
    }
    ConnThreads.emplace_back([C, &S] { serveConnection(C, S); });
  }

  // Drain: stop reading from every client (they see clean EOF on their
  // next request), complete everything admitted, then leave. The
  // listener's destructor unlinks the socket file.
  {
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    for (const std::weak_ptr<Conn> &W : Conns)
      if (std::shared_ptr<Conn> C = W.lock())
        ::shutdown(C->ReadFd, SHUT_RD);
  }
  S.drain();
  for (std::thread &T : ConnThreads)
    T.join();
  ::close(WakePipe[0]);
  ::close(WakePipe[1]);
  return 0;
}
