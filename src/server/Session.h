//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interactive expansion sessions for msqd. A session is a long-lived,
/// id-addressed expansion state living next to the stateless worker pool:
/// its engine is seeded from the daemon's current library snapshot and
/// then ACCUMULATES — macro definitions and meta-global writes persist
/// across evals, which is the paper's `metadcl` accumulation model made
/// interactive. msq-repl holds one session per process; msq-lsp holds one
/// per editor workspace and drives its documents through the session's
/// private IncrementalDriver, so a one-macro edit re-expands on a warm
/// (tree/token) path instead of from cold.
///
/// Lifecycle and failure discipline:
///  * Sessions are owned by the manager, not by connections — a client
///    can reconnect and keep evaluating, and one connection can multiplex
///    several sessions.
///  * A global session cap and an optional per-tenant cap bound the
///    memory a tenant's editors can pin (each session owns an engine).
///    Opens beyond a cap answer `quota_exceeded`.
///  * An idle session (no eval for --session-idle-timeout) is evicted by
///    a reaper thread; later evals answer `session_lost` and the client
///    reopens. The same structured `session_lost` covers a session whose
///    eval crashed (real or injected via the `session.eval` fault point):
///    the session is marked dead, the daemon stays up, and every other
///    session is untouched.
///  * Evals run on the calling (connection) thread under the session's
///    own mutex — interactive latency never queues behind batch work.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SERVER_SESSION_H
#define MSQ_SERVER_SESSION_H

#include "server/Protocol.h"
#include "server/Server.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace msq {

struct SessionManagerOptions {
  /// Most sessions open at once, across all tenants. 0 = unlimited.
  size_t MaxSessions = 64;
  /// Most sessions one tenant may hold open. 0 = unlimited.
  size_t PerTenantSessions = 0;
  /// Evict a session after this long without an eval. 0 = never.
  unsigned IdleTimeoutMillis = 0;
};

/// Owns every interactive session of one daemon. Thread-safe; see the
/// file comment for the lifecycle rules.
class SessionManager {
public:
  SessionManager(Server &Srv, SessionManagerOptions SMO);
  ~SessionManager(); ///< Closes every session and joins the reaper.
  SessionManager(const SessionManager &) = delete;
  SessionManager &operator=(const SessionManager &) = delete;

  /// Handles a `session_open` request: builds a session seeded with the
  /// daemon library plus R.Sources. On success fills \p SessionId; on
  /// failure fills \p Code/\p Message for the error response
  /// (QuotaExceeded, BadRequest for broken seed sources, Internal for an
  /// injected `session.open` fault).
  bool open(const Request &R, const std::string &Tenant,
            std::string &SessionId, ErrorCode &Code, std::string &Message);

  /// Handles a `session_eval` request. On success fills \p Out; on
  /// failure fills \p Code/\p Message (SessionLost for unknown/evicted/
  /// crashed sessions, BadRequest for an unknown mode).
  bool eval(const Request &R, SessionEvalResult &Out, ErrorCode &Code,
            std::string &Message);

  /// Handles `session_close`. False when the id is unknown (answer
  /// SessionLost); \p Evals reports the session's lifetime eval count.
  bool close(const std::string &SessionId, uint64_t &Evals);

  /// Drops every session (daemon drain).
  void closeAll();

  size_t sessionCount() const;

  /// {"open":N,"opened_total":N,"closed_total":N,"evals_total":N,
  ///  "crashed_total":N,"evicted_idle":N,"rejected_quota":N,
  ///  "paths":{"eval":N,"clean":N,"tree":N,"tokens":N,"cold":N}}
  std::string metricsJson() const;

private:
  struct Session;

  std::shared_ptr<Session> find(const std::string &Id);
  void reaperLoop();

  Server &Srv;
  SessionManagerOptions SMO;

  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<Session>> Sessions;
  std::map<std::string, size_t> TenantCounts;
  uint64_t NextId = 1;

  // Lifetime counters (guarded by M).
  uint64_t OpenedTotal = 0;
  uint64_t ClosedTotal = 0;
  uint64_t EvalsTotal = 0;
  uint64_t CrashedTotal = 0;
  uint64_t EvictedIdle = 0;
  uint64_t RejectedQuota = 0;
  uint64_t PathCounts[5] = {0, 0, 0, 0, 0}; // eval/clean/tree/tokens/cold

  std::condition_variable ReaperCv;
  bool Stopping = false;
  std::thread Reaper;
};

} // namespace msq

#endif // MSQ_SERVER_SESSION_H
