//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/RemoteCacheClient.h"

#include "server/Protocol.h"
#include "support/Fault.h"

using namespace msq;

namespace {

/// Breaker tuning: three consecutive failures open it; 256 skipped
/// operations later one probe is allowed through.
constexpr uint32_t BreakerTripAfter = 3;
constexpr int32_t BreakerSkipBudget = 256;

} // namespace

RemoteCacheClient::RemoteCacheClient(std::string Addr, int TimeoutMs)
    : Address(std::move(Addr)), TimeoutMillis(TimeoutMs) {
  AddressOk = parseHostPort(Address, Host, Port, nullptr);
}

bool RemoteCacheClient::breakerOpen() {
  if (ConsecutiveFailures.load(std::memory_order_relaxed) < BreakerTripAfter)
    return false;
  // Open: burn one unit of skip budget per operation; the op that
  // drains it becomes the probe.
  if (SkipRemaining.fetch_sub(1, std::memory_order_relaxed) > 0)
    return true;
  SkipRemaining.store(BreakerSkipBudget, std::memory_order_relaxed);
  return false;
}

void RemoteCacheClient::recordFailure() {
  if (ConsecutiveFailures.fetch_add(1, std::memory_order_relaxed) + 1 ==
      BreakerTripAfter)
    SkipRemaining.store(BreakerSkipBudget, std::memory_order_relaxed);
}

void RemoteCacheClient::recordSuccess() {
  ConsecutiveFailures.store(0, std::memory_order_relaxed);
}

bool RemoteCacheClient::ensureConnected() {
  if (Fd.valid())
    return true;
  if (!AddressOk)
    return false;
  int S = connectTcp(Host, Port, nullptr);
  if (S < 0)
    return false;
  setSocketTimeout(S, TimeoutMillis);
  Fd.reset(S);
  return true;
}

bool RemoteCacheClient::roundTrip(const std::string &Frame,
                                  std::string &Response) {
  if (!ensureConnected())
    return false;
  if (!writeFrame(Fd.get(), Frame)) {
    Fd.reset();
    return false;
  }
  FrameReader Reader(Fd.get(), MaxFrameBytes);
  if (Reader.next(Response) != FrameReader::Status::Frame) {
    Fd.reset();
    return false;
  }
  return true;
}

bool RemoteCacheClient::get(const std::string &Key, std::string &Bytes,
                            CacheStats &Stats) {
  if (breakerOpen())
    return false; // skipped, not an error: the tier is known-down
  std::lock_guard<std::mutex> Lock(Mutex);
  for (int Attempt = 0;; ++Attempt) {
    bool Failed = fault::shouldFail(fault::Point::RemoteCacheGet);
    std::string Response;
    if (Failed)
      Fd.reset(); // an injected trip models a dead connection
    else
      Failed = !roundTrip(
          makeCacheGetRequest(std::to_string(NextId++), Key), Response);
    if (!Failed) {
      // {"type":"cache_entry","found":B[,"data":HEX]} — anything else
      // (an error response, junk) counts as a protocol failure.
      json::Value Doc;
      const json::Value *Ty = nullptr, *Found = nullptr;
      if (json::parse(Response, Doc, nullptr) &&
          (Ty = Doc.get("type")) && Ty->isString() &&
          Ty->Str == "cache_entry" && (Found = Doc.get("found")) &&
          Found->K == json::Value::Kind::Bool) {
        recordSuccess();
        if (!Found->B)
          return false; // clean miss
        const json::Value *Data = Doc.get("data");
        if (Data && Data->isString() && fromHex(Data->Str, Bytes))
          return true;
        ++Stats.RemoteErrors; // found but undecodable — corrupt frame
        return false;
      }
      Failed = true;
      Fd.reset();
    }
    if (Attempt == 1) {
      ++Stats.RemoteErrors;
      recordFailure();
      return false;
    }
    // Retry once on a fresh connection (roundTrip re-dials).
  }
}

void RemoteCacheClient::put(const std::string &Key, const std::string &Bytes,
                            CacheStats &Stats) {
  if (breakerOpen())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (int Attempt = 0;; ++Attempt) {
    bool Failed = fault::shouldFail(fault::Point::RemoteCachePut);
    std::string Response;
    if (Failed)
      Fd.reset();
    else
      Failed = !roundTrip(
          makeCachePutRequest(std::to_string(NextId++), Key, Bytes),
          Response);
    if (!Failed) {
      json::Value Doc;
      const json::Value *Ty = nullptr, *Stored = nullptr;
      if (json::parse(Response, Doc, nullptr) &&
          (Ty = Doc.get("type")) && Ty->isString() &&
          Ty->Str == "cache_stored" && (Stored = Doc.get("stored")) &&
          Stored->K == json::Value::Kind::Bool) {
        recordSuccess();
        if (Stored->B)
          ++Stats.RemoteStores;
        else
          ++Stats.RemoteErrors; // daemon refused the entry
        return;
      }
      Failed = true;
      Fd.reset();
    }
    if (Attempt == 1) {
      ++Stats.RemoteErrors;
      recordFailure();
      return;
    }
  }
}
