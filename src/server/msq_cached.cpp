//===----------------------------------------------------------------------===//
//
// msq-cached — the shared remote cache daemon for msqd clusters. Holds
// serialized content-addressed expansion entries (the same "MSQCACHE"
// blobs the local disk tier writes) behind the NDJSON cache protocol,
// so every shard's warm hits are visible to every other shard and to
// cold CI machines.
//
//   msq-cached --tcp HOST:PORT [--socket PATH] [--dir DIR] [--quiet]
//
// SIGTERM/SIGINT drain and exit 0. Entries are validated on the way in
// (a put that does not deserialize against its key is rejected), so the
// daemon can never serve bytes a shard could not decode.
//
//===----------------------------------------------------------------------===//

#include "server/CacheDaemon.h"
#include "server/Protocol.h"
#include "support/Fault.h"
#include "support/Socket.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <unistd.h>

using namespace msq;

namespace {

int WakeWriteFd = -1;

void onTermSignal(int) {
  if (WakeWriteFd >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t N = ::write(WakeWriteFd, &B, 1);
  }
}

int usage(int Code) {
  std::fprintf(Code ? stderr : stdout,
               "usage: msq-cached (--tcp HOST:PORT | --socket PATH)\n"
               "                  [--dir DIR] [--quiet]\n");
  return Code;
}

} // namespace

int main(int argc, char **argv) {
  std::string TcpAddr;
  std::string SocketPath;
  std::string DiskDir;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "msq-cached: %s needs an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--tcp") {
      const char *V = NextArg("--tcp");
      if (!V)
        return 2;
      TcpAddr = V;
    } else if (Arg == "--socket") {
      const char *V = NextArg("--socket");
      if (!V)
        return 2;
      SocketPath = V;
    } else if (Arg == "--dir") {
      const char *V = NextArg("--dir");
      if (!V)
        return 2;
      DiskDir = V;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-h" || Arg == "--help") {
      return usage(0);
    } else {
      std::fprintf(stderr, "msq-cached: unknown argument '%s'\n",
                   Arg.c_str());
      return usage(2);
    }
  }
  if (TcpAddr.empty() && SocketPath.empty())
    return usage(2);

  std::signal(SIGPIPE, SIG_IGN);
  {
    std::string FaultErr;
    if (!fault::configureFromEnvironment(&FaultErr)) {
      std::fprintf(stderr, "msq-cached: bad MSQ_FAULT_SCHEDULE: %s\n",
                   FaultErr.c_str());
      return 2;
    }
  }

  std::string TcpHost;
  uint16_t TcpPort = 0;
  if (!TcpAddr.empty()) {
    std::string Err;
    if (!parseHostPort(TcpAddr, TcpHost, TcpPort, &Err)) {
      size_t Colon = TcpAddr.rfind(':');
      if (Colon != std::string::npos && TcpAddr.substr(Colon + 1) == "0") {
        TcpHost = TcpAddr.substr(0, Colon);
        if (TcpHost.empty())
          TcpHost = "127.0.0.1";
        TcpPort = 0;
      } else {
        std::fprintf(stderr, "msq-cached: bad --tcp address: %s\n",
                     Err.c_str());
        return 2;
      }
    }
  }

  CacheStore CS(DiskDir);

  FrameServer FS;
  FrameServerOptions FO;
  FO.UnixPath = SocketPath;
  FO.TcpEnabled = !TcpAddr.empty();
  FO.TcpHost = TcpHost;
  FO.TcpPort = TcpPort;
  std::string Err;
  if (!FS.start(FO,
                [&CS](std::shared_ptr<Conn> C) {
                  serveCacheConnection(C, CS);
                },
                &Err)) {
    std::fprintf(stderr, "msq-cached: cannot listen: %s\n", Err.c_str());
    return 1;
  }

  WakeWriteFd = FS.wakeWriteFd();
  std::signal(SIGTERM, onTermSignal);
  std::signal(SIGINT, onTermSignal);

  {
    std::string Ready = "{\"event\":\"ready\"";
    if (!SocketPath.empty())
      Ready += ",\"socket\":\"" + jsonEscape(SocketPath) + "\"";
    if (FO.TcpEnabled)
      Ready += ",\"host\":\"" + jsonEscape(TcpHost) + "\",\"port\":" +
               std::to_string(FS.tcpPort());
    Ready += "}";
    std::fprintf(stdout, "%s\n", Ready.c_str());
    std::fflush(stdout);
  }

  FS.waitUntilWoken();
  FS.closeConnectionReads();
  FS.joinConnections();
  if (!Quiet)
    std::fprintf(stderr, "%s\n", CS.metricsJson().c_str());
  return 0;
}
