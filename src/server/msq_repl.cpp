//===----------------------------------------------------------------------===//
//
// msq-repl — interactive expansion sessions against msqd. Opens one
// long-lived protocol session whose meta-globals persist across inputs
// (the paper's `metadcl` accumulation, interactively): each plain input
// line is evaluated with mode "eval", so macro definitions and
// meta-global writes carry forward to later inputs.
//
//   msq-repl (--socket PATH | --tcp HOST:PORT) [options]
//     --token TOK      authenticate with a hello first (TCP auth)
//     --retry-ms N     keep retrying the connect for N ms (startup)
//     -stdlib          seed the session with the standard macro library
//     -l FILE          seed the session with a macro-library file
//     --provenance     track invocation backtraces in diagnostics
//
// Inputs are line-oriented (a trailing '\' continues onto the next
// line). Lines starting with ':' are commands:
//
//   :expand SOURCE   expand SOURCE as a preview — session state is
//                    restored afterwards (definitions do not persist)
//   :lint SOURCE     lint SOURCE's macro definitions
//   :trace on|off    toggle per-invocation expansion traces
//   :globals         list the session's meta-globals (name, kind, value)
//   :reset           restore the session to its just-opened state
//   :quit            close the session and exit (as does EOF)
//
// Output is deterministic and line-oriented (the golden-transcript test
// tests/repl_smoke.sh depends on it): expansion output verbatim,
// diagnostics as "! " lines, command acknowledgements as "= " lines. A
// `session_lost` answer (evicted, crashed, daemon restarted its session
// state) is degraded gracefully: the REPL reopens a fresh session, warns
// that accumulated state was lost, and keeps going.
//
// Exit codes: 0 clean EOF/:quit; 2 transport or protocol failure.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "support/Socket.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace msq;

namespace {

int usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: msq-repl (--socket PATH | --tcp HOST:PORT) [--token TOK]\n"
      "                [--retry-ms N] [-stdlib] [-l FILE]... "
      "[--provenance]\n");
  return Code;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

FdHandle connectWithRetry(const std::string &Path, const std::string &Host,
                          uint16_t Port, unsigned RetryMillis,
                          std::string &Err) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(RetryMillis);
  for (;;) {
    FdHandle Fd(Path.empty() ? connectTcp(Host, Port, &Err)
                             : connectUnix(Path, &Err));
    if (Fd.valid())
      return Fd;
    if (std::chrono::steady_clock::now() >= Deadline)
      return FdHandle();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

struct Repl {
  int Fd = -1;
  std::unique_ptr<FrameReader> Reader;
  std::string SessionId;
  bool Stdlib = false;
  bool Provenance = false;
  std::vector<SourceUnit> Seeds;
  unsigned NextId = 1;
  bool Interactive = false;

  std::string freshId() { return "r" + std::to_string(NextId++); }

  /// One synchronous round trip; false on transport failure.
  bool rpc(const std::string &Frame, json::Value &Doc) {
    if (!writeFrame(Fd, Frame))
      return false;
    std::string Resp;
    if (Reader->next(Resp) != FrameReader::Status::Frame)
      return false;
    std::string Err;
    return json::parse(Resp, Doc, &Err) && Doc.isObject();
  }

  bool openSession() {
    json::Value Doc;
    if (!rpc(makeSessionOpenRequest(freshId(), Stdlib, Provenance, Seeds),
             Doc))
      return false;
    const json::Value *Ty = Doc.get("type");
    if (!Ty || Ty->Str != "session_opened") {
      const json::Value *Msg = Doc.get("message");
      std::fprintf(stderr, "msq-repl: session open refused: %s\n",
                   Msg && Msg->isString() ? Msg->Str.c_str() : "unknown");
      return false;
    }
    const json::Value *Sid = Doc.get("session");
    if (!Sid || !Sid->isString())
      return false;
    SessionId = Sid->Str;
    return true;
  }

  /// Evaluates (Mode, Source); renders the response. False only on
  /// transport failure — protocol-level errors are rendered and survived.
  bool evalAndRender(const std::string &Mode, const std::string &Source) {
    json::Value Doc;
    // The unit name must not look like an internal buffer ("<...>"):
    // the linter skips those by design, and :lint must see this input.
    if (!rpc(makeSessionEvalRequest(freshId(), SessionId, Mode, "repl",
                                    Source),
             Doc))
      return false;
    const json::Value *Ty = Doc.get("type");
    if (Ty && Ty->Str == "error") {
      const json::Value *Code = Doc.get("error");
      const json::Value *Msg = Doc.get("message");
      if (Code && Code->Str == "session_lost") {
        // Graceful degradation: the accumulated session state is gone
        // (idle eviction, crash, daemon restart). Reopen and continue
        // with a fresh session rather than dying mid-transcript.
        std::printf("! session lost (%s); reopened with fresh state\n",
                    Msg && Msg->isString() ? Msg->Str.c_str() : "?");
        return openSession();
      }
      std::printf("! error %s: %s\n",
                  Code && Code->isString() ? Code->Str.c_str() : "?",
                  Msg && Msg->isString() ? Msg->Str.c_str() : "");
      return true;
    }

    const json::Value *Diags = Doc.get("diagnostics");
    if (Diags && Diags->isString() && !Diags->Str.empty()) {
      std::istringstream In(Diags->Str);
      std::string Line;
      while (std::getline(In, Line))
        std::printf("! %s\n", Line.c_str());
    }
    const json::Value *Output = Doc.get("output");
    if (Output && Output->isString() && !Output->Str.empty())
      std::fputs(Output->Str.c_str(), stdout);
    if (const json::Value *Trace = Doc.get("trace"))
      if (Trace->isString() && !Trace->Str.empty()) {
        std::printf("= trace:\n");
        std::fputs(Trace->Str.c_str(), stdout);
      }
    if (const json::Value *Globals = Doc.get("globals")) {
      for (const json::Value &G : Globals->Arr) {
        const json::Value *N = G.get("name");
        const json::Value *K = G.get("kind");
        const json::Value *V = G.get("value");
        std::printf("= %s : %s = %s\n",
                    N && N->isString() ? N->Str.c_str() : "?",
                    K && K->isString() ? K->Str.c_str() : "?",
                    V && V->isString() ? V->Str.c_str() : "?");
      }
    }
    if (const json::Value *Lints = Doc.get("lints")) {
      for (const json::Value &L : Lints->Arr) {
        const json::Value *Rule = L.get("rule");
        const json::Value *Msg = L.get("message");
        std::printf("! lint %s: %s\n",
                    Rule && Rule->isString() ? Rule->Str.c_str() : "?",
                    Msg && Msg->isString() ? Msg->Str.c_str() : "");
      }
    }
    std::fflush(stdout);
    return true;
  }

  bool command(const std::string &Line) {
    auto Rest = [&](size_t CmdLen) {
      size_t P = Line.find_first_not_of(" \t", CmdLen);
      return P == std::string::npos ? std::string() : Line.substr(P);
    };
    if (Line.rfind(":expand", 0) == 0)
      return evalAndRender("expand", Rest(7));
    if (Line.rfind(":lint", 0) == 0)
      return evalAndRender("lint", Rest(5));
    if (Line.rfind(":trace", 0) == 0) {
      bool On = Rest(6) != "off";
      if (!evalAndRender(On ? "trace_on" : "trace_off", ""))
        return false;
      std::printf("= trace %s\n", On ? "on" : "off");
      return true;
    }
    if (Line == ":globals")
      return evalAndRender("globals", "");
    if (Line == ":reset") {
      if (!evalAndRender("reset", ""))
        return false;
      std::printf("= session reset\n");
      return true;
    }
    std::printf("! unknown command %s\n", Line.c_str());
    return true;
  }
};

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, TcpAddr, Token;
  unsigned RetryMillis = 0;
  Repl R;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "msq-repl: %s needs an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--socket") {
      const char *V = NextArg("--socket");
      if (!V)
        return 2;
      SocketPath = V;
    } else if (Arg == "--tcp") {
      const char *V = NextArg("--tcp");
      if (!V)
        return 2;
      TcpAddr = V;
    } else if (Arg == "--token") {
      const char *V = NextArg("--token");
      if (!V)
        return 2;
      Token = V;
    } else if (Arg == "--retry-ms") {
      const char *V = NextArg("--retry-ms");
      if (!V)
        return 2;
      RetryMillis = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "-stdlib") {
      R.Stdlib = true;
    } else if (Arg == "--provenance") {
      R.Provenance = true;
    } else if (Arg == "-l") {
      const char *V = NextArg("-l");
      if (!V)
        return 2;
      std::string Text;
      if (!readFile(V, Text)) {
        std::fprintf(stderr, "msq-repl: cannot read '%s'\n", V);
        return 2;
      }
      R.Seeds.push_back({V, std::move(Text)});
    } else if (Arg == "-h" || Arg == "--help") {
      return usage(0);
    } else {
      std::fprintf(stderr, "msq-repl: unknown argument '%s'\n", Arg.c_str());
      return usage(2);
    }
  }
  if (SocketPath.empty() == TcpAddr.empty())
    return usage(2);

  std::string TcpHost;
  uint16_t TcpPort = 0;
  if (!TcpAddr.empty()) {
    std::string Err;
    if (!parseHostPort(TcpAddr, TcpHost, TcpPort, &Err)) {
      std::fprintf(stderr, "msq-repl: bad --tcp address: %s\n", Err.c_str());
      return 2;
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  std::string Err;
  FdHandle Fd =
      connectWithRetry(SocketPath, TcpHost, TcpPort, RetryMillis, Err);
  if (!Fd.valid()) {
    std::fprintf(stderr, "msq-repl: cannot connect: %s\n", Err.c_str());
    return 2;
  }
  R.Fd = Fd.get();
  R.Reader = std::make_unique<FrameReader>(R.Fd, MaxFrameBytes);
  R.Interactive = ::isatty(0);

  if (!Token.empty()) {
    json::Value Doc;
    if (!R.rpc(makeHelloRequest(R.freshId(), Token), Doc) ||
        !Doc.get("type") || Doc.get("type")->Str != "welcome") {
      std::fprintf(stderr, "msq-repl: authentication failed\n");
      return 2;
    }
  }
  if (!R.openSession()) {
    std::fprintf(stderr, "msq-repl: cannot open a session\n");
    return 2;
  }
  if (R.Interactive)
    std::printf("msq-repl: session %s open (:quit to leave)\n",
                R.SessionId.c_str());

  std::string Line, Input;
  for (;;) {
    if (R.Interactive) {
      std::fputs(Input.empty() ? "msq> " : "...> ", stdout);
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, Line))
      break;
    if (!Line.empty() && Line.back() == '\\') {
      Line.pop_back();
      Input += Line;
      Input += '\n';
      continue;
    }
    Input += Line;
    if (Input.empty())
      continue;
    bool Ok;
    if (Input == ":quit" || Input == ":q")
      break;
    if (Input[0] == ':')
      Ok = R.command(Input);
    else
      Ok = R.evalAndRender("eval", Input);
    Input.clear();
    if (!Ok) {
      std::fprintf(stderr, "msq-repl: connection lost\n");
      return 2;
    }
  }

  json::Value Doc;
  R.rpc(makeSessionCloseRequest(R.freshId(), R.SessionId), Doc);
  return 0;
}
