//===----------------------------------------------------------------------===//
//
// msq-router — the cluster front end. Speaks the ordinary msqd protocol
// to clients and consistent-hashes expand/lint requests onto a pool of
// msqd shards (reloads broadcast; status aggregates).
//
//   msq-router --tcp HOST:PORT --shard HOST:PORT [--shard ...]
//              [--socket PATH] [--timeout-ms N] [--quiet]
//
// A shard that cannot be reached or answers `overloaded` costs one
// retry on the ring successor; a request whose retry also fails is
// answered with a structured `degraded` error, never dropped. SIGTERM/
// SIGINT drain in-flight relays and exit 0.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "server/Router.h"
#include "support/Fault.h"
#include "support/Socket.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace msq;

namespace {

int WakeWriteFd = -1;

void onTermSignal(int) {
  if (WakeWriteFd >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t N = ::write(WakeWriteFd, &B, 1);
  }
}

int usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: msq-router (--tcp HOST:PORT | --socket PATH)\n"
      "                  --shard HOST:PORT [--shard HOST:PORT]...\n"
      "                  [--timeout-ms N] [--quiet]\n");
  return Code;
}

} // namespace

int main(int argc, char **argv) {
  std::string TcpAddr;
  std::string SocketPath;
  bool Quiet = false;
  RouterOptions RO;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "msq-router: %s needs an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--tcp") {
      const char *V = NextArg("--tcp");
      if (!V)
        return 2;
      TcpAddr = V;
    } else if (Arg == "--socket") {
      const char *V = NextArg("--socket");
      if (!V)
        return 2;
      SocketPath = V;
    } else if (Arg == "--shard") {
      const char *V = NextArg("--shard");
      if (!V)
        return 2;
      RO.Shards.push_back(V);
    } else if (Arg == "--timeout-ms") {
      const char *V = NextArg("--timeout-ms");
      if (!V)
        return 2;
      RO.TimeoutMillis = int(std::strtol(V, nullptr, 10));
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-h" || Arg == "--help") {
      return usage(0);
    } else {
      std::fprintf(stderr, "msq-router: unknown argument '%s'\n",
                   Arg.c_str());
      return usage(2);
    }
  }
  if (TcpAddr.empty() && SocketPath.empty())
    return usage(2);
  if (RO.Shards.empty()) {
    std::fprintf(stderr, "msq-router: at least one --shard is required\n");
    return usage(2);
  }

  std::signal(SIGPIPE, SIG_IGN);
  {
    std::string FaultErr;
    if (!fault::configureFromEnvironment(&FaultErr)) {
      std::fprintf(stderr, "msq-router: bad MSQ_FAULT_SCHEDULE: %s\n",
                   FaultErr.c_str());
      return 2;
    }
  }

  std::string TcpHost;
  uint16_t TcpPort = 0;
  if (!TcpAddr.empty()) {
    std::string Err;
    if (!parseHostPort(TcpAddr, TcpHost, TcpPort, &Err)) {
      size_t Colon = TcpAddr.rfind(':');
      if (Colon != std::string::npos && TcpAddr.substr(Colon + 1) == "0") {
        TcpHost = TcpAddr.substr(0, Colon);
        if (TcpHost.empty())
          TcpHost = "127.0.0.1";
        TcpPort = 0;
      } else {
        std::fprintf(stderr, "msq-router: bad --tcp address: %s\n",
                     Err.c_str());
        return 2;
      }
    }
  }

  Router R(std::move(RO));
  if (!R.ok()) {
    std::fprintf(stderr, "msq-router: %s\n", R.error().c_str());
    return 2;
  }

  FrameServer FS;
  FrameServerOptions FO;
  FO.UnixPath = SocketPath;
  FO.TcpEnabled = !TcpAddr.empty();
  FO.TcpHost = TcpHost;
  FO.TcpPort = TcpPort;
  std::string Err;
  if (!FS.start(FO,
                [&R](std::shared_ptr<Conn> C) { R.serveConnection(C); },
                &Err)) {
    std::fprintf(stderr, "msq-router: cannot listen: %s\n", Err.c_str());
    return 1;
  }

  WakeWriteFd = FS.wakeWriteFd();
  std::signal(SIGTERM, onTermSignal);
  std::signal(SIGINT, onTermSignal);

  {
    std::string Ready = "{\"event\":\"ready\"";
    if (!SocketPath.empty())
      Ready += ",\"socket\":\"" + jsonEscape(SocketPath) + "\"";
    if (FO.TcpEnabled)
      Ready += ",\"host\":\"" + jsonEscape(TcpHost) + "\",\"port\":" +
               std::to_string(FS.tcpPort());
    Ready += ",\"shards\":" + std::to_string(R.shardCount()) + "}";
    std::fprintf(stdout, "%s\n", Ready.c_str());
    std::fflush(stdout);
  }

  FS.waitUntilWoken();
  FS.closeConnectionReads();
  FS.joinConnections();
  if (!Quiet)
    std::fprintf(stderr, "%s\n", R.metricsJson().c_str());
  return 0;
}
