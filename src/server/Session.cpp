//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/Session.h"

#include "analysis/Lint.h"
#include "api/StdMacros.h"
#include "driver/Incremental.h"
#include "expand/DependencyMap.h"
#include "interp/Interpreter.h"
#include "printer/CPrinter.h"
#include "quasi/Quasi.h"
#include "support/Fault.h"
#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace msq;

namespace {

uint64_t nowMs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Renders one meta value for the :globals listing. Scalars inline,
/// AST values print as C, everything else falls back to the kind
/// description — enough to see what a `metadcl` accumulated.
std::string renderGlobalValue(const Value &V) {
  switch (V.kind()) {
  case Value::IntV:
    return std::to_string(V.intValue());
  case Value::FloatV: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", V.floatValue());
    return Buf;
  }
  case Value::StrV:
    return V.strValue();
  case Value::AstV:
    return printNode(V.astValue());
  default:
    return describeValue(V);
  }
}

/// The sorted {"name","kind","value"} array behind mode "globals" and the
/// REPL's :globals command. Innermost global frame wins on shadowing.
std::string renderGlobals(Engine &E) {
  std::map<std::string, const Value *> Named;
  for (const std::shared_ptr<EnvFrame> &F :
       E.interpreter().globalEnv().snapshot())
    for (const auto &[Sym, V] : F->Vars)
      Named[std::string(Sym.str())] = &V;
  std::string Out = "[";
  bool First = true;
  for (const auto &[Name, V] : Named) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    Out += jsonEscape(Name);
    Out += "\",\"kind\":\"";
    Out += V->kindName();
    Out += "\",\"value\":\"";
    Out += jsonEscape(renderGlobalValue(*V));
    Out += "\"}";
  }
  Out += ']';
  return Out;
}

} // namespace

/// One live session. The manager mutex guards the registry; this struct's
/// own mutex serializes evals, and Busy/LastTouchMs let the reaper skip
/// sessions with an eval in flight.
struct SessionManager::Session {
  std::string Id;
  std::string Tenant;
  bool Provenance = false;

  std::mutex M; ///< serializes evals on this session
  bool Crashed = false;
  std::string CrashReason;
  bool TraceOn = false;
  uint64_t Evals = 0;
  std::atomic<uint64_t> LastTouchMs{0};
  std::atomic<unsigned> Busy{0};

  /// The accumulating REPL engine: meta-globals and definitions persist
  /// across evals; Baseline is the state right after the library replay
  /// (what :reset restores).
  std::unique_ptr<Engine> E;
  Engine::SessionCheckpoint Baseline;

  /// Library units the session was seeded with (daemon library + open-time
  /// sources) and the LSP's editable library overlay, upserted by name.
  /// Base + Overlay is what the incremental driver's library replays.
  std::vector<SourceUnit> BaseUnits;
  std::vector<SourceUnit> Overlay;

  /// Lazily built on the first "unit"/"library" eval: the LSP document
  /// path. Lint stays DISABLED on the driver — the driver dirties every
  /// unit on any library change when linting is on, which would forfeit
  /// the warm paths; library-document lints come from lintSource in mode
  /// "library" instead.
  std::unique_ptr<IncrementalDriver> Driver;
  Engine::Options EvalOpts;

  std::vector<SourceUnit> driverLibrary() const {
    std::vector<SourceUnit> Lib = BaseUnits;
    Lib.insert(Lib.end(), Overlay.begin(), Overlay.end());
    return Lib;
  }

  void ensureDriver() {
    if (Driver)
      return;
    IncrementalOptions IO;
    IO.EngineOpts = EvalOpts;
    IO.EngineOpts.TraceExpansions = false;
    Driver = std::make_unique<IncrementalDriver>(IO);
    Driver->setLibrary(driverLibrary());
  }
};

SessionManager::SessionManager(Server &Srv, SessionManagerOptions SMO)
    : Srv(Srv), SMO(SMO) {
  if (SMO.IdleTimeoutMillis)
    Reaper = std::thread([this] { reaperLoop(); });
}

SessionManager::~SessionManager() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  ReaperCv.notify_all();
  if (Reaper.joinable())
    Reaper.join();
  closeAll();
}

void SessionManager::reaperLoop() {
  const unsigned Tick = std::clamp(SMO.IdleTimeoutMillis / 4u, 10u, 1000u);
  std::unique_lock<std::mutex> Lock(M);
  while (!Stopping) {
    ReaperCv.wait_for(Lock, std::chrono::milliseconds(Tick));
    if (Stopping)
      return;
    uint64_t Now = nowMs();
    for (auto It = Sessions.begin(); It != Sessions.end();) {
      Session &S = *It->second;
      if (S.Busy.load() == 0 &&
          Now - S.LastTouchMs.load() >= SMO.IdleTimeoutMillis) {
        auto TC = TenantCounts.find(S.Tenant);
        if (TC != TenantCounts.end() && TC->second > 0)
          --TC->second;
        ++EvictedIdle;
        It = Sessions.erase(It);
      } else {
        ++It;
      }
    }
  }
}

std::shared_ptr<SessionManager::Session>
SessionManager::find(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return nullptr;
  It->second->LastTouchMs.store(nowMs());
  ++It->second->Busy;
  return It->second;
}

bool SessionManager::open(const Request &R, const std::string &Tenant,
                          std::string &SessionId, ErrorCode &Code,
                          std::string &Message) {
  if (fault::shouldFail(fault::Point::SessionOpen)) {
    Code = ErrorCode::Internal;
    Message = "injected session.open fault";
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    if (SMO.MaxSessions && Sessions.size() >= SMO.MaxSessions) {
      ++RejectedQuota;
      Code = ErrorCode::QuotaExceeded;
      Message = "session quota exhausted (" +
                std::to_string(SMO.MaxSessions) + " open)";
      return false;
    }
    if (SMO.PerTenantSessions) {
      auto It = TenantCounts.find(Tenant);
      if (It != TenantCounts.end() && It->second >= SMO.PerTenantSessions) {
        ++RejectedQuota;
        Code = ErrorCode::QuotaExceeded;
        Message = "tenant session quota exhausted (" +
                  std::to_string(SMO.PerTenantSessions) + " open)";
        return false;
      }
    }
  }

  auto S = std::make_shared<Session>();
  S->Tenant = Tenant;
  S->Provenance = R.Provenance;
  Engine::Options EO = Srv.options().EngineOpts;
  EO.TraceExpansions = true; // recorded always, returned when :trace is on
  EO.CollectProfile = false;
  EO.EnableExpansionCache = false; // stateful sessions never share entries
  EO.Lint.Enabled = false;
  EO.TrackProvenance = R.Provenance;
  EO.EmitSourceMap = R.Provenance;
  S->EvalOpts = EO;
  S->E = std::make_unique<Engine>(EO);

  // Seed: the daemon's library snapshot, an optional stdlib, then the
  // open-time sources. Any seed failure is the client's problem — the
  // session is not created.
  SessionSnapshot Snap = Srv.librarySnapshot();
  bool HaveStdlib = false;
  if (Snap.valid())
    for (const SessionSnapshot::LogEntry &LE : Snap.log()) {
      if (LE.Unit.Name == "<msq-stdlib>")
        HaveStdlib = true;
      if (LE.ParseOnly) {
        S->E->parseSource(LE.Unit);
      } else {
        ExpandResult LR = S->E->expandUnrecorded(LE.Unit);
        if (!LR.Success) {
          Code = ErrorCode::Internal;
          Message = "library replay failed: " + LR.DiagnosticsText;
          return false;
        }
      }
      S->BaseUnits.push_back(LE.Unit);
    }
  if (R.LoadStdlib && !HaveStdlib) {
    SourceUnit Std{"<msq-stdlib>", standardMacroLibrarySource()};
    ExpandResult LR = S->E->expandUnrecorded(Std);
    if (!LR.Success) {
      Code = ErrorCode::Internal;
      Message = "stdlib load failed: " + LR.DiagnosticsText;
      return false;
    }
    S->BaseUnits.push_back(Std);
  }
  for (const SourceUnit &U : R.Sources) {
    ExpandResult LR = S->E->expandUnrecorded(U);
    if (!LR.Success) {
      Code = ErrorCode::BadRequest;
      Message = "session source \"" + U.Name +
                "\" failed to expand: " + LR.DiagnosticsText;
      return false;
    }
    S->BaseUnits.push_back(U);
  }
  S->Baseline = S->E->checkpoint();
  S->LastTouchMs.store(nowMs());

  {
    std::lock_guard<std::mutex> Lock(M);
    S->Id = "s" + std::to_string(NextId++);
    Sessions[S->Id] = S;
    ++TenantCounts[S->Tenant];
    ++OpenedTotal;
  }
  SessionId = S->Id;
  return true;
}

bool SessionManager::eval(const Request &R, SessionEvalResult &Out,
                          ErrorCode &Code, std::string &Message) {
  std::shared_ptr<Session> S = find(R.Session);
  if (!S) {
    Code = ErrorCode::SessionLost;
    Message = "unknown session \"" + R.Session +
              "\" (never opened, closed, or evicted idle) — reopen it";
    return false;
  }
  struct BusyGuard {
    Session &S;
    ~BusyGuard() {
      --S.Busy;
      S.LastTouchMs.store(nowMs());
    }
  } BG{*S};

  std::lock_guard<std::mutex> SLock(S->M);
  if (S->Crashed) {
    Code = ErrorCode::SessionLost;
    Message = "session \"" + S->Id + "\" crashed (" + S->CrashReason +
              ") — reopen it";
    return false;
  }

  const std::string &Mode = R.Mode;
  const std::string Name = R.Name.empty() ? "<repl>" : R.Name;
  int PathIdx = -1; // index into PathCounts, set by modes that expand
  try {
    if (fault::shouldFail(fault::Point::SessionEval))
      throw fault::InjectedCrash("injected session.eval fault");

    if (Mode == "eval" || Mode == "expand") {
      Engine::SessionCheckpoint CP;
      bool Preview = Mode == "expand";
      if (Preview) {
        CP = S->E->checkpoint();
        // Previews see the overlay library (documents pushed with mode
        // "library" live in the driver's library list, not the engine),
        // so an LSP hover expands with the same macros a unit eval uses.
        // The checkpoint restore below discards the replay again. The
        // previewed document itself is skipped: re-defining its own
        // macros on top of the overlay copy would be a redefinition.
        for (const SourceUnit &U : S->Overlay)
          if (U.Name != Name)
            S->E->expandUnrecorded(U);
      }
      S->E->interpreter().clearTraceLog();
      ExpandResult ER = S->E->expandUnrecorded({Name, R.Source, R.Base});
      if (Preview)
        S->E->restoreCheckpoint(CP);
      Out.Success = ER.Success;
      Out.Output = ER.Output;
      Out.Diagnostics = ER.DiagnosticsText;
      Out.Path = "eval";
      Out.Invocations = ER.InvocationsExpanded;
      Out.MetaSteps = ER.MetaStepsExecuted;
      Out.MacrosDefined = ER.MacrosDefined;
      Out.GlobalsMutated = ER.MetaGlobalsMutated;
      if (S->TraceOn) {
        Out.HasTrace = true;
        Out.Trace = ER.TraceText;
      }
      Out.SourceMapJson = ER.SourceMapJson;
      PathIdx = 0;
    } else if (Mode == "lint") {
      Engine::SessionCheckpoint CP = S->E->checkpoint();
      for (const SourceUnit &U : S->Overlay) // see the "expand" preview note
        if (U.Name != Name)
          S->E->expandUnrecorded(U);
      Engine::LintResult LR = S->E->lintSource({Name, R.Source, R.Base});
      S->E->restoreCheckpoint(CP);
      Out.Success = LR.Success;
      Out.Diagnostics = LR.DiagnosticsText;
      Out.Path = "none";
      Out.LintsJson = lintFindingsJson(LR.Report.Findings);
    } else if (Mode == "unit") {
      S->ensureDriver();
      IncrementalResult IR = S->Driver->run({{Name, R.Source, R.Base}});
      const ExpandResult &ER = IR.Results.at(0);
      Out.Success = ER.Success;
      Out.Output = ER.Output;
      Out.Diagnostics = ER.DiagnosticsText;
      Out.Path = incrementalPathName(IR.Outcomes.at(0).Path);
      Out.Invocations = ER.InvocationsExpanded;
      Out.MetaSteps = ER.MetaStepsExecuted;
      Out.MacrosDefined = ER.MacrosDefined;
      Out.GlobalsMutated = ER.MetaGlobalsMutated;
      Out.SourceMapJson = ER.SourceMapJson;
      if (Out.Path == "clean")
        PathIdx = 1;
      else if (Out.Path == "tree")
        PathIdx = 2;
      else if (Out.Path == "tokens")
        PathIdx = 3;
      else
        PathIdx = 4;
    } else if (Mode == "library") {
      // Validate the document against the session state first (under a
      // checkpoint, so a broken edit leaves nothing behind), lint it,
      // and only then swap it into the overlay + driver library. On
      // failure the driver keeps the last good library.
      Engine::SessionCheckpoint CP = S->E->checkpoint();
      ExpandResult ER = S->E->expandUnrecorded({Name, R.Source, R.Base});
      Engine::LintResult LR = S->E->lintSource({Name, R.Source, R.Base});
      S->E->restoreCheckpoint(CP);
      Out.Success = ER.Success;
      Out.Diagnostics = ER.DiagnosticsText;
      Out.Path = "none";
      Out.MacrosDefined = ER.MacrosDefined;
      Out.MetaSteps = ER.MetaStepsExecuted;
      Out.LintsJson = lintFindingsJson(LR.Report.Findings);
      if (ER.Success) {
        bool Replaced = false;
        for (SourceUnit &U : S->Overlay)
          if (U.Name == Name) {
            U.Source = R.Source;
            U.Base = R.Base;
            Replaced = true;
            break;
          }
        if (!Replaced)
          S->Overlay.push_back({Name, R.Source, R.Base});
        S->ensureDriver();
        S->Driver->setLibrary(S->driverLibrary());
      }
    } else if (Mode == "globals") {
      Out.Path = "none";
      Out.GlobalsJson = renderGlobals(*S->E);
    } else if (Mode == "reset") {
      S->E->restoreCheckpoint(S->Baseline);
      S->E->interpreter().clearTraceLog();
      Out.Path = "none";
    } else if (Mode == "trace_on" || Mode == "trace_off") {
      S->TraceOn = Mode == "trace_on";
      Out.Path = "none";
    } else {
      Code = ErrorCode::BadRequest;
      Message = "unknown session mode \"" + Mode + "\"";
      return false;
    }
  } catch (const std::exception &E) {
    S->Crashed = true;
    S->CrashReason = E.what();
    {
      std::lock_guard<std::mutex> Lock(M);
      ++CrashedTotal;
    }
    Code = ErrorCode::SessionLost;
    Message = "session \"" + S->Id + "\" crashed (" + S->CrashReason +
              ") — reopen it";
    return false;
  }

  ++S->Evals;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++EvalsTotal;
    if (PathIdx >= 0)
      ++PathCounts[PathIdx];
  }
  return true;
}

bool SessionManager::close(const std::string &SessionId, uint64_t &Evals) {
  std::shared_ptr<Session> S;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Sessions.find(SessionId);
    if (It == Sessions.end())
      return false;
    S = It->second;
    Sessions.erase(It);
    auto TC = TenantCounts.find(S->Tenant);
    if (TC != TenantCounts.end() && TC->second > 0)
      --TC->second;
    ++ClosedTotal;
  }
  // An in-flight eval (Busy) holds its own shared_ptr; the session dies
  // when the last reference drops.
  std::lock_guard<std::mutex> SLock(S->M);
  Evals = S->Evals;
  return true;
}

void SessionManager::closeAll() {
  std::map<std::string, std::shared_ptr<Session>> Doomed;
  {
    std::lock_guard<std::mutex> Lock(M);
    Doomed.swap(Sessions);
    ClosedTotal += Doomed.size();
    TenantCounts.clear();
  }
}

size_t SessionManager::sessionCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Sessions.size();
}

std::string SessionManager::metricsJson() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out = "{\"open\":";
  Out += std::to_string(Sessions.size());
  Out += ",\"opened_total\":";
  Out += std::to_string(OpenedTotal);
  Out += ",\"closed_total\":";
  Out += std::to_string(ClosedTotal);
  Out += ",\"evals_total\":";
  Out += std::to_string(EvalsTotal);
  Out += ",\"crashed_total\":";
  Out += std::to_string(CrashedTotal);
  Out += ",\"evicted_idle\":";
  Out += std::to_string(EvictedIdle);
  Out += ",\"rejected_quota\":";
  Out += std::to_string(RejectedQuota);
  Out += ",\"paths\":{\"eval\":";
  Out += std::to_string(PathCounts[0]);
  Out += ",\"clean\":";
  Out += std::to_string(PathCounts[1]);
  Out += ",\"tree\":";
  Out += std::to_string(PathCounts[2]);
  Out += ",\"tokens\":";
  Out += std::to_string(PathCounts[3]);
  Out += ",\"cold\":";
  Out += std::to_string(PathCounts[4]);
  Out += "}}";
  return Out;
}
