//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The msqd wire protocol: version-tagged, newline-delimited JSON. Every
/// frame is one JSON object on one line. Requests carry {"v":1,"id":...,
/// "type":...}; responses echo the id. The protocol is deliberately
/// small — five request types — and strict: anything malformed yields an
/// `error` response with a machine-readable code, never a crash or a
/// silent drop.
///
///   expand          {"v":1,"id":I,"type":"expand","name":N,"source":S
///                    [,"cache":B,"max_meta_steps":N,"timeout_ms":N,
///                     "provenance":B]}
///   lint            {"v":1,"id":I,"type":"lint","name":N,"source":S}
///   reload_library  {"v":1,"id":I,"type":"reload_library",
///                    "sources":[{"name":N,"source":S}...][,"stdlib":B]}
///   status          {"v":1,"id":I,"type":"status"}
///   ping            {"v":1,"id":I,"type":"ping"}
///
/// Cluster mode adds three request types over the same framing:
///
///   hello           {"v":1,"id":I,"type":"hello","token":T}
///                   First frame on an authenticated (TCP) connection;
///                   answered with `welcome` naming the tenant the token
///                   maps to, or an `unauthorized` error (connection
///                   dropped). Unix-socket connections skip hello and run
///                   as the default tenant.
///   cache_get       {"v":1,"id":I,"type":"cache_get","key":K}
///   cache_put       {"v":1,"id":I,"type":"cache_put","key":K,"data":HEX}
///                   Spoken by shards to the shared remote cache daemon
///                   (msq-cached). `data` is the serialized
///                   content-addressed entry (the on-disk "MSQCACHE"
///                   format), hex-encoded so arbitrary bytes survive the
///                   JSON string; answered with `cache_entry` /
///                   `cache_stored`.
///
/// Interactive mode (msq-repl, msq-lsp) adds three session request types.
/// A session is a long-lived server-side expansion state — meta-globals
/// persist across evals, the paper's `metadcl` accumulation made
/// interactive — addressed by a server-issued id and evicted on idle
/// timeout or daemon drain:
///
///   session_open    {"v":1,"id":I,"type":"session_open"
///                    [,"stdlib":B,"provenance":B,
///                      "sources":[{"name":N,"source":S}...]]}
///                   Opens a session seeded with the daemon library plus
///                   any extra sources; answered with `session_opened`
///                   {"session":SID} or `quota_exceeded` when the session
///                   quota (global or per-tenant) is exhausted.
///   session_eval    {"v":1,"id":I,"type":"session_eval","session":SID,
///                    "mode":M,"name":N,"source":S}
///                   Modes: "eval" (REPL input; definitions and meta-global
///                   writes persist), "expand" (preview; state restored
///                   afterwards), "lint", "unit" (LSP document through the
///                   incremental driver warm paths), "library" (replace
///                   the session's overlay library), "globals", "reset",
///                   "trace_on"/"trace_off". Answered with
///                   `session_result`; a crashed session answers
///                   `session_lost` (structured, connection kept).
///   session_close   {"v":1,"id":I,"type":"session_close","session":SID}
///                   Answered with `session_closed`.
///
/// "provenance":true makes the expansion track invocation backtraces: the
/// response's diagnostics carry "in expansion of macro ..." chains and a
/// "source_map" object maps output lines back to invocation sites.
///
/// This header also contains the minimal JSON reader the server uses (the
/// repo carries no third-party dependencies); it parses into a plain
/// tree-of-variants Value. Writing stays string-based via jsonEscape, as
/// everywhere else in MS2.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SERVER_PROTOCOL_H
#define MSQ_SERVER_PROTOCOL_H

#include "api/Msq.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace msq {

namespace json {

/// A parsed JSON value. Numbers keep the double representation (the
/// protocol's numeric fields are all small integers; fields that must be
/// integral go through Value::asU64, which rejects fractions).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Members; // insertion order

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Value *get(std::string_view Name) const;

  /// Reads this value as a non-negative integer; false for anything else
  /// (wrong kind, negative, fractional, or beyond 2^53 where doubles go
  /// grainy).
  bool asU64(uint64_t &Out) const;
};

/// Parses exactly one JSON document spanning all of \p Text (trailing
/// whitespace allowed). Returns false with a position-carrying message in
/// \p Err on any deviation. Depth is bounded, so adversarial nesting
/// cannot overflow the stack.
bool parse(std::string_view Text, Value &Out, std::string *Err);

} // namespace json

/// Protocol constants shared by daemon and client.
inline constexpr int ProtocolVersion = 1;
/// A frame larger than this is rejected before parsing (and the
/// connection dropped, since the stream cannot be resynchronized).
inline constexpr size_t MaxFrameBytes = 8u << 20;

/// Machine-readable error codes carried in `error` responses.
enum class ErrorCode {
  BadRequest,     ///< unparsable JSON, missing/ill-typed fields
  UnknownType,    ///< well-formed request of a type this server lacks
  BadVersion,     ///< protocol version mismatch
  FrameTooLarge,  ///< frame exceeded MaxFrameBytes
  Overloaded,     ///< admission queue full — retry later
  ShuttingDown,   ///< server is draining; no new work admitted
  ReloadFailed,   ///< reload_library sources had errors; old library kept
  Internal,       ///< anything else; the daemon stayed up
  Unauthorized,   ///< hello token unknown — connection will be dropped
  QuotaExceeded,  ///< tenant admission quota exhausted — retry later
  Degraded,       ///< router exhausted its shard retries for this request
  SessionLost,    ///< session unknown, evicted, or crashed — reopen it
};
const char *errorCodeName(ErrorCode C);

/// One parsed request.
struct Request {
  enum class Type {
    Expand,
    Lint,
    ReloadLibrary,
    Status,
    Ping,
    Hello,
    CacheGet,
    CachePut,
    SessionOpen,
    SessionEval,
    SessionClose,
  };
  Type Ty = Type::Ping;
  std::string Id;
  // Expand / Lint:
  std::string Name;
  std::string Source;
  bool UseCache = true;       ///< "cache":false opts this request out
  uint64_t MaxMetaSteps = 0;  ///< 0 = server default
  uint64_t TimeoutMillis = 0; ///< 0 = server default
  bool Provenance = false;    ///< "provenance":true opts into backtraces
  std::string Base;           ///< "base":"sexpr" picks the concrete-syntax
                              ///< base ("" = server default, i.e. C)
  // ReloadLibrary:
  std::vector<SourceUnit> Sources;
  bool LoadStdlib = false;
  // Hello:
  std::string Token;
  // CacheGet / CachePut:
  std::string Key;
  std::string Data; ///< decoded entry bytes (the hex wrapper is stripped)
  // SessionOpen / SessionEval / SessionClose:
  std::string Session; ///< server-issued session id ("s1", "s2", ...)
  std::string Mode;    ///< session_eval mode (see the header comment)
};

/// Outcome of parsing one request frame. On failure, \p Code/Message
/// describe the error response to send; \p Id carries whatever id could
/// be recovered from the frame (possibly empty).
struct ParseOutcome {
  bool Ok = false;
  ErrorCode Code = ErrorCode::BadRequest;
  std::string Message;
};
ParseOutcome parseRequest(std::string_view Frame, Request &Out);

//===----------------------------------------------------------------------===//
// Response builders (one JSON line each, no trailing newline).
//===----------------------------------------------------------------------===//

/// {"v":1,"id":I,"type":"result","success":B,"output":S,"diagnostics":S,
///  "cached":B,"generation":N,"invocations":N,"meta_steps":N,
///  "fuel_exhausted":B,"timed_out":B
///  [,"lints":<findings array>][,"source_map":<source-map object>]}
/// "lints" appears when the server linted the unit; "source_map" when the
/// request opted into provenance and output was produced.
std::string makeExpandResponse(const std::string &Id, const ExpandResult &R,
                               uint64_t Generation);

/// {"v":1,"id":I,"type":"lint_result","success":B,"diagnostics":S,
///  "findings":[...],"warnings":N,"errors":N}
std::string makeLintResponse(const std::string &Id, const ExpandResult &R,
                             uint64_t Generation);

/// {"v":1,"id":I,"type":"error","error":CODE,"message":S}
std::string makeErrorResponse(const std::string &Id, ErrorCode Code,
                              const std::string &Message);

/// {"v":1,"id":I,"type":"status","metrics":<metrics object verbatim>}
std::string makeStatusResponse(const std::string &Id,
                               const std::string &MetricsJson);

/// {"v":1,"id":I,"type":"reloaded","generation":N,"changed":B}
std::string makeReloadResponse(const std::string &Id, uint64_t Generation,
                               bool Changed);

/// {"v":1,"id":I,"type":"pong"}
std::string makePongResponse(const std::string &Id);

/// {"v":1,"id":I,"type":"welcome","tenant":T}
std::string makeWelcomeResponse(const std::string &Id,
                                const std::string &Tenant);

/// {"v":1,"id":I,"type":"cache_entry","found":B[,"data":HEX]}
std::string makeCacheEntryResponse(const std::string &Id, bool Found,
                                   const std::string &Data);

/// {"v":1,"id":I,"type":"cache_stored","stored":B}
std::string makeCacheStoredResponse(const std::string &Id, bool Stored);

/// {"v":1,"id":I,"type":"session_opened","session":SID}
std::string makeSessionOpenedResponse(const std::string &Id,
                                      const std::string &Session);

/// Everything one session evaluation produced — the interactive
/// counterpart of ExpandResult, flattened for the wire. LintsJson /
/// SourceMapJson / GlobalsJson are prebuilt JSON spliced in verbatim
/// (empty = member omitted).
struct SessionEvalResult {
  bool Success = true;
  std::string Output;
  std::string Diagnostics;
  std::string Path; ///< "eval", "clean", "tree", "tokens", "cold" or "none"
  uint64_t Invocations = 0;
  uint64_t MetaSteps = 0;
  uint64_t MacrosDefined = 0;
  bool GlobalsMutated = false;
  bool HasTrace = false; ///< emit "trace" even when the text is empty
  std::string Trace;
  std::string GlobalsJson;   ///< JSON array (mode "globals")
  std::string LintsJson;     ///< JSON array (lint findings)
  std::string SourceMapJson; ///< JSON object (provenance sessions)
};

/// {"v":1,"id":I,"type":"session_result","session":SID,"success":B,
///  "output":S,"diagnostics":S,"path":S,"invocations":N,"meta_steps":N,
///  "macros_defined":N,"globals_mutated":B[,"trace":S][,"globals":ARR]
///  [,"lints":ARR][,"source_map":OBJ]}
std::string makeSessionResultResponse(const std::string &Id,
                                      const std::string &Session,
                                      const SessionEvalResult &R);

/// {"v":1,"id":I,"type":"session_closed","session":SID,"evals":N}
std::string makeSessionClosedResponse(const std::string &Id,
                                      const std::string &Session,
                                      uint64_t Evals);

//===----------------------------------------------------------------------===//
// Request builders (the client side).
//===----------------------------------------------------------------------===//

std::string makeExpandRequest(const std::string &Id, const std::string &Name,
                              const std::string &Source, bool UseCache,
                              uint64_t MaxMetaSteps, uint64_t TimeoutMillis,
                              bool Provenance = false,
                              const std::string &Base = "");
std::string makeLintRequest(const std::string &Id, const std::string &Name,
                            const std::string &Source,
                            const std::string &Base = "");
std::string makeReloadRequest(const std::string &Id,
                              const std::vector<SourceUnit> &Sources,
                              bool LoadStdlib);
std::string makeStatusRequest(const std::string &Id);
std::string makePingRequest(const std::string &Id);
std::string makeHelloRequest(const std::string &Id,
                             const std::string &Token);
std::string makeCacheGetRequest(const std::string &Id,
                                const std::string &Key);
std::string makeCachePutRequest(const std::string &Id,
                                const std::string &Key,
                                const std::string &Data);
std::string makeSessionOpenRequest(const std::string &Id, bool LoadStdlib,
                                   bool Provenance,
                                   const std::vector<SourceUnit> &Sources);
std::string makeSessionEvalRequest(const std::string &Id,
                                   const std::string &Session,
                                   const std::string &Mode,
                                   const std::string &Name,
                                   const std::string &Source,
                                   const std::string &Base = "");
std::string makeSessionCloseRequest(const std::string &Id,
                                    const std::string &Session);

/// Lowercase hex codec for binary payloads embedded in JSON strings
/// (cache entry bytes). fromHex rejects odd lengths and non-hex digits.
std::string toHex(std::string_view Bytes);
bool fromHex(std::string_view Hex, std::string &Out);

} // namespace msq

#endif // MSQ_SERVER_PROTOCOL_H
