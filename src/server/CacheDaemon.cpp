//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "server/CacheDaemon.h"

#include "cache/ExpansionCache.h"
#include "server/Protocol.h"

#include <fstream>
#include <sstream>
#include <sys/stat.h>

using namespace msq;

namespace {

/// Keys reaching the disk must be plain content hashes: anything else
/// (path separators, dots) stays memory-only rather than risking a
/// crafted path. The local tier's keys are always lowercase hex.
bool isDiskSafeKey(const std::string &Key) {
  if (Key.empty() || Key.size() > 128)
    return false;
  for (char C : Key)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'z') ||
          (C >= 'A' && C <= 'Z') || C == '_' || C == '-'))
      return false;
  return true;
}

} // namespace

CacheStore::CacheStore(std::string DiskDir) : Dir(std::move(DiskDir)) {
  if (!Dir.empty() && ::mkdir(Dir.c_str(), 0777) != 0 && errno != EEXIST)
    Dir.clear(); // degrade to memory-only, like the local disk tier
}

bool CacheStore::diskRead(const std::string &Key, std::string &Bytes) {
  if (Dir.empty() || !isDiskSafeKey(Key))
    return false;
  std::ifstream In(Dir + "/" + Key + ".msqc", std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!In.good() && !In.eof())
    return false;
  Bytes = Buf.str();
  return true;
}

void CacheStore::diskWrite(const std::string &Key, const std::string &Bytes) {
  if (Dir.empty() || !isDiskSafeKey(Key))
    return;
  // Atomic publish (temp + rename), same discipline as the local tier;
  // failures degrade silently — the memory entry still serves.
  std::string Tmp = Dir + "/" + Key + ".tmp";
  std::string Final = Dir + "/" + Key + ".msqc";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(Bytes.data(), std::streamsize(Bytes.size()));
    if (!Out.good()) {
      Out.close();
      ::remove(Tmp.c_str());
      return;
    }
  }
  if (::rename(Tmp.c_str(), Final.c_str()) != 0)
    ::remove(Tmp.c_str());
}

bool CacheStore::get(const std::string &Key, std::string &Bytes) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Gets;
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      Bytes = It->second;
      ++Hits;
      return true;
    }
  }
  if (!diskRead(Key, Bytes))
    return false;
  // A disk entry must still decode against its key (the file may be a
  // foreign or torn leftover); only then is it promoted and served.
  CachedExpansion Tmp;
  if (!ExpansionCache::deserialize(Bytes, Key, Tmp))
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Entries.emplace(Key, Bytes);
  if (Inserted)
    TotalBytes += Bytes.size();
  ++Hits;
  return true;
}

bool CacheStore::put(const std::string &Key, std::string Bytes) {
  CachedExpansion Tmp;
  if (!ExpansionCache::deserialize(Bytes, Key, Tmp)) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Puts;
    ++Rejected;
    return false;
  }
  bool Inserted = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Puts;
    auto [It, DidInsert] = Entries.emplace(Key, Bytes);
    Inserted = DidInsert;
    if (Inserted)
      TotalBytes += Bytes.size();
  }
  // Same-key puts carry byte-identical bodies by construction (content
  // addressing), so a duplicate is already durable; only first writers
  // touch the disk.
  if (Inserted)
    diskWrite(Key, Bytes);
  return true;
}

size_t CacheStore::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

std::string CacheStore::metricsJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\"cached\":{\"entries\":";
  Out += std::to_string(Entries.size());
  Out += ",\"bytes\":";
  Out += std::to_string(TotalBytes);
  Out += ",\"gets\":";
  Out += std::to_string(Gets);
  Out += ",\"hits\":";
  Out += std::to_string(Hits);
  Out += ",\"puts\":";
  Out += std::to_string(Puts);
  Out += ",\"rejected\":";
  Out += std::to_string(Rejected);
  Out += "}}";
  return Out;
}

void msq::serveCacheConnection(const std::shared_ptr<Conn> &C,
                               CacheStore &CS) {
  FrameReader Reader(C->ReadFd, MaxFrameBytes);
  std::string Frame;
  for (;;) {
    FrameReader::Status St = Reader.next(Frame);
    if (St == FrameReader::Status::TooLong) {
      C->send(makeErrorResponse(
          "", ErrorCode::FrameTooLarge,
          "frame exceeds " + std::to_string(MaxFrameBytes) + " bytes"));
      break;
    }
    if (St != FrameReader::Status::Frame)
      break;

    Request Req;
    ParseOutcome PO = parseRequest(Frame, Req);
    if (!PO.Ok) {
      C->send(makeErrorResponse(Req.Id, PO.Code, PO.Message));
      continue;
    }

    switch (Req.Ty) {
    case Request::Type::Ping:
      C->send(makePongResponse(Req.Id));
      break;
    case Request::Type::Status:
      C->send(makeStatusResponse(Req.Id, CS.metricsJson()));
      break;
    case Request::Type::Hello:
      // The cache tier is tenant-agnostic (entries are content-hashed);
      // accept any hello so shard-side clients need no special casing.
      C->send(makeWelcomeResponse(Req.Id, Req.Token));
      break;
    case Request::Type::CacheGet: {
      std::string Bytes;
      bool Found = CS.get(Req.Key, Bytes);
      C->send(makeCacheEntryResponse(Req.Id, Found, Bytes));
      break;
    }
    case Request::Type::CachePut:
      C->send(makeCacheStoredResponse(Req.Id,
                                      CS.put(Req.Key, std::move(Req.Data))));
      break;
    default:
      C->send(makeErrorResponse(Req.Id, ErrorCode::UnknownType,
                                "msq-cached only serves cache requests"));
      break;
    }
  }
  C->waitQuiesced();
}
