//===----------------------------------------------------------------------===//
//
// msq-client — thin command-line client for msqd. Builds protocol frames
// from argv, pipelines them over the daemon's Unix socket (or the
// cluster's TCP transport with --tcp), and renders the responses.
//
//   msq-client --socket PATH expand [--name N] [--no-cache]
//              [--max-meta-steps N] [--timeout-ms N] [--provenance]
//              [--source-map] [-q] [FILE...]
//       Expands each FILE as one request (stdin when no files). Outputs
//       are printed to stdout in request order, diagnostics to stderr.
//       --provenance asks the daemon for "in expansion of" backtraces in
//       the diagnostics; --source-map (implies --provenance) also prints
//       each unit's output-line source map JSON to stdout.
//   msq-client --socket PATH lint [--name N] [FILE...]
//       Lints each FILE's macro definitions; findings go to stdout, one
//       per line. Exit 1 when any finding is reported.
//   msq-client --socket PATH reload [--stdlib] [FILE...]
//   msq-client --socket PATH status
//   msq-client --socket PATH ping
//
//   --tcp HOST:PORT  connect over TCP instead of --socket (cluster mode;
//                  works against a shard or a router alike)
//   --token TOK    open with a hello carrying TOK; required when the
//                  daemon has auth tokens configured
//   --retry-ms N   keep retrying the connect for N ms (daemon startup)
//   --no-wait      send the request(s), then disconnect without reading
//                  any response (exercises mid-request disconnects)
//
// Exit codes: 0 success; 1 expansion/reload reported errors; 2 transport
// or protocol failure; 3 server overloaded or draining.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "synbase/SyntaxBase.h"
#include "support/Socket.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace msq;

namespace {

int usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: msq-client (--socket PATH | --tcp HOST:PORT) [--token TOK]\n"
      "                  [--retry-ms N] [--no-wait] COMMAND\n"
      "  expand [--name N] [--base=NAME] [--no-cache]\n"
      "         [--max-meta-steps N]\n"
      "         [--timeout-ms N] [--provenance] [--source-map] [-q]\n"
      "         [FILE...]\n"
      "  lint [--name N] [--base=NAME] [FILE...]\n"
      "  reload [--stdlib] [FILE...]\n"
      "  status\n"
      "  ping\n");
  return Code;
}

bool readFile(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Connects (Unix socket when \p Path is set, TCP otherwise), retrying
/// while the daemon may still be binding its listener.
FdHandle connectWithRetry(const std::string &Path, const std::string &Host,
                          uint16_t Port, unsigned RetryMillis,
                          std::string &Err) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(RetryMillis);
  for (;;) {
    FdHandle Fd(Path.empty() ? connectTcp(Host, Port, &Err)
                             : connectUnix(Path, &Err));
    if (Fd.valid())
      return Fd;
    if (std::chrono::steady_clock::now() >= Deadline)
      return FdHandle();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

struct Response {
  bool IsError = false;
  std::string ErrorCodeName;
  std::string Message;
  json::Value Body;
  std::string RawFrame;
};

/// Reads frames until every id in \p Wanted has a response (or the stream
/// dies). Returns false on transport/parse failure.
bool collectResponses(int Fd, const std::vector<std::string> &Wanted,
                      std::map<std::string, Response> &Out) {
  FrameReader Reader(Fd, MaxFrameBytes);
  std::string Frame;
  size_t Remaining = Wanted.size();
  while (Remaining) {
    FrameReader::Status St = Reader.next(Frame);
    if (St != FrameReader::Status::Frame) {
      std::fprintf(stderr, "msq-client: connection closed with %zu response"
                           "%s outstanding\n",
                   Remaining, Remaining == 1 ? "" : "s");
      return false;
    }
    json::Value V;
    std::string Err;
    if (!json::parse(Frame, V, &Err)) {
      std::fprintf(stderr, "msq-client: bad response frame: %s\n",
                   Err.c_str());
      return false;
    }
    const json::Value *IdV = V.get("id");
    std::string Id = IdV && IdV->isString() ? IdV->Str : "";
    Response R;
    const json::Value *TypeV = V.get("type");
    if (TypeV && TypeV->isString() && TypeV->Str == "error") {
      R.IsError = true;
      if (const json::Value *C = V.get("error"); C && C->isString())
        R.ErrorCodeName = C->Str;
      if (const json::Value *M = V.get("message"); M && M->isString())
        R.Message = M->Str;
    }
    R.Body = std::move(V);
    R.RawFrame = Frame;
    if (Out.count(Id))
      continue; // duplicate id: keep the first
    Out.emplace(Id, std::move(R));
    --Remaining;
  }
  return true;
}

/// Maps an error response to the documented exit code.
int errorExit(const Response &R) {
  std::fprintf(stderr, "msq-client: server error (%s): %s\n",
               R.ErrorCodeName.c_str(), R.Message.c_str());
  if (R.ErrorCodeName == "overloaded" || R.ErrorCodeName == "shutting_down")
    return 3;
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath;
  std::string TcpAddr;
  std::string Token;
  unsigned RetryMillis = 0;
  bool NoWait = false;

  int I = 1;
  auto NextArg = [&](const char *Flag) -> const char * {
    if (I + 1 >= argc) {
      std::fprintf(stderr, "msq-client: %s needs an argument\n", Flag);
      return nullptr;
    }
    return argv[++I];
  };

  // Global options precede the command word.
  std::string Command;
  for (; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--socket") {
      const char *V = NextArg("--socket");
      if (!V)
        return 2;
      SocketPath = V;
    } else if (Arg == "--tcp") {
      const char *V = NextArg("--tcp");
      if (!V)
        return 2;
      TcpAddr = V;
    } else if (Arg == "--token") {
      const char *V = NextArg("--token");
      if (!V)
        return 2;
      Token = V;
    } else if (Arg == "--retry-ms") {
      const char *V = NextArg("--retry-ms");
      if (!V)
        return 2;
      RetryMillis = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--no-wait") {
      NoWait = true;
    } else if (Arg == "-h" || Arg == "--help") {
      return usage(0);
    } else {
      Command = Arg;
      ++I;
      break;
    }
  }
  if (SocketPath.empty() == TcpAddr.empty() || Command.empty()) {
    std::fprintf(stderr, "msq-client: one of --socket/--tcp and a command "
                         "are required\n");
    return usage(2);
  }
  std::string TcpHost;
  uint16_t TcpPort = 0;
  if (!TcpAddr.empty()) {
    std::string Err;
    if (!parseHostPort(TcpAddr, TcpHost, TcpPort, &Err)) {
      std::fprintf(stderr, "msq-client: bad --tcp address: %s\n",
                   Err.c_str());
      return 2;
    }
  }

  // Command-specific options and file arguments.
  bool UseCache = true, StdLib = false, Quiet = false;
  bool Provenance = false, SourceMap = false;
  uint64_t MaxMetaSteps = 0, TimeoutMillis = 0;
  std::string StdinName = "<stdin>";
  std::string Base; // "" = per-file by extension, daemon default C
  std::vector<std::string> Files;
  for (; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--no-cache") {
      UseCache = false;
    } else if (Arg == "--stdlib") {
      StdLib = true;
    } else if (Arg == "-q") {
      Quiet = true;
    } else if (Arg == "--name") {
      const char *V = NextArg("--name");
      if (!V)
        return 2;
      StdinName = V;
    } else if (Arg == "--max-meta-steps") {
      const char *V = NextArg("--max-meta-steps");
      if (!V)
        return 2;
      MaxMetaSteps = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--timeout-ms") {
      const char *V = NextArg("--timeout-ms");
      if (!V)
        return 2;
      TimeoutMillis = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--provenance") {
      Provenance = true;
    } else if (Arg == "--source-map") {
      Provenance = true;
      SourceMap = true;
    } else if (Arg.rfind("--base=", 0) == 0) {
      Base = Arg.substr(7);
      if (!syntaxBaseByName(Base)) {
        std::fprintf(stderr, "msq-client: unknown syntax base '%s'\n",
                     Base.c_str());
        return 2;
      }
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "msq-client: unknown argument '%s'\n",
                   Arg.c_str());
      return usage(2);
    } else {
      Files.push_back(Arg);
    }
  }

  // Build the request frames before connecting, so a bad file never costs
  // the daemon a wasted admission.
  std::vector<std::string> Frames;
  std::vector<std::string> Ids;
  std::vector<std::string> UnitNames; // expand only, request order
  if (Command == "expand") {
    if (Files.empty())
      Files.push_back("-");
    unsigned Seq = 0;
    for (const std::string &Path : Files) {
      std::string Text;
      if (!readFile(Path, Text)) {
        std::fprintf(stderr, "msq-client: cannot read '%s'\n", Path.c_str());
        return 2;
      }
      std::string Name = Path == "-" ? StdinName : Path;
      std::string UnitBase = Base;
      if (UnitBase.empty())
        if (const SyntaxBase *SB = syntaxBaseForFile(Name))
          UnitBase = SB->name();
      std::string Id = "e" + std::to_string(Seq++);
      Frames.push_back(makeExpandRequest(Id, Name, Text, UseCache,
                                         MaxMetaSteps, TimeoutMillis,
                                         Provenance, UnitBase));
      Ids.push_back(Id);
      UnitNames.push_back(Name);
    }
  } else if (Command == "lint") {
    if (Files.empty())
      Files.push_back("-");
    unsigned Seq = 0;
    for (const std::string &Path : Files) {
      std::string Text;
      if (!readFile(Path, Text)) {
        std::fprintf(stderr, "msq-client: cannot read '%s'\n", Path.c_str());
        return 2;
      }
      std::string Name = Path == "-" ? StdinName : Path;
      std::string UnitBase = Base;
      if (UnitBase.empty())
        if (const SyntaxBase *SB = syntaxBaseForFile(Name))
          UnitBase = SB->name();
      std::string Id = "l" + std::to_string(Seq++);
      Frames.push_back(makeLintRequest(Id, Name, Text, UnitBase));
      Ids.push_back(Id);
      UnitNames.push_back(Name);
    }
  } else if (Command == "reload") {
    std::vector<SourceUnit> Units;
    for (const std::string &Path : Files) {
      std::string Text;
      if (!readFile(Path, Text)) {
        std::fprintf(stderr, "msq-client: cannot read '%s'\n", Path.c_str());
        return 2;
      }
      Units.push_back({Path, std::move(Text)});
    }
    Frames.push_back(makeReloadRequest("r0", Units, StdLib));
    Ids.push_back("r0");
  } else if (Command == "status") {
    Frames.push_back(makeStatusRequest("s0"));
    Ids.push_back("s0");
  } else if (Command == "ping") {
    Frames.push_back(makePingRequest("p0"));
    Ids.push_back("p0");
  } else {
    std::fprintf(stderr, "msq-client: unknown command '%s'\n",
                 Command.c_str());
    return usage(2);
  }

  std::string Err;
  FdHandle Fd =
      connectWithRetry(SocketPath, TcpHost, TcpPort, RetryMillis, Err);
  if (!Fd.valid()) {
    std::fprintf(stderr, "msq-client: cannot connect to '%s': %s\n",
                 (SocketPath.empty() ? TcpAddr : SocketPath).c_str(),
                 Err.c_str());
    return 2;
  }

  if (!Token.empty()) {
    // Authenticate before pipelining anything: a rejected hello drops
    // the connection, and this way the user sees the real error instead
    // of "connection closed". The dedicated reader is safe — the daemon
    // sends nothing else until the requests below go out.
    if (!writeFrame(Fd.get(), makeHelloRequest("h0", Token))) {
      std::fprintf(stderr, "msq-client: write failed: %s\n",
                   std::strerror(errno));
      return 2;
    }
    FrameReader HelloReader(Fd.get(), MaxFrameBytes);
    std::string Frame;
    if (HelloReader.next(Frame) != FrameReader::Status::Frame) {
      std::fprintf(stderr, "msq-client: connection closed during hello\n");
      return 2;
    }
    json::Value V;
    if (!json::parse(Frame, V, &Err) || !V.isObject()) {
      std::fprintf(stderr, "msq-client: bad hello response\n");
      return 2;
    }
    const json::Value *Ty = V.get("type");
    if (!Ty || !Ty->isString() || Ty->Str != "welcome") {
      const json::Value *M = V.get("message");
      std::fprintf(stderr, "msq-client: authentication failed: %s\n",
                   M && M->isString() ? M->Str.c_str() : Frame.c_str());
      return 2;
    }
  }

  for (const std::string &F : Frames)
    if (!writeFrame(Fd.get(), F)) {
      std::fprintf(stderr, "msq-client: write failed: %s\n",
                   std::strerror(errno));
      return 2;
    }

  if (NoWait)
    return 0; // deliberately abandon the responses

  std::map<std::string, Response> Responses;
  if (!collectResponses(Fd.get(), Ids, Responses))
    return 2;

  int Exit = 0;
  if (Command == "expand") {
    // Responses may arrive out of order; print in request order.
    for (size_t N = 0; N != Ids.size(); ++N) {
      const Response &R = Responses.at(Ids[N]);
      if (R.IsError) {
        int E = errorExit(R);
        Exit = Exit == 0 || E > Exit ? E : Exit;
        continue;
      }
      const json::Value *Diag = R.Body.get("diagnostics");
      if (Diag && Diag->isString() && !Diag->Str.empty())
        std::fputs(Diag->Str.c_str(), stderr);
      const json::Value *Ok = R.Body.get("success");
      if (!Ok || Ok->K != json::Value::Kind::Bool || !Ok->B) {
        std::fprintf(stderr, "msq-client: expansion of '%s' failed\n",
                     UnitNames[N].c_str());
        Exit = Exit ? Exit : 1;
        continue;
      }
      if (!Quiet)
        if (const json::Value *Out = R.Body.get("output");
            Out && Out->isString())
          std::fputs(Out->Str.c_str(), stdout);
      if (SourceMap) {
        // The map object is printed verbatim from the raw frame (the
        // reader has no serializer); it is the value of "source_map",
        // which the daemon emits as the frame's final member.
        std::string::size_type Pos = R.RawFrame.find("\"source_map\":");
        if (Pos != std::string::npos && R.RawFrame.back() == '}') {
          Pos += std::strlen("\"source_map\":");
          std::fprintf(stdout, "%s\n",
                       R.RawFrame.substr(Pos, R.RawFrame.size() - 1 - Pos)
                           .c_str());
        }
      }
    }
  } else if (Command == "lint") {
    for (size_t N = 0; N != Ids.size(); ++N) {
      const Response &R = Responses.at(Ids[N]);
      if (R.IsError) {
        int E = errorExit(R);
        Exit = Exit == 0 || E > Exit ? E : Exit;
        continue;
      }
      const json::Value *Diag = R.Body.get("diagnostics");
      if (Diag && Diag->isString() && !Diag->Str.empty())
        std::fputs(Diag->Str.c_str(), stderr);
      const json::Value *Ok = R.Body.get("success");
      if (!Ok || Ok->K != json::Value::Kind::Bool || !Ok->B) {
        std::fprintf(stderr, "msq-client: lint of '%s' failed to parse\n",
                     UnitNames[N].c_str());
        Exit = Exit ? Exit : 1;
        continue;
      }
      if (const json::Value *Findings = R.Body.get("findings");
          Findings && Findings->isArray()) {
        for (const json::Value &F : Findings->Arr) {
          auto Str = [&F](const char *Key) -> std::string {
            const json::Value *V = F.get(Key);
            return V && V->isString() ? V->Str : std::string();
          };
          uint64_t Line = 0, Col = 0, Count = 1;
          if (const json::Value *V = F.get("line"))
            V->asU64(Line);
          if (const json::Value *V = F.get("col"))
            V->asU64(Col);
          if (const json::Value *V = F.get("count"))
            V->asU64(Count);
          std::string LineOut;
          if (Line) {
            LineOut += Str("file") + ":" + std::to_string(Line) + ":" +
                       std::to_string(Col) + ": ";
          }
          LineOut += Str("severity") + ": " + Str("message") + " [" +
                     Str("rule") + "]";
          if (Count > 1)
            LineOut += " (x" + std::to_string(Count) + ")";
          std::fprintf(stdout, "%s\n", LineOut.c_str());
          Exit = Exit ? Exit : 1;
        }
      }
    }
  } else if (Command == "reload") {
    const Response &R = Responses.at("r0");
    if (R.IsError)
      return errorExit(R);
    uint64_t Gen = 0;
    bool Changed = false;
    if (const json::Value *G = R.Body.get("generation"))
      G->asU64(Gen);
    if (const json::Value *C = R.Body.get("changed");
        C && C->K == json::Value::Kind::Bool)
      Changed = C->B;
    std::fprintf(stdout, "reloaded: generation %llu (%s)\n",
                 (unsigned long long)Gen,
                 Changed ? "changed" : "unchanged");
  } else if (Command == "status") {
    const Response &R = Responses.at("s0");
    if (R.IsError)
      return errorExit(R);
    // The metrics object is the frame's final member; slice it out of the
    // raw frame and print it verbatim — it is already JSON.
    std::string::size_type Pos = R.RawFrame.find("\"metrics\":");
    if (Pos == std::string::npos || R.RawFrame.back() != '}') {
      std::fprintf(stderr, "msq-client: malformed status response\n");
      return 2;
    }
    Pos += std::strlen("\"metrics\":");
    std::fprintf(stdout, "%s\n",
                 R.RawFrame.substr(Pos, R.RawFrame.size() - 1 - Pos).c_str());
  } else if (Command == "ping") {
    const Response &R = Responses.at("p0");
    if (R.IsError)
      return errorExit(R);
    std::fprintf(stdout, "pong\n");
  }
  return Exit;
}
