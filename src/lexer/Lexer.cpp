//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>

using namespace msq;

const char *msq::tokenKindSpelling(TokenKind K) {
  switch (K) {
#define TOK(Kind, Spelling)                                                    \
  case TokenKind::Kind:                                                        \
    return Spelling;
    MSQ_TOKEN_KINDS(TOK)
#undef TOK
  }
  return "<invalid>";
}

bool msq::isKeywordToken(TokenKind K) {
  return K >= TokenKind::KwAuto && K <= TokenKind::KwLambda;
}

namespace {
const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"auto", TokenKind::KwAuto},         {"break", TokenKind::KwBreak},
      {"case", TokenKind::KwCase},         {"char", TokenKind::KwChar},
      {"const", TokenKind::KwConst},       {"continue", TokenKind::KwContinue},
      {"default", TokenKind::KwDefault},   {"do", TokenKind::KwDo},
      {"double", TokenKind::KwDouble},     {"else", TokenKind::KwElse},
      {"enum", TokenKind::KwEnum},         {"extern", TokenKind::KwExtern},
      {"float", TokenKind::KwFloat},       {"for", TokenKind::KwFor},
      {"goto", TokenKind::KwGoto},         {"if", TokenKind::KwIf},
      {"int", TokenKind::KwInt},           {"long", TokenKind::KwLong},
      {"register", TokenKind::KwRegister}, {"return", TokenKind::KwReturn},
      {"short", TokenKind::KwShort},       {"signed", TokenKind::KwSigned},
      {"sizeof", TokenKind::KwSizeof},     {"static", TokenKind::KwStatic},
      {"struct", TokenKind::KwStruct},     {"switch", TokenKind::KwSwitch},
      {"typedef", TokenKind::KwTypedef},   {"union", TokenKind::KwUnion},
      {"unsigned", TokenKind::KwUnsigned}, {"void", TokenKind::KwVoid},
      {"volatile", TokenKind::KwVolatile}, {"while", TokenKind::KwWhile},
      {"metadcl", TokenKind::KwMetadcl},   {"syntax", TokenKind::KwSyntax},
      {"lambda", TokenKind::KwLambda},
  };
  return Table;
}
} // namespace

Lexer::Lexer(uint32_t BufferId, std::string_view Contents,
             StringInterner &Interner, DiagnosticsEngine &Diags)
    : BufferId(BufferId), Contents(Contents), Interner(Interner),
      Diags(Diags) {}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Contents.size()) {
    char C = Contents[Pos];
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '\f' ||
        C == '\v') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Contents.size() && Contents[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      size_t Start = Pos;
      Pos += 2;
      bool Closed = false;
      while (Pos + 1 < Contents.size()) {
        if (Contents[Pos] == '*' && Contents[Pos + 1] == '/') {
          Pos += 2;
          Closed = true;
          break;
        }
        ++Pos;
      }
      if (!Closed) {
        Diags.error(loc(Start), "unterminated /* comment");
        Pos = Contents.size();
      }
      continue;
    }
    break;
  }
}

void Lexer::lex(Token &Result) {
  Result = Token();
  skipWhitespaceAndComments();
  if (Pos >= Contents.size()) {
    Result.Kind = TokenKind::Eof;
    Result.Loc = loc(Pos);
    ProducedEof = true;
    return;
  }
  char C = Contents[Pos];
  Result.Loc = loc(Pos);
  if (std::isalpha((unsigned char)C) || C == '_') {
    lexIdentifierOrKeyword(Result);
    return;
  }
  if (std::isdigit((unsigned char)C) ||
      (C == '.' && std::isdigit((unsigned char)peek(1)))) {
    lexNumber(Result);
    return;
  }
  if (C == '\'') {
    lexCharLiteral(Result);
    return;
  }
  if (C == '"') {
    lexStringLiteral(Result);
    return;
  }
  lexPunctuation(Result);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.emplace_back();
    lex(Tokens.back());
    if (Tokens.back().is(TokenKind::Eof))
      break;
  }
  return Tokens;
}

void Lexer::lexIdentifierOrKeyword(Token &Result) {
  size_t Start = Pos;
  while (Pos < Contents.size() &&
         (std::isalnum((unsigned char)Contents[Pos]) || Contents[Pos] == '_'))
    ++Pos;
  std::string_view Text = Contents.substr(Start, Pos - Start);
  auto It = keywordTable().find(Text);
  if (It != keywordTable().end()) {
    Result.Kind = It->second;
    Result.Sym = Interner.intern(Text);
    return;
  }
  Result.Kind = TokenKind::Identifier;
  Result.Sym = Interner.intern(Text);
}

void Lexer::lexNumber(Token &Result) {
  size_t Start = Pos;
  bool IsFloat = false;
  if (Contents[Pos] == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    while (Pos < Contents.size() && std::isxdigit((unsigned char)Contents[Pos]))
      ++Pos;
  } else {
    while (Pos < Contents.size() && std::isdigit((unsigned char)Contents[Pos]))
      ++Pos;
    if (Pos < Contents.size() && Contents[Pos] == '.') {
      IsFloat = true;
      ++Pos;
      while (Pos < Contents.size() &&
             std::isdigit((unsigned char)Contents[Pos]))
        ++Pos;
    }
    if (Pos < Contents.size() && (Contents[Pos] == 'e' || Contents[Pos] == 'E')) {
      size_t Save = Pos;
      ++Pos;
      if (Pos < Contents.size() && (Contents[Pos] == '+' || Contents[Pos] == '-'))
        ++Pos;
      if (Pos < Contents.size() && std::isdigit((unsigned char)Contents[Pos])) {
        IsFloat = true;
        while (Pos < Contents.size() &&
               std::isdigit((unsigned char)Contents[Pos]))
          ++Pos;
      } else {
        Pos = Save; // 'e' belongs to a following identifier
      }
    }
  }
  std::string Text(Contents.substr(Start, Pos - Start));
  // Integer/float suffixes.
  while (Pos < Contents.size() &&
         (Contents[Pos] == 'u' || Contents[Pos] == 'U' || Contents[Pos] == 'l' ||
          Contents[Pos] == 'L' || Contents[Pos] == 'f' || Contents[Pos] == 'F'))
    ++Pos;
  if (IsFloat) {
    Result.Kind = TokenKind::FloatLiteral;
    Result.FloatVal = std::strtod(Text.c_str(), nullptr);
  } else {
    Result.Kind = TokenKind::IntLiteral;
    Result.IntVal = std::strtoll(Text.c_str(), nullptr, 0);
  }
  Result.Sym = Interner.intern(Contents.substr(Start, Pos - Start));
}

bool Lexer::lexEscapedChar(char &Out) {
  if (Pos >= Contents.size())
    return false;
  char C = Contents[Pos++];
  if (C != '\\') {
    Out = C;
    return true;
  }
  if (Pos >= Contents.size()) {
    Diags.error(loc(Pos - 1), "incomplete escape sequence");
    return false;
  }
  char E = Contents[Pos++];
  switch (E) {
  case 'n':
    Out = '\n';
    return true;
  case 't':
    Out = '\t';
    return true;
  case 'r':
    Out = '\r';
    return true;
  case 'b':
    Out = '\b';
    return true;
  case 'f':
    Out = '\f';
    return true;
  case 'v':
    Out = '\v';
    return true;
  case 'a':
    Out = '\a';
    return true;
  case '0':
    Out = '\0';
    return true;
  case '\\':
  case '\'':
  case '"':
  case '?':
    Out = E;
    return true;
  default:
    Diags.error(loc(Pos - 1), std::string("unknown escape sequence '\\") + E +
                                  "'");
    Out = E;
    return true; // recover: keep the raw character
  }
}

void Lexer::lexCharLiteral(Token &Result) {
  size_t Start = Pos;
  ++Pos; // consume '
  Result.Kind = TokenKind::CharLiteral;
  if (Pos >= Contents.size() || Contents[Pos] == '\'') {
    Diags.error(loc(Start), "empty character literal");
    if (Pos < Contents.size())
      ++Pos;
    return;
  }
  char Value = 0;
  lexEscapedChar(Value);
  Result.IntVal = (int64_t)(unsigned char)Value;
  if (Pos < Contents.size() && Contents[Pos] == '\'') {
    ++Pos;
  } else {
    Diags.error(loc(Start), "unterminated character literal");
    while (Pos < Contents.size() && Contents[Pos] != '\'' &&
           Contents[Pos] != '\n')
      ++Pos;
    if (Pos < Contents.size() && Contents[Pos] == '\'')
      ++Pos;
  }
  Result.Sym = Interner.intern(Contents.substr(Start, Pos - Start));
}

void Lexer::lexStringLiteral(Token &Result) {
  size_t Start = Pos;
  ++Pos; // consume "
  Result.Kind = TokenKind::StringLiteral;
  std::string Value;
  bool Closed = false;
  while (Pos < Contents.size()) {
    if (Contents[Pos] == '"') {
      ++Pos;
      Closed = true;
      break;
    }
    if (Contents[Pos] == '\n')
      break;
    char C = 0;
    if (!lexEscapedChar(C))
      break;
    Value.push_back(C);
  }
  if (!Closed)
    Diags.error(loc(Start), "unterminated string literal");
  Result.Sym = Interner.intern(Value);
}

void Lexer::lexPunctuation(Token &Result) {
  char C = Contents[Pos];
  char C1 = peek(1);
  char C2 = peek(2);
  auto Make = [&](TokenKind K, size_t Len) {
    Result.Kind = K;
    Pos += Len;
  };
  switch (C) {
  case '(':
    return Make(TokenKind::LParen, 1);
  case ')':
    return Make(TokenKind::RParen, 1);
  case '[':
    return Make(TokenKind::LBracket, 1);
  case ']':
    return Make(TokenKind::RBracket, 1);
  case '{':
    if (C1 == '|')
      return Make(TokenKind::LMetaBrace, 2);
    return Make(TokenKind::LBrace, 1);
  case '}':
    return Make(TokenKind::RBrace, 1);
  case ';':
    return Make(TokenKind::Semi, 1);
  case ',':
    return Make(TokenKind::Comma, 1);
  case '.':
    if (C1 == '.' && C2 == '.')
      return Make(TokenKind::Ellipsis, 3);
    return Make(TokenKind::Dot, 1);
  case '-':
    if (C1 == '>')
      return Make(TokenKind::Arrow, 2);
    if (C1 == '-')
      return Make(TokenKind::MinusMinus, 2);
    if (C1 == '=')
      return Make(TokenKind::MinusEqual, 2);
    return Make(TokenKind::Minus, 1);
  case '+':
    if (C1 == '+')
      return Make(TokenKind::PlusPlus, 2);
    if (C1 == '=')
      return Make(TokenKind::PlusEqual, 2);
    return Make(TokenKind::Plus, 1);
  case '&':
    if (C1 == '&')
      return Make(TokenKind::AmpAmp, 2);
    if (C1 == '=')
      return Make(TokenKind::AmpEqual, 2);
    return Make(TokenKind::Amp, 1);
  case '*':
    if (C1 == '=')
      return Make(TokenKind::StarEqual, 2);
    return Make(TokenKind::Star, 1);
  case '~':
    return Make(TokenKind::Tilde, 1);
  case '!':
    if (C1 == '=')
      return Make(TokenKind::ExclaimEqual, 2);
    return Make(TokenKind::Exclaim, 1);
  case '/':
    if (C1 == '=')
      return Make(TokenKind::SlashEqual, 2);
    return Make(TokenKind::Slash, 1);
  case '%':
    if (C1 == '=')
      return Make(TokenKind::PercentEqual, 2);
    return Make(TokenKind::Percent, 1);
  case '<':
    if (C1 == '<' && C2 == '=')
      return Make(TokenKind::LessLessEqual, 3);
    if (C1 == '<')
      return Make(TokenKind::LessLess, 2);
    if (C1 == '=')
      return Make(TokenKind::LessEqual, 2);
    return Make(TokenKind::Less, 1);
  case '>':
    if (C1 == '>' && C2 == '=')
      return Make(TokenKind::GreaterGreaterEqual, 3);
    if (C1 == '>')
      return Make(TokenKind::GreaterGreater, 2);
    if (C1 == '=')
      return Make(TokenKind::GreaterEqual, 2);
    return Make(TokenKind::Greater, 1);
  case '=':
    if (C1 == '=')
      return Make(TokenKind::EqualEqual, 2);
    return Make(TokenKind::Equal, 1);
  case '^':
    if (C1 == '=')
      return Make(TokenKind::CaretEqual, 2);
    return Make(TokenKind::Caret, 1);
  case '|':
    if (C1 == '}')
      return Make(TokenKind::RMetaBrace, 2);
    if (C1 == '|')
      return Make(TokenKind::PipePipe, 2);
    if (C1 == '=')
      return Make(TokenKind::PipeEqual, 2);
    return Make(TokenKind::Pipe, 1);
  case '?':
    return Make(TokenKind::Question, 1);
  case ':':
    if (C1 == ':')
      return Make(TokenKind::ColonColon, 2);
    return Make(TokenKind::Colon, 1);
  case '$':
    if (C1 == '$')
      return Make(TokenKind::DollarDollar, 2);
    return Make(TokenKind::Dollar, 1);
  case '@':
    return Make(TokenKind::At, 1);
  case '`':
    return Make(TokenKind::Backquote, 1);
  default:
    Diags.error(loc(Pos), std::string("unexpected character '") + C + "'");
    ++Pos;
    // Recover by lexing the next token.
    lex(Result);
    return;
  }
}
