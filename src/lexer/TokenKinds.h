//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the object language (C) and the macro language's seven
/// additional meta-tokens from the paper: `{|`, `|}`, `$$`, `$`, `::`, `@`,
/// and backquote. Two keywords are added: `metadcl` and `syntax` (plus
/// `lambda` for the paper's anonymous-function experiment).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_LEXER_TOKENKINDS_H
#define MSQ_LEXER_TOKENKINDS_H

namespace msq {

// X-macro table: TOK(kind, spelling-or-description)
#define MSQ_TOKEN_KINDS(TOK)                                                   \
  TOK(Eof, "<eof>")                                                            \
  TOK(Identifier, "<identifier>")                                              \
  TOK(IntLiteral, "<int literal>")                                             \
  TOK(FloatLiteral, "<float literal>")                                         \
  TOK(CharLiteral, "<char literal>")                                           \
  TOK(StringLiteral, "<string literal>")                                       \
  /* Synthesized by the parser for template placeholders (paper section 3) */ \
  TOK(PlaceholderTok, "<placeholder>")                                         \
  /* Punctuation */                                                            \
  TOK(LParen, "(")                                                             \
  TOK(RParen, ")")                                                             \
  TOK(LBracket, "[")                                                           \
  TOK(RBracket, "]")                                                           \
  TOK(LBrace, "{")                                                             \
  TOK(RBrace, "}")                                                             \
  TOK(Semi, ";")                                                               \
  TOK(Comma, ",")                                                              \
  TOK(Dot, ".")                                                                \
  TOK(Ellipsis, "...")                                                         \
  TOK(Arrow, "->")                                                             \
  TOK(PlusPlus, "++")                                                          \
  TOK(MinusMinus, "--")                                                        \
  TOK(Amp, "&")                                                                \
  TOK(Star, "*")                                                               \
  TOK(Plus, "+")                                                               \
  TOK(Minus, "-")                                                              \
  TOK(Tilde, "~")                                                              \
  TOK(Exclaim, "!")                                                            \
  TOK(Slash, "/")                                                              \
  TOK(Percent, "%")                                                            \
  TOK(LessLess, "<<")                                                          \
  TOK(GreaterGreater, ">>")                                                    \
  TOK(Less, "<")                                                               \
  TOK(Greater, ">")                                                            \
  TOK(LessEqual, "<=")                                                         \
  TOK(GreaterEqual, ">=")                                                      \
  TOK(EqualEqual, "==")                                                        \
  TOK(ExclaimEqual, "!=")                                                      \
  TOK(Caret, "^")                                                              \
  TOK(Pipe, "|")                                                               \
  TOK(AmpAmp, "&&")                                                            \
  TOK(PipePipe, "||")                                                          \
  TOK(Question, "?")                                                           \
  TOK(Colon, ":")                                                              \
  TOK(Equal, "=")                                                              \
  TOK(StarEqual, "*=")                                                         \
  TOK(SlashEqual, "/=")                                                        \
  TOK(PercentEqual, "%=")                                                      \
  TOK(PlusEqual, "+=")                                                         \
  TOK(MinusEqual, "-=")                                                        \
  TOK(LessLessEqual, "<<=")                                                    \
  TOK(GreaterGreaterEqual, ">>=")                                              \
  TOK(AmpEqual, "&=")                                                          \
  TOK(CaretEqual, "^=")                                                        \
  TOK(PipeEqual, "|=")                                                         \
  /* Meta tokens (paper section 2) */                                          \
  TOK(LMetaBrace, "{|")                                                        \
  TOK(RMetaBrace, "|}")                                                        \
  TOK(DollarDollar, "$$")                                                      \
  TOK(Dollar, "$")                                                             \
  TOK(ColonColon, "::")                                                        \
  TOK(At, "@")                                                                 \
  TOK(Backquote, "`")                                                          \
  /* C keywords */                                                             \
  TOK(KwAuto, "auto")                                                          \
  TOK(KwBreak, "break")                                                        \
  TOK(KwCase, "case")                                                          \
  TOK(KwChar, "char")                                                          \
  TOK(KwConst, "const")                                                        \
  TOK(KwContinue, "continue")                                                  \
  TOK(KwDefault, "default")                                                    \
  TOK(KwDo, "do")                                                              \
  TOK(KwDouble, "double")                                                      \
  TOK(KwElse, "else")                                                          \
  TOK(KwEnum, "enum")                                                          \
  TOK(KwExtern, "extern")                                                      \
  TOK(KwFloat, "float")                                                        \
  TOK(KwFor, "for")                                                            \
  TOK(KwGoto, "goto")                                                          \
  TOK(KwIf, "if")                                                              \
  TOK(KwInt, "int")                                                            \
  TOK(KwLong, "long")                                                          \
  TOK(KwRegister, "register")                                                  \
  TOK(KwReturn, "return")                                                      \
  TOK(KwShort, "short")                                                        \
  TOK(KwSigned, "signed")                                                      \
  TOK(KwSizeof, "sizeof")                                                      \
  TOK(KwStatic, "static")                                                      \
  TOK(KwStruct, "struct")                                                      \
  TOK(KwSwitch, "switch")                                                      \
  TOK(KwTypedef, "typedef")                                                    \
  TOK(KwUnion, "union")                                                        \
  TOK(KwUnsigned, "unsigned")                                                  \
  TOK(KwVoid, "void")                                                          \
  TOK(KwVolatile, "volatile")                                                  \
  TOK(KwWhile, "while")                                                        \
  /* Macro-language keywords */                                                \
  TOK(KwMetadcl, "metadcl")                                                    \
  TOK(KwSyntax, "syntax")                                                      \
  TOK(KwLambda, "lambda")

enum class TokenKind : unsigned char {
#define TOK(Kind, Spelling) Kind,
  MSQ_TOKEN_KINDS(TOK)
#undef TOK
};

/// Returns the canonical spelling (or a <description>) of \p K.
const char *tokenKindSpelling(TokenKind K);

/// Returns true for any keyword token (C or macro-language).
bool isKeywordToken(TokenKind K);

} // namespace msq

#endif // MSQ_LEXER_TOKENKINDS_H
