//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Token record produced by the Lexer and consumed by the Parser. The
/// parser also *injects* PlaceholderTok tokens whose Extra field carries the
/// parsed placeholder payload — the "placeholder token" device of the
/// paper's section 3.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_LEXER_TOKEN_H
#define MSQ_LEXER_TOKEN_H

#include "lexer/TokenKinds.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"

#include <cstdint>

namespace msq {

struct Placeholder; // defined in ast/Ast.h

/// A lexed (or synthesized) token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// Identifier name, keyword spelling, or string-literal contents.
  Symbol Sym;
  /// Value of Int/Char literals.
  int64_t IntVal = 0;
  /// Value of Float literals.
  double FloatVal = 0.0;
  /// For PlaceholderTok: the placeholder payload (meta-expression + type).
  const Placeholder *Ph = nullptr;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  template <typename... Ts> bool isOneOf(TokenKind K, Ts... Rest) const {
    if (is(K))
      return true;
    if constexpr (sizeof...(Rest) > 0)
      return isOneOf(Rest...);
    else
      return false;
  }
};

} // namespace msq

#endif // MSQ_LEXER_TOKEN_H
