//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lexer for C extended with the macro language's meta-tokens.
/// The paper's tokenizer co-routines with the parser for placeholders; in
/// this implementation the lexer produces a plain token vector (including
/// `$` tokens) and the Parser performs the placeholder co-routine step,
/// which keeps the lexer re-entrant and trivially testable.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_LEXER_LEXER_H
#define MSQ_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <vector>

namespace msq {

/// Converts one source buffer into tokens.
class Lexer {
public:
  /// \param BufferId id of the buffer within \p Diags' SourceManager.
  Lexer(uint32_t BufferId, std::string_view Contents, StringInterner &Interner,
        DiagnosticsEngine &Diags);

  /// Lexes the next token into \p Result. At end of input produces Eof
  /// forever.
  void lex(Token &Result);

  /// Lexes the whole buffer, Eof token included (always last).
  std::vector<Token> lexAll();

  /// True once Eof has been produced.
  bool atEnd() const { return Pos >= Contents.size() && ProducedEof; }

private:
  SourceLoc loc(size_t Offset) const {
    return SourceLoc::get(BufferId, uint32_t(Offset));
  }

  char peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Contents.size() ? Contents[I] : '\0';
  }

  void skipWhitespaceAndComments();
  void lexIdentifierOrKeyword(Token &Result);
  void lexNumber(Token &Result);
  void lexCharLiteral(Token &Result);
  void lexStringLiteral(Token &Result);
  void lexPunctuation(Token &Result);

  /// Decodes one (possibly escaped) character of a char/string literal.
  /// Returns false on a malformed escape (diagnosed).
  bool lexEscapedChar(char &Out);

  uint32_t BufferId;
  std::string_view Contents;
  StringInterner &Interner;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  bool ProducedEof = false;
};

} // namespace msq

#endif // MSQ_LEXER_LEXER_H
