//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Macro invocation patterns (paper section 2):
///
///   pattern:          pattern-element ...
///   pattern-element:  token | $$ pspec :: identifier
///   pspec:            ast-specifier
///                   | + pspec            list of 1 or more
///                   | + / token pspec    list of 1 or more, with separator
///                   | * pspec            list of 0 or more
///                   | * / token pspec    list of 0 or more, with separator
///                   | ? pspec            optional element
///                   | ? token pspec      optional guard token + element
///                   | . ( pattern )      tuple
///
/// The pattern parser "requires that detecting the end of a repetition or
/// the presence of an optional element require only one token lookahead.
/// It will report an error in the specification of a pattern if the end of
/// a repetition cannot be uniquely determined by one token lookahead."
/// PatternValidator implements exactly that check.
///
/// Matching is factored over a ConstituentParser callback interface so that
/// the *interpreted* matcher (walks the IR each invocation) and the
/// *compiled* matcher (pattern pre-lowered to a closure chain, the
/// acceleration the paper's section 3 suggests) share all parsing
/// machinery; bench/pattern_compile measures the difference.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_PATTERN_PATTERN_H
#define MSQ_PATTERN_PATTERN_H

#include "ast/Ast.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"
#include "types/MetaType.h"

#include <functional>
#include <vector>

namespace msq {

struct PatternElement;

/// A parameter specifier within a pattern.
struct PSpec {
  enum SKind : unsigned char { Scalar, Plus, Star, Opt, Tuple } K = Scalar;
  const MetaType *ScalarType = nullptr; // Scalar
  PSpec *Inner = nullptr;               // Plus / Star / Opt
  /// Separator (Plus/Star) or guard (Opt) token; TokenKind::Eof when absent.
  TokenKind Sep = TokenKind::Eof;
  Symbol SepSym; // for identifier separators/guards
  Pattern *Sub = nullptr; // Tuple
  SourceLoc Loc;

  bool hasSep() const { return Sep != TokenKind::Eof; }
};

/// One element of a pattern: a concrete token or a `$$pspec::name` binder.
struct PatternElement {
  enum EKind : unsigned char { Token, Binder } K = Token;
  // Token:
  TokenKind Tok = TokenKind::Eof;
  Symbol TokSym; // set when Tok is Identifier (a "buzz word")
  // Binder:
  PSpec *Spec = nullptr;
  Symbol Name;
  SourceLoc Loc;
};

/// A whole macro pattern.
struct Pattern {
  ArenaRef<PatternElement> Elements;
};

/// Computes the meta-type of the value a pspec binds:
/// scalar -> scalar, +/* -> list, ? -> inner, tuple -> tuple of binder types.
const MetaType *pspecValueType(const PSpec *Spec, MetaTypeContext &Ctx);

/// Collects (name, type) for every top-level binder of \p P.
void patternBinderTypes(const Pattern &P, MetaTypeContext &Ctx,
                        std::vector<std::pair<Symbol, const MetaType *>> &Out);

/// Conservative FIRST-set test: can a token of kind \p K (identifier
/// spelling \p Sym) begin a constituent of AST-scalar type \p Scalar?
/// Used both by pattern validation and by repetition-stop decisions.
bool tokenCanStartConstituent(const MetaType *Scalar, TokenKind K);

/// Validates the one-token-lookahead property of \p P (and binder-name
/// uniqueness). Reports problems to \p Diags; returns false if any.
bool validatePattern(const Pattern &P, DiagnosticsEngine &Diags);

//===----------------------------------------------------------------------===//
// Matching
//===----------------------------------------------------------------------===//

/// Callback interface through which matchers drive the real parser.
class ConstituentParser {
public:
  virtual ~ConstituentParser() = default;

  /// Current lookahead token.
  virtual const Token &peek() = 0;
  /// True when the lookahead matches kind \p K (and, for identifiers with a
  /// valid \p Sym, the exact spelling).
  virtual bool tokenMatches(TokenKind K, Symbol Sym) = 0;
  /// Consumes the lookahead if it matches; otherwise diagnoses and returns
  /// false.
  virtual bool consumeToken(TokenKind K, Symbol Sym) = 0;
  /// Parses one constituent of the given AST-scalar type. Returns nullptr
  /// after diagnosing a parse error.
  virtual MatchValue *parseConstituent(const MetaType *Scalar) = 0;
  virtual Arena &arena() = 0;
  virtual DiagnosticsEngine &diags() = 0;
};

/// Interpreted matcher: walks the pattern IR on every invocation.
class PatternMatcher {
public:
  PatternMatcher(MetaTypeContext &Ctx) : Ctx(Ctx) {}

  /// Matches \p P against the token stream behind \p CP. On success appends
  /// one MacroArg per top-level binder to \p Bindings and returns true.
  bool match(const Pattern &P, ConstituentParser &CP,
             std::vector<MacroArg> &Bindings);

private:
  friend class CompiledPattern;
  /// \p Follow is the concrete token element following the binder in the
  /// enclosing pattern, or nullptr when the binder is last.
  MatchValue *matchPSpec(const PSpec *Spec, ConstituentParser &CP,
                         const PatternElement *Follow);
  MatchValue *matchTuple(const Pattern &Sub, ConstituentParser &CP);
  bool shouldContinueRepetition(const PSpec *Inner, ConstituentParser &CP,
                                const PatternElement *Follow);

  MetaTypeContext &Ctx;
};

/// Compiled matcher: the pattern is lowered once into a chain of closures
/// with all lookahead decisions pre-resolved (the per-macro "specialized
/// routine" of paper section 3).
class CompiledPattern {
public:
  CompiledPattern(const Pattern &P, MetaTypeContext &Ctx);

  bool match(ConstituentParser &CP, std::vector<MacroArg> &Bindings) const;

private:
  using Step = std::function<bool(ConstituentParser &,
                                  std::vector<MacroArg> &)>;
  void compileElement(const PatternElement &E, const PatternElement *Follow);
  std::vector<Step> Steps;
  MetaTypeContext &Ctx;
};

} // namespace msq

#endif // MSQ_PATTERN_PATTERN_H
