//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "pattern/Pattern.h"

#include <set>
#include <sstream>

using namespace msq;

//===----------------------------------------------------------------------===//
// Value typing
//===----------------------------------------------------------------------===//

const MetaType *msq::pspecValueType(const PSpec *Spec, MetaTypeContext &Ctx) {
  switch (Spec->K) {
  case PSpec::Scalar:
    return Spec->ScalarType;
  case PSpec::Plus:
  case PSpec::Star:
    return Ctx.getList(pspecValueType(Spec->Inner, Ctx));
  case PSpec::Opt:
    return pspecValueType(Spec->Inner, Ctx);
  case PSpec::Tuple: {
    std::vector<const MetaType *> Fields;
    std::vector<Symbol> Names;
    for (const PatternElement &E : Spec->Sub->Elements) {
      if (E.K != PatternElement::Binder)
        continue;
      Fields.push_back(pspecValueType(E.Spec, Ctx));
      Names.push_back(E.Name);
    }
    return Ctx.getTuple(std::move(Fields), std::move(Names));
  }
  }
  return Ctx.getError();
}

void msq::patternBinderTypes(
    const Pattern &P, MetaTypeContext &Ctx,
    std::vector<std::pair<Symbol, const MetaType *>> &Out) {
  for (const PatternElement &E : P.Elements)
    if (E.K == PatternElement::Binder)
      Out.emplace_back(E.Name, pspecValueType(E.Spec, Ctx));
}

//===----------------------------------------------------------------------===//
// FIRST sets
//===----------------------------------------------------------------------===//

static bool tokenCanStartExpression(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
  case TokenKind::IntLiteral:
  case TokenKind::FloatLiteral:
  case TokenKind::CharLiteral:
  case TokenKind::StringLiteral:
  case TokenKind::LParen:
  case TokenKind::Exclaim:
  case TokenKind::Tilde:
  case TokenKind::Star:
  case TokenKind::Amp:
  case TokenKind::Plus:
  case TokenKind::Minus:
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus:
  case TokenKind::KwSizeof:
  case TokenKind::Dollar:     // placeholder inside a template
  case TokenKind::Backquote:  // nested template (meta code)
  case TokenKind::KwLambda:
    return true;
  default:
    return false;
  }
}

static bool tokenCanStartTypeSpecifier(TokenKind K) {
  switch (K) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwShort:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwSigned:
  case TokenKind::KwUnsigned:
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
  case TokenKind::KwEnum:
  case TokenKind::KwConst:
  case TokenKind::KwVolatile:
  case TokenKind::Identifier: // possibly a typedef name
  case TokenKind::At:         // meta AST type
  case TokenKind::Dollar:     // placeholder
    return true;
  default:
    return false;
  }
}

static bool tokenCanStartDeclaration(TokenKind K) {
  switch (K) {
  case TokenKind::KwAuto:
  case TokenKind::KwRegister:
  case TokenKind::KwStatic:
  case TokenKind::KwExtern:
  case TokenKind::KwTypedef:
    return true;
  default:
    return tokenCanStartTypeSpecifier(K);
  }
}

static bool tokenCanStartStatement(TokenKind K) {
  switch (K) {
  case TokenKind::LBrace:
  case TokenKind::Semi:
  case TokenKind::KwIf:
  case TokenKind::KwWhile:
  case TokenKind::KwDo:
  case TokenKind::KwFor:
  case TokenKind::KwSwitch:
  case TokenKind::KwCase:
  case TokenKind::KwDefault:
  case TokenKind::KwBreak:
  case TokenKind::KwContinue:
  case TokenKind::KwReturn:
  case TokenKind::KwGoto:
    return true;
  default:
    return tokenCanStartExpression(K);
  }
}

bool msq::tokenCanStartConstituent(const MetaType *Scalar, TokenKind K) {
  switch (Scalar->kind()) {
  case MetaTypeKind::Exp:
  case MetaTypeKind::Num:
    return tokenCanStartExpression(K);
  case MetaTypeKind::Id:
    return K == TokenKind::Identifier || K == TokenKind::Dollar;
  case MetaTypeKind::Stmt:
    return tokenCanStartStatement(K);
  case MetaTypeKind::Decl:
    return tokenCanStartDeclaration(K);
  case MetaTypeKind::TypeSpec:
    return tokenCanStartTypeSpecifier(K);
  case MetaTypeKind::Declarator:
  case MetaTypeKind::InitDeclarator:
    return K == TokenKind::Identifier || K == TokenKind::Star ||
           K == TokenKind::LParen || K == TokenKind::Dollar;
  case MetaTypeKind::Enumerator:
    return K == TokenKind::Identifier || K == TokenKind::Dollar;
  case MetaTypeKind::Param:
    return tokenCanStartDeclaration(K);
  default:
    // Non-AST scalars never appear as constituents.
    return false;
  }
}

/// Can the current-lookahead decision "this pspec starts here" be made, and
/// does it hold for token kind \p K?
static bool pspecCanStartWithToken(const PSpec *Spec, TokenKind K,
                                   Symbol Sym) {
  switch (Spec->K) {
  case PSpec::Scalar:
    return tokenCanStartConstituent(Spec->ScalarType, K);
  case PSpec::Plus:
  case PSpec::Star:
  case PSpec::Opt:
    if (Spec->hasSep() && Spec->K == PSpec::Opt)
      return K == Spec->Sep && (!Spec->SepSym.valid() || Sym == Spec->SepSym);
    return pspecCanStartWithToken(Spec->Inner, K, Sym);
  case PSpec::Tuple: {
    if (Spec->Sub->Elements.empty())
      return false;
    const PatternElement &First = Spec->Sub->Elements[0];
    if (First.K == PatternElement::Token)
      return K == First.Tok && (!First.TokSym.valid() || Sym == First.TokSym);
    return pspecCanStartWithToken(First.Spec, K, Sym);
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

static void collectBinderNames(const Pattern &P, DiagnosticsEngine &Diags,
                               std::set<Symbol> &Seen, bool &Ok) {
  for (const PatternElement &E : P.Elements) {
    if (E.K != PatternElement::Binder)
      continue;
    if (!Seen.insert(E.Name).second) {
      Diags.error(E.Loc, "duplicate pattern binder '" +
                             std::string(E.Name.str()) + "'");
      Ok = false;
    }
    // Tuple sub-pattern binders live in their own (field) namespace.
  }
}

/// True when \p Spec's end-of-match decision needs one-token lookahead on
/// what *follows* (i.e. it is an unseparated repetition or an unguarded
/// optional).
static bool needsFollowDecision(const PSpec *Spec) {
  switch (Spec->K) {
  case PSpec::Plus:
  case PSpec::Star:
    return !Spec->hasSep();
  case PSpec::Opt:
    return !Spec->hasSep();
  default:
    return false;
  }
}

bool msq::validatePattern(const Pattern &P, DiagnosticsEngine &Diags) {
  bool Ok = true;
  std::set<Symbol> Seen;
  collectBinderNames(P, Diags, Seen, Ok);

  for (size_t I = 0; I != P.Elements.size(); ++I) {
    const PatternElement &E = P.Elements[I];
    if (E.K != PatternElement::Binder)
      continue;
    // Validate nested tuple patterns.
    if (E.Spec->K == PSpec::Tuple || (E.Spec->Inner &&
                                      E.Spec->Inner->K == PSpec::Tuple)) {
      const PSpec *T = E.Spec->K == PSpec::Tuple ? E.Spec : E.Spec->Inner;
      if (!validatePattern(*T->Sub, Diags))
        Ok = false;
    }
    if (!needsFollowDecision(E.Spec))
      continue;
    const PatternElement *Follow =
        I + 1 < P.Elements.size() ? &P.Elements[I + 1] : nullptr;
    if (!Follow) {
      // Repetition/optional at pattern end: resolved by the FIRST set of
      // the repeated element against whatever follows the invocation.
      // This is accepted (the paper's own Painting-style macros rely on
      // it), but only for AST scalars with a computable FIRST set.
      continue;
    }
    if (Follow->K == PatternElement::Binder) {
      Diags.error(E.Loc,
                  "end of repetition or optional element cannot be "
                  "determined by one token lookahead: binder '" +
                      std::string(E.Name.str()) +
                      "' is immediately followed by another binder");
      Ok = false;
      continue;
    }
    if (pspecCanStartWithToken(E.Spec, Follow->Tok, Follow->TokSym)) {
      std::ostringstream OS;
      OS << "end of repetition or optional element cannot be determined by "
            "one token lookahead: the following token '"
         << tokenKindSpelling(Follow->Tok)
         << "' can also begin the repeated element";
      Diags.error(E.Loc, OS.str());
      Ok = false;
    }
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Interpreted matcher
//===----------------------------------------------------------------------===//

static MatchValue *makeAbsent(Arena &A, const MetaType *Type) {
  MatchValue *V = A.create<MatchValue>();
  V->K = MatchValue::Absent;
  V->Type = Type;
  return V;
}

static MatchValue *makeList(Arena &A, std::vector<MatchValue *> Elems,
                            const MetaType *Type) {
  MatchValue *V = A.create<MatchValue>();
  V->K = MatchValue::List;
  V->Elems = ArenaRef<MatchValue *>::copy(A, Elems);
  V->Type = Type;
  return V;
}

bool PatternMatcher::shouldContinueRepetition(const PSpec *Inner,
                                              ConstituentParser &CP,
                                              const PatternElement *Follow) {
  if (Follow) {
    // Stop exactly when the follow token arrives.
    return !CP.tokenMatches(Follow->Tok, Follow->TokSym);
  }
  const Token &T = CP.peek();
  if (T.is(TokenKind::Eof))
    return false;
  return pspecCanStartWithToken(Inner, T.Kind, T.Sym);
}

MatchValue *PatternMatcher::matchTuple(const Pattern &Sub,
                                       ConstituentParser &CP) {
  std::vector<MatchValue *> Fields;
  std::vector<Symbol> Names;
  for (size_t I = 0; I != Sub.Elements.size(); ++I) {
    const PatternElement &E = Sub.Elements[I];
    if (E.K == PatternElement::Token) {
      if (!CP.consumeToken(E.Tok, E.TokSym))
        return nullptr;
      continue;
    }
    const PatternElement *Follow =
        I + 1 < Sub.Elements.size() ? &Sub.Elements[I + 1] : nullptr;
    MatchValue *V = matchPSpec(E.Spec, CP, Follow);
    if (!V)
      return nullptr;
    Fields.push_back(V);
    Names.push_back(E.Name);
  }
  MatchValue *V = CP.arena().create<MatchValue>();
  V->K = MatchValue::Tuple;
  V->Elems = ArenaRef<MatchValue *>::copy(CP.arena(), Fields);
  V->FieldNames = ArenaRef<Symbol>::copy(CP.arena(), Names);
  return V;
}

MatchValue *PatternMatcher::matchPSpec(const PSpec *Spec,
                                       ConstituentParser &CP,
                                       const PatternElement *Follow) {
  switch (Spec->K) {
  case PSpec::Scalar:
    return CP.parseConstituent(Spec->ScalarType);
  case PSpec::Plus:
  case PSpec::Star: {
    std::vector<MatchValue *> Elems;
    const MetaType *ListType = pspecValueType(Spec, Ctx);
    if (Spec->hasSep()) {
      // First element is mandatory for '+', optional for '*' (a '*' list
      // is empty exactly when its first element cannot start here).
      bool First = true;
      for (;;) {
        if (First && Spec->K == PSpec::Star) {
          const Token &T = CP.peek();
          if (!pspecCanStartWithToken(Spec->Inner, T.Kind, T.Sym))
            break;
        }
        MatchValue *V = matchPSpec(Spec->Inner, CP, nullptr);
        if (!V)
          return nullptr;
        Elems.push_back(V);
        First = false;
        if (!CP.tokenMatches(Spec->Sep, Spec->SepSym))
          break;
        CP.consumeToken(Spec->Sep, Spec->SepSym);
      }
    } else {
      if (Spec->K == PSpec::Plus) {
        MatchValue *V = matchPSpec(Spec->Inner, CP, Follow);
        if (!V)
          return nullptr;
        Elems.push_back(V);
      }
      while (shouldContinueRepetition(Spec->Inner, CP, Follow)) {
        MatchValue *V = matchPSpec(Spec->Inner, CP, Follow);
        if (!V)
          return nullptr;
        Elems.push_back(V);
      }
    }
    return makeList(CP.arena(), std::move(Elems), ListType);
  }
  case PSpec::Opt: {
    const MetaType *InnerType = pspecValueType(Spec->Inner, Ctx);
    if (Spec->hasSep()) {
      // `? token pspec`: the guard token decides; if present, the element
      // must follow (paper: "if the token is present in the invocation,
      // then the pspec must be present").
      if (!CP.tokenMatches(Spec->Sep, Spec->SepSym))
        return makeAbsent(CP.arena(), InnerType);
      CP.consumeToken(Spec->Sep, Spec->SepSym);
      return matchPSpec(Spec->Inner, CP, Follow);
    }
    if (Follow ? CP.tokenMatches(Follow->Tok, Follow->TokSym)
               : !pspecCanStartWithToken(Spec->Inner, CP.peek().Kind,
                                         CP.peek().Sym))
      return makeAbsent(CP.arena(), InnerType);
    return matchPSpec(Spec->Inner, CP, Follow);
  }
  case PSpec::Tuple:
    return matchTuple(*Spec->Sub, CP);
  }
  return nullptr;
}

bool PatternMatcher::match(const Pattern &P, ConstituentParser &CP,
                           std::vector<MacroArg> &Bindings) {
  for (size_t I = 0; I != P.Elements.size(); ++I) {
    const PatternElement &E = P.Elements[I];
    if (E.K == PatternElement::Token) {
      if (!CP.consumeToken(E.Tok, E.TokSym))
        return false;
      continue;
    }
    const PatternElement *Follow =
        I + 1 < P.Elements.size() ? &P.Elements[I + 1] : nullptr;
    MatchValue *V = matchPSpec(E.Spec, CP, Follow);
    if (!V)
      return false;
    if (!V->Type)
      V->Type = pspecValueType(E.Spec, Ctx);
    Bindings.push_back({E.Name, V});
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Compiled matcher
//===----------------------------------------------------------------------===//

CompiledPattern::CompiledPattern(const Pattern &P, MetaTypeContext &Ctx)
    : Ctx(Ctx) {
  for (size_t I = 0; I != P.Elements.size(); ++I) {
    const PatternElement *Follow =
        I + 1 < P.Elements.size() ? &P.Elements[I + 1] : nullptr;
    compileElement(P.Elements[I], Follow);
  }
}

void CompiledPattern::compileElement(const PatternElement &E,
                                     const PatternElement *Follow) {
  if (E.K == PatternElement::Token) {
    TokenKind Tok = E.Tok;
    Symbol Sym = E.TokSym;
    Steps.push_back([Tok, Sym](ConstituentParser &CP,
                               std::vector<MacroArg> &) {
      return CP.consumeToken(Tok, Sym);
    });
    return;
  }
  // Pre-resolve the binder's value type and capture the spec; the per-spec
  // dispatch still reuses PatternMatcher's logic, but the per-element follow
  // analysis, type computation, and binding slot are resolved at compile
  // time.
  const PSpec *Spec = E.Spec;
  Symbol Name = E.Name;
  const MetaType *ValueType = pspecValueType(Spec, Ctx);
  MetaTypeContext *CtxPtr = &Ctx;
  Steps.push_back([Spec, Name, ValueType, Follow, CtxPtr](
                      ConstituentParser &CP, std::vector<MacroArg> &Out) {
    PatternMatcher M(*CtxPtr);
    MatchValue *V = M.matchPSpec(Spec, CP, Follow);
    if (!V)
      return false;
    if (!V->Type)
      V->Type = ValueType;
    Out.push_back({Name, V});
    return true;
  });
}

bool CompiledPattern::match(ConstituentParser &CP,
                            std::vector<MacroArg> &Bindings) const {
  for (const Step &S : Steps)
    if (!S(CP, Bindings))
      return false;
  return true;
}
