//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

using namespace msq;

const char *msq::unaryOpSpelling(UnaryOpKind K) {
  switch (K) {
  case UnaryOpKind::Plus:
    return "+";
  case UnaryOpKind::Minus:
    return "-";
  case UnaryOpKind::Not:
    return "!";
  case UnaryOpKind::BitNot:
    return "~";
  case UnaryOpKind::Deref:
    return "*";
  case UnaryOpKind::AddrOf:
    return "&";
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PostInc:
    return "++";
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostDec:
    return "--";
  }
  return "<unary?>";
}

const char *msq::binaryOpSpelling(BinaryOpKind K) {
  switch (K) {
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  case BinaryOpKind::Rem:
    return "%";
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Shl:
    return "<<";
  case BinaryOpKind::Shr:
    return ">>";
  case BinaryOpKind::LT:
    return "<";
  case BinaryOpKind::GT:
    return ">";
  case BinaryOpKind::LE:
    return "<=";
  case BinaryOpKind::GE:
    return ">=";
  case BinaryOpKind::EQ:
    return "==";
  case BinaryOpKind::NE:
    return "!=";
  case BinaryOpKind::BitAnd:
    return "&";
  case BinaryOpKind::BitXor:
    return "^";
  case BinaryOpKind::BitOr:
    return "|";
  case BinaryOpKind::LAnd:
    return "&&";
  case BinaryOpKind::LOr:
    return "||";
  case BinaryOpKind::Assign:
    return "=";
  case BinaryOpKind::MulAssign:
    return "*=";
  case BinaryOpKind::DivAssign:
    return "/=";
  case BinaryOpKind::RemAssign:
    return "%=";
  case BinaryOpKind::AddAssign:
    return "+=";
  case BinaryOpKind::SubAssign:
    return "-=";
  case BinaryOpKind::ShlAssign:
    return "<<=";
  case BinaryOpKind::ShrAssign:
    return ">>=";
  case BinaryOpKind::AndAssign:
    return "&=";
  case BinaryOpKind::XorAssign:
    return "^=";
  case BinaryOpKind::OrAssign:
    return "|=";
  case BinaryOpKind::Comma:
    return ",";
  }
  return "<binary?>";
}

bool msq::isAssignmentOp(BinaryOpKind K) {
  return K >= BinaryOpKind::Assign && K <= BinaryOpKind::OrAssign;
}
