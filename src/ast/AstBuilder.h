//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Manual AST construction helpers in the `create_*` style the paper's
/// introduction shows ("This style of code plagues meta-programming
/// systems"). They exist (a) as a convenient host-level API for tests and
/// (b) as the *baseline* for the template-vs-manual benchmark, which
/// contrasts this style against backquote templates.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_AST_ASTBUILDER_H
#define MSQ_AST_ASTBUILDER_H

#include "ast/Ast.h"

#include <initializer_list>
#include <string_view>
#include <vector>

namespace msq {

/// Builds AST nodes into an Arena with interned names. All nodes carry the
/// invalid SourceLoc (they are synthetic).
class AstBuilder {
public:
  AstBuilder(Arena &A, StringInterner &Interner) : A(A), Interner(Interner) {}

  Arena &arena() { return A; }

  // --- names -------------------------------------------------------------
  Symbol sym(std::string_view Name) { return Interner.intern(Name); }
  Ident ident(std::string_view Name) { return Ident(sym(Name), SourceLoc()); }

  // --- expressions ---------------------------------------------------------
  Expr *createId(std::string_view Name) {
    return A.create<IdentExpr>(ident(Name), SourceLoc());
  }
  Expr *createInt(int64_t V) { return A.create<IntLiteralExpr>(V, SourceLoc()); }
  Expr *createString(std::string_view S) {
    return A.create<StringLiteralExpr>(sym(S), SourceLoc());
  }
  Expr *createAddressOf(Expr *E) {
    return A.create<UnaryExpr>(UnaryOpKind::AddrOf, E, SourceLoc());
  }
  Expr *createUnary(UnaryOpKind Op, Expr *E) {
    return A.create<UnaryExpr>(Op, E, SourceLoc());
  }
  Expr *createBinary(BinaryOpKind Op, Expr *L, Expr *R) {
    return A.create<BinaryExpr>(Op, L, R, SourceLoc());
  }
  Expr *createAssign(Expr *L, Expr *R) {
    return createBinary(BinaryOpKind::Assign, L, R);
  }
  Expr *createParen(Expr *E) { return A.create<ParenExpr>(E, SourceLoc()); }
  Expr *createMember(Expr *Base, std::string_view Name, bool Arrow) {
    return A.create<MemberExpr>(Base, ident(Name), Arrow, SourceLoc());
  }
  Expr *createIndex(Expr *Base, Expr *Idx) {
    return A.create<IndexExpr>(Base, Idx, SourceLoc());
  }

  /// `createFunctionCall(createId("f"), createArgumentList(a, b))`.
  Expr *createFunctionCall(Expr *Callee, std::vector<Expr *> Args) {
    return A.create<CallExpr>(Callee, ArenaRef<Expr *>::copy(A, Args),
                              SourceLoc());
  }
  std::vector<Expr *> createArgumentList(std::initializer_list<Expr *> Args) {
    return std::vector<Expr *>(Args);
  }

  // --- statements ------------------------------------------------------------
  Stmt *createExprStatement(Expr *E) {
    return A.create<ExprStmt>(E, SourceLoc());
  }
  Stmt *createReturn(Expr *E) { return A.create<ReturnStmt>(E, SourceLoc()); }
  Stmt *createIf(Expr *C, Stmt *T, Stmt *E) {
    return A.create<IfStmt>(C, T, E, SourceLoc());
  }
  Stmt *createWhile(Expr *C, Stmt *B) {
    return A.create<WhileStmt>(C, B, SourceLoc());
  }
  Stmt *createNull() { return A.create<NullStmt>(SourceLoc()); }

  std::vector<Decl *> createDeclarationList(
      std::initializer_list<Decl *> Ds = {}) {
    return std::vector<Decl *>(Ds);
  }
  std::vector<Stmt *> createStatementList(std::initializer_list<Stmt *> Ss) {
    return std::vector<Stmt *>(Ss);
  }

  Stmt *createCompoundStatement(std::vector<Decl *> Decls,
                                std::vector<Stmt *> Stmts) {
    return A.create<CompoundStmt>(ArenaRef<Decl *>::copy(A, Decls),
                                  ArenaRef<Stmt *>::copy(A, Stmts),
                                  SourceLoc());
  }

  // --- declarations ------------------------------------------------------------
  TypeSpecNode *createBuiltinType(unsigned Flags) {
    return A.create<BuiltinTypeSpec>(Flags, SourceLoc());
  }

  Declarator *createDeclarator(std::string_view Name,
                               unsigned PointerDepth = 0) {
    Declarator *D = A.create<Declarator>();
    D->Name = ident(Name);
    D->PointerDepth = PointerDepth;
    return D;
  }

  Decl *createVarDeclaration(TypeSpecNode *Type, Declarator *Dtor,
                             Expr *Init = nullptr) {
    DeclSpecs Specs;
    Specs.Type = Type;
    InitDeclarator ID;
    ID.Dtor = Dtor;
    ID.Init = Init;
    std::vector<InitDeclarator> Inits = {ID};
    return A.create<Declaration>(Specs, ArenaRef<InitDeclarator>::copy(A, Inits),
                                 nullptr, SourceLoc());
  }

private:
  Arena &A;
  StringInterner &Interner;
};

} // namespace msq

#endif // MSQ_AST_ASTBUILDER_H
