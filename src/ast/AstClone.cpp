//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep cloning of AST nodes. Backquote instantiation clones the template
/// tree before splicing placeholder values, so cloning must cover every
/// node kind that can appear inside a template, plus macro definitions and
/// invocations (templates may contain nested macro invocations).
///
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

#include <vector>

using namespace msq;

namespace {

class Cloner {
public:
  explicit Cloner(Arena &A, MacroDefRemapFn Remap = nullptr,
                  void *RemapCtx = nullptr)
      : A(A), Remap(Remap), RemapCtx(RemapCtx) {}

  Node *cloneImpl(const Node *N);

  Node *clone(const Node *N) {
    Node *R = cloneImpl(N);
    if (R)
      R->setProv(N->prov()); // provenance stamps survive cloning
    return R;
  }
  Expr *cloneE(const Expr *E) {
    return E ? cast<Expr>(clone(E)) : nullptr;
  }
  Stmt *cloneS(const Stmt *S) { return S ? cast<Stmt>(clone(S)) : nullptr; }
  Decl *cloneD(const Decl *D) { return D ? cast<Decl>(clone(D)) : nullptr; }
  TypeSpecNode *cloneT(const TypeSpecNode *T) {
    return T ? cast<TypeSpecNode>(clone(T)) : nullptr;
  }

  Ident cloneIdent(const Ident &I) { return I; } // Symbols & Placeholders shared

  TypeName cloneTypeName(const TypeName &T) {
    TypeName R = T;
    R.Spec = cloneT(T.Spec);
    return R;
  }

  DeclSpecs cloneSpecs(const DeclSpecs &S) {
    DeclSpecs R = S;
    R.Type = cloneT(S.Type);
    return R;
  }

  template <typename T, typename Fn>
  ArenaRef<T> cloneArray(ArenaRef<T> Src, Fn F) {
    if (Src.empty())
      return {};
    std::vector<T> Out;
    Out.reserve(Src.size());
    for (const T &E : Src)
      Out.push_back(F(E));
    return ArenaRef<T>::copy(A, Out);
  }

  Declarator *cloneDeclarator(const Declarator *D) {
    if (!D)
      return nullptr;
    Declarator *R = A.create<Declarator>();
    R->Ph = D->Ph;
    R->Name = cloneIdent(D->Name);
    R->Inner = cloneDeclarator(D->Inner);
    R->PointerDepth = D->PointerDepth;
    R->Loc = D->Loc;
    R->Suffixes = cloneArray(D->Suffixes, [&](const DeclSuffix &S) {
      DeclSuffix Out = S;
      Out.ArraySize = cloneE(S.ArraySize);
      Out.Params = cloneArray(S.Params, [&](ParamDecl *P) {
        ParamDecl *NP = A.create<ParamDecl>();
        NP->Specs = cloneSpecs(P->Specs);
        NP->Dtor = cloneDeclarator(P->Dtor);
        NP->Loc = P->Loc;
        return NP;
      });
      return Out;
    });
    return R;
  }

  InitDeclarator cloneInitDeclarator(const InitDeclarator &I) {
    InitDeclarator R;
    R.Ph = I.Ph;
    R.Dtor = cloneDeclarator(I.Dtor);
    R.Init = cloneE(I.Init);
    R.Loc = I.Loc;
    return R;
  }

  Enumerator cloneEnumerator(const Enumerator &E) {
    Enumerator R = E;
    R.Name = cloneIdent(E.Name);
    R.Value = cloneE(E.Value);
    return R;
  }

  MatchValue *cloneMatchValue(const MatchValue *V) {
    if (!V)
      return nullptr;
    MatchValue *R = A.create<MatchValue>();
    R->K = V->K;
    R->Type = V->Type;
    R->Id = cloneIdent(V->Id);
    if (V->AstNode)
      R->AstNode = clone(V->AstNode);
    R->Dtor = cloneDeclarator(V->Dtor);
    if (V->InitDtor) {
      R->InitDtor = A.create<InitDeclarator>(cloneInitDeclarator(*V->InitDtor));
    }
    if (V->Enum)
      R->Enum = A.create<Enumerator>(cloneEnumerator(*V->Enum));
    R->Elems = cloneArray(V->Elems,
                          [&](MatchValue *E) { return cloneMatchValue(E); });
    R->FieldNames = cloneArray(V->FieldNames, [](Symbol S) { return S; });
    return R;
  }

  MacroInvocation *cloneInvocation(const MacroInvocation *Inv) {
    MacroInvocation *R = A.create<MacroInvocation>();
    R->Def = Inv->Def; // definitions are immutable & shared
    if (Remap)
      if (const MacroDef *NewDef = Remap(Inv->Def, RemapCtx))
        R->Def = NewDef;
    R->Loc = Inv->Loc;
    R->Args = cloneArray(Inv->Args, [&](const MacroArg &Arg) {
      MacroArg Out = Arg;
      Out.Value = cloneMatchValue(Arg.Value);
      return Out;
    });
    return R;
  }

private:
  Arena &A;
  MacroDefRemapFn Remap = nullptr;
  void *RemapCtx = nullptr;
};

Node *Cloner::cloneImpl(const Node *N) {
  if (!N)
    return nullptr;
  switch (N->kind()) {
  // Expressions -------------------------------------------------------------
  case NodeKind::IntLiteralExpr: {
    auto *E = cast<IntLiteralExpr>(N);
    return A.create<IntLiteralExpr>(E->Value, E->loc());
  }
  case NodeKind::FloatLiteralExpr: {
    auto *E = cast<FloatLiteralExpr>(N);
    return A.create<FloatLiteralExpr>(E->Value, E->loc());
  }
  case NodeKind::CharLiteralExpr: {
    auto *E = cast<CharLiteralExpr>(N);
    return A.create<CharLiteralExpr>(E->Value, E->loc());
  }
  case NodeKind::StringLiteralExpr: {
    auto *E = cast<StringLiteralExpr>(N);
    return A.create<StringLiteralExpr>(E->Value, E->loc());
  }
  case NodeKind::IdentExpr: {
    auto *E = cast<IdentExpr>(N);
    return A.create<IdentExpr>(cloneIdent(E->Name), E->loc());
  }
  case NodeKind::ParenExpr: {
    auto *E = cast<ParenExpr>(N);
    return A.create<ParenExpr>(cloneE(E->Inner), E->loc());
  }
  case NodeKind::InitListExpr: {
    auto *E = cast<InitListExpr>(N);
    ArenaRef<Expr *> Elems =
        cloneArray(E->Elems, [&](Expr *El) { return cloneE(El); });
    return A.create<InitListExpr>(Elems, E->loc());
  }
  case NodeKind::UnaryExpr: {
    auto *E = cast<UnaryExpr>(N);
    return A.create<UnaryExpr>(E->Op, cloneE(E->Operand), E->loc());
  }
  case NodeKind::BinaryExpr: {
    auto *E = cast<BinaryExpr>(N);
    return A.create<BinaryExpr>(E->Op, cloneE(E->LHS), cloneE(E->RHS),
                                E->loc());
  }
  case NodeKind::ConditionalExpr: {
    auto *E = cast<ConditionalExpr>(N);
    return A.create<ConditionalExpr>(cloneE(E->Cond), cloneE(E->Then),
                                     cloneE(E->Else), E->loc());
  }
  case NodeKind::CastExpr: {
    auto *E = cast<CastExpr>(N);
    return A.create<CastExpr>(cloneTypeName(E->Ty), cloneE(E->Operand),
                              E->loc());
  }
  case NodeKind::SizeofExpr: {
    auto *E = cast<SizeofExpr>(N);
    if (E->IsType)
      return A.create<SizeofExpr>(cloneTypeName(E->Ty), E->loc());
    return A.create<SizeofExpr>(cloneE(E->Operand), E->loc());
  }
  case NodeKind::CallExpr: {
    auto *E = cast<CallExpr>(N);
    ArenaRef<Expr *> Args =
        cloneArray(E->Args, [&](Expr *Arg) { return cloneE(Arg); });
    return A.create<CallExpr>(cloneE(E->Callee), Args, E->loc());
  }
  case NodeKind::IndexExpr: {
    auto *E = cast<IndexExpr>(N);
    return A.create<IndexExpr>(cloneE(E->Base), cloneE(E->Index), E->loc());
  }
  case NodeKind::MemberExpr: {
    auto *E = cast<MemberExpr>(N);
    return A.create<MemberExpr>(cloneE(E->Base), cloneIdent(E->Member),
                                E->IsArrow, E->loc());
  }
  case NodeKind::PlaceholderExpr: {
    auto *E = cast<PlaceholderExpr>(N);
    return A.create<PlaceholderExpr>(E->Ph, E->loc());
  }
  case NodeKind::MacroInvocationExpr: {
    auto *E = cast<MacroInvocationExpr>(N);
    return A.create<MacroInvocationExpr>(cloneInvocation(E->Inv), E->loc());
  }
  case NodeKind::BackquoteExpr: {
    auto *E = cast<BackquoteExpr>(N);
    auto *R = A.create<BackquoteExpr>(E->Form, clone(E->Template), E->Type,
                                      E->loc());
    R->TemplateMV = cloneMatchValue(E->TemplateMV);
    return R;
  }
  case NodeKind::LambdaExpr: {
    auto *E = cast<LambdaExpr>(N);
    ArenaRef<LambdaParam> Params =
        cloneArray(E->Params, [](const LambdaParam &P) { return P; });
    return A.create<LambdaExpr>(Params, cloneE(E->Body), E->loc());
  }
  // Statements ----------------------------------------------------------------
  case NodeKind::CompoundStmtKind: {
    auto *S = cast<CompoundStmt>(N);
    ArenaRef<Decl *> Decls =
        cloneArray(S->Decls, [&](Decl *D) { return cloneD(D); });
    ArenaRef<Stmt *> Stmts =
        cloneArray(S->Stmts, [&](Stmt *St) { return cloneS(St); });
    return A.create<CompoundStmt>(Decls, Stmts, S->loc());
  }
  case NodeKind::ExprStmt: {
    auto *S = cast<ExprStmt>(N);
    return A.create<ExprStmt>(cloneE(S->E), S->loc());
  }
  case NodeKind::NullStmt:
    return A.create<NullStmt>(N->loc());
  case NodeKind::IfStmt: {
    auto *S = cast<IfStmt>(N);
    return A.create<IfStmt>(cloneE(S->Cond), cloneS(S->Then), cloneS(S->Else),
                            S->loc());
  }
  case NodeKind::WhileStmt: {
    auto *S = cast<WhileStmt>(N);
    return A.create<WhileStmt>(cloneE(S->Cond), cloneS(S->Body), S->loc());
  }
  case NodeKind::DoStmt: {
    auto *S = cast<DoStmt>(N);
    return A.create<DoStmt>(cloneS(S->Body), cloneE(S->Cond), S->loc());
  }
  case NodeKind::ForStmt: {
    auto *S = cast<ForStmt>(N);
    return A.create<ForStmt>(cloneE(S->Init), cloneE(S->Cond), cloneE(S->Step),
                             cloneS(S->Body), S->loc());
  }
  case NodeKind::SwitchStmt: {
    auto *S = cast<SwitchStmt>(N);
    return A.create<SwitchStmt>(cloneE(S->Cond), cloneS(S->Body), S->loc());
  }
  case NodeKind::CaseStmt: {
    auto *S = cast<CaseStmt>(N);
    return A.create<CaseStmt>(cloneE(S->Value), cloneS(S->Body), S->loc());
  }
  case NodeKind::DefaultStmt: {
    auto *S = cast<DefaultStmt>(N);
    return A.create<DefaultStmt>(cloneS(S->Body), S->loc());
  }
  case NodeKind::LabelStmt: {
    auto *S = cast<LabelStmt>(N);
    return A.create<LabelStmt>(cloneIdent(S->Label), cloneS(S->Body),
                               S->loc());
  }
  case NodeKind::GotoStmt: {
    auto *S = cast<GotoStmt>(N);
    return A.create<GotoStmt>(cloneIdent(S->Label), S->loc());
  }
  case NodeKind::BreakStmt:
    return A.create<BreakStmt>(N->loc());
  case NodeKind::ContinueStmt:
    return A.create<ContinueStmt>(N->loc());
  case NodeKind::ReturnStmt: {
    auto *S = cast<ReturnStmt>(N);
    return A.create<ReturnStmt>(cloneE(S->Value), S->loc());
  }
  case NodeKind::PlaceholderStmt: {
    auto *S = cast<PlaceholderStmt>(N);
    return A.create<PlaceholderStmt>(S->Ph, S->loc());
  }
  case NodeKind::MacroInvocationStmt: {
    auto *S = cast<MacroInvocationStmt>(N);
    return A.create<MacroInvocationStmt>(cloneInvocation(S->Inv), S->loc());
  }
  // Declarations --------------------------------------------------------------
  case NodeKind::DeclarationKind: {
    auto *D = cast<Declaration>(N);
    ArenaRef<InitDeclarator> Inits = cloneArray(
        D->Inits, [&](const InitDeclarator &I) { return cloneInitDeclarator(I); });
    return A.create<Declaration>(cloneSpecs(D->Specs), Inits, D->DeclListPh,
                                 D->loc());
  }
  case NodeKind::FunctionDefKind: {
    auto *D = cast<FunctionDef>(N);
    ArenaRef<Declaration *> KRDecls = cloneArray(
        D->KRDecls, [&](Declaration *K) { return cast<Declaration>(clone(K)); });
    return A.create<FunctionDef>(cloneSpecs(D->Specs),
                                 cloneDeclarator(D->Dtor), KRDecls,
                                 cast<CompoundStmt>(clone(D->Body)), D->loc());
  }
  case NodeKind::PlaceholderDecl: {
    auto *D = cast<PlaceholderDeclNode>(N);
    return A.create<PlaceholderDeclNode>(D->Ph, D->loc());
  }
  case NodeKind::MacroInvocationDecl: {
    auto *D = cast<MacroInvocationDecl>(N);
    return A.create<MacroInvocationDecl>(cloneInvocation(D->Inv), D->loc());
  }
  case NodeKind::MetaDeclKind: {
    auto *D = cast<MetaDecl>(N);
    return A.create<MetaDecl>(cast<Declaration>(clone(D->Inner)), D->loc());
  }
  case NodeKind::MacroDefKind: {
    auto *D = cast<MacroDef>(N);
    // Pattern and body are immutable once defined; share them.
    return A.create<MacroDef>(D->ReturnType, D->Name, D->Pat, D->Body,
                              D->loc());
  }
  case NodeKind::TranslationUnitKind: {
    auto *D = cast<TranslationUnit>(N);
    ArenaRef<Decl *> Items =
        cloneArray(D->Items, [&](Decl *I) { return cloneD(I); });
    return A.create<TranslationUnit>(Items, D->loc());
  }
  // Type specifiers -----------------------------------------------------------
  case NodeKind::BuiltinTypeSpecKind: {
    auto *T = cast<BuiltinTypeSpec>(N);
    return A.create<BuiltinTypeSpec>(T->Flags, T->loc());
  }
  case NodeKind::TagTypeSpecKind: {
    auto *T = cast<TagTypeSpec>(N);
    ArenaRef<Declaration *> Members = cloneArray(
        T->Members, [&](Declaration *M) { return cast<Declaration>(clone(M)); });
    ArenaRef<Enumerator> Enums = cloneArray(
        T->Enums, [&](const Enumerator &E) { return cloneEnumerator(E); });
    return A.create<TagTypeSpec>(T->Tag, cloneIdent(T->TagName), T->HasBody,
                                 Members, Enums, T->loc());
  }
  case NodeKind::TypedefNameSpecKind: {
    auto *T = cast<TypedefNameSpec>(N);
    return A.create<TypedefNameSpec>(T->Name, T->loc());
  }
  case NodeKind::MetaAstTypeSpecKind: {
    auto *T = cast<MetaAstTypeSpec>(N);
    return A.create<MetaAstTypeSpec>(T->Type, T->loc());
  }
  case NodeKind::PlaceholderTypeSpecKind: {
    auto *T = cast<PlaceholderTypeSpec>(N);
    return A.create<PlaceholderTypeSpec>(T->Ph, T->loc());
  }
  }
  assert(false && "unhandled node kind in clone");
  return nullptr;
}

} // namespace

Node *msq::cloneNode(Arena &A, const Node *N) { return Cloner(A).clone(N); }

Node *msq::cloneNodeRemapped(Arena &A, const Node *N, MacroDefRemapFn Remap,
                             void *Context) {
  return Cloner(A, Remap, Context).clone(N);
}

Expr *msq::cloneExpr(Arena &A, const Expr *E) {
  return E ? cast<Expr>(cloneNode(A, E)) : nullptr;
}

Stmt *msq::cloneStmt(Arena &A, const Stmt *S) {
  return S ? cast<Stmt>(cloneNode(A, S)) : nullptr;
}

Decl *msq::cloneDecl(Arena &A, const Decl *D) {
  return D ? cast<Decl>(cloneNode(A, D)) : nullptr;
}
