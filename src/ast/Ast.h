//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax trees for the object language (a large C subset) and the
/// macro language (C plus AST types, backquote templates, placeholders,
/// macro definitions, and anonymous functions). One node hierarchy serves
/// both levels, exactly as in the paper where "the macro language is C
/// extended with AST datatypes".
///
/// Nodes are arena-allocated, kind-tagged, and support LLVM-style
/// isa/cast/dyn_cast. Deep cloning (AstClone.cpp) and structural equality
/// (AstEqual.cpp) operate over the whole hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_AST_AST_H
#define MSQ_AST_AST_H

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"
#include "types/MetaType.h"

namespace msq {

class Expr;
class Stmt;
class Decl;
class TypeSpecNode;
struct Declarator;
struct MacroInvocation;
struct Pattern;
class CompoundStmt;

//===----------------------------------------------------------------------===//
// Node kinds
//===----------------------------------------------------------------------===//

enum class NodeKind : unsigned char {
  // Expressions (FirstExpr..LastExpr).
  IntLiteralExpr,
  FloatLiteralExpr,
  CharLiteralExpr,
  StringLiteralExpr,
  IdentExpr,
  ParenExpr,
  InitListExpr,
  UnaryExpr,
  BinaryExpr,
  ConditionalExpr,
  CastExpr,
  SizeofExpr,
  CallExpr,
  IndexExpr,
  MemberExpr,
  PlaceholderExpr,
  MacroInvocationExpr,
  BackquoteExpr,
  LambdaExpr,
  // Statements (FirstStmt..LastStmt).
  CompoundStmtKind,
  ExprStmt,
  NullStmt,
  IfStmt,
  WhileStmt,
  DoStmt,
  ForStmt,
  SwitchStmt,
  CaseStmt,
  DefaultStmt,
  LabelStmt,
  GotoStmt,
  BreakStmt,
  ContinueStmt,
  ReturnStmt,
  PlaceholderStmt,
  MacroInvocationStmt,
  // Declarations & top-level (FirstDecl..LastDecl).
  DeclarationKind,
  FunctionDefKind,
  PlaceholderDecl,
  MacroInvocationDecl,
  MetaDeclKind,
  MacroDefKind,
  TranslationUnitKind,
  // Type specifiers (FirstTypeSpec..LastTypeSpec).
  BuiltinTypeSpecKind,
  TagTypeSpecKind,
  TypedefNameSpecKind,
  MetaAstTypeSpecKind,
  PlaceholderTypeSpecKind,
};

//===----------------------------------------------------------------------===//
// Placeholder and Ident
//===----------------------------------------------------------------------===//

/// A template placeholder: `$name` or `$(expression)` (paper section 2,
/// "Placeholder"). Created only inside backquote templates; carries the
/// meta-expression to evaluate at instantiation time and the meta-type the
/// parser computed for it — the information that disambiguated the template
/// parse (paper Figures 2 and 3).
struct Placeholder {
  Expr *MetaExpr = nullptr;
  const MetaType *Type = nullptr;
  SourceLoc Loc;
};

/// An identifier slot that a placeholder may stand in for. Used everywhere
/// the grammar expects a raw name (declarator names, labels, member names,
/// struct/enum tags, enumerators).
struct Ident {
  Symbol Sym;
  const Placeholder *Ph = nullptr;
  SourceLoc Loc;

  Ident() = default;
  Ident(Symbol Sym, SourceLoc Loc) : Sym(Sym), Loc(Loc) {}
  Ident(const Placeholder *Ph, SourceLoc Loc) : Ph(Ph), Loc(Loc) {}
  bool isPlaceholder() const { return Ph != nullptr; }
  bool valid() const { return Sym.valid() || Ph != nullptr; }
};

//===----------------------------------------------------------------------===//
// Node base classes
//===----------------------------------------------------------------------===//

/// Base of every AST node.
class Node {
public:
  NodeKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Expansion-provenance frame id: which macro invocation produced this
  /// node (0 = written directly by the user). Frame ids index the
  /// ProvenanceTracker of the expansion that stamped them
  /// (analysis/Provenance.h); the expander stamps nodes as it walks
  /// macro-produced trees, and the printer reads the stamps to emit the
  /// output-line source map. Stored in what was alignment padding between
  /// Kind and Loc, so the field costs no memory.
  uint32_t prov() const { return Prov; }
  void setProv(uint32_t P) { Prov = P; }

protected:
  Node(NodeKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  NodeKind Kind;
  uint32_t Prov = 0;
  SourceLoc Loc;
};

class Expr : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= NodeKind::IntLiteralExpr &&
           N->kind() <= NodeKind::LambdaExpr;
  }

protected:
  using Node::Node;
};

class Stmt : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= NodeKind::CompoundStmtKind &&
           N->kind() <= NodeKind::MacroInvocationStmt;
  }

protected:
  using Node::Node;
};

class Decl : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= NodeKind::DeclarationKind &&
           N->kind() <= NodeKind::TranslationUnitKind;
  }

protected:
  using Node::Node;
};

class TypeSpecNode : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= NodeKind::BuiltinTypeSpecKind &&
           N->kind() <= NodeKind::PlaceholderTypeSpecKind;
  }

protected:
  using Node::Node;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(int64_t Value, SourceLoc Loc)
      : Expr(NodeKind::IntLiteralExpr, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::IntLiteralExpr;
  }
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(double Value, SourceLoc Loc)
      : Expr(NodeKind::FloatLiteralExpr, Loc), Value(Value) {}
  double Value;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::FloatLiteralExpr;
  }
};

class CharLiteralExpr : public Expr {
public:
  CharLiteralExpr(int64_t Value, SourceLoc Loc)
      : Expr(NodeKind::CharLiteralExpr, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::CharLiteralExpr;
  }
};

class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(Symbol Value, SourceLoc Loc)
      : Expr(NodeKind::StringLiteralExpr, Loc), Value(Value) {}
  Symbol Value;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::StringLiteralExpr;
  }
};

/// A name used as an expression. The Ident may be a placeholder (templates
/// like `$name = $init;`).
class IdentExpr : public Expr {
public:
  IdentExpr(Ident Name, SourceLoc Loc)
      : Expr(NodeKind::IdentExpr, Loc), Name(Name) {}
  Ident Name;
  static bool classof(const Node *N) { return N->kind() == NodeKind::IdentExpr; }
};

class ParenExpr : public Expr {
public:
  ParenExpr(Expr *Inner, SourceLoc Loc)
      : Expr(NodeKind::ParenExpr, Loc), Inner(Inner) {}
  Expr *Inner;
  static bool classof(const Node *N) { return N->kind() == NodeKind::ParenExpr; }
};

/// A brace initializer `{e1, e2, ...}` (only valid as an initializer;
/// elements may be nested initializer lists).
class InitListExpr : public Expr {
public:
  InitListExpr(ArenaRef<Expr *> Elems, SourceLoc Loc)
      : Expr(NodeKind::InitListExpr, Loc), Elems(Elems) {}
  ArenaRef<Expr *> Elems;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::InitListExpr;
  }
};

enum class UnaryOpKind : unsigned char {
  Plus,
  Minus,
  Not,
  BitNot,
  Deref,
  AddrOf,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

/// Spelling of a unary operator ("-", "&", "++"...).
const char *unaryOpSpelling(UnaryOpKind K);

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, Expr *Operand, SourceLoc Loc)
      : Expr(NodeKind::UnaryExpr, Loc), Op(Op), Operand(Operand) {}
  UnaryOpKind Op;
  Expr *Operand;
  bool isPostfix() const {
    return Op == UnaryOpKind::PostInc || Op == UnaryOpKind::PostDec;
  }
  static bool classof(const Node *N) { return N->kind() == NodeKind::UnaryExpr; }
};

enum class BinaryOpKind : unsigned char {
  Mul,
  Div,
  Rem,
  Add,
  Sub,
  Shl,
  Shr,
  LT,
  GT,
  LE,
  GE,
  EQ,
  NE,
  BitAnd,
  BitXor,
  BitOr,
  LAnd,
  LOr,
  Assign,
  MulAssign,
  DivAssign,
  RemAssign,
  AddAssign,
  SubAssign,
  ShlAssign,
  ShrAssign,
  AndAssign,
  XorAssign,
  OrAssign,
  Comma,
};

/// Spelling of a binary operator ("*", "<<="...).
const char *binaryOpSpelling(BinaryOpKind K);
/// True for '=' and the compound assignment operators.
bool isAssignmentOp(BinaryOpKind K);

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(NodeKind::BinaryExpr, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOpKind Op;
  Expr *LHS;
  Expr *RHS;
  static bool classof(const Node *N) { return N->kind() == NodeKind::BinaryExpr; }
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(Expr *Cond, Expr *Then, Expr *Else, SourceLoc Loc)
      : Expr(NodeKind::ConditionalExpr, Loc), Cond(Cond), Then(Then),
        Else(Else) {}
  Expr *Cond;
  Expr *Then;
  Expr *Else;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ConditionalExpr;
  }
};

/// Specifier + abstract declarator pieces of a type name, e.g. `(char *)`.
struct TypeName {
  TypeSpecNode *Spec = nullptr;
  unsigned PointerDepth = 0;
};

class CastExpr : public Expr {
public:
  CastExpr(TypeName Ty, Expr *Operand, SourceLoc Loc)
      : Expr(NodeKind::CastExpr, Loc), Ty(Ty), Operand(Operand) {}
  TypeName Ty;
  Expr *Operand;
  static bool classof(const Node *N) { return N->kind() == NodeKind::CastExpr; }
};

class SizeofExpr : public Expr {
public:
  SizeofExpr(Expr *Operand, SourceLoc Loc)
      : Expr(NodeKind::SizeofExpr, Loc), Operand(Operand) {}
  SizeofExpr(TypeName Ty, SourceLoc Loc)
      : Expr(NodeKind::SizeofExpr, Loc), Ty(Ty), IsType(true) {}
  Expr *Operand = nullptr;
  TypeName Ty;
  bool IsType = false;
  static bool classof(const Node *N) { return N->kind() == NodeKind::SizeofExpr; }
};

class CallExpr : public Expr {
public:
  CallExpr(Expr *Callee, ArenaRef<Expr *> Args, SourceLoc Loc)
      : Expr(NodeKind::CallExpr, Loc), Callee(Callee), Args(Args) {}
  Expr *Callee;
  /// Arguments; a PlaceholderExpr with a list meta-type splices.
  ArenaRef<Expr *> Args;
  static bool classof(const Node *N) { return N->kind() == NodeKind::CallExpr; }
};

class IndexExpr : public Expr {
public:
  IndexExpr(Expr *Base, Expr *Index, SourceLoc Loc)
      : Expr(NodeKind::IndexExpr, Loc), Base(Base), Index(Index) {}
  Expr *Base;
  Expr *Index;
  static bool classof(const Node *N) { return N->kind() == NodeKind::IndexExpr; }
};

class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, Ident Member, bool IsArrow, SourceLoc Loc)
      : Expr(NodeKind::MemberExpr, Loc), Base(Base), Member(Member),
        IsArrow(IsArrow) {}
  Expr *Base;
  Ident Member;
  bool IsArrow;
  static bool classof(const Node *N) { return N->kind() == NodeKind::MemberExpr; }
};

/// `$x` / `$(e)` in expression position inside a template.
class PlaceholderExpr : public Expr {
public:
  PlaceholderExpr(const Placeholder *Ph, SourceLoc Loc)
      : Expr(NodeKind::PlaceholderExpr, Loc), Ph(Ph) {}
  const Placeholder *Ph;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::PlaceholderExpr;
  }
};

/// A macro invocation where an expression is expected.
class MacroInvocationExpr : public Expr {
public:
  MacroInvocationExpr(MacroInvocation *Inv, SourceLoc Loc)
      : Expr(NodeKind::MacroInvocationExpr, Loc), Inv(Inv) {}
  MacroInvocation *Inv;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MacroInvocationExpr;
  }
};

/// Which backquote shorthand introduced a template.
enum class BackquoteForm : unsigned char {
  Exp,     ///< `( expression )
  Stmt,    ///< `{ statement }
  Decl,    ///< `[ top-level-declaration ]
  Pattern, ///< `{| pspec :: ... |}
};

struct MatchValue;

/// A backquote code template (meta-level expression). For the three
/// shorthand forms Template is the parsed fragment; for the general
/// `{| pspec :: ... |} form TemplateMV holds the pspec-shaped constituents.
/// Type is the meta-type the template produces.
class BackquoteExpr : public Expr {
public:
  BackquoteExpr(BackquoteForm Form, Node *Template, const MetaType *Type,
                SourceLoc Loc)
      : Expr(NodeKind::BackquoteExpr, Loc), Form(Form), Template(Template),
        Type(Type) {}
  BackquoteForm Form;
  Node *Template;
  MatchValue *TemplateMV = nullptr;
  const MetaType *Type;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::BackquoteExpr;
  }
};

/// One parameter of a meta-level anonymous function: `@id x`, `int n`, ...
struct LambdaParam {
  const MetaType *Type = nullptr;
  Symbol Name;
  SourceLoc Loc;
};

/// The paper's experimental anonymous function: returns the value of its
/// body expression, may only be passed downward.
class LambdaExpr : public Expr {
public:
  LambdaExpr(ArenaRef<LambdaParam> Params, Expr *Body, SourceLoc Loc)
      : Expr(NodeKind::LambdaExpr, Loc), Params(Params), Body(Body) {}
  ArenaRef<LambdaParam> Params;
  Expr *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::LambdaExpr; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// `{ decls... stmts... }` — C89-style compound statement whose declaration
/// and statement lists are separate, exactly the structure the paper's
/// Figure 3 disambiguates.
class CompoundStmt : public Stmt {
public:
  CompoundStmt(ArenaRef<Decl *> Decls, ArenaRef<Stmt *> Stmts, SourceLoc Loc)
      : Stmt(NodeKind::CompoundStmtKind, Loc), Decls(Decls), Stmts(Stmts) {}
  ArenaRef<Decl *> Decls;
  ArenaRef<Stmt *> Stmts;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::CompoundStmtKind;
  }
};

class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(NodeKind::ExprStmt, Loc), E(E) {}
  Expr *E;
  static bool classof(const Node *N) { return N->kind() == NodeKind::ExprStmt; }
};

class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLoc Loc) : Stmt(NodeKind::NullStmt, Loc) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::NullStmt; }
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(NodeKind::IfStmt, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; // may be null
  static bool classof(const Node *N) { return N->kind() == NodeKind::IfStmt; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(NodeKind::WhileStmt, Loc), Cond(Cond), Body(Body) {}
  Expr *Cond;
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::WhileStmt; }
};

class DoStmt : public Stmt {
public:
  DoStmt(Stmt *Body, Expr *Cond, SourceLoc Loc)
      : Stmt(NodeKind::DoStmt, Loc), Body(Body), Cond(Cond) {}
  Stmt *Body;
  Expr *Cond;
  static bool classof(const Node *N) { return N->kind() == NodeKind::DoStmt; }
};

class ForStmt : public Stmt {
public:
  ForStmt(Expr *Init, Expr *Cond, Expr *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(NodeKind::ForStmt, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
  Expr *Init; // any may be null
  Expr *Cond;
  Expr *Step;
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::ForStmt; }
};

class SwitchStmt : public Stmt {
public:
  SwitchStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(NodeKind::SwitchStmt, Loc), Cond(Cond), Body(Body) {}
  Expr *Cond;
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::SwitchStmt; }
};

class CaseStmt : public Stmt {
public:
  CaseStmt(Expr *Value, Stmt *Body, SourceLoc Loc)
      : Stmt(NodeKind::CaseStmt, Loc), Value(Value), Body(Body) {}
  Expr *Value;
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::CaseStmt; }
};

class DefaultStmt : public Stmt {
public:
  DefaultStmt(Stmt *Body, SourceLoc Loc)
      : Stmt(NodeKind::DefaultStmt, Loc), Body(Body) {}
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::DefaultStmt; }
};

class LabelStmt : public Stmt {
public:
  LabelStmt(Ident Label, Stmt *Body, SourceLoc Loc)
      : Stmt(NodeKind::LabelStmt, Loc), Label(Label), Body(Body) {}
  Ident Label;
  Stmt *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::LabelStmt; }
};

class GotoStmt : public Stmt {
public:
  GotoStmt(Ident Label, SourceLoc Loc)
      : Stmt(NodeKind::GotoStmt, Loc), Label(Label) {}
  Ident Label;
  static bool classof(const Node *N) { return N->kind() == NodeKind::GotoStmt; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(NodeKind::BreakStmt, Loc) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::BreakStmt; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(NodeKind::ContinueStmt, Loc) {}
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ContinueStmt;
  }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(NodeKind::ReturnStmt, Loc), Value(Value) {}
  Expr *Value; // may be null
  static bool classof(const Node *N) { return N->kind() == NodeKind::ReturnStmt; }
};

/// `$x` in statement position inside a template. A list-typed placeholder
/// splices its elements into the surrounding statement list.
class PlaceholderStmt : public Stmt {
public:
  PlaceholderStmt(const Placeholder *Ph, SourceLoc Loc)
      : Stmt(NodeKind::PlaceholderStmt, Loc), Ph(Ph) {}
  const Placeholder *Ph;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::PlaceholderStmt;
  }
};

class MacroInvocationStmt : public Stmt {
public:
  MacroInvocationStmt(MacroInvocation *Inv, SourceLoc Loc)
      : Stmt(NodeKind::MacroInvocationStmt, Loc), Inv(Inv) {}
  MacroInvocation *Inv;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MacroInvocationStmt;
  }
};

//===----------------------------------------------------------------------===//
// Type specifiers, declarators, declarations
//===----------------------------------------------------------------------===//

/// Flags combined in a base type specifier ("unsigned long int").
enum BuiltinTypeFlags : unsigned {
  BTF_Void = 1u << 0,
  BTF_Char = 1u << 1,
  BTF_Short = 1u << 2,
  BTF_Int = 1u << 3,
  BTF_Long = 1u << 4,
  BTF_LongLong = 1u << 5,
  BTF_Float = 1u << 6,
  BTF_Double = 1u << 7,
  BTF_Signed = 1u << 8,
  BTF_Unsigned = 1u << 9,
};

class BuiltinTypeSpec : public TypeSpecNode {
public:
  BuiltinTypeSpec(unsigned Flags, SourceLoc Loc)
      : TypeSpecNode(NodeKind::BuiltinTypeSpecKind, Loc), Flags(Flags) {}
  unsigned Flags;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::BuiltinTypeSpecKind;
  }
};

enum class TagKind : unsigned char { Struct, Union, Enum };

class Declaration;

/// One enumerator in an enum body; `ListPh` set means the entry is a
/// placeholder splicing a list of identifiers/enumerators (the paper's
/// `enum color $ids;` example).
struct Enumerator {
  Ident Name;
  Expr *Value = nullptr;
  const Placeholder *ListPh = nullptr;
  SourceLoc Loc;
};

class TagTypeSpec : public TypeSpecNode {
public:
  TagTypeSpec(TagKind Tag, Ident TagName, bool HasBody,
              ArenaRef<Declaration *> Members, ArenaRef<Enumerator> Enums,
              SourceLoc Loc)
      : TypeSpecNode(NodeKind::TagTypeSpecKind, Loc), Tag(Tag),
        TagName(TagName), HasBody(HasBody), Members(Members), Enums(Enums) {}
  TagKind Tag;
  Ident TagName; // may be invalid for anonymous tags
  bool HasBody;
  ArenaRef<Declaration *> Members; // struct/union fields
  ArenaRef<Enumerator> Enums;      // enum constants
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::TagTypeSpecKind;
  }
};

class TypedefNameSpec : public TypeSpecNode {
public:
  TypedefNameSpec(Symbol Name, SourceLoc Loc)
      : TypeSpecNode(NodeKind::TypedefNameSpecKind, Loc), Name(Name) {}
  Symbol Name;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::TypedefNameSpecKind;
  }
};

/// `@stmt`, `@id[]`, ... — an AST type in a meta-declaration.
class MetaAstTypeSpec : public TypeSpecNode {
public:
  MetaAstTypeSpec(const MetaType *Type, SourceLoc Loc)
      : TypeSpecNode(NodeKind::MetaAstTypeSpecKind, Loc), Type(Type) {}
  const MetaType *Type;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MetaAstTypeSpecKind;
  }
};

/// `$t` in type-specifier position inside a template (`$type $newname = ...`
/// in the dynamic_bind example).
class PlaceholderTypeSpec : public TypeSpecNode {
public:
  PlaceholderTypeSpec(const Placeholder *Ph, SourceLoc Loc)
      : TypeSpecNode(NodeKind::PlaceholderTypeSpecKind, Loc), Ph(Ph) {}
  const Placeholder *Ph;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::PlaceholderTypeSpecKind;
  }
};

enum class StorageClass : unsigned char {
  None,
  Auto,
  Register,
  Static,
  Extern,
  Typedef,
  Metadcl, ///< meta-level global (paper's `metadcl`)
};

/// The specifier part of a declaration.
struct DeclSpecs {
  StorageClass Storage = StorageClass::None;
  bool Const = false;
  bool Volatile = false;
  TypeSpecNode *Type = nullptr; // null means implicit int (K&R)
  SourceLoc Loc;
};

struct ParamDecl;

/// A declarator suffix: array `[size]` or function `(params)`.
struct DeclSuffix {
  enum SuffixKind : unsigned char { Array, Function } K = Array;
  Expr *ArraySize = nullptr;             // Array; may be null for []
  ArenaRef<ParamDecl *> Params;          // Function (prototype style)
  ArenaRef<Ident> KRNames;               // Function (K&R identifier list)
  bool Variadic = false;                 // Function: trailing ", ..."
};

/// A (possibly placeholder) declarator: pointers, a name or a
/// parenthesized inner declarator (function pointers: `(*f)(int)`), and
/// suffixes.
struct Declarator {
  const Placeholder *Ph = nullptr; // whole-declarator placeholder
  Ident Name;
  Declarator *Inner = nullptr; // `( declarator )`; exclusive with Name
  unsigned PointerDepth = 0;
  ArenaRef<DeclSuffix> Suffixes;
  SourceLoc Loc;

  bool isPlaceholder() const { return Ph != nullptr; }
  bool isFunction() const {
    return !Suffixes.empty() && Suffixes[0].K == DeclSuffix::Function;
  }
  /// The declared name: the innermost declarator's identifier slot.
  const Ident &name() const { return Inner ? Inner->name() : Name; }
};

/// One prototype-style parameter.
struct ParamDecl {
  DeclSpecs Specs;
  Declarator *Dtor = nullptr; // may be null for abstract declarators
  SourceLoc Loc;
};

/// `declarator = init`; the whole unit may be a placeholder (Figure 2's
/// `init-declarator` row).
struct InitDeclarator {
  const Placeholder *Ph = nullptr;
  Declarator *Dtor = nullptr;
  Expr *Init = nullptr;
  SourceLoc Loc;
};

/// An ordinary declaration `specs init-declarators ;`. When DeclListPh is
/// non-null the entire init-declarator list is a placeholder (Figure 2's
/// `init-declarator[]` row).
class Declaration : public Decl {
public:
  Declaration(DeclSpecs Specs, ArenaRef<InitDeclarator> Inits,
              const Placeholder *DeclListPh, SourceLoc Loc)
      : Decl(NodeKind::DeclarationKind, Loc), Specs(Specs), Inits(Inits),
        DeclListPh(DeclListPh) {}
  DeclSpecs Specs;
  ArenaRef<InitDeclarator> Inits;
  const Placeholder *DeclListPh;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::DeclarationKind;
  }
};

/// A function definition, prototype- or K&R-style.
class FunctionDef : public Decl {
public:
  FunctionDef(DeclSpecs Specs, Declarator *Dtor,
              ArenaRef<Declaration *> KRDecls, CompoundStmt *Body,
              SourceLoc Loc)
      : Decl(NodeKind::FunctionDefKind, Loc), Specs(Specs), Dtor(Dtor),
        KRDecls(KRDecls), Body(Body) {}
  DeclSpecs Specs;
  Declarator *Dtor;
  ArenaRef<Declaration *> KRDecls; // K&R parameter declarations
  CompoundStmt *Body;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::FunctionDefKind;
  }
};

/// `$x` in declaration position inside a template; list-typed placeholders
/// splice into the surrounding declaration list.
class PlaceholderDeclNode : public Decl {
public:
  PlaceholderDeclNode(const Placeholder *Ph, SourceLoc Loc)
      : Decl(NodeKind::PlaceholderDecl, Loc), Ph(Ph) {}
  const Placeholder *Ph;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::PlaceholderDecl;
  }
};

class MacroInvocationDecl : public Decl {
public:
  MacroInvocationDecl(MacroInvocation *Inv, SourceLoc Loc)
      : Decl(NodeKind::MacroInvocationDecl, Loc), Inv(Inv) {}
  MacroInvocation *Inv;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MacroInvocationDecl;
  }
};

/// `metadcl declaration` — a meta-level global.
class MetaDecl : public Decl {
public:
  MetaDecl(Declaration *Inner, SourceLoc Loc)
      : Decl(NodeKind::MetaDeclKind, Loc), Inner(Inner) {}
  Declaration *Inner;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MetaDeclKind;
  }
};

/// `syntax <ast-type> <name> {| pattern |} body` — a macro definition.
class MacroDef : public Decl {
public:
  MacroDef(const MetaType *ReturnType, Symbol Name, Pattern *Pat,
           CompoundStmt *Body, SourceLoc Loc)
      : Decl(NodeKind::MacroDefKind, Loc), ReturnType(ReturnType), Name(Name),
        Pat(Pat), Body(Body) {}
  const MetaType *ReturnType;
  Symbol Name;
  Pattern *Pat;
  CompoundStmt *Body;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MacroDefKind;
  }
};

class TranslationUnit : public Decl {
public:
  TranslationUnit(ArenaRef<Decl *> Items, SourceLoc Loc)
      : Decl(NodeKind::TranslationUnitKind, Loc), Items(Items) {}
  ArenaRef<Decl *> Items;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::TranslationUnitKind;
  }
};

//===----------------------------------------------------------------------===//
// Matched constituents (macro actual parameters / general backquote values)
//===----------------------------------------------------------------------===//

/// A parsed constituent bound by a macro pattern (or produced by the
/// general backquote form): a single AST, an identifier, a declarator-level
/// fragment, a list, a tuple, or an absent optional. Field names of tuples
/// come from the binder names inside the tuple sub-pattern.
struct MatchValue {
  enum VKind : unsigned char {
    Ast,
    IdentV,
    DeclaratorV,
    InitDeclV,
    EnumeratorV,
    List,
    Tuple,
    Absent,
  } K = Absent;
  Node *AstNode = nullptr;               // Ast
  Ident Id;                              // IdentV (identifier constituents)
  Declarator *Dtor = nullptr;            // DeclaratorV
  InitDeclarator *InitDtor = nullptr;    // InitDeclV
  Enumerator *Enum = nullptr;            // EnumeratorV
  ArenaRef<MatchValue *> Elems;          // List / Tuple
  ArenaRef<Symbol> FieldNames;           // Tuple
  const MetaType *Type = nullptr;        // static type of this constituent
};

/// One named actual parameter of a macro invocation.
struct MacroArg {
  Symbol Name;
  MatchValue *Value = nullptr;
};

/// A parsed macro invocation awaiting expansion.
struct MacroInvocation {
  const MacroDef *Def = nullptr;
  ArenaRef<MacroArg> Args;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Whole-tree operations
//===----------------------------------------------------------------------===//

/// Deep-clones \p N into \p A. Placeholder payloads are shared (they are
/// immutable); all structural nodes are copied.
Node *cloneNode(Arena &A, const Node *N);

/// Deep clone with macro-definition remapping: every MacroInvocation's
/// Def pointer is rewritten through \p Remap. The incremental engine uses
/// this to re-target a cached parse tree at a rebuilt macro registry —
/// sound only when the new definition's pattern equals the one the
/// invocation was parsed under (the caller checks signature fingerprints
/// first). \p Remap returning null keeps the original pointer.
using MacroDefRemapFn =
    const MacroDef *(*)(const MacroDef *, void *Context);
Node *cloneNodeRemapped(Arena &A, const Node *N, MacroDefRemapFn Remap,
                        void *Context);

/// Convenience typed clones.
Expr *cloneExpr(Arena &A, const Expr *E);
Stmt *cloneStmt(Arena &A, const Stmt *S);
Decl *cloneDecl(Arena &A, const Decl *D);

/// Structural equality ignoring source locations. Placeholders compare by
/// payload identity.
bool structurallyEqual(const Node *A, const Node *B);

/// Counts nodes in the tree (diagnostics & benchmarks).
size_t countNodes(const Node *N);

} // namespace msq

#endif // MSQ_AST_AST_H
