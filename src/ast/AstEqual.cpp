//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural equality (ignoring source locations) and node counting.
/// Equality is the backbone of the parse→print→parse fixpoint property
/// tests.
///
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

using namespace msq;

namespace {

bool eqNode(const Node *A, const Node *B);

bool eqExpr(const Expr *A, const Expr *B) {
  if (!A || !B)
    return A == B;
  return eqNode(A, B);
}

/// Symbols are interned per compilation, so structural equality compares
/// spellings (two trees from different contexts may be compared).
bool eqSym(Symbol A, Symbol B) {
  if (A == B)
    return true;
  return A.valid() && B.valid() && A.str() == B.str();
}

bool eqIdent(const Ident &A, const Ident &B) {
  return eqSym(A.Sym, B.Sym) && A.Ph == B.Ph;
}

bool eqTypeName(const TypeName &A, const TypeName &B) {
  return A.PointerDepth == B.PointerDepth &&
         (A.Spec && B.Spec ? eqNode(A.Spec, B.Spec) : A.Spec == B.Spec);
}

bool eqSpecs(const DeclSpecs &A, const DeclSpecs &B) {
  if (A.Storage != B.Storage || A.Const != B.Const || A.Volatile != B.Volatile)
    return false;
  if (!A.Type || !B.Type)
    return A.Type == B.Type;
  return eqNode(A.Type, B.Type);
}

bool eqDeclarator(const Declarator *A, const Declarator *B);

bool eqParam(const ParamDecl *A, const ParamDecl *B) {
  if (!A || !B)
    return A == B;
  return eqSpecs(A->Specs, B->Specs) && eqDeclarator(A->Dtor, B->Dtor);
}

bool eqSuffix(const DeclSuffix &A, const DeclSuffix &B) {
  if (A.K != B.K || A.Variadic != B.Variadic)
    return false;
  if (A.K == DeclSuffix::Array)
    return eqExpr(A.ArraySize, B.ArraySize);
  if (A.Params.size() != B.Params.size() ||
      A.KRNames.size() != B.KRNames.size())
    return false;
  for (size_t I = 0; I != A.Params.size(); ++I)
    if (!eqParam(A.Params[I], B.Params[I]))
      return false;
  for (size_t I = 0; I != A.KRNames.size(); ++I)
    if (!eqIdent(A.KRNames[I], B.KRNames[I]))
      return false;
  return true;
}

bool eqDeclarator(const Declarator *A, const Declarator *B) {
  if (!A || !B)
    return A == B;
  if (A->Ph != B->Ph || !eqIdent(A->Name, B->Name) ||
      A->PointerDepth != B->PointerDepth ||
      A->Suffixes.size() != B->Suffixes.size())
    return false;
  if (!!A->Inner != !!B->Inner ||
      (A->Inner && !eqDeclarator(A->Inner, B->Inner)))
    return false;
  for (size_t I = 0; I != A->Suffixes.size(); ++I)
    if (!eqSuffix(A->Suffixes[I], B->Suffixes[I]))
      return false;
  return true;
}

bool eqInitDeclarator(const InitDeclarator &A, const InitDeclarator &B) {
  return A.Ph == B.Ph && eqDeclarator(A.Dtor, B.Dtor) && eqExpr(A.Init, B.Init);
}

bool eqEnumerator(const Enumerator &A, const Enumerator &B) {
  return eqIdent(A.Name, B.Name) && eqExpr(A.Value, B.Value) &&
         A.ListPh == B.ListPh;
}

bool eqMatchValue(const MatchValue *A, const MatchValue *B) {
  if (!A || !B)
    return A == B;
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case MatchValue::Ast:
    return eqNode(A->AstNode, B->AstNode);
  case MatchValue::IdentV:
    return eqIdent(A->Id, B->Id);
  case MatchValue::DeclaratorV:
    return eqDeclarator(A->Dtor, B->Dtor);
  case MatchValue::InitDeclV:
    return A->InitDtor && B->InitDtor &&
           eqInitDeclarator(*A->InitDtor, *B->InitDtor);
  case MatchValue::EnumeratorV:
    return A->Enum && B->Enum && eqEnumerator(*A->Enum, *B->Enum);
  case MatchValue::Absent:
    return true;
  case MatchValue::List:
  case MatchValue::Tuple: {
    if (A->Elems.size() != B->Elems.size())
      return false;
    for (size_t I = 0; I != A->Elems.size(); ++I)
      if (!eqMatchValue(A->Elems[I], B->Elems[I]))
        return false;
    return true;
  }
  }
  return false;
}

bool eqInvocation(const MacroInvocation *A, const MacroInvocation *B) {
  if (A->Def != B->Def || A->Args.size() != B->Args.size())
    return false;
  for (size_t I = 0; I != A->Args.size(); ++I) {
    if (!eqSym(A->Args[I].Name, B->Args[I].Name) ||
        !eqMatchValue(A->Args[I].Value, B->Args[I].Value))
      return false;
  }
  return true;
}

bool eqNode(const Node *A, const Node *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::IntLiteralExpr:
    return cast<IntLiteralExpr>(A)->Value == cast<IntLiteralExpr>(B)->Value;
  case NodeKind::FloatLiteralExpr:
    return cast<FloatLiteralExpr>(A)->Value == cast<FloatLiteralExpr>(B)->Value;
  case NodeKind::CharLiteralExpr:
    return cast<CharLiteralExpr>(A)->Value == cast<CharLiteralExpr>(B)->Value;
  case NodeKind::StringLiteralExpr:
    return eqSym(cast<StringLiteralExpr>(A)->Value,
                 cast<StringLiteralExpr>(B)->Value);
  case NodeKind::IdentExpr:
    return eqIdent(cast<IdentExpr>(A)->Name, cast<IdentExpr>(B)->Name);
  case NodeKind::ParenExpr:
    return eqExpr(cast<ParenExpr>(A)->Inner, cast<ParenExpr>(B)->Inner);
  case NodeKind::InitListExpr: {
    auto *X = cast<InitListExpr>(A), *Y = cast<InitListExpr>(B);
    if (X->Elems.size() != Y->Elems.size())
      return false;
    for (size_t I = 0; I != X->Elems.size(); ++I)
      if (!eqExpr(X->Elems[I], Y->Elems[I]))
        return false;
    return true;
  }
  case NodeKind::UnaryExpr: {
    auto *X = cast<UnaryExpr>(A), *Y = cast<UnaryExpr>(B);
    return X->Op == Y->Op && eqExpr(X->Operand, Y->Operand);
  }
  case NodeKind::BinaryExpr: {
    auto *X = cast<BinaryExpr>(A), *Y = cast<BinaryExpr>(B);
    return X->Op == Y->Op && eqExpr(X->LHS, Y->LHS) && eqExpr(X->RHS, Y->RHS);
  }
  case NodeKind::ConditionalExpr: {
    auto *X = cast<ConditionalExpr>(A), *Y = cast<ConditionalExpr>(B);
    return eqExpr(X->Cond, Y->Cond) && eqExpr(X->Then, Y->Then) &&
           eqExpr(X->Else, Y->Else);
  }
  case NodeKind::CastExpr: {
    auto *X = cast<CastExpr>(A), *Y = cast<CastExpr>(B);
    return eqTypeName(X->Ty, Y->Ty) && eqExpr(X->Operand, Y->Operand);
  }
  case NodeKind::SizeofExpr: {
    auto *X = cast<SizeofExpr>(A), *Y = cast<SizeofExpr>(B);
    if (X->IsType != Y->IsType)
      return false;
    return X->IsType ? eqTypeName(X->Ty, Y->Ty) : eqExpr(X->Operand, Y->Operand);
  }
  case NodeKind::CallExpr: {
    auto *X = cast<CallExpr>(A), *Y = cast<CallExpr>(B);
    if (!eqExpr(X->Callee, Y->Callee) || X->Args.size() != Y->Args.size())
      return false;
    for (size_t I = 0; I != X->Args.size(); ++I)
      if (!eqExpr(X->Args[I], Y->Args[I]))
        return false;
    return true;
  }
  case NodeKind::IndexExpr: {
    auto *X = cast<IndexExpr>(A), *Y = cast<IndexExpr>(B);
    return eqExpr(X->Base, Y->Base) && eqExpr(X->Index, Y->Index);
  }
  case NodeKind::MemberExpr: {
    auto *X = cast<MemberExpr>(A), *Y = cast<MemberExpr>(B);
    return X->IsArrow == Y->IsArrow && eqExpr(X->Base, Y->Base) &&
           eqIdent(X->Member, Y->Member);
  }
  case NodeKind::PlaceholderExpr:
    return cast<PlaceholderExpr>(A)->Ph == cast<PlaceholderExpr>(B)->Ph;
  case NodeKind::MacroInvocationExpr:
    return eqInvocation(cast<MacroInvocationExpr>(A)->Inv,
                        cast<MacroInvocationExpr>(B)->Inv);
  case NodeKind::BackquoteExpr: {
    auto *X = cast<BackquoteExpr>(A), *Y = cast<BackquoteExpr>(B);
    return X->Form == Y->Form && MetaType::equals(X->Type, Y->Type) &&
           eqNode(X->Template, Y->Template) &&
           eqMatchValue(X->TemplateMV, Y->TemplateMV);
  }
  case NodeKind::LambdaExpr: {
    auto *X = cast<LambdaExpr>(A), *Y = cast<LambdaExpr>(B);
    if (X->Params.size() != Y->Params.size())
      return false;
    for (size_t I = 0; I != X->Params.size(); ++I) {
      if (X->Params[I].Name != Y->Params[I].Name ||
          !MetaType::equals(X->Params[I].Type, Y->Params[I].Type))
        return false;
    }
    return eqExpr(X->Body, Y->Body);
  }
  case NodeKind::CompoundStmtKind: {
    auto *X = cast<CompoundStmt>(A), *Y = cast<CompoundStmt>(B);
    if (X->Decls.size() != Y->Decls.size() ||
        X->Stmts.size() != Y->Stmts.size())
      return false;
    for (size_t I = 0; I != X->Decls.size(); ++I)
      if (!eqNode(X->Decls[I], Y->Decls[I]))
        return false;
    for (size_t I = 0; I != X->Stmts.size(); ++I)
      if (!eqNode(X->Stmts[I], Y->Stmts[I]))
        return false;
    return true;
  }
  case NodeKind::ExprStmt:
    return eqExpr(cast<ExprStmt>(A)->E, cast<ExprStmt>(B)->E);
  case NodeKind::NullStmt:
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
    return true;
  case NodeKind::IfStmt: {
    auto *X = cast<IfStmt>(A), *Y = cast<IfStmt>(B);
    return eqExpr(X->Cond, Y->Cond) && eqNode(X->Then, Y->Then) &&
           (X->Else && Y->Else ? eqNode(X->Else, Y->Else) : X->Else == Y->Else);
  }
  case NodeKind::WhileStmt: {
    auto *X = cast<WhileStmt>(A), *Y = cast<WhileStmt>(B);
    return eqExpr(X->Cond, Y->Cond) && eqNode(X->Body, Y->Body);
  }
  case NodeKind::DoStmt: {
    auto *X = cast<DoStmt>(A), *Y = cast<DoStmt>(B);
    return eqNode(X->Body, Y->Body) && eqExpr(X->Cond, Y->Cond);
  }
  case NodeKind::ForStmt: {
    auto *X = cast<ForStmt>(A), *Y = cast<ForStmt>(B);
    return eqExpr(X->Init, Y->Init) && eqExpr(X->Cond, Y->Cond) &&
           eqExpr(X->Step, Y->Step) && eqNode(X->Body, Y->Body);
  }
  case NodeKind::SwitchStmt: {
    auto *X = cast<SwitchStmt>(A), *Y = cast<SwitchStmt>(B);
    return eqExpr(X->Cond, Y->Cond) && eqNode(X->Body, Y->Body);
  }
  case NodeKind::CaseStmt: {
    auto *X = cast<CaseStmt>(A), *Y = cast<CaseStmt>(B);
    return eqExpr(X->Value, Y->Value) && eqNode(X->Body, Y->Body);
  }
  case NodeKind::DefaultStmt:
    return eqNode(cast<DefaultStmt>(A)->Body, cast<DefaultStmt>(B)->Body);
  case NodeKind::LabelStmt: {
    auto *X = cast<LabelStmt>(A), *Y = cast<LabelStmt>(B);
    return eqIdent(X->Label, Y->Label) && eqNode(X->Body, Y->Body);
  }
  case NodeKind::GotoStmt:
    return eqIdent(cast<GotoStmt>(A)->Label, cast<GotoStmt>(B)->Label);
  case NodeKind::ReturnStmt:
    return eqExpr(cast<ReturnStmt>(A)->Value, cast<ReturnStmt>(B)->Value);
  case NodeKind::PlaceholderStmt:
    return cast<PlaceholderStmt>(A)->Ph == cast<PlaceholderStmt>(B)->Ph;
  case NodeKind::MacroInvocationStmt:
    return eqInvocation(cast<MacroInvocationStmt>(A)->Inv,
                        cast<MacroInvocationStmt>(B)->Inv);
  case NodeKind::DeclarationKind: {
    auto *X = cast<Declaration>(A), *Y = cast<Declaration>(B);
    if (X->DeclListPh != Y->DeclListPh || !eqSpecs(X->Specs, Y->Specs) ||
        X->Inits.size() != Y->Inits.size())
      return false;
    for (size_t I = 0; I != X->Inits.size(); ++I)
      if (!eqInitDeclarator(X->Inits[I], Y->Inits[I]))
        return false;
    return true;
  }
  case NodeKind::FunctionDefKind: {
    auto *X = cast<FunctionDef>(A), *Y = cast<FunctionDef>(B);
    if (!eqSpecs(X->Specs, Y->Specs) || !eqDeclarator(X->Dtor, Y->Dtor) ||
        X->KRDecls.size() != Y->KRDecls.size())
      return false;
    for (size_t I = 0; I != X->KRDecls.size(); ++I)
      if (!eqNode(X->KRDecls[I], Y->KRDecls[I]))
        return false;
    return eqNode(X->Body, Y->Body);
  }
  case NodeKind::PlaceholderDecl:
    return cast<PlaceholderDeclNode>(A)->Ph == cast<PlaceholderDeclNode>(B)->Ph;
  case NodeKind::MacroInvocationDecl:
    return eqInvocation(cast<MacroInvocationDecl>(A)->Inv,
                        cast<MacroInvocationDecl>(B)->Inv);
  case NodeKind::MetaDeclKind:
    return eqNode(cast<MetaDecl>(A)->Inner, cast<MetaDecl>(B)->Inner);
  case NodeKind::MacroDefKind: {
    auto *X = cast<MacroDef>(A), *Y = cast<MacroDef>(B);
    return eqSym(X->Name, Y->Name) &&
           MetaType::equals(X->ReturnType, Y->ReturnType) &&
           X->Pat == Y->Pat && eqNode(X->Body, Y->Body);
  }
  case NodeKind::TranslationUnitKind: {
    auto *X = cast<TranslationUnit>(A), *Y = cast<TranslationUnit>(B);
    if (X->Items.size() != Y->Items.size())
      return false;
    for (size_t I = 0; I != X->Items.size(); ++I)
      if (!eqNode(X->Items[I], Y->Items[I]))
        return false;
    return true;
  }
  case NodeKind::BuiltinTypeSpecKind:
    return cast<BuiltinTypeSpec>(A)->Flags == cast<BuiltinTypeSpec>(B)->Flags;
  case NodeKind::TagTypeSpecKind: {
    auto *X = cast<TagTypeSpec>(A), *Y = cast<TagTypeSpec>(B);
    if (X->Tag != Y->Tag || !eqIdent(X->TagName, Y->TagName) ||
        X->HasBody != Y->HasBody || X->Members.size() != Y->Members.size() ||
        X->Enums.size() != Y->Enums.size())
      return false;
    for (size_t I = 0; I != X->Members.size(); ++I)
      if (!eqNode(X->Members[I], Y->Members[I]))
        return false;
    for (size_t I = 0; I != X->Enums.size(); ++I)
      if (!eqEnumerator(X->Enums[I], Y->Enums[I]))
        return false;
    return true;
  }
  case NodeKind::TypedefNameSpecKind:
    return eqSym(cast<TypedefNameSpec>(A)->Name,
                 cast<TypedefNameSpec>(B)->Name);
  case NodeKind::MetaAstTypeSpecKind:
    return MetaType::equals(cast<MetaAstTypeSpec>(A)->Type,
                            cast<MetaAstTypeSpec>(B)->Type);
  case NodeKind::PlaceholderTypeSpecKind:
    return cast<PlaceholderTypeSpec>(A)->Ph == cast<PlaceholderTypeSpec>(B)->Ph;
  }
  return false;
}

size_t countIn(const Node *N);

size_t countDeclarator(const Declarator *D) {
  if (!D)
    return 0;
  size_t C = 1;
  for (const DeclSuffix &S : D->Suffixes) {
    C += countIn(S.ArraySize);
    for (const ParamDecl *P : S.Params) {
      ++C;
      if (P->Specs.Type)
        C += countIn(P->Specs.Type);
      C += countDeclarator(P->Dtor);
    }
  }
  return C;
}

size_t countIn(const Node *N) {
  if (!N)
    return 0;
  size_t C = 1;
  switch (N->kind()) {
  case NodeKind::ParenExpr:
    C += countIn(cast<ParenExpr>(N)->Inner);
    break;
  case NodeKind::UnaryExpr:
    C += countIn(cast<UnaryExpr>(N)->Operand);
    break;
  case NodeKind::BinaryExpr:
    C += countIn(cast<BinaryExpr>(N)->LHS) + countIn(cast<BinaryExpr>(N)->RHS);
    break;
  case NodeKind::ConditionalExpr: {
    auto *E = cast<ConditionalExpr>(N);
    C += countIn(E->Cond) + countIn(E->Then) + countIn(E->Else);
    break;
  }
  case NodeKind::CastExpr: {
    auto *E = cast<CastExpr>(N);
    C += countIn(E->Ty.Spec) + countIn(E->Operand);
    break;
  }
  case NodeKind::SizeofExpr: {
    auto *E = cast<SizeofExpr>(N);
    C += E->IsType ? countIn(E->Ty.Spec) : countIn(E->Operand);
    break;
  }
  case NodeKind::CallExpr: {
    auto *E = cast<CallExpr>(N);
    C += countIn(E->Callee);
    for (const Expr *Arg : E->Args)
      C += countIn(Arg);
    break;
  }
  case NodeKind::IndexExpr:
    C += countIn(cast<IndexExpr>(N)->Base) + countIn(cast<IndexExpr>(N)->Index);
    break;
  case NodeKind::MemberExpr:
    C += countIn(cast<MemberExpr>(N)->Base);
    break;
  case NodeKind::BackquoteExpr:
    C += countIn(cast<BackquoteExpr>(N)->Template);
    break;
  case NodeKind::LambdaExpr:
    C += countIn(cast<LambdaExpr>(N)->Body);
    break;
  case NodeKind::CompoundStmtKind: {
    auto *S = cast<CompoundStmt>(N);
    for (const Decl *D : S->Decls)
      C += countIn(D);
    for (const Stmt *St : S->Stmts)
      C += countIn(St);
    break;
  }
  case NodeKind::ExprStmt:
    C += countIn(cast<ExprStmt>(N)->E);
    break;
  case NodeKind::IfStmt: {
    auto *S = cast<IfStmt>(N);
    C += countIn(S->Cond) + countIn(S->Then) + countIn(S->Else);
    break;
  }
  case NodeKind::WhileStmt:
    C += countIn(cast<WhileStmt>(N)->Cond) + countIn(cast<WhileStmt>(N)->Body);
    break;
  case NodeKind::DoStmt:
    C += countIn(cast<DoStmt>(N)->Body) + countIn(cast<DoStmt>(N)->Cond);
    break;
  case NodeKind::ForStmt: {
    auto *S = cast<ForStmt>(N);
    C += countIn(S->Init) + countIn(S->Cond) + countIn(S->Step) +
         countIn(S->Body);
    break;
  }
  case NodeKind::SwitchStmt:
    C += countIn(cast<SwitchStmt>(N)->Cond) + countIn(cast<SwitchStmt>(N)->Body);
    break;
  case NodeKind::CaseStmt:
    C += countIn(cast<CaseStmt>(N)->Value) + countIn(cast<CaseStmt>(N)->Body);
    break;
  case NodeKind::DefaultStmt:
    C += countIn(cast<DefaultStmt>(N)->Body);
    break;
  case NodeKind::LabelStmt:
    C += countIn(cast<LabelStmt>(N)->Body);
    break;
  case NodeKind::ReturnStmt:
    C += countIn(cast<ReturnStmt>(N)->Value);
    break;
  case NodeKind::DeclarationKind: {
    auto *D = cast<Declaration>(N);
    C += countIn(D->Specs.Type);
    for (const InitDeclarator &I : D->Inits) {
      C += countDeclarator(I.Dtor);
      C += countIn(I.Init);
    }
    break;
  }
  case NodeKind::FunctionDefKind: {
    auto *D = cast<FunctionDef>(N);
    C += countIn(D->Specs.Type) + countDeclarator(D->Dtor);
    for (const Declaration *K : D->KRDecls)
      C += countIn(K);
    C += countIn(D->Body);
    break;
  }
  case NodeKind::MetaDeclKind:
    C += countIn(cast<MetaDecl>(N)->Inner);
    break;
  case NodeKind::MacroDefKind:
    C += countIn(cast<MacroDef>(N)->Body);
    break;
  case NodeKind::TranslationUnitKind: {
    for (const Decl *D : cast<TranslationUnit>(N)->Items)
      C += countIn(D);
    break;
  }
  case NodeKind::TagTypeSpecKind: {
    auto *T = cast<TagTypeSpec>(N);
    for (const Declaration *M : T->Members)
      C += countIn(M);
    for (const Enumerator &E : T->Enums)
      C += 1 + countIn(E.Value);
    break;
  }
  default:
    break;
  }
  return C;
}

} // namespace

bool msq::structurallyEqual(const Node *A, const Node *B) {
  return eqNode(A, B);
}

size_t msq::countNodes(const Node *N) { return countIn(N); }
