//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The macro expansion driver. Walks a parsed translation unit, runs the
/// meta program (macro definitions register themselves at parse time; this
/// pass executes metadcl initializers in order), expands every macro
/// invocation by running its body in the interpreter, and splices the
/// produced ASTs — recursively, since macro-produced code may contain
/// further invocations. The expanded tree contains no meta constructs:
/// "The meta-program is fully run during macro-expansion. None of it
/// exists at runtime."
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_EXPAND_EXPANDER_H
#define MSQ_EXPAND_EXPANDER_H

#include "analysis/Provenance.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "quasi/Quasi.h"
#include "support/Metrics.h"

#include <unordered_map>

namespace msq {

class DependencyRecorder;

class Expander {
public:
  struct Options {
    /// Maximum expansion nesting (a macro producing an invocation of
    /// itself forever must terminate with a diagnostic).
    unsigned MaxExpansionDepth = 128;
    /// Attribute every invocation to its macro in a profile (wall-clock
    /// time, nodes, gensyms); retrieved with takeProfile().
    bool CollectProfile = false;
    /// When set, every invocation pushes a frame here, produced nodes are
    /// stamped with the current frame id, and diagnostics reported while a
    /// macro runs carry its backtrace (Diags.setProvenanceFrame).
    ProvenanceTracker *Prov = nullptr;
    /// When set, every invocation notes its macro's name here — the same
    /// event that pushes a provenance frame, feeding the incremental
    /// engine's DependencyMap (expand/DependencyMap.h).
    DependencyRecorder *Deps = nullptr;
  };

  struct Stats {
    size_t InvocationsExpanded = 0;
    size_t NodesProduced = 0;
  };

  Expander(CompilationContext &CC, Interpreter &Interp)
      : Expander(CC, Interp, Options()) {}
  Expander(CompilationContext &CC, Interpreter &Interp, Options Opts);

  /// Expands \p TU; returns a new translation unit containing only object
  /// code (meta declarations and macro definitions are consumed).
  TranslationUnit *expandTranslationUnit(TranslationUnit *TU);

  /// Expands a single statement/expression (tests, benchmarks).
  Stmt *expandStmt(Stmt *S);
  Expr *expandExpr(Expr *E);

  const Stats &stats() const { return St; }

  /// Moves the per-macro profile out (sorted by macro name; empty unless
  /// Options::CollectProfile).
  ExpansionProfile takeProfile();

private:
  Value runInvocation(const MacroInvocation *Inv);
  /// Pushes a provenance frame for \p Inv (no-op without a tracker).
  void enterInvocation(const MacroInvocation *Inv);
  void leaveInvocation();
  /// Stamps the current provenance frame onto \p N if it has none yet.
  void stamp(Node *N);
  void expandStmtInto(Stmt *S, std::vector<Stmt *> &Out);
  void expandDeclInto(Decl *D, std::vector<Decl *> &Out);
  Decl *expandDecl(Decl *D);
  CompoundStmt *expandCompound(CompoundStmt *C);
  /// Splices an invocation result value into a statement list.
  void spliceStmtValue(const Value &V, SourceLoc Loc, std::vector<Stmt *> &Out);
  void spliceDeclValue(const Value &V, SourceLoc Loc, std::vector<Decl *> &Out);

  CompilationContext &CC;
  Interpreter &Interp;
  Options Opts;
  QuasiContext QC;
  Stats St;
  unsigned Depth = 0;
  /// Per-macro profile accumulator (Options::CollectProfile). Entry names
  /// are filled in from the Symbol keys when the profile is taken.
  std::unordered_map<Symbol, MacroProfileEntry, SymbolHash> Profile;
};

} // namespace msq

#endif // MSQ_EXPAND_EXPANDER_H
