//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "expand/DependencyMap.h"

#include <sstream>

using namespace msq;

//===----------------------------------------------------------------------===//
// Delta classification
//===----------------------------------------------------------------------===//

namespace {

/// Collects keys whose value differs between \p Old and \p New, keys only
/// in one side included.
void diffMaps(const std::map<std::string, std::string> &Old,
              const std::map<std::string, std::string> &New,
              std::set<std::string> &Out) {
  for (const auto &[K, V] : Old) {
    auto It = New.find(K);
    if (It == New.end() || It->second != V)
      Out.insert(K);
  }
  for (const auto &[K, V] : New)
    if (!Old.count(K))
      Out.insert(K);
}

} // namespace

const char *msq::incrementalPathName(IncrementalPath P) {
  switch (P) {
  case IncrementalPath::CleanReplay:
    return "clean";
  case IncrementalPath::TreeReuse:
    return "tree";
  case IncrementalPath::TokenReuse:
    return "tokens";
  case IncrementalPath::Cold:
    return "cold";
  }
  return "?";
}

LibraryDelta msq::diffDefinitions(const DefinitionFingerprints &Old,
                                  const DefinitionFingerprints &New) {
  LibraryDelta D;
  if (!Old.Stable || !New.Stable) {
    // An unhashable value (closure in a meta global) means we cannot tell
    // what changed; the only sound answer is "assume everything did".
    D.FullReset = D.AnyChange = true;
    D.GensymBaseChanged = D.LibraryTextChanged = true;
    return D;
  }
  if (Old.OptionsHash != New.OptionsHash ||
      Old.ParseStateHash != New.ParseStateHash) {
    D.FullReset = D.AnyChange = true;
    D.GensymBaseChanged = Old.GensymCounter != New.GensymCounter;
    D.LibraryTextChanged = Old.LibraryTextHash != New.LibraryTextHash;
    return D;
  }

  diffMaps(Old.MacroSignature, New.MacroSignature, D.PatternChanged);
  std::set<std::string> FullChanged;
  diffMaps(Old.MacroFull, New.MacroFull, FullChanged);
  for (const std::string &Name : FullChanged)
    if (!D.PatternChanged.count(Name))
      D.BodyChanged.insert(Name);
  diffMaps(Old.MetaFunc, New.MetaFunc, D.MetaNamesChanged);
  diffMaps(Old.GlobalValue, New.GlobalValue, D.MetaNamesChanged);
  D.GensymBaseChanged = Old.GensymCounter != New.GensymCounter;
  D.LibraryTextChanged = Old.LibraryTextHash != New.LibraryTextHash;
  D.AnyChange = !D.PatternChanged.empty() || !D.BodyChanged.empty() ||
                !D.MetaNamesChanged.empty() || D.GensymBaseChanged ||
                D.LibraryTextChanged;
  return D;
}

//===----------------------------------------------------------------------===//
// DependencyMap
//===----------------------------------------------------------------------===//

void DependencyMap::add(const std::string &Unit, const UnitDeps &Deps) {
  remove(Unit);
  PerUnit[Unit] = Deps;
  for (const auto &[Name, Count] : Deps.Macros) {
    (void)Count;
    Index[Name].insert(Unit);
  }
  for (const std::string &Name : Deps.MetaNames)
    Index[Name].insert(Unit);
}

void DependencyMap::remove(const std::string &Unit) {
  auto It = PerUnit.find(Unit);
  if (It == PerUnit.end())
    return;
  for (const auto &[Name, Count] : It->second.Macros) {
    (void)Count;
    auto IdxIt = Index.find(Name);
    if (IdxIt != Index.end()) {
      IdxIt->second.erase(Unit);
      if (IdxIt->second.empty())
        Index.erase(IdxIt);
    }
  }
  for (const std::string &Name : It->second.MetaNames) {
    auto IdxIt = Index.find(Name);
    if (IdxIt != Index.end()) {
      IdxIt->second.erase(Unit);
      if (IdxIt->second.empty())
        Index.erase(IdxIt);
    }
  }
  PerUnit.erase(It);
}

bool DependencyMap::isDirty(const std::string &Unit, const LibraryDelta &Delta,
                            const std::set<std::string> *UnitIdents) const {
  if (Delta.FullReset)
    return true;
  auto It = PerUnit.find(Unit);
  if (It == PerUnit.end())
    return true; // never recorded: no basis for a clean replay
  const UnitDeps &Deps = It->second;
  if (Deps.Unknown)
    return true;
  for (const std::string &Name : Delta.BodyChanged)
    if (Deps.Macros.count(Name))
      return true;
  for (const std::string &Name : Delta.MetaNamesChanged)
    if (Deps.MetaNames.count(Name))
      return true;
  // A signature-level change (added, removed, or re-patterned macro) can
  // change how source PARSES wherever the name appears as an identifier,
  // whether or not the previous expansion invoked it.
  for (const std::string &Name : Delta.PatternChanged) {
    if (!UnitIdents)
      return true;
    if (UnitIdents->count(Name) || Deps.Macros.count(Name))
      return true;
  }
  return false;
}

std::set<std::string> DependencyMap::dirtyUnits(
    const LibraryDelta &Delta,
    const std::map<std::string, std::set<std::string>> &IdentsOf) const {
  std::set<std::string> Out;
  for (const auto &[Unit, Deps] : PerUnit) {
    (void)Deps;
    auto It = IdentsOf.find(Unit);
    if (isDirty(Unit, Delta, It == IdentsOf.end() ? nullptr : &It->second))
      Out.insert(Unit);
  }
  return Out;
}

std::set<std::string> DependencyMap::consumersOf(const std::string &Name) const {
  auto It = Index.find(Name);
  return It == Index.end() ? std::set<std::string>() : It->second;
}

const UnitDeps *DependencyMap::depsOf(const std::string &Unit) const {
  auto It = PerUnit.find(Unit);
  return It == PerUnit.end() ? nullptr : &It->second;
}

namespace {
void appendJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}
} // namespace

std::string DependencyMap::toJson() const {
  std::ostringstream OS;
  OS << "{\"units\":{";
  bool FirstUnit = true;
  for (const auto &[Unit, Deps] : PerUnit) {
    if (!FirstUnit)
      OS << ',';
    FirstUnit = false;
    appendJsonString(OS, Unit);
    OS << ":{\"macros\":{";
    bool First = true;
    for (const auto &[Name, Count] : Deps.Macros) {
      if (!First)
        OS << ',';
      First = false;
      appendJsonString(OS, Name);
      OS << ':' << Count;
    }
    OS << "},\"meta\":[";
    First = true;
    for (const std::string &Name : Deps.MetaNames) {
      if (!First)
        OS << ',';
      First = false;
      appendJsonString(OS, Name);
    }
    OS << "],\"unknown\":" << (Deps.Unknown ? "true" : "false") << '}';
  }
  OS << "},\"index\":{";
  bool FirstIdx = true;
  for (const auto &[Name, Units] : Index) {
    if (!FirstIdx)
      OS << ',';
    FirstIdx = false;
    appendJsonString(OS, Name);
    OS << ":[";
    bool First = true;
    for (const std::string &U : Units) {
      if (!First)
        OS << ',';
      First = false;
      appendJsonString(OS, U);
    }
    OS << ']';
  }
  OS << "}}";
  return OS.str();
}
