//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "expand/Expander.h"

#include "expand/DependencyMap.h"

#include <chrono>

using namespace msq;

Expander::Expander(CompilationContext &CC, Interpreter &Interp, Options Opts)
    : CC(CC), Interp(Interp), Opts(Opts),
      QC{CC.Ast, CC.Interner, CC.Types, CC.Diags} {}

void Expander::enterInvocation(const MacroInvocation *Inv) {
  if (Opts.Deps) {
    if (Inv->Def)
      Opts.Deps->noteMacro(std::string(Inv->Def->Name.str()));
    else
      Opts.Deps->noteUnknown();
  }
  if (!Opts.Prov)
    return;
  Symbol Name = Inv->Def ? Inv->Def->Name : Symbol();
  uint32_t Frame = Opts.Prov->push(Name, Inv->Loc);
  CC.Diags.setProvenanceFrame(Frame);
}

void Expander::leaveInvocation() {
  if (!Opts.Prov)
    return;
  Opts.Prov->pop();
  CC.Diags.setProvenanceFrame(Opts.Prov->current());
}

void Expander::stamp(Node *N) {
  if (!Opts.Prov || !N || N->prov() != 0)
    return;
  if (uint32_t Frame = Opts.Prov->current())
    N->setProv(Frame);
}

Value Expander::runInvocation(const MacroInvocation *Inv) {
  ++St.InvocationsExpanded;
  if (!Opts.CollectProfile)
    return Interp.invokeMacro(Inv);
  size_t GensymsBefore = Interp.gensymCount();
  size_t AllocsBefore = CC.Ast.numAllocations();
  auto Start = std::chrono::steady_clock::now();
  Value V = Interp.invokeMacro(Inv);
  uint64_t Nanos = uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - Start)
                                .count());
  MacroProfileEntry &E = Profile[Inv->Def->Name];
  ++E.Invocations;
  E.TotalNanos += Nanos;
  E.MaxNanos = std::max(E.MaxNanos, Nanos);
  E.NodesProduced += CC.Ast.numAllocations() - AllocsBefore;
  E.GensymsCreated += Interp.gensymCount() - GensymsBefore;
  return V;
}

ExpansionProfile Expander::takeProfile() {
  ExpansionProfile P;
  P.Macros.reserve(Profile.size());
  for (auto &[Name, Entry] : Profile) {
    Entry.Name = std::string(Name.str());
    P.Macros.push_back(std::move(Entry));
  }
  Profile.clear();
  P.normalize();
  return P;
}

//===----------------------------------------------------------------------===//
// Splicing
//===----------------------------------------------------------------------===//

void Expander::spliceStmtValue(const Value &V, SourceLoc Loc,
                               std::vector<Stmt *> &Out) {
  if (V.isUnset())
    return; // already diagnosed
  if (V.kind() == Value::ListV) {
    for (size_t I = 0; I != V.listSize(); ++I)
      spliceStmtValue(V.listAt(I), Loc, Out);
    return;
  }
  Stmt *S = valueToStmt(QC, V, Loc);
  if (!S)
    return;
  // Expansion results may contain further invocations.
  if (Depth >= Opts.MaxExpansionDepth) {
    CC.Diags.error(Loc, "macro expansion depth limit exceeded");
    return;
  }
  ++Depth;
  expandStmtInto(S, Out);
  --Depth;
}

void Expander::spliceDeclValue(const Value &V, SourceLoc Loc,
                               std::vector<Decl *> &Out) {
  if (V.isUnset())
    return;
  if (V.kind() == Value::ListV) {
    for (size_t I = 0; I != V.listSize(); ++I)
      spliceDeclValue(V.listAt(I), Loc, Out);
    return;
  }
  Decl *D = valueToDecl(QC, V, Loc);
  if (!D)
    return;
  if (Depth >= Opts.MaxExpansionDepth) {
    CC.Diags.error(Loc, "macro expansion depth limit exceeded");
    return;
  }
  ++Depth;
  expandDeclInto(D, Out);
  --Depth;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Expander::expandExpr(Expr *E) {
  if (!E)
    return nullptr;
  ++St.NodesProduced;
  stamp(E);
  switch (E->kind()) {
  case NodeKind::MacroInvocationExpr: {
    const auto *M = cast<MacroInvocationExpr>(E);
    enterInvocation(M->Inv);
    Value V = runInvocation(M->Inv);
    Expr *R = valueToExpr(QC, V, E->loc());
    if (!R) {
      R = CC.Ast.create<IntLiteralExpr>(0, E->loc());
    } else if (Depth >= Opts.MaxExpansionDepth) {
      CC.Diags.error(E->loc(), "macro expansion depth limit exceeded");
    } else {
      ++Depth;
      R = expandExpr(R);
      --Depth;
    }
    stamp(R);
    leaveInvocation();
    return R;
  }
  case NodeKind::ParenExpr: {
    auto *P = cast<ParenExpr>(E);
    P->Inner = expandExpr(P->Inner);
    return P;
  }
  case NodeKind::InitListExpr: {
    auto *IL = cast<InitListExpr>(E);
    std::vector<Expr *> Elems;
    for (Expr *El : IL->Elems)
      Elems.push_back(expandExpr(El));
    IL->Elems = ArenaRef<Expr *>::copy(CC.Ast, Elems);
    return IL;
  }
  case NodeKind::UnaryExpr: {
    auto *U = cast<UnaryExpr>(E);
    U->Operand = expandExpr(U->Operand);
    return U;
  }
  case NodeKind::BinaryExpr: {
    auto *B = cast<BinaryExpr>(E);
    B->LHS = expandExpr(B->LHS);
    B->RHS = expandExpr(B->RHS);
    return B;
  }
  case NodeKind::ConditionalExpr: {
    auto *C = cast<ConditionalExpr>(E);
    C->Cond = expandExpr(C->Cond);
    C->Then = expandExpr(C->Then);
    C->Else = expandExpr(C->Else);
    return C;
  }
  case NodeKind::CastExpr: {
    auto *C = cast<CastExpr>(E);
    C->Operand = expandExpr(C->Operand);
    return C;
  }
  case NodeKind::SizeofExpr: {
    auto *S = cast<SizeofExpr>(E);
    if (!S->IsType)
      S->Operand = expandExpr(S->Operand);
    return S;
  }
  case NodeKind::CallExpr: {
    auto *C = cast<CallExpr>(E);
    C->Callee = expandExpr(C->Callee);
    std::vector<Expr *> Args;
    for (Expr *Arg : C->Args)
      Args.push_back(expandExpr(Arg));
    C->Args = ArenaRef<Expr *>::copy(CC.Ast, Args);
    return C;
  }
  case NodeKind::IndexExpr: {
    auto *I = cast<IndexExpr>(E);
    I->Base = expandExpr(I->Base);
    I->Index = expandExpr(I->Index);
    return I;
  }
  case NodeKind::MemberExpr: {
    auto *M = cast<MemberExpr>(E);
    M->Base = expandExpr(M->Base);
    return M;
  }
  case NodeKind::PlaceholderExpr:
    CC.Diags.error(E->loc(), "unexpanded placeholder in object code");
    return E;
  default:
    return E;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Expander::expandCompound(CompoundStmt *C) {
  std::vector<Decl *> Decls;
  for (Decl *D : C->Decls)
    expandDeclInto(D, Decls);
  std::vector<Stmt *> Stmts;
  for (Stmt *S : C->Stmts)
    expandStmtInto(S, Stmts);
  auto *R =
      CC.Ast.create<CompoundStmt>(ArenaRef<Decl *>::copy(CC.Ast, Decls),
                                  ArenaRef<Stmt *>::copy(CC.Ast, Stmts),
                                  C->loc());
  R->setProv(C->prov());
  stamp(R);
  return R;
}

void Expander::expandStmtInto(Stmt *S, std::vector<Stmt *> &Out) {
  if (!S)
    return;
  if (const auto *M = dyn_cast<MacroInvocationStmt>(S)) {
    enterInvocation(M->Inv);
    Value V = runInvocation(M->Inv);
    spliceStmtValue(V, S->loc(), Out);
    leaveInvocation();
    return;
  }
  if (Stmt *R = expandStmt(S))
    Out.push_back(R);
}

Stmt *Expander::expandStmt(Stmt *S) {
  if (!S)
    return nullptr;
  ++St.NodesProduced;
  stamp(S);
  switch (S->kind()) {
  case NodeKind::MacroInvocationStmt: {
    // Single-statement context: the invocation must produce one statement.
    const auto *M = cast<MacroInvocationStmt>(S);
    enterInvocation(M->Inv);
    Value V = runInvocation(M->Inv);
    std::vector<Stmt *> Tmp;
    spliceStmtValue(V, S->loc(), Tmp);
    Stmt *R;
    if (Tmp.size() == 1)
      R = Tmp[0];
    else if (Tmp.empty())
      R = CC.Ast.create<NullStmt>(S->loc());
    else
      // Multiple statements in a single-statement slot: wrap in a block.
      R = CC.Ast.create<CompoundStmt>(ArenaRef<Decl *>(),
                                      ArenaRef<Stmt *>::copy(CC.Ast, Tmp),
                                      S->loc());
    stamp(R);
    leaveInvocation();
    return R;
  }
  case NodeKind::CompoundStmtKind:
    return expandCompound(cast<CompoundStmt>(S));
  case NodeKind::ExprStmt: {
    auto *ES = cast<ExprStmt>(S);
    ES->E = expandExpr(ES->E);
    return ES;
  }
  case NodeKind::IfStmt: {
    auto *I = cast<IfStmt>(S);
    I->Cond = expandExpr(I->Cond);
    I->Then = expandStmt(I->Then);
    if (I->Else)
      I->Else = expandStmt(I->Else);
    return I;
  }
  case NodeKind::WhileStmt: {
    auto *W = cast<WhileStmt>(S);
    W->Cond = expandExpr(W->Cond);
    W->Body = expandStmt(W->Body);
    return W;
  }
  case NodeKind::DoStmt: {
    auto *D = cast<DoStmt>(S);
    D->Body = expandStmt(D->Body);
    D->Cond = expandExpr(D->Cond);
    return D;
  }
  case NodeKind::ForStmt: {
    auto *F = cast<ForStmt>(S);
    F->Init = expandExpr(F->Init);
    F->Cond = expandExpr(F->Cond);
    F->Step = expandExpr(F->Step);
    F->Body = expandStmt(F->Body);
    return F;
  }
  case NodeKind::SwitchStmt: {
    auto *Sw = cast<SwitchStmt>(S);
    Sw->Cond = expandExpr(Sw->Cond);
    Sw->Body = expandStmt(Sw->Body);
    return Sw;
  }
  case NodeKind::CaseStmt: {
    auto *C = cast<CaseStmt>(S);
    C->Value = expandExpr(C->Value);
    C->Body = expandStmt(C->Body);
    return C;
  }
  case NodeKind::DefaultStmt: {
    auto *D = cast<DefaultStmt>(S);
    D->Body = expandStmt(D->Body);
    return D;
  }
  case NodeKind::LabelStmt: {
    auto *L = cast<LabelStmt>(S);
    L->Body = expandStmt(L->Body);
    return L;
  }
  case NodeKind::ReturnStmt: {
    auto *R = cast<ReturnStmt>(S);
    if (R->Value)
      R->Value = expandExpr(R->Value);
    return R;
  }
  case NodeKind::PlaceholderStmt:
    CC.Diags.error(S->loc(), "unexpanded placeholder in object code");
    return S;
  default:
    return S;
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

Decl *Expander::expandDecl(Decl *D) {
  if (!D)
    return nullptr;
  ++St.NodesProduced;
  stamp(D);
  switch (D->kind()) {
  case NodeKind::DeclarationKind: {
    auto *Dec = cast<Declaration>(D);
    std::vector<InitDeclarator> Inits(Dec->Inits.begin(), Dec->Inits.end());
    for (InitDeclarator &ID : Inits)
      if (ID.Init)
        ID.Init = expandExpr(ID.Init);
    Dec->Inits = ArenaRef<InitDeclarator>::copy(CC.Ast, Inits);
    return Dec;
  }
  case NodeKind::FunctionDefKind: {
    auto *F = cast<FunctionDef>(D);
    F->Body = expandCompound(F->Body);
    return F;
  }
  case NodeKind::PlaceholderDecl:
    CC.Diags.error(D->loc(), "unexpanded placeholder in object code");
    return D;
  default:
    return D;
  }
}

void Expander::expandDeclInto(Decl *D, std::vector<Decl *> &Out) {
  if (!D)
    return;
  switch (D->kind()) {
  case NodeKind::MacroInvocationDecl: {
    const auto *M = cast<MacroInvocationDecl>(D);
    enterInvocation(M->Inv);
    Value V = runInvocation(M->Inv);
    spliceDeclValue(V, D->loc(), Out);
    leaveInvocation();
    return;
  }
  case NodeKind::MetaDeclKind:
    // Run the meta declaration; it does not exist in object code.
    Interp.processMetaDecl(cast<MetaDecl>(D));
    return;
  case NodeKind::MacroDefKind:
    // Registered at parse time; consumed here.
    return;
  case NodeKind::FunctionDefKind: {
    auto *F = cast<FunctionDef>(D);
    // Meta functions are consumed; object functions get their bodies
    // expanded.
    if (CC.MetaFuncs.lookup(F->Dtor && !F->Dtor->isPlaceholder()
                                ? F->Dtor->name().Sym
                                : Symbol()))
      return;
    Out.push_back(expandDecl(D));
    return;
  }
  case NodeKind::DeclarationKind: {
    auto *Dec = cast<Declaration>(D);
    // Implicit meta globals (declared with @-types at top level).
    if (Dec->Specs.Type && isa<MetaAstTypeSpec>(Dec->Specs.Type))
      return;
    Out.push_back(expandDecl(D));
    return;
  }
  default:
    Out.push_back(expandDecl(D));
    return;
  }
}

TranslationUnit *Expander::expandTranslationUnit(TranslationUnit *TU) {
  std::vector<Decl *> Items;
  for (Decl *D : TU->Items)
    expandDeclInto(D, Items);
  return CC.Ast.create<TranslationUnit>(ArenaRef<Decl *>::copy(CC.Ast, Items),
                                        TU->loc());
}
