//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependency tracking for incremental re-expansion.
///
/// A unit's expansion is a function of (macro library state, unit source).
/// The library is a bag of named definitions — macros, meta functions,
/// meta globals — plus a little parse-steering state (typedefs, recorded
/// variable types, options). When one definition changes, only the units
/// whose expansion actually *touched* that definition need to be redone;
/// everything else can replay its previous result verbatim.
///
/// Three pieces cooperate:
///
///  * DependencyRecorder — a collector the Expander and Interpreter feed
///    while a unit expands: every invoked macro (the same event that
///    pushes a provenance frame), every meta-level name resolved outside
///    the local environment (meta functions, metadcl globals), and a
///    conservative Unknown bit for anything the recorder cannot attribute.
///    Recording deliberately OVER-approximates: a spurious dependency
///    costs one needless re-expansion; a missing one costs a stale,
///    wrong output. The property tests in tests/property_test.cpp pin
///    this asymmetry down.
///
///  * DefinitionFingerprints — per-definition content hashes of one
///    engine's library state (computed in cache/Fingerprint.cpp with the
///    same printing/hashing machinery as Engine::stateFingerprint), plus
///    whole-state hashes for the parse-steering residue. Diffing two of
///    these yields a LibraryDelta: which macro bodies changed, which
///    patterns changed (those re-steer parsing), which global values
///    moved, and whether anything forces a full reset.
///
///  * DependencyMap — the inverted index: definition name -> the units
///    (and invocation counts) that consumed it, built from the recorded
///    per-unit deps. dirtyUnits(Delta) answers "who must re-expand".
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_EXPAND_DEPENDENCYMAP_H
#define MSQ_EXPAND_DEPENDENCYMAP_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace msq {

class Engine;

/// What one unit's expansion consumed from the surrounding library state.
/// All names are plain strings (not interner Symbols) so deps survive
/// engine rebuilds and can be compared across engines.
struct UnitDeps {
  /// Macros expanded in this unit, with invocation counts (every
  /// enterInvocation, nested expansions included).
  std::map<std::string, uint64_t> Macros;
  /// Meta-level names resolved outside the unit's local frames while meta
  /// code ran: meta functions called, metadcl globals read, builtins.
  /// One set on purpose — attributing a name to the "function" or
  /// "global" namespace at record time would have to replicate the
  /// interpreter's resolution order, and a merged set is a sound
  /// over-approximation of both.
  std::set<std::string> MetaNames;
  /// Set when the recorder saw something it could not attribute (or was
  /// never attached); such a unit is dirty under ANY library change.
  bool Unknown = false;

  bool empty() const { return Macros.empty() && MetaNames.empty() && !Unknown; }
};

/// The collector the Expander/Interpreter feed during one unit. Header-only
/// so the interpreter can call it without a link-time dependency on the
/// expand library.
class DependencyRecorder {
public:
  void noteMacro(std::string Name) { ++Deps.Macros[std::move(Name)]; }
  void noteMetaName(std::string Name) { Deps.MetaNames.insert(std::move(Name)); }
  void noteUnknown() { Deps.Unknown = true; }

  const UnitDeps &deps() const { return Deps; }
  UnitDeps take() { return std::move(Deps); }

private:
  UnitDeps Deps;
};

/// Per-definition content hashes of one engine's library state. Computed
/// by computeDefinitionFingerprints (cache/Fingerprint.cpp); two captures
/// are diffed into a LibraryDelta.
struct DefinitionFingerprints {
  /// False when some meta-global value cannot be hashed faithfully (a
  /// closure, a live placeholder). An unstable capture admits no delta:
  /// every diff against it reports a full reset.
  bool Stable = true;
  /// Expansion-relevant Engine::Options bits.
  std::string OptionsHash;
  /// Parse-steering state outside the definitions themselves: session
  /// typedefs, recorded object-variable types. A change here can alter
  /// how ANY unit parses, so it forces a full reset.
  std::string ParseStateHash;
  /// Macro name -> hash of its signature (return type + pattern). Pattern
  /// changes re-steer parsing of any unit that mentions the name.
  std::map<std::string, std::string> MacroSignature;
  /// Macro name -> hash of the whole printed definition (body included).
  std::map<std::string, std::string> MacroFull;
  /// Meta function name -> hash of its printed definition.
  std::map<std::string, std::string> MetaFunc;
  /// Meta global name -> structural hash of its current VALUE (the
  /// paper's non-local transformations make expansion depend on values).
  std::map<std::string, std::string> GlobalValue;
  /// Baseline gensym counter (fresh-name numbering is observable output).
  uint64_t GensymCounter = 0;
  /// Hash of all library source text (diagnostics and source maps can
  /// render library file:line:col, so text motion alone can be visible).
  std::string LibraryTextHash;
};

/// Defined in cache/Fingerprint.cpp (link msq_cache to use it): captures
/// the engine's current library state as per-definition fingerprints.
/// \p LibraryText is hashed into LibraryTextHash (the caller knows what
/// sources built the engine; the engine's own session log may deliberately
/// not be it). Wrapper over Engine::definitionFingerprints.
DefinitionFingerprints
computeDefinitionFingerprints(const Engine &E,
                              const std::vector<std::string> &LibraryText);

/// Names the incremental path took for one unit (metrics and tests).
enum class IncrementalPath {
  CleanReplay,  ///< previous result returned verbatim, zero engine work
  TreeReuse,    ///< re-expanded from the cached parse tree (no lex/parse)
  TokenReuse,   ///< re-parsed from the cached token stream (no lexing)
  Cold,         ///< full lex + parse + expand
};

const char *incrementalPathName(IncrementalPath P);

/// The classified difference between two library states.
struct LibraryDelta {
  /// Options, parse-steering state, or stability changed: every unit is
  /// dirty and every cached parse tree is invalid.
  bool FullReset = false;
  /// Anything at all differs (FullReset implies AnyChange).
  bool AnyChange = false;
  /// Macros whose signature (pattern) changed, appeared, or vanished.
  /// Dirty any unit whose SOURCE TOKENS mention the name — macro names
  /// act as keywords, so presence of the identifier is exactly the
  /// condition under which parsing can change — and invalidate those
  /// units' cached trees.
  std::set<std::string> PatternChanged;
  /// Macros whose body changed but whose signature did not: cached trees
  /// stay valid, units that invoked them are dirty.
  std::set<std::string> BodyChanged;
  /// Meta functions / meta globals whose definition or value changed,
  /// appeared, or vanished: units whose MetaNames mention them are dirty.
  std::set<std::string> MetaNamesChanged;
  /// Baseline gensym counter moved: units that created gensyms are dirty
  /// (their fresh-name numbering would come out different).
  bool GensymBaseChanged = false;
  /// Library source text changed at all: units whose results render
  /// library locations (diagnostics, source maps) are dirty.
  bool LibraryTextChanged = false;
};

/// Diffs two fingerprint captures. Either side unstable => FullReset.
LibraryDelta diffDefinitions(const DefinitionFingerprints &Old,
                             const DefinitionFingerprints &New);

/// The inverted index: definition name -> consuming units. Built by an
/// incremental driver (or the expansion server) from recorded UnitDeps.
class DependencyMap {
public:
  /// Records/replaces \p Unit's dependencies.
  void add(const std::string &Unit, const UnitDeps &Deps);
  /// Drops \p Unit from the index.
  void remove(const std::string &Unit);

  /// Units that must re-expand under \p Delta. \p IdentsOf maps a unit to
  /// the identifier set of its source tokens (for the PatternChanged
  /// rule); a unit missing from it is treated as mentioning everything.
  std::set<std::string>
  dirtyUnits(const LibraryDelta &Delta,
             const std::map<std::string, std::set<std::string>> &IdentsOf)
      const;

  /// True when \p Unit must re-expand under \p Delta (Unknown deps, a
  /// touched macro/meta name, or — when \p MentionsPatternName — a
  /// pattern-level change the unit's source could re-parse under).
  bool isDirty(const std::string &Unit, const LibraryDelta &Delta,
               const std::set<std::string> *UnitIdents) const;

  /// The units recorded as consumers of definition \p Name (inverted
  /// index lookup; macro and meta namespaces merged).
  std::set<std::string> consumersOf(const std::string &Name) const;

  const UnitDeps *depsOf(const std::string &Unit) const;
  size_t size() const { return PerUnit.size(); }

  /// {"units":{"u":{"macros":{"m":N,...},"meta":["g",...],"unknown":B}},
  ///  "index":{"name":["u",...]}} — for metrics and debugging.
  std::string toJson() const;

private:
  std::map<std::string, UnitDeps> PerUnit;
  /// name -> units consuming it (macros and meta names merged; rebuilt
  /// incrementally by add/remove).
  std::map<std::string, std::set<std::string>> Index;
};

} // namespace msq

#endif // MSQ_EXPAND_DEPENDENCYMAP_H
