//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Meta-level name environments and the macro registry.
///
/// The paper's parser "knows the declared types of meta-variables (both
/// globals and parameters of macros and meta-functions) and the types
/// returned by primitive operations on ASTs. It uses this information to
/// determine the type returned by a placeholder expression." MetaScope is
/// that knowledge.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_META_METASCOPE_H
#define MSQ_META_METASCOPE_H

#include "ast/Ast.h"
#include "support/StringInterner.h"
#include "types/MetaType.h"

#include <unordered_map>
#include <vector>

namespace msq {

/// A lexically scoped Symbol -> MetaType environment.
class MetaScope {
public:
  MetaScope() { push(); }

  void push() { Scopes.emplace_back(); }
  void pop() {
    assert(Scopes.size() > 1 && "cannot pop the global meta scope");
    Scopes.pop_back();
  }

  /// Declares \p Name in the innermost scope. Returns false if already
  /// declared there.
  bool declare(Symbol Name, const MetaType *Type) {
    auto [It, Inserted] = Scopes.back().emplace(Name, Type);
    (void)It;
    return Inserted;
  }

  /// Declares in the outermost (global) scope — metadcl globals, builtins,
  /// meta functions.
  bool declareGlobal(Symbol Name, const MetaType *Type) {
    auto [It, Inserted] = Scopes.front().emplace(Name, Type);
    (void)It;
    return Inserted;
  }

  /// Innermost-scope-first lookup; nullptr if unbound.
  const MetaType *lookup(Symbol Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  size_t depth() const { return Scopes.size(); }

  /// Read-only scope access (outermost first) — the incremental driver
  /// diffs after-parse scopes against a baseline to replay a unit's
  /// parse-time declarations without re-parsing.
  const std::vector<std::unordered_map<Symbol, const MetaType *, SymbolHash>> &
  scopes() const {
    return Scopes;
  }

private:
  std::vector<std::unordered_map<Symbol, const MetaType *, SymbolHash>> Scopes;
};

/// RAII scope pusher.
class MetaScopeGuard {
public:
  explicit MetaScopeGuard(MetaScope &S) : S(S) { S.push(); }
  ~MetaScopeGuard() { S.pop(); }
  MetaScopeGuard(const MetaScopeGuard &) = delete;
  MetaScopeGuard &operator=(const MetaScopeGuard &) = delete;

private:
  MetaScope &S;
};

/// All macros defined so far. Macro names act as new keywords during
/// parsing, so lookup happens on every identifier the parser sees.
class MacroRegistry {
public:
  /// Registers \p Def; returns false if the name is taken.
  bool define(MacroDef *Def) {
    auto [It, Inserted] = Macros.emplace(Def->Name, Def);
    (void)It;
    return Inserted;
  }

  const MacroDef *lookup(Symbol Name) const {
    auto It = Macros.find(Name);
    return It == Macros.end() ? nullptr : It->second;
  }

  size_t size() const { return Macros.size(); }

  /// Iteration support (deterministic order not required by callers).
  auto begin() const { return Macros.begin(); }
  auto end() const { return Macros.end(); }

private:
  std::unordered_map<Symbol, MacroDef *, SymbolHash> Macros;
};

/// A meta-level function definition (a C function whose signature mentions
/// AST types). Registered by the parser, executed by the interpreter.
struct MetaFunction {
  Symbol Name;
  const MetaType *Type = nullptr; // Function meta-type
  const FunctionDef *Def = nullptr;
};

/// Registry of user-defined meta functions.
class MetaFunctionRegistry {
public:
  bool define(Symbol Name, const MetaType *Type, const FunctionDef *Def) {
    auto [It, Inserted] = Funcs.emplace(Name, MetaFunction{Name, Type, Def});
    (void)It;
    return Inserted;
  }
  const MetaFunction *lookup(Symbol Name) const {
    auto It = Funcs.find(Name);
    return It == Funcs.end() ? nullptr : &It->second;
  }

  size_t size() const { return Funcs.size(); }

  /// Iteration support (deterministic order not required by callers).
  auto begin() const { return Funcs.begin(); }
  auto end() const { return Funcs.end(); }

private:
  std::unordered_map<Symbol, MetaFunction, SymbolHash> Funcs;
};

} // namespace msq

#endif // MSQ_META_METASCOPE_H
