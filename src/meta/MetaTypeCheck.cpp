//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "meta/MetaTypeCheck.h"

#include <sstream>

using namespace msq;

//===----------------------------------------------------------------------===//
// Declared meta types
//===----------------------------------------------------------------------===//

const MetaType *MetaTypeChecker::metaTypeFromDecl(const DeclSpecs &Specs,
                                                  const Declarator *Dtor,
                                                  MetaTypeContext &Ctx) {
  const MetaType *Base = nullptr;
  if (!Specs.Type)
    return nullptr;
  if (const auto *MT = dyn_cast<MetaAstTypeSpec>(Specs.Type)) {
    Base = MT->Type;
  } else if (const auto *BT = dyn_cast<BuiltinTypeSpec>(Specs.Type)) {
    unsigned F = BT->Flags;
    if (F & (BTF_Float | BTF_Double))
      Base = Ctx.getFloat();
    else if (F & BTF_Void)
      Base = Ctx.getVoid();
    else if ((F & BTF_Char) && Dtor && Dtor->PointerDepth == 1)
      return Ctx.getString(); // char * == meta string
    else if (F & (BTF_Char | BTF_Short | BTF_Int | BTF_Long | BTF_LongLong |
                  BTF_Signed | BTF_Unsigned))
      Base = Ctx.getInt();
    else
      return nullptr;
  } else if (const auto *Tag = dyn_cast<TagTypeSpec>(Specs.Type)) {
    // A struct whose members are all meta-typed declares a tuple (paper:
    // "structure declarations define tuples").
    if (Tag->Tag != TagKind::Struct || !Tag->HasBody)
      return nullptr;
    std::vector<const MetaType *> Fields;
    std::vector<Symbol> Names;
    for (const Declaration *M : Tag->Members) {
      for (const InitDeclarator &ID : M->Inits) {
        const MetaType *FT = metaTypeFromDecl(M->Specs, ID.Dtor, Ctx);
        if (!FT)
          return nullptr;
        Fields.push_back(FT);
        Names.push_back(ID.Dtor && !ID.Dtor->isPlaceholder() ? ID.Dtor->name().Sym
                                                             : Symbol());
      }
    }
    Base = Ctx.getTuple(std::move(Fields), std::move(Names));
  } else {
    return nullptr;
  }

  if (!Dtor)
    return Base;
  if (Dtor->PointerDepth != 0)
    return nullptr; // pointers to meta values are not meaningful
  const MetaType *Result = Base;
  for (const DeclSuffix &S : Dtor->Suffixes) {
    if (S.K == DeclSuffix::Array) {
      Result = Ctx.getList(Result); // `@id xs[]` declares a list
      continue;
    }
    // Function declarator: meta-function type. Parameter types derive from
    // the prototype parameters; any non-meta parameter makes the whole
    // declaration object-level.
    std::vector<const MetaType *> Params;
    for (const ParamDecl *P : S.Params) {
      const MetaType *PT = metaTypeFromDecl(P->Specs, P->Dtor, Ctx);
      if (!PT)
        return nullptr;
      Params.push_back(PT);
    }
    return Ctx.getFunction(Result, std::move(Params), S.Variadic);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// AST member tables
//===----------------------------------------------------------------------===//

const MetaType *MetaTypeChecker::memberType(const MetaType *Base,
                                            Symbol Member, bool &Known) {
  Known = true;
  std::string_view M = Member.str();
  // Tuples: look the field up by name.
  if (Base->isTuple()) {
    const auto &Names = Base->tupleFieldNames();
    for (size_t I = 0; I != Names.size(); ++I)
      if (Names[I] == Member)
        return Base->tupleFields()[I];
    Known = false;
    return Ctx.getError();
  }
  // Every AST value knows its node-kind name.
  if (M == "kind" && Base->isAstValued())
    return Ctx.getString();
  switch (Base->kind()) {
  case MetaTypeKind::Stmt:
    if (M == "declarations")
      return Ctx.getList(Ctx.getDecl());
    if (M == "statements")
      return Ctx.getList(Ctx.getStmt());
    break;
  case MetaTypeKind::Decl:
    if (M == "type_spec")
      return Ctx.getTypeSpec();
    if (M == "init_declarators")
      return Ctx.getList(Ctx.getScalar(MetaTypeKind::InitDeclarator));
    break;
  case MetaTypeKind::TypeSpec:
    // Introspection of tag types: lets macros derive code from ordinary
    // declarations ("Persistence code, RPC code, dialog boxes, etc., can
    // be automatically created when data is declared").
    if (M == "enumerators")
      return Ctx.getList(Ctx.getId());
    if (M == "tag_name")
      return Ctx.getId();
    if (M == "members")
      return Ctx.getList(Ctx.getDecl());
    break;
  case MetaTypeKind::InitDeclarator:
    if (M == "declarator")
      return Ctx.getScalar(MetaTypeKind::Declarator);
    if (M == "init")
      return Ctx.getExp();
    break;
  case MetaTypeKind::Declarator:
    if (M == "name")
      return Ctx.getId();
    break;
  case MetaTypeKind::Enumerator:
    if (M == "name")
      return Ctx.getId();
    if (M == "value")
      return Ctx.getExp();
    break;
  case MetaTypeKind::Exp:
    if (M == "lhs" || M == "rhs" || M == "callee" || M == "operand")
      return Ctx.getExp();
    if (M == "args")
      return Ctx.getList(Ctx.getExp());
    if (M == "name")
      return Ctx.getId();
    break;
  default:
    break;
  }
  Known = false;
  return Ctx.getError();
}

//===----------------------------------------------------------------------===//
// Builtin call typing
//===----------------------------------------------------------------------===//

const MetaType *MetaTypeChecker::typeOfBuiltinCall(
    const BuiltinInfo &Info, const std::vector<const MetaType *> &Args,
    SourceLoc Loc) {
  if (Args.size() < Info.MinArgs ||
      (Info.MaxArgs != UINT_MAX && Args.size() > Info.MaxArgs)) {
    std::ostringstream OS;
    OS << "wrong number of arguments to '" << Info.Name << "' (got "
       << Args.size() << ")";
    return error(Loc, OS.str());
  }
  for (const MetaType *T : Args)
    if (T->isError())
      return Ctx.getError();

  auto RequireList = [&](size_t I) -> const MetaType * {
    if (!Args[I]->isList()) {
      error(Loc, std::string("argument ") + std::to_string(I + 1) + " of '" +
                     Info.Name + "' must be a list, got " +
                     Args[I]->toString());
      return nullptr;
    }
    return Args[I];
  };

  switch (Info.Kind) {
  case BuiltinKind::Gensym:
    if (Args.size() == 1 && Args[0]->kind() != MetaTypeKind::String &&
        Args[0]->kind() != MetaTypeKind::Id)
      return error(Loc, "gensym prefix must be a string or identifier");
    return Ctx.getId();
  case BuiltinKind::ConcatIds:
  case BuiltinKind::Symbolconc: {
    for (const MetaType *T : Args) {
      MetaTypeKind K = T->kind();
      bool Ok = K == MetaTypeKind::Id || K == MetaTypeKind::String ||
                K == MetaTypeKind::Int ||
                (Info.Kind == BuiltinKind::Symbolconc &&
                 K == MetaTypeKind::Num);
      if (!Ok)
        return error(Loc, std::string("argument of '") + Info.Name +
                              "' must be an identifier, string, or integer, "
                              "got " +
                              T->toString());
    }
    return Ctx.getId();
  }
  case BuiltinKind::Pstring:
    if (Args[0]->kind() != MetaTypeKind::Id)
      return error(Loc, "pstring expects an identifier");
    return Ctx.getString();
  case BuiltinKind::Length:
    if (!RequireList(0))
      return Ctx.getError();
    return Ctx.getInt();
  case BuiltinKind::Map: {
    if (!Args[0]->isFunction())
      return error(Loc, "first argument of 'map' must be a function");
    const MetaType *L = RequireList(1);
    if (!L)
      return Ctx.getError();
    if (Args[0]->paramTypes().size() != 1)
      return error(Loc, "'map' function must take exactly one parameter");
    if (!MetaTypeContext::isAssignable(Args[0]->paramTypes()[0],
                                       L->listElem()))
      return error(Loc, "'map' function parameter type " +
                            Args[0]->paramTypes()[0]->toString() +
                            " does not accept list elements of type " +
                            L->listElem()->toString());
    return Ctx.getList(Args[0]->resultType());
  }
  case BuiltinKind::List: {
    if (Args.empty())
      return error(Loc, "cannot infer the element type of an empty 'list'");
    // Element type: first argument's type, widened to exp when arguments
    // mix identifiers/numbers/expressions.
    const MetaType *Elem = Args[0];
    for (const MetaType *T : Args) {
      if (MetaTypeContext::isAssignable(Elem, T))
        continue;
      if (MetaTypeContext::isAssignable(T, Elem)) {
        Elem = T;
        continue;
      }
      if (MetaTypeContext::isAssignable(Ctx.getExp(), T) &&
          MetaTypeContext::isAssignable(Ctx.getExp(), Elem)) {
        Elem = Ctx.getExp();
        continue;
      }
      return error(Loc, "'list' arguments have incompatible types " +
                            Elem->toString() + " and " + T->toString());
    }
    return Ctx.getList(Elem);
  }
  case BuiltinKind::Append: {
    const MetaType *L = RequireList(0);
    if (!L)
      return Ctx.getError();
    for (size_t I = 1; I != Args.size(); ++I) {
      const MetaType *R = RequireList(I);
      if (!R)
        return Ctx.getError();
      if (!MetaTypeContext::isAssignable(L, R) &&
          !MetaTypeContext::isAssignable(R, L))
        return error(Loc, "'append' arguments have incompatible types " +
                              L->toString() + " and " + R->toString());
      if (MetaTypeContext::isAssignable(R, L))
        L = R;
    }
    return L;
  }
  case BuiltinKind::Cons: {
    const MetaType *L = RequireList(1);
    if (!L)
      return Ctx.getError();
    if (!MetaTypeContext::isAssignable(L->listElem(), Args[0]))
      return error(Loc, "'cons' head type " + Args[0]->toString() +
                            " does not fit list of " +
                            L->listElem()->toString());
    return L;
  }
  case BuiltinKind::Nth: {
    const MetaType *L = RequireList(0);
    if (!L)
      return Ctx.getError();
    if (Args[1]->kind() != MetaTypeKind::Int &&
        Args[1]->kind() != MetaTypeKind::Num)
      return error(Loc, "'nth' index must be an integer");
    return L->listElem();
  }
  case BuiltinKind::SimpleExpression:
    if (!MetaTypeContext::isAssignable(Ctx.getExp(), Args[0]))
      return error(Loc, "simple_expression expects an expression");
    return Ctx.getInt();
  case BuiltinKind::Present:
    return Ctx.getInt();
  case BuiltinKind::MakeId:
    if (Args[0]->kind() != MetaTypeKind::String)
      return error(Loc, "make_id expects a string");
    return Ctx.getId();
  case BuiltinKind::MakeNum:
    if (Args[0]->kind() != MetaTypeKind::Int)
      return error(Loc, "make_num expects an integer");
    return Ctx.getNum();
  case BuiltinKind::PrintAst:
    return Ctx.getString();
  case BuiltinKind::MetaError:
    if (Args[0]->kind() != MetaTypeKind::String)
      return error(Loc, "meta_error expects a string");
    return Ctx.getVoid();
  case BuiltinKind::VarType:
    if (Args[0]->kind() != MetaTypeKind::Id)
      return error(Loc, "var_type expects an identifier");
    return Ctx.getTypeSpec();
  }
  return Ctx.getError();
}

//===----------------------------------------------------------------------===//
// Expression typing
//===----------------------------------------------------------------------===//

const MetaType *MetaTypeChecker::typeOfExpr(const Expr *E,
                                            const MetaScope &Scope) {
  if (!E)
    return Ctx.getError();
  switch (E->kind()) {
  case NodeKind::IntLiteralExpr:
  case NodeKind::CharLiteralExpr:
    return Ctx.getInt();
  case NodeKind::FloatLiteralExpr:
    return Ctx.getFloat();
  case NodeKind::StringLiteralExpr:
    return Ctx.getString();
  case NodeKind::IdentExpr: {
    const auto *IE = cast<IdentExpr>(E);
    if (IE->Name.isPlaceholder())
      return error(E->loc(), "placeholder outside of a code template");
    if (const MetaType *T = Scope.lookup(IE->Name.Sym))
      return T;
    if (const MetaFunction *F = Funcs.lookup(IE->Name.Sym))
      return F->Type;
    if (lookupBuiltin(IE->Name.Sym.str()))
      return error(E->loc(), "builtin '" + std::string(IE->Name.Sym.str()) +
                                 "' must be called, not referenced");
    return error(E->loc(), "undeclared meta variable '" +
                               std::string(IE->Name.Sym.str()) + "'");
  }
  case NodeKind::ParenExpr:
    return typeOfExpr(cast<ParenExpr>(E)->Inner, Scope);
  case NodeKind::UnaryExpr: {
    const auto *U = cast<UnaryExpr>(E);
    const MetaType *T = typeOfExpr(U->Operand, Scope);
    if (T->isError())
      return T;
    switch (U->Op) {
    case UnaryOpKind::Deref:
      // `*list` is the Lisp car (paper section 2).
      if (T->isList())
        return T->listElem();
      return error(E->loc(), "'*' requires a list, got " + T->toString());
    case UnaryOpKind::AddrOf:
      // "It is illegal to take the address of either a scalar or
      // structured ast value."
      if (T->isAstValued())
        return error(E->loc(),
                     "cannot take the address of an AST value");
      return error(E->loc(), "'&' is not supported in meta code");
    case UnaryOpKind::Not:
      return Ctx.getInt();
    default:
      if (T->kind() == MetaTypeKind::Int || T->kind() == MetaTypeKind::Float)
        return T;
      return error(E->loc(), std::string("unary '") + unaryOpSpelling(U->Op) +
                                 "' requires arithmetic operand, got " +
                                 T->toString());
    }
  }
  case NodeKind::BinaryExpr: {
    const auto *B = cast<BinaryExpr>(E);
    const MetaType *L = typeOfExpr(B->LHS, Scope);
    const MetaType *R = typeOfExpr(B->RHS, Scope);
    if (L->isError() || R->isError())
      return Ctx.getError();
    if (B->Op == BinaryOpKind::Comma)
      return R;
    if (isAssignmentOp(B->Op)) {
      if (B->Op == BinaryOpKind::Assign) {
        if (!MetaTypeContext::isAssignable(L, R))
          return error(E->loc(), "cannot assign " + R->toString() + " to " +
                                     L->toString());
        return L;
      }
      if (L->kind() != MetaTypeKind::Int || R->kind() != MetaTypeKind::Int)
        return error(E->loc(), "compound assignment requires integers");
      return L;
    }
    // `list + n` is the Lisp cdr-style tail (paper section 2).
    if ((B->Op == BinaryOpKind::Add || B->Op == BinaryOpKind::Sub) &&
        L->isList() && (R->kind() == MetaTypeKind::Int)) {
      return L;
    }
    // String concatenation with '+' (convenience extension, mirrored by
    // the interpreter).
    if (B->Op == BinaryOpKind::Add && L->kind() == MetaTypeKind::String &&
        R->kind() == MetaTypeKind::String)
      return Ctx.getString();
    switch (B->Op) {
    case BinaryOpKind::EQ:
    case BinaryOpKind::NE:
      // Equality is defined on all meta values (AST equality is
      // structural, identifier equality is by name).
      return Ctx.getInt();
    case BinaryOpKind::LAnd:
    case BinaryOpKind::LOr:
      return Ctx.getInt();
    case BinaryOpKind::LT:
    case BinaryOpKind::GT:
    case BinaryOpKind::LE:
    case BinaryOpKind::GE:
      if ((L->kind() == MetaTypeKind::Int || L->kind() == MetaTypeKind::Float) &&
          (R->kind() == MetaTypeKind::Int || R->kind() == MetaTypeKind::Float))
        return Ctx.getInt();
      return error(E->loc(), "relational operator requires arithmetic "
                             "operands");
    default: {
      bool LA = L->kind() == MetaTypeKind::Int || L->kind() == MetaTypeKind::Float;
      bool RA = R->kind() == MetaTypeKind::Int || R->kind() == MetaTypeKind::Float;
      if (LA && RA)
        return (L->kind() == MetaTypeKind::Float ||
                R->kind() == MetaTypeKind::Float)
                   ? Ctx.getFloat()
                   : Ctx.getInt();
      return error(E->loc(), std::string("binary '") +
                                 binaryOpSpelling(B->Op) +
                                 "' requires arithmetic operands, got " +
                                 L->toString() + " and " + R->toString());
    }
    }
  }
  case NodeKind::ConditionalExpr: {
    const auto *C = cast<ConditionalExpr>(E);
    typeOfExpr(C->Cond, Scope);
    const MetaType *T = typeOfExpr(C->Then, Scope);
    const MetaType *F = typeOfExpr(C->Else, Scope);
    if (MetaTypeContext::isAssignable(T, F))
      return T;
    if (MetaTypeContext::isAssignable(F, T))
      return F;
    return error(E->loc(), "conditional branches have incompatible types " +
                               T->toString() + " and " + F->toString());
  }
  case NodeKind::CallExpr: {
    const auto *C = cast<CallExpr>(E);
    std::vector<const MetaType *> ArgTypes;
    for (const Expr *Arg : C->Args)
      ArgTypes.push_back(typeOfExpr(Arg, Scope));
    // Builtin?
    if (const auto *Callee = dyn_cast<IdentExpr>(C->Callee)) {
      if (!Callee->Name.isPlaceholder()) {
        if (!Scope.lookup(Callee->Name.Sym)) {
          if (const BuiltinInfo *B = lookupBuiltin(Callee->Name.Sym.str()))
            return typeOfBuiltinCall(*B, ArgTypes, E->loc());
        }
      }
    }
    const MetaType *FnType = typeOfExpr(C->Callee, Scope);
    if (FnType->isError())
      return FnType;
    if (!FnType->isFunction())
      return error(E->loc(), "called object is not a meta function (type " +
                                 FnType->toString() + ")");
    const auto &Params = FnType->paramTypes();
    if (ArgTypes.size() < Params.size() ||
        (ArgTypes.size() > Params.size() && !FnType->isVariadic()))
      return error(E->loc(), "wrong number of arguments: expected " +
                                 std::to_string(Params.size()) + ", got " +
                                 std::to_string(ArgTypes.size()));
    for (size_t I = 0; I != Params.size(); ++I)
      if (!MetaTypeContext::isAssignable(Params[I], ArgTypes[I]))
        error(C->Args[I]->loc(), "argument " + std::to_string(I + 1) +
                                     " has type " + ArgTypes[I]->toString() +
                                     ", expected " + Params[I]->toString());
    return FnType->resultType();
  }
  case NodeKind::IndexExpr: {
    const auto *I = cast<IndexExpr>(E);
    const MetaType *Base = typeOfExpr(I->Base, Scope);
    const MetaType *Idx = typeOfExpr(I->Index, Scope);
    if (Base->isError())
      return Base;
    if (!Base->isList())
      return error(E->loc(), "subscripted value is not a list (type " +
                                 Base->toString() + ")");
    if (!Idx->isError() && Idx->kind() != MetaTypeKind::Int &&
        Idx->kind() != MetaTypeKind::Num)
      error(I->Index->loc(), "list index must be an integer");
    return Base->listElem();
  }
  case NodeKind::MemberExpr: {
    const auto *M = cast<MemberExpr>(E);
    const MetaType *Base = typeOfExpr(M->Base, Scope);
    if (Base->isError())
      return Base;
    if (M->Member.isPlaceholder())
      return error(E->loc(), "placeholder member names are not supported in "
                             "meta code");
    bool Known = false;
    const MetaType *T = memberType(Base, M->Member.Sym, Known);
    if (!Known)
      return error(E->loc(), "no member '" + std::string(M->Member.Sym.str()) +
                                 "' on meta value of type " + Base->toString());
    return T;
  }
  case NodeKind::BackquoteExpr:
    return cast<BackquoteExpr>(E)->Type;
  case NodeKind::LambdaExpr: {
    const auto *L = cast<LambdaExpr>(E);
    // Lambdas are typed in an extended scope; const_cast is safe because we
    // push/pop symmetrically.
    MetaScope &MutScope = const_cast<MetaScope &>(Scope);
    MetaScopeGuard Guard(MutScope);
    std::vector<const MetaType *> Params;
    for (const LambdaParam &P : L->Params) {
      MutScope.declare(P.Name, P.Type);
      Params.push_back(P.Type);
    }
    const MetaType *Body = typeOfExpr(L->Body, MutScope);
    return Ctx.getFunction(Body, std::move(Params));
  }
  case NodeKind::MacroInvocationExpr:
    // A macro invocation inside meta code produces a value of the macro's
    // declared AST type.
    return cast<MacroInvocationExpr>(E)->Inv->Def->ReturnType;
  case NodeKind::PlaceholderExpr:
    return error(E->loc(), "placeholder outside of a code template");
  default:
    return error(E->loc(), "expression form not allowed in meta code");
  }
}

//===----------------------------------------------------------------------===//
// Statement / body checking
//===----------------------------------------------------------------------===//

void MetaTypeChecker::declareFromDeclaration(const Declaration *D,
                                             MetaScope &Scope) {
  for (const InitDeclarator &ID : D->Inits) {
    if (ID.Ph || !ID.Dtor || ID.Dtor->isPlaceholder() ||
        ID.Dtor->name().isPlaceholder())
      continue;
    const MetaType *T = metaTypeFromDecl(D->Specs, ID.Dtor, Ctx);
    if (!T) {
      Diags.error(ID.Loc, "declaration in meta code must have a meta type "
                          "(@ast type, int, float, or char *)");
      T = Ctx.getError();
    }
    if (!Scope.declare(ID.Dtor->name().Sym, T))
      Diags.error(ID.Loc, "redeclaration of meta variable '" +
                              std::string(ID.Dtor->name().Sym.str()) + "'");
    if (ID.Init) {
      const MetaType *IT = typeOfExpr(ID.Init, Scope);
      if (!MetaTypeContext::isAssignable(T, IT))
        Diags.error(ID.Init->loc(), "cannot initialize " + T->toString() +
                                        " with " + IT->toString());
    }
  }
}

bool MetaTypeChecker::checkStmt(const Stmt *S, MetaScope &Scope,
                                const MetaType *ReturnType) {
  unsigned ErrorsBefore = Diags.errorCount();
  switch (S->kind()) {
  case NodeKind::CompoundStmtKind: {
    const auto *C = cast<CompoundStmt>(S);
    MetaScopeGuard Guard(Scope);
    for (const Decl *D : C->Decls) {
      if (const auto *Decl_ = dyn_cast<Declaration>(D))
        declareFromDeclaration(Decl_, Scope);
      else
        Diags.error(D->loc(), "only variable declarations are allowed in "
                              "meta code blocks");
    }
    for (const Stmt *Sub : C->Stmts)
      checkStmt(Sub, Scope, ReturnType);
    break;
  }
  case NodeKind::ExprStmt:
    typeOfExpr(cast<ExprStmt>(S)->E, Scope);
    break;
  case NodeKind::NullStmt:
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
    break;
  case NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(S);
    typeOfExpr(I->Cond, Scope);
    checkStmt(I->Then, Scope, ReturnType);
    if (I->Else)
      checkStmt(I->Else, Scope, ReturnType);
    break;
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    typeOfExpr(W->Cond, Scope);
    checkStmt(W->Body, Scope, ReturnType);
    break;
  }
  case NodeKind::DoStmt: {
    const auto *D = cast<DoStmt>(S);
    checkStmt(D->Body, Scope, ReturnType);
    typeOfExpr(D->Cond, Scope);
    break;
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    if (F->Init)
      typeOfExpr(F->Init, Scope);
    if (F->Cond)
      typeOfExpr(F->Cond, Scope);
    if (F->Step)
      typeOfExpr(F->Step, Scope);
    checkStmt(F->Body, Scope, ReturnType);
    break;
  }
  case NodeKind::SwitchStmt: {
    const auto *Sw = cast<SwitchStmt>(S);
    typeOfExpr(Sw->Cond, Scope);
    checkStmt(Sw->Body, Scope, ReturnType);
    break;
  }
  case NodeKind::CaseStmt: {
    const auto *C = cast<CaseStmt>(S);
    typeOfExpr(C->Value, Scope);
    checkStmt(C->Body, Scope, ReturnType);
    break;
  }
  case NodeKind::DefaultStmt:
    checkStmt(cast<DefaultStmt>(S)->Body, Scope, ReturnType);
    break;
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->Value) {
      if (ReturnType->kind() != MetaTypeKind::Void)
        Diags.error(S->loc(), "macro must return a value of type " +
                                  ReturnType->toString());
      break;
    }
    const MetaType *T = typeOfExpr(R->Value, Scope);
    if (!MetaTypeContext::isAssignable(ReturnType, T))
      Diags.error(R->Value->loc(),
                  "return value has type " + T->toString() +
                      " but the declared return type is " +
                      ReturnType->toString());
    break;
  }
  case NodeKind::LabelStmt:
    checkStmt(cast<LabelStmt>(S)->Body, Scope, ReturnType);
    break;
  case NodeKind::GotoStmt:
    break;
  case NodeKind::MacroInvocationStmt:
    // Allowed: expands to a statement value at the object level, but as a
    // *statement of meta code* it has no effect and is suspicious.
    Diags.warning(S->loc(), "macro invocation used as a meta statement has "
                            "no effect");
    break;
  default:
    Diags.error(S->loc(), "statement form not allowed in meta code");
    break;
  }
  return Diags.errorCount() == ErrorsBefore;
}

bool MetaTypeChecker::checkBody(const CompoundStmt *Body, MetaScope &Scope,
                                const MetaType *ReturnType) {
  unsigned ErrorsBefore = Diags.errorCount();
  checkStmt(Body, Scope, ReturnType);
  return Diags.errorCount() == ErrorsBefore;
}
