//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The macro language's "additional primitive functions" (paper section 2).
/// This header declares their *signatures*, shared between the meta type
/// checker (which types calls to them at macro definition time) and the
/// interpreter (which implements them in interp/Builtins.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_META_BUILTINS_H
#define MSQ_META_BUILTINS_H

#include "support/StringInterner.h"
#include "types/MetaType.h"

namespace msq {

enum class BuiltinKind : unsigned char {
  Gensym,           ///< gensym([string]) -> @id — fresh identifier
  ConcatIds,        ///< concat_ids(@id, @id, ...) -> @id
  Symbolconc,       ///< symbolconc(string|@id ...) -> @id
  Pstring,          ///< pstring(@id) -> string — identifier's spelling
  Length,           ///< length(T[]) -> int
  Map,              ///< map(fn(T)->U, T[]) -> U[]
  List,             ///< list(T, T, ...) -> T[]
  Append,           ///< append(T[], T[]) -> T[]
  Cons,             ///< cons(T, T[]) -> T[]
  Nth,              ///< nth(T[], int) -> T
  SimpleExpression, ///< simple_expression(@exp) -> int — id or literal?
  Present,          ///< present(optional-binder) -> int
  MakeId,           ///< make_id(string) -> @id
  MakeNum,          ///< make_num(int) -> @num
  PrintAst,         ///< print_ast(ast) -> string — debugging aid
  MetaError,        ///< meta_error(string) -> void — definition-site error
  VarType,          ///< var_type(@id) -> @typespec — declared type of an
                    ///< object-level variable (semantic-macro preview,
                    ///< paper section 5's future work)
};

/// Resolved signature information for one builtin.
struct BuiltinInfo {
  BuiltinKind Kind;
  const char *Name;
  /// Minimum argument count.
  unsigned MinArgs;
  /// Maximum argument count (UINT_MAX for variadic).
  unsigned MaxArgs;
};

/// Looks a builtin up by name; nullptr when \p Name is not a builtin.
const BuiltinInfo *lookupBuiltin(std::string_view Name);

/// Total number of builtins (for table-driven tests).
size_t numBuiltins();
/// Builtin table accessor by index.
const BuiltinInfo &builtinByIndex(size_t I);

} // namespace msq

#endif // MSQ_META_BUILTINS_H
