//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The meta-level type checker. Runs at macro *definition* time: it types
/// placeholder expressions during template parsing (via typeOfExpr, called
/// by the Parser's placeholder co-routine) and re-checks whole macro and
/// meta-function bodies after parsing, including that every `return`
/// produces the macro's declared AST type. This is the mechanism behind
/// the paper's central guarantee: "full type checking during macro
/// processing guarantees syntactically valid transformations."
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_META_METATYPECHECK_H
#define MSQ_META_METATYPECHECK_H

#include "ast/Ast.h"
#include "meta/Builtins.h"
#include "meta/MetaScope.h"
#include "support/Diagnostics.h"
#include "types/MetaType.h"

namespace msq {

class MetaTypeChecker {
public:
  MetaTypeChecker(MetaTypeContext &Ctx, DiagnosticsEngine &Diags,
                  const MetaFunctionRegistry &Funcs)
      : Ctx(Ctx), Diags(Diags), Funcs(Funcs) {}

  /// Computes the meta-type of the meta-level expression \p E under
  /// \p Scope. Diagnoses and returns the Error type on failure.
  const MetaType *typeOfExpr(const Expr *E, const MetaScope &Scope);

  /// Checks a macro or meta-function body. Formals must already be bound in
  /// \p Scope (a fresh inner scope is pushed for the body itself).
  /// \returns true when no errors were found.
  bool checkBody(const CompoundStmt *Body, MetaScope &Scope,
                 const MetaType *ReturnType);

  /// Type of AST member access `Base->Member` (or `.`); the paper's
  /// "predefined member names for extracting components of ASTs". Sets
  /// \p Known to false when the member is not defined for \p Base.
  const MetaType *memberType(const MetaType *Base, Symbol Member,
                             bool &Known);

  /// Derives the meta-type declared by a (meta-level) declaration's
  /// specifier + declarator. Returns nullptr when the declaration does not
  /// denote a representable meta type (then it is object-level C).
  static const MetaType *metaTypeFromDecl(const DeclSpecs &Specs,
                                          const Declarator *Dtor,
                                          MetaTypeContext &Ctx);

  /// Result type of calling builtin \p Info with \p ArgTypes; diagnoses
  /// arity or type errors at \p Loc.
  const MetaType *typeOfBuiltinCall(const BuiltinInfo &Info,
                                    const std::vector<const MetaType *> &Args,
                                    SourceLoc Loc);

private:
  const MetaType *error(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    return Ctx.getError();
  }

  bool checkStmt(const Stmt *S, MetaScope &Scope, const MetaType *ReturnType);
  void declareFromDeclaration(const Declaration *D, MetaScope &Scope);

  MetaTypeContext &Ctx;
  DiagnosticsEngine &Diags;
  const MetaFunctionRegistry &Funcs;
};

} // namespace msq

#endif // MSQ_META_METATYPECHECK_H
