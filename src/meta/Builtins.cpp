//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "meta/Builtins.h"

#include <climits>

using namespace msq;

static const BuiltinInfo BuiltinTable[] = {
    {BuiltinKind::Gensym, "gensym", 0, 1},
    {BuiltinKind::ConcatIds, "concat_ids", 2, UINT_MAX},
    {BuiltinKind::Symbolconc, "symbolconc", 1, UINT_MAX},
    {BuiltinKind::Pstring, "pstring", 1, 1},
    {BuiltinKind::Length, "length", 1, 1},
    {BuiltinKind::Map, "map", 2, 2},
    {BuiltinKind::List, "list", 0, UINT_MAX},
    {BuiltinKind::Append, "append", 2, UINT_MAX},
    {BuiltinKind::Cons, "cons", 2, 2},
    {BuiltinKind::Nth, "nth", 2, 2},
    {BuiltinKind::SimpleExpression, "simple_expression", 1, 1},
    {BuiltinKind::Present, "present", 1, 1},
    {BuiltinKind::MakeId, "make_id", 1, 1},
    {BuiltinKind::MakeNum, "make_num", 1, 1},
    {BuiltinKind::PrintAst, "print_ast", 1, 1},
    {BuiltinKind::MetaError, "meta_error", 1, 1},
    {BuiltinKind::VarType, "var_type", 1, 1},
};

const BuiltinInfo *msq::lookupBuiltin(std::string_view Name) {
  for (const BuiltinInfo &B : BuiltinTable)
    if (Name == B.Name)
      return &B;
  return nullptr;
}

size_t msq::numBuiltins() {
  return sizeof(BuiltinTable) / sizeof(BuiltinTable[0]);
}

const BuiltinInfo &msq::builtinByIndex(size_t I) {
  assert(I < numBuiltins() && "builtin index out of range");
  return BuiltinTable[I];
}
