//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// msq-lint: definition-time static analysis of `syntax` macros and meta
/// functions. The meta-type checker already rejects outright type errors at
/// definition time (paper section 4); the linter covers the latent-bug
/// space the checker accepts, with stable rule ids:
///
///   MSQ001 unused-binder          pattern binder never read by the body
///   MSQ002 unreachable-alternative guard/separator token indistinguishable
///                                  from the following pattern token
///   MSQ003 capture                 non-hygienic template declares a plain
///                                  identifier around spliced user code
///   MSQ004 opt-unguarded           optional binder spliced without a
///                                  present() guard can never unify when
///                                  absent
///   MSQ005 meta-recursion          expansion-call-graph cycle with no
///                                  conditional to bound it
///
/// Findings are plain values (no DiagnosticsEngine coupling) so batch
/// drivers can deduplicate them across units and servers can ship them as
/// JSON.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_ANALYSIS_LINT_H
#define MSQ_ANALYSIS_LINT_H

#include "meta/MetaScope.h"
#include "support/SourceManager.h"

#include <string>
#include <string_view>
#include <vector>

namespace msq {

enum class LintSeverity : unsigned char { Warning, Error };

/// One lint finding. Locations are pre-resolved to file/line/column so the
/// finding stays meaningful outside the SourceManager that produced it
/// (cache replay, server responses, batch merges).
struct LintDiagnostic {
  std::string Rule; ///< stable id, e.g. "MSQ001"
  LintSeverity Severity = LintSeverity::Warning;
  std::string File;
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Macro; ///< definition the finding is about
  std::string Message;
  unsigned Count = 1; ///< >1 after cross-unit deduplication

  friend bool operator==(const LintDiagnostic &A, const LintDiagnostic &B) {
    return A.Rule == B.Rule && A.Severity == B.Severity && A.File == B.File &&
           A.Line == B.Line && A.Column == B.Column && A.Macro == B.Macro &&
           A.Message == B.Message;
  }
};

/// Static description of one rule, for --list-rules and docs.
struct LintRuleInfo {
  const char *Id;
  const char *Name;
  const char *Summary;
};

/// All rules, in id order.
const std::vector<LintRuleInfo> &lintRules();

/// Lint configuration. Participates in Engine::stateFingerprint — cached
/// expansions keyed under one configuration are never replayed under
/// another.
struct LintOptions {
  bool Enabled = false; ///< run the linter during expandSource
  bool Werror = false;  ///< report findings as errors
  /// Rule ids to suppress ("MSQ003", ...).
  std::vector<std::string> DisabledRules;
  /// Whether expansion will run hygienically. Hygienic renaming prevents
  /// the capture MSQ003 warns about, so the rule only fires when false.
  bool Hygienic = true;

  bool ruleEnabled(std::string_view Id) const {
    for (const std::string &D : DisabledRules)
      if (D == Id)
        return false;
    return true;
  }
};

/// The findings for one lint run.
struct LintReport {
  std::vector<LintDiagnostic> Findings;

  bool clean() const { return Findings.empty(); }
  unsigned countOf(LintSeverity Sev) const {
    unsigned N = 0;
    for (const LintDiagnostic &D : Findings)
      if (D.Severity == Sev)
        N += D.Count;
    return N;
  }

  /// "file:line:col: severity: message [RULE]" lines, with a repeat count
  /// suffix for deduplicated findings.
  std::string renderText() const;
  /// {"findings":[...],"warnings":N,"errors":N}
  std::string toJson() const;
};

/// Lints every macro and meta function registered in \p Macros / \p Funcs,
/// in deterministic (location, name) order. Definitions living in buffers
/// with id < \p FirstBufferId are skipped — callers pass the first
/// user-unit buffer id to exclude stdlib/library definitions.
LintReport lintDefinitions(const MacroRegistry &Macros,
                           const MetaFunctionRegistry &Funcs,
                           const SourceManager &SM, const LintOptions &LO,
                           uint32_t FirstBufferId = 0);

/// Batch post-processing (satellite of the batch driver): collapses
/// identical findings (same rule, location, message) into one entry with a
/// count, then sorts by (file, line, column, rule, macro, message).
void normalizeLintFindings(std::vector<LintDiagnostic> &Findings);

/// Renders findings as a JSON array (shared by LintReport::toJson, the
/// batch driver's metricsJson, and the server protocol).
std::string lintFindingsJson(const std::vector<LintDiagnostic> &Findings);

} // namespace msq

#endif // MSQ_ANALYSIS_LINT_H
