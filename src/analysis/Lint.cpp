//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "ast/Ast.h"
#include "lexer/TokenKinds.h"
#include "pattern/Pattern.h"
#include "support/Casting.h"
#include "support/Metrics.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

using namespace msq;

//===----------------------------------------------------------------------===//
// Rule table
//===----------------------------------------------------------------------===//

const std::vector<LintRuleInfo> &msq::lintRules() {
  static const std::vector<LintRuleInfo> Rules = {
      {"MSQ001", "unused-binder",
       "a pattern binder is never read by the macro body"},
      {"MSQ002", "unreachable-alternative",
       "an optional guard or repetition separator is indistinguishable from "
       "the pattern token that follows, so one alternative can never match"},
      {"MSQ003", "capture",
       "a template expanded without hygiene declares a plain identifier "
       "around spliced user code, which may capture user references"},
      {"MSQ004", "opt-unguarded",
       "an optional binder is spliced into a template without a present() "
       "guard; when absent its value can never unify with the template slot"},
      {"MSQ005", "meta-recursion",
       "macros and meta functions form an expansion cycle with no "
       "conditional to bound the recursion"},
  };
  return Rules;
}

//===----------------------------------------------------------------------===//
// Generic AST walk
//===----------------------------------------------------------------------===//

namespace {

/// Pre-order walk over the full node hierarchy, including the corners a
/// naive walk misses: placeholder meta-expressions, backquote templates and
/// their general-form MatchValue constituents, declarator suffixes,
/// tag-type bodies, and macro-invocation arguments.
class AstWalker {
public:
  std::function<void(const Node *)> OnNode;
  std::function<void(const Ident &)> OnIdent;
  std::function<void(const Placeholder *)> OnPlaceholder;

  void walk(const Node *N) {
    if (!N)
      return;
    if (OnNode)
      OnNode(N);
    switch (N->kind()) {
    case NodeKind::IntLiteralExpr:
    case NodeKind::FloatLiteralExpr:
    case NodeKind::CharLiteralExpr:
    case NodeKind::StringLiteralExpr:
    case NodeKind::NullStmt:
    case NodeKind::BreakStmt:
    case NodeKind::ContinueStmt:
    case NodeKind::BuiltinTypeSpecKind:
    case NodeKind::TypedefNameSpecKind:
    case NodeKind::MetaAstTypeSpecKind:
      break;
    case NodeKind::IdentExpr:
      ident(cast<IdentExpr>(N)->Name);
      break;
    case NodeKind::ParenExpr:
      walk(cast<ParenExpr>(N)->Inner);
      break;
    case NodeKind::InitListExpr:
      for (const Expr *E : cast<InitListExpr>(N)->Elems)
        walk(E);
      break;
    case NodeKind::UnaryExpr:
      walk(cast<UnaryExpr>(N)->Operand);
      break;
    case NodeKind::BinaryExpr:
      walk(cast<BinaryExpr>(N)->LHS);
      walk(cast<BinaryExpr>(N)->RHS);
      break;
    case NodeKind::ConditionalExpr:
      walk(cast<ConditionalExpr>(N)->Cond);
      walk(cast<ConditionalExpr>(N)->Then);
      walk(cast<ConditionalExpr>(N)->Else);
      break;
    case NodeKind::CastExpr:
      walk(cast<CastExpr>(N)->Ty.Spec);
      walk(cast<CastExpr>(N)->Operand);
      break;
    case NodeKind::SizeofExpr:
      walk(cast<SizeofExpr>(N)->Operand);
      walk(cast<SizeofExpr>(N)->Ty.Spec);
      break;
    case NodeKind::CallExpr:
      walk(cast<CallExpr>(N)->Callee);
      for (const Expr *E : cast<CallExpr>(N)->Args)
        walk(E);
      break;
    case NodeKind::IndexExpr:
      walk(cast<IndexExpr>(N)->Base);
      walk(cast<IndexExpr>(N)->Index);
      break;
    case NodeKind::MemberExpr:
      walk(cast<MemberExpr>(N)->Base);
      ident(cast<MemberExpr>(N)->Member);
      break;
    case NodeKind::PlaceholderExpr:
      placeholder(cast<PlaceholderExpr>(N)->Ph);
      break;
    case NodeKind::MacroInvocationExpr:
      invocation(cast<MacroInvocationExpr>(N)->Inv);
      break;
    case NodeKind::BackquoteExpr:
      walk(cast<BackquoteExpr>(N)->Template);
      matchValue(cast<BackquoteExpr>(N)->TemplateMV);
      break;
    case NodeKind::LambdaExpr:
      walk(cast<LambdaExpr>(N)->Body);
      break;
    case NodeKind::CompoundStmtKind:
      for (const Decl *D : cast<CompoundStmt>(N)->Decls)
        walk(D);
      for (const Stmt *S : cast<CompoundStmt>(N)->Stmts)
        walk(S);
      break;
    case NodeKind::ExprStmt:
      walk(cast<ExprStmt>(N)->E);
      break;
    case NodeKind::IfStmt:
      walk(cast<IfStmt>(N)->Cond);
      walk(cast<IfStmt>(N)->Then);
      walk(cast<IfStmt>(N)->Else);
      break;
    case NodeKind::WhileStmt:
      walk(cast<WhileStmt>(N)->Cond);
      walk(cast<WhileStmt>(N)->Body);
      break;
    case NodeKind::DoStmt:
      walk(cast<DoStmt>(N)->Body);
      walk(cast<DoStmt>(N)->Cond);
      break;
    case NodeKind::ForStmt:
      walk(cast<ForStmt>(N)->Init);
      walk(cast<ForStmt>(N)->Cond);
      walk(cast<ForStmt>(N)->Step);
      walk(cast<ForStmt>(N)->Body);
      break;
    case NodeKind::SwitchStmt:
      walk(cast<SwitchStmt>(N)->Cond);
      walk(cast<SwitchStmt>(N)->Body);
      break;
    case NodeKind::CaseStmt:
      walk(cast<CaseStmt>(N)->Value);
      walk(cast<CaseStmt>(N)->Body);
      break;
    case NodeKind::DefaultStmt:
      walk(cast<DefaultStmt>(N)->Body);
      break;
    case NodeKind::LabelStmt:
      ident(cast<LabelStmt>(N)->Label);
      walk(cast<LabelStmt>(N)->Body);
      break;
    case NodeKind::GotoStmt:
      ident(cast<GotoStmt>(N)->Label);
      break;
    case NodeKind::ReturnStmt:
      walk(cast<ReturnStmt>(N)->Value);
      break;
    case NodeKind::PlaceholderStmt:
      placeholder(cast<PlaceholderStmt>(N)->Ph);
      break;
    case NodeKind::MacroInvocationStmt:
      invocation(cast<MacroInvocationStmt>(N)->Inv);
      break;
    case NodeKind::DeclarationKind: {
      const auto *D = cast<Declaration>(N);
      walk(D->Specs.Type);
      for (const InitDeclarator &ID : D->Inits)
        initDeclarator(ID);
      placeholder(D->DeclListPh);
      break;
    }
    case NodeKind::FunctionDefKind: {
      const auto *F = cast<FunctionDef>(N);
      walk(F->Specs.Type);
      declarator(F->Dtor);
      for (const Declaration *KR : F->KRDecls)
        walk(KR);
      walk(F->Body);
      break;
    }
    case NodeKind::PlaceholderDecl:
      placeholder(cast<PlaceholderDeclNode>(N)->Ph);
      break;
    case NodeKind::MacroInvocationDecl:
      invocation(cast<MacroInvocationDecl>(N)->Inv);
      break;
    case NodeKind::MetaDeclKind:
      walk(cast<MetaDecl>(N)->Inner);
      break;
    case NodeKind::MacroDefKind:
      walk(cast<MacroDef>(N)->Body);
      break;
    case NodeKind::TranslationUnitKind:
      for (const Decl *D : cast<TranslationUnit>(N)->Items)
        walk(D);
      break;
    case NodeKind::TagTypeSpecKind: {
      const auto *T = cast<TagTypeSpec>(N);
      ident(T->TagName);
      for (const Declaration *M : T->Members)
        walk(M);
      for (const Enumerator &E : T->Enums) {
        ident(E.Name);
        walk(E.Value);
        placeholder(E.ListPh);
      }
      break;
    }
    case NodeKind::PlaceholderTypeSpecKind:
      placeholder(cast<PlaceholderTypeSpec>(N)->Ph);
      break;
    }
  }

  void ident(const Ident &I) {
    if (!I.valid())
      return;
    if (OnIdent)
      OnIdent(I);
    placeholder(I.Ph);
  }

  void placeholder(const Placeholder *Ph) {
    if (!Ph)
      return;
    if (OnPlaceholder)
      OnPlaceholder(Ph);
    walk(Ph->MetaExpr);
  }

  void declarator(const Declarator *D) {
    if (!D)
      return;
    placeholder(D->Ph);
    ident(D->Name);
    declarator(D->Inner);
    for (const DeclSuffix &S : D->Suffixes) {
      walk(S.ArraySize);
      for (const ParamDecl *P : S.Params) {
        if (!P)
          continue;
        walk(P->Specs.Type);
        declarator(P->Dtor);
      }
      for (const Ident &KR : S.KRNames)
        ident(KR);
    }
  }

  void initDeclarator(const InitDeclarator &ID) {
    placeholder(ID.Ph);
    declarator(ID.Dtor);
    walk(ID.Init);
  }

  void matchValue(const MatchValue *MV) {
    if (!MV)
      return;
    switch (MV->K) {
    case MatchValue::Ast:
      walk(MV->AstNode);
      break;
    case MatchValue::IdentV:
      ident(MV->Id);
      break;
    case MatchValue::DeclaratorV:
      declarator(MV->Dtor);
      break;
    case MatchValue::InitDeclV:
      if (MV->InitDtor)
        initDeclarator(*MV->InitDtor);
      break;
    case MatchValue::EnumeratorV:
      if (MV->Enum) {
        ident(MV->Enum->Name);
        walk(MV->Enum->Value);
        placeholder(MV->Enum->ListPh);
      }
      break;
    case MatchValue::List:
    case MatchValue::Tuple:
      for (const MatchValue *E : MV->Elems)
        matchValue(E);
      break;
    case MatchValue::Absent:
      break;
    }
  }

  void invocation(const MacroInvocation *Inv) {
    if (!Inv)
      return;
    for (const MacroArg &A : Inv->Args)
      matchValue(A.Value);
  }
};

//===----------------------------------------------------------------------===//
// Linter
//===----------------------------------------------------------------------===//

/// Spelling of a guard/separator token for messages.
std::string tokenSpelling(TokenKind K, Symbol Sym) {
  if (Sym.valid())
    return std::string(Sym.str());
  return tokenKindSpelling(K);
}

struct CallGraphNode {
  SourceLoc Loc;
  bool IsMacro = false;
  bool HasConditional = false;
  std::vector<Symbol> Callees;
};

class Linter {
public:
  Linter(const MacroRegistry &Macros, const MetaFunctionRegistry &Funcs,
         const SourceManager &SM, const LintOptions &LO,
         uint32_t FirstBufferId)
      : Macros(Macros), Funcs(Funcs), SM(SM), LO(LO),
        FirstBufferId(FirstBufferId) {}

  LintReport run();

private:
  bool inScope(SourceLoc Loc) const {
    uint32_t Id = Loc.bufferId();
    if (Id == 0 || Id > SM.numBuffers() || Id < FirstBufferId)
      return false;
    // Internal buffers ("<msq-stdlib>", ...) are never linted: their
    // definitions are not the user's to fix, and skipping them lets
    // expandSource lint every user/library definition without a curated
    // buffer-id threshold.
    std::string_view Name = SM.bufferName(Id);
    return Name.empty() || Name.front() != '<';
  }

  void addFinding(const char *Rule, SourceLoc Loc, Symbol Macro,
                  std::string Message) {
    if (!LO.ruleEnabled(Rule))
      return;
    LintDiagnostic D;
    D.Rule = Rule;
    D.Severity = LO.Werror ? LintSeverity::Error : LintSeverity::Warning;
    PresumedLoc P = SM.presumed(Loc);
    D.File = std::string(P.Filename);
    D.Line = P.Line;
    D.Column = P.Column;
    D.Macro = std::string(Macro.str());
    D.Message = std::move(Message);
    Report.Findings.push_back(std::move(D));
  }

  void lintMacro(const MacroDef *M);
  void checkUnusedBinders(const MacroDef *M);
  void checkUnreachableAlternatives(const MacroDef *M, const Pattern &P);
  void checkCapture(Symbol Name, const CompoundStmt *Body);
  void checkOptUnguarded(const MacroDef *M);
  void checkMetaRecursion();

  CallGraphNode buildCallGraphNode(const Node *Body, bool IsMacro,
                                   SourceLoc Loc);

  const MacroRegistry &Macros;
  const MetaFunctionRegistry &Funcs;
  const SourceManager &SM;
  const LintOptions &LO;
  uint32_t FirstBufferId;
  LintReport Report;
};

//===----------------------------------------------------------------------===//
// MSQ001 unused-binder
//===----------------------------------------------------------------------===//

void Linter::checkUnusedBinders(const MacroDef *M) {
  std::set<Symbol> Used;
  AstWalker W;
  W.OnIdent = [&](const Ident &I) {
    if (I.Sym.valid())
      Used.insert(I.Sym);
  };
  W.walk(M->Body);
  for (const PatternElement &E : M->Pat->Elements) {
    if (E.K != PatternElement::Binder)
      continue;
    if (!Used.count(E.Name))
      addFinding("MSQ001", E.Loc, M->Name,
                 "pattern binder '" + std::string(E.Name.str()) +
                     "' is never used in the body of macro '" +
                     std::string(M->Name.str()) + "'");
  }
}

//===----------------------------------------------------------------------===//
// MSQ002 unreachable-alternative
//===----------------------------------------------------------------------===//

void Linter::checkUnreachableAlternatives(const MacroDef *M,
                                          const Pattern &P) {
  for (size_t I = 0; I != P.Elements.size(); ++I) {
    const PatternElement &E = P.Elements[I];
    if (E.K != PatternElement::Binder)
      continue;
    // Recurse into tuple sub-patterns.
    const PSpec *T = E.Spec->K == PSpec::Tuple ? E.Spec
                     : (E.Spec->Inner && E.Spec->Inner->K == PSpec::Tuple)
                         ? E.Spec->Inner
                         : nullptr;
    if (T && T->Sub)
      checkUnreachableAlternatives(M, *T->Sub);
    if (!E.Spec->hasSep())
      continue;
    const PatternElement *Follow =
        I + 1 < P.Elements.size() ? &P.Elements[I + 1] : nullptr;
    if (!Follow || Follow->K != PatternElement::Token)
      continue;
    bool SameToken = Follow->Tok == E.Spec->Sep &&
                     (!E.Spec->SepSym.valid() ||
                      E.Spec->SepSym == Follow->TokSym);
    if (!SameToken)
      continue;
    std::string Tok = tokenSpelling(E.Spec->Sep, E.Spec->SepSym);
    if (E.Spec->K == PSpec::Opt)
      addFinding("MSQ002", E.Loc, M->Name,
                 "optional guard token '" + Tok +
                     "' is identical to the pattern token that follows "
                     "binder '" +
                     std::string(E.Name.str()) +
                     "'; the absent alternative is unreachable");
    else if (E.Spec->K == PSpec::Plus || E.Spec->K == PSpec::Star)
      addFinding("MSQ002", E.Loc, M->Name,
                 "repetition separator '" + Tok +
                     "' is identical to the pattern token that follows "
                     "binder '" +
                     std::string(E.Name.str()) +
                     "'; the repetition can never stop at that token");
  }
}

//===----------------------------------------------------------------------===//
// MSQ003 capture
//===----------------------------------------------------------------------===//

void Linter::checkCapture(Symbol Name, const CompoundStmt *Body) {
  if (LO.Hygienic)
    return; // hygienic renaming prevents the capture this rule warns about
  // Find every backquote template in the body; inside each, look for plain
  // (non-placeholder, non-gensym) declared identifiers coexisting with
  // placeholders that splice user code.
  std::vector<const BackquoteExpr *> Templates;
  AstWalker Finder;
  Finder.OnNode = [&](const Node *N) {
    if (const auto *B = dyn_cast<BackquoteExpr>(N))
      Templates.push_back(B);
  };
  Finder.walk(Body);

  for (const BackquoteExpr *B : Templates) {
    std::vector<std::pair<Symbol, SourceLoc>> Declared;
    bool HasPlaceholders = false;
    AstWalker W;
    W.OnPlaceholder = [&](const Placeholder *) { HasPlaceholders = true; };
    W.OnNode = [&](const Node *N) {
      if (const auto *D = dyn_cast<Declaration>(N)) {
        for (const InitDeclarator &ID : D->Inits)
          if (ID.Dtor && !ID.Dtor->isPlaceholder() &&
              ID.Dtor->name().Sym.valid())
            Declared.emplace_back(ID.Dtor->name().Sym, ID.Dtor->name().Loc);
      } else if (const auto *L = dyn_cast<LabelStmt>(N)) {
        if (L->Label.Sym.valid())
          Declared.emplace_back(L->Label.Sym, L->Label.Loc);
      }
    };
    W.walk(B->Template);
    W.matchValue(B->TemplateMV);
    if (!HasPlaceholders)
      continue;
    for (const auto &[Sym, Loc] : Declared)
      addFinding("MSQ003", Loc.valid() ? Loc : B->loc(), Name,
                 "template declares identifier '" + std::string(Sym.str()) +
                     "' without hygiene; it may capture references in code "
                     "spliced by placeholders (use gensym or hygienic "
                     "expansion)");
  }
}

//===----------------------------------------------------------------------===//
// MSQ004 opt-unguarded
//===----------------------------------------------------------------------===//

void Linter::checkOptUnguarded(const MacroDef *M) {
  std::set<Symbol> OptBinders;
  for (const PatternElement &E : M->Pat->Elements)
    if (E.K == PatternElement::Binder && E.Spec->K == PSpec::Opt)
      OptBinders.insert(E.Name);
  if (OptBinders.empty())
    return;

  std::set<Symbol> Guarded;
  std::map<Symbol, SourceLoc> Spliced;
  AstWalker W;
  W.OnNode = [&](const Node *N) {
    const auto *C = dyn_cast<CallExpr>(N);
    if (!C)
      return;
    const auto *Callee = dyn_cast_or_null<IdentExpr>(C->Callee);
    if (!Callee || Callee->Name.Sym.str() != "present")
      return;
    for (const Expr *A : C->Args)
      if (const auto *Arg = dyn_cast_or_null<IdentExpr>(A))
        if (Arg->Name.Sym.valid())
          Guarded.insert(Arg->Name.Sym);
  };
  W.OnPlaceholder = [&](const Placeholder *Ph) {
    AstWalker Inner;
    Inner.OnIdent = [&](const Ident &I) {
      if (I.Sym.valid())
        Spliced.emplace(I.Sym, Ph->Loc.valid() ? Ph->Loc : SourceLoc());
    };
    Inner.walk(Ph->MetaExpr);
  };
  W.walk(M->Body);

  for (const auto &[Sym, Loc] : Spliced) {
    if (!OptBinders.count(Sym) || Guarded.count(Sym))
      continue;
    addFinding("MSQ004", Loc.valid() ? Loc : M->loc(), M->Name,
               "optional binder '" + std::string(Sym.str()) +
                   "' is spliced into a template but never guarded with "
                   "present(" +
                   std::string(Sym.str()) +
                   "); when absent its value can never unify with the "
                   "template slot");
  }
}

//===----------------------------------------------------------------------===//
// MSQ005 meta-recursion
//===----------------------------------------------------------------------===//

CallGraphNode Linter::buildCallGraphNode(const Node *Body, bool IsMacro,
                                         SourceLoc Loc) {
  CallGraphNode CG;
  CG.Loc = Loc;
  CG.IsMacro = IsMacro;
  std::set<Symbol> Callees;
  AstWalker W;
  W.OnNode = [&](const Node *N) {
    switch (N->kind()) {
    case NodeKind::IfStmt:
    case NodeKind::SwitchStmt:
    case NodeKind::ConditionalExpr:
    case NodeKind::WhileStmt:
    case NodeKind::DoStmt:
    case NodeKind::ForStmt:
      CG.HasConditional = true;
      break;
    case NodeKind::MacroInvocationExpr:
      if (const auto *D = cast<MacroInvocationExpr>(N)->Inv->Def)
        Callees.insert(D->Name);
      break;
    case NodeKind::MacroInvocationStmt:
      if (const auto *D = cast<MacroInvocationStmt>(N)->Inv->Def)
        Callees.insert(D->Name);
      break;
    case NodeKind::MacroInvocationDecl:
      if (const auto *D = cast<MacroInvocationDecl>(N)->Inv->Def)
        Callees.insert(D->Name);
      break;
    case NodeKind::CallExpr: {
      const auto *Callee =
          dyn_cast_or_null<IdentExpr>(cast<CallExpr>(N)->Callee);
      if (Callee && Callee->Name.Sym.valid() &&
          (Funcs.lookup(Callee->Name.Sym) || Macros.lookup(Callee->Name.Sym)))
        Callees.insert(Callee->Name.Sym);
      break;
    }
    default:
      break;
    }
  };
  W.walk(Body);
  CG.Callees.assign(Callees.begin(), Callees.end());
  std::sort(CG.Callees.begin(), CG.Callees.end());
  return CG;
}

void Linter::checkMetaRecursion() {
  // The graph spans all definitions (library included) so cycles through
  // library helpers are still found; reporting is scoped below.
  std::map<Symbol, CallGraphNode> Graph;
  for (const auto &[Name, Def] : Macros)
    Graph.emplace(Name, buildCallGraphNode(Def->Body, true, Def->loc()));
  for (const auto &[Name, F] : Funcs)
    if (F.Def)
      Graph.emplace(Name, buildCallGraphNode(F.Def->Body, false,
                                             F.Def->loc()));

  // Iterative DFS with an explicit path; each discovered cycle is
  // canonicalised (rotated to its smallest member) for deduplication.
  std::set<Symbol> Done;
  std::set<std::string> Reported;
  std::vector<Symbol> Path;
  std::set<Symbol> OnPath;

  std::function<void(Symbol)> Visit = [&](Symbol Name) {
    auto It = Graph.find(Name);
    if (It == Graph.end())
      return;
    Path.push_back(Name);
    OnPath.insert(Name);
    for (Symbol Callee : It->second.Callees) {
      if (OnPath.count(Callee)) {
        // Extract the cycle Callee -> ... -> Name -> Callee.
        auto Start = std::find(Path.begin(), Path.end(), Callee);
        std::vector<Symbol> Cycle(Start, Path.end());
        // Canonical rotation: smallest member first.
        auto Min = std::min_element(Cycle.begin(), Cycle.end());
        std::rotate(Cycle.begin(), Min, Cycle.end());
        std::string Key;
        bool Conditional = false;
        for (Symbol S : Cycle) {
          Key += std::string(S.str()) + ";";
          Conditional |= Graph[S].HasConditional;
        }
        if (Conditional || !Reported.insert(Key).second)
          continue;
        // Report at the smallest in-scope member.
        Symbol At;
        for (Symbol S : Cycle)
          if (inScope(Graph[S].Loc)) {
            At = S;
            break;
          }
        if (!At.valid())
          continue;
        std::string Chain;
        for (Symbol S : Cycle)
          Chain += std::string(S.str()) + " -> ";
        Chain += std::string(Cycle.front().str());
        const CallGraphNode &CG = Graph[At];
        addFinding("MSQ005", CG.Loc, At,
                   std::string(CG.IsMacro ? "macro '" : "meta function '") +
                       std::string(At.str()) +
                       "' participates in the expansion cycle " + Chain +
                       " with no conditional to bound the recursion");
        continue;
      }
      if (!Done.count(Callee))
        Visit(Callee);
    }
    OnPath.erase(Name);
    Path.pop_back();
    Done.insert(Name);
  };

  for (const auto &[Name, CG] : Graph)
    if (!Done.count(Name))
      Visit(Name);
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

void Linter::lintMacro(const MacroDef *M) {
  checkUnusedBinders(M);
  checkUnreachableAlternatives(M, *M->Pat);
  checkCapture(M->Name, M->Body);
  checkOptUnguarded(M);
}

LintReport Linter::run() {
  // Deterministic order: definitions sorted by (buffer, offset, name).
  std::vector<const MacroDef *> Defs;
  for (const auto &[Name, Def] : Macros)
    if (inScope(Def->loc()))
      Defs.push_back(Def);
  std::sort(Defs.begin(), Defs.end(),
            [](const MacroDef *A, const MacroDef *B) {
              if (A->loc().bufferId() != B->loc().bufferId())
                return A->loc().bufferId() < B->loc().bufferId();
              if (A->loc().offset() != B->loc().offset())
                return A->loc().offset() < B->loc().offset();
              return A->Name < B->Name;
            });
  for (const MacroDef *M : Defs)
    lintMacro(M);

  std::vector<const MetaFunction *> MFs;
  for (const auto &[Name, F] : Funcs)
    if (F.Def && inScope(F.Def->loc()))
      MFs.push_back(&F);
  std::sort(MFs.begin(), MFs.end(),
            [](const MetaFunction *A, const MetaFunction *B) {
              if (A->Def->loc().bufferId() != B->Def->loc().bufferId())
                return A->Def->loc().bufferId() < B->Def->loc().bufferId();
              if (A->Def->loc().offset() != B->Def->loc().offset())
                return A->Def->loc().offset() < B->Def->loc().offset();
              return A->Name < B->Name;
            });
  for (const MetaFunction *F : MFs)
    checkCapture(F->Name, F->Def->Body);

  checkMetaRecursion();
  normalizeLintFindings(Report.Findings);
  return std::move(Report);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

LintReport msq::lintDefinitions(const MacroRegistry &Macros,
                                const MetaFunctionRegistry &Funcs,
                                const SourceManager &SM,
                                const LintOptions &LO,
                                uint32_t FirstBufferId) {
  if (!LO.Enabled)
    return {};
  return Linter(Macros, Funcs, SM, LO, FirstBufferId).run();
}

void msq::normalizeLintFindings(std::vector<LintDiagnostic> &Findings) {
  auto Less = [](const LintDiagnostic &A, const LintDiagnostic &B) {
    if (A.File != B.File)
      return A.File < B.File;
    if (A.Line != B.Line)
      return A.Line < B.Line;
    if (A.Column != B.Column)
      return A.Column < B.Column;
    if (A.Rule != B.Rule)
      return A.Rule < B.Rule;
    if (A.Macro != B.Macro)
      return A.Macro < B.Macro;
    return A.Message < B.Message;
  };
  std::stable_sort(Findings.begin(), Findings.end(), Less);
  std::vector<LintDiagnostic> Out;
  for (LintDiagnostic &D : Findings) {
    if (!Out.empty() && Out.back() == D)
      Out.back().Count += D.Count;
    else
      Out.push_back(std::move(D));
  }
  Findings = std::move(Out);
}

static const char *severityName(LintSeverity Sev) {
  return Sev == LintSeverity::Error ? "error" : "warning";
}

std::string LintReport::renderText() const {
  std::string Out;
  for (const LintDiagnostic &D : Findings) {
    if (D.Line != 0) {
      Out += D.File;
      Out += ':';
      Out += std::to_string(D.Line);
      Out += ':';
      Out += std::to_string(D.Column);
      Out += ": ";
    }
    Out += severityName(D.Severity);
    Out += ": ";
    Out += D.Message;
    Out += " [";
    Out += D.Rule;
    Out += ']';
    if (D.Count > 1)
      Out += " (x" + std::to_string(D.Count) + ")";
    Out += '\n';
  }
  return Out;
}

std::string msq::lintFindingsJson(const std::vector<LintDiagnostic> &Findings) {
  std::string Out = "[";
  bool First = true;
  for (const LintDiagnostic &D : Findings) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"rule\":\"" + jsonEscape(D.Rule) + "\"";
    Out += ",\"severity\":\"";
    Out += severityName(D.Severity);
    Out += "\"";
    Out += ",\"file\":\"" + jsonEscape(D.File) + "\"";
    Out += ",\"line\":" + std::to_string(D.Line);
    Out += ",\"col\":" + std::to_string(D.Column);
    Out += ",\"macro\":\"" + jsonEscape(D.Macro) + "\"";
    Out += ",\"message\":\"" + jsonEscape(D.Message) + "\"";
    Out += ",\"count\":" + std::to_string(D.Count);
    Out += '}';
  }
  Out += ']';
  return Out;
}

std::string LintReport::toJson() const {
  std::string Out = "{\"findings\":";
  Out += lintFindingsJson(Findings);
  Out += ",\"warnings\":" + std::to_string(countOf(LintSeverity::Warning));
  Out += ",\"errors\":" + std::to_string(countOf(LintSeverity::Error));
  Out += '}';
  return Out;
}
