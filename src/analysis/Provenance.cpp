//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Provenance.h"

#include "support/Metrics.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace msq;

void ProvenanceTracker::appendBacktrace(std::string &Out, uint32_t Frame,
                                        const SourceManager &SM) const {
  while (Frame != 0) {
    const ProvenanceFrame &F = frame(Frame);
    Out += "note: in expansion of macro '";
    Out += F.Macro.str();
    Out += "' (invoked at ";
    PresumedLoc P = SM.presumed(F.InvokedAt);
    if (P.Line != 0) {
      Out += P.Filename;
      Out += ':';
      Out += std::to_string(P.Line);
      Out += ':';
      Out += std::to_string(P.Column);
    } else {
      Out += "<unknown>";
    }
    Out += ", depth ";
    Out += std::to_string(F.Depth);
    Out += ")\n";
    Frame = F.Parent;
  }
}

std::string msq::renderDiagnosticsWithBacktrace(const DiagnosticsEngine &Diags,
                                                size_t First,
                                                const ProvenanceTracker &Prov) {
  const SourceManager &SM = Diags.sourceManager();
  std::string Out;
  const std::vector<Diagnostic> &All = Diags.all();
  for (size_t I = First; I < All.size(); ++I) {
    const Diagnostic &D = All[I];
    // Reuse the engine's own rendering for the diagnostic line itself so the
    // two renderers can never drift apart.
    std::ostringstream OS;
    PresumedLoc P = SM.presumed(D.Loc);
    if (P.Line != 0)
      OS << P.Filename << ':' << P.Line << ':' << P.Column << ": ";
    switch (D.Severity) {
    case DiagSeverity::Note:
      OS << "note";
      break;
    case DiagSeverity::Warning:
      OS << "warning";
      break;
    case DiagSeverity::Error:
      OS << "error";
      break;
    }
    OS << ": " << D.Message << '\n';
    Out += OS.str();
    if (D.ProvFrame != 0 && D.ProvFrame <= Prov.numFrames())
      Prov.appendBacktrace(Out, D.ProvFrame, SM);
  }
  return Out;
}

std::string msq::sourceMapJson(
    const std::vector<std::pair<unsigned, uint32_t>> &LineProvenance,
    const ProvenanceTracker &Prov, const SourceManager &SM) {
  // Collect every referenced frame plus its ancestors, in id order, so a
  // consumer can resolve parent chains without the tracker.
  std::map<uint32_t, const ProvenanceFrame *> Used;
  for (const auto &LP : LineProvenance) {
    uint32_t Id = LP.second;
    while (Id != 0 && Id <= Prov.numFrames() && !Used.count(Id)) {
      const ProvenanceFrame &F = Prov.frame(Id);
      Used.emplace(Id, &F);
      Id = F.Parent;
    }
  }

  std::string Out = "{\"version\":1,\"frames\":[";
  bool FirstEntry = true;
  for (const auto &[Id, F] : Used) {
    if (!FirstEntry)
      Out += ',';
    FirstEntry = false;
    PresumedLoc P = SM.presumed(F->InvokedAt);
    Out += "{\"id\":" + std::to_string(Id);
    Out += ",\"macro\":\"" + jsonEscape(std::string(F->Macro.str())) + "\"";
    Out += ",\"file\":\"" + jsonEscape(std::string(P.Filename)) + "\"";
    Out += ",\"line\":" + std::to_string(P.Line);
    Out += ",\"col\":" + std::to_string(P.Column);
    Out += ",\"depth\":" + std::to_string(F->Depth);
    Out += ",\"parent\":" + std::to_string(F->Parent);
    Out += '}';
  }
  Out += "],\"lines\":[";
  FirstEntry = true;
  for (const auto &[Line, Frame] : LineProvenance) {
    if (Frame == 0 || Frame > Prov.numFrames())
      continue;
    if (!FirstEntry)
      Out += ',';
    FirstEntry = false;
    Out += "{\"line\":" + std::to_string(Line) +
           ",\"frame\":" + std::to_string(Frame) + '}';
  }
  Out += "]}";
  return Out;
}
