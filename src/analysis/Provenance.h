//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expansion provenance: which macro invocation produced which output.
///
/// The expander pushes one ProvenanceFrame per macro invocation (nested
/// invocations chain through Parent), stamps the frame id onto every node a
/// macro body produces, and points DiagnosticsEngine::setProvenanceFrame at
/// the current frame so diagnostics raised while a macro runs — or while
/// its produced code is re-expanded — carry an "in expansion of" backtrace.
/// Frame id 0 is reserved for "written directly by the user".
///
/// The printer records (output line, frame id) pairs via
/// PrintOptions::LineProvenance; sourceMapJson turns those plus the frame
/// table into a JSON source map from output lines back to invocation sites.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_ANALYSIS_PROVENANCE_H
#define MSQ_ANALYSIS_PROVENANCE_H

#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace msq {

/// One macro invocation on the expansion stack.
struct ProvenanceFrame {
  Symbol Macro;        ///< name of the invoked macro
  SourceLoc InvokedAt; ///< where the invocation was written
  uint32_t Parent = 0; ///< enclosing invocation's frame id (0 = top level)
  uint32_t Depth = 1;  ///< nesting depth (top-level invocation = 1)
};

/// Records the invocation tree of one expansion. Frames are never popped
/// from storage — only the "current" cursor moves — so diagnostics and
/// stamped nodes can refer to frames long after the invocation returned.
class ProvenanceTracker {
public:
  /// Enters an invocation of \p Macro written at \p InvokedAt; the new
  /// frame's parent is the current frame. Returns the new frame id.
  uint32_t push(Symbol Macro, SourceLoc InvokedAt) {
    ProvenanceFrame F;
    F.Macro = Macro;
    F.InvokedAt = InvokedAt;
    F.Parent = Cur;
    F.Depth = Cur ? Frames[Cur - 1].Depth + 1 : 1;
    Frames.push_back(F);
    Cur = uint32_t(Frames.size());
    return Cur;
  }

  /// Leaves the current invocation, restoring its parent as current.
  void pop() {
    assert(Cur != 0 && "provenance pop without matching push");
    Cur = Frames[Cur - 1].Parent;
  }

  /// Frame id of the innermost invocation being expanded (0 = none).
  uint32_t current() const { return Cur; }

  /// Total frames recorded (valid ids are 1..numFrames()).
  size_t numFrames() const { return Frames.size(); }

  const ProvenanceFrame &frame(uint32_t Id) const {
    assert(Id >= 1 && Id <= Frames.size() && "bad provenance frame id");
    return Frames[Id - 1];
  }

  /// Appends one "note: in expansion of macro 'X' (invoked at
  /// file:line:col, depth N)" line per frame from \p Frame outward
  /// (innermost first) to \p Out.
  void appendBacktrace(std::string &Out, uint32_t Frame,
                       const SourceManager &SM) const;

private:
  std::vector<ProvenanceFrame> Frames;
  uint32_t Cur = 0;
};

/// Renders diagnostics starting at index \p First exactly like
/// DiagnosticsEngine::renderFrom, but follows every diagnostic reported
/// inside a macro expansion with its invocation backtrace. Lives here (not
/// in support) so the diagnostics engine stays ignorant of the tracker.
std::string renderDiagnosticsWithBacktrace(const DiagnosticsEngine &Diags,
                                           size_t First,
                                           const ProvenanceTracker &Prov);

/// Builds the JSON source map for one unit's printed output.
/// \p LineProvenance holds (1-based output line, frame id) pairs collected
/// by the printer; only lines produced by macros appear. The map has a
/// "frames" table (one entry per referenced frame, parents included) and a
/// "lines" array mapping output lines to frame ids.
std::string sourceMapJson(
    const std::vector<std::pair<unsigned, uint32_t>> &LineProvenance,
    const ProvenanceTracker &Prov, const SourceManager &SM);

} // namespace msq

#endif // MSQ_ANALYSIS_PROVENANCE_H
