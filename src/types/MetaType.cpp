//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "types/MetaType.h"

#include <sstream>

using namespace msq;

static const char *scalarName(MetaTypeKind K) {
  switch (K) {
  case MetaTypeKind::Exp:
    return "exp";
  case MetaTypeKind::Stmt:
    return "stmt";
  case MetaTypeKind::Decl:
    return "decl";
  case MetaTypeKind::Id:
    return "id";
  case MetaTypeKind::Num:
    return "num";
  case MetaTypeKind::TypeSpec:
    return "typespec";
  case MetaTypeKind::Declarator:
    return "declarator";
  case MetaTypeKind::InitDeclarator:
    return "init_declarator";
  case MetaTypeKind::Enumerator:
    return "enumerator";
  case MetaTypeKind::Param:
    return "param";
  case MetaTypeKind::Int:
    return "int";
  case MetaTypeKind::Float:
    return "float";
  case MetaTypeKind::String:
    return "string";
  case MetaTypeKind::Void:
    return "void";
  case MetaTypeKind::Error:
    return "<error>";
  default:
    return "<structured>";
  }
}

bool MetaType::equals(const MetaType *A, const MetaType *B) {
  if (A == B)
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case MetaTypeKind::List:
    return equals(A->Elem, B->Elem);
  case MetaTypeKind::Tuple: {
    if (A->Fields.size() != B->Fields.size())
      return false;
    for (size_t I = 0; I != A->Fields.size(); ++I)
      if (!equals(A->Fields[I], B->Fields[I]))
        return false;
    return true;
  }
  case MetaTypeKind::Function: {
    if (A->Variadic != B->Variadic || A->Fields.size() != B->Fields.size())
      return false;
    if (!equals(A->Elem, B->Elem))
      return false;
    for (size_t I = 0; I != A->Fields.size(); ++I)
      if (!equals(A->Fields[I], B->Fields[I]))
        return false;
    return true;
  }
  default:
    return true; // scalars of equal kind
  }
}

std::string MetaType::toString() const {
  std::ostringstream OS;
  switch (Kind) {
  case MetaTypeKind::List:
    OS << Elem->toString() << "[]";
    break;
  case MetaTypeKind::Tuple: {
    OS << "@{";
    for (size_t I = 0; I != Fields.size(); ++I) {
      if (I)
        OS << ", ";
      if (FieldNames[I].valid())
        OS << FieldNames[I].str() << ": ";
      OS << Fields[I]->toString();
    }
    OS << '}';
    break;
  }
  case MetaTypeKind::Function: {
    OS << "fn(";
    for (size_t I = 0; I != Fields.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Fields[I]->toString();
    }
    if (Variadic)
      OS << (Fields.empty() ? "..." : ", ...");
    OS << ") -> " << Elem->toString();
    break;
  }
  case MetaTypeKind::Int:
  case MetaTypeKind::Float:
  case MetaTypeKind::String:
  case MetaTypeKind::Void:
  case MetaTypeKind::Error:
    OS << scalarName(Kind);
    break;
  default:
    OS << '@' << scalarName(Kind);
    break;
  }
  return OS.str();
}

MetaTypeContext::MetaTypeContext() {
  Scalars.resize(size_t(MetaTypeKind::Error) + 1, nullptr);
}

const MetaType *MetaTypeContext::getScalar(MetaTypeKind K) {
  assert(K != MetaTypeKind::List && K != MetaTypeKind::Tuple &&
         K != MetaTypeKind::Function && "not a scalar kind");
  size_t I = size_t(K);
  if (!Scalars[I])
    Scalars[I] = new (TypeArena.allocate(sizeof(MetaType), alignof(MetaType)))
        MetaType(K);
  return Scalars[I];
}

const MetaType *MetaTypeContext::getList(const MetaType *Elem) {
  for (MetaType *L : Lists)
    if (MetaType::equals(L->Elem, Elem))
      return L;
  MetaType *L = new (TypeArena.allocate(sizeof(MetaType), alignof(MetaType)))
      MetaType(MetaTypeKind::List);
  L->Elem = Elem;
  Lists.push_back(L);
  return L;
}

const MetaType *
MetaTypeContext::getTuple(std::vector<const MetaType *> Fields,
                          std::vector<Symbol> Names) {
  assert(Fields.size() == Names.size() && "field/name arity mismatch");
  MetaType *T = new (TypeArena.allocate(sizeof(MetaType), alignof(MetaType)))
      MetaType(MetaTypeKind::Tuple);
  T->Fields = std::move(Fields);
  T->FieldNames = std::move(Names);
  Others.push_back(T);
  return T;
}

const MetaType *
MetaTypeContext::getFunction(const MetaType *Result,
                             std::vector<const MetaType *> Params,
                             bool Variadic) {
  MetaType *T = new (TypeArena.allocate(sizeof(MetaType), alignof(MetaType)))
      MetaType(MetaTypeKind::Function);
  T->Elem = Result;
  T->Fields = std::move(Params);
  T->Variadic = Variadic;
  Others.push_back(T);
  return T;
}

const MetaType *MetaTypeContext::scalarByName(std::string_view Name) {
  if (Name == "exp")
    return getScalar(MetaTypeKind::Exp);
  if (Name == "stmt")
    return getScalar(MetaTypeKind::Stmt);
  if (Name == "decl")
    return getScalar(MetaTypeKind::Decl);
  if (Name == "id")
    return getScalar(MetaTypeKind::Id);
  if (Name == "num")
    return getScalar(MetaTypeKind::Num);
  if (Name == "typespec" || Name == "type_spec")
    return getScalar(MetaTypeKind::TypeSpec);
  if (Name == "declarator")
    return getScalar(MetaTypeKind::Declarator);
  if (Name == "init_declarator")
    return getScalar(MetaTypeKind::InitDeclarator);
  if (Name == "enumerator")
    return getScalar(MetaTypeKind::Enumerator);
  if (Name == "param")
    return getScalar(MetaTypeKind::Param);
  return nullptr;
}

bool MetaTypeContext::isAssignable(const MetaType *To, const MetaType *From) {
  if (!To || !From)
    return false;
  if (To->isError() || From->isError())
    return true;
  if (MetaType::equals(To, From))
    return true;
  // `num` and `id` AST values are expressions.
  if (To->kind() == MetaTypeKind::Exp &&
      (From->kind() == MetaTypeKind::Num || From->kind() == MetaTypeKind::Id))
    return true;
  // An identifier can stand where a declarator is expected (Figure 2's
  // bottom row: the identifier becomes a direct-declarator).
  if (To->kind() == MetaTypeKind::Declarator &&
      From->kind() == MetaTypeKind::Id)
    return true;
  // Lists are element-wise covariant.
  if (To->isList() && From->isList())
    return isAssignable(To->listElem(), From->listElem());
  return false;
}
