//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The macro language's type system (paper section 2, "The AST Type
/// Language"). Primitive AST types are `id`, `stmt`, `decl`, `exp`, `num`,
/// and `typespec`; the paper's Figure 2 additionally types placeholders as
/// `declarator`, `init-declarator`, and `init-declarator[]`, so those (plus
/// `enumerator` and `param`) are primitives here too. Combining forms are
/// lists (declared with C array syntax) and tuples (declared with C struct
/// syntax). Meta-computation also uses ordinary C `int`, `float`,
/// and `char*` (string) values, and function types for the builtins and for
/// the paper's experimental anonymous functions.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_TYPES_METATYPE_H
#define MSQ_TYPES_METATYPE_H

#include "support/Arena.h"
#include "support/StringInterner.h"

#include <string>
#include <vector>

namespace msq {

enum class MetaTypeKind : unsigned char {
  // AST-valued scalars.
  Exp,
  Stmt,
  Decl,
  Id,
  Num,
  TypeSpec,
  Declarator,
  InitDeclarator,
  Enumerator,
  Param,
  // Plain computation values.
  Int,
  Float,
  String,
  Void,
  // Combining forms.
  List,
  Tuple,
  Function,
  // Produced after a diagnosed error; compatible with everything to
  // suppress cascades.
  Error,
};

/// An immutable meta-level type. Scalar types are uniqued by the
/// MetaTypeContext; structured types compare structurally via equals().
class MetaType {
public:
  MetaTypeKind kind() const { return Kind; }

  bool isAstScalar() const {
    return Kind >= MetaTypeKind::Exp && Kind <= MetaTypeKind::Param;
  }
  bool isAstValued() const {
    return isAstScalar() || Kind == MetaTypeKind::List ||
           Kind == MetaTypeKind::Tuple;
  }
  bool isList() const { return Kind == MetaTypeKind::List; }
  bool isTuple() const { return Kind == MetaTypeKind::Tuple; }
  bool isFunction() const { return Kind == MetaTypeKind::Function; }
  bool isError() const { return Kind == MetaTypeKind::Error; }

  /// For List: element type.
  const MetaType *listElem() const {
    assert(isList() && "not a list type");
    return Elem;
  }

  /// For Tuple: field types (field I of the tuple has type fields()[I]).
  const std::vector<const MetaType *> &tupleFields() const {
    assert(isTuple() && "not a tuple type");
    return Fields;
  }
  /// For Tuple: field names, parallel to tupleFields(). A field name may be
  /// the invalid Symbol for positional (pattern-derived) tuples.
  const std::vector<Symbol> &tupleFieldNames() const {
    assert(isTuple() && "not a tuple type");
    return FieldNames;
  }

  /// For Function: result type.
  const MetaType *resultType() const {
    assert(isFunction() && "not a function type");
    return Elem;
  }
  /// For Function: parameter types.
  const std::vector<const MetaType *> &paramTypes() const {
    assert(isFunction() && "not a function type");
    return Fields;
  }
  /// For Function: true when extra trailing arguments are accepted
  /// (builtins such as `list` and `concat_ids`).
  bool isVariadic() const {
    assert(isFunction() && "not a function type");
    return Variadic;
  }

  /// Structural equality.
  static bool equals(const MetaType *A, const MetaType *B);

  /// Renders the type using the paper's surface syntax, e.g. "@stmt",
  /// "@id[]", "int", "@{id, exp}".
  std::string toString() const;

private:
  friend class MetaTypeContext;
  explicit MetaType(MetaTypeKind Kind) : Kind(Kind) {}

  MetaTypeKind Kind;
  const MetaType *Elem = nullptr;            // List element / Function result
  std::vector<const MetaType *> Fields;      // Tuple fields / Function params
  std::vector<Symbol> FieldNames;            // Tuple field names
  bool Variadic = false;                     // Function variadicity
};

/// Creates and uniques MetaTypes. Scalar types and lists of scalars are
/// uniqued so pointer equality usually works; always use MetaType::equals
/// for semantic comparison.
class MetaTypeContext {
public:
  MetaTypeContext();

  const MetaType *getScalar(MetaTypeKind K);
  const MetaType *getExp() { return getScalar(MetaTypeKind::Exp); }
  const MetaType *getStmt() { return getScalar(MetaTypeKind::Stmt); }
  const MetaType *getDecl() { return getScalar(MetaTypeKind::Decl); }
  const MetaType *getId() { return getScalar(MetaTypeKind::Id); }
  const MetaType *getNum() { return getScalar(MetaTypeKind::Num); }
  const MetaType *getTypeSpec() { return getScalar(MetaTypeKind::TypeSpec); }
  const MetaType *getInt() { return getScalar(MetaTypeKind::Int); }
  const MetaType *getFloat() { return getScalar(MetaTypeKind::Float); }
  const MetaType *getString() { return getScalar(MetaTypeKind::String); }
  const MetaType *getVoid() { return getScalar(MetaTypeKind::Void); }
  const MetaType *getError() { return getScalar(MetaTypeKind::Error); }

  const MetaType *getList(const MetaType *Elem);
  const MetaType *getTuple(std::vector<const MetaType *> Fields,
                           std::vector<Symbol> Names);
  const MetaType *getFunction(const MetaType *Result,
                              std::vector<const MetaType *> Params,
                              bool Variadic = false);

  /// Maps a surface name ("exp", "stmt", "init_declarator", ...) to its
  /// scalar kind. Returns nullptr for unknown names.
  const MetaType *scalarByName(std::string_view Name);

  /// True when a value of type \p From may appear where \p To is expected.
  /// `num` and `id` values are expressions, so they satisfy `exp`; lists
  /// are element-wise covariant; Error satisfies everything.
  static bool isAssignable(const MetaType *To, const MetaType *From);

private:
  Arena TypeArena;
  std::vector<MetaType *> Scalars; // indexed by MetaTypeKind
  std::vector<MetaType *> Lists;   // uniqued lazily
  std::vector<MetaType *> Others;  // tuples & functions (not uniqued)
};

} // namespace msq

#endif // MSQ_TYPES_METATYPE_H
