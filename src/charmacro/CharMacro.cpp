//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "charmacro/CharMacro.h"

using namespace msq;

void CharMacroProcessor::define(std::string Name,
                                std::vector<std::string> Params,
                                std::string Body) {
  for (Def &D : Macros) {
    if (D.Name == Name) {
      D.Params = std::move(Params);
      D.Body = std::move(Body);
      return;
    }
  }
  Macros.push_back({std::move(Name), std::move(Params), std::move(Body)});
}

void CharMacroProcessor::undefine(const std::string &Name) {
  for (size_t I = 0; I != Macros.size(); ++I) {
    if (Macros[I].Name == Name) {
      Macros.erase(Macros.begin() + I);
      return;
    }
  }
}

/// Splits `(a, b, c)` starting at the '(' at \p Pos; returns one-past the
/// closing ')' or std::string::npos on imbalance. Purely character-level:
/// no token or string-literal awareness.
static size_t splitArgs(const std::string &Text, size_t Pos,
                        std::vector<std::string> &Args) {
  if (Pos >= Text.size() || Text[Pos] != '(')
    return std::string::npos;
  unsigned Depth = 1;
  std::string Current;
  for (size_t I = Pos + 1; I < Text.size(); ++I) {
    char C = Text[I];
    if (C == '(') {
      ++Depth;
      Current.push_back(C);
      continue;
    }
    if (C == ')') {
      --Depth;
      if (Depth == 0) {
        Args.push_back(Current);
        return I + 1;
      }
      Current.push_back(C);
      continue;
    }
    if (C == ',' && Depth == 1) {
      Args.push_back(Current);
      Current.clear();
      continue;
    }
    Current.push_back(C);
  }
  return std::string::npos;
}

/// Replaces every occurrence of \p From in \p Text by \p To —
/// substring-level, exactly the hazard character macros carry.
static std::string replaceAll(std::string Text, const std::string &From,
                              const std::string &To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

bool CharMacroProcessor::processOnce(const std::string &In,
                                     std::string &Out) const {
  bool Changed = false;
  Out.clear();
  size_t I = 0;
  while (I < In.size()) {
    bool Matched = false;
    for (const Def &D : Macros) {
      if (In.compare(I, D.Name.size(), D.Name) != 0)
        continue;
      size_t After = I + D.Name.size();
      if (D.Params.empty()) {
        Out += D.Body;
        I = After;
        Matched = true;
        Changed = true;
        ++LastSubstitutions;
        break;
      }
      std::vector<std::string> Args;
      size_t End = splitArgs(In, After, Args);
      if (End == std::string::npos || Args.size() != D.Params.size())
        continue;
      std::string Body = D.Body;
      for (size_t P = 0; P != D.Params.size(); ++P)
        Body = replaceAll(Body, D.Params[P], Args[P]);
      Out += Body;
      I = End;
      Matched = true;
      Changed = true;
      ++LastSubstitutions;
      break;
    }
    if (!Matched) {
      Out.push_back(In[I]);
      ++I;
    }
  }
  return Changed;
}

std::string CharMacroProcessor::process(const std::string &Text) const {
  LastSubstitutions = 0;
  std::string Current = Text;
  std::string Next;
  // Bounded rescanning: character macros famously diverge on
  // self-referential definitions.
  for (unsigned Pass = 0; Pass != 16; ++Pass) {
    if (!processOnce(Current, Next))
      break;
    std::swap(Current, Next);
  }
  return Current;
}
