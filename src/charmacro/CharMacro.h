//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A character-level macro processor in the spirit of GPM / pre-ANSI CPP
/// (the paper's Figure 1 "Character" column). It transforms streams of
/// characters into streams of characters with no knowledge of tokens, let
/// alone syntax — it will happily rewrite inside identifiers and string
/// literals, which the Figure-1 benchmark demonstrates.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_CHARMACRO_CHARMACRO_H
#define MSQ_CHARMACRO_CHARMACRO_H

#include <string>
#include <vector>

namespace msq {

/// A character-level macro: occurrences of `Name(arg1, ..., argN)` (or the
/// bare `Name` when the macro has no parameters) are replaced by Body with
/// each parameter name substituted textually.
class CharMacroProcessor {
public:
  void define(std::string Name, std::vector<std::string> Params,
              std::string Body);
  void undefine(const std::string &Name);

  /// Expands all macros; rescans substituted text up to a bounded number of
  /// passes (character macros have no recursion guard by nature).
  std::string process(const std::string &Text) const;

  size_t macroCount() const { return Macros.size(); }
  /// Total substitutions performed by the last process() call.
  size_t lastSubstitutionCount() const { return LastSubstitutions; }

private:
  struct Def {
    std::string Name;
    std::vector<std::string> Params;
    std::string Body;
  };
  /// One pass; returns true if anything was rewritten.
  bool processOnce(const std::string &In, std::string &Out) const;

  std::vector<Def> Macros;
  mutable size_t LastSubstitutions = 0;
};

} // namespace msq

#endif // MSQ_CHARMACRO_CHARMACRO_H
