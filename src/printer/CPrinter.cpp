//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "printer/CPrinter.h"

#include "pattern/Pattern.h"

#include <sstream>

using namespace msq;

namespace {

/// Expression precedence levels; higher binds tighter.
enum Prec : int {
  PrecComma = 0,
  PrecAssign = 1,
  PrecCond = 2,
  PrecLOr = 3,
  PrecLAnd = 4,
  PrecBitOr = 5,
  PrecBitXor = 6,
  PrecBitAnd = 7,
  PrecEq = 8,
  PrecRel = 9,
  PrecShift = 10,
  PrecAdd = 11,
  PrecMul = 12,
  PrecCast = 13,
  PrecUnary = 14,
  PrecPostfix = 15,
  PrecPrimary = 16,
};

int binaryPrec(BinaryOpKind K) {
  switch (K) {
  case BinaryOpKind::Comma:
    return PrecComma;
  case BinaryOpKind::Assign:
  case BinaryOpKind::MulAssign:
  case BinaryOpKind::DivAssign:
  case BinaryOpKind::RemAssign:
  case BinaryOpKind::AddAssign:
  case BinaryOpKind::SubAssign:
  case BinaryOpKind::ShlAssign:
  case BinaryOpKind::ShrAssign:
  case BinaryOpKind::AndAssign:
  case BinaryOpKind::XorAssign:
  case BinaryOpKind::OrAssign:
    return PrecAssign;
  case BinaryOpKind::LOr:
    return PrecLOr;
  case BinaryOpKind::LAnd:
    return PrecLAnd;
  case BinaryOpKind::BitOr:
    return PrecBitOr;
  case BinaryOpKind::BitXor:
    return PrecBitXor;
  case BinaryOpKind::BitAnd:
    return PrecBitAnd;
  case BinaryOpKind::EQ:
  case BinaryOpKind::NE:
    return PrecEq;
  case BinaryOpKind::LT:
  case BinaryOpKind::GT:
  case BinaryOpKind::LE:
  case BinaryOpKind::GE:
    return PrecRel;
  case BinaryOpKind::Shl:
  case BinaryOpKind::Shr:
    return PrecShift;
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
    return PrecAdd;
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div:
  case BinaryOpKind::Rem:
    return PrecMul;
  }
  return PrecPrimary;
}

class Printer {
public:
  explicit Printer(const PrintOptions &Opts) : Opts(Opts) {}

  std::string take() {
    std::string Out = OS.str();
    emitLineProvenance(Out);
    return Out;
  }

  void printDecl(const Decl *D, unsigned Indent);
  void printStmt(const Stmt *S, unsigned Indent);
  void printExprPrec(const Expr *E, int MinPrec);
  void printTypeSpec(const TypeSpecNode *T, unsigned Indent);
  void printDeclaratorInner(const Declarator *D);
  void printSpecs(const DeclSpecs &Specs, unsigned Indent);
  void printIdent(const Ident &I);
  void printPlaceholder(const Placeholder *Ph);
  void printInvocation(const MacroInvocation *Inv, unsigned Indent);
  void printMatchValue(const MatchValue *V, const PSpec *Spec,
                       unsigned Indent);
  void printStringLiteral(std::string_view S);
  void printPattern(const Pattern &P);
  void printPSpec(const PSpec *S);
  void printPatternToken(TokenKind K, Symbol Sym);

  void indent(unsigned Indent) {
    for (unsigned I = 0; I != Indent * Opts.IndentWidth; ++I)
      OS << ' ';
  }

  /// Records the provenance stamp of a node about to print at the current
  /// output position (no-op unless the caller collects line provenance).
  void noteProvenance(const Node *N) {
    if (Opts.LineProvenance && N && N->prov() != 0)
      OffsetProv.emplace_back(size_t(OS.tellp()), N->prov());
  }

private:
  /// Converts the recorded (offset, frame) pairs to (line, frame) pairs,
  /// keeping the first record per output line.
  void emitLineProvenance(const std::string &Out) {
    if (!Opts.LineProvenance || OffsetProv.empty())
      return;
    size_t Pos = 0;
    unsigned Line = 1, LastLine = 0;
    for (const auto &[Off, Frame] : OffsetProv) {
      for (; Pos < Off && Pos < Out.size(); ++Pos)
        if (Out[Pos] == '\n')
          ++Line;
      if (Line != LastLine) {
        Opts.LineProvenance->emplace_back(Line, Frame);
        LastLine = Line;
      }
    }
  }

  const PrintOptions &Opts;
  std::ostringstream OS;
  /// (byte offset, provenance frame) pairs in output order.
  std::vector<std::pair<size_t, uint32_t>> OffsetProv;
};

void Printer::printStringLiteral(std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '"':
      OS << "\\\"";
      break;
    case '\0':
      OS << "\\0";
      break;
    default:
      OS << C;
      break;
    }
  }
  OS << '"';
}

void Printer::printIdent(const Ident &I) {
  if (I.isPlaceholder()) {
    printPlaceholder(I.Ph);
    return;
  }
  OS << I.Sym.str();
}

void Printer::printPlaceholder(const Placeholder *Ph) {
  if (!Opts.AllowPlaceholders) {
    OS << "/*unexpanded placeholder*/";
    return;
  }
  OS << '$';
  if (const auto *IE = dyn_cast<IdentExpr>(Ph->MetaExpr)) {
    if (!IE->Name.isPlaceholder()) {
      OS << IE->Name.Sym.str();
      return;
    }
  }
  OS << '(';
  printExprPrec(Ph->MetaExpr, PrecComma);
  OS << ')';
}

void Printer::printExprPrec(const Expr *E, int MinPrec) {
  if (!E) {
    OS << "/*null*/";
    return;
  }
  switch (E->kind()) {
  case NodeKind::IntLiteralExpr:
    OS << cast<IntLiteralExpr>(E)->Value;
    return;
  case NodeKind::FloatLiteralExpr: {
    std::ostringstream Tmp;
    Tmp << cast<FloatLiteralExpr>(E)->Value;
    std::string S = Tmp.str();
    OS << S;
    // Ensure the token re-lexes as a float.
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos && S.find("inf") == std::string::npos)
      OS << ".0";
    return;
  }
  case NodeKind::CharLiteralExpr: {
    int64_t V = cast<CharLiteralExpr>(E)->Value;
    OS << '\'';
    char C = char(V);
    switch (C) {
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\'':
      OS << "\\'";
      break;
    case '\0':
      OS << "\\0";
      break;
    default:
      OS << C;
      break;
    }
    OS << '\'';
    return;
  }
  case NodeKind::StringLiteralExpr:
    printStringLiteral(cast<StringLiteralExpr>(E)->Value.str());
    return;
  case NodeKind::IdentExpr:
    printIdent(cast<IdentExpr>(E)->Name);
    return;
  case NodeKind::ParenExpr:
    OS << '(';
    printExprPrec(cast<ParenExpr>(E)->Inner, PrecComma);
    OS << ')';
    return;
  case NodeKind::InitListExpr: {
    const auto *IL = cast<InitListExpr>(E);
    OS << '{';
    for (size_t I = 0; I != IL->Elems.size(); ++I) {
      if (I)
        OS << ", ";
      printExprPrec(IL->Elems[I], PrecAssign);
    }
    OS << '}';
    return;
  }
  case NodeKind::PlaceholderExpr:
    printPlaceholder(cast<PlaceholderExpr>(E)->Ph);
    return;
  case NodeKind::UnaryExpr: {
    const auto *U = cast<UnaryExpr>(E);
    bool Paren = PrecUnary < MinPrec;
    if (Paren)
      OS << '(';
    if (U->isPostfix()) {
      printExprPrec(U->Operand, PrecPostfix);
      OS << unaryOpSpelling(U->Op);
    } else {
      OS << unaryOpSpelling(U->Op);
      // Guard `- -x` and `& &x` from fusing into `--x` / `&&x`.
      if (const auto *Inner = dyn_cast<UnaryExpr>(U->Operand)) {
        if (Inner->Op == U->Op &&
            (U->Op == UnaryOpKind::Minus || U->Op == UnaryOpKind::Plus ||
             U->Op == UnaryOpKind::AddrOf))
          OS << ' ';
      }
      printExprPrec(U->Operand, PrecUnary);
    }
    if (Paren)
      OS << ')';
    return;
  }
  case NodeKind::BinaryExpr: {
    const auto *B = cast<BinaryExpr>(E);
    int P = binaryPrec(B->Op);
    bool Paren = P < MinPrec;
    if (Paren)
      OS << '(';
    bool RightAssoc = isAssignmentOp(B->Op);
    printExprPrec(B->LHS, RightAssoc ? P + 1 : P);
    if (B->Op == BinaryOpKind::Comma)
      OS << ", ";
    else
      OS << ' ' << binaryOpSpelling(B->Op) << ' ';
    printExprPrec(B->RHS, RightAssoc ? P : P + 1);
    if (Paren)
      OS << ')';
    return;
  }
  case NodeKind::ConditionalExpr: {
    const auto *C = cast<ConditionalExpr>(E);
    bool Paren = PrecCond < MinPrec;
    if (Paren)
      OS << '(';
    printExprPrec(C->Cond, PrecCond + 1);
    OS << " ? ";
    printExprPrec(C->Then, PrecComma);
    OS << " : ";
    printExprPrec(C->Else, PrecCond);
    if (Paren)
      OS << ')';
    return;
  }
  case NodeKind::CastExpr: {
    const auto *C = cast<CastExpr>(E);
    bool Paren = PrecCast < MinPrec;
    if (Paren)
      OS << '(';
    OS << '(';
    printTypeSpec(C->Ty.Spec, 0);
    for (unsigned I = 0; I != C->Ty.PointerDepth; ++I)
      OS << " *";
    OS << ')';
    printExprPrec(C->Operand, PrecCast);
    if (Paren)
      OS << ')';
    return;
  }
  case NodeKind::SizeofExpr: {
    const auto *S = cast<SizeofExpr>(E);
    bool Paren = PrecUnary < MinPrec;
    if (Paren)
      OS << '(';
    OS << "sizeof";
    if (S->IsType) {
      OS << '(';
      printTypeSpec(S->Ty.Spec, 0);
      for (unsigned I = 0; I != S->Ty.PointerDepth; ++I)
        OS << " *";
      OS << ')';
    } else {
      OS << ' ';
      printExprPrec(S->Operand, PrecUnary);
    }
    if (Paren)
      OS << ')';
    return;
  }
  case NodeKind::CallExpr: {
    const auto *C = cast<CallExpr>(E);
    printExprPrec(C->Callee, PrecPostfix);
    OS << '(';
    for (size_t I = 0; I != C->Args.size(); ++I) {
      if (I)
        OS << ", ";
      printExprPrec(C->Args[I], PrecAssign);
    }
    OS << ')';
    return;
  }
  case NodeKind::IndexExpr: {
    const auto *I = cast<IndexExpr>(E);
    printExprPrec(I->Base, PrecPostfix);
    OS << '[';
    printExprPrec(I->Index, PrecComma);
    OS << ']';
    return;
  }
  case NodeKind::MemberExpr: {
    const auto *M = cast<MemberExpr>(E);
    printExprPrec(M->Base, PrecPostfix);
    OS << (M->IsArrow ? "->" : ".");
    printIdent(M->Member);
    return;
  }
  case NodeKind::MacroInvocationExpr:
    printInvocation(cast<MacroInvocationExpr>(E)->Inv, 0);
    return;
  case NodeKind::BackquoteExpr: {
    const auto *B = cast<BackquoteExpr>(E);
    OS << '`';
    switch (B->Form) {
    case BackquoteForm::Exp:
      OS << '(';
      printExprPrec(cast<Expr>(B->Template), PrecComma);
      OS << ')';
      break;
    case BackquoteForm::Stmt:
      printStmt(cast<Stmt>(B->Template), 0);
      break;
    case BackquoteForm::Decl:
      OS << '[';
      printDecl(cast<Decl>(B->Template), 0);
      OS << ']';
      break;
    case BackquoteForm::Pattern:
      OS << "{| " << B->Type->toString() << " :: ";
      printMatchValue(B->TemplateMV, nullptr, 0);
      OS << " |}";
      break;
    }
    return;
  }
  case NodeKind::LambdaExpr: {
    const auto *L = cast<LambdaExpr>(E);
    OS << "lambda (";
    for (size_t I = 0; I != L->Params.size(); ++I) {
      if (I)
        OS << ", ";
      OS << L->Params[I].Type->toString() << ' ' << L->Params[I].Name.str();
    }
    OS << ") ";
    printExprPrec(L->Body, PrecAssign);
    return;
  }
  default:
    OS << "/*expr?*/";
    return;
  }
}

void Printer::printTypeSpec(const TypeSpecNode *T, unsigned Indent) {
  if (!T) {
    OS << "int"; // implicit int
    return;
  }
  switch (T->kind()) {
  case NodeKind::BuiltinTypeSpecKind: {
    unsigned F = cast<BuiltinTypeSpec>(T)->Flags;
    bool First = true;
    auto Emit = [&](const char *S) {
      if (!First)
        OS << ' ';
      OS << S;
      First = false;
    };
    if (F & BTF_Signed)
      Emit("signed");
    if (F & BTF_Unsigned)
      Emit("unsigned");
    if (F & BTF_Short)
      Emit("short");
    if (F & BTF_Long)
      Emit("long");
    if (F & BTF_LongLong)
      Emit("long");
    if (F & BTF_Void)
      Emit("void");
    if (F & BTF_Char)
      Emit("char");
    if (F & BTF_Int)
      Emit("int");
    if (F & BTF_Float)
      Emit("float");
    if (F & BTF_Double)
      Emit("double");
    if (First)
      OS << "int";
    return;
  }
  case NodeKind::TagTypeSpecKind: {
    const auto *Tag = cast<TagTypeSpec>(T);
    switch (Tag->Tag) {
    case TagKind::Struct:
      OS << "struct";
      break;
    case TagKind::Union:
      OS << "union";
      break;
    case TagKind::Enum:
      OS << "enum";
      break;
    }
    if (Tag->TagName.valid()) {
      OS << ' ';
      printIdent(Tag->TagName);
    }
    if (!Tag->HasBody)
      return;
    if (Tag->Tag == TagKind::Enum) {
      OS << " {";
      bool First = true;
      for (const Enumerator &E : Tag->Enums) {
        if (!First)
          OS << ", ";
        First = false;
        if (E.ListPh) {
          printPlaceholder(E.ListPh);
          continue;
        }
        printIdent(E.Name);
        if (E.Value) {
          OS << " = ";
          printExprPrec(E.Value, PrecAssign);
        }
      }
      OS << '}';
      return;
    }
    OS << " {\n";
    for (const Declaration *M : Tag->Members) {
      indent(Indent + 1);
      printDecl(M, Indent + 1);
      OS << '\n';
    }
    indent(Indent);
    OS << '}';
    return;
  }
  case NodeKind::TypedefNameSpecKind:
    OS << cast<TypedefNameSpec>(T)->Name.str();
    return;
  case NodeKind::MetaAstTypeSpecKind:
    OS << cast<MetaAstTypeSpec>(T)->Type->toString();
    return;
  case NodeKind::PlaceholderTypeSpecKind:
    printPlaceholder(cast<PlaceholderTypeSpec>(T)->Ph);
    return;
  default:
    OS << "/*type?*/";
    return;
  }
}

void Printer::printDeclaratorInner(const Declarator *D) {
  if (!D)
    return;
  if (D->isPlaceholder()) {
    printPlaceholder(D->Ph);
    return;
  }
  for (unsigned I = 0; I != D->PointerDepth; ++I)
    OS << '*';
  if (D->Inner) {
    OS << '(';
    printDeclaratorInner(D->Inner);
    OS << ')';
  } else if (D->Name.valid()) {
    printIdent(D->Name);
  }
  for (const DeclSuffix &S : D->Suffixes) {
    if (S.K == DeclSuffix::Array) {
      OS << '[';
      if (S.ArraySize)
        printExprPrec(S.ArraySize, PrecComma);
      OS << ']';
      continue;
    }
    OS << '(';
    bool First = true;
    for (const ParamDecl *P : S.Params) {
      if (!First)
        OS << ", ";
      First = false;
      printSpecs(P->Specs, 0);
      if (P->Dtor && (P->Dtor->name().valid() || P->Dtor->PointerDepth ||
                      P->Dtor->isPlaceholder() || !P->Dtor->Suffixes.empty())) {
        OS << ' ';
        printDeclaratorInner(P->Dtor);
      }
    }
    for (const Ident &Name : S.KRNames) {
      if (!First)
        OS << ", ";
      First = false;
      printIdent(Name);
    }
    if (S.Variadic) {
      if (!First)
        OS << ", ";
      OS << "...";
    }
    OS << ')';
  }
}

void Printer::printSpecs(const DeclSpecs &Specs, unsigned Indent) {
  switch (Specs.Storage) {
  case StorageClass::None:
    break;
  case StorageClass::Auto:
    OS << "auto ";
    break;
  case StorageClass::Register:
    OS << "register ";
    break;
  case StorageClass::Static:
    OS << "static ";
    break;
  case StorageClass::Extern:
    OS << "extern ";
    break;
  case StorageClass::Typedef:
    OS << "typedef ";
    break;
  case StorageClass::Metadcl:
    OS << "metadcl ";
    break;
  }
  if (Specs.Const)
    OS << "const ";
  if (Specs.Volatile)
    OS << "volatile ";
  printTypeSpec(Specs.Type, Indent);
}

void Printer::printDecl(const Decl *D, unsigned Indent) {
  if (!D) {
    OS << "/*null-decl*/;";
    return;
  }
  noteProvenance(D);
  switch (D->kind()) {
  case NodeKind::DeclarationKind: {
    const auto *Dec = cast<Declaration>(D);
    printSpecs(Dec->Specs, Indent);
    if (Dec->DeclListPh) {
      OS << ' ';
      printPlaceholder(Dec->DeclListPh);
    } else if (!Dec->Inits.empty()) {
      OS << ' ';
      for (size_t I = 0; I != Dec->Inits.size(); ++I) {
        if (I)
          OS << ", ";
        const InitDeclarator &ID = Dec->Inits[I];
        if (ID.Ph) {
          printPlaceholder(ID.Ph);
          continue;
        }
        printDeclaratorInner(ID.Dtor);
        if (ID.Init) {
          OS << " = ";
          printExprPrec(ID.Init, PrecAssign);
        }
      }
    }
    OS << ';';
    return;
  }
  case NodeKind::FunctionDefKind: {
    const auto *F = cast<FunctionDef>(D);
    if (F->Specs.Type || F->Specs.Storage != StorageClass::None) {
      printSpecs(F->Specs, Indent);
      OS << ' ';
    }
    printDeclaratorInner(F->Dtor);
    OS << '\n';
    for (const Declaration *KR : F->KRDecls) {
      indent(Indent);
      printDecl(KR, Indent);
      OS << '\n';
    }
    indent(Indent);
    printStmt(F->Body, Indent);
    return;
  }
  case NodeKind::PlaceholderDecl:
    printPlaceholder(cast<PlaceholderDeclNode>(D)->Ph);
    return;
  case NodeKind::MacroInvocationDecl:
    printInvocation(cast<MacroInvocationDecl>(D)->Inv, Indent);
    return;
  case NodeKind::MetaDeclKind:
    OS << "metadcl ";
    printDecl(cast<MetaDecl>(D)->Inner, Indent);
    return;
  case NodeKind::MacroDefKind: {
    const auto *M = cast<MacroDef>(D);
    // Faithful surface syntax: `syntax <ast-type> <name>[[]...] {| pattern |}
    // body` — printed macro definitions re-parse.
    const MetaType *RT = M->ReturnType;
    unsigned ListDepth = 0;
    while (RT->isList()) {
      RT = RT->listElem();
      ++ListDepth;
    }
    std::string TypeName = RT->toString();
    if (!TypeName.empty() && TypeName[0] == '@')
      TypeName.erase(0, 1);
    OS << "syntax " << TypeName << ' ' << M->Name.str();
    for (unsigned I = 0; I != ListDepth; ++I)
      OS << "[]";
    OS << " {| ";
    if (M->Pat)
      printPattern(*M->Pat);
    OS << "|} ";
    if (M->Body)
      printStmt(M->Body, Indent);
    return;
  }
  case NodeKind::TranslationUnitKind: {
    const auto *TU = cast<TranslationUnit>(D);
    for (size_t I = 0; I != TU->Items.size(); ++I) {
      if (I)
        OS << '\n';
      printDecl(TU->Items[I], 0);
      OS << '\n';
    }
    return;
  }
  default:
    OS << "/*decl?*/;";
    return;
  }
}

void Printer::printStmt(const Stmt *S, unsigned Indent) {
  if (!S) {
    OS << ';';
    return;
  }
  noteProvenance(S);
  switch (S->kind()) {
  case NodeKind::CompoundStmtKind: {
    const auto *C = cast<CompoundStmt>(S);
    OS << "{\n";
    for (const Decl *D : C->Decls) {
      indent(Indent + 1);
      printDecl(D, Indent + 1);
      OS << '\n';
    }
    for (const Stmt *Sub : C->Stmts) {
      indent(Indent + 1);
      printStmt(Sub, Indent + 1);
      OS << '\n';
    }
    indent(Indent);
    OS << '}';
    return;
  }
  case NodeKind::ExprStmt:
    printExprPrec(cast<ExprStmt>(S)->E, PrecComma);
    OS << ';';
    return;
  case NodeKind::NullStmt:
    OS << ';';
    return;
  case NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(S);
    OS << "if (";
    printExprPrec(I->Cond, PrecComma);
    OS << ") ";
    printStmt(I->Then, Indent);
    if (I->Else) {
      OS << " else ";
      printStmt(I->Else, Indent);
    }
    return;
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    OS << "while (";
    printExprPrec(W->Cond, PrecComma);
    OS << ") ";
    printStmt(W->Body, Indent);
    return;
  }
  case NodeKind::DoStmt: {
    const auto *D = cast<DoStmt>(S);
    OS << "do ";
    printStmt(D->Body, Indent);
    OS << " while (";
    printExprPrec(D->Cond, PrecComma);
    OS << ");";
    return;
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    OS << "for (";
    if (F->Init)
      printExprPrec(F->Init, PrecComma);
    OS << "; ";
    if (F->Cond)
      printExprPrec(F->Cond, PrecComma);
    OS << "; ";
    if (F->Step)
      printExprPrec(F->Step, PrecComma);
    OS << ") ";
    printStmt(F->Body, Indent);
    return;
  }
  case NodeKind::SwitchStmt: {
    const auto *Sw = cast<SwitchStmt>(S);
    OS << "switch (";
    printExprPrec(Sw->Cond, PrecComma);
    OS << ") ";
    printStmt(Sw->Body, Indent);
    return;
  }
  case NodeKind::CaseStmt: {
    const auto *C = cast<CaseStmt>(S);
    OS << "case ";
    printExprPrec(C->Value, PrecCond);
    OS << ": ";
    printStmt(C->Body, Indent);
    return;
  }
  case NodeKind::DefaultStmt:
    OS << "default: ";
    printStmt(cast<DefaultStmt>(S)->Body, Indent);
    return;
  case NodeKind::LabelStmt: {
    const auto *L = cast<LabelStmt>(S);
    printIdent(L->Label);
    OS << ": ";
    printStmt(L->Body, Indent);
    return;
  }
  case NodeKind::GotoStmt:
    OS << "goto ";
    printIdent(cast<GotoStmt>(S)->Label);
    OS << ';';
    return;
  case NodeKind::BreakStmt:
    OS << "break;";
    return;
  case NodeKind::ContinueStmt:
    OS << "continue;";
    return;
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    OS << "return";
    if (R->Value) {
      OS << ' ';
      printExprPrec(R->Value, PrecComma);
    }
    OS << ';';
    return;
  }
  case NodeKind::PlaceholderStmt:
    printPlaceholder(cast<PlaceholderStmt>(S)->Ph);
    OS << ';';
    return;
  case NodeKind::MacroInvocationStmt:
    printInvocation(cast<MacroInvocationStmt>(S)->Inv, Indent);
    return;
  default:
    OS << "/*stmt?*/;";
    return;
  }
}

void Printer::printPatternToken(TokenKind K, Symbol Sym) {
  if (Sym.valid())
    OS << Sym.str();
  else
    OS << tokenKindSpelling(K);
}

void Printer::printPSpec(const PSpec *S) {
  switch (S->K) {
  case PSpec::Scalar: {
    std::string Name = S->ScalarType->toString();
    size_t Depth = 0;
    while (Name.size() >= 2 && Name.substr(Name.size() - 2) == "[]") {
      Name.erase(Name.size() - 2);
      ++Depth;
    }
    if (!Name.empty() && Name[0] == '@')
      Name.erase(0, 1);
    OS << Name;
    for (size_t I = 0; I != Depth; ++I)
      OS << "[]";
    return;
  }
  case PSpec::Plus:
  case PSpec::Star:
    OS << (S->K == PSpec::Plus ? '+' : '*');
    if (S->hasSep()) {
      OS << '/';
      printPatternToken(S->Sep, S->SepSym);
      OS << ' ';
    }
    printPSpec(S->Inner);
    return;
  case PSpec::Opt:
    OS << '?';
    if (S->hasSep()) {
      printPatternToken(S->Sep, S->SepSym);
      OS << ' ';
    }
    printPSpec(S->Inner);
    return;
  case PSpec::Tuple:
    OS << ".( ";
    printPattern(*S->Sub);
    OS << ')';
    return;
  }
}

void Printer::printPattern(const Pattern &P) {
  for (const PatternElement &E : P.Elements) {
    if (E.K == PatternElement::Token) {
      printPatternToken(E.Tok, E.TokSym);
      OS << ' ';
      continue;
    }
    OS << "$$";
    printPSpec(E.Spec);
    OS << "::" << E.Name.str() << ' ';
  }
}

/// Prints an unexpanded macro invocation back in its concrete syntax by
/// walking the macro's pattern alongside the bound constituents.
void Printer::printInvocation(const MacroInvocation *Inv, unsigned Indent) {
  OS << Inv->Def->Name.str();
  size_t ArgIdx = 0;
  for (const PatternElement &E : Inv->Def->Pat->Elements) {
    OS << ' ';
    if (E.K == PatternElement::Token) {
      if (E.TokSym.valid())
        OS << E.TokSym.str();
      else
        OS << tokenKindSpelling(E.Tok);
      continue;
    }
    if (ArgIdx < Inv->Args.size())
      printMatchValue(Inv->Args[ArgIdx++].Value, E.Spec, Indent);
  }
}

void Printer::printMatchValue(const MatchValue *V, const PSpec *Spec,
                              unsigned Indent) {
  if (!V) {
    OS << "/*null-arg*/";
    return;
  }
  switch (V->K) {
  case MatchValue::Ast:
    if (const auto *E = dyn_cast<Expr>(V->AstNode))
      printExprPrec(E, PrecAssign);
    else if (const auto *S = dyn_cast<Stmt>(V->AstNode))
      printStmt(S, Indent);
    else if (const auto *D = dyn_cast<Decl>(V->AstNode))
      printDecl(D, Indent);
    else if (const auto *T = dyn_cast<TypeSpecNode>(V->AstNode))
      printTypeSpec(T, Indent);
    return;
  case MatchValue::IdentV:
    printIdent(V->Id);
    return;
  case MatchValue::DeclaratorV:
    printDeclaratorInner(V->Dtor);
    return;
  case MatchValue::InitDeclV:
    printDeclaratorInner(V->InitDtor->Dtor);
    if (V->InitDtor->Init) {
      OS << " = ";
      printExprPrec(V->InitDtor->Init, PrecAssign);
    }
    return;
  case MatchValue::EnumeratorV:
    printIdent(V->Enum->Name);
    if (V->Enum->Value) {
      OS << " = ";
      printExprPrec(V->Enum->Value, PrecAssign);
    }
    return;
  case MatchValue::List: {
    const char *Sep = " ";
    if (Spec && (Spec->K == PSpec::Plus || Spec->K == PSpec::Star) &&
        Spec->hasSep())
      Sep = Spec->Sep == TokenKind::Comma ? ", " : nullptr;
    for (size_t I = 0; I != V->Elems.size(); ++I) {
      if (I) {
        if (Sep)
          OS << Sep;
        else {
          OS << ' ' << tokenKindSpelling(Spec->Sep) << ' ';
        }
      }
      printMatchValue(V->Elems[I], Spec ? Spec->Inner : nullptr, Indent);
    }
    return;
  }
  case MatchValue::Tuple: {
    const Pattern *Sub =
        Spec && Spec->K == PSpec::Tuple ? Spec->Sub : nullptr;
    size_t FieldIdx = 0;
    if (Sub) {
      for (const PatternElement &E : Sub->Elements) {
        if (&E != &Sub->Elements[0])
          OS << ' ';
        if (E.K == PatternElement::Token) {
          OS << (E.TokSym.valid() ? std::string(E.TokSym.str())
                                  : std::string(tokenKindSpelling(E.Tok)));
        } else if (FieldIdx < V->Elems.size()) {
          printMatchValue(V->Elems[FieldIdx], E.Spec, Indent);
          ++FieldIdx;
        }
      }
      return;
    }
    for (size_t I = 0; I != V->Elems.size(); ++I) {
      if (I)
        OS << ' ';
      printMatchValue(V->Elems[I], nullptr, Indent);
    }
    return;
  }
  case MatchValue::Absent:
    return;
  }
}

} // namespace

std::string msq::printNode(const Node *N, const PrintOptions &Opts) {
  Printer P(Opts);
  if (!N)
    return "";
  if (const auto *E = dyn_cast<Expr>(N))
    P.printExprPrec(E, PrecComma);
  else if (const auto *S = dyn_cast<Stmt>(N))
    P.printStmt(S, 0);
  else if (const auto *D = dyn_cast<Decl>(N))
    P.printDecl(D, 0);
  else if (const auto *T = dyn_cast<TypeSpecNode>(N))
    P.printTypeSpec(T, 0);
  return P.take();
}

std::string msq::printExpr(const Expr *E, const PrintOptions &Opts) {
  Printer P(Opts);
  P.printExprPrec(E, PrecComma);
  return P.take();
}

std::string msq::printDeclarator(const Declarator *D,
                                 const PrintOptions &Opts) {
  Printer P(Opts);
  P.printDeclaratorInner(D);
  return P.take();
}

std::string msq::printMacroSignature(const MacroDef *M) {
  if (!M)
    return "";
  Printer P(PrintOptions{});
  // The signature is everything that steers PARSING of an invocation:
  // return meta-type, name, and the pattern — the body deliberately
  // excluded (a body-only edit leaves invocation parse trees valid).
  std::string Sig = M->ReturnType ? M->ReturnType->toString() : std::string();
  Sig += ' ';
  Sig += M->Name.str();
  Sig += " {| ";
  if (M->Pat)
    P.printPattern(*M->Pat);
  return Sig + P.take() + "|}";
}
