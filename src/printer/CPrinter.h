//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST -> concrete C syntax. Because MS2 macros construct ASTs (never
/// token strings), printing is where separators, parentheses, and layout
/// are reintroduced; the printer is precedence-aware so that the printed
/// code parses back to a structurally identical tree (a property the test
/// suite checks).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_PRINTER_CPRINTER_H
#define MSQ_PRINTER_CPRINTER_H

#include "ast/Ast.h"

#include <string>
#include <utility>
#include <vector>

namespace msq {

struct PrintOptions {
  /// Indentation width in spaces.
  unsigned IndentWidth = 4;
  /// Print placeholders as `$name` / `$(expr)`; with false, encountering a
  /// placeholder is an error (expanded code must not contain them).
  bool AllowPlaceholders = true;
  /// When non-null, the printer appends one (1-based output line,
  /// provenance frame id) pair per output line whose first printed
  /// statement/declaration carries a non-zero Node::prov() stamp. Feeds
  /// analysis::sourceMapJson; lines of user-written code do not appear.
  std::vector<std::pair<unsigned, uint32_t>> *LineProvenance = nullptr;
};

/// Renders any node to C source.
std::string printNode(const Node *N, const PrintOptions &Opts = {});

/// Renders an expression to C source.
std::string printExpr(const Expr *E, const PrintOptions &Opts = {});

/// Renders a declarator (used in diagnostics and tests).
std::string printDeclarator(const Declarator *D, const PrintOptions &Opts = {});

/// Renders a macro definition's parse-steering signature — return
/// meta-type, name, and pattern, but NOT the body. Two macros with equal
/// signatures parse invocations identically, which is what lets the
/// incremental engine keep cached parse trees across body-only edits
/// (cache/Fingerprint.cpp keys per-definition fingerprints on this).
std::string printMacroSignature(const MacroDef *M);

} // namespace msq

#endif // MSQ_PRINTER_CPRINTER_H
