//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST -> S-expression dumps in the notation of the paper's Figures 2
/// and 3: "A node of the tree and its children is written
/// (node-name child1 ... childn). List elements in the tree are written
/// within parentheses." Compound statements abbreviate to c-s,
/// return-statements to r-s, etc., exactly as in Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_PRINTER_SEXPR_H
#define MSQ_PRINTER_SEXPR_H

#include "ast/Ast.h"

#include <string>

namespace msq {

/// Dumps \p N in the paper's S-expression notation. Placeholders print as
/// their meta-expression (e.g. `y`, `phi1`), matching the figures.
std::string sexprDump(const Node *N);

} // namespace msq

#endif // MSQ_PRINTER_SEXPR_H
