//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "printer/SExpr.h"

#include "printer/CPrinter.h"

#include <sstream>

using namespace msq;

namespace {

class SExprPrinter {
public:
  std::string take() { return OS.str(); }

  void dump(const Node *N);
  void dumpIdent(const Ident &I);
  void dumpPlaceholder(const Placeholder *Ph);
  void dumpDeclarator(const Declarator *D);
  void dumpInitDeclarator(const InitDeclarator &ID);
  void dumpTypeSpec(const TypeSpecNode *T);

private:
  std::ostringstream OS;
};

void SExprPrinter::dumpPlaceholder(const Placeholder *Ph) {
  // The figures name placeholders by their meta expressions (y, phi1, ...).
  if (const auto *IE = dyn_cast<IdentExpr>(Ph->MetaExpr)) {
    if (!IE->Name.isPlaceholder()) {
      OS << IE->Name.Sym.str();
      return;
    }
  }
  OS << "$(" << printExpr(Ph->MetaExpr) << ')';
}

void SExprPrinter::dumpIdent(const Ident &I) {
  if (I.isPlaceholder())
    dumpPlaceholder(I.Ph);
  else
    OS << I.Sym.str();
}

void SExprPrinter::dumpTypeSpec(const TypeSpecNode *T) {
  // The figures write a builtin specifier simply as (int).
  OS << '(' << printNode(T) << ')';
}

void SExprPrinter::dumpDeclarator(const Declarator *D) {
  if (D->isPlaceholder()) {
    dumpPlaceholder(D->Ph);
    return;
  }
  // Figure 2 writes an identifier-made declarator as
  // (direct-declarator y); pointers/suffixes are wrapped textually.
  if (D->PointerDepth == 0 && D->Suffixes.empty()) {
    OS << "(direct-declarator ";
    dumpIdent(D->Name);
    OS << ')';
    return;
  }
  OS << "(declarator \"" << printDeclarator(D) << "\")";
}

void SExprPrinter::dumpInitDeclarator(const InitDeclarator &ID) {
  if (ID.Ph) {
    dumpPlaceholder(ID.Ph);
    return;
  }
  OS << "(init-declarator ";
  dumpDeclarator(ID.Dtor);
  OS << ' ';
  if (ID.Init)
    dump(ID.Init);
  else
    OS << "()";
  OS << ')';
}

void SExprPrinter::dump(const Node *N) {
  if (!N) {
    OS << "()";
    return;
  }
  switch (N->kind()) {
  case NodeKind::DeclarationKind: {
    const auto *D = cast<Declaration>(N);
    OS << "(declaration ";
    dumpTypeSpec(D->Specs.Type);
    OS << ' ';
    if (D->DeclListPh) {
      dumpPlaceholder(D->DeclListPh);
    } else {
      OS << '(';
      for (size_t I = 0; I != D->Inits.size(); ++I) {
        if (I)
          OS << ' ';
        dumpInitDeclarator(D->Inits[I]);
      }
      OS << ')';
    }
    OS << ')';
    return;
  }
  case NodeKind::CompoundStmtKind: {
    const auto *C = cast<CompoundStmt>(N);
    OS << "(c-s (decl-list (";
    for (size_t I = 0; I != C->Decls.size(); ++I) {
      if (I)
        OS << ' ';
      dump(C->Decls[I]);
    }
    OS << ")) (stmt-list (";
    for (size_t I = 0; I != C->Stmts.size(); ++I) {
      if (I)
        OS << ' ';
      dump(C->Stmts[I]);
    }
    OS << ")))";
    return;
  }
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(N);
    OS << "(r-s ";
    if (R->Value)
      dump(R->Value);
    else
      OS << "()";
    OS << ')';
    return;
  }
  case NodeKind::ExprStmt:
    OS << "(e-s ";
    dump(cast<ExprStmt>(N)->E);
    OS << ')';
    return;
  case NodeKind::PlaceholderStmt:
    dumpPlaceholder(cast<PlaceholderStmt>(N)->Ph);
    return;
  case NodeKind::PlaceholderDecl:
    dumpPlaceholder(cast<PlaceholderDeclNode>(N)->Ph);
    return;
  case NodeKind::PlaceholderExpr:
    dumpPlaceholder(cast<PlaceholderExpr>(N)->Ph);
    return;
  case NodeKind::IdentExpr:
    OS << "(id ";
    dumpIdent(cast<IdentExpr>(N)->Name);
    OS << ')';
    return;
  case NodeKind::IntLiteralExpr:
    OS << "(num " << cast<IntLiteralExpr>(N)->Value << ')';
    return;
  case NodeKind::StringLiteralExpr:
    OS << "(string \"" << cast<StringLiteralExpr>(N)->Value.str() << "\")";
    return;
  case NodeKind::ParenExpr:
    OS << "(exp ";
    dump(cast<ParenExpr>(N)->Inner);
    OS << ')';
    return;
  case NodeKind::BinaryExpr: {
    const auto *B = cast<BinaryExpr>(N);
    OS << "(" << binaryOpSpelling(B->Op) << ' ';
    dump(B->LHS);
    OS << ' ';
    dump(B->RHS);
    OS << ')';
    return;
  }
  case NodeKind::UnaryExpr: {
    const auto *U = cast<UnaryExpr>(N);
    OS << "(" << unaryOpSpelling(U->Op) << ' ';
    dump(U->Operand);
    OS << ')';
    return;
  }
  case NodeKind::CallExpr: {
    const auto *C = cast<CallExpr>(N);
    OS << "(call ";
    dump(C->Callee);
    for (const Expr *Arg : C->Args) {
      OS << ' ';
      dump(Arg);
    }
    OS << ')';
    return;
  }
  case NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(N);
    OS << "(if ";
    dump(I->Cond);
    OS << ' ';
    dump(I->Then);
    if (I->Else) {
      OS << ' ';
      dump(I->Else);
    }
    OS << ')';
    return;
  }
  case NodeKind::TranslationUnitKind: {
    const auto *TU = cast<TranslationUnit>(N);
    OS << "(translation-unit";
    for (const Decl *D : TU->Items) {
      OS << ' ';
      dump(D);
    }
    OS << ')';
    return;
  }
  case NodeKind::FunctionDefKind: {
    const auto *F = cast<FunctionDef>(N);
    OS << "(function-def ";
    dumpTypeSpec(F->Specs.Type);
    OS << ' ';
    dumpDeclarator(F->Dtor);
    OS << ' ';
    dump(F->Body);
    OS << ')';
    return;
  }
  default:
    // Generic fallback: print the node's C rendering inside a tagged form.
    OS << "(ast \"" << printNode(N) << "\")";
    return;
  }
}

} // namespace

std::string msq::sexprDump(const Node *N) {
  SExprPrinter P;
  P.dump(N);
  return P.take();
}
