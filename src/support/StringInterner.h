//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String interning. Identifiers, keywords, and string literals are uniqued
/// into a StringInterner so that a Symbol compares by pointer.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_STRINGINTERNER_H
#define MSQ_SUPPORT_STRINGINTERNER_H

#include "support/Arena.h"

#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_set>

namespace msq {

/// An interned, immutable string. Compares by identity; the empty Symbol is
/// distinct from any interned string (including the interned empty string).
class Symbol {
public:
  Symbol() = default;

  bool valid() const { return Data != nullptr; }
  explicit operator bool() const { return valid(); }

  std::string_view str() const {
    return Data ? std::string_view(Data, Len) : std::string_view();
  }
  /// NUL-terminated character data; nullptr for the invalid Symbol.
  const char *c_str() const { return Data; }
  size_t size() const { return Len; }

  friend bool operator==(Symbol A, Symbol B) { return A.Data == B.Data; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Data != B.Data; }
  friend bool operator<(Symbol A, Symbol B) { return A.str() < B.str(); }

private:
  friend class StringInterner;
  friend struct SymbolHash;
  Symbol(const char *Data, size_t Len) : Data(Data), Len(Len) {}

  const char *Data = nullptr;
  size_t Len = 0;
};

struct SymbolHash {
  size_t operator()(Symbol S) const {
    return std::hash<const void *>()(S.Data);
  }
};

/// Uniques strings into an Arena.
class StringInterner {
public:
  explicit StringInterner(Arena &A) : TheArena(A) {}
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p S, returning the canonical Symbol for its contents.
  Symbol intern(std::string_view S) {
    auto It = Table.find(S);
    if (It != Table.end())
      return Symbol(It->data(), It->size());
    char *Mem = TheArena.copyString(S.data(), S.size());
    std::string_view Owned(Mem, S.size());
    Table.insert(Owned);
    return Symbol(Mem, S.size());
  }

  size_t size() const { return Table.size(); }

private:
  Arena &TheArena;
  std::unordered_set<std::string_view> Table;
};

} // namespace msq

#endif // MSQ_SUPPORT_STRINGINTERNER_H
