//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source buffers and locations. A SourceLoc is a (buffer id, byte offset)
/// pair packed into 64 bits; the SourceManager maps it back to
/// file/line/column for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_SOURCEMANAGER_H
#define MSQ_SUPPORT_SOURCEMANAGER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace msq {

/// A position within some registered source buffer.
class SourceLoc {
public:
  SourceLoc() = default;

  bool valid() const { return Raw != 0; }
  explicit operator bool() const { return valid(); }

  uint32_t bufferId() const { return uint32_t(Raw >> 32); }
  uint32_t offset() const { return uint32_t(Raw & 0xffffffffu); }

  static SourceLoc get(uint32_t BufferId, uint32_t Offset) {
    SourceLoc L;
    L.Raw = (uint64_t(BufferId) << 32) | Offset;
    return L;
  }

  friend bool operator==(SourceLoc A, SourceLoc B) { return A.Raw == B.Raw; }
  friend bool operator!=(SourceLoc A, SourceLoc B) { return A.Raw != B.Raw; }

private:
  // Buffer ids start at 1 so that the all-zero SourceLoc is invalid.
  uint64_t Raw = 0;
};

/// Resolved human-readable position.
struct PresumedLoc {
  std::string_view Filename;
  unsigned Line = 0;
  unsigned Column = 0;
};

/// Owns source buffers and resolves SourceLocs.
class SourceManager {
public:
  /// Registers a buffer; the returned id is embedded in SourceLocs.
  uint32_t addBuffer(std::string Name, std::string Contents) {
    Buffers.push_back({std::move(Name), std::move(Contents), {}});
    Buffer &B = Buffers.back();
    B.LineStarts.push_back(0);
    for (size_t I = 0; I != B.Contents.size(); ++I)
      if (B.Contents[I] == '\n')
        B.LineStarts.push_back(uint32_t(I + 1));
    return uint32_t(Buffers.size()); // ids are 1-based
  }

  std::string_view bufferContents(uint32_t Id) const {
    assert(Id >= 1 && Id <= Buffers.size() && "bad buffer id");
    return Buffers[Id - 1].Contents;
  }

  std::string_view bufferName(uint32_t Id) const {
    assert(Id >= 1 && Id <= Buffers.size() && "bad buffer id");
    return Buffers[Id - 1].Name;
  }

  size_t numBuffers() const { return Buffers.size(); }

  /// Maps \p Loc to file/line/column. Returns a zeroed PresumedLoc for the
  /// invalid location.
  PresumedLoc presumed(SourceLoc Loc) const {
    if (!Loc.valid() || Loc.bufferId() == 0 || Loc.bufferId() > Buffers.size())
      return {};
    const Buffer &B = Buffers[Loc.bufferId() - 1];
    uint32_t Off = Loc.offset();
    // Binary search for the greatest line start <= Off.
    size_t Lo = 0, Hi = B.LineStarts.size();
    while (Hi - Lo > 1) {
      size_t Mid = (Lo + Hi) / 2;
      if (B.LineStarts[Mid] <= Off)
        Lo = Mid;
      else
        Hi = Mid;
    }
    PresumedLoc P;
    P.Filename = B.Name;
    P.Line = unsigned(Lo + 1);
    P.Column = Off - B.LineStarts[Lo] + 1;
    return P;
  }

private:
  struct Buffer {
    std::string Name;
    std::string Contents;
    std::vector<uint32_t> LineStarts;
  };
  std::vector<Buffer> Buffers;
};

} // namespace msq

#endif // MSQ_SUPPORT_SOURCEMANAGER_H
