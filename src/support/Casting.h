//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style isa<>/cast<>/dyn_cast<> over classes that provide
/// `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_CASTING_H
#define MSQ_SUPPORT_CASTING_H

#include <cassert>

namespace msq {

/// Returns true when \p V (non-null) is an instance of \p To.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a \p To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns nullptr when \p V is not a \p To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// Like dyn_cast<> but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *V) {
  return (V && isa<To>(V)) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *V) {
  return (V && isa<To>(V)) ? static_cast<const To *>(V) : nullptr;
}

} // namespace msq

#endif // MSQ_SUPPORT_CASTING_H
