//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace msq;

static const char *severityName(DiagSeverity Sev) {
  switch (Sev) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticsEngine::renderFrom(size_t First) const {
  std::ostringstream OS;
  for (size_t I = First; I < Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    PresumedLoc P = SM.presumed(D.Loc);
    if (P.Line != 0)
      OS << P.Filename << ':' << P.Line << ':' << P.Column << ": ";
    OS << severityName(D.Severity) << ": " << D.Message << '\n';
  }
  return OS.str();
}
