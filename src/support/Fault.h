//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection. Every I/O and resource boundary in the
/// engine evaluates a named injection point (`cache.disk_write`,
/// `server.accept`, ...) before doing the real operation; a SCHEDULE armed
/// at process level decides which evaluations "trip" (simulate a failure).
/// The framework is compiled into every build and is zero-cost when
/// disarmed: each site is a single relaxed atomic load of one global flag.
///
/// Schedules are deterministic by construction, which is what makes
/// failure paths testable: the same schedule against the same
/// (single-threaded) workload trips the same evaluations and yields
/// byte-identical diagnostics. Two trigger forms exist:
///  * `every=N` — trip every Nth evaluation of the point (counter-based);
///  * `p=F,seed=S` — trip evaluation #k iff a splitmix64 stream seeded
///    with S says so at index k. Randomized-but-seeded: re-running with
///    the same seed reproduces the exact trip sequence.
///
/// Schedule grammar (also accepted from the MSQ_FAULT_SCHEDULE
/// environment variable by msqc/msqd):
///
///   schedule := entry (';' entry)*
///   entry    := point ':' param (',' param)*
///   param    := 'every=' N | 'p=' F | 'seed=' N | 'times=' N | 'after=' N
///
///   MSQ_FAULT_SCHEDULE="cache.disk_write:every=3;server.accept:p=0.1,seed=42"
///
/// `times=N` caps the total trips granted by a point; `after=N` skips the
/// first N evaluations. Exactly one of `every`/`p` is required per entry.
///
/// What a trip MEANS is owned by the evaluation site: the cache turns a
/// `cache.disk_write` trip into a torn half-written temp file, the server
/// turns `server.worker_crash` into a thrown exception, and so on. The
/// framework only answers "does this evaluation fail?" and counts
/// evaluations/trips per point for the metrics JSON.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_FAULT_H
#define MSQ_SUPPORT_FAULT_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace msq {
namespace fault {

/// Every injection point in the system. Adding one means: extend this
/// enum, the name table in Fault.cpp, and the degradation matrix in
/// DESIGN.md §8.
enum class Point : unsigned {
  CacheDiskRead,    ///< cache.disk_read — disk-tier entry read
  CacheDiskWrite,   ///< cache.disk_write — disk-tier publish (open/write/rename)
  ServerAccept,     ///< server.accept — accepting a client connection
  ServerWorkerSpawn,///< server.worker_spawn — building a worker engine
  ServerWorkerCrash,///< server.worker_crash — a worker dying mid-request
  InterpAlloc,      ///< interp.alloc — meta-interpreter resource exhaustion
  BatchUnitStart,   ///< batch.unit_start — a batch unit dying at start
  IncrTokenCache,   ///< incr.token_cache — token-stream cache lookup
  IncrTreeCache,    ///< incr.tree_cache — parse-tree cache lookup
  RouterConnect,    ///< router.connect — router dialing a shard
  RouterForward,    ///< router.forward — router forwarding one request
  RemoteCacheGet,   ///< rcache.get — remote cache tier lookup
  RemoteCachePut,   ///< rcache.put — remote cache tier publish
  SessionOpen,      ///< session.open — building an interactive session
  SessionEval,      ///< session.eval — one interactive session evaluation
  LspRequest,       ///< lsp.request — msq-lsp forwarding a daemon request
};
constexpr unsigned NumPoints = 16;

namespace detail {
/// True while any point is armed. The ONLY state the fast path touches.
extern std::atomic<bool> Armed;
bool shouldFailSlow(Point P);
} // namespace detail

/// True when a schedule is armed (some point may trip).
inline bool enabled() {
  return detail::Armed.load(std::memory_order_relaxed);
}

/// Evaluates injection point \p P: returns true when this evaluation must
/// simulate a failure. When no schedule is armed this is one relaxed
/// atomic load — safe on any hot path.
inline bool shouldFail(Point P) {
  if (!detail::Armed.load(std::memory_order_relaxed))
    return false;
  return detail::shouldFailSlow(P);
}

/// Parses \p Schedule (see the grammar above), zeroes all counters, and
/// arms the described points. An empty schedule disarms everything (same
/// as reset()). Returns false with \p *Err set on a malformed spec, in
/// which case nothing is armed. Not safe to call concurrently with
/// in-flight evaluations of an ARMED schedule; arm before starting work.
bool configure(const std::string &Schedule, std::string *Err = nullptr);

/// configure() from the MSQ_FAULT_SCHEDULE environment variable. Unset or
/// empty leaves the layer disarmed and returns true.
bool configureFromEnvironment(std::string *Err = nullptr);

/// Disarms every point and zeroes all counters.
void reset();

/// Counters for one point since the last configure()/reset(). Evaluations
/// are counted whenever the layer is armed (even for points with no
/// schedule entry — coverage observability); trips only for armed points.
uint64_t evaluations(Point P);
uint64_t trips(Point P);

/// The canonical dotted name of \p P ("cache.disk_write", ...).
const char *pointName(Point P);

/// Per-point counters as one JSON object, fixed key order:
/// {"enabled":B,"schedule":"...","points":{"batch.unit_start":
///   {"evaluations":N,"trips":N},...}}
std::string statsJson();

/// Thrown by sites that model a trip as a crash (server.worker_crash):
/// the catch site converting the crash into a structured error can tell an
/// injected crash apart from a real escaping defect and tag the result's
/// FaultInjected flag accordingly.
struct InjectedCrash : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// RAII schedule for tests: arms on construction, disarms on destruction.
struct ScopedSchedule {
  explicit ScopedSchedule(const std::string &Schedule) {
    Ok = configure(Schedule, &Error);
  }
  ~ScopedSchedule() { reset(); }
  ScopedSchedule(const ScopedSchedule &) = delete;
  ScopedSchedule &operator=(const ScopedSchedule &) = delete;

  bool Ok = false;
  std::string Error;
};

} // namespace fault
} // namespace msq

#endif // MSQ_SUPPORT_FAULT_H
