//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <algorithm>

using namespace msq;

void MacroProfileEntry::accumulate(const MacroProfileEntry &Other) {
  Invocations += Other.Invocations;
  TotalNanos += Other.TotalNanos;
  MaxNanos = std::max(MaxNanos, Other.MaxNanos);
  NodesProduced += Other.NodesProduced;
  GensymsCreated += Other.GensymsCreated;
}

uint64_t ExpansionProfile::totalInvocations() const {
  uint64_t N = 0;
  for (const MacroProfileEntry &E : Macros)
    N += E.Invocations;
  return N;
}

uint64_t ExpansionProfile::totalNanos() const {
  uint64_t N = 0;
  for (const MacroProfileEntry &E : Macros)
    N += E.TotalNanos;
  return N;
}

const MacroProfileEntry *ExpansionProfile::find(const std::string &Name) const {
  auto It = std::lower_bound(
      Macros.begin(), Macros.end(), Name,
      [](const MacroProfileEntry &E, const std::string &N) { return E.Name < N; });
  if (It != Macros.end() && It->Name == Name)
    return &*It;
  return nullptr;
}

void ExpansionProfile::normalize() {
  std::sort(Macros.begin(), Macros.end(),
            [](const MacroProfileEntry &A, const MacroProfileEntry &B) {
              return A.Name < B.Name;
            });
}

void ExpansionProfile::merge(const ExpansionProfile &Other) {
  // Classic sorted merge; entries present on both sides accumulate.
  std::vector<MacroProfileEntry> Out;
  Out.reserve(Macros.size() + Other.Macros.size());
  size_t I = 0, J = 0;
  while (I != Macros.size() || J != Other.Macros.size()) {
    if (J == Other.Macros.size() ||
        (I != Macros.size() && Macros[I].Name < Other.Macros[J].Name)) {
      Out.push_back(std::move(Macros[I++]));
    } else if (I == Macros.size() || Other.Macros[J].Name < Macros[I].Name) {
      Out.push_back(Other.Macros[J++]);
    } else {
      Out.push_back(std::move(Macros[I++]));
      Out.back().accumulate(Other.Macros[J++]);
    }
  }
  Macros = std::move(Out);
}

std::string CacheStats::toJson() const {
  std::string Out = "{\"hits\":";
  Out += std::to_string(Hits);
  Out += ",\"misses\":";
  Out += std::to_string(Misses);
  Out += ",\"uncacheable\":";
  Out += std::to_string(Uncacheable);
  Out += ",\"bytes_read\":";
  Out += std::to_string(BytesRead);
  Out += ",\"bytes_written\":";
  Out += std::to_string(BytesWritten);
  Out += ",\"disk_read_errors\":";
  Out += std::to_string(DiskReadErrors);
  Out += ",\"disk_write_errors\":";
  Out += std::to_string(DiskWriteErrors);
  Out += ",\"disk_degraded\":";
  Out += std::to_string(DiskDegraded);
  Out += ",\"remote_hits\":";
  Out += std::to_string(RemoteHits);
  Out += ",\"remote_errors\":";
  Out += std::to_string(RemoteErrors);
  Out += ",\"remote_stores\":";
  Out += std::to_string(RemoteStores);
  Out += '}';
  return Out;
}

std::string msq::jsonEscape(const std::string &S) {
  // Interactive payloads (hover text, REPL echoes, diagnostics) carry
  // arbitrary macro source, so every control character must round-trip
  // through emit->parse byte-identically: the full C0 range plus DEL is
  // escaped (short escapes where JSON has them, \u00XX otherwise), and
  // bytes >= 0x80 pass through untouched so raw sources stay
  // byte-faithful on the wire. Round-trip is fuzzed in protocol_test.
  static const char Hex[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (U < 0x20 || U == 0x7f) {
        Out += "\\u00";
        Out += Hex[U >> 4];
        Out += Hex[U & 0xf];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string ExpansionProfile::toJson() const {
  std::string Out = "{\"total_invocations\":";
  Out += std::to_string(totalInvocations());
  Out += ",\"total_ns\":";
  Out += std::to_string(totalNanos());
  Out += ",\"macros\":[";
  bool First = true;
  for (const MacroProfileEntry &E : Macros) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    Out += jsonEscape(E.Name);
    Out += "\",\"invocations\":";
    Out += std::to_string(E.Invocations);
    Out += ",\"total_ns\":";
    Out += std::to_string(E.TotalNanos);
    Out += ",\"max_ns\":";
    Out += std::to_string(E.MaxNanos);
    Out += ",\"nodes\":";
    Out += std::to_string(E.NodesProduced);
    Out += ",\"gensyms\":";
    Out += std::to_string(E.GensymsCreated);
    Out += '}';
  }
  Out += "]}";
  return Out;
}
