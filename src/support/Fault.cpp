//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include "support/Metrics.h"

#include <cstdlib>
#include <mutex>

using namespace msq;

namespace {

/// Dotted names, indexed by Point. Order must match the enum.
constexpr const char *PointNames[fault::NumPoints] = {
    "cache.disk_read",   "cache.disk_write",   "server.accept",
    "server.worker_spawn", "server.worker_crash", "interp.alloc",
    "batch.unit_start",  "incr.token_cache",   "incr.tree_cache",
    "router.connect",    "router.forward",     "rcache.get",
    "rcache.put",        "session.open",       "session.eval",
    "lsp.request",
};

/// splitmix64: the per-evaluation decision stream for p= schedules. Keyed
/// by (seed, evaluation index), so the trip sequence is a pure function
/// of the schedule — thread interleaving cannot change which evaluation
/// indices trip, only which operation draws which index.
uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

struct PointState {
  bool HasSchedule = false;
  uint64_t Every = 0;      // every=N: trip when ((eval - after) % N) == 0
  uint64_t Threshold = 0;  // p=F: trip when draw <= F * 2^64
  uint64_t Seed = 0;
  uint64_t After = 0;      // skip the first N evaluations
  uint64_t MaxTrips = 0;   // 0 = unlimited
  uint64_t Evaluations = 0;
  uint64_t Trips = 0;
};

/// All mutable state behind one mutex. Evaluations only reach here when a
/// schedule is armed, and armed runs are failure-path tests, so lock cost
/// is irrelevant; disarmed runs never touch the mutex.
std::mutex StateMutex;
PointState Points[fault::NumPoints];
std::string ActiveSchedule;

void resetLocked() {
  for (PointState &P : Points)
    P = PointState();
  ActiveSchedule.clear();
  fault::detail::Armed.store(false, std::memory_order_release);
}

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9' || V > (UINT64_MAX - 9) / 10)
      return false;
    V = V * 10 + uint64_t(C - '0');
  }
  Out = V;
  return true;
}

bool parseProbability(std::string_view S, uint64_t &Threshold) {
  // Accept "0.25", ".25", "1", "1.0": plain decimal in (0, 1].
  double V = 0;
  try {
    size_t Used = 0;
    V = std::stod(std::string(S), &Used);
    if (Used != S.size())
      return false;
  } catch (...) {
    return false;
  }
  if (!(V > 0.0) || V > 1.0)
    return false;
  Threshold = V >= 1.0 ? UINT64_MAX : uint64_t(V * 18446744073709551615.0);
  return true;
}

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

namespace msq {
namespace fault {
namespace detail {

std::atomic<bool> Armed{false};

bool shouldFailSlow(Point P) {
  std::lock_guard<std::mutex> Lock(StateMutex);
  PointState &S = Points[unsigned(P)];
  uint64_t E = ++S.Evaluations;
  if (!S.HasSchedule || E <= S.After)
    return false;
  bool Trip;
  if (S.Every)
    Trip = ((E - S.After) % S.Every) == 0;
  else
    Trip = splitmix64(S.Seed ^ (E * 0xFF51AFD7ED558CCDULL)) <= S.Threshold;
  if (!Trip)
    return false;
  if (S.MaxTrips && S.Trips >= S.MaxTrips)
    return false; // trip budget spent; the point goes quiet
  ++S.Trips;
  return true;
}

} // namespace detail

const char *pointName(Point P) { return PointNames[unsigned(P)]; }

void reset() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  resetLocked();
}

bool configure(const std::string &Schedule, std::string *Err) {
  // Parse into a scratch table first so a malformed spec arms nothing.
  PointState Parsed[NumPoints];
  bool Any = false;
  size_t Pos = 0;
  while (Pos < Schedule.size()) {
    size_t End = Schedule.find(';', Pos);
    if (End == std::string::npos)
      End = Schedule.size();
    std::string_view Entry(Schedule.data() + Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;
    size_t Colon = Entry.find(':');
    if (Colon == std::string_view::npos)
      return fail(Err, "entry '" + std::string(Entry) +
                           "' lacks a ':' between point and parameters");
    std::string_view Name = Entry.substr(0, Colon);
    int PointIdx = -1;
    for (unsigned I = 0; I != NumPoints; ++I)
      if (Name == PointNames[I])
        PointIdx = int(I);
    if (PointIdx < 0)
      return fail(Err, "unknown injection point '" + std::string(Name) + "'");
    PointState &P = Parsed[PointIdx];
    if (P.HasSchedule)
      return fail(Err, "injection point '" + std::string(Name) +
                           "' scheduled twice");
    P.HasSchedule = true;
    bool HasTrigger = false, HasSeed = false;
    std::string_view Params = Entry.substr(Colon + 1);
    size_t PPos = 0;
    while (PPos <= Params.size()) {
      size_t PEnd = Params.find(',', PPos);
      if (PEnd == std::string_view::npos)
        PEnd = Params.size();
      std::string_view Param = Params.substr(PPos, PEnd - PPos);
      PPos = PEnd + 1;
      size_t Eq = Param.find('=');
      if (Eq == std::string_view::npos)
        return fail(Err, "parameter '" + std::string(Param) +
                             "' lacks '=' (in '" + std::string(Entry) + "')");
      std::string_view Key = Param.substr(0, Eq);
      std::string_view Val = Param.substr(Eq + 1);
      if (Key == "every") {
        if (!parseU64(Val, P.Every) || P.Every == 0)
          return fail(Err, "bad every= value '" + std::string(Val) + "'");
        HasTrigger = true;
      } else if (Key == "p") {
        if (!parseProbability(Val, P.Threshold))
          return fail(Err, "bad p= value '" + std::string(Val) +
                               "' (want a probability in (0, 1])");
        HasTrigger = true;
      } else if (Key == "seed") {
        if (!parseU64(Val, P.Seed))
          return fail(Err, "bad seed= value '" + std::string(Val) + "'");
        HasSeed = true;
      } else if (Key == "times") {
        if (!parseU64(Val, P.MaxTrips) || P.MaxTrips == 0)
          return fail(Err, "bad times= value '" + std::string(Val) + "'");
      } else if (Key == "after") {
        if (!parseU64(Val, P.After))
          return fail(Err, "bad after= value '" + std::string(Val) + "'");
      } else {
        return fail(Err, "unknown parameter '" + std::string(Key) +
                             "' (in '" + std::string(Entry) + "')");
      }
      if (PPos > Params.size())
        break;
    }
    if (P.Every && P.Threshold)
      return fail(Err, "point '" + std::string(Name) +
                           "' mixes every= with p=");
    if (!HasTrigger)
      return fail(Err, "point '" + std::string(Name) +
                           "' needs every=N or p=F");
    if (HasSeed && !P.Threshold)
      return fail(Err, "seed= only applies to p= schedules (point '" +
                           std::string(Name) + "')");
    Any = true;
  }

  std::lock_guard<std::mutex> Lock(StateMutex);
  resetLocked();
  if (!Any)
    return true; // empty schedule == disarm
  for (unsigned I = 0; I != NumPoints; ++I)
    Points[I] = Parsed[I];
  ActiveSchedule = Schedule;
  detail::Armed.store(true, std::memory_order_release);
  return true;
}

bool configureFromEnvironment(std::string *Err) {
  const char *Env = std::getenv("MSQ_FAULT_SCHEDULE");
  if (!Env || !*Env)
    return true;
  return configure(Env, Err);
}

uint64_t evaluations(Point P) {
  std::lock_guard<std::mutex> Lock(StateMutex);
  return Points[unsigned(P)].Evaluations;
}

uint64_t trips(Point P) {
  std::lock_guard<std::mutex> Lock(StateMutex);
  return Points[unsigned(P)].Trips;
}

std::string statsJson() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  std::string Out = "{\"enabled\":";
  Out += detail::Armed.load(std::memory_order_relaxed) ? "true" : "false";
  Out += ",\"schedule\":\"";
  Out += jsonEscape(ActiveSchedule);
  Out += "\",\"points\":{";
  for (unsigned I = 0; I != NumPoints; ++I) {
    if (I)
      Out += ',';
    Out += '"';
    Out += PointNames[I];
    Out += "\":{\"evaluations\":";
    Out += std::to_string(Points[I].Evaluations);
    Out += ",\"trips\":";
    Out += std::to_string(Points[I].Trips);
    Out += '}';
  }
  Out += "}}";
  return Out;
}

} // namespace fault
} // namespace msq
