//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unix-domain socket and frame-IO helpers for the expansion server. The
/// wire unit everywhere is a FRAME: one newline-terminated byte string
/// (the protocol layer puts one JSON object per frame). FrameReader
/// enforces a maximum frame size so a malicious or broken peer cannot
/// make the server buffer unbounded input; an oversized frame is reported
/// as a distinct condition (the server answers it with an error and drops
/// the connection rather than resynchronizing mid-stream).
///
/// Everything here works on plain file descriptors, so the same framing
/// serves Unix sockets (the daemon) and pipes/stdio (tests, CI).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_SOCKET_H
#define MSQ_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace msq {

/// Owning file descriptor (closes on destruction; move-only).
class FdHandle {
public:
  FdHandle() = default;
  explicit FdHandle(int Fd) : Fd(Fd) {}
  FdHandle(FdHandle &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FdHandle &operator=(FdHandle &&O) noexcept;
  FdHandle(const FdHandle &) = delete;
  FdHandle &operator=(const FdHandle &) = delete;
  ~FdHandle() { reset(); }

  int get() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  int release();
  void reset(int NewFd = -1);

private:
  int Fd = -1;
};

/// A bound, listening Unix-domain socket. The socket file is unlinked on
/// destruction (best effort).
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(UnixListener &&) = default;
  UnixListener &operator=(UnixListener &&) = default;

  /// Binds and listens on \p Path (unlinking a stale socket file first).
  /// Returns false with \p Err set on failure.
  bool listenOn(const std::string &Path, std::string *Err);

  /// Waits for a client or for \p WakeFd to become readable (the drain
  /// signal). Returns the accepted fd, or -1 when woken/failed — callers
  /// distinguish via \p Woken. A -1 with \p *Transient set true (kernel
  /// conditions like EMFILE/ENFILE, or an injected `server.accept` fault)
  /// means the listener itself is still healthy: retry with backoff
  /// instead of shutting down.
  int acceptClient(int WakeFd, bool &Woken, bool *Transient = nullptr);

  bool valid() const { return Fd.valid(); }
  const std::string &path() const { return Path; }

private:
  FdHandle Fd;
  std::string Path;
};

/// Connects to the Unix-domain socket at \p Path; returns the fd or -1
/// (with \p Err set).
int connectUnix(const std::string &Path, std::string *Err);

/// A bound, listening TCP socket (cluster transport). Binds IPv4 only;
/// shards and the router are deployment-internal processes, so the
/// default host is loopback and anything wider must be opted into
/// explicitly.
class TcpListener {
public:
  TcpListener() = default;
  TcpListener(TcpListener &&) = default;
  TcpListener &operator=(TcpListener &&) = default;

  /// Binds and listens on \p Host:\p Port. Port 0 binds an ephemeral
  /// port; read the real one back with port(). Returns false with \p Err
  /// set on failure.
  bool listenOn(const std::string &Host, uint16_t Port, std::string *Err);

  /// Same contract as UnixListener::acceptClient (wake fd, transient
  /// kernel conditions, injected `server.accept` faults). Accepted
  /// sockets have TCP_NODELAY set: frames are small and latency-bound.
  int acceptClient(int WakeFd, bool &Woken, bool *Transient = nullptr);

  bool valid() const { return Fd.valid(); }
  uint16_t port() const { return BoundPort; }

private:
  FdHandle Fd;
  uint16_t BoundPort = 0;
};

/// Connects to \p Host:\p Port (TCP, TCP_NODELAY); returns the fd or -1
/// (with \p Err set).
int connectTcp(const std::string &Host, uint16_t Port, std::string *Err);

/// Splits "HOST:PORT" (e.g. "127.0.0.1:7070"). Returns false with \p Err
/// set when the port is missing, non-numeric, or out of range.
bool parseHostPort(const std::string &Address, std::string &Host,
                   uint16_t &Port, std::string *Err);

/// Arms SO_RCVTIMEO/SO_SNDTIMEO on \p Fd so a wedged peer turns into a
/// read/write error after \p Millis instead of a hang. Cluster-internal
/// clients (router->shard, shard->remote cache) always set this: the
/// retry/degrade discipline needs failures to be *prompt*.
bool setSocketTimeout(int Fd, int Millis);

/// Incremental reader of newline-terminated frames from a descriptor.
class FrameReader {
public:
  enum class Status {
    Frame,    ///< A complete frame was read (newline stripped).
    Eof,      ///< Orderly end of stream at a frame boundary.
    Truncated,///< Stream ended mid-frame (partial bytes discarded).
    TooLong,  ///< Frame exceeded the size limit before its newline.
    Idle,     ///< No bytes arrived within the armed idle timeout.
    Error,    ///< Read error (errno-level).
  };

  FrameReader(int Fd, size_t MaxFrameBytes)
      : Fd(Fd), MaxFrameBytes(MaxFrameBytes) {}

  /// Arms an idle timeout: next() returns Status::Idle when no bytes
  /// arrive for \p Millis while waiting for (more of) a frame. 0 disarms.
  /// The timeout applies per read, not per frame, so a slow-but-active
  /// peer never trips it.
  void setIdleTimeout(unsigned Millis) { IdleTimeoutMillis = Millis; }

  /// Blocks until one of the Status conditions; fills \p Frame on Frame.
  Status next(std::string &Frame);

private:
  int Fd;
  size_t MaxFrameBytes;
  unsigned IdleTimeoutMillis = 0; // 0 = wait forever
  std::string Buffer;
  size_t Scanned = 0; // prefix of Buffer already known newline-free
};

/// Writes all of \p Bytes to \p Fd, retrying on short writes and EINTR.
/// Returns false on any write error (e.g. the peer disconnected).
bool writeAll(int Fd, std::string_view Bytes);

/// Writes \p Frame plus the terminating newline.
bool writeFrame(int Fd, std::string_view Frame);

} // namespace msq

#endif // MSQ_SUPPORT_SOCKET_H
