//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content hashing for the expansion cache. A ContentHasher is a streaming
/// 128-bit hash (two independent FNV-1a lanes whose keys differ) used to
/// derive cache keys from source text, macro-library fingerprints, and
/// option bits. Every variable-length field is length-prefixed so that
/// adjacent fields can never alias ("ab"+"c" vs "a"+"bc").
///
/// This is a content-addressing hash, not a cryptographic one: collisions
/// are astronomically unlikely for the corpus sizes MS2 handles, and a
/// collision costs a wrong cache replay, not a security boundary.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_HASH_H
#define MSQ_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace msq {

class ContentHasher {
public:
  /// Absorbs raw bytes into both lanes.
  void bytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      Lo = (Lo ^ P[I]) * PrimeLo;
      Hi = (Hi ^ P[I]) * PrimeHi;
    }
  }

  /// Absorbs a length-prefixed string.
  void str(std::string_view S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  /// Absorbs one 64-bit integer (fixed width, so no prefix needed).
  void u64(uint64_t V) {
    unsigned char Buf[8];
    for (int I = 0; I != 8; ++I)
      Buf[I] = static_cast<unsigned char>(V >> (I * 8));
    bytes(Buf, 8);
  }

  void boolean(bool B) { u64(B ? 1 : 0); }

  /// The 128-bit digest as 32 lowercase hex characters (safe as a file
  /// name in the on-disk cache).
  std::string hexDigest() const {
    static const char Hex[] = "0123456789abcdef";
    std::string Out;
    Out.reserve(32);
    for (uint64_t Lane : {Lo, Hi})
      for (int I = 15; I >= 0; --I)
        Out += Hex[(Lane >> (I * 4)) & 0xf];
    return Out;
  }

private:
  static constexpr uint64_t PrimeLo = 0x100000001b3ull;
  static constexpr uint64_t PrimeHi = 0x10000000233ull;
  uint64_t Lo = 0xcbf29ce484222325ull;
  uint64_t Hi = 0x6c62272e07bb0142ull;
};

} // namespace msq

#endif // MSQ_SUPPORT_HASH_H
