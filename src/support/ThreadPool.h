//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal worker-thread utilities for the batch expansion driver. The
/// engine is strictly single-threaded; parallelism in MS2 always takes the
/// form "N independent engines, one per worker", so all that is needed
/// here is a fork/join worker group and a work-stealing index loop.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_THREADPOOL_H
#define MSQ_SUPPORT_THREADPOOL_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace msq {

/// Fork/join worker group.
class ThreadPool {
public:
  /// Picks a worker count: \p Requested when nonzero, otherwise the
  /// hardware concurrency (at least 1). Never more than \p MaxUseful.
  static unsigned chooseWorkerCount(unsigned Requested, size_t MaxUseful) {
    unsigned N = Requested ? Requested : std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
    if (MaxUseful != 0 && N > MaxUseful)
      N = unsigned(MaxUseful);
    return N;
  }

  /// Runs Body(WorkerId) on \p Workers threads and joins them all before
  /// returning. WorkerIds are 0..Workers-1. With Workers == 1 the body
  /// runs on the calling thread (no spawn cost, easier debugging).
  static void runWorkers(unsigned Workers,
                         const std::function<void(unsigned)> &Body) {
    if (Workers <= 1) {
      Body(0);
      return;
    }
    std::vector<std::thread> Threads;
    Threads.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Threads.emplace_back([&Body, W] { Body(W); });
    for (std::thread &T : Threads)
      T.join();
  }

  /// Work-stealing parallel loop: Body(WorkerId, Index) runs exactly once
  /// for each Index in [0, N), with indices handed out dynamically so that
  /// uneven item costs balance across workers.
  static void parallelFor(unsigned Workers, size_t N,
                          const std::function<void(unsigned, size_t)> &Body) {
    std::atomic<size_t> Next{0};
    runWorkers(Workers, [&](unsigned W) {
      for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
           I = Next.fetch_add(1, std::memory_order_relaxed))
        Body(W, I);
    });
  }
};

} // namespace msq

#endif // MSQ_SUPPORT_THREADPOOL_H
