//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size log-bucketed histogram for request latencies. Buckets are
/// powers of two refined by three sub-bucket bits, so any recorded value
/// lands in a bucket whose width is at most 12.5% of its magnitude —
/// precise enough for p50/p95/p99 reporting, with O(1) record and no
/// allocation after construction. Values are unitless; the server records
/// nanoseconds.
///
/// Not internally synchronized: callers serialize access (the expansion
/// server guards its histogram with the metrics mutex).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_HISTOGRAM_H
#define MSQ_SUPPORT_HISTOGRAM_H

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace msq {

class LatencyHistogram {
public:
  /// Sub-bucket resolution: 2^SubBits linear slots per power-of-two range.
  static constexpr unsigned SubBits = 3;
  static constexpr size_t BucketCount = (64 - SubBits + 1) << SubBits;

  void record(uint64_t Value) {
    ++Buckets[bucketIndex(Value)];
    ++Count_;
    Sum_ += Value;
    if (Value > Max_)
      Max_ = Value;
  }

  uint64_t count() const { return Count_; }
  uint64_t sum() const { return Sum_; }
  uint64_t max() const { return Max_; }
  uint64_t mean() const { return Count_ ? Sum_ / Count_ : 0; }

  /// The approximate value at quantile \p Q in [0, 1]: the lower bound of
  /// the bucket containing the ceil(Q * count)-th smallest recording.
  /// Returns 0 when nothing was recorded.
  uint64_t quantile(double Q) const {
    if (Count_ == 0)
      return 0;
    if (Q < 0)
      Q = 0;
    if (Q > 1)
      Q = 1;
    uint64_t Rank = uint64_t(Q * double(Count_));
    if (Rank >= Count_)
      Rank = Count_ - 1;
    uint64_t Seen = 0;
    for (size_t I = 0; I != BucketCount; ++I) {
      Seen += Buckets[I];
      if (Seen > Rank)
        return bucketLowerBound(I);
    }
    return Max_; // unreachable unless counters were merged inconsistently
  }

  void merge(const LatencyHistogram &Other) {
    for (size_t I = 0; I != BucketCount; ++I)
      Buckets[I] += Other.Buckets[I];
    Count_ += Other.Count_;
    Sum_ += Other.Sum_;
    if (Other.Max_ > Max_)
      Max_ = Other.Max_;
  }

  /// Bucketing scheme (exposed for tests). Values below 2^SubBits map to
  /// exact one-value buckets; above that, the bucket keeps the leading
  /// 1+SubBits significant bits.
  static size_t bucketIndex(uint64_t V) {
    if (V < (uint64_t(1) << SubBits))
      return size_t(V);
    unsigned Major = unsigned(std::bit_width(V)) - 1; // >= SubBits
    uint64_t Sub = (V >> (Major - SubBits)) & ((uint64_t(1) << SubBits) - 1);
    return (size_t(Major - SubBits + 1) << SubBits) | size_t(Sub);
  }

  static uint64_t bucketLowerBound(size_t Index) {
    if (Index < (size_t(1) << SubBits))
      return uint64_t(Index);
    unsigned Major = unsigned(Index >> SubBits) + SubBits - 1;
    uint64_t Sub = uint64_t(Index) & ((uint64_t(1) << SubBits) - 1);
    return (uint64_t(1) << Major) | (Sub << (Major - SubBits));
  }

private:
  std::array<uint64_t, BucketCount> Buckets{};
  uint64_t Count_ = 0;
  uint64_t Sum_ = 0;
  uint64_t Max_ = 0;
};

} // namespace msq

#endif // MSQ_SUPPORT_HISTOGRAM_H
