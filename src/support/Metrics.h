//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expansion observability: per-macro profile entries collected by the
/// expander and aggregated across translation units by the batch driver.
/// The paper treats expansion speed as unimportant per invocation; a
/// production service expanding many units needs to see where the time
/// goes, so every invocation is attributed to its macro here.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_METRICS_H
#define MSQ_SUPPORT_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace msq {

/// Accumulated cost of one macro across every invocation observed.
struct MacroProfileEntry {
  std::string Name;
  uint64_t Invocations = 0;
  /// Wall-clock time spent running the macro body, cumulative and worst
  /// case. Nested expansions triggered by a body are included in their
  /// enclosing invocation's time (inclusive timing, like a call-graph
  /// profiler's "total" column).
  uint64_t TotalNanos = 0;
  uint64_t MaxNanos = 0;
  /// Arena objects allocated while the invocation ran; AST nodes dominate,
  /// so this approximates "nodes produced".
  uint64_t NodesProduced = 0;
  /// Fresh identifiers (gensym + hygiene renames) created by the macro.
  uint64_t GensymsCreated = 0;

  /// Adds \p Other's costs into this entry (names must already agree).
  void accumulate(const MacroProfileEntry &Other);
};

/// A set of per-macro profile entries, kept sorted by macro name so that
/// merges and dumps are deterministic regardless of expansion order.
struct ExpansionProfile {
  std::vector<MacroProfileEntry> Macros;

  bool empty() const { return Macros.empty(); }
  uint64_t totalInvocations() const;
  uint64_t totalNanos() const;

  /// Looks an entry up by name; nullptr when the macro never ran.
  const MacroProfileEntry *find(const std::string &Name) const;

  /// Restores the sorted-by-name invariant (after bulk insertion).
  void normalize();

  /// Merges \p Other into this profile, summing entries macro-by-macro.
  /// Both sides must be normalized; the result is too.
  void merge(const ExpansionProfile &Other);

  /// Renders the profile as a JSON object:
  /// {"total_invocations":N,"total_ns":N,"macros":[{"name":...,
  ///  "invocations":N,"total_ns":N,"max_ns":N,"nodes":N,"gensyms":N}]}
  std::string toJson() const;
};

/// Expansion-cache accounting for one batch (or one cache lifetime).
/// Every unit lands in exactly one of the three counters: replayed from
/// cache (hit), expanded and stored (miss), or expanded but not storable
/// (uncacheable — the unit mutated meta globals, timed out, or the
/// session fingerprint could not be computed stably).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Uncacheable = 0;
  /// Bytes of cached entries replayed (on hits) and serialized (on
  /// stores). In-memory entries are counted at their serialized size so
  /// the numbers mean the same thing with and without a disk directory.
  uint64_t BytesRead = 0;
  uint64_t BytesWritten = 0;
  /// Disk-tier failures. The disk tier degrades silently BY DESIGN (a
  /// corrupt entry is a miss, an unwritable directory keeps the memory
  /// tier working), so these counters are the only way a deployment can
  /// see that its persistent tier is rotting. A read error is an entry
  /// that existed but could not be used (unreadable or failed
  /// deserialization); a plain absent entry is not an error. A write
  /// error is a disk publish ATTEMPT that failed at any stage (so one
  /// store can count two: the first attempt and its retry).
  uint64_t DiskReadErrors = 0;
  uint64_t DiskWriteErrors = 0;
  /// Stores that degraded to memory-only: the disk publish failed, was
  /// retried once after a backoff, and failed again, so the entry exists
  /// only in the memory tier. Expansion output is unaffected (graceful
  /// degradation); a deployment seeing this grow is losing persistence.
  uint64_t DiskDegraded = 0;
  /// Remote-tier accounting (cluster mode). A remote hit is an entry
  /// served by the shared cache daemon after both local tiers missed; a
  /// remote error is a lookup or publish attempt that failed (timeout,
  /// connection loss, injected `rcache.*` fault) — the request proceeds
  /// as a plain miss, so errors cost latency, never correctness. Stores
  /// count entries successfully published to the remote tier.
  uint64_t RemoteHits = 0;
  uint64_t RemoteErrors = 0;
  uint64_t RemoteStores = 0;

  void merge(const CacheStats &Other) {
    Hits += Other.Hits;
    Misses += Other.Misses;
    Uncacheable += Other.Uncacheable;
    BytesRead += Other.BytesRead;
    BytesWritten += Other.BytesWritten;
    DiskReadErrors += Other.DiskReadErrors;
    DiskWriteErrors += Other.DiskWriteErrors;
    DiskDegraded += Other.DiskDegraded;
    RemoteHits += Other.RemoteHits;
    RemoteErrors += Other.RemoteErrors;
    RemoteStores += Other.RemoteStores;
  }

  /// {"hits":N,"misses":N,"uncacheable":N,"bytes_read":N,
  ///  "bytes_written":N,"disk_read_errors":N,"disk_write_errors":N,
  ///  "disk_degraded":N,"remote_hits":N,"remote_errors":N,
  ///  "remote_stores":N}
  std::string toJson() const;
};

/// Escapes \p S for inclusion in a JSON string literal (no surrounding
/// quotes added).
std::string jsonEscape(const std::string &S);

} // namespace msq

#endif // MSQ_SUPPORT_METRICS_H
