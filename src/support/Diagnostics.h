//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection. The library never throws; every component reports
/// problems through a DiagnosticsEngine, and callers inspect it after each
/// phase. Messages follow the LLVM style: lower-case first letter, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_DIAGNOSTICS_H
#define MSQ_SUPPORT_DIAGNOSTICS_H

#include "support/SourceManager.h"

#include <string>
#include <vector>

namespace msq {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
  /// Provenance frame current when the diagnostic was reported (0 = not
  /// inside any macro expansion). Frame ids index a ProvenanceTracker
  /// (analysis/Provenance.h); the tracker renders the "in expansion of"
  /// backtrace chain for non-zero frames.
  uint32_t ProvFrame = 0;
};

/// Collects diagnostics for a compilation. Not thread-safe.
class DiagnosticsEngine {
public:
  explicit DiagnosticsEngine(const SourceManager &SM) : SM(SM) {}

  void report(DiagSeverity Sev, SourceLoc Loc, std::string Message) {
    if (Sev == DiagSeverity::Error)
      ++NumErrors;
    Diags.push_back({Sev, Loc, std::move(Message), CurProvFrame});
  }

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic as "file:line:col: severity: message" lines.
  std::string renderAll() const { return renderFrom(0); }

  /// Renders diagnostics starting at index \p First (used to scope output
  /// to one phase of a longer session).
  std::string renderFrom(size_t First) const;

  /// Drops all collected diagnostics (used by tests between cases).
  void clear() {
    Diags.clear();
    NumErrors = 0;
    CurProvFrame = 0;
  }

  const SourceManager &sourceManager() const { return SM; }

  /// Sets the provenance frame stamped onto subsequently reported
  /// diagnostics. The expander moves this as it pushes/pops invocation
  /// frames so that any diagnostic emitted while a macro body runs (or
  /// while its produced code is re-expanded) carries the backtrace of the
  /// responsible invocation. 0 means "not inside any expansion".
  void setProvenanceFrame(uint32_t Frame) { CurProvFrame = Frame; }
  uint32_t provenanceFrame() const { return CurProvFrame; }

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  uint32_t CurProvFrame = 0;
};

} // namespace msq

#endif // MSQ_SUPPORT_DIAGNOSTICS_H
