//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bump-pointer arena allocator. All AST nodes, interned strings, and other
/// parse-lifetime objects live in an Arena and are freed wholesale when the
/// Arena is destroyed. Objects allocated here must be trivially destructible
/// or must not rely on their destructor running.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_SUPPORT_ARENA_H
#define MSQ_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace msq {

/// A chunked bump-pointer allocator.
///
/// Allocation never fails short of ::operator new failing; deallocation of
/// individual objects is a no-op. Statistics (bytes and object counts) are
/// tracked so benchmarks can report allocation volume.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 && "alignment not a power of two");
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      growChunk(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    BytesAllocated += Size;
    ++NumAllocations;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a \p T in the arena, forwarding \p Args to its constructor.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(A)...);
  }

  /// Copies \p Count objects of type \p T into the arena and returns the
  /// new base pointer. Returns nullptr when \p Count is zero.
  template <typename T> T *copyArray(const T *Src, size_t Count) {
    if (Count == 0)
      return nullptr;
    T *Mem = static_cast<T *>(allocate(sizeof(T) * Count, alignof(T)));
    for (size_t I = 0; I != Count; ++I)
      new (Mem + I) T(Src[I]);
    return Mem;
  }

  /// Copies a character buffer (not NUL-terminated) into the arena.
  char *copyString(const char *Data, size_t Len) {
    char *Mem = static_cast<char *>(allocate(Len + 1, 1));
    std::memcpy(Mem, Data, Len);
    Mem[Len] = '\0';
    return Mem;
  }

  /// Total payload bytes handed out so far.
  size_t bytesAllocated() const { return BytesAllocated; }
  /// Number of allocate() calls so far.
  size_t numAllocations() const { return NumAllocations; }

private:
  void growChunk(size_t MinSize) {
    size_t Size = NextChunkSize;
    if (Size < MinSize)
      Size = MinSize;
    NextChunkSize = NextChunkSize * 2;
    if (NextChunkSize > MaxChunkSize)
      NextChunkSize = MaxChunkSize;
    Chunks.push_back(std::make_unique<char[]>(Size));
    Cur = Chunks.back().get();
    End = Cur + Size;
  }

  static constexpr size_t InitialChunkSize = 16 * 1024;
  static constexpr size_t MaxChunkSize = 1024 * 1024;

  std::vector<std::unique_ptr<char[]>> Chunks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextChunkSize = InitialChunkSize;
  size_t BytesAllocated = 0;
  size_t NumAllocations = 0;
};

/// A borrowed view of a contiguous, arena-owned array.
///
/// Analogous in spirit to llvm::ArrayRef: cheap to copy, never owns.
template <typename T> class ArenaRef {
public:
  ArenaRef() = default;
  ArenaRef(const T *Data, size_t Size) : Data(Data), Size_(Size) {}

  /// Copies the contents of \p V into \p A and refers to the copy.
  static ArenaRef copy(Arena &A, const std::vector<T> &V) {
    return ArenaRef(A.copyArray(V.data(), V.size()), V.size());
  }

  const T *begin() const { return Data; }
  const T *end() const { return Data + Size_; }
  size_t size() const { return Size_; }
  bool empty() const { return Size_ == 0; }
  const T &operator[](size_t I) const {
    assert(I < Size_ && "ArenaRef index out of range");
    return Data[I];
  }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Size_ - 1]; }

private:
  const T *Data = nullptr;
  size_t Size_ = 0;
};

} // namespace msq

#endif // MSQ_SUPPORT_ARENA_H
