//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include "support/Fault.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace msq;

FdHandle &FdHandle::operator=(FdHandle &&O) noexcept {
  if (this != &O) {
    reset(O.Fd);
    O.Fd = -1;
  }
  return *this;
}

int FdHandle::release() {
  int F = Fd;
  Fd = -1;
  return F;
}

void FdHandle::reset(int NewFd) {
  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
}

namespace {

/// Fills a sockaddr_un for \p Path; fails when the path does not fit
/// (sun_path is famously short).
bool makeAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string *Err) {
  if (Path.size() + 1 > sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// Shared accept loop for the Unix and TCP listeners: poll on the
/// listener plus the wake fd, evaluate the `server.accept` injection
/// point, and classify kernel resource exhaustion as transient.
int acceptLoop(int ListenFd, int WakeFd, bool &Woken, bool *Transient) {
  Woken = false;
  if (Transient)
    *Transient = false;
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakeFd, POLLIN, 0}};
    int N = ::poll(Fds, WakeFd >= 0 ? 2 : 1, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (WakeFd >= 0 && (Fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      Woken = true;
      return -1;
    }
    if (Fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
      // server.accept: a trip simulates the kernel refusing the accept
      // (fd exhaustion). The connection stays in the listen backlog, so a
      // retried accept after backoff picks it up — no client is lost.
      if (fault::enabled() &&
          fault::shouldFail(fault::Point::ServerAccept)) {
        if (Transient)
          *Transient = true;
        return -1;
      }
      int C = ::accept(ListenFd, nullptr, nullptr);
      if (C >= 0)
        return C;
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN)
        continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion, not listener death: report transient so
        // the daemon backs off and retries instead of exiting.
        if (Transient)
          *Transient = true;
        return -1;
      }
      return -1;
    }
  }
}

void setNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

} // namespace

UnixListener::~UnixListener() {
  if (Fd.valid() && !Path.empty())
    ::unlink(Path.c_str());
}

bool UnixListener::listenOn(const std::string &P, std::string *Err) {
  sockaddr_un Addr;
  if (!makeAddress(P, Addr, Err))
    return false;
  FdHandle S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoMessage("socket");
    return false;
  }
  ::unlink(P.c_str()); // a stale socket file from a dead daemon
  if (::bind(S.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (Err)
      *Err = errnoMessage("bind");
    return false;
  }
  if (::listen(S.get(), 64) != 0) {
    if (Err)
      *Err = errnoMessage("listen");
    return false;
  }
  Fd = std::move(S);
  Path = P;
  return true;
}

int UnixListener::acceptClient(int WakeFd, bool &Woken, bool *Transient) {
  return acceptLoop(Fd.get(), WakeFd, Woken, Transient);
}

bool TcpListener::listenOn(const std::string &Host, uint16_t Port,
                           std::string *Err) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "bad IPv4 address: " + Host;
    return false;
  }
  FdHandle S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoMessage("socket");
    return false;
  }
  int One = 1;
  ::setsockopt(S.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(S.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (Err)
      *Err = errnoMessage("bind");
    return false;
  }
  if (::listen(S.get(), 128) != 0) {
    if (Err)
      *Err = errnoMessage("listen");
    return false;
  }
  // Port 0 asked the kernel for an ephemeral port; read back the real one
  // so tests and the cluster harness can advertise it.
  sockaddr_in Bound;
  socklen_t Len = sizeof(Bound);
  if (::getsockname(S.get(), reinterpret_cast<sockaddr *>(&Bound), &Len) !=
      0) {
    if (Err)
      *Err = errnoMessage("getsockname");
    return false;
  }
  BoundPort = ntohs(Bound.sin_port);
  Fd = std::move(S);
  return true;
}

int TcpListener::acceptClient(int WakeFd, bool &Woken, bool *Transient) {
  int C = acceptLoop(Fd.get(), WakeFd, Woken, Transient);
  if (C >= 0)
    setNoDelay(C);
  return C;
}

int msq::connectTcp(const std::string &Host, uint16_t Port,
                    std::string *Err) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "bad IPv4 address: " + Host;
    return -1;
  }
  FdHandle S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoMessage("socket");
    return -1;
  }
  if (::connect(S.get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    if (Err)
      *Err = errnoMessage("connect");
    return -1;
  }
  setNoDelay(S.get());
  return S.release();
}

bool msq::parseHostPort(const std::string &Address, std::string &Host,
                        uint16_t &Port, std::string *Err) {
  size_t Colon = Address.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == Address.size()) {
    if (Err)
      *Err = "address '" + Address + "' is not HOST:PORT";
    return false;
  }
  unsigned long Value = 0;
  for (size_t I = Colon + 1; I != Address.size(); ++I) {
    char C = Address[I];
    if (C < '0' || C > '9') {
      if (Err)
        *Err = "bad port in address '" + Address + "'";
      return false;
    }
    Value = Value * 10 + unsigned(C - '0');
    if (Value > 65535) {
      if (Err)
        *Err = "port out of range in address '" + Address + "'";
      return false;
    }
  }
  if (Value == 0) {
    if (Err)
      *Err = "bad port in address '" + Address + "'";
    return false;
  }
  Host = Address.substr(0, Colon);
  if (Host.empty())
    Host = "127.0.0.1";
  Port = uint16_t(Value);
  return true;
}

bool msq::setSocketTimeout(int Fd, int Millis) {
  timeval TV;
  TV.tv_sec = Millis / 1000;
  TV.tv_usec = (Millis % 1000) * 1000;
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV)) == 0 &&
         ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV)) == 0;
}

int msq::connectUnix(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!makeAddress(Path, Addr, Err))
    return -1;
  FdHandle S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid()) {
    if (Err)
      *Err = errnoMessage("socket");
    return -1;
  }
  if (::connect(S.get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    if (Err)
      *Err = errnoMessage("connect");
    return -1;
  }
  return S.release();
}

FrameReader::Status FrameReader::next(std::string &Frame) {
  for (;;) {
    // Scan only bytes not inspected by a previous call.
    size_t NL = Buffer.find('\n', Scanned);
    if (NL != std::string::npos) {
      Frame.assign(Buffer, 0, NL);
      Buffer.erase(0, NL + 1);
      Scanned = 0;
      return Status::Frame;
    }
    Scanned = Buffer.size();
    if (Buffer.size() > MaxFrameBytes)
      return Status::TooLong;
    if (IdleTimeoutMillis) {
      struct pollfd P = {Fd, POLLIN, 0};
      int R;
      do {
        R = ::poll(&P, 1, int(IdleTimeoutMillis));
      } while (R < 0 && errno == EINTR);
      if (R == 0)
        return Status::Idle;
      if (R < 0)
        return Status::Error;
      // POLLHUP/POLLERR fall through to read(), which reports them as
      // Eof/Truncated/Error with the usual frame-boundary distinction.
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N > 0) {
      Buffer.append(Chunk, size_t(N));
      continue;
    }
    if (N == 0)
      return Buffer.empty() ? Status::Eof : Status::Truncated;
    if (errno == EINTR)
      continue;
    return Status::Error;
  }
}

bool msq::writeAll(int Fd, std::string_view Bytes) {
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N > 0) {
      Off += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool msq::writeFrame(int Fd, std::string_view Frame) {
  std::string Out;
  Out.reserve(Frame.size() + 1);
  Out.append(Frame);
  Out.push_back('\n');
  return writeAll(Fd, Out);
}
