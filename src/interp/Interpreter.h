//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedded interpreter for the meta language. "Because the macro
/// language is C extended with AST datatypes and a few new primitive
/// functions, macro expansion is simply a matter of running a C program on
/// the parsed arguments of a macro invocation. ... The present
/// implementation uses an embedded interpreter for a subset of the C
/// language to execute meta-code."
///
/// Meta globals (metadcl) live in a persistent global environment owned by
/// the Interpreter, which is what enables the paper's *non-local
/// transformations* (the window-procedure accumulation example).
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_INTERP_INTERPRETER_H
#define MSQ_INTERP_INTERPRETER_H

#include "interp/Value.h"
#include "meta/Builtins.h"
#include "parser/Parser.h"
#include "quasi/Quasi.h"

#include <chrono>
#include <unordered_set>

namespace msq {

class DependencyRecorder;

class Interpreter {
public:
  struct Limits {
    unsigned MaxCallDepth = 256;
    size_t MaxSteps = 50'000'000;
    /// Enables hygienic template instantiation (see QuasiContext).
    bool HygienicTemplates = false;
    /// Records one line per macro invocation into traceLog() — the
    /// debugging aid the paper calls for ("The ease of debugging macros
    /// depends upon the quality of the debugger").
    bool TraceExpansions = false;
  };

  explicit Interpreter(CompilationContext &CC) : Interpreter(CC, Limits()) {}
  Interpreter(CompilationContext &CC, Limits L);

  /// Expands one macro invocation: binds actual parameters, runs the macro
  /// body, returns the produced value. An Unset value means failure
  /// (diagnosed).
  Value invokeMacro(const MacroInvocation *Inv);

  /// Processes a `metadcl` at its point in the translation unit: defines
  /// the meta globals (evaluating initializers).
  void processMetaDecl(const MetaDecl *MD);

  /// Evaluates a meta expression in the global environment (tests).
  Value evalInGlobalEnv(const Expr *E);

  /// Marks the start of one translation unit's expansion: resets the
  /// per-unit fuel accounting (\p MaxSteps, 0 = use Limits::MaxSteps) and
  /// arms a wall-clock deadline (\p TimeoutMillis, 0 = none). Until the
  /// first call, the step limit is session-cumulative as before.
  /// \p UnitName, when non-empty, names the unit in limit diagnostics so
  /// batch failures are attributable. The call also re-arms meta-global
  /// write detection (see metaGlobalsMutated).
  void beginUnit(size_t MaxSteps = 0, unsigned TimeoutMillis = 0,
                 std::string UnitName = "");

  /// True when the current unit stopped because it ran out of fuel
  /// (step budget) / hit its wall-clock deadline.
  bool unitFuelExhausted() const { return FuelExhausted; }
  bool unitTimedOut() const { return TimedOut; }

  /// True when the current unit was aborted by an injected interp.alloc
  /// fault (support/Fault.h): the meta program was stopped with a clean
  /// diagnostic, exactly like fuel exhaustion, and the engine stays
  /// usable for the next unit.
  bool unitAllocFailed() const { return AllocFailed; }

  /// True when the current unit wrote into meta-global state that existed
  /// when beginUnit ran: an assignment to a metadcl global (the paper's
  /// window-procedure accumulation) or a metadcl processed at global
  /// scope. Such units are non-local transformations — their expansion
  /// has side effects beyond their own output — so the expansion cache
  /// must treat them as uncacheable.
  bool metaGlobalsMutated() const { return GlobalsMutated; }

  /// A deep copy of the interpreter's mutable session state: the meta
  /// globals (frame maps copied so later metadcl/assignments cannot leak
  /// back) and the gensym counter (restored so fresh-name numbering is
  /// reproducible per unit). AST nodes and list/tuple payloads are shared
  /// with the live state; meta code never mutates those in place.
  /// Known approximation: a closure stored in a meta global keeps sharing
  /// its captured frames across restoreState.
  struct SavedState {
    std::vector<std::shared_ptr<EnvFrame>> GlobalFrames;
    size_t GensymCounter = 0;
  };
  SavedState saveState() const;
  void restoreState(const SavedState &S);

  /// Statistics for benchmarks.
  size_t stepsExecuted() const { return Steps; }
  size_t gensymCount() const { return GensymCounter; }

  /// Attaches a dependency recorder for the current unit (null detaches).
  /// While attached, every meta-level name that resolves in a
  /// session-global frame — or fails to resolve at all, since defining it
  /// later would change the outcome — is noted (expand/DependencyMap.h).
  void setDependencyRecorder(DependencyRecorder *R) { DepRec = R; }

  /// Accumulated expansion trace (empty unless Limits::TraceExpansions).
  const std::string &traceLog() const { return Trace; }
  void clearTraceLog() { Trace.clear(); }

  Env &globalEnv() { return Global; }

private:
  enum class Flow { Normal, Return, Break, Continue };

  Value evalExpr(const Expr *E, Env &E_);
  Flow execStmt(const Stmt *S, Env &E_, Value &Ret);
  Flow execSwitch(const SwitchStmt *Sw, Env &E_, Value &Ret);
  void execDeclaration(const Declaration *D, Env &E_);

  Value callCallable(const Value &Fn, std::vector<Value> Args, SourceLoc Loc);
  Value callMetaFunction(const MetaFunction *F, std::vector<Value> Args,
                         SourceLoc Loc);
  Value callBuiltin(const BuiltinInfo &Info, std::vector<Value> &Args,
                    SourceLoc Loc);
  Value evalMember(const Value &Base, Symbol Member, SourceLoc Loc);
  bool valuesEqual(const Value &A, const Value &B);

  Value error(SourceLoc Loc, const std::string &Msg) {
    CC.Diags.error(Loc, Msg);
    return Value();
  }
  bool step(SourceLoc Loc);

  /// Records that \p F received a write; flips GlobalsMutated when F is
  /// one of the global frames captured at beginUnit.
  void noteFrameWrite(const EnvFrame *F) {
    if (!GlobalsMutated && F && UnitBaseFrames.count(F))
      GlobalsMutated = true;
  }

  /// Dependency-recording twin of noteFrameWrite: a READ of \p Name that
  /// resolved in frame \p F (null = unresolved) is a library dependency
  /// when F is a session-global frame or the name is unbound (defined in
  /// Interpreter.cpp to avoid a header dependency on the recorder).
  void noteNameRead(Symbol Name, const EnvFrame *F);

  CompilationContext &CC;
  Limits Lim;
  QuasiContext QC;
  Env Global;
  unsigned Depth = 0;
  size_t Steps = 0;
  size_t GensymCounter = 0;
  bool StepLimitReported = false;
  std::string Trace;

  // Per-unit fuel and deadline (see beginUnit).
  size_t UnitStartSteps = 0;
  size_t UnitMaxSteps = 0; // 0 = Lim.MaxSteps
  bool FuelExhausted = false;
  bool TimedOut = false;
  bool AllocFailed = false; // injected interp.alloc fault (see step())
  bool HasDeadline = false;
  /// Configured budget behind Deadline, kept for the diagnostic text.
  unsigned UnitTimeoutMillis = 0;
  std::chrono::steady_clock::time_point Deadline;
  /// Name of the unit being expanded (limit diagnostics; see beginUnit).
  std::string UnitName;

  // Meta-global write detection (see metaGlobalsMutated): the global
  // frames that existed when the unit started. Frame identity is enough —
  // every macro/meta-function call environment chains these exact frames,
  // while block scopes and call frames are freshly allocated.
  std::unordered_set<const EnvFrame *> UnitBaseFrames;
  bool GlobalsMutated = false;
  /// Dependency recorder for the current unit (see setDependencyRecorder).
  DependencyRecorder *DepRec = nullptr;
};

/// Name of a node's kind ("binary-expression", ...) for the `->kind`
/// member and diagnostics.
const char *nodeKindName(NodeKind K);

} // namespace msq

#endif // MSQ_INTERP_INTERPRETER_H
