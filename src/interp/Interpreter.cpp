//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "expand/DependencyMap.h"
#include "meta/MetaTypeCheck.h"
#include "support/Fault.h"

using namespace msq;

void Interpreter::noteNameRead(Symbol Name, const EnvFrame *F) {
  if (!DepRec)
    return;
  // A read is a LIBRARY dependency when it resolved in a frame that
  // predated the unit (a session-global), or did not resolve at all — a
  // later definition of the name would change the outcome. Unit-local
  // bindings (call frames, block scopes, the unit's own metadcls once
  // they flip GlobalsMutated) are not library state.
  if (!F || UnitBaseFrames.count(F))
    DepRec->noteMetaName(std::string(Name.str()));
}

const char *msq::nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::IntLiteralExpr:
    return "int-literal";
  case NodeKind::FloatLiteralExpr:
    return "float-literal";
  case NodeKind::CharLiteralExpr:
    return "char-literal";
  case NodeKind::StringLiteralExpr:
    return "string-literal";
  case NodeKind::IdentExpr:
    return "identifier";
  case NodeKind::ParenExpr:
    return "paren-expression";
  case NodeKind::InitListExpr:
    return "initializer-list";
  case NodeKind::UnaryExpr:
    return "unary-expression";
  case NodeKind::BinaryExpr:
    return "binary-expression";
  case NodeKind::ConditionalExpr:
    return "conditional-expression";
  case NodeKind::CastExpr:
    return "cast-expression";
  case NodeKind::SizeofExpr:
    return "sizeof-expression";
  case NodeKind::CallExpr:
    return "function-call";
  case NodeKind::IndexExpr:
    return "index-expression";
  case NodeKind::MemberExpr:
    return "member-expression";
  case NodeKind::PlaceholderExpr:
    return "placeholder";
  case NodeKind::MacroInvocationExpr:
  case NodeKind::MacroInvocationStmt:
  case NodeKind::MacroInvocationDecl:
    return "macro-invocation";
  case NodeKind::BackquoteExpr:
    return "code-template";
  case NodeKind::LambdaExpr:
    return "anonymous-function";
  case NodeKind::CompoundStmtKind:
    return "compound-statement";
  case NodeKind::ExprStmt:
    return "expression-statement";
  case NodeKind::NullStmt:
    return "null-statement";
  case NodeKind::IfStmt:
    return "if-statement";
  case NodeKind::WhileStmt:
    return "while-statement";
  case NodeKind::DoStmt:
    return "do-statement";
  case NodeKind::ForStmt:
    return "for-statement";
  case NodeKind::SwitchStmt:
    return "switch-statement";
  case NodeKind::CaseStmt:
    return "case-statement";
  case NodeKind::DefaultStmt:
    return "default-statement";
  case NodeKind::LabelStmt:
    return "label-statement";
  case NodeKind::GotoStmt:
    return "goto-statement";
  case NodeKind::BreakStmt:
    return "break-statement";
  case NodeKind::ContinueStmt:
    return "continue-statement";
  case NodeKind::ReturnStmt:
    return "return-statement";
  case NodeKind::PlaceholderStmt:
  case NodeKind::PlaceholderDecl:
    return "placeholder";
  case NodeKind::DeclarationKind:
    return "declaration";
  case NodeKind::FunctionDefKind:
    return "function-definition";
  case NodeKind::MetaDeclKind:
    return "meta-declaration";
  case NodeKind::MacroDefKind:
    return "macro-definition";
  case NodeKind::TranslationUnitKind:
    return "translation-unit";
  case NodeKind::BuiltinTypeSpecKind:
  case NodeKind::TagTypeSpecKind:
  case NodeKind::TypedefNameSpecKind:
  case NodeKind::MetaAstTypeSpecKind:
  case NodeKind::PlaceholderTypeSpecKind:
    return "type-specifier";
  }
  return "?";
}

Interpreter::Interpreter(CompilationContext &CC, Limits L)
    : CC(CC), Lim(L), QC{CC.Ast, CC.Interner, CC.Types, CC.Diags} {
  QC.Hygienic = L.HygienicTemplates;
  QC.FreshCounter = &GensymCounter;
}

bool Interpreter::step(SourceLoc Loc) {
  if (FuelExhausted || TimedOut || AllocFailed)
    return false;
  ++Steps;
  size_t UnitSteps = Steps - UnitStartSteps;
  // Deterministic resource-exhaustion injection (interp.alloc), consulted
  // on a fixed step cadence so the evaluation sequence is a function of
  // the unit alone. A trip aborts the unit with a clean, attributed
  // diagnostic — the same discipline as fuel exhaustion — and the result
  // is marked fault-injected so it can never enter the expansion cache.
  if ((UnitSteps & 255) == 0 && fault::enabled() &&
      fault::shouldFail(fault::Point::InterpAlloc)) {
    AllocFailed = true;
    if (!StepLimitReported) {
      StepLimitReported = true;
      std::string Msg = "meta program failed to allocate expansion resources";
      if (!UnitName.empty())
        Msg += " in unit '" + UnitName + "'";
      Msg += " (injected fault at interp.alloc)";
      CC.Diags.error(Loc, std::move(Msg));
    }
    return false;
  }
  if (UnitSteps > (UnitMaxSteps ? UnitMaxSteps : Lim.MaxSteps)) {
    FuelExhausted = true;
    if (!StepLimitReported) {
      StepLimitReported = true;
      // Name the unit AND the configured budget so batch failures are
      // attributable and tunable from the rendered diagnostic alone.
      std::string Msg = "meta program exceeded the execution step limit (" +
                        std::to_string(UnitMaxSteps ? UnitMaxSteps
                                                    : Lim.MaxSteps) +
                        " steps)";
      if (!UnitName.empty())
        Msg += " in unit '" + UnitName + "'";
      Msg += " (runaway macro?)";
      CC.Diags.error(Loc, std::move(Msg));
    }
    return false;
  }
  // The clock is only consulted every 1024 steps to keep the hot path hot.
  if (HasDeadline && (UnitSteps & 1023) == 0 &&
      std::chrono::steady_clock::now() >= Deadline) {
    TimedOut = true;
    if (!StepLimitReported) {
      StepLimitReported = true;
      std::string Msg = "translation unit ";
      if (!UnitName.empty())
        Msg += "'" + UnitName + "' ";
      Msg += "exceeded its expansion time limit (" +
             std::to_string(UnitTimeoutMillis) + " ms) (runaway macro?)";
      CC.Diags.error(Loc, std::move(Msg));
    }
    return false;
  }
  return true;
}

void Interpreter::beginUnit(size_t MaxSteps, unsigned TimeoutMillis,
                            std::string Name) {
  UnitStartSteps = Steps;
  UnitMaxSteps = MaxSteps;
  StepLimitReported = false;
  FuelExhausted = false;
  TimedOut = false;
  AllocFailed = false;
  UnitName = std::move(Name);
  UnitTimeoutMillis = TimeoutMillis;
  HasDeadline = TimeoutMillis != 0;
  if (HasDeadline)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(TimeoutMillis);
  // Re-arm meta-global write detection against the frames the unit
  // starts from.
  GlobalsMutated = false;
  UnitBaseFrames.clear();
  for (const std::shared_ptr<EnvFrame> &F : Global.snapshot())
    UnitBaseFrames.insert(F.get());
}

Interpreter::SavedState Interpreter::saveState() const {
  SavedState S;
  std::vector<std::shared_ptr<EnvFrame>> Frames = Global.snapshot();
  S.GlobalFrames.reserve(Frames.size());
  for (const std::shared_ptr<EnvFrame> &F : Frames)
    S.GlobalFrames.push_back(std::make_shared<EnvFrame>(*F));
  S.GensymCounter = GensymCounter;
  return S;
}

void Interpreter::restoreState(const SavedState &S) {
  // Copy the frames again so the SavedState stays pristine and can be
  // restored any number of times.
  std::vector<std::shared_ptr<EnvFrame>> Frames;
  Frames.reserve(S.GlobalFrames.size());
  for (const std::shared_ptr<EnvFrame> &F : S.GlobalFrames)
    Frames.push_back(std::make_shared<EnvFrame>(*F));
  Global = Env::fromSnapshot(std::move(Frames));
  GensymCounter = S.GensymCounter;
}

//===----------------------------------------------------------------------===//
// Equality
//===----------------------------------------------------------------------===//

bool Interpreter::valuesEqual(const Value &A, const Value &B) {
  if (A.kind() == Value::Nil || B.kind() == Value::Nil)
    return A.kind() == B.kind();
  if (A.kind() == Value::IntV && B.kind() == Value::IntV)
    return A.intValue() == B.intValue();
  if ((A.kind() == Value::IntV || A.kind() == Value::FloatV) &&
      (B.kind() == Value::IntV || B.kind() == Value::FloatV)) {
    double X = A.kind() == Value::IntV ? double(A.intValue()) : A.floatValue();
    double Y = B.kind() == Value::IntV ? double(B.intValue()) : B.floatValue();
    return X == Y;
  }
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Value::StrV:
    return A.strValue() == B.strValue();
  case Value::IdentVal:
    return A.identValue().Sym == B.identValue().Sym;
  case Value::AstV:
    return structurallyEqual(A.astValue(), B.astValue());
  case Value::ListV: {
    if (A.listSize() != B.listSize())
      return false;
    for (size_t I = 0; I != A.listSize(); ++I)
      if (!valuesEqual(A.listAt(I), B.listAt(I)))
        return false;
    return true;
  }
  case Value::TupleV: {
    const TupleData &X = A.tuple(), &Y = B.tuple();
    if (X.Fields.size() != Y.Fields.size())
      return false;
    for (size_t I = 0; I != X.Fields.size(); ++I)
      if (!valuesEqual(X.Fields[I], Y.Fields[I]))
        return false;
    return true;
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Member access
//===----------------------------------------------------------------------===//

Value Interpreter::evalMember(const Value &Base, Symbol Member,
                              SourceLoc Loc) {
  std::string_view M = Member.str();
  if (Base.kind() == Value::TupleV) {
    const TupleData &T = Base.tuple();
    for (size_t I = 0; I != T.Names.size(); ++I)
      if (T.Names[I] == Member)
        return T.Fields[I];
    return error(Loc, "tuple has no field '" + std::string(M) + "'");
  }
  if (Base.kind() == Value::AstV) {
    Node *N = Base.astValue();
    if (M == "kind")
      return Value::makeStr(nodeKindName(N->kind()));
    switch (N->kind()) {
    case NodeKind::CompoundStmtKind: {
      const auto *C = cast<CompoundStmt>(N);
      if (M == "declarations") {
        std::vector<Value> Elems;
        for (Decl *D : C->Decls)
          Elems.push_back(Value::makeAst(D, CC.Types.getDecl()));
        return Value::makeList(std::move(Elems),
                               CC.Types.getList(CC.Types.getDecl()));
      }
      if (M == "statements") {
        std::vector<Value> Elems;
        for (Stmt *S : C->Stmts)
          Elems.push_back(Value::makeAst(S, CC.Types.getStmt()));
        return Value::makeList(std::move(Elems),
                               CC.Types.getList(CC.Types.getStmt()));
      }
      break;
    }
    case NodeKind::DeclarationKind: {
      auto *D = cast<Declaration>(N);
      if (M == "type_spec")
        return Value::makeAst(D->Specs.Type, CC.Types.getTypeSpec());
      if (M == "init_declarators") {
        std::vector<Value> Elems;
        for (const InitDeclarator &ID : D->Inits)
          Elems.push_back(
              Value::makeInitDecl(CC.Ast.create<InitDeclarator>(ID)));
        return Value::makeList(
            std::move(Elems),
            CC.Types.getList(CC.Types.getScalar(MetaTypeKind::InitDeclarator)));
      }
      break;
    }
    case NodeKind::BinaryExpr: {
      auto *B = cast<BinaryExpr>(N);
      if (M == "lhs")
        return Value::makeAst(B->LHS, CC.Types.getExp());
      if (M == "rhs")
        return Value::makeAst(B->RHS, CC.Types.getExp());
      break;
    }
    case NodeKind::UnaryExpr:
      if (M == "operand")
        return Value::makeAst(cast<UnaryExpr>(N)->Operand, CC.Types.getExp());
      break;
    case NodeKind::ParenExpr:
      if (M == "operand")
        return Value::makeAst(cast<ParenExpr>(N)->Inner, CC.Types.getExp());
      break;
    case NodeKind::CallExpr: {
      auto *C = cast<CallExpr>(N);
      if (M == "callee")
        return Value::makeAst(C->Callee, CC.Types.getExp());
      if (M == "args") {
        std::vector<Value> Elems;
        for (Expr *A : C->Args)
          Elems.push_back(Value::makeAst(A, CC.Types.getExp()));
        return Value::makeList(std::move(Elems),
                               CC.Types.getList(CC.Types.getExp()));
      }
      break;
    }
    case NodeKind::IdentExpr:
      if (M == "name")
        return Value::makeIdent(cast<IdentExpr>(N)->Name);
      break;
    case NodeKind::TagTypeSpecKind: {
      auto *T = cast<TagTypeSpec>(N);
      if (M == "enumerators") {
        std::vector<Value> Elems;
        for (const Enumerator &E : T->Enums)
          if (!E.ListPh && E.Name.valid())
            Elems.push_back(Value::makeIdent(E.Name));
        return Value::makeList(std::move(Elems),
                               CC.Types.getList(CC.Types.getId()));
      }
      if (M == "tag_name") {
        if (!T->TagName.valid())
          return Value::makeNil();
        return Value::makeIdent(T->TagName);
      }
      if (M == "members") {
        std::vector<Value> Elems;
        for (Declaration *D : T->Members)
          Elems.push_back(Value::makeAst(D, CC.Types.getDecl()));
        return Value::makeList(std::move(Elems),
                               CC.Types.getList(CC.Types.getDecl()));
      }
      break;
    }
    default:
      break;
    }
    return error(Loc, std::string("AST value of kind ") +
                          nodeKindName(N->kind()) + " has no member '" +
                          std::string(M) + "'");
  }
  if (Base.kind() == Value::InitDeclVal) {
    const InitDeclarator *ID = Base.initDeclValue();
    if (M == "declarator")
      return Value::makeDeclarator(ID->Dtor);
    if (M == "init")
      return ID->Init ? Value::makeAst(ID->Init, CC.Types.getExp())
                      : Value::makeNil();
  }
  if (Base.kind() == Value::DeclaratorVal) {
    if (M == "name")
      return Value::makeIdent(Base.declaratorValue()->Name);
  }
  if (Base.kind() == Value::EnumeratorVal) {
    const Enumerator *E = Base.enumeratorValue();
    if (M == "name")
      return Value::makeIdent(E->Name);
    if (M == "value")
      return E->Value ? Value::makeAst(E->Value, CC.Types.getExp())
                      : Value::makeNil();
  }
  return error(Loc, std::string("value of kind ") + Base.kindName() +
                        " has no member '" + std::string(M) + "'");
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

Value Interpreter::evalExpr(const Expr *E, Env &Env_) {
  if (!E || !step(E ? E->loc() : SourceLoc()))
    return Value();
  switch (E->kind()) {
  case NodeKind::IntLiteralExpr:
    return Value::makeInt(cast<IntLiteralExpr>(E)->Value);
  case NodeKind::CharLiteralExpr:
    return Value::makeInt(cast<CharLiteralExpr>(E)->Value);
  case NodeKind::FloatLiteralExpr:
    return Value::makeFloat(cast<FloatLiteralExpr>(E)->Value);
  case NodeKind::StringLiteralExpr:
    return Value::makeStr(
        std::string(cast<StringLiteralExpr>(E)->Value.str()));
  case NodeKind::IdentExpr: {
    const auto *IE = cast<IdentExpr>(E);
    if (IE->Name.isPlaceholder())
      return error(E->loc(), "placeholder evaluated outside of a template");
    EnvFrame *Frame = nullptr;
    if (Value *V = Env_.lookup(IE->Name.Sym, &Frame)) {
      noteNameRead(IE->Name.Sym, Frame);
      if (V->isUnset())
        return error(E->loc(), "meta variable '" +
                                   std::string(IE->Name.Sym.str()) +
                                   "' used before initialization");
      return *V;
    }
    noteNameRead(IE->Name.Sym, nullptr);
    if (const MetaFunction *F = CC.MetaFuncs.lookup(IE->Name.Sym)) {
      Value V = Value::makeClosure(nullptr, {});
      const_cast<ClosureData &>(V.closure()).MetaFn = F;
      return V;
    }
    return error(E->loc(), "undefined meta variable '" +
                               std::string(IE->Name.Sym.str()) + "'");
  }
  case NodeKind::ParenExpr:
    return evalExpr(cast<ParenExpr>(E)->Inner, Env_);
  case NodeKind::UnaryExpr: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->Op == UnaryOpKind::PreInc || U->Op == UnaryOpKind::PreDec ||
        U->Op == UnaryOpKind::PostInc || U->Op == UnaryOpKind::PostDec) {
      const auto *Target = dyn_cast<IdentExpr>(U->Operand);
      if (!Target)
        return error(E->loc(), "++/-- requires a variable");
      Value *Slot = Env_.lookup(Target->Name.Sym);
      if (!Slot || Slot->kind() != Value::IntV)
        return error(E->loc(), "++/-- requires an integer variable");
      int64_t Old = Slot->intValue();
      int64_t New = (U->Op == UnaryOpKind::PreInc ||
                     U->Op == UnaryOpKind::PostInc)
                        ? Old + 1
                        : Old - 1;
      *Slot = Value::makeInt(New);
      return Value::makeInt(U->isPostfix() ? Old : New);
    }
    Value V = evalExpr(U->Operand, Env_);
    if (V.isUnset())
      return V;
    switch (U->Op) {
    case UnaryOpKind::Deref:
      if (V.kind() == Value::ListV) {
        if (V.listSize() == 0)
          return error(E->loc(), "'*' applied to an empty list");
        return V.listAt(0);
      }
      return error(E->loc(), "'*' requires a list (Lisp car)");
    case UnaryOpKind::Not:
      return Value::makeInt(V.isTruthy() ? 0 : 1);
    case UnaryOpKind::Minus:
      if (V.kind() == Value::IntV)
        return Value::makeInt(-V.intValue());
      if (V.kind() == Value::FloatV)
        return Value::makeFloat(-V.floatValue());
      return error(E->loc(), "unary '-' requires a number");
    case UnaryOpKind::Plus:
      return V;
    case UnaryOpKind::BitNot:
      if (V.kind() == Value::IntV)
        return Value::makeInt(~V.intValue());
      return error(E->loc(), "'~' requires an integer");
    case UnaryOpKind::AddrOf:
      return error(E->loc(), "cannot take the address of a meta value");
    default:
      return error(E->loc(), "unsupported unary operator in meta code");
    }
  }
  case NodeKind::BinaryExpr: {
    const auto *B = cast<BinaryExpr>(E);
    // Assignment.
    if (isAssignmentOp(B->Op)) {
      Value RHS = evalExpr(B->RHS, Env_);
      const auto *Target = dyn_cast<IdentExpr>(B->LHS);
      if (!Target || Target->Name.isPlaceholder())
        return error(E->loc(), "assignment target must be a meta variable");
      if (B->Op != BinaryOpKind::Assign) {
        Value *Slot = Env_.lookup(Target->Name.Sym);
        if (!Slot || Slot->kind() != Value::IntV ||
            RHS.kind() != Value::IntV)
          return error(E->loc(), "compound assignment requires integers");
        int64_t L = Slot->intValue(), R = RHS.intValue();
        int64_t Result = 0;
        switch (B->Op) {
        case BinaryOpKind::AddAssign:
          Result = L + R;
          break;
        case BinaryOpKind::SubAssign:
          Result = L - R;
          break;
        case BinaryOpKind::MulAssign:
          Result = L * R;
          break;
        case BinaryOpKind::DivAssign:
          if (R == 0)
            return error(E->loc(), "division by zero in meta code");
          Result = L / R;
          break;
        case BinaryOpKind::RemAssign:
          if (R == 0)
            return error(E->loc(), "remainder by zero in meta code");
          Result = L % R;
          break;
        case BinaryOpKind::ShlAssign:
          Result = L << (R & 63);
          break;
        case BinaryOpKind::ShrAssign:
          Result = L >> (R & 63);
          break;
        case BinaryOpKind::AndAssign:
          Result = L & R;
          break;
        case BinaryOpKind::XorAssign:
          Result = L ^ R;
          break;
        case BinaryOpKind::OrAssign:
          Result = L | R;
          break;
        default:
          break;
        }
        RHS = Value::makeInt(Result);
      }
      EnvFrame *Written = Env_.assignInFrame(Target->Name.Sym, RHS);
      if (!Written)
        return error(E->loc(), "assignment to undeclared meta variable '" +
                                   std::string(Target->Name.Sym.str()) + "'");
      noteFrameWrite(Written);
      return RHS;
    }
    // Short-circuit.
    if (B->Op == BinaryOpKind::LAnd) {
      Value L = evalExpr(B->LHS, Env_);
      if (!L.isTruthy())
        return Value::makeInt(0);
      return Value::makeInt(evalExpr(B->RHS, Env_).isTruthy() ? 1 : 0);
    }
    if (B->Op == BinaryOpKind::LOr) {
      Value L = evalExpr(B->LHS, Env_);
      if (L.isTruthy())
        return Value::makeInt(1);
      return Value::makeInt(evalExpr(B->RHS, Env_).isTruthy() ? 1 : 0);
    }
    if (B->Op == BinaryOpKind::Comma) {
      evalExpr(B->LHS, Env_);
      return evalExpr(B->RHS, Env_);
    }
    Value L = evalExpr(B->LHS, Env_);
    Value R = evalExpr(B->RHS, Env_);
    if (L.isUnset() || R.isUnset())
      return Value();
    if (B->Op == BinaryOpKind::EQ)
      return Value::makeInt(valuesEqual(L, R) ? 1 : 0);
    if (B->Op == BinaryOpKind::NE)
      return Value::makeInt(valuesEqual(L, R) ? 0 : 1);
    // list + n == cdr^n (paper section 2).
    if ((B->Op == BinaryOpKind::Add || B->Op == BinaryOpKind::Sub) &&
        L.kind() == Value::ListV && R.kind() == Value::IntV) {
      int64_t N = R.intValue();
      if (B->Op == BinaryOpKind::Sub)
        return error(E->loc(), "cannot rewind a list (list - n)");
      return L.listTail(size_t(N));
    }
    // String concatenation with '+' as a convenience extension.
    if (B->Op == BinaryOpKind::Add && L.kind() == Value::StrV &&
        R.kind() == Value::StrV)
      return Value::makeStr(L.strValue() + R.strValue());
    bool Floats = L.kind() == Value::FloatV || R.kind() == Value::FloatV;
    auto Num = [&](const Value &V) -> double {
      return V.kind() == Value::IntV ? double(V.intValue()) : V.floatValue();
    };
    if ((L.kind() != Value::IntV && L.kind() != Value::FloatV) ||
        (R.kind() != Value::IntV && R.kind() != Value::FloatV))
      return error(E->loc(), std::string("binary '") +
                                 binaryOpSpelling(B->Op) +
                                 "' requires numbers, got " + L.kindName() +
                                 " and " + R.kindName());
    switch (B->Op) {
    case BinaryOpKind::LT:
      return Value::makeInt(Num(L) < Num(R));
    case BinaryOpKind::GT:
      return Value::makeInt(Num(L) > Num(R));
    case BinaryOpKind::LE:
      return Value::makeInt(Num(L) <= Num(R));
    case BinaryOpKind::GE:
      return Value::makeInt(Num(L) >= Num(R));
    default:
      break;
    }
    if (Floats) {
      double X = Num(L), Y = Num(R);
      switch (B->Op) {
      case BinaryOpKind::Add:
        return Value::makeFloat(X + Y);
      case BinaryOpKind::Sub:
        return Value::makeFloat(X - Y);
      case BinaryOpKind::Mul:
        return Value::makeFloat(X * Y);
      case BinaryOpKind::Div:
        return Value::makeFloat(X / Y);
      default:
        return error(E->loc(), "operator not defined on floats");
      }
    }
    int64_t X = L.intValue(), Y = R.intValue();
    switch (B->Op) {
    case BinaryOpKind::Add:
      return Value::makeInt(X + Y);
    case BinaryOpKind::Sub:
      return Value::makeInt(X - Y);
    case BinaryOpKind::Mul:
      return Value::makeInt(X * Y);
    case BinaryOpKind::Div:
      if (Y == 0)
        return error(E->loc(), "division by zero in meta code");
      return Value::makeInt(X / Y);
    case BinaryOpKind::Rem:
      if (Y == 0)
        return error(E->loc(), "remainder by zero in meta code");
      return Value::makeInt(X % Y);
    case BinaryOpKind::Shl:
      return Value::makeInt(X << (Y & 63));
    case BinaryOpKind::Shr:
      return Value::makeInt(X >> (Y & 63));
    case BinaryOpKind::BitAnd:
      return Value::makeInt(X & Y);
    case BinaryOpKind::BitXor:
      return Value::makeInt(X ^ Y);
    case BinaryOpKind::BitOr:
      return Value::makeInt(X | Y);
    default:
      return error(E->loc(), "unsupported binary operator in meta code");
    }
  }
  case NodeKind::ConditionalExpr: {
    const auto *C = cast<ConditionalExpr>(E);
    Value Cond = evalExpr(C->Cond, Env_);
    return evalExpr(Cond.isTruthy() ? C->Then : C->Else, Env_);
  }
  case NodeKind::CallExpr: {
    const auto *C = cast<CallExpr>(E);
    // Builtin (not shadowed)?
    if (const auto *Callee = dyn_cast<IdentExpr>(C->Callee)) {
      if (!Callee->Name.isPlaceholder() && !Env_.lookup(Callee->Name.Sym) &&
          !CC.MetaFuncs.lookup(Callee->Name.Sym)) {
        if (const BuiltinInfo *B = lookupBuiltin(Callee->Name.Sym.str())) {
          // The builtin is reachable only while no library definition
          // shadows the name, so the name itself is a dependency.
          noteNameRead(Callee->Name.Sym, nullptr);
          std::vector<Value> Args;
          for (const Expr *Arg : C->Args)
            Args.push_back(evalExpr(Arg, Env_));
          return callBuiltin(*B, Args, E->loc());
        }
      }
    }
    Value Fn = evalExpr(C->Callee, Env_);
    std::vector<Value> Args;
    for (const Expr *Arg : C->Args)
      Args.push_back(evalExpr(Arg, Env_));
    return callCallable(Fn, std::move(Args), E->loc());
  }
  case NodeKind::IndexExpr: {
    const auto *I = cast<IndexExpr>(E);
    Value Base = evalExpr(I->Base, Env_);
    Value Idx = evalExpr(I->Index, Env_);
    if (Base.kind() != Value::ListV)
      return error(E->loc(), "subscripted meta value is not a list");
    if (Idx.kind() != Value::IntV)
      return error(E->loc(), "list index must be an integer");
    int64_t N = Idx.intValue();
    if (N < 0 || size_t(N) >= Base.listSize())
      return error(E->loc(), "list index " + std::to_string(N) +
                                 " out of range (size " +
                                 std::to_string(Base.listSize()) + ")");
    return Base.listAt(size_t(N));
  }
  case NodeKind::MemberExpr: {
    const auto *M = cast<MemberExpr>(E);
    Value Base = evalExpr(M->Base, Env_);
    if (Base.isUnset())
      return Base;
    if (M->Member.isPlaceholder())
      return error(E->loc(), "placeholder member in meta code");
    return evalMember(Base, M->Member.Sym, E->loc());
  }
  case NodeKind::BackquoteExpr: {
    const auto *BQ = cast<BackquoteExpr>(E);
    PlaceholderEvaluator EvalPh = [this, &Env_](const Placeholder *Ph) {
      return evalExpr(Ph->MetaExpr, Env_);
    };
    return instantiateTemplate(QC, BQ, EvalPh);
  }
  case NodeKind::LambdaExpr:
    return Value::makeClosure(cast<LambdaExpr>(E), Env_.snapshot());
  case NodeKind::MacroInvocationExpr:
    // Meta code computing with a macro invocation expands it eagerly.
    return invokeMacro(cast<MacroInvocationExpr>(E)->Inv);
  case NodeKind::PlaceholderExpr:
    return error(E->loc(), "placeholder evaluated outside of a template");
  default:
    return error(E->loc(), "expression form not supported in meta code");
  }
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

Value Interpreter::callCallable(const Value &Fn, std::vector<Value> Args,
                                SourceLoc Loc) {
  if (Fn.kind() != Value::ClosureV)
    return error(Loc, std::string("called meta value is not a function (") +
                          Fn.kindName() + ")");
  const ClosureData &C = Fn.closure();
  if (C.MetaFn)
    return callMetaFunction(C.MetaFn, std::move(Args), Loc);
  if (!C.Fn)
    return error(Loc, "empty function value");
  if (Depth >= Lim.MaxCallDepth)
    return error(Loc, "meta-code call depth limit exceeded");
  if (Args.size() != C.Fn->Params.size())
    return error(Loc, "anonymous function expects " +
                          std::to_string(C.Fn->Params.size()) +
                          " arguments, got " + std::to_string(Args.size()));
  Env CallEnv = Env::fromSnapshot(C.Captured);
  CallEnv.push();
  for (size_t I = 0; I != Args.size(); ++I)
    CallEnv.define(C.Fn->Params[I].Name, std::move(Args[I]));
  ++Depth;
  Value Result = evalExpr(C.Fn->Body, CallEnv);
  --Depth;
  return Result;
}

Value Interpreter::callMetaFunction(const MetaFunction *F,
                                    std::vector<Value> Args, SourceLoc Loc) {
  if (DepRec)
    DepRec->noteMetaName(std::string(F->Name.str()));
  if (Depth >= Lim.MaxCallDepth)
    return error(Loc, "meta-code call depth limit exceeded");
  const FunctionDef *Def = F->Def;
  const DeclSuffix &Sig = Def->Dtor->Suffixes[0];
  if (Args.size() != Sig.Params.size())
    return error(Loc, "meta function '" + std::string(F->Name.str()) +
                          "' expects " + std::to_string(Sig.Params.size()) +
                          " arguments, got " + std::to_string(Args.size()));
  Env CallEnv = Env::fromSnapshot(Global.snapshot());
  CallEnv.push();
  for (size_t I = 0; I != Args.size(); ++I) {
    const ParamDecl *P = Sig.Params[I];
    if (P->Dtor && P->Dtor->name().Sym.valid())
      CallEnv.define(P->Dtor->name().Sym, std::move(Args[I]));
  }
  ++Depth;
  Value Ret;
  Flow Fl = execStmt(Def->Body, CallEnv, Ret);
  --Depth;
  if (Fl != Flow::Return)
    return error(Loc, "meta function '" + std::string(F->Name.str()) +
                          "' did not return a value");
  return Ret;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Interpreter::execDeclaration(const Declaration *D, Env &Env_) {
  for (const InitDeclarator &ID : D->Inits) {
    if (ID.Ph || !ID.Dtor || ID.Dtor->isPlaceholder() ||
        ID.Dtor->name().isPlaceholder() || !ID.Dtor->name().Sym.valid())
      continue;
    Value Init;
    if (ID.Init)
      Init = evalExpr(ID.Init, Env_);
    else {
      // Default initialization: lists start empty, ints start at 0.
      const MetaType *T =
          MetaTypeChecker::metaTypeFromDecl(D->Specs, ID.Dtor, CC.Types);
      if (T && T->isList())
        Init = Value::makeList({}, T);
      else if (T && T->kind() == MetaTypeKind::Int)
        Init = Value::makeInt(0);
      else if (T && T->kind() == MetaTypeKind::String)
        Init = Value::makeStr("");
    }
    Env_.define(ID.Dtor->name().Sym, std::move(Init));
    // A define landing in a pre-existing global frame is a metadcl (or a
    // shadowing write into global scope): meta-global mutation either way.
    noteFrameWrite(Env_.currentFrame());
  }
}

Interpreter::Flow Interpreter::execSwitch(const SwitchStmt *Sw, Env &Env_,
                                          Value &Ret) {
  Value Cond = evalExpr(Sw->Cond, Env_);
  const auto *Body = dyn_cast<CompoundStmt>(Sw->Body);
  if (!Body) {
    error(Sw->loc(), "switch body must be a compound statement in meta code");
    return Flow::Normal;
  }
  Env_.push();
  for (const Decl *D : Body->Decls)
    if (const auto *Dec = dyn_cast<Declaration>(D))
      execDeclaration(Dec, Env_);

  // Find the matching case (or default) among the top-level statements.
  size_t StartIdx = Body->Stmts.size();
  size_t DefaultIdx = Body->Stmts.size();
  for (size_t I = 0; I != Body->Stmts.size(); ++I) {
    const Stmt *S = Body->Stmts[I];
    while (S) {
      if (const auto *C = dyn_cast<CaseStmt>(S)) {
        Value V = evalExpr(C->Value, Env_);
        if (valuesEqual(V, Cond)) {
          StartIdx = I;
          break;
        }
        S = C->Body;
        continue;
      }
      if (const auto *Df = dyn_cast<DefaultStmt>(S)) {
        if (DefaultIdx == Body->Stmts.size())
          DefaultIdx = I;
        S = Df->Body;
        continue;
      }
      break;
    }
    if (StartIdx != Body->Stmts.size())
      break;
  }
  if (StartIdx == Body->Stmts.size())
    StartIdx = DefaultIdx;

  Flow Result = Flow::Normal;
  for (size_t I = StartIdx; I < Body->Stmts.size(); ++I) {
    const Stmt *S = Body->Stmts[I];
    // Unwrap any case/default labels.
    while (true) {
      if (const auto *C = dyn_cast<CaseStmt>(S)) {
        S = C->Body;
        continue;
      }
      if (const auto *Df = dyn_cast<DefaultStmt>(S)) {
        S = Df->Body;
        continue;
      }
      break;
    }
    Flow Fl = execStmt(S, Env_, Ret);
    if (Fl == Flow::Break)
      break;
    if (Fl == Flow::Return || Fl == Flow::Continue) {
      Result = Fl;
      break;
    }
  }
  Env_.pop();
  return Result;
}

Interpreter::Flow Interpreter::execStmt(const Stmt *S, Env &Env_,
                                        Value &Ret) {
  if (!S || !step(S ? S->loc() : SourceLoc()))
    return Flow::Normal;
  switch (S->kind()) {
  case NodeKind::CompoundStmtKind: {
    const auto *C = cast<CompoundStmt>(S);
    Env_.push();
    for (const Decl *D : C->Decls) {
      if (const auto *Dec = dyn_cast<Declaration>(D))
        execDeclaration(Dec, Env_);
      else
        error(D->loc(), "unsupported declaration in meta code block");
    }
    Flow Result = Flow::Normal;
    for (const Stmt *Sub : C->Stmts) {
      Flow Fl = execStmt(Sub, Env_, Ret);
      if (Fl != Flow::Normal) {
        Result = Fl;
        break;
      }
    }
    Env_.pop();
    return Result;
  }
  case NodeKind::ExprStmt:
    evalExpr(cast<ExprStmt>(S)->E, Env_);
    return Flow::Normal;
  case NodeKind::NullStmt:
    return Flow::Normal;
  case NodeKind::IfStmt: {
    const auto *I = cast<IfStmt>(S);
    Value Cond = evalExpr(I->Cond, Env_);
    if (Cond.isTruthy())
      return execStmt(I->Then, Env_, Ret);
    if (I->Else)
      return execStmt(I->Else, Env_, Ret);
    return Flow::Normal;
  }
  case NodeKind::WhileStmt: {
    const auto *W = cast<WhileStmt>(S);
    while (evalExpr(W->Cond, Env_).isTruthy()) {
      if (!step(S->loc()))
        return Flow::Normal;
      Flow Fl = execStmt(W->Body, Env_, Ret);
      if (Fl == Flow::Break)
        break;
      if (Fl == Flow::Return)
        return Fl;
    }
    return Flow::Normal;
  }
  case NodeKind::DoStmt: {
    const auto *D = cast<DoStmt>(S);
    do {
      if (!step(S->loc()))
        return Flow::Normal;
      Flow Fl = execStmt(D->Body, Env_, Ret);
      if (Fl == Flow::Break)
        break;
      if (Fl == Flow::Return)
        return Fl;
    } while (evalExpr(D->Cond, Env_).isTruthy());
    return Flow::Normal;
  }
  case NodeKind::ForStmt: {
    const auto *F = cast<ForStmt>(S);
    if (F->Init)
      evalExpr(F->Init, Env_);
    while (!F->Cond || evalExpr(F->Cond, Env_).isTruthy()) {
      if (!step(S->loc()))
        return Flow::Normal;
      Flow Fl = execStmt(F->Body, Env_, Ret);
      if (Fl == Flow::Break)
        break;
      if (Fl == Flow::Return)
        return Fl;
      if (F->Step)
        evalExpr(F->Step, Env_);
    }
    return Flow::Normal;
  }
  case NodeKind::SwitchStmt:
    return execSwitch(cast<SwitchStmt>(S), Env_, Ret);
  case NodeKind::BreakStmt:
    return Flow::Break;
  case NodeKind::ContinueStmt:
    return Flow::Continue;
  case NodeKind::ReturnStmt: {
    const auto *R = cast<ReturnStmt>(S);
    Ret = R->Value ? evalExpr(R->Value, Env_) : Value::makeVoid();
    return Flow::Return;
  }
  case NodeKind::CaseStmt:
    return execStmt(cast<CaseStmt>(S)->Body, Env_, Ret);
  case NodeKind::DefaultStmt:
    return execStmt(cast<DefaultStmt>(S)->Body, Env_, Ret);
  case NodeKind::LabelStmt:
    return execStmt(cast<LabelStmt>(S)->Body, Env_, Ret);
  case NodeKind::GotoStmt:
    error(S->loc(), "goto is not supported in meta code");
    return Flow::Normal;
  default:
    error(S->loc(), "statement form not supported in meta code");
    return Flow::Normal;
  }
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Value Interpreter::invokeMacro(const MacroInvocation *Inv) {
  const MacroDef *Def = Inv->Def;
  if (!Def->Body) {
    return error(Inv->Loc, "macro '" + std::string(Def->Name.str()) +
                               "' has no body");
  }
  if (Depth >= Lim.MaxCallDepth)
    return error(Inv->Loc, "macro expansion depth limit exceeded");
  if (Lim.TraceExpansions) {
    Trace.append(Depth * 2, ' ');
    Trace += "expand ";
    Trace += Def->Name.str();
    PresumedLoc P = CC.SM.presumed(Inv->Loc);
    if (P.Line != 0) {
      Trace += " at ";
      Trace += P.Filename;
      Trace += ':';
      Trace += std::to_string(P.Line);
      Trace += ':';
      Trace += std::to_string(P.Column);
    }
    Trace += " -> ";
    Trace += Def->ReturnType->toString();
    Trace += '\n';
  }
  Env CallEnv = Env::fromSnapshot(Global.snapshot());
  CallEnv.push();
  for (const MacroArg &Arg : Inv->Args) {
    Value V = matchValueToValue(QC, Arg.Value);
    CallEnv.define(Arg.Name, std::move(V));
  }
  ++Depth;
  Value Ret;
  Flow Fl = execStmt(Def->Body, CallEnv, Ret);
  --Depth;
  if (Fl != Flow::Return)
    return error(Inv->Loc, "macro '" + std::string(Def->Name.str()) +
                               "' did not return a value");
  return Ret;
}

void Interpreter::processMetaDecl(const MetaDecl *MD) {
  execDeclaration(MD->Inner, Global);
}

Value Interpreter::evalInGlobalEnv(const Expr *E) {
  return evalExpr(E, Global);
}
