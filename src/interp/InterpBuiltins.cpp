//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementations of the macro language's primitive functions
/// (paper section 2, "Additional Primitive Functions").
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "printer/CPrinter.h"

#include <sstream>

using namespace msq;

/// Renders a value usable as an identifier piece (symbolconc/concat_ids).
static bool identPiece(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::IdentVal:
    if (V.identValue().isPlaceholder() || !V.identValue().Sym.valid())
      return false;
    Out += V.identValue().Sym.str();
    return true;
  case Value::StrV:
    Out += V.strValue();
    return true;
  case Value::IntV:
    Out += std::to_string(V.intValue());
    return true;
  case Value::AstV:
    if (const auto *IE = dyn_cast<IdentExpr>(V.astValue())) {
      if (!IE->Name.isPlaceholder()) {
        Out += IE->Name.Sym.str();
        return true;
      }
    }
    if (const auto *IL = dyn_cast<IntLiteralExpr>(V.astValue())) {
      Out += std::to_string(IL->Value);
      return true;
    }
    return false;
  default:
    return false;
  }
}

Value Interpreter::callBuiltin(const BuiltinInfo &Info,
                               std::vector<Value> &Args, SourceLoc Loc) {
  if (Args.size() < Info.MinArgs ||
      (Info.MaxArgs != UINT_MAX && Args.size() > Info.MaxArgs))
    return error(Loc, std::string("wrong number of arguments to '") +
                          Info.Name + "'");
  for (const Value &V : Args)
    if (V.isUnset())
      return Value(); // propagate earlier failure silently

  switch (Info.Kind) {
  case BuiltinKind::Gensym: {
    std::string Prefix = "g";
    if (!Args.empty()) {
      std::string P;
      if (!identPiece(Args[0], P))
        return error(Loc, "gensym prefix must be a string or identifier");
      Prefix = P;
    }
    std::ostringstream OS;
    OS << "__msq_" << Prefix << '_' << GensymCounter++;
    return Value::makeIdent(
        Ident(CC.Interner.intern(OS.str()), SourceLoc()));
  }
  case BuiltinKind::ConcatIds:
  case BuiltinKind::Symbolconc: {
    std::string Name;
    for (const Value &V : Args)
      if (!identPiece(V, Name))
        return error(Loc, std::string("argument of '") + Info.Name +
                              "' cannot form an identifier (" + V.kindName() +
                              ")");
    if (Name.empty())
      return error(Loc, std::string("'") + Info.Name +
                            "' produced an empty identifier");
    return Value::makeIdent(Ident(CC.Interner.intern(Name), SourceLoc()));
  }
  case BuiltinKind::Pstring: {
    if (Args[0].kind() != Value::IdentVal)
      return error(Loc, "pstring expects an identifier");
    return Value::makeStr(std::string(Args[0].identValue().Sym.str()));
  }
  case BuiltinKind::Length: {
    if (Args[0].kind() != Value::ListV)
      return error(Loc, "length expects a list");
    return Value::makeInt(int64_t(Args[0].listSize()));
  }
  case BuiltinKind::Map: {
    if (Args[1].kind() != Value::ListV)
      return error(Loc, "map expects a list as its second argument");
    std::vector<Value> Out;
    Out.reserve(Args[1].listSize());
    for (size_t I = 0; I != Args[1].listSize(); ++I) {
      Value R = callCallable(Args[0], {Args[1].listAt(I)}, Loc);
      if (R.isUnset())
        return Value();
      Out.push_back(std::move(R));
    }
    return Value::makeList(std::move(Out));
  }
  case BuiltinKind::List:
    return Value::makeList(std::move(Args));
  case BuiltinKind::Append: {
    std::vector<Value> Out;
    for (const Value &V : Args) {
      if (V.kind() != Value::ListV)
        return error(Loc, "append expects lists");
      for (size_t I = 0; I != V.listSize(); ++I)
        Out.push_back(V.listAt(I));
    }
    return Value::makeList(std::move(Out));
  }
  case BuiltinKind::Cons: {
    if (Args[1].kind() != Value::ListV)
      return error(Loc, "cons expects a list as its second argument");
    std::vector<Value> Out;
    Out.reserve(Args[1].listSize() + 1);
    Out.push_back(Args[0]);
    for (size_t I = 0; I != Args[1].listSize(); ++I)
      Out.push_back(Args[1].listAt(I));
    return Value::makeList(std::move(Out));
  }
  case BuiltinKind::Nth: {
    if (Args[0].kind() != Value::ListV || Args[1].kind() != Value::IntV)
      return error(Loc, "nth expects a list and an integer");
    int64_t N = Args[1].intValue();
    if (N < 0 || size_t(N) >= Args[0].listSize())
      return error(Loc, "nth index out of range");
    return Args[0].listAt(size_t(N));
  }
  case BuiltinKind::SimpleExpression: {
    // "Simple" expressions are identifiers and literals — safe to duplicate
    // without evaluating twice (the throw macro's test).
    const Value &V = Args[0];
    if (V.kind() == Value::IdentVal)
      return Value::makeInt(1);
    if (V.kind() != Value::AstV)
      return Value::makeInt(0);
    const Node *N = V.astValue();
    while (const auto *P = dyn_cast<ParenExpr>(N))
      N = P->Inner;
    switch (N->kind()) {
    case NodeKind::IdentExpr:
    case NodeKind::IntLiteralExpr:
    case NodeKind::FloatLiteralExpr:
    case NodeKind::CharLiteralExpr:
    case NodeKind::StringLiteralExpr:
      return Value::makeInt(1);
    default:
      return Value::makeInt(0);
    }
  }
  case BuiltinKind::Present:
    return Value::makeInt(Args[0].isNil() ? 0 : 1);
  case BuiltinKind::MakeId: {
    if (Args[0].kind() != Value::StrV || Args[0].strValue().empty())
      return error(Loc, "make_id expects a non-empty string");
    return Value::makeIdent(
        Ident(CC.Interner.intern(Args[0].strValue()), SourceLoc()));
  }
  case BuiltinKind::MakeNum: {
    if (Args[0].kind() != Value::IntV)
      return error(Loc, "make_num expects an integer");
    return Value::makeAst(
        CC.Ast.create<IntLiteralExpr>(Args[0].intValue(), Loc),
        CC.Types.getNum());
  }
  case BuiltinKind::PrintAst: {
    switch (Args[0].kind()) {
    case Value::AstV:
      return Value::makeStr(printNode(Args[0].astValue()));
    case Value::IdentVal:
      return Value::makeStr(std::string(Args[0].identValue().Sym.str()));
    case Value::DeclaratorVal:
      return Value::makeStr(printDeclarator(Args[0].declaratorValue()));
    default:
      return Value::makeStr(Args[0].kindName());
    }
  }
  case BuiltinKind::MetaError: {
    if (Args[0].kind() != Value::StrV)
      return error(Loc, "meta_error expects a string");
    return error(Loc, "meta_error: " + Args[0].strValue());
  }
  case BuiltinKind::VarType: {
    if (Args[0].kind() != Value::IdentVal ||
        Args[0].identValue().isPlaceholder())
      return error(Loc, "var_type expects an identifier");
    Symbol Name = Args[0].identValue().Sym;
    auto It = CC.ObjectVarTypes.find(Name);
    if (It == CC.ObjectVarTypes.end())
      return error(Loc, "var_type: no visible object declaration of '" +
                            std::string(Name.str()) + "'");
    return Value::makeAst(It->second, CC.Types.getTypeSpec());
  }
  }
  return Value();
}
