//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of the meta language: integers, floats, strings,
/// AST references (scalar or structural), identifiers, lists (with Lisp
/// car/cdr semantics via an offset), tuples, and closures. Values are
/// cheap to copy; list/tuple/closure payloads are shared.
///
/// This header is intentionally self-contained (no .cpp) so that the quasi
/// (template instantiation) library can use Value without a link-time
/// dependency on the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_INTERP_VALUE_H
#define MSQ_INTERP_VALUE_H

#include "ast/Ast.h"
#include "types/MetaType.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace msq {

class Value;

/// One environment frame; shared so closures can capture the environment
/// ("anonymous functions may only be passed downward", so sharing frames
/// with the defining scope is safe and gives the expected semantics).
struct EnvFrame {
  std::unordered_map<Symbol, Value, SymbolHash> Vars;
};

/// A lexical environment: a chain of shared frames.
class Env {
public:
  Env() { push(); }

  void push() { Frames.push_back(std::make_shared<EnvFrame>()); }
  void pop() {
    assert(Frames.size() > 1 && "cannot pop the outermost frame");
    Frames.pop_back();
  }

  void define(Symbol Name, Value V);
  /// Assigns to the innermost binding of \p Name; returns false when
  /// unbound.
  bool assign(Symbol Name, const Value &V);
  /// Like assign, but reports WHERE the write landed: the frame holding
  /// the binding, or nullptr when unbound. The expansion cache uses this
  /// to detect writes into session-global frames (uncacheable units).
  EnvFrame *assignInFrame(Symbol Name, const Value &V);
  /// The frame a define() would write into (the innermost frame).
  EnvFrame *currentFrame() { return Frames.back().get(); }
  /// Looks \p Name up; returns nullptr when unbound.
  Value *lookup(Symbol Name);
  /// Like lookup, also reporting the frame the binding was found in
  /// (dependency recording needs to know whether a read resolved in a
  /// session-global frame or a unit-local one).
  Value *lookup(Symbol Name, EnvFrame **FrameOut);

  /// Snapshot for closures: shares all current frames.
  std::vector<std::shared_ptr<EnvFrame>> snapshot() const { return Frames; }
  static Env fromSnapshot(std::vector<std::shared_ptr<EnvFrame>> Frames) {
    Env E;
    E.Frames = std::move(Frames);
    return E;
  }

private:
  std::vector<std::shared_ptr<EnvFrame>> Frames;
};

struct MetaFunction;

/// Payload of a function value: either a lambda with its captured
/// environment, or a reference to a named meta function.
struct ClosureData {
  const LambdaExpr *Fn = nullptr;
  const MetaFunction *MetaFn = nullptr;
  std::vector<std::shared_ptr<EnvFrame>> Captured;
};

/// Payload of a tuple value.
struct TupleData {
  std::vector<Value> Fields;
  std::vector<Symbol> Names;
};

/// A meta-language runtime value.
class Value {
public:
  enum VK : unsigned char {
    Unset,     ///< uninitialized variable
    Nil,       ///< absent optional constituent
    VoidV,     ///< result of void calls
    IntV,
    FloatV,
    StrV,
    AstV,      ///< a Node (exp / stmt / decl / typespec)
    IdentVal,  ///< an identifier (AST type `id`)
    DeclaratorVal,
    InitDeclVal,
    EnumeratorVal,
    ListV,
    TupleV,
    ClosureV,
  };

  Value() = default;

  static Value makeNil() { return withKind(Nil); }
  static Value makeVoid() { return withKind(VoidV); }
  static Value makeInt(int64_t I) {
    Value V = withKind(IntV);
    V.I = I;
    return V;
  }
  static Value makeFloat(double F) {
    Value V = withKind(FloatV);
    V.F = F;
    return V;
  }
  static Value makeStr(std::string S) {
    Value V = withKind(StrV);
    V.Str = std::make_shared<std::string>(std::move(S));
    return V;
  }
  static Value makeAst(Node *N, const MetaType *Type) {
    Value V = withKind(AstV);
    V.Ast = N;
    V.Type = Type;
    return V;
  }
  static Value makeIdent(Ident Id) {
    Value V = withKind(IdentVal);
    V.Id = Id;
    return V;
  }
  static Value makeDeclarator(Declarator *D) {
    Value V = withKind(DeclaratorVal);
    V.Dtor = D;
    return V;
  }
  static Value makeInitDecl(InitDeclarator *D) {
    Value V = withKind(InitDeclVal);
    V.InitD = D;
    return V;
  }
  static Value makeEnumerator(Enumerator *E) {
    Value V = withKind(EnumeratorVal);
    V.Enum = E;
    return V;
  }
  static Value makeList(std::vector<Value> Elems,
                        const MetaType *Type = nullptr) {
    Value V = withKind(ListV);
    V.List = std::make_shared<std::vector<Value>>(std::move(Elems));
    V.Type = Type;
    return V;
  }
  static Value makeTuple(std::vector<Value> Fields, std::vector<Symbol> Names,
                         const MetaType *Type = nullptr) {
    Value V = withKind(TupleV);
    auto T = std::make_shared<TupleData>();
    T->Fields = std::move(Fields);
    T->Names = std::move(Names);
    V.Tuple = std::move(T);
    V.Type = Type;
    return V;
  }
  static Value makeClosure(const LambdaExpr *Fn,
                           std::vector<std::shared_ptr<EnvFrame>> Captured) {
    Value V = withKind(ClosureV);
    auto C = std::make_shared<ClosureData>();
    C->Fn = Fn;
    C->Captured = std::move(Captured);
    V.Closure = std::move(C);
    return V;
  }

  VK kind() const { return K; }
  bool isUnset() const { return K == Unset; }
  bool isNil() const { return K == Nil; }
  bool isTruthy() const {
    switch (K) {
    case IntV:
      return I != 0;
    case FloatV:
      return F != 0.0;
    case Nil:
    case Unset:
    case VoidV:
      return false;
    case StrV:
      return !Str->empty();
    case ListV:
      return ListOffset < List->size();
    default:
      return true;
    }
  }

  int64_t intValue() const {
    assert(K == IntV && "not an int");
    return I;
  }
  double floatValue() const {
    assert(K == FloatV && "not a float");
    return F;
  }
  const std::string &strValue() const {
    assert(K == StrV && "not a string");
    return *Str;
  }
  Node *astValue() const {
    assert(K == AstV && "not an AST value");
    return Ast;
  }
  Ident identValue() const {
    assert(K == IdentVal && "not an identifier");
    return Id;
  }
  Declarator *declaratorValue() const {
    assert(K == DeclaratorVal && "not a declarator");
    return Dtor;
  }
  InitDeclarator *initDeclValue() const {
    assert(K == InitDeclVal && "not an init-declarator");
    return InitD;
  }
  Enumerator *enumeratorValue() const {
    assert(K == EnumeratorVal && "not an enumerator");
    return Enum;
  }
  const ClosureData &closure() const {
    assert(K == ClosureV && "not a closure");
    return *Closure;
  }
  const TupleData &tuple() const {
    assert(K == TupleV && "not a tuple");
    return *Tuple;
  }

  /// List access with the car/cdr offset applied.
  size_t listSize() const {
    assert(K == ListV && "not a list");
    return List->size() - ListOffset;
  }
  const Value &listAt(size_t Idx) const {
    assert(K == ListV && Idx < listSize() && "list index out of range");
    return (*List)[ListOffset + Idx];
  }
  /// `list + N` — shares the payload, advances the offset.
  Value listTail(size_t N) const {
    assert(K == ListV && "not a list");
    Value V = *this;
    V.ListOffset = ListOffset + N;
    if (V.ListOffset > List->size())
      V.ListOffset = List->size();
    return V;
  }
  /// Copies the visible elements (offset applied).
  std::vector<Value> listElems() const {
    assert(K == ListV && "not a list");
    return std::vector<Value>(List->begin() + ListOffset, List->end());
  }

  /// The static meta-type when known (may be null).
  const MetaType *type() const { return Type; }
  void setType(const MetaType *T) { Type = T; }

  /// Short kind name for diagnostics.
  const char *kindName() const {
    switch (K) {
    case Unset:
      return "unset";
    case Nil:
      return "nil";
    case VoidV:
      return "void";
    case IntV:
      return "int";
    case FloatV:
      return "float";
    case StrV:
      return "string";
    case AstV:
      return "ast";
    case IdentVal:
      return "identifier";
    case DeclaratorVal:
      return "declarator";
    case InitDeclVal:
      return "init-declarator";
    case EnumeratorVal:
      return "enumerator";
    case ListV:
      return "list";
    case TupleV:
      return "tuple";
    case ClosureV:
      return "function";
    }
    return "?";
  }

private:
  static Value withKind(VK K) {
    Value V;
    V.K = K;
    return V;
  }

  VK K = Unset;
  int64_t I = 0;
  double F = 0.0;
  std::shared_ptr<std::string> Str;
  Node *Ast = nullptr;
  Ident Id;
  Declarator *Dtor = nullptr;
  InitDeclarator *InitD = nullptr;
  Enumerator *Enum = nullptr;
  std::shared_ptr<std::vector<Value>> List;
  size_t ListOffset = 0;
  std::shared_ptr<TupleData> Tuple;
  std::shared_ptr<ClosureData> Closure;
  const MetaType *Type = nullptr;
};

inline void Env::define(Symbol Name, Value V) {
  Frames.back()->Vars[Name] = std::move(V);
}

inline bool Env::assign(Symbol Name, const Value &V) {
  return assignInFrame(Name, V) != nullptr;
}

inline EnvFrame *Env::assignInFrame(Symbol Name, const Value &V) {
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    auto Found = (*It)->Vars.find(Name);
    if (Found != (*It)->Vars.end()) {
      Found->second = V;
      return It->get();
    }
  }
  return nullptr;
}

inline Value *Env::lookup(Symbol Name) {
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    auto Found = (*It)->Vars.find(Name);
    if (Found != (*It)->Vars.end())
      return &Found->second;
  }
  return nullptr;
}

inline Value *Env::lookup(Symbol Name, EnvFrame **FrameOut) {
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    auto Found = (*It)->Vars.find(Name);
    if (Found != (*It)->Vars.end()) {
      if (FrameOut)
        *FrameOut = It->get();
      return &Found->second;
    }
  }
  if (FrameOut)
    *FrameOut = nullptr;
  return nullptr;
}

} // namespace msq

#endif // MSQ_INTERP_VALUE_H
