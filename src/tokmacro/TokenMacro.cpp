//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "tokmacro/TokenMacro.h"

#include <sstream>

using namespace msq;

TokenMacroProcessor::TokenMacroProcessor()
    : Diags(SM), Interner(StringsArena) {}

TokenMacroProcessor::~TokenMacroProcessor() = default;

std::vector<Token> TokenMacroProcessor::lexText(std::string Name,
                                                std::string Text) {
  uint32_t Id = SM.addBuffer(std::move(Name), std::move(Text));
  Lexer Lex(Id, SM.bufferContents(Id), Interner, Diags);
  std::vector<Token> Toks = Lex.lexAll();
  if (!Toks.empty())
    Toks.pop_back(); // drop Eof
  return Toks;
}

void TokenMacroProcessor::define(std::string_view Name,
                                 std::vector<std::string> Params,
                                 std::string_view Body, bool FunctionLike) {
  TokenMacroDef Def;
  Def.Name = Interner.intern(Name);
  Def.FunctionLike = FunctionLike || !Params.empty();
  for (const std::string &P : Params)
    Def.Params.push_back(Interner.intern(P));
  Def.Body = lexText("<define:" + std::string(Name) + ">", std::string(Body));
  Macros[Def.Name] = std::move(Def);
}

void TokenMacroProcessor::handleDefineLine(const std::string &Line) {
  // Line starts after "#define".
  std::vector<Token> Toks = lexText("<directive>", Line);
  if (Toks.empty() || Toks[0].isNot(TokenKind::Identifier)) {
    Diags.error(SourceLoc(), "malformed #define directive");
    return;
  }
  TokenMacroDef Def;
  Def.Name = Toks[0].Sym;
  size_t I = 1;
  // Function-like only when '(' immediately follows the name. Token offsets
  // let us detect adjacency.
  if (I < Toks.size() && Toks[I].is(TokenKind::LParen) &&
      Toks[I].Loc.offset() == Toks[0].Loc.offset() + Toks[0].Sym.size()) {
    Def.FunctionLike = true;
    ++I;
    if (I < Toks.size() && Toks[I].is(TokenKind::RParen)) {
      ++I;
    } else {
      for (;;) {
        if (I >= Toks.size() || Toks[I].isNot(TokenKind::Identifier)) {
          Diags.error(SourceLoc(), "expected parameter name in #define");
          return;
        }
        Def.Params.push_back(Toks[I].Sym);
        ++I;
        if (I < Toks.size() && Toks[I].is(TokenKind::Comma)) {
          ++I;
          continue;
        }
        break;
      }
      if (I >= Toks.size() || Toks[I].isNot(TokenKind::RParen)) {
        Diags.error(SourceLoc(), "expected ')' in #define parameter list");
        return;
      }
      ++I;
    }
  }
  Def.Body.assign(Toks.begin() + I, Toks.end());
  Macros[Def.Name] = std::move(Def);
}

void TokenMacroProcessor::expandTokens(const std::vector<Token> &In,
                                       std::vector<Token> &Out,
                                       std::vector<Symbol> &Hide) {
  for (size_t I = 0; I < In.size(); ++I) {
    const Token &T = In[I];
    if (T.isNot(TokenKind::Identifier)) {
      Out.push_back(T);
      continue;
    }
    bool Hidden = false;
    for (Symbol H : Hide)
      if (H == T.Sym)
        Hidden = true;
    auto It = Macros.find(T.Sym);
    if (Hidden || It == Macros.end()) {
      Out.push_back(T);
      continue;
    }
    const TokenMacroDef &Def = It->second;
    if (!Def.FunctionLike) {
      ++Expansions;
      Hide.push_back(Def.Name);
      expandTokens(Def.Body, Out, Hide);
      Hide.pop_back();
      continue;
    }
    // Function-like: require '('.
    if (I + 1 >= In.size() || In[I + 1].isNot(TokenKind::LParen)) {
      Out.push_back(T);
      continue;
    }
    // Collect arguments (token level, balancing parentheses).
    size_t J = I + 2;
    std::vector<std::vector<Token>> Args;
    std::vector<Token> Current;
    unsigned Depth = 0;
    bool Closed = false;
    for (; J < In.size(); ++J) {
      const Token &A = In[J];
      if (A.is(TokenKind::LParen) || A.is(TokenKind::LBracket) ||
          A.is(TokenKind::LBrace)) {
        ++Depth;
        Current.push_back(A);
        continue;
      }
      if (A.is(TokenKind::RParen)) {
        if (Depth == 0) {
          Closed = true;
          break;
        }
        --Depth;
        Current.push_back(A);
        continue;
      }
      if (A.is(TokenKind::RBracket) || A.is(TokenKind::RBrace)) {
        if (Depth > 0)
          --Depth;
        Current.push_back(A);
        continue;
      }
      if (A.is(TokenKind::Comma) && Depth == 0) {
        Args.push_back(std::move(Current));
        Current.clear();
        continue;
      }
      Current.push_back(A);
    }
    if (!Closed) {
      Diags.error(T.Loc, "unterminated macro argument list");
      Out.push_back(T);
      continue;
    }
    if (!Current.empty() || !Args.empty())
      Args.push_back(std::move(Current));
    if (Args.size() != Def.Params.size()) {
      Diags.error(T.Loc, "macro '" + std::string(T.Sym.str()) + "' expects " +
                             std::to_string(Def.Params.size()) +
                             " arguments, got " + std::to_string(Args.size()));
      Out.push_back(T);
      continue;
    }
    I = J; // continue after ')'
    ++Expansions;
    // Substitute parameters (token-for-token, NO parentheses added — this
    // is precisely the encapsulation failure the paper describes).
    std::vector<Token> Substituted;
    for (const Token &B : Def.Body) {
      bool IsParam = false;
      if (B.is(TokenKind::Identifier)) {
        for (size_t P = 0; P != Def.Params.size(); ++P) {
          if (Def.Params[P] == B.Sym) {
            Substituted.insert(Substituted.end(), Args[P].begin(),
                               Args[P].end());
            IsParam = true;
            break;
          }
        }
      }
      if (!IsParam)
        Substituted.push_back(B);
    }
    Hide.push_back(Def.Name);
    expandTokens(Substituted, Out, Hide);
    Hide.pop_back();
  }
}

std::string TokenMacroProcessor::renderTokens(
    const std::vector<Token> &Toks) const {
  std::ostringstream OS;
  bool First = true;
  for (const Token &T : Toks) {
    if (!First)
      OS << ' ';
    First = false;
    switch (T.Kind) {
    case TokenKind::Identifier:
    case TokenKind::IntLiteral:
    case TokenKind::FloatLiteral:
    case TokenKind::CharLiteral:
      OS << T.Sym.str();
      break;
    case TokenKind::StringLiteral:
      OS << '"' << T.Sym.str() << '"';
      break;
    default:
      OS << tokenKindSpelling(T.Kind);
      break;
    }
  }
  return OS.str();
}

std::string TokenMacroProcessor::process(const std::string &Source) {
  std::vector<Token> Body;
  std::istringstream In(Source);
  std::string Line;
  std::string NonDirectives;
  while (std::getline(In, Line)) {
    size_t NS = Line.find_first_not_of(" \t");
    if (NS != std::string::npos && Line[NS] == '#') {
      std::string Rest = Line.substr(NS + 1);
      size_t WS = Rest.find_first_not_of(" \t");
      if (WS != std::string::npos && Rest.compare(WS, 6, "define") == 0) {
        handleDefineLine(Rest.substr(WS + 6));
        continue;
      }
      if (WS != std::string::npos && Rest.compare(WS, 5, "undef") == 0) {
        std::vector<Token> T = lexText("<undef>", Rest.substr(WS + 5));
        if (!T.empty() && T[0].is(TokenKind::Identifier))
          Macros.erase(T[0].Sym);
        continue;
      }
      Diags.error(SourceLoc(), "unsupported preprocessor directive: " + Line);
      continue;
    }
    NonDirectives += Line;
    NonDirectives += '\n';
  }
  std::vector<Token> Toks = lexText("<input>", NonDirectives);
  std::vector<Token> Out;
  std::vector<Symbol> Hide;
  expandTokens(Toks, Out, Hide);
  return renderTokens(Out);
}

std::string TokenMacroProcessor::expandFragment(const std::string &Fragment) {
  std::vector<Token> Toks = lexText("<fragment>", Fragment);
  std::vector<Token> Out;
  std::vector<Symbol> Hide;
  expandTokens(Toks, Out, Hide);
  return renderTokens(Out);
}

bool TokenMacroProcessor::hadErrors() const { return Diags.hasErrors(); }

std::string TokenMacroProcessor::diagnosticsText() const {
  return Diags.renderAll();
}
