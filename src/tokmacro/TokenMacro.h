//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A token-level macro processor in the mould of CPP (the paper's Figure 1
/// "Token" column): object-like and function-like `#define`s, recursive
/// expansion with self-reference suppression. It exists as the *baseline*
/// against which MS2's syntactic safety and encapsulation are demonstrated:
/// `#define mult(A,B) A * B` famously mis-parenthesizes `mult(x+y, m+n)`,
/// which MS2 cannot do because its substitution operates on trees.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_TOKMACRO_TOKENMACRO_H
#define MSQ_TOKMACRO_TOKENMACRO_H

#include "lexer/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace msq {

/// A CPP-style token macro definition.
struct TokenMacroDef {
  Symbol Name;
  bool FunctionLike = false;
  std::vector<Symbol> Params;
  std::vector<Token> Body;
};

/// Processes text containing `#define` directives and macro uses, producing
/// the expanded token stream re-rendered as text.
class TokenMacroProcessor {
public:
  TokenMacroProcessor();
  ~TokenMacroProcessor();
  TokenMacroProcessor(const TokenMacroProcessor &) = delete;
  TokenMacroProcessor &operator=(const TokenMacroProcessor &) = delete;

  /// Defines a macro programmatically (object-like when \p Params empty
  /// and \p FunctionLike false).
  void define(std::string_view Name, std::vector<std::string> Params,
              std::string_view Body, bool FunctionLike);

  /// Processes a whole source: consumes `#define NAME ...` /
  /// `#define NAME(a,b) ...` / `#undef NAME` lines, expands everything
  /// else, and returns the result as text.
  std::string process(const std::string &Source);

  /// Expands a single fragment with the current definitions.
  std::string expandFragment(const std::string &Fragment);

  bool hadErrors() const;
  std::string diagnosticsText() const;
  size_t expansionsPerformed() const { return Expansions; }
  size_t macroCount() const { return Macros.size(); }

private:
  std::vector<Token> lexText(std::string Name, std::string Text);
  void handleDefineLine(const std::string &Line);
  /// Expands \p In to a fully macro-free token vector. \p Hide carries the
  /// set of macro names suppressed for recursion.
  void expandTokens(const std::vector<Token> &In, std::vector<Token> &Out,
                    std::vector<Symbol> &Hide);
  std::string renderTokens(const std::vector<Token> &Toks) const;

  SourceManager SM;
  DiagnosticsEngine Diags;
  Arena StringsArena;
  StringInterner Interner;
  std::unordered_map<Symbol, TokenMacroDef, SymbolHash> Macros;
  size_t Expansions = 0;
};

} // namespace msq

#endif // MSQ_TOKMACRO_TOKENMACRO_H
