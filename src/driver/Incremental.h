//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental sub-unit re-expansion: keep a warm engine plus per-unit
/// caches between batches, and after a macro-library edit re-expand ONLY
/// the units the edit can reach, replaying everything else verbatim.
///
/// Semantics are exactly BatchDriver's: every unit expands against a
/// pristine snapshot of the library state (nothing one unit does is
/// visible to a sibling), and the output of every run is byte-identical
/// to a from-scratch expansion of (current library, unit source) —
/// including diagnostics, provenance backtraces, lint findings, and
/// source maps. The edit-fuzzing differential tier
/// (tests/incremental_diff_test.cpp) holds the driver to that bar across
/// thousands of randomized library edits.
///
/// Each unit takes the cheapest sound path, degrading one step at a time:
///
///  * CleanReplay — the library delta provably cannot reach this unit
///    (dependency map + per-definition fingerprints): return the stored
///    ExpandResult. Zero engine work.
///  * TreeReuse — the unit is dirty (say a macro BODY it invokes changed)
///    but nothing that steers its parse changed: deep-clone the cached
///    pristine parse tree, remap invocation definitions into the live
///    registry, restore the unit's rebased after-parse state, and only
///    expand. Skips lexing and parsing.
///  * TokenReuse — the parse could come out differently (a macro pattern
///    visible to the unit changed) but the source bytes did not: re-parse
///    from the cached token stream. Skips lexing.
///  * Cold — full lex + parse + expand; refills every cache on the way
///    out (tokens, pristine tree, after-parse effects, dependencies).
///
/// Soundness rules (who gets dirtied by what) live in
/// expand/DependencyMap.h; the caches in cache/SubUnitCache.h; the
/// re-expansion primitive is Engine::reexpand (api/Msq.h). Cache lookups
/// evaluate the incr.token_cache / incr.tree_cache fault points, so an
/// injected trip degrades a path to the next colder one — never to
/// different bytes — which the chaos tier asserts.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_DRIVER_INCREMENTAL_H
#define MSQ_DRIVER_INCREMENTAL_H

#include "api/Msq.h"
#include "cache/SubUnitCache.h"
#include "expand/DependencyMap.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace msq {

struct IncrementalOptions {
  Engine::Options EngineOpts;
  /// Master switches for each warm path (tests and benchmarks flip them
  /// to isolate a path; all on by default). Disabling a path degrades to
  /// the next colder one — output never changes.
  bool EnableCleanReplay = true;
  bool EnableTreeReuse = true;
  bool EnableTokenReuse = true;
};

/// How one unit of one run() was produced.
struct IncrementalUnitOutcome {
  std::string Name;
  IncrementalPath Path = IncrementalPath::Cold;
  /// True when the library delta (or a source edit) forced re-expansion.
  bool WasDirty = true;
  double Millis = 0.0;
};

/// Outcome of one IncrementalDriver::run call.
struct IncrementalResult {
  /// Per-unit results in input order, byte-identical to a from-scratch
  /// batch against the current library.
  std::vector<ExpandResult> Results;
  std::vector<IncrementalUnitOutcome> Outcomes;
  size_t CleanReplays = 0;
  size_t TreeReuses = 0;
  size_t TokenReuses = 0;
  size_t ColdExpansions = 0;
  size_t UnitsFailed = 0;
  double TotalMillis = 0.0;
  /// Sub-unit cache counters accumulated over the driver's lifetime,
  /// snapshotted at the end of this run.
  SubUnitCacheStats SubUnit;

  /// {"units":[{"name":...,"path":"clean|tree|token|cold","dirty":B,
  ///   "success":B,"millis":F},...],"paths":{"clean":N,"tree":N,
  ///   "token":N,"cold":N},"failed":N,"total_millis":F,
  ///   "subunit_cache":{...}} — same spirit as BatchResult::metricsJson.
  std::string metricsJson() const;
};

/// A warm expansion session that re-expands only what a library edit can
/// reach. Typical shape (and the shape of the differential fuzzer):
///
/// \code
///   msq::IncrementalDriver D(Opts);
///   D.setLibrary(Lib);            // cold: everything dirty
///   auto R0 = D.run(Units);       // fills caches + dependency map
///   Lib[2].Source = edited;       // touch one macro body
///   D.setLibrary(Lib);            // classifies the delta, marks dirty
///   auto R1 = D.run(Units);       // re-expands only the reachable units
/// \endcode
///
/// Not thread-safe: one driver owns one engine and must be called from
/// one thread at a time (the expansion server serializes on its reload
/// path for the same reason).
class IncrementalDriver {
public:
  explicit IncrementalDriver(IncrementalOptions Opts = IncrementalOptions());
  ~IncrementalDriver();
  IncrementalDriver(const IncrementalDriver &) = delete;
  IncrementalDriver &operator=(const IncrementalDriver &) = delete;

  /// (Re)loads the macro library: the engine's session is rebuilt in
  /// place — same arena, interner, and source manager, so cached tokens,
  /// trees, and symbols stay valid — by replaying \p Library over the
  /// initial checkpoint. The per-definition fingerprints of the old and
  /// new state are diffed into a LibraryDelta and every recorded unit the
  /// delta can reach is marked dirty (its cached tree is also dropped
  /// when the delta is signature-level). The first call marks nothing —
  /// there are no recorded units yet.
  void setLibrary(std::vector<SourceUnit> Library);

  /// Expands \p Units in input order with snapshot isolation, each via
  /// the cheapest sound path. Units named for the first time (or whose
  /// source changed) go cold; unknown-dependency units (e.g. meta-global
  /// mutators) always re-expand.
  IncrementalResult run(const std::vector<SourceUnit> &Units);

  /// The delta classified by the most recent setLibrary (empty before
  /// the second call).
  const LibraryDelta &lastDelta() const { return Delta; }

  const DependencyMap &dependencyMap() const { return DepMap; }
  const SubUnitCacheStats &subUnitStats() const { return Stats; }
  /// Recorded dependencies of \p Unit, or null when never expanded.
  const UnitDeps *depsOf(const std::string &Unit) const {
    return DepMap.depsOf(Unit);
  }
  /// Drops all per-unit state (records, caches, dependency map) but keeps
  /// the engine and library: the next run() goes fully cold. Tests use
  /// this to compare warm vs cold output on one driver.
  void invalidateAll();

  Engine &engine() { return *E; }

private:
  /// A unit parse's session side effects, expressed as ADDITIONS over the
  /// baseline it was parsed under — the rebasable form of the after-parse
  /// checkpoint. Replaying them onto a LATER baseline reproduces what
  /// re-parsing the unit there would have registered, as long as the
  /// delta was not signature-level (which invalidates the tree anyway).
  struct ParseEffects {
    std::vector<MacroDef *> Macros;
    /// By value (Symbol/type/def pointers are arena-stable) so effects
    /// outlive any tree-cache eviction.
    std::vector<MetaFunction> MetaFuncs;
    /// (scope index, name, type) additions to the meta scope.
    std::vector<std::tuple<size_t, Symbol, const MetaType *>> Globals;
    /// (scope index, symbol) typedef additions.
    std::vector<std::pair<size_t, Symbol>> Typedefs;
    /// Recorded object-variable types: additions and overwrites (a
    /// re-parse would overwrite too — later declarations win).
    std::vector<std::pair<Symbol, TypeSpecNode *>> VarTypes;
    /// False when the diff was not expressible as additions (scope depth
    /// moved, a definition vanished): the tree path is skipped.
    bool Representable = false;
  };

  /// Everything remembered about one previously expanded unit.
  struct UnitRecord {
    std::string Source;
    std::string SubKey;
    ExpandResult LastResult;
    UnitDeps Deps;
    /// Identifier spellings of the unit's source tokens (pattern-change
    /// dirtiness rule); trusted only when HasIdents.
    std::set<std::string> Idents;
    bool HasIdents = false;
    ParseEffects Effects;
    /// The cached pristine tree is still valid under the current library.
    bool TreeValid = false;
    /// Must re-expand on the next run (library delta reached this unit).
    bool Dirty = false;
    /// LastResult may be replayed verbatim when not dirty: the expansion
    /// was deterministic (no timeout / fault / quarantine) and had no
    /// side effects (no meta-global mutation).
    bool Replayable = false;
    /// DiagnosticsText/SourceMapJson render a library buffer name, so
    /// library text motion alone dirties this unit.
    bool RefsLibText = false;
  };

  /// Rebuilds the engine session in place: restore the initial
  /// checkpoint, replay the library (unrecorded), recapture Baseline.
  void replayLibrary();
  /// Diffs \p After against the current Baseline into \p Out.
  void computeEffects(const Engine::SessionCheckpoint &After,
                      ParseEffects &Out) const;
  /// Applies \p Eff on top of a copy of the current Baseline. False when
  /// a replayed addition conflicts (caller falls back to a colder path).
  bool rebase(Engine::SessionCheckpoint &CP, const ParseEffects &Eff) const;
  /// Marks records dirty / trees invalid under \p D.
  void applyDelta(const LibraryDelta &D);
  /// Expands one dirty unit via tree/token/cold and refreshes its record.
  ExpandResult expandDirty(const SourceUnit &U, UnitRecord &Rec,
                           IncrementalPath &PathOut);

  IncrementalOptions Opts;
  std::unique_ptr<Engine> E;
  /// Session state of the fresh engine (before any library), the base the
  /// in-place rebuild restores.
  Engine::SessionCheckpoint InitialCP;
  /// Session state right after library replay: restored before every
  /// expansion (snapshot isolation) and the base of every rebase.
  Engine::SessionCheckpoint Baseline;
  DefinitionFingerprints FP;
  LibraryDelta Delta;
  bool HaveLibrary = false;
  std::vector<SourceUnit> Library;
  /// Library unit names (substring probes for the LibraryTextChanged
  /// dirtiness rule).
  std::vector<std::string> LibraryNames;
  TokenStreamCache TokCache;
  ParseTreeCache TreeCache;
  SubUnitCacheStats Stats;
  DependencyMap DepMap;
  std::map<std::string, UnitRecord> Records;
};

} // namespace msq

#endif // MSQ_DRIVER_INCREMENTAL_H
