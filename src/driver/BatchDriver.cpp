//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "support/ThreadPool.h"

using namespace msq;

BatchDriver::BatchDriver(SessionSnapshot Snap, BatchOptions Opts)
    : Snap(std::move(Snap)), Opts(Opts) {}

/// Builds a worker's private engine by replaying the snapshot's session
/// log: every recorded source is parsed (and, unless it was parse-only,
/// expanded) exactly as the original engine did, reproducing the macro
/// tables, meta globals, and interned AST pool in the worker's own arena.
/// Printing is skipped — replay exists for its side effects.
std::unique_ptr<Engine> BatchDriver::buildWorkerEngine(
    const SessionSnapshot &Snap, const BatchOptions &BO) {
  Engine::Options EO = Snap.options();
  if (BO.MaxMetaSteps)
    EO.MaxMetaSteps = BO.MaxMetaSteps;
  if (BO.UnitTimeoutMillis)
    EO.UnitTimeoutMillis = BO.UnitTimeoutMillis;
  EO.CollectProfile = BO.CollectProfile;
  auto E = std::make_unique<Engine>(EO);
  for (const SessionSnapshot::LogEntry &L : Snap.log()) {
    if (L.ParseOnly)
      E->parseSourceImpl(L.Unit.Name, L.Unit.Source);
    else
      E->expandSourceImpl(L.Unit.Name, L.Unit.Source, /*EmitOutput=*/false,
                          /*Record=*/false);
  }
  return E;
}

BatchResult BatchDriver::run(const std::vector<SourceUnit> &Units) const {
  BatchResult BR;
  BR.Results.resize(Units.size());
  if (Units.empty())
    return BR;

  unsigned Workers = ThreadPool::chooseWorkerCount(Opts.ThreadCount,
                                                   Units.size());
  std::atomic<size_t> Next{0};
  const BatchOptions &BO = Opts;
  const SessionSnapshot &SnapRef = Snap;
  ThreadPool::runWorkers(Workers, [&](unsigned) {
    std::unique_ptr<Engine> E = buildWorkerEngine(SnapRef, BO);
    // The immutable baseline every unit starts from. Restoring it before
    // each unit gives snapshot isolation AND determinism: a unit's output
    // cannot depend on which worker ran it or on its siblings.
    Engine::SessionCheckpoint Baseline = E->checkpoint();
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Units.size(); I = Next.fetch_add(1, std::memory_order_relaxed)) {
      E->restoreCheckpoint(Baseline);
      BR.Results[I] =
          E->expandSourceImpl(Units[I].Name, Units[I].Source,
                              /*EmitOutput=*/true, /*Record=*/false);
    }
  });

  for (const ExpandResult &R : BR.Results) {
    if (!R.Success)
      ++BR.UnitsFailed;
    BR.TotalInvocations += R.InvocationsExpanded;
    BR.Profile.merge(R.Profile);
  }
  return BR;
}

std::string BatchResult::metricsJson() const {
  std::string Out = "{\"units\":[";
  bool First = true;
  for (const ExpandResult &R : Results) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    Out += jsonEscape(R.Name);
    Out += "\",\"success\":";
    Out += R.Success ? "true" : "false";
    Out += ",\"invocations\":";
    Out += std::to_string(R.InvocationsExpanded);
    Out += ",\"meta_steps\":";
    Out += std::to_string(R.MetaStepsExecuted);
    Out += ",\"gensyms\":";
    Out += std::to_string(R.GensymsCreated);
    Out += ",\"nodes\":";
    Out += std::to_string(R.NodesProduced);
    Out += ",\"fuel_exhausted\":";
    Out += R.FuelExhausted ? "true" : "false";
    Out += ",\"timed_out\":";
    Out += R.TimedOut ? "true" : "false";
    Out += '}';
  }
  Out += "],\"aggregate\":";
  Out += Profile.toJson();
  Out += '}';
  return Out;
}

//===----------------------------------------------------------------------===//
// Engine batch entry points (declared in api/Msq.h, defined here so the
// api library does not depend on the driver).
//===----------------------------------------------------------------------===//

BatchResult Engine::expandSources(std::vector<SourceUnit> Units) {
  return expandSources(std::move(Units), BatchOptions());
}

BatchResult Engine::expandSources(std::vector<SourceUnit> Units,
                                  const BatchOptions &BO) {
  BatchDriver D(snapshot(), BO);
  return D.run(Units);
}
