//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"

#include "cache/ExpansionCache.h"
#include "support/Fault.h"
#include "support/ThreadPool.h"

using namespace msq;

namespace {

/// The structured result of a quarantined unit: a clean, attributed error
/// in the unit's own slot. The batch itself continues — one dying unit
/// must never take its siblings (or the driver) down with it.
ExpandResult quarantinedResult(const std::string &Name,
                               const std::string &Reason,
                               bool Injected) {
  ExpandResult R;
  R.Name = Name;
  R.Success = false;
  R.Quarantined = true;
  R.FaultInjected = Injected;
  R.DiagnosticsText =
      "error: unit '" + Name + "' quarantined: " + Reason + "\n";
  return R;
}

} // namespace

BatchDriver::BatchDriver(SessionSnapshot Snap, BatchOptions Opts)
    : Snap(std::move(Snap)), Opts(Opts) {}

void BatchDriver::attachCache(std::shared_ptr<ExpansionCache> C,
                              std::string LibraryFingerprint, bool Stable) {
  Cache = std::move(C);
  Fingerprint = std::move(LibraryFingerprint);
  FingerprintStable = Stable;
}

/// Printing is skipped during replay — it exists for its side effects.
std::unique_ptr<Engine> BatchDriver::buildWorkerEngine(
    const SessionSnapshot &Snap, const BatchOptions &BO) {
  Engine::Options EO = Snap.options();
  if (BO.MaxMetaSteps)
    EO.MaxMetaSteps = BO.MaxMetaSteps;
  if (BO.UnitTimeoutMillis)
    EO.UnitTimeoutMillis = BO.UnitTimeoutMillis;
  EO.CollectProfile = BO.CollectProfile;
  auto E = std::make_unique<Engine>(EO);
  for (const SessionSnapshot::LogEntry &L : Snap.log()) {
    if (L.ParseOnly)
      E->parseSourceImpl(L.Unit);
    else
      E->expandSourceImpl(L.Unit, /*EmitOutput=*/false, /*Record=*/false);
  }
  return E;
}

BatchResult BatchDriver::run(const std::vector<SourceUnit> &Units) const {
  BatchResult BR;
  BR.Results.resize(Units.size());
  BR.CacheEnabled = Cache != nullptr;
  if (Units.empty())
    return BR;

  unsigned Workers = ThreadPool::chooseWorkerCount(Opts.ThreadCount,
                                                   Units.size());
  std::atomic<size_t> Next{0};
  const BatchOptions &BO = Opts;
  const SessionSnapshot &SnapRef = Snap;
  const size_t EffectiveMaxMetaSteps =
      BO.MaxMetaSteps ? BO.MaxMetaSteps : SnapRef.options().MaxMetaSteps;
  // Traces are not cached, so a tracing session bypasses lookups and
  // counts every unit as uncacheable.
  const bool TraceOn = SnapRef.options().TraceExpansions;
  std::vector<CacheStats> WorkerStats(Workers);
  ThreadPool::runWorkers(Workers, [&](unsigned W) {
    CacheStats &Stats = WorkerStats[W];
    // The engine is built lazily: a fully warm batch never pays for the
    // session-log replay at all, which is where the warm-cache speedup
    // comes from.
    std::unique_ptr<Engine> E;
    Engine::SessionCheckpoint Baseline;
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Units.size(); I = Next.fetch_add(1, std::memory_order_relaxed)) {
      const bool TryCache = Cache && FingerprintStable && !TraceOn;
      std::string Key;
      if (TryCache) {
        Key = expansionCacheKey(Fingerprint, Units[I], EffectiveMaxMetaSteps,
                                BO.CollectProfile,
                                SnapRef.options().TrackProvenance);
        CachedExpansion CE;
        if (Cache->lookup(Key, CE, Stats)) {
          BR.Results[I] = expandResultFromCache(Units[I].Name, CE);
          continue;
        }
      }
      // batch.unit_start: an injected trip here stands for the unit's
      // expansion dying before it produced anything. The unit is
      // quarantined — structured error in its slot — and the batch goes
      // on. Accounting below still sees exactly one outcome per unit.
      if (fault::enabled() &&
          fault::shouldFail(fault::Point::BatchUnitStart)) {
        BR.Results[I] = quarantinedResult(
            Units[I].Name, "injected crash at batch.unit_start",
            /*Injected=*/true);
        if (Cache)
          ++Stats.Uncacheable;
        continue;
      }
      if (!E) {
        E = buildWorkerEngine(SnapRef, BO);
        // The immutable baseline every unit starts from. Restoring it
        // before each unit gives snapshot isolation AND determinism: a
        // unit's output cannot depend on which worker ran it or on its
        // siblings.
        Baseline = E->checkpoint();
      }
      E->restoreCheckpoint(Baseline);
      try {
        BR.Results[I] = E->expandSourceImpl(Units[I], /*EmitOutput=*/true,
                                            /*Record=*/false);
      } catch (const std::exception &Ex) {
        // A crash escaping the engine (bad_alloc, a defect...) poisons
        // the worker's engine state unpredictably, so drop the engine —
        // the next unit on this worker rebuilds from the snapshot — and
        // quarantine the unit instead of aborting the whole batch.
        BR.Results[I] = quarantinedResult(
            Units[I].Name,
            std::string("expansion died unexpectedly: ") + Ex.what(),
            /*Injected=*/false);
        E.reset();
      }
      if (Cache) {
        if (TryCache && expansionResultCacheable(BR.Results[I])) {
          ++Stats.Misses;
          Cache->store(Key, cachedExpansionFromResult(BR.Results[I]), Stats);
        } else {
          ++Stats.Uncacheable;
        }
      }
    }
  });

  for (const CacheStats &S : WorkerStats)
    BR.Cache.merge(S);
  for (const ExpandResult &R : BR.Results) {
    if (!R.Success)
      ++BR.UnitsFailed;
    if (R.Quarantined)
      BR.QuarantinedUnits.push_back(R.Name);
    BR.TotalInvocations += R.InvocationsExpanded;
    BR.Profile.merge(R.Profile);
    BR.Lints.insert(BR.Lints.end(), R.Lints.begin(), R.Lints.end());
  }
  // Units sharing a macro library each re-report its findings; collapse
  // identical diagnostics into one entry with a count and sort the batch
  // report deterministically.
  normalizeLintFindings(BR.Lints);
  return BR;
}

std::string BatchResult::metricsJson() const {
  std::string Out = "{\"units\":[";
  bool First = true;
  for (const ExpandResult &R : Results) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    Out += jsonEscape(R.Name);
    Out += "\",\"success\":";
    Out += R.Success ? "true" : "false";
    Out += ",\"invocations\":";
    Out += std::to_string(R.InvocationsExpanded);
    Out += ",\"meta_steps\":";
    Out += std::to_string(R.MetaStepsExecuted);
    Out += ",\"gensyms\":";
    Out += std::to_string(R.GensymsCreated);
    Out += ",\"nodes\":";
    Out += std::to_string(R.NodesProduced);
    Out += ",\"fuel_exhausted\":";
    Out += R.FuelExhausted ? "true" : "false";
    Out += ",\"timed_out\":";
    Out += R.TimedOut ? "true" : "false";
    // Which limit (if any) aborted the unit, as a field of its own — the
    // unit's name is right here in the same object, which is what makes
    // batch failures attributable from metrics alone.
    Out += ",\"limit\":\"";
    Out += R.FuelExhausted ? "fuel" : (R.TimedOut ? "timeout" : "none");
    Out += "\",\"mutates_globals\":";
    Out += R.MetaGlobalsMutated ? "true" : "false";
    Out += ",\"cached\":";
    Out += R.FromCache ? "true" : "false";
    Out += ",\"quarantined\":";
    Out += R.Quarantined ? "true" : "false";
    Out += ",\"lints\":";
    Out += std::to_string(R.Lints.size());
    Out += '}';
  }
  Out += "]";
  if (CacheEnabled) {
    Out += ",\"cache\":";
    Out += Cache.toJson();
  }
  if (!QuarantinedUnits.empty()) {
    Out += ",\"quarantined\":[";
    for (size_t I = 0; I != QuarantinedUnits.size(); ++I) {
      if (I)
        Out += ',';
      Out += '"';
      Out += jsonEscape(QuarantinedUnits[I]);
      Out += '"';
    }
    Out += ']';
  }
  if (!Lints.empty()) {
    Out += ",\"lint_findings\":";
    Out += lintFindingsJson(Lints);
  }
  Out += ",\"aggregate\":";
  Out += Profile.toJson();
  Out += '}';
  return Out;
}

//===----------------------------------------------------------------------===//
// Engine batch entry points (declared in api/Msq.h, defined here so the
// api library does not depend on the driver).
//===----------------------------------------------------------------------===//

BatchResult Engine::expandSources(std::vector<SourceUnit> Units) {
  return expandSources(std::move(Units), BatchOptions());
}

BatchResult Engine::expandSources(std::vector<SourceUnit> Units,
                                  const BatchOptions &BO) {
  BatchDriver D(snapshot(), BO);
  if (Opts.EnableExpansionCache) {
    std::shared_ptr<ExpansionCache> Cache;
    {
      // Concurrent expandSources calls must agree on one cache; only the
      // lazy creation needs the lock (the cache itself is thread-safe).
      std::lock_guard<std::mutex> Lock(ExpCacheMutex);
      if (!ExpCache)
        ExpCache = std::make_shared<ExpansionCache>(Opts.ExpansionCacheDir);
      Cache = ExpCache;
    }
    bool Stable = false;
    std::string FP = stateFingerprint(&Stable);
    D.attachCache(std::move(Cache), std::move(FP), Stable);
  }
  return D.run(Units);
}
