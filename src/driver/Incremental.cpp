//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IncrementalDriver implementation. See Incremental.h for the path
/// taxonomy and the soundness contract; expand/DependencyMap.h for the
/// dirtiness rules it applies.
///
//===----------------------------------------------------------------------===//

#include "driver/Incremental.h"

#include "ast/Ast.h"
#include "cache/ExpansionCache.h"
#include "lexer/TokenKinds.h"

#include <chrono>
#include <utility>

using namespace msq;

namespace {

/// Minimal JSON string escaper (metrics output).
void appendJson(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

/// Identifier spellings of a token stream — the unit's "mentions" set for
/// the pattern-change dirtiness rule. Macro names always lex as plain
/// identifiers (registration changes parsing, never lexing), so this set
/// is exactly the names whose signature change could re-steer this unit.
std::set<std::string> identsOf(const std::vector<Token> &Toks) {
  std::set<std::string> Ids;
  for (const Token &T : Toks)
    if (T.Kind == TokenKind::Identifier)
      Ids.insert(std::string(T.Sym.str()));
  return Ids;
}

/// cloneNodeRemapped callback: point every invocation at the definition
/// the CURRENT registry holds for the same name (the in-place library
/// rebuild allocates fresh MacroDef nodes). A null result keeps the old
/// pointer — harmless, because a vanished definition is a signature-level
/// delta and those invalidate the tree before it can be cloned.
const MacroDef *remapDefToRegistry(const MacroDef *Old, void *Ctx) {
  if (!Old)
    return nullptr;
  return static_cast<const MacroRegistry *>(Ctx)->lookup(Old->Name);
}

} // namespace

//===----------------------------------------------------------------------===//
// IncrementalResult
//===----------------------------------------------------------------------===//

std::string IncrementalResult::metricsJson() const {
  std::string J = "{\"units\":[";
  for (size_t I = 0; I < Outcomes.size(); ++I) {
    const IncrementalUnitOutcome &O = Outcomes[I];
    if (I)
      J += ',';
    J += "{\"name\":";
    appendJson(J, O.Name);
    J += ",\"path\":\"";
    J += incrementalPathName(O.Path);
    J += "\",\"dirty\":";
    J += O.WasDirty ? "true" : "false";
    J += ",\"success\":";
    J += (I < Results.size() && Results[I].Success) ? "true" : "false";
    J += ",\"millis\":";
    J += std::to_string(O.Millis);
    J += '}';
  }
  J += "],\"paths\":{\"clean\":";
  J += std::to_string(CleanReplays);
  J += ",\"tree\":";
  J += std::to_string(TreeReuses);
  J += ",\"tokens\":";
  J += std::to_string(TokenReuses);
  J += ",\"cold\":";
  J += std::to_string(ColdExpansions);
  J += "},\"failed\":";
  J += std::to_string(UnitsFailed);
  J += ",\"total_millis\":";
  J += std::to_string(TotalMillis);
  J += ",\"subunit_cache\":";
  J += SubUnit.toJson();
  J += '}';
  return J;
}

//===----------------------------------------------------------------------===//
// IncrementalDriver
//===----------------------------------------------------------------------===//

IncrementalDriver::IncrementalDriver(IncrementalOptions Opts_)
    : Opts(std::move(Opts_)), E(std::make_unique<Engine>(Opts.EngineOpts)) {
  InitialCP = E->checkpoint();
  Baseline = InitialCP;
}

IncrementalDriver::~IncrementalDriver() = default;

void IncrementalDriver::replayLibrary() {
  E->restoreCheckpoint(InitialCP);
  for (const SourceUnit &L : Library)
    E->expandUnrecorded(L.Name, L.Source);
  Baseline = E->checkpoint();
}

void IncrementalDriver::setLibrary(std::vector<SourceUnit> Library_) {
  Library = std::move(Library_);
  LibraryNames.clear();
  std::vector<std::string> LibText;
  for (const SourceUnit &L : Library) {
    LibraryNames.push_back(L.Name);
    LibText.push_back(L.Name);
    LibText.push_back(L.Source);
  }
  if (!HaveLibrary) {
    replayLibrary();
    FP = E->definitionFingerprints(LibText);
    Delta = LibraryDelta();
    HaveLibrary = true;
    return;
  }
  DefinitionFingerprints OldFP = std::move(FP);
  // In-place rebuild: the arena, interner, and source manager survive, so
  // cached tokens, pristine trees, and interned symbols stay valid; only
  // the registries and meta globals are rebuilt from the new sources.
  replayLibrary();
  FP = E->definitionFingerprints(LibText);
  Delta = diffDefinitions(OldFP, FP);
  applyDelta(Delta);
}

void IncrementalDriver::applyDelta(const LibraryDelta &D) {
  if (!D.AnyChange)
    return;
  // Definition-time lint reports cover every definition visible to a
  // unit, so under linting ANY library change can change Lints.
  const bool LintAll = Opts.EngineOpts.Lint.Enabled;
  for (auto &[Name, Rec] : Records) {
    const std::set<std::string> *Ids = Rec.HasIdents ? &Rec.Idents : nullptr;
    bool Dirty = D.FullReset || LintAll || DepMap.isDirty(Name, D, Ids) ||
                 (D.GensymBaseChanged && Rec.LastResult.GensymsCreated > 0) ||
                 (D.LibraryTextChanged && Rec.RefsLibText);
    Rec.Dirty = Rec.Dirty || Dirty;

    bool TreeInvalid = D.FullReset;
    if (!TreeInvalid)
      for (const std::string &P : D.PatternChanged)
        if (!Rec.HasIdents || Rec.Idents.count(P) || Rec.Deps.Macros.count(P)) {
          TreeInvalid = true;
          break;
        }
    if (TreeInvalid && Rec.TreeValid) {
      TreeCache.invalidate(Rec.SubKey, Stats);
      Rec.TreeValid = false;
      Rec.Effects = ParseEffects();
    }
  }
}

void IncrementalDriver::computeEffects(const Engine::SessionCheckpoint &After,
                                       ParseEffects &Out) const {
  Out = ParseEffects();

  // The parser never runs meta code: if interpreter state moved, this was
  // not a pure parse and the tree path must not splice it.
  if (After.Interp.GensymCounter != Baseline.Interp.GensymCounter ||
      After.Interp.GlobalFrames.size() != Baseline.Interp.GlobalFrames.size())
    return;

  size_t Added = 0;
  for (const auto &[Sym, Def] : After.Macros) {
    const MacroDef *BD = Baseline.Macros.lookup(Sym);
    if (!BD) {
      Out.Macros.push_back(Def);
      ++Added;
    } else if (BD != Def) {
      return; // a definition was replaced — not additions-only
    }
  }
  if (Baseline.Macros.size() + Added != After.Macros.size())
    return; // something vanished

  Added = 0;
  for (const auto &[Sym, Fn] : After.MetaFuncs) {
    const MetaFunction *BF = Baseline.MetaFuncs.lookup(Sym);
    if (!BF) {
      Out.MetaFuncs.push_back(Fn);
      ++Added;
    } else if (BF->Type != Fn.Type || BF->Def != Fn.Def) {
      return;
    }
  }
  if (Baseline.MetaFuncs.size() + Added != After.MetaFuncs.size())
    return;

  const auto &AS = After.Globals.scopes();
  const auto &BS = Baseline.Globals.scopes();
  if (AS.size() != BS.size())
    return;
  for (size_t I = 0; I < AS.size(); ++I) {
    Added = 0;
    for (const auto &[Sym, Ty] : AS[I]) {
      auto It = BS[I].find(Sym);
      if (It == BS[I].end()) {
        Out.Globals.emplace_back(I, Sym, Ty);
        ++Added;
      } else if (It->second != Ty) {
        return;
      }
    }
    if (BS[I].size() + Added != AS[I].size())
      return;
  }

  if (After.TypedefScopes.size() != Baseline.TypedefScopes.size())
    return;
  for (size_t I = 0; I < After.TypedefScopes.size(); ++I) {
    Added = 0;
    for (Symbol Sym : After.TypedefScopes[I])
      if (!Baseline.TypedefScopes[I].count(Sym)) {
        Out.Typedefs.emplace_back(I, Sym);
        ++Added;
      }
    if (Baseline.TypedefScopes[I].size() + Added !=
        After.TypedefScopes[I].size())
      return;
  }

  for (const auto &[Sym, Ty] : After.ObjectVarTypes) {
    auto It = Baseline.ObjectVarTypes.find(Sym);
    if (It == Baseline.ObjectVarTypes.end() || It->second != Ty)
      Out.VarTypes.emplace_back(Sym, Ty); // addition or overwrite: replayable
  }
  for (const auto &[Sym, Ty] : Baseline.ObjectVarTypes) {
    (void)Ty;
    if (!After.ObjectVarTypes.count(Sym))
      return; // a recorded type vanished — parsing cannot do that cleanly
  }

  Out.Representable = true;
}

bool IncrementalDriver::rebase(Engine::SessionCheckpoint &CP,
                               const ParseEffects &Eff) const {
  if (!Eff.Representable)
    return false;
  for (MacroDef *D : Eff.Macros)
    if (!CP.Macros.define(D))
      return false; // name now taken by the new library — colder path
  for (const MetaFunction &F : Eff.MetaFuncs)
    if (!CP.MetaFuncs.define(F.Name, F.Type, F.Def))
      return false;
  for (const auto &[Idx, Sym, Ty] : Eff.Globals) {
    if (Idx >= CP.Globals.depth())
      return false;
    if (Idx == 0) {
      if (!CP.Globals.declareGlobal(Sym, Ty))
        return false;
    } else if (Idx + 1 == CP.Globals.depth()) {
      if (!CP.Globals.declare(Sym, Ty))
        return false;
    } else {
      return false; // additions in a middle scope are not expressible
    }
  }
  for (const auto &[Idx, Sym] : Eff.Typedefs) {
    if (Idx >= CP.TypedefScopes.size())
      return false;
    CP.TypedefScopes[Idx].insert(Sym);
  }
  for (const auto &[Sym, Ty] : Eff.VarTypes)
    CP.ObjectVarTypes[Sym] = Ty;
  return true;
}

ExpandResult IncrementalDriver::expandDirty(const SourceUnit &U,
                                            UnitRecord &Rec,
                                            IncrementalPath &PathOut) {
  const std::string Key = subUnitCacheKey(U.Name, U.Source, U.Base);
  const bool SameSource = !Rec.SubKey.empty() && Rec.SubKey == Key;
  DependencyRecorder DR;
  ExpandResult R;
  bool Done = false;

  // Warmest dirty path: expand a clone of the cached pristine tree under
  // the unit's rebased after-parse state. Sound only when the source is
  // byte-identical and no signature-level change reached this unit
  // (applyDelta dropped the tree otherwise).
  if (Opts.EnableTreeReuse && SameSource && Rec.TreeValid &&
      Rec.Effects.Representable) {
    if (const TreeCacheEntry *TE = TreeCache.lookup(Key, Stats)) {
      Engine::SessionCheckpoint CP = Baseline;
      if (rebase(CP, Rec.Effects)) {
        E->restoreCheckpoint(CP);
        Engine::ReexpandHooks H;
        H.CachedTree = cast<TranslationUnit>(
            cloneNodeRemapped(E->context().Ast, TE->Pristine,
                              &remapDefToRegistry, &E->context().Macros));
        H.Deps = &DR;
        R = E->reexpand(U, H);
        PathOut = IncrementalPath::TreeReuse;
        Done = true;
      }
    }
  }

  if (!Done) {
    const TokenCacheEntry *TK =
        Opts.EnableTokenReuse ? TokCache.lookup(Key, Stats) : nullptr;
    E->restoreCheckpoint(Baseline);
    Engine::ReexpandHooks H;
    std::vector<Token> FreshToks;
    TranslationUnit *FreshTree = nullptr;
    Engine::SessionCheckpoint AfterParse;
    H.Deps = &DR;
    if (TK) {
      H.CachedTokens = &TK->Toks;
      PathOut = IncrementalPath::TokenReuse;
    } else {
      H.TokensOut = &FreshToks;
      PathOut = IncrementalPath::Cold;
    }
    H.TreeOut = &FreshTree;
    H.AfterParseOut = &AfterParse;
    R = E->reexpand(U, H);

    // Refill the caches from whatever this expansion had to compute.
    if (TK) {
      Rec.Idents = TK->Idents;
      Rec.HasIdents = true;
    } else if (!FreshToks.empty()) {
      TokenCacheEntry TE;
      TE.Idents = identsOf(FreshToks);
      Rec.Idents = TE.Idents;
      Rec.HasIdents = true;
      TE.Toks = std::move(FreshToks);
      TokCache.store(Key, std::move(TE));
    } else {
      Rec.Idents.clear();
      Rec.HasIdents = false;
    }
    Rec.TreeValid = false;
    Rec.Effects = ParseEffects();
    if (FreshTree) {
      ParseEffects Eff;
      computeEffects(AfterParse, Eff);
      if (Eff.Representable) {
        TreeCacheEntry TE;
        TE.Pristine = FreshTree;
        TE.AfterParse = std::move(AfterParse);
        TreeCache.store(Key, std::move(TE));
        Rec.Effects = std::move(Eff);
        Rec.TreeValid = true;
      }
    }
  }

  Rec.Source = U.Source;
  Rec.SubKey = Key;
  Rec.Deps = DR.take();
  // A unit whose expansion had side effects or whose outcome was shaped
  // by something outside (library, unit source) — a fault trip, a
  // quarantine — has dependencies no recorder can attribute.
  if (R.MetaGlobalsMutated || R.FaultInjected || R.Quarantined)
    Rec.Deps.Unknown = true;
  Rec.LastResult = R;
  Rec.Dirty = false;
  Rec.Replayable = expansionResultCacheable(R) && !Rec.Deps.Unknown &&
                   !Opts.EngineOpts.TraceExpansions;
  Rec.RefsLibText = false;
  for (const std::string &LN : LibraryNames)
    if (R.DiagnosticsText.find(LN) != std::string::npos ||
        R.SourceMapJson.find(LN) != std::string::npos) {
      Rec.RefsLibText = true;
      break;
    }
  DepMap.add(U.Name, Rec.Deps);
  return R;
}

IncrementalResult IncrementalDriver::run(const std::vector<SourceUnit> &Units) {
  using Clock = std::chrono::steady_clock;
  IncrementalResult Res;
  const auto T0 = Clock::now();
  for (const SourceUnit &U : Units) {
    const auto U0 = Clock::now();
    UnitRecord &Rec = Records[U.Name];
    const bool Clean = Opts.EnableCleanReplay && !Rec.Dirty && Rec.Replayable &&
                       !Rec.SubKey.empty() &&
                       Rec.SubKey == subUnitCacheKey(U.Name, U.Source, U.Base);
    ExpandResult R;
    IncrementalPath P = IncrementalPath::Cold;
    if (Clean) {
      R = Rec.LastResult;
      R.FromCache = true;
      P = IncrementalPath::CleanReplay;
    } else {
      R = expandDirty(U, Rec, P);
    }
    const double Ms =
        std::chrono::duration<double, std::milli>(Clock::now() - U0).count();
    if (!R.Success)
      ++Res.UnitsFailed;
    switch (P) {
    case IncrementalPath::CleanReplay:
      ++Res.CleanReplays;
      break;
    case IncrementalPath::TreeReuse:
      ++Res.TreeReuses;
      break;
    case IncrementalPath::TokenReuse:
      ++Res.TokenReuses;
      break;
    case IncrementalPath::Cold:
      ++Res.ColdExpansions;
      break;
    }
    Res.Outcomes.push_back({U.Name, P, !Clean, Ms});
    Res.Results.push_back(std::move(R));
  }
  // Leave the engine at the snapshot state (the last unit's session
  // residue must not leak into anything the caller does next).
  E->restoreCheckpoint(Baseline);
  Res.TotalMillis =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
  Res.SubUnit = Stats;
  return Res;
}

void IncrementalDriver::invalidateAll() {
  Records.clear();
  DepMap = DependencyMap();
  TokCache.clear();
  TreeCache.clear();
}
