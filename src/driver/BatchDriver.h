//===----------------------------------------------------------------------===//
//
// Part of the MS2 project: a reproduction of "Programmable Syntax Macros"
// (Weise & Crew, PLDI 1993). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel batch expansion. A BatchDriver takes an immutable session
/// snapshot (the macro library and meta state an Engine has accumulated)
/// and expands N independent translation units across a pool of worker
/// threads, merging results deterministically in input order.
///
/// Concurrency model: the engine is single-threaded by design, so each
/// worker owns a private engine rebuilt from the snapshot (its own arena,
/// interner, macro tables, and meta globals — no pointers shared across
/// threads). Within a worker, a cheap session checkpoint is restored
/// before every unit so that sibling units cannot observe each other's
/// macro definitions, metadcl mutations, or gensym numbering; output is
/// therefore a function of (snapshot, unit source) alone, and identical
/// for any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef MSQ_DRIVER_BATCHDRIVER_H
#define MSQ_DRIVER_BATCHDRIVER_H

#include "api/Msq.h"
#include "support/Metrics.h"

#include <memory>
#include <string>
#include <vector>

namespace msq {

class ExpansionCache;

struct BatchOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency() (and
  /// never more workers than units).
  unsigned ThreadCount = 0;
  /// Per-unit overrides of the snapshot engine's limits; 0 inherits.
  size_t MaxMetaSteps = 0;
  unsigned UnitTimeoutMillis = 0;
  /// Collect per-macro profiles (merged into BatchResult::Profile).
  bool CollectProfile = true;
};

struct BatchResult {
  /// Per-unit results, in input order (Results[i] belongs to Units[i]
  /// regardless of which worker expanded it or when it finished).
  std::vector<ExpandResult> Results;
  /// Aggregate per-macro profile: the sum of every unit's profile.
  ExpansionProfile Profile;
  /// Number of units whose ExpandResult::Success is false.
  size_t UnitsFailed = 0;
  /// Units whose expansion died unexpectedly (a crash escaping the
  /// engine, or an injected batch.unit_start fault) and were quarantined:
  /// each reports a structured error result and the rest of the batch
  /// completed normally. Names in input order; also counted in
  /// UnitsFailed.
  std::vector<std::string> QuarantinedUnits;
  /// Sum of Results[i].InvocationsExpanded.
  size_t TotalInvocations = 0;
  /// True when this batch ran with an expansion cache attached; Cache
  /// then holds the hit/miss/uncacheable accounting for the batch.
  bool CacheEnabled = false;
  CacheStats Cache;
  /// Batch-level lint findings (engine Options::Lint.Enabled): the union
  /// of every unit's findings with identical diagnostics deduplicated
  /// into one entry with a count (units sharing a macro library would
  /// otherwise repeat its findings once per unit), sorted by
  /// (file, line, column, rule).
  std::vector<LintDiagnostic> Lints;

  bool allSucceeded() const { return UnitsFailed == 0; }

  /// Renders the batch metrics as JSON:
  /// {"units":[{"name":...,"success":...,"invocations":N,"meta_steps":N,
  ///   "gensyms":N,"nodes":N,"fuel_exhausted":B,"timed_out":B,
  ///   "limit":"none"|"fuel"|"timeout","mutates_globals":B,"cached":B,
  ///   "quarantined":B,"lints":N}],
  ///  "cache":<CacheStats::toJson(), when CacheEnabled>,
  ///  "quarantined":["unit",...] (when any unit was quarantined),
  ///  "lint_findings":<deduplicated findings array, when any>,
  ///  "aggregate":<ExpansionProfile::toJson()>}
  std::string metricsJson() const;
};

/// Expands batches of translation units against one session snapshot.
/// A driver is reusable: run() may be called any number of times, with
/// every batch seeing the same immutable snapshot state.
class BatchDriver {
public:
  explicit BatchDriver(SessionSnapshot Snap, BatchOptions Opts = {});

  /// Attaches a content-addressed expansion cache. \p LibraryFingerprint
  /// must be the Engine::stateFingerprint of the session the snapshot was
  /// taken from, and \p FingerprintStable its stability bit; an unstable
  /// fingerprint keeps the cache attached for accounting but marks every
  /// unit uncacheable. Engine::expandSources does this wiring itself when
  /// Options::EnableExpansionCache is set.
  void attachCache(std::shared_ptr<ExpansionCache> Cache,
                   std::string LibraryFingerprint, bool FingerprintStable);

  BatchResult run(const std::vector<SourceUnit> &Units) const;

  const BatchOptions &options() const { return Opts; }

  /// Rebuilds a private engine from \p Snap by replaying its session log:
  /// every recorded source is parsed (and, unless it was parse-only,
  /// expanded) exactly as the original engine did, reproducing the macro
  /// tables, meta globals, and interned AST pool in the new engine's own
  /// arena. This is the snapshot-reuse primitive shared by the batch
  /// worker pool and the expansion server's request scheduler (both own
  /// one such engine per worker and restore a checkpoint between units).
  static std::unique_ptr<Engine> buildWorkerEngine(const SessionSnapshot &Snap,
                                                   const BatchOptions &BO);

private:
  SessionSnapshot Snap;
  BatchOptions Opts;
  std::shared_ptr<ExpansionCache> Cache;
  std::string Fingerprint;
  bool FingerprintStable = false;
};

} // namespace msq

#endif // MSQ_DRIVER_BATCHDRIVER_H
